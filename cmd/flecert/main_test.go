package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden files:
//
//	go test ./cmd/flecert -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>, byte for byte. The
// golden files pin the certification surface on a fixed seed: the swept
// candidate spaces, the early-stopping points, the certified gains and the
// verdicts are all deterministic, so any diff is a real behaviour change.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s\n(refresh with: go test ./cmd/flecert -run Golden -update)",
			name, got, want)
	}
}

// TestGoldenPhaseLeadCSV pins the Section 6 tightness table: per-scenario
// certified gains for every phase-lead attack scenario at n=64, in
// byte-reproducible CSV. The arg-max column must recover the steering
// PhaseRushing deviation — the regression the golden file freezes.
func TestGoldenPhaseLeadCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("phase sweeps are the expensive ones")
	}
	var out, errOut bytes.Buffer
	args := []string{
		"-match", "^ring/phase-lead/attack=",
		"-n", "64", "-trials", "400", "-seed", "20180516",
		"-format", "csv",
	}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, name := range []string{"phase-rushing", "phase-chase", "phase-nosteer"} {
		line := ""
		for _, l := range strings.Split(got, "\n") {
			if strings.Contains(l, "attack="+name+",") {
				line = l
				break
			}
		}
		if line == "" {
			t.Fatalf("no row for attack=%s in:\n%s", name, got)
		}
		if !strings.Contains(line, "exploitable") {
			t.Errorf("attack=%s row not exploitable: %s", name, line)
		}
		if !strings.Contains(line, "phase-rushing/steer") {
			t.Errorf("attack=%s arg-max did not recover the steering PhaseRushing: %s", name, line)
		}
	}
	checkGolden(t, "certify_phaselead.csv.golden", out.Bytes())
}

// TestGoldenBasicLeadTable pins the quick certification table for the
// Basic-LEAD scenarios: the honest runs certify fair, the Claim B.1 attack
// certifies exploitable.
func TestGoldenBasicLeadTable(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-match", "^ring/basic-lead/", "-seed", "20180516", "-format", "table", "-v"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "certify_basiclead.table.golden", out.Bytes())
}

// TestGoldenCommitteeTable pins the committee-sharded family's
// certification surface: honest composition certifies fair for both inner
// disciplines, the delegate-rush coalition certifies exploitable against
// the Basic-LEAD inner ring (gain ≈ 1) and fair against A-LEADuni (the
// buffered circulation stalls the rush instead of electing its target).
func TestGoldenCommitteeTable(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-match", "^committee/", "-seed", "20180516", "-format", "table", "-v"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	verdicts := map[string]string{
		"committee/basic-lead/fifo":                 "fair",
		"committee/a-lead/fifo":                     "fair",
		"committee/basic-lead/attack=delegate-rush": "exploitable",
		"committee/a-lead/attack=delegate-rush":     "fair",
	}
	for name, want := range verdicts {
		line := ""
		for _, l := range strings.Split(got, "\n") {
			if strings.Contains(l, name+" ") {
				line = l
				break
			}
		}
		if line == "" {
			t.Fatalf("no row for %s in:\n%s", name, got)
		}
		if !strings.Contains(line, want) {
			t.Errorf("%s verdict is not %q: %s", name, want, line)
		}
	}
	checkGolden(t, "certify_committee.table.golden", out.Bytes())
}

// TestGoldenPopprotoTable pins the population-protocol family's
// certification surface: the honest self-stabilizing election certifies
// fair (it is exactly uniform by rotation symmetry), the coalition-bias
// deviation certifies exploitable (the pinned frame forces its target with
// probability 1, gain 1 − 1/n).
func TestGoldenPopprotoTable(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-match", "^popproto/", "-seed", "20180516", "-format", "table", "-v"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	verdicts := map[string]string{
		"popproto/ss-ring-le/pairwise":              "fair",
		"popproto/ss-ring-le/attack=coalition-bias": "exploitable",
	}
	for name, want := range verdicts {
		line := ""
		for _, l := range strings.Split(got, "\n") {
			if strings.Contains(l, name+" ") {
				line = l
				break
			}
		}
		if line == "" {
			t.Fatalf("no row for %s in:\n%s", name, got)
		}
		if !strings.Contains(line, want) {
			t.Errorf("%s verdict is not %q: %s", name, want, line)
		}
	}
	checkGolden(t, "certify_popproto.table.golden", out.Bytes())
}

// TestWorkersDoNotMoveOutput is the CLI-level determinism check: the same
// sweep at -workers 1 and -workers 3 renders byte-identical output.
func TestWorkersDoNotMoveOutput(t *testing.T) {
	render := func(workers string) string {
		var out, errOut bytes.Buffer
		args := []string{"-match", "^ring/basic-lead/attack=", "-seed", "7", "-trials", "300",
			"-workers", workers, "-format", "json"}
		if err := run(args, &out, &errOut); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if a, b := render("1"), render("3"); a != b {
		t.Errorf("output differs between worker counts:\n%s\nvs\n%s", a, b)
	}
}

// TestBadFlags exercises the CLI's validation surface.
func TestBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-format", "yaml"}, &out, &errOut); err == nil {
		t.Error("unknown format should fail")
	}
	if err := run([]string{"-match", "["}, &out, &errOut); err == nil {
		t.Error("bad regexp should fail")
	}
	if err := run([]string{"-match", "^no-such-scenario$"}, &out, &errOut); err == nil {
		t.Error("empty match should fail")
	}
}
