// Command flecert certifies the game-theoretic fairness of registered
// scenarios: for each matched scenario it sweeps the catalog's deviation
// space — attack family × coalition size × steering mode × target — and
// prints one equilibrium certificate per scenario: the maximum estimated
// coalition gain over the fair 1/n baseline, its multiplicity-corrected
// Wilson upper bound, the arg-max deviation (with a reproducible digest),
// and the verdict fair / exploitable / inconclusive.
//
// Usage:
//
//	flecert [-match RE] [-n N] [-trials T] [-min-trials M] [-maxk K]
//	        [-eps E] [-alpha A] [-seed S] [-workers W]
//	        [-format table|csv|json|markdown] [-v] [-mar FILE]...
//
// Each -mar FILE is a MAR protocol or adversary spec (see ARCHITECTURE.md)
// compiled and registered into the catalog before matching, so spec'd
// scenarios certify exactly like the built-in ones; the embedded spec
// twins (ring/mar-basic-lead/*) are always present.
//
// Honest scenarios sweep every applicable deviation family up to the
// protocol's claimed resilience bound (override with -maxk), so their
// certificates machine-check the paper's fairness claims; attack scenarios
// sweep their own family across modes and sizes, exhibiting tightness. For
// a fixed seed the output is byte-identical at any -workers value.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/equilibrium"
	"repro/internal/mardsl/marlib"
)

// marFlag collects the repeatable -mar spec-file arguments.
type marFlag []string

func (f *marFlag) String() string     { return strings.Join(*f, ",") }
func (f *marFlag) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flecert:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("flecert", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		match     = fs.String("match", "", "regular expression filtering scenario names; empty = all")
		n         = fs.Int("n", 0, "override every scenario's network size (0 = registered defaults)")
		trials    = fs.Int("trials", 0, "per-candidate trial budget (0 = 2000; early stopping usually ends sooner)")
		minTrials = fs.Int("min-trials", 0, "earliest early-stopping point (0 = 100)")
		maxK      = fs.Int("maxk", 0, "coalition bound for honest sweeps (0 = the protocol's resilience claim)")
		eps       = fs.Float64("eps", 0, "fairness threshold ε (0 = 0.05)")
		alpha     = fs.Float64("alpha", 0, "simultaneous error level (0 = 0.05)")
		seed      = fs.Int64("seed", 20180516, "base seed for every candidate batch")
		workers   = fs.Int("workers", 0, "parallel trial workers (0 = all CPUs); certificates are identical for any value")
		version   = fs.String("version", "dev", "code version recorded in certificate digests")
		format    = fs.String("format", "table", "output format: table, csv, json, markdown")
		verbose   = fs.Bool("v", false, "also list every swept candidate (table format only)")
	)
	var marFiles marFlag
	fs.Var(&marFiles, "mar", "MAR spec file to compile and register before matching (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := marlib.RegisterFiles(marFiles); err != nil {
		return err
	}
	switch *format {
	case "table", "csv", "json", "markdown":
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	opts := equilibrium.Options{
		N:         *n,
		Trials:    *trials,
		MinTrials: *minTrials,
		Workers:   *workers,
		MaxK:      *maxK,
		Epsilon:   *eps,
		Alpha:     *alpha,
		Version:   *version,
	}
	certs, err := equilibrium.CertifyMatch(context.Background(), *match, *seed, opts)
	if err != nil {
		return err
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(certs)
	case "csv":
		return writeCSV(out, certs)
	case "markdown":
		return writeMarkdown(out, certs)
	default:
		return writeTable(out, certs, *verbose)
	}
}

// sweptTrials totals the trials the sweep actually ran.
func sweptTrials(c *equilibrium.Certificate) int {
	total := 0
	for _, r := range c.Candidates {
		total += r.Trials
	}
	return total
}

// feasible counts the candidates that planned and ran.
func feasible(c *equilibrium.Certificate) int {
	k := 0
	for _, r := range c.Candidates {
		if !r.Infeasible {
			k++
		}
	}
	return k
}

// argMax renders the certificate's arg-max deviation.
func argMax(c *equilibrium.Certificate) string {
	best := c.Best()
	if best == nil {
		return "-"
	}
	return best.Candidate.String()
}

// argMaxDigest renders a short prefix of the arg-max deviation's digest.
func argMaxDigest(c *equilibrium.Certificate) string {
	best := c.Best()
	if best == nil {
		return "-"
	}
	return best.Digest[:12]
}

func writeTable(out io.Writer, certs []*equilibrium.Certificate, verbose bool) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SCENARIO\tN\tCANDS\tTRIALS\tBASE\tMAXGAIN\tGAIN-UB\tVERDICT\tARGMAX\tDIGEST")
	for _, c := range certs {
		fmt.Fprintf(w, "%s\t%d\t%d/%d\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			c.Scenario, c.N, feasible(c), len(c.Candidates), sweptTrials(c),
			f4(c.Baseline), f4(c.MaxGain), f4(c.MaxGainUpper), c.Verdict,
			argMax(c), argMaxDigest(c))
		if verbose {
			for _, r := range c.Candidates {
				if r.Infeasible {
					fmt.Fprintf(w, "  · %s\tinfeasible\t%s\n", r.Candidate, r.Reason)
					continue
				}
				fmt.Fprintf(w, "  · %s\t%d\ttrials\t\tgain %s\t[%s, %s]\tfail %s\n",
					r.Candidate, r.Trials, f4(r.Gain), f4(r.GainLo), f4(r.GainHi), f4(r.FailRate))
			}
		}
	}
	return w.Flush()
}

func writeCSV(out io.Writer, certs []*equilibrium.Certificate) error {
	fmt.Fprintln(out, "scenario,n,candidates,feasible,trials,baseline,max_gain,max_gain_lower,max_gain_upper,verdict,argmax,argmax_digest")
	for _, c := range certs {
		fmt.Fprintf(out, "%s,%d,%d,%d,%d,%s,%s,%s,%s,%s,%s,%s\n",
			c.Scenario, c.N, len(c.Candidates), feasible(c), sweptTrials(c),
			f4(c.Baseline), f4(c.MaxGain), f4(c.MaxGainLower), f4(c.MaxGainUpper),
			c.Verdict, quoteComma(argMax(c)), argMaxDigest(c))
	}
	return nil
}

func writeMarkdown(out io.Writer, certs []*equilibrium.Certificate) error {
	fmt.Fprintln(out, "| scenario | n | cands | trials | baseline | max gain | gain UB | verdict | arg-max | digest |")
	fmt.Fprintln(out, "|---|---|---|---|---|---|---|---|---|---|")
	for _, c := range certs {
		fmt.Fprintf(out, "| `%s` | %d | %d/%d | %d | %s | %s | %s | %s | `%s` | `%s` |\n",
			c.Scenario, c.N, feasible(c), len(c.Candidates), sweptTrials(c),
			f4(c.Baseline), f4(c.MaxGain), f4(c.MaxGainUpper), c.Verdict,
			argMax(c), argMaxDigest(c))
	}
	return nil
}

// quoteComma wraps a CSV cell containing commas.
func quoteComma(s string) string {
	for _, r := range s {
		if r == ',' {
			return strconv.Quote(s)
		}
	}
	return s
}

func f4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
