package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden files:
//
//	go test ./cmd/scenarios -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>, byte for byte. The
// golden files pin the CLI's JSON surface on a fixed seed: any change to
// the catalog, the outcome schema, or the engine's determinism shows up as
// a diff that has to be committed deliberately.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s\n(refresh with: go test ./cmd/scenarios -run Golden -update)",
			name, got, want)
	}
}

func TestGoldenListJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-list", "-format", "json"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "list.json.golden", out.Bytes())
}

func TestGoldenSweepJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{
		"-match", "^(ring/(basic-lead|a-lead|chang-roberts)/fifo|ring/basic-lead/attack=basic-single)$",
		"-n", "8", "-trials", "64", "-seed", "20180516", "-workers", "3",
		"-format", "json",
	}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sweep.json.golden", out.Bytes())

	// The sweep is engine-deterministic: a different worker count must
	// reproduce the golden bytes exactly.
	var out1 bytes.Buffer
	args[len(args)-3] = "1" // -workers value
	if err := run(args, &out1, &errOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out1.Bytes()) {
		t.Error("sweep output differs between -workers 3 and -workers 1")
	}
}

func TestGoldenListMarkdown(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-list", "-format", "markdown"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "list.md.golden", out.Bytes())
}

func TestListFormats(t *testing.T) {
	for _, format := range []string{"table", "csv", "json", "markdown"} {
		var out, errOut bytes.Buffer
		if err := run([]string{"-list", "-format", format}, &out, &errOut); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
		if !strings.Contains(out.String(), "ring/a-lead/fifo") {
			t.Errorf("format %s: catalog is missing ring/a-lead/fifo", format)
		}
	}
}

func TestSweepSkipsInfeasibleSizes(t *testing.T) {
	var out, errOut bytes.Buffer
	// n=8 is below the staggered attack's feasibility floor but fine for
	// the honest run: the sweep must skip one and run the other.
	err := run([]string{
		"-match", "^ring/a-lead/(fifo|attack=rushing-staggered)$",
		"-n", "8", "-trials", "10", "-format", "csv",
	}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "skip ring/a-lead/attack=rushing-staggered") {
		t.Errorf("no skip notice for the infeasible attack; stderr: %s", errOut.String())
	}
	if !strings.Contains(out.String(), "ring/a-lead/fifo,8,10") {
		t.Errorf("honest scenario missing from sweep: %s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-match", "no-such-scenario"}, &out, &errOut); err == nil {
		t.Error("empty match accepted")
	}
	if err := run([]string{"-match", "("}, &out, &errOut); err == nil {
		t.Error("broken regexp accepted")
	}
	if err := run([]string{"-list", "-format", "yaml"}, &out, &errOut); err == nil {
		t.Error("unknown list format accepted")
	}
	if err := run([]string{"-match", "^ring/a-lead/fifo$", "-trials", "4", "-format", "yaml"}, &out, &errOut); err == nil {
		t.Error("unknown sweep format accepted")
	}
}
