// Command scenarios lists and sweeps the scenario registry: every runnable
// protocol × topology × scheduler × adversary configuration of the
// reproduction, with uniform outcomes ready for cross-protocol comparison.
//
// Usage:
//
//	scenarios -list [-match RE] [-format table|csv|json|markdown] [-mar FILE]...
//	scenarios [-match RE] [-n N] [-trials T] [-seed S] [-workers W] [-format table|csv|json] [-mar FILE]...
//
// Each -mar FILE is a MAR protocol or adversary spec (see ARCHITECTURE.md)
// compiled and registered into the catalog before matching, so spec'd
// scenarios list and sweep exactly like the built-in ones; the embedded
// spec twins (ring/mar-basic-lead/*) are always present.
//
// Without -list the matching scenarios are run as a matrix sweep; -n,
// -trials and -target override every matched scenario's defaults (scenarios
// that cannot run at the forced size are reported and skipped). For a fixed
// seed the sweep output is identical at any -workers value.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/mardsl/marlib"
	"repro/internal/scenario"
)

// marFlag collects the repeatable -mar spec-file arguments.
type marFlag []string

func (f *marFlag) String() string     { return strings.Join(*f, ",") }
func (f *marFlag) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("scenarios", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		list    = fs.Bool("list", false, "list matching scenarios instead of running them")
		match   = fs.String("match", "", "regular expression filtering scenario names; empty = all")
		n       = fs.Int("n", 0, "override every scenario's network size (0 = registered defaults)")
		trials  = fs.Int("trials", 0, "override every scenario's trial count (0 = registered defaults)")
		target  = fs.Int64("target", 0, "override every attack's target leader (0 = registered defaults)")
		seed    = fs.Int64("seed", 20180516, "base seed for the sweep")
		workers = fs.Int("workers", 0, "parallel trial workers (0 = all CPUs); results are identical for any value")
		format  = fs.String("format", "table", "output format: table, csv, json, markdown (markdown lists only)")
	)
	var marFiles marFlag
	fs.Var(&marFiles, "mar", "MAR spec file to compile and register before matching (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := marlib.RegisterFiles(marFiles); err != nil {
		return err
	}
	matched, err := scenario.Match(*match)
	if err != nil {
		return err
	}
	if len(matched) == 0 {
		return fmt.Errorf("no scenario matches %q", *match)
	}
	if *list {
		return writeList(out, matched, *format)
	}
	switch *format {
	case "table", "csv", "json":
	case "markdown":
		return fmt.Errorf("format markdown is for -list only")
	default:
		return fmt.Errorf("unknown sweep format %q", *format)
	}
	opts := scenario.Opts{N: *n, Trials: *trials, Workers: *workers, Target: *target}
	return sweep(out, errOut, matched, *seed, opts, *format)
}

// writeList renders the catalog.
func writeList(out io.Writer, scenarios []scenario.Scenario, format string) error {
	descs := make([]scenario.Descriptor, len(scenarios))
	for i, s := range scenarios {
		descs[i] = s.Describe()
	}
	switch format {
	case "json":
		return writeJSON(out, descs)
	case "csv":
		fmt.Fprintln(out, "name,topology,protocol,scheduler,attack,n,min_n,trials,k,target,uniform")
		for _, d := range descs {
			fmt.Fprintf(out, "%s,%s,%s,%s,%s,%d,%d,%d,%d,%d,%v\n",
				d.Name, d.Topology, d.Protocol, d.Scheduler, d.Attack,
				d.N, d.MinN, d.Trials, d.K, d.Target, d.Uniform)
		}
		return nil
	case "markdown":
		fmt.Fprintln(out, "| scenario | topology | protocol | scheduler | attack | n | trials | uniform | note |")
		fmt.Fprintln(out, "|---|---|---|---|---|---|---|---|---|")
		for _, d := range descs {
			fmt.Fprintf(out, "| `%s` | %s | %s | %s | %s | %d | %d | %s | %s |\n",
				d.Name, d.Topology, d.Protocol, d.Scheduler, dash(d.Attack),
				d.N, d.Trials, yesNo(d.Uniform), d.Note)
		}
		return nil
	case "table":
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "SCENARIO\tTOPOLOGY\tSCHED\tATTACK\tN\tTRIALS\tUNIFORM")
		for _, d := range descs {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%d\t%s\n",
				d.Name, d.Topology, d.Scheduler, dash(d.Attack), d.N, d.Trials, yesNo(d.Uniform))
		}
		return w.Flush()
	default:
		return fmt.Errorf("unknown list format %q", format)
	}
}

// sweep runs every matched scenario and renders the outcome matrix.
// Scenarios that cannot run under the forced overrides (e.g. -n below an
// attack's feasibility floor) are reported on errOut and skipped; the sweep
// fails only when nothing ran.
func sweep(out, errOut io.Writer, scenarios []scenario.Scenario, seed int64, opts scenario.Opts, format string) error {
	ctx := context.Background()
	var outcomes []*scenario.Outcome
	for _, s := range scenarios {
		o, err := s.RunOpts(ctx, seed, opts)
		if err != nil {
			fmt.Fprintf(errOut, "skip %s: %v\n", s.Name, err)
			continue
		}
		outcomes = append(outcomes, o)
	}
	if len(outcomes) == 0 {
		return fmt.Errorf("no matched scenario could run")
	}
	switch format {
	case "json":
		return writeJSON(out, outcomes)
	case "csv":
		fmt.Fprintln(out, "scenario,n,trials,failures,fail_rate,max_win_leader,max_win_rate,epsilon,target,target_rate,messages")
		for _, o := range outcomes {
			fmt.Fprintf(out, "%s,%d,%d,%d,%s,%d,%s,%s,%d,%s,%d\n",
				o.Scenario, o.N, o.Trials, o.Failures, f4(o.FailRate),
				o.MaxWinLeader, f4(o.MaxWinRate), f4(o.Epsilon),
				o.Target, f4(o.TargetRate), o.Messages)
		}
		return nil
	case "table":
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "SCENARIO\tN\tTRIALS\tFAIL\tMAXWIN\tEPS\tTARGET\tFORCED\tMSGS")
		for _, o := range outcomes {
			targetCell, forcedCell := "-", "-"
			if o.Target != 0 {
				targetCell = strconv.FormatInt(o.Target, 10)
				forcedCell = f4(o.TargetRate)
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%d@%s\t%s\t%s\t%s\t%d\n",
				o.Scenario, o.N, o.Trials, f4(o.FailRate),
				o.MaxWinLeader, f4(o.MaxWinRate), f4(o.Epsilon),
				targetCell, forcedCell, o.Messages)
		}
		return w.Flush()
	default:
		// Unreachable: run() validates the format before the sweep.
		return fmt.Errorf("unknown sweep format %q", format)
	}
}

func writeJSON(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func dash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func f4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
