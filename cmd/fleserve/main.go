// Command fleserve runs the fair-leader-election simulation service: a
// resident HTTP daemon over the scenario registry that batches, dedupes,
// caches, and streams Monte-Carlo trial work.
//
// Usage:
//
//	fleserve [-addr HOST:PORT] [-workers W] [-parallel P] [-cache N] [-pprof]
//	         [-role single|coordinator|worker] [-join URL] [-cache-dir DIR]
//	         [-fleet-chunk N] [-lease D] [-mar FILE]...
//
// Each -mar FILE is a MAR protocol or adversary spec (see ARCHITECTURE.md)
// compiled and registered into the catalog before the daemon starts, so
// spec'd scenarios are served exactly like the built-in ones; the embedded
// spec twins (ring/mar-basic-lead/*) are always present.
//
// Roles:
//
//	single       (default) one self-contained daemon
//	coordinator  accepts jobs, splits distributable batches into trial
//	             chunks, and leases them to workers over /chunks/*; also
//	             runs chunks itself, so a fleet of one still makes progress
//	worker       claims chunks from the coordinator at -join and reports
//	             shard results; its own job endpoints answer 421 pointing
//	             at the coordinator
//
// With -cache-dir the result cache gains a crash-safe disk tier: results
// survive restarts (a restarted daemon replays them with zero engine runs)
// and nodes sharing the directory share the cache.
//
// Endpoints:
//
//	GET    /scenarios     the registry catalog
//	POST   /jobs          submit a batch: {"jobs":[{"scenario":...,"seed":...},...]}
//	GET    /jobs/{id}     one job's state; ?watch=1 streams NDJSON progress
//	DELETE /jobs/{id}     cancel a queued or running job
//	POST   /certify       submit a certification batch: {"certs":[{"scenario":...,"seed":...},...]}
//	GET    /certify/{id}  one sweep's state; ?watch=1 streams per-candidate NDJSON progress
//	DELETE /certify/{id}  cancel a queued or running sweep
//	GET    /healthz       liveness
//	GET    /statz         cache hit rate, worker utilization, trials/sec
//	GET    /debug/pprof/  runtime profiles (only with -pprof)
//
// Identical jobs — same scenario, parameters, seed, and code version —
// share one computation: concurrent duplicates join the in-flight run, and
// later ones replay the cached result byte-for-byte (deterministic seeding
// makes the replay exact). The daemon exits cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/mardsl/marlib"
	"repro/internal/service"
)

// marFlag collects the repeatable -mar spec-file arguments.
type marFlag []string

func (f *marFlag) String() string     { return strings.Join(*f, ",") }
func (f *marFlag) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fleserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("fleserve", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "HTTP listen address (use :0 for an ephemeral port)")
		workers  = fs.Int("workers", 0, "engine workers per job (0 = all CPUs); results are identical for any value")
		parallel = fs.Int("parallel", 0, "concurrent engine runs (0 = 2); additional jobs queue")
		cache    = fs.Int("cache", 0, "result cache capacity in entries (0 = 4096)")
		profiled = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (CPU/heap profiling of the live daemon)")
		role     = fs.String("role", "", "fleet role: single (default), coordinator, or worker")
		join     = fs.String("join", "", "coordinator URL a worker claims chunks from (required with -role worker)")
		cacheDir = fs.String("cache-dir", "", "directory for the crash-safe disk cache tier (empty = memory only)")
		chunk    = fs.Int("fleet-chunk", 0, "trials per fleet chunk lease (0 = 512)")
		lease    = fs.Duration("lease", 0, "chunk lease TTL before a silent worker's chunk is re-issued (0 = 5s)")
	)
	var marFiles marFlag
	fs.Var(&marFiles, "mar", "MAR spec file to compile and register before serving (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if names, err := marlib.RegisterFiles(marFiles); err != nil {
		return err
	} else if len(names) > 0 {
		fmt.Fprintf(out, "fleserve: registered %d MAR scenarios: %s\n", len(names), strings.Join(names, " "))
	}
	srv, err := service.New(service.Config{
		Addr:       *addr,
		Workers:    *workers,
		Parallel:   *parallel,
		CacheSize:  *cache,
		Profiling:  *profiled,
		Role:       *role,
		Join:       *join,
		CacheDir:   *cacheDir,
		FleetChunk: *chunk,
		LeaseTTL:   *lease,
	})
	if err != nil {
		return err
	}
	ln, err := srv.Listen()
	if err != nil {
		return err
	}
	// The listening line is machine-read by the smoke harness: with -addr
	// :0 it is the only way to learn where the kernel put the daemon.
	printedRole := *role
	if printedRole == "" {
		printedRole = service.RoleSingle
	}
	fmt.Fprintf(out, "fleserve: listening on %s (version %s, role %s)\n", srv.Addr(), srv.Scheduler().Version(), printedRole)
	return srv.Serve(ctx, ln)
}
