package main

import (
	"bytes"
	"context"
	"regexp"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// TestRunServesAndShutsDown boots the daemon on an ephemeral port, drives
// one cached round trip through the real TCP listener, and checks the
// context-driven shutdown path the signal handler uses.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-parallel", "1"}, &out, &out)
	}()

	addr := waitForAddr(t, &out)
	client := service.NewClient("http://" + addr)
	if err := client.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	req := service.JobRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 64, Seed: 7}
	states, err := client.Submit(ctx, []service.JobRequest{req})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := client.Wait(ctx, states[0].ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.Status != service.StatusDone || len(final.Result) == 0 {
		t.Fatalf("job finished %s (result %d bytes), want done with result", final.Status, len(final.Result))
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after context cancel")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out, &out); err == nil {
		t.Fatal("want flag error")
	}
}

// waitForAddr polls the daemon's stdout for the listening line.
func waitForAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	re := regexp.MustCompile(`listening on (\S+)`)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no listening line; output: %q", out.String())
	return ""
}

// syncBuffer is a bytes.Buffer safe for the daemon goroutine to write while
// the test polls it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
