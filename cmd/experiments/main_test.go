package main

import (
	"strings"
	"testing"
)

func TestRunSelectedExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-only", "E12"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "### E12") {
		t.Errorf("output missing E12 section:\n%s", got)
	}
	if strings.Contains(got, "### E1 —") {
		t.Error("unselected experiment E1 was run")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}
