// Command flesim runs a single fair-leader-election configuration — a
// protocol, an optional attack, a ring size — and reports the outcome
// distribution and bias estimate.
//
// Usage:
//
//	flesim -protocol phaselead -n 400 -attack phase-rushing -target 5 -trials 50
//
// Protocols: basiclead, alead, phaselead, sumphase, changroberts, peterson.
// Attacks: none, basic-single, rushing-equal, rushing-cubic, randomized,
// half-ring, phase-rushing, phase-chase, sum-phase.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/attacks"
	"repro/internal/classic"
	"repro/internal/cointoss"
	"repro/internal/core"
	"repro/internal/protocols/alead"
	"repro/internal/protocols/basiclead"
	"repro/internal/protocols/phaselead"
	"repro/internal/protocols/sumphase"
	"repro/internal/ring"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flesim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("flesim", flag.ContinueOnError)
	var (
		protocolName = fs.String("protocol", "phaselead", "protocol to run")
		attackName   = fs.String("attack", "none", "adversarial deviation")
		n            = fs.Int("n", 100, "ring size")
		k            = fs.Int("k", 0, "coalition size (0 = attack default)")
		target       = fs.Int64("target", 1, "leader the coalition tries to force")
		trials       = fs.Int("trials", 100, "number of independent executions")
		seed         = fs.Int64("seed", 1, "base seed")
		coin         = fs.Bool("coin", false, "also report the derived coin toss (low bit)")
		workers      = fs.Int("workers", 0, "parallel trial workers (0 = all CPUs); results are identical for any value")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	protocol, err := pickProtocol(*protocolName)
	if err != nil {
		return err
	}
	attack, err := pickAttack(*attackName, *k, protocol)
	if err != nil {
		return err
	}

	opts := ring.TrialOptions{Workers: *workers}
	var dist *ring.Distribution
	if attack == nil {
		dist, err = ring.TrialsOpts(context.Background(), ring.Spec{N: *n, Protocol: protocol, Seed: *seed}, *trials, opts)
	} else {
		spec := ring.AttackSpec{N: *n, Protocol: protocol, Attack: attack, Target: *target, Seed: *seed}
		dist, err = ring.RunAttackTrials(context.Background(), spec, *trials, opts)
	}
	if err != nil {
		return err
	}

	rep := core.Bias(dist)
	fmt.Fprintf(out, "protocol=%s", protocol.Name())
	if attack != nil {
		fmt.Fprintf(out, " attack=%s target=%d", attack.Name(), *target)
	}
	fmt.Fprintf(out, " n=%d trials=%d\n", *n, *trials)
	fmt.Fprintf(out, "  valid outcomes: %d  failures: %d (abort=%d mismatch=%d stall=%d)\n",
		dist.Trials-dist.Failures(), dist.Failures(),
		dist.FailCounts[1], dist.FailCounts[2], dist.FailCounts[3])
	if attack != nil {
		fmt.Fprintf(out, "  forced rate for target %d: %.4f\n", *target, dist.WinRate(*target))
	}
	fmt.Fprintf(out, "  bias: %s\n", rep)
	if verdict, err := core.Uniformity(dist, 0.01); err == nil {
		fmt.Fprintf(out, "  uniformity: χ²=%.2f p=%.4f uniform=%v\n",
			verdict.Statistic, verdict.PValue, verdict.Uniform)
	}
	if *coin {
		s, err := cointoss.TrialsOpts(context.Background(),
			cointoss.ProtocolTosser(*n, protocol, *seed), *trials, cointoss.Options{Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  derived coin: zeros=%d ones=%d fails=%d bias=%.4f\n",
			s.Zeros, s.Ones, s.Fails, s.Bias())
	}
	return nil
}

func pickProtocol(name string) (ring.Protocol, error) {
	switch name {
	case "basiclead":
		return basiclead.New(), nil
	case "alead":
		return alead.New(), nil
	case "phaselead":
		return phaselead.NewDefault(), nil
	case "sumphase":
		return sumphase.New(), nil
	case "changroberts":
		return classic.ChangRoberts{}, nil
	case "peterson":
		return classic.Peterson{}, nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}

func pickAttack(name string, k int, protocol ring.Protocol) (ring.Attack, error) {
	switch name {
	case "none", "":
		return nil, nil
	case "basic-single":
		return attacks.BasicSingle{}, nil
	case "rushing-equal":
		return attacks.Rushing{Place: attacks.PlaceEqual, K: k}, nil
	case "rushing-cubic":
		return attacks.Rushing{Place: attacks.PlaceStaggered, K: k}, nil
	case "randomized":
		return attacks.Randomized{}, nil
	case "half-ring":
		return attacks.HalfRing{K: k}, nil
	case "phase-rushing", "phase-chase":
		phaseProto, ok := protocol.(phaselead.Protocol)
		if !ok {
			return nil, fmt.Errorf("%s requires -protocol phaselead", name)
		}
		mode := attacks.PhaseSteer
		if name == "phase-chase" {
			mode = attacks.PhaseChase
		}
		return attacks.PhaseRushing{Protocol: phaseProto, K: k, Mode: mode}, nil
	case "sum-phase":
		return attacks.SumPhase{}, nil
	default:
		return nil, fmt.Errorf("unknown attack %q", name)
	}
}
