package main

import (
	"strings"
	"testing"
)

func TestRunHonestConfiguration(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-protocol", "alead", "-n", "16", "-trials", "40", "-coin"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"protocol=A-LEADuni", "failures: 0", "derived coin"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunAttackConfiguration(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-protocol", "basiclead", "-attack", "basic-single",
		"-n", "12", "-target", "3", "-trials", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "forced rate for target 3: 1.0000") {
		t.Errorf("attack output unexpected:\n%s", out.String())
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-protocol", "nonsense"}, &out); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run([]string{"-attack", "nonsense"}, &out); err == nil {
		t.Error("unknown attack accepted")
	}
	if err := run([]string{"-protocol", "alead", "-attack", "phase-rushing"}, &out); err == nil {
		t.Error("phase attack against non-phase protocol accepted")
	}
}
