package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/service"
)

// TestRunAgainstLiveDaemon drives a small mixed batch at a coordinator
// daemon and checks the report's arithmetic: every request accounted for,
// quantiles present for every exercised class, and the daemon's own stats
// embedded.
func TestRunAgainstLiveDaemon(t *testing.T) {
	srv, err := service.New(service.Config{
		Role: service.RoleCoordinator, FleetChunk: 200, Parallel: 2, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	outFile := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	err = run(context.Background(), []string{
		"-target", ts.URL,
		"-requests", "20",
		"-rate", "200",
		"-mix", "5:2:1:2",
		"-trials", "500",
		"-committee-n", "256",
		"-out", outFile,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}

	raw, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if rep.Errors != 0 {
		t.Fatalf("report records %d errors", rep.Errors)
	}
	total := 0
	for _, c := range rep.PerClassCounts {
		total += c
	}
	if total != 20 {
		t.Fatalf("per-class counts sum to %d, want 20", total)
	}
	// Mix 5:2:1:2 over 20 requests tiles exactly twice: 10/4/2/4.
	if rep.PerClassCounts["cached"] != 10 || rep.PerClassCounts["fresh"] != 4 ||
		rep.PerClassCounts["certify"] != 2 || rep.PerClassCounts["committee"] != 4 {
		t.Fatalf("mix split %v, want 10/4/2/4", rep.PerClassCounts)
	}
	for _, class := range []string{"cached", "fresh", "certify", "committee", "overall"} {
		q, ok := rep.Latency[class]
		if !ok {
			t.Fatalf("no quantiles for %s", class)
		}
		if q.P50 <= 0 || q.P95 < q.P50 || q.P99 < q.P95 || q.Max < q.P99 {
			t.Fatalf("%s quantiles not monotone: %+v", class, q)
		}
	}
	if rep.ThroughputRPS <= 0 {
		t.Fatalf("throughput %f", rep.ThroughputRPS)
	}
	// 10 cached replays of one pre-warmed identity: the daemon must report
	// cache hits, and the embedded stats must be the coordinator's.
	if rep.Stats.Cache.Hits < 10 {
		t.Fatalf("stats show %d cache hits, want >= 10", rep.Stats.Cache.Hits)
	}
	if rep.Stats.Fleet.Role != service.RoleCoordinator {
		t.Fatalf("embedded stats role %q", rep.Stats.Fleet.Role)
	}
	if rep.Stats.Fleet.ChunksCompleted == 0 {
		t.Fatal("fresh jobs ran but no fleet chunks completed")
	}
}

// TestQuantilesDegenerate pins the emptiness guard inside quantiles: the
// empty population must yield the zero Quantiles instead of indexing
// s[len(s)-1] (the latent panic this guards), and a single sample must be
// every quantile at once.
func TestQuantilesDegenerate(t *testing.T) {
	if q := quantiles(nil); q != (Quantiles{Count: 0}) {
		t.Fatalf("quantiles(nil) = %+v, want zero Quantiles", q)
	}
	if q := quantiles([]float64{}); q != (Quantiles{Count: 0}) {
		t.Fatalf("quantiles(empty) = %+v, want zero Quantiles", q)
	}
	q := quantiles([]float64{7.5})
	want := Quantiles{Count: 1, P50: 7.5, P95: 7.5, P99: 7.5, Max: 7.5}
	if q != want {
		t.Fatalf("quantiles(single) = %+v, want %+v", q, want)
	}
}

// TestPickClassUnevenMixes tables pickClass over mixes with zero-weight
// components: every index must land in a positive-weight class and any
// request prefix must carry the configured proportions.
func TestPickClassUnevenMixes(t *testing.T) {
	cases := []struct {
		mix  string
		want [numClasses]int // class counts over one full tiling period
	}{
		{"0:1:0:3", [numClasses]int{0, 1, 0, 3}},
		{"1:0:0:0", [numClasses]int{1, 0, 0, 0}},
		{"0:0:0:2", [numClasses]int{0, 0, 0, 2}},
		{"2:1:3", [numClasses]int{2, 1, 3, 0}},
		{"8:1:1:2", [numClasses]int{8, 1, 1, 2}},
	}
	for _, c := range cases {
		w, err := parseMix(c.mix)
		if err != nil {
			t.Fatalf("parseMix(%q): %v", c.mix, err)
		}
		period := 0
		for _, v := range w {
			period += v
		}
		var got [numClasses]int
		for i := 0; i < 3*period; i++ {
			class := pickClass(i, w)
			if w[class] == 0 {
				t.Fatalf("mix %q: request %d landed in zero-weight class %s", c.mix, i, classNames[class])
			}
			got[class]++
		}
		for class, n := range c.want {
			if got[class] != 3*n {
				t.Fatalf("mix %q: class counts %v over three periods, want 3×%v", c.mix, got, c.want)
			}
		}
	}
}

// TestPickClassPanicsOffTiling pins the hardened fallthrough: an index
// that escapes the tiling (only reachable if the weight invariant breaks,
// forced here with a corrupted negative weight) must panic instead of
// silently misattributing samples to classCached.
func TestPickClassPanicsOffTiling(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pickClass returned instead of panicking")
		}
	}()
	// No parseMix output can escape the tiling, so corrupt the vector
	// directly: a negative weight drives the scan past every class.
	pickClass(5, [numClasses]int{-1, 0, 0, 0})
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{}, // missing -target
		{"-target", "x", "-mix", "0:0:0"},
		{"-target", "x", "-mix", "a:b"},
		{"-target", "x", "-mix", "1:1:1:1:1"},
		{"-target", "x", "-requests", "0"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &out, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestPickClassTilesTheMix(t *testing.T) {
	w := [numClasses]int{2, 1, 1, 1}
	var got []int
	for i := 0; i < 10; i++ {
		got = append(got, pickClass(i, w))
	}
	want := []int{
		classCached, classCached, classFresh, classCertify, classCommittee,
		classCached, classCached, classFresh, classCertify, classCommittee,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pickClass sequence %v, want %v", got, want)
		}
	}
}

func TestQuantilesNearestRank(t *testing.T) {
	s := make([]float64, 100)
	for i := range s {
		s[i] = float64(i + 1) // 1..100
	}
	q := quantiles(s)
	if q.P50 != 50 || q.P95 != 95 || q.P99 != 99 || q.Max != 100 || q.Count != 100 {
		t.Fatalf("quantiles of 1..100 = %+v", q)
	}
	one := quantiles([]float64{7})
	if one.P50 != 7 || one.P99 != 7 || one.Max != 7 {
		t.Fatalf("singleton quantiles = %+v", one)
	}
}
