// Command fleload is a load generator for a fleserve daemon or fleet. It
// drives a configurable mix of cached replays, fresh simulation jobs,
// certification sweeps, and committee-class elections at a target request
// rate, then reports throughput, cache hit rate, and latency quantiles as
// JSON.
//
// Usage:
//
//	fleload -target URL [-requests N] [-rate R] [-mix C:F:Z:M]
//	        [-scenario S] [-n N] [-trials T] [-seed S] [-out FILE]
//
// The report's throughput_rps counts successful requests only: requests
// that errored (tracked separately in errors) contribute neither latency
// samples nor throughput, so a degrading daemon shows up as throughput
// falling away from the request rate rather than being papered over.
//
// The mix is weights, not a schedule: "8:1:1:2" means out of every twelve
// requests eight replay one pre-warmed identity (cached), one submits a
// never-seen seed (fresh engine work), one runs a small certification
// sweep, and two run a committee-sharded election batch (the fleet's
// heavyweight class: a fresh seed each, against -committee-scenario at
// -committee-n). Missing trailing components are zero, so the pre-existing
// three-part mixes keep their meaning. The interleave is deterministic in
// the request index, so two runs against equal daemons issue the identical
// request sequence.
//
// Latency is time to a terminal job state: for cached requests that is the
// submit round trip (the daemon replays from cache inline); for fresh and
// certify requests it includes the engine or fleet computation. The report
// ends with the daemon's own /statz counters so cache and fleet behaviour
// under load land in the same artifact.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fleload:", err)
		os.Exit(1)
	}
}

// class indexes the request mix.
const (
	classCached = iota
	classFresh
	classCertify
	classCommittee
	numClasses
)

var classNames = [numClasses]string{"cached", "fresh", "certify", "committee"}

// Report is the JSON artifact fleload emits.
type Report struct {
	Target     string  `json:"target"`
	Requests   int     `json:"requests"`
	RateTarget float64 `json:"rate_target_rps"`
	Mix        string  `json:"mix"`
	Scenario   string  `json:"scenario"`
	N          int     `json:"n"`
	Trials     int     `json:"trials"`

	ElapsedMillis float64 `json:"elapsed_ms"`
	// ThroughputRPS is successful requests per second of wall time.
	// Errored requests are excluded — they are counted in Errors instead —
	// so Requests/elapsed and ThroughputRPS diverge exactly when the
	// target misbehaves.
	ThroughputRPS  float64        `json:"throughput_rps"`
	Errors         int            `json:"errors"`
	PerClassCounts map[string]int `json:"per_class_counts"`

	// Latency quantiles in milliseconds, overall and per class.
	Latency map[string]Quantiles `json:"latency_ms"`

	// Stats is the daemon's /statz snapshot after the run.
	Stats service.Stats `json:"stats"`
}

// Quantiles summarizes one latency population.
type Quantiles struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func run(ctx context.Context, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("fleload", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		target   = fs.String("target", "", "daemon URL to load (required), e.g. http://127.0.0.1:8080")
		requests = fs.Int("requests", 100, "total requests to issue")
		rate     = fs.Float64("rate", 25, "target request rate per second")
		mix      = fs.String("mix", "8:1:1", "cached:fresh:certify:committee request weights")
		scen     = fs.String("scenario", "ring/basic-lead/fifo", "scenario for cached and fresh jobs")
		n        = fs.Int("n", 8, "network size")
		commScen = fs.String("committee-scenario", "committee/basic-lead/fifo", "scenario for committee-class jobs")
		commN    = fs.Int("committee-n", 1024, "network size for committee-class jobs")
		trials   = fs.Int("trials", 2000, "trials per job")
		seed     = fs.Int64("seed", 1, "base seed; fresh jobs use seed+1, seed+2, ...")
		outPath  = fs.String("out", "", "write the JSON report here instead of stdout")
		timeout  = fs.Duration("timeout", 5*time.Minute, "overall run deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("-target is required")
	}
	weights, err := parseMix(*mix)
	if err != nil {
		return err
	}
	if *requests <= 0 || *rate <= 0 {
		return fmt.Errorf("-requests and -rate must be positive")
	}

	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()
	client := service.NewClient(*target)
	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("target not healthy: %w", err)
	}

	cachedReq := service.JobRequest{Scenario: *scen, N: *n, Trials: *trials, Seed: *seed}
	certReq := service.CertRequest{Scenario: *scen, N: *n, Trials: *trials, MaxK: 1, Seed: *seed}
	committeeReq := service.JobRequest{Scenario: *commScen, N: *commN, Trials: *trials, Seed: *seed}

	// Pre-warm the cached identity so classCached requests measure replay,
	// not the first computation. Untimed by design.
	if weights[classCached] > 0 {
		states, err := client.Submit(ctx, []service.JobRequest{cachedReq})
		if err != nil {
			return fmt.Errorf("pre-warm: %w", err)
		}
		if _, err := client.Wait(ctx, states[0].ID); err != nil {
			return fmt.Errorf("pre-warm wait: %w", err)
		}
	}

	var (
		mu        sync.Mutex
		latencies [numClasses][]float64
		errCount  int
	)
	record := func(class int, d time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errCount++
			return
		}
		latencies[class] = append(latencies[class], float64(d.Nanoseconds())/1e6)
	}

	issue := func(class, i int) {
		start := time.Now()
		var err error
		switch class {
		case classCached:
			err = submitAndWait(ctx, client, cachedReq)
		case classFresh:
			fresh := cachedReq
			fresh.Seed = *seed + 1 + int64(i)
			err = submitAndWait(ctx, client, fresh)
		case classCertify:
			var states []service.CertState
			states, err = client.SubmitCerts(ctx, []service.CertRequest{certReq})
			if err == nil {
				_, err = client.WaitCert(ctx, states[0].ID)
			}
		case classCommittee:
			// Fresh seeds so every committee request is real hierarchical
			// simulation work, never a cache replay.
			committee := committeeReq
			committee.Seed = *seed + 1 + int64(i)
			err = submitAndWait(ctx, client, committee)
		}
		record(class, time.Since(start), err)
	}

	// Token bucket: one request per tick. The ticker drops ticks when the
	// issuing loop falls behind, so a saturated daemon degrades the achieved
	// rate instead of building an unbounded goroutine backlog on top of the
	// per-request goroutines below.
	interval := time.Duration(float64(time.Second) / *rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	var wg sync.WaitGroup
	begin := time.Now()
	for i := 0; i < *requests; i++ {
		select {
		case <-ctx.Done():
			return fmt.Errorf("deadline before request %d: %w", i, context.Cause(ctx))
		case <-ticker.C:
		}
		class := pickClass(i, weights)
		wg.Add(1)
		go func(class, i int) {
			defer wg.Done()
			issue(class, i)
		}(class, i)
	}
	wg.Wait()
	elapsed := time.Since(begin)

	stats, err := client.Stats(ctx)
	if err != nil {
		return fmt.Errorf("final stats: %w", err)
	}

	rep := Report{
		Target:         *target,
		Requests:       *requests,
		RateTarget:     *rate,
		Mix:            *mix,
		Scenario:       *scen,
		N:              *n,
		Trials:         *trials,
		ElapsedMillis:  float64(elapsed.Nanoseconds()) / 1e6,
		ThroughputRPS:  float64(*requests-errCount) / elapsed.Seconds(),
		Errors:         errCount,
		PerClassCounts: map[string]int{},
		Latency:        map[string]Quantiles{},
		Stats:          stats,
	}
	// quantiles handles empty populations itself, so unexercised classes
	// (and an all-error run's overall row) report Count 0 instead of being
	// silently absent.
	var overall []float64
	for c := 0; c < numClasses; c++ {
		rep.PerClassCounts[classNames[c]] = len(latencies[c])
		rep.Latency[classNames[c]] = quantiles(latencies[c])
		overall = append(overall, latencies[c]...)
	}
	rep.Latency["overall"] = quantiles(overall)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *outPath != "" {
		return os.WriteFile(*outPath, b, 0o644)
	}
	_, err = out.Write(b)
	return err
}

// submitAndWait drives one job to a terminal state and surfaces non-done
// endings as errors.
func submitAndWait(ctx context.Context, client *service.Client, req service.JobRequest) error {
	states, err := client.Submit(ctx, []service.JobRequest{req})
	if err != nil {
		return err
	}
	final, err := client.Wait(ctx, states[0].ID)
	if err != nil {
		return err
	}
	if final.Status != service.StatusDone {
		return fmt.Errorf("job %s ended %s: %s", final.ID, final.Status, final.Error)
	}
	return nil
}

// parseMix parses "C:F:Z:M" weights; missing trailing components are zero.
func parseMix(s string) ([numClasses]int, error) {
	var w [numClasses]int
	parts := strings.Split(s, ":")
	if len(parts) == 0 || len(parts) > numClasses {
		return w, fmt.Errorf("mix %q: want cached:fresh:certify:committee", s)
	}
	total := 0
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return w, fmt.Errorf("mix %q: component %d is not a non-negative integer", s, i)
		}
		w[i] = v
		total += v
	}
	if total == 0 {
		return w, fmt.Errorf("mix %q: all weights are zero", s)
	}
	return w, nil
}

// pickClass maps a request index onto the mix deterministically: the
// weights tile the index space in blocks of sum(weights), so any prefix of
// requests carries (close to) the configured proportions.
func pickClass(i int, w [numClasses]int) int {
	total := 0
	for _, v := range w {
		total += v
	}
	pos := i % total
	for c, v := range w {
		if pos < v {
			return c
		}
		pos -= v
	}
	// pos < total by construction: reaching here means the tiling invariant
	// broke, and returning any class would silently misattribute latency
	// samples.
	panic(fmt.Sprintf("fleload: request %d fell through the mix tiling (weights %v)", i, w))
}

// quantiles computes latency quantiles by sorted rank (nearest-rank
// method): pNN is the smallest sample ≥ NN% of the population. An empty
// population yields the zero Quantiles (Count 0), so callers need no
// emptiness guard of their own.
func quantiles(samples []float64) Quantiles {
	if len(samples) == 0 {
		return Quantiles{Count: 0}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := func(q float64) float64 {
		idx := int(q*float64(len(s))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	return Quantiles{
		Count: len(s),
		P50:   rank(0.50),
		P95:   rank(0.95),
		P99:   rank(0.99),
		Max:   s[len(s)-1],
	}
}
