# Repository tasks. Everything here is also what CI runs; keeping the
# recipes in one place means a green `make check` locally predicts a green
# pipeline.

GO ?= go

.PHONY: build test race check docs-check bench bench-tagged bench-gate certify-smoke certify-golden fleet-smoke dsl-smoke profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine/ ./internal/ring/ ./internal/cointoss/ ./internal/scenario/ ./internal/popproto/

# docs-check is the documentation floor: vet must be clean, every package
# (internal/, cmd/, examples/ and the root) must carry a package doc
# comment, every exported identifier of the public root API must carry a
# doc comment, and new exported root functions must take at most three
# positional parameters (spec/options structs beyond that; deprecated
# wrappers and //doccheck:allow-positional waivers exempt). CI runs this on
# every push.
docs-check:
	$(GO) vet ./...
	$(GO) run ./internal/tools/doccheck -pkgdoc . -apicheck . .

check: build docs-check test race

# service-smoke is the daemon's end-to-end acceptance run: build the real
# fleserve binary, boot it on an ephemeral port, drive a 100-job concurrent
# batch (20 distinct scenarios × 5 copies), and verify completion, a cache
# hit-rate ≥ 0.8, byte-identical replays, and agreement with direct
# in-process scenario runs. CI runs this on every push.
service-smoke:
	$(GO) build -o bin/fleserve ./cmd/fleserve
	$(GO) run ./internal/tools/servicesmoke -bin bin/fleserve

# certify-smoke is the certification layer's end-to-end acceptance run:
# boot the real fleserve binary, drive a 10-scenario POST /certify batch,
# and verify streamed per-candidate progress, decisive verdicts, and
# byte-identical certificate cache replays. CI runs this on every push.
certify-smoke:
	$(GO) build -o bin/fleserve ./cmd/fleserve
	$(GO) run ./internal/tools/certsmoke -bin bin/fleserve

# fleet-smoke is the multi-node acceptance run: boot a real coordinator
# plus two real workers sharing one disk cache directory, kill a worker
# mid-job, and verify byte identity with a direct single-node run, a clean
# fleload mixed batch, and a coordinator restart that replays everything
# from disk with zero engine runs. CI runs this on every push.
fleet-smoke:
	$(GO) build -o bin/fleserve ./cmd/fleserve
	$(GO) build -o bin/fleload ./cmd/fleload
	$(GO) run ./internal/tools/fleetsmoke -bin bin/fleserve -load bin/fleload

# dsl-smoke is the MAR spec pipeline's end-to-end acceptance run: generate
# a protocol and an adversary spec from a fixed seed, boot the real
# fleserve binary with them on its -mar flag, and verify the daemon serves
# the generated scenarios byte-identically to direct in-process runs and
# certifies the generated adversary. CI runs this on every push.
dsl-smoke:
	$(GO) build -o bin/fleserve ./cmd/fleserve
	$(GO) run ./internal/tools/dslsmoke -bin bin/fleserve

# certify-golden regenerates the committed full-catalog certification
# table. The sweep is deterministic (fixed seed, worker-independent
# stopping points), so the nightly pipeline diffs a fresh run against the
# committed file byte-for-byte.
certify-golden:
	$(GO) run ./cmd/flecert -seed 20180516 -format markdown > CERTIFICATES.md

# bench records the benchmark suite to BENCH_<date>.json/.txt (see
# bench.sh); bench-tagged keeps several recordings from one day apart, e.g.
# `make bench-tagged TAG=arena`.
bench:
	./bench.sh

bench-tagged:
	BENCH_TAG=$(TAG) ./bench.sh

# bench-gate guards against performance regressions: it re-times the gate
# benchmarks (E1, E9, E11, Committee10k) and fails if their ns/op geomean
# regressed more than 15% against the committed BENCH baseline
# (BENCH_BASELINE overrides
# the default, the newest committed BENCH_*.txt). CI runs it on every push.
bench-gate:
	$(GO) run ./internal/tools/benchgate -baseline "$(BENCH_BASELINE)"

# profile captures a CPU profile of the live service daemon under an
# E5-shaped load: build fleserve, boot it with -pprof, saturate the engine
# with honest A-LEADuni batches at n=64, and pull /debug/pprof/profile into
# bench/e5.cpu.pprof (inspect with `go tool pprof bench/e5.cpu.pprof`).
profile:
	$(GO) build -o bin/fleserve ./cmd/fleserve
	$(GO) run ./internal/tools/profcapture -bin bin/fleserve -out bench/e5.cpu.pprof
