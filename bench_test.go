package repro

// The benchmark harness has two layers:
//
//   - BenchmarkE1..BenchmarkE15 regenerate the experiment behind each
//     theorem-level table of EXPERIMENTS.md (quick configuration), so
//     `go test -bench 'E[0-9]+'` re-derives every reproduced result.
//   - The protocol/substrate micro-benchmarks measure the cost of the
//     simulator, the protocols at several ring sizes, the attacks, the
//     random function, and the two-party solver.

import (
	"context"
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/attacks"
	"repro/internal/classic"
	"repro/internal/committee"
	"repro/internal/conc"
	"repro/internal/fullnet"
	"repro/internal/harness"
	"repro/internal/protocols/alead"
	"repro/internal/protocols/basiclead"
	"repro/internal/protocols/phaselead"
	"repro/internal/randfunc"
	"repro/internal/ring"
	"repro/internal/shamir"
	"repro/internal/sim"
	"repro/internal/simgraph"
	"repro/internal/syncnet"
	"repro/internal/treeproto"
	"repro/internal/twoparty"
	"repro/internal/wakeup"
)

// benchExperiment wraps one registry experiment as a benchmark.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var exp harness.Experiment
	for _, e := range harness.All() {
		if e.ID == id {
			exp = e
			break
		}
	}
	if exp.Run == nil {
		b.Fatalf("experiment %s not found", id)
	}
	cfg := harness.Config{Quick: true, Seed: 20180516}
	for i := 0; i < b.N; i++ {
		table, err := exp.Run(cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1BasicLeadSingleAdversary(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2SqrtAttack(b *testing.B)               { benchExperiment(b, "E2") }
func BenchmarkE3RandomCoalition(b *testing.B)          { benchExperiment(b, "E3") }
func BenchmarkE4CubicAttack(b *testing.B)              { benchExperiment(b, "E4") }
func BenchmarkE5ALeadResilience(b *testing.B)          { benchExperiment(b, "E5") }
func BenchmarkE6SyncGap(b *testing.B)                  { benchExperiment(b, "E6") }
func BenchmarkE7PhaseResilience(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE8PhaseRushAttack(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkE9SumPhaseAttack(b *testing.B)           { benchExperiment(b, "E9") }
func BenchmarkE10Reductions(b *testing.B)              { benchExperiment(b, "E10") }
func BenchmarkE11TreeImpossibility(b *testing.B)       { benchExperiment(b, "E11") }
func BenchmarkE12Decomposition(b *testing.B)           { benchExperiment(b, "E12") }
func BenchmarkE13MessageComplexity(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14PhaseTransition(b *testing.B)         { benchExperiment(b, "E14") }
func BenchmarkE15ScenarioLandscape(b *testing.B)       { benchExperiment(b, "E15") }

// benchTrialEngine measures the parallel trial engine on a 10k-trial honest
// PhaseAsyncLead workload — the workload behind every ε estimate in the
// suite. The sequential/parallel pair tracks the engine's speedup; both
// produce bit-for-bit identical distributions (enforced in
// internal/ring/distribution_test.go), so only wall clock differs.
func benchTrialEngine(b *testing.B, workers int) {
	b.Helper()
	const (
		n      = 64
		trials = 10_000
	)
	spec := ring.Spec{N: n, Protocol: phaselead.NewDefault(), Seed: 20180516}
	opts := ring.TrialOptions{Workers: workers}
	for i := 0; i < b.N; i++ {
		dist, err := ring.TrialsOpts(context.Background(), spec, trials, opts)
		if err != nil {
			b.Fatal(err)
		}
		if dist.Trials != trials {
			b.Fatalf("ran %d trials, want %d", dist.Trials, trials)
		}
	}
	b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

// BenchmarkTrialsSequential pins the engine to one worker: the pre-engine
// single-threaded baseline.
func BenchmarkTrialsSequential(b *testing.B) { benchTrialEngine(b, 1) }

// BenchmarkTrialsParallel lets the engine use every CPU; on a 4+-core
// machine it runs the same workload ≥ 2× faster than the sequential pin.
// On a single-CPU machine the pair cannot diverge — goroutine parallelism
// is the engine's only lever, so "parallel" is sequential plus scheduling
// overhead — and the benchmark skips rather than record a misleading
// no-speedup pair (the 2026-07-29 BENCH files' 1163 vs 1209 trials/s was
// exactly that artifact of a 1-CPU runner).
func BenchmarkTrialsParallel(b *testing.B) {
	if runtime.NumCPU() < 2 {
		b.Skipf("need ≥ 2 CPUs for a meaningful parallel/sequential pair, have %d", runtime.NumCPU())
	}
	benchTrialEngine(b, 0)
}

// BenchmarkArenaTrial is the arena before/after pair at the trial level:
// the same single-threaded honest-election trial, once rebuilding the whole
// simulation per execution (fresh) and once on a recycled per-worker arena
// (arena). Run with -benchmem; the arena side should show the allocs/op
// floor pinned by TestArenaTrialAllocBudget.
func BenchmarkArenaTrial(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		proto ring.Protocol
		n     int
	}{
		{"alead/n=64", alead.New(), 64},
		{"phaselead/n=64", phaselead.NewDefault(), 64},
	} {
		spec := ring.Spec{N: cfg.n, Protocol: cfg.proto}
		b.Run(cfg.name+"/fresh", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				spec.Seed = int64(i)
				if _, err := ring.Run(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(cfg.name+"/arena", func(b *testing.B) {
			b.ReportAllocs()
			arena := sim.NewArena()
			for i := 0; i < b.N; i++ {
				spec.Seed = int64(i)
				if _, err := ring.RunArena(spec, arena); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchProtocol runs one honest election per iteration and reports the
// message throughput.
func benchProtocol(b *testing.B, proto ring.Protocol, sizes []int) {
	b.Helper()
	for _, n := range sizes {
		n := n
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			delivered := 0
			for i := 0; i < b.N; i++ {
				res, err := ring.Run(ring.Spec{N: n, Protocol: proto, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed {
					b.Fatalf("honest run failed: %v", res.Reason)
				}
				delivered += res.Delivered
			}
			b.ReportMetric(float64(delivered)/float64(b.N), "msgs/op")
		})
	}
}

// BenchmarkCommittee10k is the hierarchical-election gate benchmark: one
// full committee-sharded trial at n=10,000 (≈ 100 groups of ≈ 100 running
// A-LEADuni, composed through the delegate ring) per iteration, on a
// recycled runner. It tracks the Θ(n√n) message bill that makes 10⁴–10⁵
// rings tractable where a flat election's Θ(n²) is not.
func BenchmarkCommittee10k(b *testing.B) {
	e, err := committee.New(10000, committee.InnerALead)
	if err != nil {
		b.Fatal(err)
	}
	r := e.Runner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed {
			b.Fatalf("trial %d failed: %v", i, res.Reason)
		}
	}
	b.ReportMetric(float64(e.MessagesPerTrial()), "msgs/op")
}

// BenchmarkCommittee50k is the same trial at the roadmap's upper target
// n=50,000 (≈ 223 groups of ≈ 224): per-trial time here × 1000 / workers
// bounds the 1k-trial batch the nightly smoke runs in wall-clock minutes.
func BenchmarkCommittee50k(b *testing.B) {
	e, err := committee.New(50000, committee.InnerALead)
	if err != nil {
		b.Fatal(err)
	}
	r := e.Runner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed {
			b.Fatalf("trial %d failed: %v", i, res.Reason)
		}
	}
	b.ReportMetric(float64(e.MessagesPerTrial()), "msgs/op")
}

func BenchmarkBasicLeadHonest(b *testing.B) {
	benchProtocol(b, basiclead.New(), []int{64, 256, 1024})
}

func BenchmarkALeadHonest(b *testing.B) {
	benchProtocol(b, alead.New(), []int{64, 256, 1024})
}

func BenchmarkPhaseLeadHonest(b *testing.B) {
	benchProtocol(b, phaselead.NewDefault(), []int{64, 256, 1024})
}

func BenchmarkChangRoberts(b *testing.B) {
	benchProtocol(b, classic.ChangRoberts{}, []int{64, 256, 1024})
}

func BenchmarkPeterson(b *testing.B) {
	benchProtocol(b, classic.Peterson{}, []int{64, 256, 1024})
}

func BenchmarkCubicAttackExecution(b *testing.B) {
	for _, n := range []int{256, 1000} {
		n := n
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			attack := attacks.Rushing{Place: attacks.PlaceStaggered}
			for i := 0; i < b.N; i++ {
				dev, err := attack.Plan(n, 2, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				res, err := ring.Run(ring.Spec{N: n, Protocol: alead.New(), Deviation: dev, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed || res.Output != 2 {
					b.Fatalf("attack did not force: failed=%v out=%d", res.Failed, res.Output)
				}
			}
		})
	}
}

func BenchmarkPhaseRushingExecution(b *testing.B) {
	const n = 400
	proto := phaselead.NewDefault()
	attack := attacks.PhaseRushing{Protocol: proto}
	for i := 0; i < b.N; i++ {
		dev, err := attack.Plan(n, 5, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		res, err := ring.Run(ring.Spec{N: n, Protocol: proto, Deviation: dev, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed || res.Output != 5 {
			b.Fatalf("attack did not force: failed=%v out=%d", res.Failed, res.Output)
		}
	}
}

func BenchmarkConcurrentRuntime(b *testing.B) {
	const n = 128
	proto := alead.New()
	for i := 0; i < b.N; i++ {
		res, err := conc.Run(ring.Spec{N: n, Protocol: proto, Seed: int64(i)}, conc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed {
			b.Fatalf("failed: %v", res.Reason)
		}
	}
}

func BenchmarkRandFuncEval(b *testing.B) {
	const n = 1024
	f, err := randfunc.New(1, n)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]int64, n)
	vals := make([]int64, n/2)
	for i := range data {
		data[i] = int64(i % n)
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = f.Eval(data, vals)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		acc := f.Accumulate(data, vals)
		for i := 0; i < b.N; i++ {
			x := int64(i % n)
			trial := acc ^ f.CoordData(5, data[4]) ^ f.CoordData(5, x)
			_ = f.Finalize(trial)
		}
	})
}

func BenchmarkCoordinateSearch(b *testing.B) {
	// The steering search at the heart of the PhaseRushing attack.
	const n = 1024
	proto := phaselead.NewDefault()
	cfg, err := proto.Config(n)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]int64, n)
	acc := cfg.F.Accumulate(data, nil)
	for i := 0; i < b.N; i++ {
		target := int64(i%n) + 1
		attack := attacks.PhaseRushing{Protocol: proto}
		_ = attack // the search itself is internal; emulate its cost:
		found := false
		for x := int64(0); x < int64(n); x++ {
			if cfg.F.Finalize(acc^cfg.F.CoordData(7, x)) == target {
				found = true
				break
			}
		}
		_ = found
	}
}

func BenchmarkTwoPartySolver(b *testing.B) {
	protos := make([]*twoparty.Protocol, 8)
	for i := range protos {
		rng := rand.New(rand.NewSource(int64(i)))
		protos[i] = twoparty.RandomProtocol(rng, 3, 3, 4, 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := protos[i%len(protos)]
		v := p.Classify()
		if !v.SatisfiesLemmaF2() {
			b.Fatal("dichotomy violated")
		}
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	// Raw event-loop cost: messages per second on a large honest run.
	const n = 2048
	proto := alead.New()
	delivered := 0
	for i := 0; i < b.N; i++ {
		res, err := ring.Run(ring.Spec{N: n, Protocol: proto, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		delivered += res.Delivered
	}
	b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "msgs/s")
}

func BenchmarkShamirSplitReconstruct(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const (
		n         = 32
		threshold = 16
	)
	for i := 0; i < b.N; i++ {
		shares, err := shamir.Split(int64(i%1000), threshold, n, rng)
		if err != nil {
			b.Fatal(err)
		}
		got, err := shamir.Reconstruct(shares[:threshold])
		if err != nil || got != int64(i%1000) {
			b.Fatalf("round trip failed: %v %d", err, got)
		}
	}
}

func BenchmarkFullnetElection(b *testing.B) {
	e, err := fullnet.New(16, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := e.Run(int64(i), nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed {
			b.Fatalf("failed: %v", res.Reason)
		}
	}
}

func BenchmarkSyncnetElection(b *testing.B) {
	const n = 64
	for i := 0; i < b.N; i++ {
		procs, err := syncnet.NewCompleteElection(n, 0, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		res, err := syncnet.Run(procs, n+4)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed {
			b.Fatalf("failed: %v", res.Reason)
		}
	}
}

func BenchmarkWakeupElection(b *testing.B) {
	const n = 128
	proto := wakeup.New()
	for i := 0; i < b.N; i++ {
		res, err := ring.Run(ring.Spec{N: n, Protocol: proto, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed {
			b.Fatalf("failed: %v", res.Reason)
		}
	}
}

func BenchmarkTreeElection(b *testing.B) {
	tree, err := simgraph.Path(64)
	if err != nil {
		b.Fatal(err)
	}
	proto, err := treeproto.New(tree, 32)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := proto.Run(treeproto.Spec{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed {
			b.Fatalf("failed: %v", res.Reason)
		}
	}
}
