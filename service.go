package repro

import (
	"context"

	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/service"
)

// The simulation service: a resident daemon (cmd/fleserve) that exposes the
// scenario registry over HTTP with batched scheduling, in-flight
// deduplication, a content-addressed result cache, and NDJSON progress
// streaming.
type (
	// ServiceConfig tunes one daemon instance (address, engine workers
	// per job, concurrent jobs, cache capacity, code version).
	ServiceConfig = service.Config
	// ServiceServer is a daemon instance; embed its Handler or run
	// ListenAndServe.
	ServiceServer = service.Server
	// ServiceClient is a typed HTTP client for a running daemon.
	ServiceClient = service.Client
	// ServiceJobRequest describes one unit of trial work for POST /jobs.
	ServiceJobRequest = service.JobRequest
	// ServiceJobState is a job's wire state: status, progress snapshot,
	// and (when done) the exact cached result bytes.
	ServiceJobState = service.JobState
	// ServiceStats is the daemon's /statz payload: cache hit rate,
	// worker utilization, trial throughput.
	ServiceStats = service.Stats
	// ScenarioSnapshot is one deterministic progress point of a running
	// trial batch (trials completed plus the running bias estimate under
	// its Wilson interval).
	ScenarioSnapshot = scenario.Snapshot
	// TrialArenaPool recycles per-worker simulation arenas across trial
	// batches (TrialOptions.Arenas, ScenarioOpts.Arenas); one pool shared
	// by many batches keeps workspaces resident across jobs.
	TrialArenaPool = engine.ArenaPool
)

// NewServiceServer builds a daemon instance without binding a socket; use
// its Handler to embed the API, or ListenAndServe to run it. It fails only
// on an unusable cache directory or fleet configuration.
func NewServiceServer(cfg ServiceConfig) (*ServiceServer, error) { return service.New(cfg) }

// Serve runs the simulation service daemon on cfg.Addr until ctx is
// canceled, then shuts down gracefully. It is what cmd/fleserve calls.
func Serve(ctx context.Context, cfg ServiceConfig) error {
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	return srv.ListenAndServe(ctx)
}

// NewServiceClient returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewServiceClient(baseURL string) *ServiceClient { return service.NewClient(baseURL) }

// NewTrialArenaPool returns an empty arena pool for persistent-arena trial
// batches.
func NewTrialArenaPool() *TrialArenaPool { return engine.NewArenaPool() }

// ServiceBuildVersion returns the code revision used in job cache keys: the
// VCS revision baked into the binary, or "dev" when none is recorded.
func ServiceBuildVersion() string { return service.BuildVersion() }
