package popproto

import (
	"fmt"

	"repro/internal/sim"
)

// MaxTableStates bounds a Table's state space. Interaction tables model
// compact O(1)-state protocols (and feed the fuzzer); the n-state labeling
// election has its own dedicated Runner.
const MaxTableStates = 16

// Pair is the post-interaction state pair of one transition: the initiator
// moves to A, the responder to B.
type Pair struct {
	A, B uint8
}

// Table is an arbitrary finite population-protocol transition table over
// states [0, Q). Delta is row-major: Delta[a*Q+b] is the transition fired
// when an initiator in state a meets a responder in state b. Leader is a
// bitmask marking which states count as leader states for the convergence
// detector.
type Table struct {
	Q      int
	Delta  []Pair
	Leader uint64
}

// Validate checks the table is well-formed: 1 ≤ Q ≤ MaxTableStates, the
// transition matrix is exactly Q×Q, and every post-state is in range.
func (t *Table) Validate() error {
	if t.Q < 1 || t.Q > MaxTableStates {
		return fmt.Errorf("popproto: table has %d states, want 1..%d", t.Q, MaxTableStates)
	}
	if len(t.Delta) != t.Q*t.Q {
		return fmt.Errorf("popproto: table has %d transitions, want %d", len(t.Delta), t.Q*t.Q)
	}
	for i, p := range t.Delta {
		if int(p.A) >= t.Q || int(p.B) >= t.Q {
			return fmt.Errorf("popproto: transition %d targets state (%d,%d) outside [0,%d)", i, p.A, p.B, t.Q)
		}
	}
	return nil
}

// leaderState reports whether s is a leader state under the mask.
func (t *Table) leaderState(s uint8) bool { return t.Leader>>s&1 == 1 }

// Run executes the table protocol on a directed ring of n agents, all
// starting in state 0, under the same uniform random-edge scheduler and
// windowed convergence detector as Runner: once exactly one agent sits in
// a leader state for window consecutive interactions (0 means 2n), that
// agent is elected. Unlike the labeling election there is no closure scan
// — arbitrary tables have no absorbing certificate — so the window is the
// whole detector, and the elected position of a table that keeps churning
// is whatever the window first pins down. Trials that exhaust maxSteps
// (0 means 64·n³) fail with sim.FailStepLimit.
func (t *Table) Run(n int, seed int64, window, maxSteps int) (sim.Result, error) {
	if err := t.Validate(); err != nil {
		return sim.Result{}, err
	}
	if n < 2 {
		return sim.Result{}, fmt.Errorf("popproto: need n ≥ 2 agents, got %d", n)
	}
	if window < 0 || maxSteps < 0 {
		return sim.Result{}, fmt.Errorf("popproto: negative window or step budget")
	}
	if window == 0 {
		window = DefaultWindowFactor * n
	}
	if maxSteps == 0 {
		maxSteps = DefaultStepFactor * n * n * n
	}
	states := make([]uint8, n)
	leaders := 0
	if t.leaderState(0) {
		leaders = n
	}
	rng := sim.NewStream(seed, 0)
	streak := 0
	for step := 1; step <= maxSteps; step++ {
		u := rng.Intn(n)
		v := u + 1
		if v == n {
			v = 0
		}
		p := t.Delta[int(states[u])*t.Q+int(states[v])]
		for _, ch := range [2]struct {
			idx  int
			next uint8
		}{{u, p.A}, {v, p.B}} {
			old := states[ch.idx]
			if old == ch.next {
				continue
			}
			if t.leaderState(old) {
				leaders--
			}
			if t.leaderState(ch.next) {
				leaders++
			}
			states[ch.idx] = ch.next
		}
		if leaders != 1 {
			streak = 0
			continue
		}
		streak++
		if streak < window {
			continue
		}
		for i, s := range states {
			if t.leaderState(s) {
				return sim.Result{Output: int64(i + 1), Delivered: step, Steps: step}, nil
			}
		}
	}
	return sim.Result{
		Failed:    true,
		Reason:    sim.FailStepLimit,
		Delivered: maxSteps,
		Steps:     maxSteps,
	}, nil
}

// TableFromBytes decodes a Table and ring size from an arbitrary byte
// string — the fuzzing frontend. The first byte picks Q in [1, MaxTableStates]
// and the second the ring size in [2, 9]; subsequent bytes fill the
// transition matrix (missing bytes read as zero, so every input decodes)
// and the final byte of the matrix region seeds the leader mask. The
// decoded table always passes Validate.
func TableFromBytes(data []byte) (*Table, int) {
	at := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	q := int(at(0))%MaxTableStates + 1
	n := int(at(1))%8 + 2
	t := &Table{Q: q, Delta: make([]Pair, q*q)}
	for i := range t.Delta {
		b := at(2 + 2*i)
		t.Delta[i] = Pair{A: uint8(int(b) % q), B: uint8(int(at(3+2*i)) % q)}
	}
	t.Leader = uint64(at(2+2*len(t.Delta))) | 1 // state 0 always a leader state
	t.Leader &= 1<<q - 1
	return t, n
}
