package popproto

import (
	"fmt"

	"repro/internal/sim"
)

// Default budget multipliers. The broken-edge walks coalesce diffusively —
// Θ(n³) expected interactions — so the step budget scales with n³ and the
// stabilization window with the ring size. The generous constant keeps the
// step-limit tail negligible (empirically < 10⁻⁴ of trials at the default
// budget would exceed even a quarter of it; see TestConvergenceBudget).
const (
	// DefaultWindowFactor scales the default stabilization window: a trial
	// must hold exactly one label-0 agent for 2n consecutive interactions
	// before the closure scan runs.
	DefaultWindowFactor = 2
	// DefaultStepFactor scales the default interaction budget: 64·n³.
	DefaultStepFactor = 64
)

// Config describes one population-protocol election.
type Config struct {
	// N is the number of agents on the directed ring. N ≥ 2.
	N int
	// K is the coalition size of the coalition-bias deviation; 0 runs the
	// honest protocol. The coalition is Target and the K−1 agents after it.
	K int
	// Target is the 1-based position the coalition steers the election to.
	// Required (in [1, N]) when K > 0, ignored when K = 0.
	Target int
	// Window is the stabilization window: the number of consecutive
	// interactions with exactly one label-0 agent required before the
	// convergence detector runs its closure scan. 0 means 2·N.
	Window int
	// MaxSteps is the interaction budget; a trial that exhausts it fails
	// with sim.FailStepLimit. 0 means 64·N³.
	MaxSteps int
	// Start is an optional initial labeling (len N, values in [0, N)) for
	// self-stabilization experiments. Nil means the honest symmetric start,
	// all labels zero. Coalition agents pin their labels regardless.
	Start []int
}

// Runner executes trials of the self-stabilizing ring election. A Runner
// belongs to one goroutine — the trial engine builds one per work-claim
// chunk — and recycles its label buffer across trials, so a chunk of
// trials allocates nothing.
type Runner struct {
	cfg      Config
	window   int
	maxSteps int
	labels   []int
	pinned   []int // pinned[i] ≥ 0: agent i is coalition, label fixed; nil when honest
}

// NewRunner validates the configuration and builds a trial runner.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("popproto: need n ≥ 2 agents, got %d", cfg.N)
	}
	if cfg.K < 0 || cfg.K > cfg.N {
		return nil, fmt.Errorf("popproto: coalition size %d outside [0, %d]", cfg.K, cfg.N)
	}
	if cfg.K > 0 && (cfg.Target < 1 || cfg.Target > cfg.N) {
		return nil, fmt.Errorf("popproto: target %d outside [1, %d]", cfg.Target, cfg.N)
	}
	if cfg.Window < 0 || cfg.MaxSteps < 0 {
		return nil, fmt.Errorf("popproto: negative window or step budget")
	}
	if cfg.Start != nil {
		if len(cfg.Start) != cfg.N {
			return nil, fmt.Errorf("popproto: start labeling has %d entries, want %d", len(cfg.Start), cfg.N)
		}
		for i, x := range cfg.Start {
			if x < 0 || x >= cfg.N {
				return nil, fmt.Errorf("popproto: start label %d at position %d outside [0, %d)", x, i+1, cfg.N)
			}
		}
	}
	r := &Runner{
		cfg:      cfg,
		window:   cfg.Window,
		maxSteps: cfg.MaxSteps,
		labels:   make([]int, cfg.N),
	}
	if r.window == 0 {
		r.window = DefaultWindowFactor * cfg.N
	}
	if r.maxSteps == 0 {
		r.maxSteps = DefaultStepFactor * cfg.N * cfg.N * cfg.N
	}
	if cfg.K > 0 {
		// The coalition pins the target's frame: in the perfect labeling
		// electing Target, the agent j positions after it holds label j.
		r.pinned = make([]int, cfg.N)
		for i := range r.pinned {
			r.pinned[i] = -1
		}
		for j := 0; j < cfg.K; j++ {
			r.pinned[(cfg.Target-1+j)%cfg.N] = j
		}
	}
	return r, nil
}

// Window returns the resolved stabilization window.
func (r *Runner) Window() int { return r.window }

// MaxSteps returns the resolved interaction budget.
func (r *Runner) MaxSteps() int { return r.maxSteps }

// Run executes one trial: interactions are drawn from the trial's
// sim.Stream until the convergence detector fires or the budget runs out.
// On success Output is the elected agent's 1-based ring position;
// Delivered and Steps both count interactions (every interaction delivers
// exactly one state report). The result has nil Outputs/Statuses — agents
// never terminate, per-agent state is the labeling itself.
func (r *Runner) Run(trialSeed int64) sim.Result {
	n := r.cfg.N
	labels := r.labels
	leaders := 0 // agents currently holding label 0
	for i := range labels {
		x := 0
		if r.cfg.Start != nil {
			x = r.cfg.Start[i]
		}
		if r.pinned != nil && r.pinned[i] >= 0 {
			x = r.pinned[i]
		}
		labels[i] = x
		if x == 0 {
			leaders++
		}
	}

	rng := sim.NewStream(trialSeed, 0)
	streak := 0
	checkAt := r.window // streak length at which the next closure scan runs
	for step := 1; step <= r.maxSteps; step++ {
		u := rng.Intn(n)
		v := u + 1
		if v == n {
			v = 0
		}
		// The responder adopts the initiator's successor label — unless it
		// is a coalition agent biasing its response by refusing the rule.
		if r.pinned == nil || r.pinned[v] < 0 {
			next := labels[u] + 1
			if next == n {
				next = 0
			}
			if old := labels[v]; old != next {
				if old == 0 {
					leaders--
				}
				if next == 0 {
					leaders++
				}
				labels[v] = next
			}
		}
		if leaders != 1 {
			streak = 0
			checkAt = r.window
			continue
		}
		streak++
		if streak < checkAt {
			continue
		}
		if pos, ok := r.perfect(); ok {
			return sim.Result{Output: int64(pos), Delivered: step, Steps: step}
		}
		checkAt = streak + n // amortize the O(n) closure scan
	}
	return sim.Result{
		Failed:    true,
		Reason:    sim.FailStepLimit,
		Delivered: r.maxSteps,
		Steps:     r.maxSteps,
	}
}

// perfect is the closure scan: it reports whether the current labeling is
// a fixed point (every edge satisfies v.x = u.x + 1 mod n) and, if so, the
// 1-based position of the unique label-0 agent. Perfect labelings are
// absorbing, so a true answer is terminal, not transient.
func (r *Runner) perfect() (leaderPos int, ok bool) {
	n := r.cfg.N
	leaderPos = 0
	for u := 0; u < n; u++ {
		v := u + 1
		if v == n {
			v = 0
		}
		next := r.labels[u] + 1
		if next == n {
			next = 0
		}
		if r.labels[v] != next {
			return 0, false
		}
		if r.labels[u] == 0 {
			leaderPos = u + 1
		}
	}
	return leaderPos, true
}
