package popproto

import (
	"reflect"
	"testing"
)

// FuzzTableRun drives arbitrary interaction tables through the population
// scheduler: every byte string decodes to a valid table (TableFromBytes),
// and every decoded table must run without panicking, deterministically,
// and either elect a position on the ring or fail with a classified
// reason. This is the native fuzz target CI runs in the 10-second smoke.
func FuzzTableRun(f *testing.F) {
	f.Add([]byte{}, int64(1))
	f.Add([]byte{1, 0, 0, 1, 0, 1, 1, 0, 1, 1}, int64(20180516))
	f.Add([]byte{7, 3, 200, 100, 50, 25, 12, 6, 3, 1}, int64(-9))
	f.Add(make([]byte, 520), int64(42))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		tab, n := TableFromBytes(data)
		// A tight budget keeps each input cheap; the scheduler and
		// detector code paths are identical at any budget.
		res, err := tab.Run(n, seed, 0, 4096)
		if err != nil {
			t.Fatalf("decoded table failed to run: %v", err)
		}
		again, err := tab.Run(n, seed, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, again) {
			t.Fatalf("table run not deterministic: %+v vs %+v", res, again)
		}
		if res.Failed {
			if res.Reason == 0 {
				t.Fatalf("failed without a reason: %+v", res)
			}
			return
		}
		if res.Output < 1 || res.Output > int64(n) {
			t.Fatalf("elected position %d outside [1,%d]", res.Output, n)
		}
		if res.Steps <= 0 || res.Delivered != res.Steps {
			t.Fatalf("interaction accounting broken: %+v", res)
		}
	})
}
