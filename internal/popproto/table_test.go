package popproto

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// demoteTable is the minimal duel protocol: state 0 is a leader, state 1 a
// follower, and a leader initiator demotes a leader responder. On a ring
// of 2 it elects whichever agent initiates first; on larger rings it can
// deadlock with non-adjacent survivors, which is exactly the step-limit
// behaviour TestTableStepLimit pins.
func demoteTable() *Table {
	return &Table{
		Q: 2,
		Delta: []Pair{
			{A: 0, B: 1}, // leader meets leader: responder demoted
			{A: 0, B: 1}, // leader meets follower: no change
			{A: 1, B: 0}, // follower meets leader: no change
			{A: 1, B: 1}, // follower meets follower: no change
		},
		Leader: 1,
	}
}

func TestTableValidate(t *testing.T) {
	bad := []*Table{
		{Q: 0},
		{Q: MaxTableStates + 1},
		{Q: 2, Delta: make([]Pair, 3)},
		{Q: 2, Delta: []Pair{{A: 2}, {}, {}, {}}},
		{Q: 2, Delta: []Pair{{B: 7}, {}, {}, {}}},
	}
	for i, tab := range bad {
		if err := tab.Validate(); err == nil {
			t.Errorf("table %d passed validation", i)
		}
	}
	if err := demoteTable().Validate(); err != nil {
		t.Errorf("demote table rejected: %v", err)
	}
	if _, err := demoteTable().Run(1, 1, 0, 0); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := demoteTable().Run(4, 1, -1, 0); err == nil {
		t.Error("negative window accepted")
	}
}

func TestTableElectsOnPair(t *testing.T) {
	tab := demoteTable()
	seen := map[int64]bool{}
	for seed := int64(0); seed < 40; seed++ {
		res, err := tab.Run(2, seed, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("seed %d failed: %v", seed, res.Reason)
		}
		if res.Output != 1 && res.Output != 2 {
			t.Fatalf("seed %d elected %d", seed, res.Output)
		}
		seen[res.Output] = true
		again, err := tab.Run(2, seed, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, again) {
			t.Fatalf("seed %d not deterministic: %+v vs %+v", seed, res, again)
		}
	}
	if !seen[1] || !seen[2] {
		t.Errorf("first-mover election never elected both positions: %v", seen)
	}
}

func TestTableStepLimit(t *testing.T) {
	// The identity table never changes state, so all n agents stay leaders
	// and the detector never fires.
	tab := &Table{Q: 2, Delta: []Pair{{0, 0}, {0, 1}, {1, 0}, {1, 1}}, Leader: 1}
	res, err := tab.Run(4, 3, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.Reason != sim.FailStepLimit || res.Steps != 500 {
		t.Fatalf("identity table should exhaust the budget, got %+v", res)
	}
}

func TestTableFromBytesAlwaysValid(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		{0},
		{255, 255},
		{7, 3, 200, 100, 50},
		make([]byte, 600),
	}
	rng := sim.NewStream(5, 0)
	long := make([]byte, 64)
	for i := range long {
		long[i] = byte(rng.Uint64())
	}
	inputs = append(inputs, long)
	for i, data := range inputs {
		tab, n := TableFromBytes(data)
		if err := tab.Validate(); err != nil {
			t.Errorf("input %d decoded an invalid table: %v", i, err)
		}
		if n < 2 || n > 9 {
			t.Errorf("input %d decoded ring size %d", i, n)
		}
		if tab.Leader&1 == 0 {
			t.Errorf("input %d: state 0 must be a leader state", i)
		}
	}
}
