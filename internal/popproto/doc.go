// Package popproto implements a population-protocol computation model: a
// uniform random-pair interaction scheduler over the agents of a directed
// ring, finite per-agent state, and a convergence detector that declares an
// election decided once every agent agrees on the leader and the agreement
// has held through a configurable stabilization window.
//
// The model differs from the message-passing sim.Network path in every
// axis that matters to the paper's fairness question. There are no
// messages, buffers, or schedulers: one step is one interaction — the
// scheduler draws a directed ring edge (u, v) uniformly from a single
// sim.Stream and the responder v updates its state from the initiator u's
// state by a fixed transition rule. Agents are anonymous and never
// terminate; an election is "decided" only in the eventual-stabilization
// sense, which is why the harness needs an explicit convergence detector
// rather than the terminate-and-compare outcome rule of Section 2.
//
// # The self-stabilizing ring leader election protocol
//
// Runner executes a modular-labeling election in the style of the
// self-stabilizing ring protocols from the population-protocol literature
// (agents know the exact ring size n, which is provably necessary for
// self-stabilizing leader election in this model). Every agent holds a
// label x ∈ [0, n); on an interaction across edge (u, v) the responder
// adopts v.x ← u.x + 1 (mod n). Call an edge broken when it violates
// v.x = u.x + 1. The labeling "i-th agent after the leader holds label i"
// has no broken edges, and is a fixed point of the rule: once reached,
// no interaction changes any state, and exactly one agent — the leader —
// holds label 0. Conversely, telescoping the label increments around the
// ring shows a configuration with exactly one broken edge cannot exist, so
// every non-perfect configuration keeps at least two broken edges, each of
// which moves forward under the update rule and annihilates on collision:
// from any initial labeling the protocol reaches some perfect labeling
// with probability 1. That is self-stabilization by construction — no
// initial-state assumption, no timers, no reset.
//
// Fairness of the honest election is exact, not asymptotic: the honest
// start (all labels zero) is rotation-invariant and the dynamics commute
// with rotation, so the elected agent is uniform over the n positions.
// The price is time. A flat ring election decides in Θ(n²) messages
// (Θ(n) time); here the broken-edge walks must coalesce diffusively, which
// costs Θ(n³) expected interactions — the fairness-versus-cost trade-off
// the scenario catalog quantifies against the message-passing protocols.
//
// # Deviations
//
// The coalition-bias family (Config.K, Config.Target) models k colluding
// agents who bias their interaction responses: each coalition agent pins
// its label to the value the target's perfect labeling assigns it and, as
// a responder, refuses the update rule. Pinning makes the target's frame
// the only reachable fixed point — the honest majority's own repair
// dynamics then elect the target with probability 1, for a fairness gain
// of 1 − 1/n at any coalition size k ≥ 1.
//
// # Detection and determinism
//
// Run declares convergence when exactly one agent holds label 0 for
// Config.Window consecutive interactions and a full closure scan confirms
// the labeling is perfect (the scan is exact because perfect labelings are
// absorbing). Trials that exhaust Config.MaxSteps report
// sim.FailStepLimit, modelling an execution that runs forever.
//
// All randomness of a trial — the interaction sequence — comes from one
// counter-based sim.Stream keyed by the trial seed, so the sim-v2
// determinism contract holds unchanged: a trial is a pure function of
// (config, trial seed), batches shard over workers and fleet nodes
// byte-identically, and the content-addressed job cache keys need no new
// fields.
//
// Table provides the same scheduler and detector for arbitrary finite
// interaction tables over a bounded state space. It is the fuzzing
// surface: FuzzTableRun drives randomly generated tables through the
// engine loop and checks determinism and output sanity for all of them.
package popproto
