package popproto

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestNewRunnerValidation(t *testing.T) {
	bad := []Config{
		{N: 1},
		{N: 8, K: -1},
		{N: 8, K: 9},
		{N: 8, K: 1},             // coalition without a target
		{N: 8, K: 1, Target: 9},  // target off the ring
		{N: 8, K: 1, Target: -1}, // target off the ring
		{N: 8, Window: -1},
		{N: 8, MaxSteps: -1},
		{N: 8, Start: []int{0}},                      // wrong length
		{N: 2, Start: []int{0, 2}},                   // label out of range
		{N: 2, Start: []int{0, -1}},                  // label out of range
		{N: 4, K: 4, Target: 0, Start: []int{0, 0}}, // first error wins, still an error
	}
	for _, cfg := range bad {
		if _, err := NewRunner(cfg); err == nil {
			t.Errorf("NewRunner(%+v) accepted an invalid config", cfg)
		}
	}
	r, err := NewRunner(Config{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Window() != 2*8 || r.MaxSteps() != 64*8*8*8 {
		t.Errorf("defaults: window=%d maxSteps=%d", r.Window(), r.MaxSteps())
	}
	if _, err := NewRunner(Config{N: 8, K: 8, Target: 3}); err != nil {
		t.Errorf("full-ring coalition rejected: %v", err)
	}
}

func TestRunDeterminism(t *testing.T) {
	r1, err := NewRunner(Config{N: 12})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(Config{N: 12})
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for seed := int64(1); seed <= 64; seed++ {
		a, b := r1.Run(seed), r2.Run(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: %+v vs %+v", seed, a, b)
		}
		// Runner state must not leak across trials: replay on the same
		// runner reproduces the trial too.
		if c := r1.Run(seed); !reflect.DeepEqual(a, c) {
			t.Fatalf("seed %d replay on a used runner: %+v vs %+v", seed, a, c)
		}
		if !reflect.DeepEqual(a, r1.Run(seed+1000)) {
			differ = true
		}
	}
	if !differ {
		t.Error("all seeds produced identical trials")
	}
}

// TestHonestUniform checks the exact-uniformity claim: the honest election
// from the symmetric all-zero start is uniform over positions by rotation
// symmetry, so a χ² test against the analytic distribution must pass
// comfortably, with zero failed trials.
func TestHonestUniform(t *testing.T) {
	const n, trials = 8, 4000
	r, err := NewRunner(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		res := r.Run(int64(i))
		if res.Failed {
			t.Fatalf("trial %d failed: %v", i, res.Reason)
		}
		counts[res.Output-1]++
	}
	analytic := make([]int, n)
	for i := range analytic {
		analytic[i] = trials / n
	}
	chi2, p, err := stats.ChiSquareHomogeneity(counts, analytic)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-6 {
		t.Errorf("honest leader distribution not uniform: χ²=%.2f p=%g counts=%v", chi2, p, counts)
	}
}

// TestSelfStabilizes drives the election from adversarial initial
// labelings — the configurations a self-stabilizing protocol must recover
// from — and checks every trial still converges to a perfect labeling.
func TestSelfStabilizes(t *testing.T) {
	const n = 10
	starts := [][]int{
		nil,                             // honest symmetric start
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0},  // reversed wheel
		{0, 1, 2, 3, 4, 0, 1, 2, 3, 4},  // two half-frames
		{5, 5, 5, 5, 5, 5, 5, 5, 5, 5},  // no label-0 agent at all
		{0, 2, 4, 6, 8, 1, 3, 5, 7, 9},  // interleaved junk
	}
	randomStart := make([]int, n)
	rng := sim.NewStream(99, 1)
	for i := range randomStart {
		randomStart[i] = rng.Intn(n)
	}
	starts = append(starts, randomStart)
	for si, start := range starts {
		r, err := NewRunner(Config{N: n, Start: start})
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 50; seed++ {
			res := r.Run(seed)
			if res.Failed {
				t.Fatalf("start %d seed %d did not stabilize: %v", si, seed, res.Reason)
			}
			if res.Output < 1 || res.Output > n {
				t.Fatalf("start %d seed %d elected position %d outside [1,%d]", si, seed, res.Output, n)
			}
			if pos, ok := r.perfect(); !ok || int64(pos) != res.Output {
				t.Fatalf("start %d seed %d: detector fired on a non-perfect labeling (pos=%d ok=%v out=%d)",
					si, seed, pos, ok, res.Output)
			}
		}
	}
}

// TestCoalitionBiasForcesTarget checks the deviation family's power: the
// pinned frame makes the target the only reachable fixed point, so every
// trial elects it, at any coalition size.
func TestCoalitionBiasForcesTarget(t *testing.T) {
	const n = 8
	for _, k := range []int{1, 3, n} {
		for _, target := range []int{1, 5, n} {
			r, err := NewRunner(Config{N: n, K: k, Target: target})
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 100; seed++ {
				res := r.Run(seed)
				if res.Failed {
					t.Fatalf("k=%d target=%d seed=%d failed: %v", k, target, seed, res.Reason)
				}
				if res.Output != int64(target) {
					t.Fatalf("k=%d target=%d seed=%d elected %d", k, target, seed, res.Output)
				}
			}
		}
	}
}

// TestPerfectClosure pins the closure predicate on hand-built labelings.
func TestPerfectClosure(t *testing.T) {
	r, err := NewRunner(Config{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		labels []int
		pos    int
		ok     bool
	}{
		{[]int{0, 1, 2, 3, 4}, 1, true},
		{[]int{3, 4, 0, 1, 2}, 3, true},
		{[]int{1, 2, 3, 4, 0}, 5, true},
		{[]int{0, 0, 0, 0, 0}, 0, false},
		{[]int{0, 1, 2, 3, 3}, 0, false},
		{[]int{0, 1, 2, 4, 3}, 0, false},
	}
	for _, c := range cases {
		copy(r.labels, c.labels)
		pos, ok := r.perfect()
		if pos != c.pos || ok != c.ok {
			t.Errorf("perfect(%v) = (%d, %v), want (%d, %v)", c.labels, pos, ok, c.pos, c.ok)
		}
	}
}

// TestStepLimit checks the budget surfaces as the run-forever failure.
func TestStepLimit(t *testing.T) {
	// A 2-agent coalition pinning two different frames can never reach a
	// perfect labeling: the election must exhaust its budget.
	r, err := NewRunner(Config{N: 4, K: 1, Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.pinned[2] = 0 // a second stubborn agent pinning a conflicting frame
	r.maxSteps = 2000
	res := r.Run(7)
	if !res.Failed || res.Reason != sim.FailStepLimit {
		t.Fatalf("conflicting pins should exhaust the budget, got %+v", res)
	}
	if res.Steps != 2000 || res.Delivered != 2000 {
		t.Errorf("failed trial should account the full budget, got %+v", res)
	}
}

// TestConvergenceBudget documents the budget headroom: across thousands of
// trials at several sizes the slowest observed trial stays far under the
// 64·n³ default, so the step-limit tail is negligible in catalog runs.
func TestConvergenceBudget(t *testing.T) {
	trials := 4000
	if testing.Short() {
		trials = 400
	}
	for _, n := range []int{8, 16} {
		r, err := NewRunner(Config{N: n})
		if err != nil {
			t.Fatal(err)
		}
		max := 0
		for i := 0; i < trials; i++ {
			res := r.Run(int64(i))
			if res.Failed {
				t.Fatalf("n=%d trial %d failed: %v", n, i, res.Reason)
			}
			if res.Steps > max {
				max = res.Steps
			}
		}
		if max > r.MaxSteps()/8 {
			t.Errorf("n=%d: slowest trial used %d of %d budget — headroom eroded", n, max, r.MaxSteps())
		}
	}
}
