package harness

import (
	"fmt"

	"repro/internal/attacks"
	"repro/internal/core"
	"repro/internal/protocols/alead"
	"repro/internal/ring"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// RunE1BasicSingle measures Claim B.1: one adversary fully controls
// Basic-LEAD.
func RunE1BasicSingle(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Basic-LEAD vs a single adversary",
		Claim: "Claim B.1: Basic-LEAD is not ε-1-unbiased for any ε < 1−1/n; " +
			"a lone adversary withholds its value and forces any target.",
		Headers: []string{"n", "target", "trials", "forced rate", "fail rate"},
	}
	sizes := []int{16, 64, 256}
	trials := 200
	if cfg.Quick {
		sizes = []int{16, 64}
		trials = 50
	}
	for _, n := range sizes {
		target := int64(n/2 + 1)
		dist, err := cfg.scenarioDist("ring/basic-lead/attack=basic-single", cfg.Seed,
			scenario.Opts{N: n, Trials: trials, Target: target})
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(n), itoa(int(target)), itoa(trials),
			f3(dist.WinRate(target)), f3(dist.FailureRate()))
	}
	t.Notes = append(t.Notes, "Forced rate 1.000 = the adversary elects its target in every execution.")
	return t, nil
}

// RunE2SqrtAttack measures Theorem 4.2.
func RunE2SqrtAttack(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Equally spaced rushing coalitions against A-LEADuni",
		Claim: "Theorem 4.2: A-LEADuni is not ε-k-resilient for k ≥ √n; " +
			"⌈√n⌉ equally spaced adversaries force any outcome.",
		Headers: []string{"n", "k=⌈√n⌉", "trials", "forced rate", "fail rate"},
	}
	sizes := []int{64, 256, 1024}
	trials := 25
	if cfg.Quick {
		sizes = []int{64, 256}
		trials = 10
	}
	for _, n := range sizes {
		k := attacks.SqrtK(n)
		dist, err := cfg.scenarioDist("ring/a-lead/attack=rushing-equal", cfg.Seed,
			scenario.Opts{N: n, Trials: trials, Target: 3})
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(n), itoa(k), itoa(trials), f3(dist.WinRate(3)), f3(dist.FailureRate()))
	}
	return t, nil
}

// RunE3Randomized measures Theorem C.1.
func RunE3Randomized(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Randomly located coalitions (p = √(8·ln n/n)) against A-LEADuni",
		Claim: "Theorem C.1: with probability ≥ 1−δ over coalition placement and secrets, " +
			"Θ(√(n log n)) randomly located adversaries (ignorant of k and their distances) force the outcome.",
		Headers: []string{"n", "E[k]", "C", "trials", "forced rate", "fail rate"},
	}
	sizes := []int{256, 1024}
	trials := 60
	if cfg.Quick {
		sizes = []int{256}
		trials = 25
	}
	for _, n := range sizes {
		for _, c := range []int{3, 5} {
			dist, err := cfg.scenarioDist(fmt.Sprintf("ring/a-lead/attack=randomized-c%d", c),
				cfg.Seed+int64(c), scenario.Opts{N: n, Trials: trials, Target: 7})
			if err != nil {
				return nil, err
			}
			expectedK := attacks.DefaultP(n) * float64(n-1)
			t.AddRow(itoa(n), f3(expectedK), itoa(c), itoa(trials),
				f3(dist.WinRate(7)), f3(dist.FailureRate()))
		}
	}
	t.Notes = append(t.Notes,
		"Failures are the theorem's δ: prefix collisions or an honest segment exceeding k−C−1. "+
			"The attack never elects a non-target leader.")
	return t, nil
}

// RunE4Cubic measures Theorem 4.3.
func RunE4Cubic(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "The cubic attack: adversarially placed staggered coalitions",
		Claim: "Theorem 4.3: A-LEADuni is not ε-k-unbiased for k ≥ 2·n^{1/3}; staggered distances " +
			"l_i ≈ (k+1−i)(k−1) let the coalition push information k rounds ahead.",
		Headers: []string{"n", "min feasible k", "2·n^{1/3}", "trials", "forced rate", "fail rate"},
	}
	sizes := []int{64, 512, 1000, 2197}
	trials := 20
	if cfg.Quick {
		sizes = []int{64, 512}
		trials = 8
	}
	for _, n := range sizes {
		k := attacks.MinCubicK(n)
		bound := 2 * cube(n)
		dist, err := cfg.scenarioDist("ring/a-lead/attack=rushing-staggered", cfg.Seed,
			scenario.Opts{N: n, Trials: trials, K: k, Target: 2})
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(n), itoa(k), itoa(bound), itoa(trials),
			f3(dist.WinRate(2)), f3(dist.FailureRate()))
	}
	t.Notes = append(t.Notes,
		"min feasible k is the smallest coalition whose distance plan satisfies "+
			"l_k ≤ k−1 and l_i ≤ l_{i+1}+k−1; it stays below the paper's 2·n^{1/3} bound.")
	return t, nil
}

func cube(n int) int {
	k := 1
	for (k+1)*(k+1)*(k+1) <= n {
		k++
	}
	return k + 1
}

// RunE5ALeadResilience probes the regime below the attack thresholds.
func RunE5ALeadResilience(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "A-LEADuni below the attack thresholds",
		Claim: "Theorem 5.1: A-LEADuni is ε-k-resilient for k ≤ n^{1/4}/4. Claim D.1: consecutive " +
			"coalitions of any size < n/2 gain nothing. Conjecture 4.7: resilience may extend to Θ(n^{1/3}).",
		Headers: []string{"n", "k", "placement", "plan feasible", "forced rate", "ε (honest baseline)"},
	}
	n := 1024
	trials := 600
	if cfg.Quick {
		n = 256
		trials = 300
	}
	honest, err := cfg.scenarioDist("ring/a-lead/fifo", cfg.Seed, scenario.Opts{N: n, Trials: trials})
	if err != nil {
		return nil, err
	}
	honestBias := core.Bias(honest)
	minK := attacks.MinCubicK(n)
	for _, k := range []int{2, minK / 2, minK - 1, minK} {
		if k < 2 {
			continue
		}
		_, errPlan := attacks.StaggeredDistances(n, k)
		feasible := errPlan == nil
		forced := "n/a (no schedulable attack)"
		if feasible {
			dist, err := cfg.scenarioDist("ring/a-lead/attack=rushing-staggered", cfg.Seed,
				scenario.Opts{N: n, Trials: 10, K: k, Target: 2})
			if err != nil {
				return nil, err
			}
			forced = f3(dist.WinRate(2))
		}
		t.AddRow(itoa(n), itoa(k), "staggered", yes(feasible), forced, f4(honestBias.Epsilon))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Smallest schedulable cubic coalition at n=%d: k=%d ≈ %.2f·n^{1/3} "+
			"(Conjecture 4.7 asks whether everything below is resilient).",
			n, minK, float64(minK)/float64(cube(n))),
		"Below the threshold no rushing deviation can even be scheduled: the distance "+
			"inequalities of Lemma 4.5 have no solution, and the measured honest ε stays at sampling noise.")
	return t, nil
}

// RunE6SyncGap contrasts the k²- and k-synchronization regimes.
func RunE6SyncGap(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Send-count spread across the coalition",
		Claim: "Lemma D.5: non-failing A-LEADuni executions are 2k²-synchronized, and the cubic attack " +
			"realizes Ω(k²). PhaseAsyncLead's phase validation forces O(k) synchronization (Section 6).",
		Headers: []string{"scenario", "n", "k", "max spread", "bound", "within bound"},
	}
	n := 512
	if cfg.Quick {
		n = 216
	}
	// Honest A-LEADuni: 1-synchronized.
	rec := trace.NewRecorder(n)
	res, err := ring.Run(ring.Spec{N: n, Protocol: alead.New(), Seed: cfg.Seed, Tracer: rec})
	if err != nil {
		return nil, err
	}
	if res.Failed {
		return nil, fmt.Errorf("honest A-LEADuni failed: %v", res.Reason)
	}
	gap := rec.Sync(nil).MaxGap
	t.AddRow("A-LEADuni honest", itoa(n), "0", itoa(gap), "1", yes(gap <= 1))

	// Cubic attack: Θ(k²) spread, within 2k².
	cubicAttack := attacks.Rushing{Place: attacks.PlaceStaggered}
	dev, err := cubicAttack.Plan(n, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := len(dev.Coalition)
	rec = trace.NewRecorder(n)
	res, err = ring.Run(ring.Spec{N: n, Protocol: alead.New(), Deviation: dev, Seed: cfg.Seed, Tracer: rec})
	if err != nil {
		return nil, err
	}
	if res.Failed {
		return nil, fmt.Errorf("cubic attack failed: %v", res.Reason)
	}
	gap = rec.Sync(dev.Coalition).MaxGap
	t.AddRow("A-LEADuni cubic attack", itoa(n), itoa(k), itoa(gap),
		fmt.Sprintf("2k²=%d", 2*k*k), yes(gap <= 2*k*k))

	// PhaseAsyncLead under its strongest attack: O(k) spread.
	phaseDev := phaseRushingDeviation(n, cfg.Seed)
	if phaseDev.err != nil {
		return nil, phaseDev.err
	}
	rec = trace.NewRecorder(n)
	res, err = ring.Run(ring.Spec{N: n, Protocol: phaseDev.proto, Deviation: phaseDev.dev, Seed: cfg.Seed, Tracer: rec})
	if err != nil {
		return nil, err
	}
	if res.Failed {
		return nil, fmt.Errorf("phase rushing failed: %v", res.Reason)
	}
	kp := len(phaseDev.dev.Coalition)
	gap = rec.Sync(phaseDev.dev.Coalition).MaxGap
	t.AddRow("PhaseAsyncLead rushing", itoa(n), itoa(kp), itoa(gap),
		fmt.Sprintf("4k=%d", 4*kp), yes(gap <= 4*kp))
	return t, nil
}
