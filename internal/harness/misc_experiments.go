package harness

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/attacks"
	"repro/internal/classic"
	"repro/internal/cointoss"
	"repro/internal/core"
	"repro/internal/protocols/alead"
	"repro/internal/protocols/basiclead"
	"repro/internal/protocols/phaselead"
	"repro/internal/ring"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/simgraph"
	"repro/internal/treeproto"
	"repro/internal/twoparty"
)

// RunE10Reductions measures Theorem 8.1.
func RunE10Reductions(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Coin toss ⇔ leader election",
		Claim: "Theorem 8.1: an ε-unbiased election yields a (½nε)-unbiased coin; log₂(n) independent " +
			"ε-unbiased coins yield a (½+ε)^{log₂ n}-unbiased election.",
		Headers: []string{"construction", "n", "trials", "measured bias / max-win", "theorem bound"},
	}
	n := 16
	trials := 1500
	if cfg.Quick {
		trials = 400
	}
	// Honest election → fair coin.
	toss := cointoss.ProtocolTosser(n, alead.New(), cfg.Seed)
	s, err := cointoss.TrialsOpts(context.Background(), toss, trials, cfg.coinOpts())
	if err != nil {
		return nil, err
	}
	t.AddRow("FLE→coin, honest A-LEADuni", itoa(n), itoa(trials), f4(s.Bias()), "≈0")

	// Fully attacked election → fully biased coin, inside the bound.
	attack := attacks.BasicSingle{}
	biased := func(instance int, arena *sim.Arena) (int, error) {
		seed := int64(sim.Mix64(uint64(cfg.Seed), uint64(instance)))
		dev, err := attack.Plan(n, 4, seed)
		if err != nil {
			return cointoss.TossFail, err
		}
		return cointoss.TossArena(ring.Spec{N: n, Protocol: basiclead.New(), Deviation: dev, Seed: seed}, arena)
	}
	s, err = cointoss.TrialsOpts(context.Background(), biased, trials/4, cfg.coinOpts())
	if err != nil {
		return nil, err
	}
	bound := cointoss.CoinBiasBound(n, 1-1.0/float64(n))
	t.AddRow("FLE→coin, attacked Basic-LEAD", itoa(n), itoa(trials/4),
		f4(s.Bias()), fmt.Sprintf("≤ ½nε = %s", f3(bound)))

	// Coins → election.
	mk := func(trial int) cointoss.Tosser {
		return cointoss.ProtocolTosser(n, alead.New(), int64(sim.Mix64(uint64(cfg.Seed), uint64(trial)+7)))
	}
	electTrials := 2 * trials
	dist, err := cointoss.ElectTrialsOpts(context.Background(), n, mk, electTrials, cfg.coinOpts())
	if err != nil {
		return nil, err
	}
	rep := core.Bias(dist)
	electionBound, err := cointoss.ElectionBiasBound(n, 0)
	if err != nil {
		return nil, err
	}
	t.AddRow("coin→FLE, honest coins", itoa(n), itoa(electTrials),
		f4(rep.Epsilon+1/float64(n)), fmt.Sprintf("(½)^{log n} = %s", f4(electionBound)))
	t.Notes = append(t.Notes,
		"The coin→FLE row reports the max-win frequency over n leaders; with finite trials its "+
			"expectation sits slightly above the exact bound 1/n (max of n binomial cells).")
	return t, nil
}

// RunE11TreeImpossibility runs the Lemma F.2 census and the half-ring attack.
func RunE11TreeImpossibility(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Dictators in two-party protocols; the ⌈n/2⌉ half-ring coalition",
		Claim: "Lemma F.2: every two-party coin-toss protocol has a favourable value or a dictator. " +
			"Theorem 7.2 (via the ring as a 2-node simulated tree): some ⌈n/2⌉ coalition controls any " +
			"ring protocol — realized against A-LEADuni by the half-ring attack. Claim D.1 is tight: " +
			"one processor fewer and consecutive coalitions are powerless.",
		Headers: []string{"object", "parameter", "result"},
	}
	protocols := 500
	if cfg.Quick {
		protocols = 150
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dichotomy, dictators, favourables, fair, fairBreakable := 0, 0, 0, 0, 0
	for i := 0; i < protocols; i++ {
		p := twoparty.RandomProtocol(rng, 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(4), 1+rng.Intn(3))
		v := p.Classify()
		if v.SatisfiesLemmaF2() {
			dichotomy++
		}
		if _, ok := v.Dictator(); ok {
			dictators++
		}
		if _, ok := v.Favourable(); ok {
			favourables++
		}
		if p.IsFair() {
			fair++
			if v.AssuresZero[twoparty.PartyA] || v.AssuresZero[twoparty.PartyB] ||
				v.AssuresOne[twoparty.PartyA] || v.AssuresOne[twoparty.PartyB] {
				fairBreakable++
			}
		}
	}
	t.AddRow("random two-party protocols", itoa(protocols),
		fmt.Sprintf("dichotomy holds in %d/%d (dictator %d, favourable %d)",
			dichotomy, protocols, dictators, favourables))
	t.AddRow("fair subfamily", itoa(fair),
		fmt.Sprintf("breakable by one party in %d/%d (1-resilient fair two-party coin toss impossible)",
			fairBreakable, fair))

	xor := twoparty.XORProtocol()
	v := xor.Classify()
	dict, _ := v.Dictator()
	t.AddRow("XOR exchange protocol", "n/a", fmt.Sprintf("second mover %v dictates", dict))

	// Half-ring attack at exactly ⌈n/2⌉ and refusal below.
	n := 64
	trials := 20
	if cfg.Quick {
		n, trials = 32, 10
	}
	dist, err := cfg.scenarioDist("ring/a-lead/attack=half-ring", cfg.Seed,
		scenario.Opts{N: n, Trials: trials, Target: 2})
	if err != nil {
		return nil, err
	}
	t.AddRow("half-ring attack on A-LEADuni", fmt.Sprintf("n=%d, k=%d", n, (n+1)/2),
		fmt.Sprintf("forced rate %s", f3(dist.WinRate(2))))
	_, errPlan := attacks.HalfRing{K: n/2 - 1}.Plan(n, 2, cfg.Seed)
	t.AddRow("half-ring with k=n/2−1", fmt.Sprintf("n=%d", n),
		fmt.Sprintf("plan refused (%v) — Claim D.1 regime", yes(errPlan != nil)))

	// Trees are 1-simulated trees: a single rational agent (the
	// convergecast root) dictates a natural tree election.
	treeN := 11
	tree, err := simgraph.Path(treeN)
	if err != nil {
		return nil, err
	}
	tp, err := treeproto.New(tree, (treeN+1)/2)
	if err != nil {
		return nil, err
	}
	forcedTree := 0
	for seed := int64(0); seed < int64(trials); seed++ {
		res, err := tp.Run(treeproto.Spec{Seed: seed, AdversaryRoot: true, Target: 3})
		if err != nil {
			return nil, err
		}
		if !res.Failed && res.Output == 3 {
			forcedTree++
		}
	}
	t.AddRow("tree election, adversarial root (k=1)", fmt.Sprintf("path(%d)", treeN),
		fmt.Sprintf("forced rate %s — trees are 1-simulated trees", f3(float64(forcedTree)/float64(trials))))
	return t, nil
}

// RunE12Decomposition verifies Claim F.5 constructively.
func RunE12Decomposition(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "k-simulated-tree decompositions",
		Claim: "Claim F.5: every connected graph is a ⌈n/2⌉-simulated tree; trees are 1-simulated trees " +
			"(so no tree topology admits any 1-resilient fair election, Theorem 7.2).",
		Headers: []string{"graph", "n", "witnessed k", "quotient is tree"},
	}
	type entry struct {
		name  string
		build func() (*simgraph.Graph, error)
	}
	entries := []entry{
		{"ring(16)", func() (*simgraph.Graph, error) { return simgraph.Ring(16) }},
		{"ring(33)", func() (*simgraph.Graph, error) { return simgraph.Ring(33) }},
		{"path(12)", func() (*simgraph.Graph, error) { return simgraph.Path(12) }},
		{"star(9)", func() (*simgraph.Graph, error) { return simgraph.Star(9) }},
		{"grid(4x4)", func() (*simgraph.Graph, error) { return simgraph.Grid(4, 4) }},
	}
	for _, e := range entries {
		g, err := e.build()
		if err != nil {
			return nil, err
		}
		k, p, err := simgraph.MinSimulatedTreeK(g)
		if err != nil {
			return nil, err
		}
		_, errVerify := simgraph.VerifySimulatedTree(g, p, k)
		t.AddRow(e.name, itoa(g.N), itoa(k), yes(errVerify == nil))
	}
	// Random connected graphs against the ⌈n/2⌉ guarantee.
	rng := rand.New(rand.NewSource(cfg.Seed))
	graphs := 100
	if cfg.Quick {
		graphs = 30
	}
	verified := 0
	for i := 0; i < graphs; i++ {
		n := 3 + rng.Intn(20)
		g, err := simgraph.NewGraph(n)
		if err != nil {
			return nil, err
		}
		perm := rng.Perm(n)
		for j := 1; j < n; j++ {
			if err := g.AddEdge(perm[j]+1, perm[rng.Intn(j)]+1); err != nil {
				return nil, err
			}
		}
		for e := rng.Intn(n); e > 0; e-- {
			u, v := 1+rng.Intn(n), 1+rng.Intn(n)
			if u != v {
				if err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
		p, err := simgraph.HalfSplit(g)
		if err != nil {
			return nil, err
		}
		if _, err := simgraph.VerifySimulatedTree(g, p, (n+1)/2); err == nil {
			verified++
		}
	}
	t.AddRow("random connected graphs", itoa(graphs),
		fmt.Sprintf("⌈n/2⌉ (HalfSplit), verified %d/%d", verified, graphs), yes(verified == graphs))
	return t, nil
}

// RunE13MessageComplexity compares the classical baselines with the fair
// protocols.
func RunE13MessageComplexity(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Message complexity across protocols",
		Claim: "Section 1.1 context: Chang–Roberts averages Θ(n log n) (worst Θ(n²)); Peterson is " +
			"O(n log n) worst-case; the fair, resilient protocols pay Θ(n²) and Θ(2n²).",
		Headers: []string{"protocol", "n", "messages", "messages / n·log₂n", "messages / n²"},
	}
	sizes := []int{64, 256, 1024}
	if cfg.Quick {
		sizes = []int{64, 256}
	}
	add := func(name string, proto ring.Protocol, n, reps int) error {
		total := 0
		for seed := int64(0); seed < int64(reps); seed++ {
			res, err := ring.Run(ring.Spec{N: n, Protocol: proto, Seed: cfg.Seed + seed})
			if err != nil {
				return err
			}
			if res.Failed {
				return fmt.Errorf("%s n=%d failed: %v", name, n, res.Reason)
			}
			total += res.Delivered
		}
		avg := float64(total) / float64(reps)
		nlogn := float64(n) * math.Log2(float64(n))
		t.AddRow(name, itoa(n), f3(avg), f3(avg/nlogn), f4(avg/float64(n*n)))
		return nil
	}
	for _, n := range sizes {
		if err := add("Chang-Roberts (avg)", classic.ChangRoberts{}, n, 5); err != nil {
			return nil, err
		}
		if err := add("Chang-Roberts (worst)", classic.ChangRoberts{Arrange: classic.ArrangeDescending}, n, 1); err != nil {
			return nil, err
		}
		if err := add("Peterson", classic.Peterson{}, n, 5); err != nil {
			return nil, err
		}
		if err := add("A-LEADuni", alead.New(), n, 1); err != nil {
			return nil, err
		}
		if err := add("PhaseAsyncLead", phaselead.NewDefault(), n, 1); err != nil {
			return nil, err
		}
	}
	return t, nil
}
