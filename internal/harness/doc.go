// Package harness defines the experiment suite: one reproducible experiment
// per theorem-level claim of the paper, each regenerating a table for
// EXPERIMENTS.md. The cmd/experiments binary runs the registry; the
// repository's bench harness wraps the same functions as benchmarks
// (BenchmarkE1..E15 in the root package).
//
// # Structure
//
// All() returns the registry in ID order (E1..E15). Each Experiment.Run
// takes a Config — Quick shrinks sweeps to CI scale, Seed pins the whole
// suite, Workers threads a trial-engine worker count through every batch —
// and returns a Table ready to render as markdown.
//
// # Invariants
//
//   - Determinism: for a fixed Config (Quick, Seed), a table is
//     byte-identical across runs, worker counts, and machines. This is the
//     property that lets EXPERIMENTS.md be regenerated rather than
//     maintained, and it is what the arena refactor was verified against.
//   - Every trial batch inside an experiment runs on the parallel
//     Monte-Carlo engine, most of them as thin lookups into the scenario
//     registry (scenarioDist); experiments add only sweep shapes, derived
//     statistics, and formatting.
//   - Experiments never mutate shared state; they may run concurrently.
package harness
