package harness

import (
	"fmt"

	"repro/internal/fullnet"
	"repro/internal/sim"
	"repro/internal/syncnet"
)

// RunE15ScenarioLandscape reproduces the paper's Section 1.1 scenario table:
// how the achievable resilience of fair leader election collapses from n−1
// (synchronous) through ⌈n/2⌉−1 (asynchronous complete graph, Shamir) down
// to Θ(√n) (the asynchronous ring, the paper's subject, measured in E2–E8).
func RunE15ScenarioLandscape(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "The resilience landscape across network models",
		Claim: "Section 1.1: synchronous networks admit (n−1)-resilient fair election (nothing to rush); " +
			"the asynchronous complete graph admits exactly ⌈n/2⌉−1 via Shamir sharing; the asynchronous " +
			"ring — this paper's subject — drops to Θ(√n) (PhaseAsyncLead, E7/E8).",
		Headers: []string{"scenario", "n", "coalition", "trials", "outcome"},
	}
	n := 12
	trials := 400
	if cfg.Quick {
		n = 8
		trials = 150
	}

	// Synchronous complete graph: n−1 blind colluders, still uniform.
	counts := make([]int, n+1)
	fails := 0
	for s := int64(0); s < int64(trials); s++ {
		procs, err := syncnet.NewCompleteElection(n, n-1, cfg.Seed+s)
		if err != nil {
			return nil, err
		}
		res, err := syncnet.Run(procs, n+4)
		if err != nil {
			return nil, err
		}
		if res.Failed {
			fails++
			continue
		}
		counts[res.Output]++
	}
	maxWin := 0
	for j := 1; j <= n; j++ {
		if counts[j] > maxWin {
			maxWin = counts[j]
		}
	}
	t.AddRow("synchronous complete", itoa(n), fmt.Sprintf("k=n−1=%d (blind constants)", n-1),
		itoa(trials), fmt.Sprintf("valid %s, max-win %s (uniform: nothing to rush)",
			f3(1-float64(fails)/float64(trials)), f3(float64(maxWin)/float64(trials))))

	// Synchronous ring with a tampering member: destruction, not bias.
	tamperFails := 0
	for s := int64(0); s < 20; s++ {
		procs := make([]syncnet.Processor, n)
		for i := 1; i <= n; i++ {
			p := syncnet.NewRingSyncLead(n, sim.ProcID(i), cfg.Seed+s)
			if i == 3 {
				p.Tamper = 1
			}
			procs[i-1] = p
		}
		res, err := syncnet.Run(procs, n+2)
		if err != nil {
			return nil, err
		}
		if res.Failed {
			tamperFails++
		}
	}
	t.AddRow("synchronous ring", itoa(n), "k=1 (tampering forwarder)", "20",
		fmt.Sprintf("FAIL in %d/20 — tampering destroys, never steers", tamperFails))

	// Asynchronous complete graph with Shamir sharing.
	e, err := fullnet.New(n, 0)
	if err != nil {
		return nil, err
	}
	threshold := e.Threshold()
	if _, err := e.RunAttack(threshold-1, 2, cfg.Seed, nil); err != nil {
		t.AddRow("async complete + Shamir", itoa(n),
			fmt.Sprintf("k=⌈n/2⌉−1=%d", threshold-1), "—",
			"attack refused: below the sharing threshold (resilient, paper-optimal)")
	} else {
		t.AddRow("async complete + Shamir", itoa(n),
			fmt.Sprintf("k=%d", threshold-1), "—", "UNEXPECTEDLY FEASIBLE")
	}
	forced := 0
	atkTrials := 25
	for s := int64(0); s < int64(atkTrials); s++ {
		res, err := e.RunAttack(threshold, 2, cfg.Seed+s, nil)
		if err != nil {
			return nil, err
		}
		if !res.Failed && res.Output == 2 {
			forced++
		}
	}
	t.AddRow("async complete + Shamir", itoa(n),
		fmt.Sprintf("k=⌈n/2⌉=%d", threshold), itoa(atkTrials),
		fmt.Sprintf("forced rate %s — pooled shares reconstruct early", f3(float64(forced)/float64(atkTrials))))

	t.AddRow("async ring (this paper)", "—", "Θ(√n) threshold", "—",
		"see E7 (resilient ≤ √n/10) and E8 (controlled at √n+3)")
	t.Notes = append(t.Notes,
		"The asynchronous ring is the hard case precisely because information flow is serial: "+
			"buffering (A-LEADuni) buys n^{1/4}, phase validation + a random function (PhaseAsyncLead) buys √n, "+
			"and Theorem 7.2 caps every topology at ⌈n/2⌉.")
	return t, nil
}
