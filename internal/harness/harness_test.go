package harness

import (
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	cfg := Config{Quick: true, Seed: 20180516}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			table, err := exp.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if table.ID != exp.ID {
				t.Errorf("table ID %q, registry ID %q", table.ID, exp.ID)
			}
			if len(table.Rows) == 0 {
				t.Errorf("%s produced no rows", exp.ID)
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Headers) {
					t.Errorf("%s: row width %d, header width %d", exp.ID, len(row), len(table.Headers))
				}
			}
			md := table.Markdown()
			if !strings.Contains(md, "|") || !strings.Contains(md, exp.ID) {
				t.Errorf("%s: markdown rendering looks broken:\n%s", exp.ID, md)
			}
		})
	}
}

func TestRegistryOrderAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	last := 0
	for _, exp := range All() {
		if seen[exp.ID] {
			t.Errorf("duplicate experiment ID %s", exp.ID)
		}
		seen[exp.ID] = true
		if n := numeric(exp.ID); n <= last {
			t.Errorf("registry out of order at %s", exp.ID)
		} else {
			last = n
		}
		if exp.Run == nil {
			t.Errorf("%s has no Run function", exp.ID)
		}
	}
	if len(seen) != 15 {
		t.Errorf("registry has %d experiments, want 15", len(seen))
	}
}

func TestMarkdownRendering(t *testing.T) {
	table := &Table{
		ID: "EX", Title: "demo", Claim: "none",
		Headers: []string{"a", "b"},
		Notes:   []string{"note"},
	}
	table.AddRow("1", "2")
	md := table.Markdown()
	for _, want := range []string{"### EX", "| a | b |", "| 1 | 2 |", "> note"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
