package harness

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cointoss"
	"repro/internal/ring"
	"repro/internal/scenario"
)

// Table is one experiment's output.
type Table struct {
	// ID is the experiment identifier (E1..E15).
	ID string
	// Title is a one-line description.
	Title string
	// Claim cites the paper result being reproduced.
	Claim string
	// Headers and Rows hold the tabular data.
	Headers []string
	Rows    [][]string
	// Notes are free-form observations appended under the table.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Paper claim:* %s\n\n", t.Claim)
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, note := range t.Notes {
		b.WriteString("\n> " + note + "\n")
	}
	return b.String()
}

// Config tunes an experiment run.
type Config struct {
	// Quick shrinks ring sizes and trial counts for CI-speed runs.
	Quick bool
	// Seed makes the whole suite reproducible.
	Seed int64
	// Workers is the trial-engine worker count for every batch inside
	// every experiment; 0 picks runtime.NumCPU(). Results are identical
	// for any value.
	Workers int
}

// trialOpts lowers the config onto the ring trial engine.
func (cfg Config) trialOpts() ring.TrialOptions {
	return ring.TrialOptions{Workers: cfg.Workers}
}

// coinOpts lowers the config onto the cointoss trial engine.
func (cfg Config) coinOpts() cointoss.Options {
	return cointoss.Options{Workers: cfg.Workers}
}

// scenarioDist runs a registered scenario and returns its raw distribution.
// The experiments' trial batches are thin lookups into the scenario
// registry: the registry routes through the same engine with the same seed
// derivation, so the tables are byte-identical to the former direct
// ring.TrialsOpts/AttackTrialsOpts calls.
func (cfg Config) scenarioDist(name string, seed int64, o scenario.Opts) (*ring.Distribution, error) {
	o.Workers = cfg.Workers
	out, err := scenario.MustFind(name).RunOpts(context.Background(), seed, o)
	if err != nil {
		return nil, err
	}
	return out.Dist, nil
}

// Experiment is one registry entry.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Table, error)
}

// All returns the full experiment registry in ID order.
func All() []Experiment {
	exps := []Experiment{
		{ID: "E1", Title: "Basic-LEAD falls to one adversary (Claim B.1)", Run: RunE1BasicSingle},
		{ID: "E2", Title: "√n equally spaced adversaries control A-LEADuni (Theorem 4.2)", Run: RunE2SqrtAttack},
		{ID: "E3", Title: "Randomly located coalitions control A-LEADuni w.h.p. (Theorem C.1)", Run: RunE3Randomized},
		{ID: "E4", Title: "The cubic attack (Theorem 4.3)", Run: RunE4Cubic},
		{ID: "E5", Title: "A-LEADuni below the attack thresholds (Theorem 5.1, Claim D.1, Conjecture 4.7)", Run: RunE5ALeadResilience},
		{ID: "E6", Title: "Synchronization gaps: k² vs k (Lemma D.5, Section 6)", Run: RunE6SyncGap},
		{ID: "E7", Title: "PhaseAsyncLead resists k ≤ √n/10 (Theorem 6.1)", Run: RunE7PhaseResilience},
		{ID: "E8", Title: "k = √n+3 rushing controls PhaseAsyncLead (Section 6 tightness)", Run: RunE8PhaseAttack},
		{ID: "E9", Title: "Sum output + phase validation falls to k = 4 (Appendix E.4)", Run: RunE9SumPhase},
		{ID: "E10", Title: "Coin toss ⇔ leader election reductions (Theorem 8.1)", Run: RunE10Reductions},
		{ID: "E11", Title: "Two-party dictators and the half-ring coalition (Lemma F.2, Theorem 7.2)", Run: RunE11TreeImpossibility},
		{ID: "E12", Title: "Every connected graph is a ⌈n/2⌉-simulated tree (Claim F.5)", Run: RunE12Decomposition},
		{ID: "E13", Title: "Message complexity: the price of fairness (Section 1.1)", Run: RunE13MessageComplexity},
		{ID: "E14", Title: "The steerability transition near k ≈ √n (ablation)", Run: RunE14PhaseTransition},
		{ID: "E15", Title: "The resilience landscape across network models (Section 1.1)", Run: RunE15ScenarioLandscape},
	}
	sort.Slice(exps, func(i, j int) bool {
		return numeric(exps[i].ID) < numeric(exps[j].ID)
	})
	return exps
}

func numeric(id string) int {
	v, _ := strconv.Atoi(strings.TrimPrefix(id, "E"))
	return v
}

// Formatting helpers shared by the experiment implementations.

func itoa(v int) string { return strconv.Itoa(v) }

func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

func f4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
