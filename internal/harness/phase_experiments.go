package harness

import (
	"fmt"

	"repro/internal/attacks"
	"repro/internal/core"
	"repro/internal/protocols/phaselead"
	"repro/internal/ring"
	"repro/internal/scenario"
)

// phaseDeviation bundles a planned PhaseRushing deviation with its protocol.
type phaseDeviation struct {
	proto ring.Protocol
	dev   *ring.Deviation
	err   error
}

// phaseRushingDeviation plans the default √n+3 rushing attack against
// PhaseAsyncLead on a ring of n (used by E6's sync measurements too).
func phaseRushingDeviation(n int, seed int64) phaseDeviation {
	proto := phaselead.NewDefault()
	dev, err := attacks.PhaseRushing{Protocol: proto}.Plan(n, 1, seed)
	return phaseDeviation{proto: proto, dev: dev, err: err}
}

// RunE7PhaseResilience measures Theorem 6.1's regime.
func RunE7PhaseResilience(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "PhaseAsyncLead below threshold: the strongest deviations gain nothing",
		Claim: "Theorem 6.1: PhaseAsyncLead is ε-k-unbiased for k ≤ √n/10 (w.h.p. over f). Below " +
			"threshold, steering cannot be scheduled; rushing without steering breaks validity instead of bias; " +
			"and the best valid deviation (chasing the long segment) leaves the outcome uniform.",
		Headers: []string{"deviation", "n", "k", "valid rate", "target rate", "ε estimate"},
	}
	n := 400
	trials := 300
	if cfg.Quick {
		n = 121
		trials = 150
	}
	proto := phaselead.NewDefault()
	target := int64(5)

	honest, err := cfg.scenarioDist("ring/phase-lead/fifo", cfg.Seed, scenario.Opts{N: n, Trials: trials})
	if err != nil {
		return nil, err
	}
	hb := core.Bias(honest)
	t.AddRow("honest", itoa(n), "0", f3(1-honest.FailureRate()), f3(honest.WinRate(target)), f4(hb.Epsilon))

	// Steering cannot be scheduled at small k.
	for _, k := range []int{2, attacks.SqrtK(n) / 2} {
		if k < 2 {
			continue
		}
		_, errPlan := attacks.PhaseRushing{Protocol: proto, K: k}.Plan(n, target, cfg.Seed)
		feasibility := "plan infeasible (certified)"
		if errPlan == nil {
			feasibility = "UNEXPECTEDLY FEASIBLE"
		}
		t.AddRow(fmt.Sprintf("steer (k=%d)", k), itoa(n), itoa(k), "—", "—", feasibility)
	}

	// Rushing without steering: validity collapses, no bias.
	k := 4
	dist, err := cfg.scenarioDist("ring/phase-lead/attack=phase-nosteer", cfg.Seed,
		scenario.Opts{N: n, Trials: trials / 3, K: k, Target: target})
	if err != nil {
		return nil, err
	}
	t.AddRow("rush, no steer", itoa(n), itoa(k), f3(1-dist.FailureRate()),
		f3(dist.WinRate(target)), f4(core.Bias(dist).Epsilon))

	// Chase mode: validity saved, bias provably lost.
	kChase := 8
	dist, err = cfg.scenarioDist("ring/phase-lead/attack=phase-chase", cfg.Seed,
		scenario.Opts{N: n, Trials: trials, K: kChase, Target: target})
	if err != nil {
		return nil, err
	}
	t.AddRow("rush + chase", itoa(n), itoa(kChase), f3(1-dist.FailureRate()),
		f3(dist.WinRate(target)), f4(core.Bias(dist).Epsilon))
	t.Notes = append(t.Notes,
		"Chase mode steers every short segment to the long segment's output — a value the coalition "+
			"cannot influence — which is exactly the commitment mechanism of Theorem 6.1's proof.")
	return t, nil
}

// RunE8PhaseAttack measures the Section 6 tightness remark.
func RunE8PhaseAttack(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Rushing with k = √n+3 controls PhaseAsyncLead",
		Claim: "Section 6 (tightness): with high probability over f, PhaseAsyncLead is not ε-k-resilient " +
			"for k = √n+3 — every segment is shorter than k, so every adversary owns informed free " +
			"coordinates of f and steers its segment to the target.",
		Headers: []string{"n", "k", "l", "trials", "forced rate", "fail rate"},
	}
	sizes := []int{100, 400, 1024}
	trials := 15
	if cfg.Quick {
		sizes = []int{100, 400}
		trials = 8
	}
	for _, n := range sizes {
		proto := phaselead.NewDefault()
		pcfg, err := proto.Config(n)
		if err != nil {
			return nil, err
		}
		k := attacks.SqrtK(n) + 3
		dist, err := cfg.scenarioDist("ring/phase-lead/attack=phase-rushing", cfg.Seed,
			scenario.Opts{N: n, Trials: trials, Target: 9})
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(n), itoa(k), itoa(pcfg.L), itoa(trials),
			f3(dist.WinRate(9)), f3(dist.FailureRate()))
	}
	return t, nil
}

// RunE9SumPhase measures Appendix E.4.
func RunE9SumPhase(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Phase validation with a sum output falls to four colluders",
		Claim: "Appendix E.4: without the random function, adversary-validated rounds become a side " +
			"channel for partial sums; k = 4 controls the outcome. The same deviation against " +
			"PhaseAsyncLead (with f) is powerless — the motivation for f.",
		Headers: []string{"protocol", "n", "k", "trials", "forced rate", "fail rate"},
	}
	sizes := []int{121, 400}
	trials := 40
	if cfg.Quick {
		sizes = []int{60}
		trials = 20
	}
	for _, n := range sizes {
		dist, err := cfg.scenarioDist("ring/sum-phase/attack=sum-phase", cfg.Seed,
			scenario.Opts{N: n, Trials: trials, Target: 4})
		if err != nil {
			return nil, err
		}
		t.AddRow("SumPhaseLead", itoa(n), "4", itoa(trials), f3(dist.WinRate(4)), f3(dist.FailureRate()))

		dist, err = cfg.scenarioDist("ring/phase-lead/attack=sum-phase", cfg.Seed,
			scenario.Opts{N: n, Trials: trials, Target: 4})
		if err != nil {
			return nil, err
		}
		t.AddRow("PhaseAsyncLead (control)", itoa(n), "4", itoa(trials),
			f3(dist.WinRate(4)), f3(dist.FailureRate()))
	}
	return t, nil
}

// RunE14PhaseTransition sweeps k across the steerability threshold.
func RunE14PhaseTransition(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Steerability transition for PhaseAsyncLead rushing",
		Claim: "Theorem 6.1 vs the tightness remark: equal spacing gives segments ≈ n/k, steerable iff " +
			"n/k < min(k, l). The forced rate jumps from 1/n to 1 near k ≈ √n.",
		Headers: []string{"n", "k", "segments ≈", "steer feasible", "forced rate"},
	}
	n := 256
	trials := 10
	if cfg.Quick {
		n = 144
		trials = 5
	}
	proto := phaselead.NewDefault()
	sqrt := attacks.SqrtK(n)
	for _, k := range []int{sqrt / 4, sqrt / 2, sqrt - 2, sqrt, sqrt + 3, 2 * sqrt} {
		if k < 2 {
			continue
		}
		attack := attacks.PhaseRushing{Protocol: proto, K: k}
		_, errPlan := attack.Plan(n, 6, cfg.Seed)
		feasible := errPlan == nil
		forced := "0 (infeasible)"
		if feasible {
			dist, err := cfg.scenarioDist("ring/phase-lead/attack=phase-rushing", cfg.Seed,
				scenario.Opts{N: n, Trials: trials, K: k, Target: 6})
			if err != nil {
				return nil, err
			}
			forced = f3(dist.WinRate(6))
		}
		t.AddRow(itoa(n), itoa(k), itoa((n-k)/k), yes(feasible), forced)
	}
	return t, nil
}
