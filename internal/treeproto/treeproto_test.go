package treeproto

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/simgraph"
)

func randomTree(t *testing.T, n int, seed int64) *simgraph.Graph {
	t.Helper()
	g, err := simgraph.NewGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(perm[i]+1, perm[rng.Intn(i)]+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestHonestElectionSucceeds(t *testing.T) {
	for _, build := range []func() *simgraph.Graph{
		func() *simgraph.Graph { g, _ := simgraph.Path(7); return g },
		func() *simgraph.Graph { g, _ := simgraph.Star(9); return g },
		func() *simgraph.Graph { return randomTree(t, 15, 3) },
	} {
		g := build()
		proto, err := New(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 5; seed++ {
			res, err := proto.Run(Spec{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed {
				t.Fatalf("n=%d seed=%d: honest tree election failed: %v", g.N, seed, res.Reason)
			}
			if res.Output < 1 || res.Output > int64(g.N) {
				t.Fatalf("leader %d out of range [1,%d]", res.Output, g.N)
			}
		}
	}
}

func TestHonestUniformity(t *testing.T) {
	g := randomTree(t, 8, 5)
	proto, err := New(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, g.N+1)
	const trials = 4000
	for seed := int64(0); seed < trials; seed++ {
		res, err := proto.Run(Spec{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("seed=%d failed: %v", seed, res.Reason)
		}
		counts[res.Output]++
	}
	want := float64(trials) / float64(g.N)
	for j := 1; j <= g.N; j++ {
		if got := float64(counts[j]); got < want*0.7 || got > want*1.3 {
			t.Errorf("leader %d elected %v times, want ≈ %v", j, got, want)
		}
	}
}

func TestScheduleIndependenceOfOutcome(t *testing.T) {
	// On trees the schedules interleave differently, but the convergecast
	// sums are order-invariant: the outcome must match across schedulers.
	g := randomTree(t, 12, 9)
	proto, err := New(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var first int64
	for i, s := range []sim.Scheduler{sim.FIFOScheduler{}, sim.LIFOScheduler{}, sim.NewRandomScheduler(1)} {
		res, err := proto.Run(Spec{Seed: 4, Scheduler: s})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("failed under %T: %v", s, res.Reason)
		}
		if i == 0 {
			first = res.Output
		} else if res.Output != first {
			t.Fatalf("outcome differs across schedules: %d vs %d", res.Output, first)
		}
	}
}

func TestRootDictates(t *testing.T) {
	// Theorem 7.2 with k = 1, executed: the root forces any target on
	// every tree shape and every seed.
	for _, target := range []int64{1, 5, 11} {
		g := randomTree(t, 11, 7)
		proto, err := New(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 10; seed++ {
			res, err := proto.Run(Spec{Seed: seed, AdversaryRoot: true, Target: target})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed || res.Output != target {
				t.Fatalf("target=%d seed=%d: failed=%v output=%d",
					target, seed, res.Failed, res.Output)
			}
		}
	}
}

func TestRejectsNonTrees(t *testing.T) {
	ringGraph, err := simgraph.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(ringGraph, 1); err == nil {
		t.Error("ring accepted as a tree")
	}
	path, _ := simgraph.Path(4)
	if _, err := New(path, 9); err == nil {
		t.Error("out-of-range root accepted")
	}
}
