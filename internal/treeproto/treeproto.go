// Package treeproto implements a natural fair-leader-election protocol on
// tree networks — convergecast the secret sum to a root, broadcast the
// winner back — and the single rational agent that breaks it.
//
// Trees are 1-simulated trees, so by Theorem 7.2 no tree topology admits a
// fair leader election protocol resilient to even one rational agent. This
// package makes that concrete: the root of the convergecast sees every
// other secret before contributing its own and therefore dictates the
// outcome, while honest executions elect uniformly. (The theorem says some
// node can always cheat in any protocol; the Lemma F.2 solver in the
// twoparty package shows the structural side, and this package shows it in
// the message-passing model.) It also exercises the simulator on general
// multi-link topologies, where the message schedule is no longer trivially
// equivalent.
package treeproto

import (
	"errors"
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/simgraph"
)

// Protocol is the convergecast/broadcast election on a rooted tree.
type Protocol struct {
	tree     *simgraph.Graph
	root     int
	parent   []int
	children [][]int
	edges    []sim.Edge // both directions of every tree edge, built once
}

// New validates the tree and orients it at the given root.
func New(tree *simgraph.Graph, root int) (*Protocol, error) {
	if !tree.IsTree() {
		return nil, errors.New("treeproto: graph is not a tree")
	}
	if root < 1 || root > tree.N {
		return nil, fmt.Errorf("treeproto: root %d out of range [1,%d]", root, tree.N)
	}
	p := &Protocol{
		tree:     tree,
		root:     root,
		parent:   make([]int, tree.N+1),
		children: make([][]int, tree.N+1),
	}
	// BFS orientation from the root.
	seen := make([]bool, tree.N+1)
	seen[root] = true
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range tree.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				p.parent[w] = v
				p.children[v] = append(p.children[v], w)
				queue = append(queue, w)
			}
		}
	}
	// The (bidirectional) link set is immutable and read-only during
	// execution; one copy serves every run and every trial worker.
	p.edges = make([]sim.Edge, 0, 2*(tree.N-1))
	for _, e := range tree.Edges() {
		p.edges = append(p.edges,
			sim.Edge{From: sim.ProcID(e[0]), To: sim.ProcID(e[1])},
			sim.Edge{From: sim.ProcID(e[1]), To: sim.ProcID(e[0])})
	}
	return p, nil
}

// Spec describes one tree election.
type Spec struct {
	// Seed drives all processor randomness.
	Seed int64
	// Scheduler defaults to FIFO; on trees different oblivious schedules
	// genuinely interleave differently (unlike on the ring).
	Scheduler sim.Scheduler
	// AdversaryRoot, when true, replaces the root's strategy with a
	// dictator that announces Target regardless of the secrets.
	AdversaryRoot bool
	// Target is the leader the adversarial root forces.
	Target int64
}

// Run executes one election.
func (p *Protocol) Run(spec Spec) (sim.Result, error) {
	return p.RunArena(spec, nil)
}

// RunArena is Run on a recycled per-worker simulation arena (nil falls back
// to fresh allocations with an identical result).
func (p *Protocol) RunArena(spec Spec, arena *sim.Arena) (sim.Result, error) {
	n := p.tree.N
	strategies := arena.Strategies(n)
	for v := 1; v <= n; v++ {
		node := &node{
			n:        n,
			self:     v,
			isRoot:   v == p.root,
			parent:   sim.ProcID(p.parent[v]),
			children: p.children[v],
			pending:  len(p.children[v]),
		}
		if v == p.root && spec.AdversaryRoot {
			strategies[v-1] = &dictatorRoot{node: *node, target: spec.Target}
		} else {
			strategies[v-1] = node
		}
	}
	return arena.Run(sim.Config{
		Strategies: strategies,
		Edges:      p.edges,
		Seed:       spec.Seed,
		Scheduler:  spec.Scheduler,
	})
}

// Runner is a reusable trial runner for one (AdversaryRoot, Target) shape:
// the node vector is built once and fully re-initialized in place by every
// run, so a chunked trial batch constructs nothing per trial. Each Runner
// serves one goroutine; runs are bit-identical to RunArena with the same
// spec.
type Runner struct {
	p          *Protocol
	strategies []sim.Strategy
}

// Runner builds a reusable runner; target is ignored unless adversaryRoot.
func (p *Protocol) Runner(adversaryRoot bool, target int64) *Runner {
	n := p.tree.N
	r := &Runner{p: p, strategies: make([]sim.Strategy, n)}
	for v := 1; v <= n; v++ {
		nd := &node{
			n:        n,
			self:     v,
			isRoot:   v == p.root,
			parent:   sim.ProcID(p.parent[v]),
			children: p.children[v],
			pending:  len(p.children[v]),
		}
		if v == p.root && adversaryRoot {
			r.strategies[v-1] = &dictatorRoot{node: *nd, target: target}
		} else {
			r.strategies[v-1] = nd
		}
	}
	return r
}

// Run executes one election on the runner's node vector.
func (r *Runner) Run(seed int64, sched sim.Scheduler, arena *sim.Arena) (sim.Result, error) {
	return arena.Run(sim.Config{
		Strategies: r.strategies,
		Edges:      r.p.edges,
		Seed:       seed,
		Scheduler:  sched,
	})
}

// node is one honest participant: it draws a secret, accumulates its
// subtree's sum, reports it to its parent, and relays the root's
// announcement downward.
type node struct {
	n        int
	self     int
	isRoot   bool
	parent   sim.ProcID
	children []int
	pending  int
	sum      int64
}

var _ sim.Strategy = (*node)(nil)

func (nd *node) Init(ctx *sim.Context) {
	// Total reset: batched runs (Runner) reuse node objects across trials.
	nd.pending = len(nd.children)
	nd.sum = ctx.Rand().Int63n(int64(nd.n))
	if nd.pending == 0 {
		nd.flush(ctx)
	}
}

// flush fires when the subtree sum is complete.
func (nd *node) flush(ctx *sim.Context) {
	if nd.isRoot {
		leader := ring.LeaderFromSum(nd.sum, nd.n)
		nd.announce(ctx, leader)
		return
	}
	ctx.SendTo(nd.parent, ring.Mod(nd.sum, nd.n))
}

func (nd *node) announce(ctx *sim.Context, leader int64) {
	for _, c := range nd.children {
		ctx.SendTo(sim.ProcID(c), leader)
	}
	ctx.Terminate(leader)
}

func (nd *node) Receive(ctx *sim.Context, from sim.ProcID, value int64) {
	if !nd.isRoot && from == nd.parent {
		// Announcement from above: relay and finish.
		nd.announce(ctx, value)
		return
	}
	// Subtree report from a child.
	nd.sum = ring.Mod(nd.sum+value, nd.n)
	nd.pending--
	if nd.pending == 0 {
		nd.flush(ctx)
	}
}

// dictatorRoot gathers like an honest root but announces its target: the
// single rational agent Theorem 7.2 promises on every tree.
type dictatorRoot struct {
	node
	target int64
}

var _ sim.Strategy = (*dictatorRoot)(nil)

func (d *dictatorRoot) Init(ctx *sim.Context) {
	d.pending = len(d.children)
	d.sum = 0 // its "secret" is irrelevant
	if d.pending == 0 {
		d.announce(ctx, d.target)
	}
}

func (d *dictatorRoot) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	d.pending--
	if d.pending == 0 {
		d.announce(ctx, d.target)
	}
}
