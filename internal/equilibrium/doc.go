// Package equilibrium certifies the game-theoretic fairness of registered
// scenarios by best-response search: for each scenario it sweeps a
// parameterized deviation space — attack family × coalition size × steering
// mode × target leader, enumerated by the scenario catalog's deviation
// families — runs every candidate through the parallel trial engine, and
// condenses the sweep into a Certificate: the maximum estimated coalition
// gain over the fair 1/n baseline, a multiplicity-corrected Wilson upper
// bound on it, and a verdict (fair, exploitable, or inconclusive).
//
// The sweep is deterministic end to end. Candidates run in a fixed
// enumeration order on the engine's deterministic seeding, early stopping
// rides the chunk-ordered frontier (a candidate's batch ends as soon as its
// corrected Wilson interval provably resolves the ε question, at a point
// independent of worker count), and the certificate's arg-max deviation
// carries a content-address digest in the scenario.JobKey style, so any
// certified exploit can be replayed exactly. Repeated runs with the same
// seed produce byte-identical certificates at any worker count — which is
// what lets the service daemon cache and replay them like any other result.
//
// Statistically, a certificate is a simultaneous claim over its whole
// deviation space: Wilson intervals are widened to the Bonferroni level
// alpha/m over the m candidates (the identity candidate additionally pays
// for its max-over-positions selection), so "fair" means every swept
// deviation's gain is confidently at most ε, not just the ones that looked
// small. The correction covers the space's multiplicity, not the early
// stopper's interim looks — alpha is exact for fixed-sample sweeps
// (Options.NoStop) and approximate near the threshold under early
// stopping, where a candidate that never clears the band runs its full
// budget and lands inconclusive rather than flipping a verdict. Honest scenarios sweep, by default, every applicable family up to
// the protocol's claimed resilience bound — certifying exactly the paper's
// claim — while attack scenarios sweep their own family across modes and
// sizes, exhibiting the tightness side.
package equilibrium
