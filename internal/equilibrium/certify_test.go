package equilibrium

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/stats"
)

// TestIdentityCertifiesFairEverywhere is the no-op property: on every
// catalog scenario whose deviation space carries the identity candidate,
// the honest run's gain over the 1/n baseline resolves below ε — its
// position-corrected Wilson upper bound comes down under the threshold
// within the 2000-trial budget. This is the zero point the whole
// certification scale hangs from: if the identity ever certified a gain,
// every fairness verdict would be noise.
func TestIdentityCertifiesFairEverywhere(t *testing.T) {
	const (
		seed   = 20180516
		eps    = DefaultEpsilon
		trials = DefaultTrials
		minTr  = DefaultMinTrials
		alpha  = DefaultAlpha
	)
	ctx := context.Background()
	checked := 0
	for _, sc := range scenario.All() {
		sc := sc
		space := sc.DeviationSpace(scenario.Opts{}, 0, nil)
		if len(space) == 0 || space[0].Family != scenario.FamilyIdentity {
			continue
		}
		t.Run(sc.Name, func(t *testing.T) {
			n := sc.N
			baseline := 1 / float64(n)
			z := stats.BonferroniZ(alpha, n)
			opts := scenario.Opts{
				Trials: trials,
				Stop:   stopRule(space[0], z, baseline+eps, minTr),
			}
			dist, err := sc.RunDeviation(ctx, seed, space[0], opts)
			if err != nil {
				t.Fatal(err)
			}
			wins, leader := winCell(dist, space[0])
			_, hi := stats.WilsonInterval(wins, dist.Trials, z)
			if gainHi := hi - baseline; gainHi >= eps {
				t.Errorf("identity gain upper bound %.4f ≥ ε=%.2f after %d trials (leader %d at %d wins)",
					gainHi, eps, dist.Trials, leader, wins)
			}
		})
		checked++
	}
	if checked < 30 {
		t.Fatalf("identity checked on only %d scenarios", checked)
	}
}

// TestCertificateDeterministicAcrossWorkers reruns representative sweeps at
// different worker counts and demands byte-identical certificates: the
// early-stopping points, the arg-max, the digests — everything.
func TestCertificateDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{
		"ring/basic-lead/attack=basic-single",
		"ring/sum-phase/fifo",
		"tree-path/convergecast/attack=dictator-root",
	} {
		sc := scenario.MustFind(name)
		var blobs [][]byte
		for _, workers := range []int{1, 3, 0} {
			cert, err := Certify(ctx, sc, 7, Options{Trials: 400, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			b, err := json.Marshal(cert)
			if err != nil {
				t.Fatal(err)
			}
			blobs = append(blobs, b)
		}
		for i := 1; i < len(blobs); i++ {
			if !bytes.Equal(blobs[0], blobs[i]) {
				t.Errorf("%s: certificate differs between worker counts:\n%s\nvs\n%s", name, blobs[0], blobs[i])
			}
		}
	}
}

// TestPhaseLeadTightnessRecoversPhaseRushing is the statistical regression
// for the paper's Section 6 tightness result: certifying the phase-lead
// attack scenarios must find them exploitable with the steering
// PhaseRushing deviation as (or tied with) the arg-max, at near-total gain.
func TestPhaseLeadTightnessRecoversPhaseRushing(t *testing.T) {
	if testing.Short() {
		t.Skip("phase sweeps are the expensive ones")
	}
	ctx := context.Background()
	opts := Options{N: 64, Trials: 400}
	for _, name := range []string{
		"ring/phase-lead/attack=phase-rushing",
		"ring/phase-lead/attack=phase-chase",
		"ring/phase-lead/attack=phase-nosteer",
	} {
		cert, err := Certify(ctx, scenario.MustFind(name), 20180516, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cert.Verdict != VerdictExploitable {
			t.Errorf("%s: verdict %s, want exploitable", name, cert.Verdict)
		}
		best := cert.Best()
		if best == nil {
			t.Fatalf("%s: no feasible candidate", name)
		}
		if best.Candidate.Family != "phase-rushing" || best.Candidate.Mode != "steer" {
			// The arg-max must be the steering attack or within its CI.
			var steerLo float64
			for _, r := range cert.Candidates {
				if r.Candidate.Mode == "steer" && !r.Infeasible && r.GainLo > steerLo {
					steerLo = r.GainLo
				}
			}
			if best.GainHi < steerLo {
				t.Errorf("%s: arg-max %s (gain %.3f) below the steering attack's lower bound %.3f",
					name, best.Candidate, best.Gain, steerLo)
			}
		}
		if best.Gain < 0.9 {
			t.Errorf("%s: arg-max gain %.3f, want ≈ 1−1/n", name, best.Gain)
		}
	}
	// The honest protocol at the same threshold stays fair: tightness cuts
	// exactly at the resilience bound.
	cert, err := Certify(ctx, scenario.MustFind("ring/phase-lead/fifo"), 20180516, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Verdict != VerdictFair {
		t.Errorf("honest phase-lead: verdict %s, want fair", cert.Verdict)
	}
}

// TestCertifyAllCoversCatalog checks the sweep runs to a verdict on every
// registered scenario at a reduced budget, with sane certificate anatomy.
func TestCertifyAllCoversCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog sweep")
	}
	certs, err := CertifyAll(context.Background(), 20180516, Options{Trials: 200, MinTrials: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(certs) != len(scenario.All()) {
		t.Fatalf("%d certificates for %d scenarios", len(certs), len(scenario.All()))
	}
	for _, c := range certs {
		switch c.Verdict {
		case VerdictFair, VerdictExploitable, VerdictInconclusive:
		default:
			t.Errorf("%s: bad verdict %q", c.Scenario, c.Verdict)
		}
		if len(c.Candidates) == 0 {
			t.Errorf("%s: no candidates", c.Scenario)
		}
		if c.Key == "" || len(c.Key) != 64 {
			t.Errorf("%s: bad certificate key %q", c.Scenario, c.Key)
		}
		if best := c.Best(); best != nil && len(best.Digest) != 64 {
			t.Errorf("%s: bad arg-max digest %q", c.Scenario, best.Digest)
		}
		if strings.Contains(c.Scenario, "attack=phase-rushing") && c.Verdict != VerdictExploitable {
			t.Errorf("%s: verdict %s, want exploitable even at the reduced budget", c.Scenario, c.Verdict)
		}
	}
}

// TestKeys pins the content-address behaviour: Certify's recorded key
// matches the standalone Key, and every identity-relevant knob moves it.
func TestKeys(t *testing.T) {
	sc := scenario.MustFind("ring/basic-lead/fifo")
	base := Options{Trials: 100}
	cert, err := Certify(context.Background(), sc, 3, base)
	if err != nil {
		t.Fatal(err)
	}
	if want := Key(sc, 3, base); cert.Key != want {
		t.Errorf("certificate key %s, standalone Key %s", cert.Key, want)
	}
	// Workers must not move the key; everything identity-relevant must.
	if Key(sc, 3, Options{Trials: 100, Workers: 8}) != cert.Key {
		t.Error("workers moved the key")
	}
	distinct := map[string]string{
		"seed":    Key(sc, 4, base),
		"trials":  Key(sc, 3, Options{Trials: 101}),
		"eps":     Key(sc, 3, Options{Trials: 100, Epsilon: 0.01}),
		"alpha":   Key(sc, 3, Options{Trials: 100, Alpha: 0.01}),
		"n":       Key(sc, 3, Options{Trials: 100, N: 8}),
		"maxk":    Key(sc, 3, Options{Trials: 100, MaxK: 2}),
		"nostop":  Key(sc, 3, Options{Trials: 100, NoStop: true}),
		"version": Key(sc, 3, Options{Trials: 100, Version: "v2"}),
		"targets": Key(sc, 3, Options{Trials: 100, Targets: []int64{5}}),
	}
	seen := map[string]string{cert.Key: "base"}
	for knob, k := range distinct {
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %s and %s", knob, prev)
		}
		seen[k] = knob
	}
}
