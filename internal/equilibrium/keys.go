package equilibrium

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/scenario"
)

// Key formats, in the scenario.JobKey style: a schema tag leads each
// canonical encoding so reshaped encodings can never collide with old ones,
// and the code version is part of every address so results never survive a
// rebuild.
// Both encodings carry scenario.SimContract (the sim field): certificates
// and deviation digests computed under an older simulation determinism
// contract must never collide with current ones.
const (
	certKeyFormat = "flecert-v2|sim=%s|version=%s|scenario=%s|n=%d|trials=%d|min=%d|maxk=%d|eps=%g|alpha=%g|nostop=%t|targets=%v|seed=%d"
	devKeyFormat  = "fledev-v3|sim=%s|version=%s|scenario=%s|n=%d|trials=%d|min=%d|eps=%g|alpha=%g|m=%d|nostop=%t|family=%s|k=%d|mode=%s|target=%d|seed=%d"
)

// certIdentity is the resolved sweep configuration a certificate key pins:
// everything that shapes the deviation space or the stopping rule.
type certIdentity struct {
	N, Trials, MinTrials, MaxK int
	Epsilon, Alpha             float64
	NoStop                     bool
	Targets                    []int64
}

// Key returns the content address of the certificate Certify(sc, seed, o)
// will produce, without running the sweep: the scheduler's dedup and cache
// lookups address certificates by it. Workers, Arenas and Progress are
// excluded — none of them affect the certificate.
func Key(sc scenario.Scenario, seed int64, o Options) string {
	o = o.withDefaults()
	n := sc.N
	if o.N > 0 {
		n = o.N
	}
	// Mirror Certify's normalization: the bound is inert for attack
	// scenarios, so it must not split their cache identities.
	maxK := 0
	if sc.Attack == "" {
		maxK = o.MaxK
		if maxK <= 0 {
			maxK = sc.ResilientK(n)
		}
	}
	return CertificateKey(o.Version, sc.Name, seed, certIdentity{
		N: n, Trials: o.Trials, MinTrials: o.MinTrials, MaxK: maxK,
		Epsilon: o.Epsilon, Alpha: o.Alpha, NoStop: o.NoStop, Targets: o.Targets,
	})
}

// CertificateKey returns the content address of one certification sweep:
// the SHA-256 of a canonical encoding of (version, scenario, resolved sweep
// configuration, seed). Two sweeps with the same key produce byte-identical
// certificates, which is what lets the service daemon replay cached
// certificates exactly.
func CertificateKey(version, scenarioName string, seed int64, id certIdentity) string {
	h := sha256.New()
	fmt.Fprintf(h, certKeyFormat, scenario.SimContract, version, scenarioName, id.N, id.Trials, id.MinTrials,
		id.MaxK, id.Epsilon, id.Alpha, id.NoStop, id.Targets, seed)
	return hex.EncodeToString(h.Sum(nil))
}

// devIdentity pins one candidate batch within a sweep: the candidate's
// trial budget plus everything that shapes its early-stopping rule — the
// earliest stopping point, ε, α, and the sweep's candidate count m (which
// sets the Bonferroni-corrected z the rule evaluates). Two batches stopped
// under different rules record different trial counts, so all of this
// belongs to the address.
type devIdentity struct {
	N, Trials, MinTrials int
	Epsilon, Alpha       float64
	M                    int
	NoStop               bool
}

// DeviationKey returns the content address of one deviation candidate's
// trial batch: enough to re-run the certified arg-max exactly —
// Scenario.RunDeviation with the same candidate and seed, under the same
// stopping discipline, reproduces the batch bit for bit, and batches
// stopped under different rules never share a digest.
func DeviationKey(version, scenarioName string, seed int64, id devIdentity, c scenario.DeviationCandidate) string {
	h := sha256.New()
	fmt.Fprintf(h, devKeyFormat, scenario.SimContract, version, scenarioName, id.N, id.Trials, id.MinTrials,
		id.Epsilon, id.Alpha, id.M, id.NoStop, c.Family, c.K, c.Mode, c.Target, seed)
	return hex.EncodeToString(h.Sum(nil))
}
