package equilibrium

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/ring"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Verdict is a certificate's conclusion about its deviation space.
type Verdict string

// Certificate verdicts.
const (
	// VerdictFair means every swept deviation's gain is, with
	// multiplicity-corrected confidence, at most ε over the 1/n baseline.
	VerdictFair Verdict = "fair"
	// VerdictExploitable means some swept deviation's gain is, with the
	// same corrected confidence, strictly above ε.
	VerdictExploitable Verdict = "exploitable"
	// VerdictInconclusive means the trial budget resolved neither bound.
	VerdictInconclusive Verdict = "inconclusive"
)

// Sweep defaults.
const (
	// DefaultTrials is the per-candidate trial budget; early stopping
	// usually ends candidates far sooner.
	DefaultTrials = 2000
	// DefaultMinTrials is the earliest point a candidate's batch may stop.
	DefaultMinTrials = 100
	// DefaultEpsilon is the fairness threshold ε of Definition 2.3.
	DefaultEpsilon = 0.05
	// DefaultAlpha is the simultaneous error level of the certificate.
	DefaultAlpha = 0.05
)

// Options tunes one certification sweep. The zero value sweeps the
// scenario's registered defaults with the package default budget.
type Options struct {
	// N overrides the network size (0 keeps the scenario default).
	N int
	// Trials is the per-candidate trial budget; 0 picks DefaultTrials.
	Trials int
	// MinTrials is the earliest early-stopping point; 0 picks
	// DefaultMinTrials.
	MinTrials int
	// Workers is the engine worker count per candidate batch; 0 picks
	// runtime.NumCPU(). Certificates are identical for any value.
	Workers int
	// MaxK bounds coalition sizes for honest scenarios' sweeps; 0 picks
	// the protocol's claimed resilience bound (Scenario.ResilientK), so
	// the default certificate checks exactly the paper's claim. Attack
	// scenarios ignore it: they exist above the bound.
	MaxK int
	// Epsilon is the fairness threshold; 0 picks DefaultEpsilon.
	Epsilon float64
	// Alpha is the simultaneous error level; 0 picks DefaultAlpha.
	Alpha float64
	// Targets overrides the swept target leaders (nil picks
	// scenario.DefaultSweepTargets).
	Targets []int64
	// NoStop disables per-candidate early stopping: every candidate runs
	// its full budget. Differential tests use it to reproduce plain trial
	// batches byte-for-byte, and it is the mode for boundary-critical
	// certification: with fixed-sample batches the certificate's Alpha is
	// exact, whereas early stopping's interim looks make coverage
	// approximate for gains sitting near ε (see stopRule).
	NoStop bool
	// Version names the code revision in every digest; "" picks "dev".
	// The service daemon passes its build version so cached certificates
	// never survive a rebuild.
	Version string
	// Arenas, if non-nil, draws engine worker arenas from a shared pool
	// (the service daemon's resident mode).
	Arenas *engine.ArenaPool
	// Progress, if non-nil, is called after each candidate finishes, in
	// enumeration order — a deterministic sequence for a fixed seed.
	Progress func(Progress)
}

// withDefaults resolves zero fields.
func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = DefaultTrials
	}
	if o.MinTrials <= 0 {
		o.MinTrials = DefaultMinTrials
	}
	if o.Epsilon <= 0 {
		o.Epsilon = DefaultEpsilon
	}
	if o.Alpha <= 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Version == "" {
		o.Version = "dev"
	}
	return o
}

// Progress is one step of a running sweep: the candidate that just
// finished and the running best. The sequence is deterministic for a fixed
// seed — candidates run in enumeration order — so streamed progress can be
// replayed like any other result.
type Progress struct {
	// Scenario names the certified scenario.
	Scenario string `json:"scenario"`
	// Index and Total locate the finished candidate in the sweep (Index
	// counts from 1).
	Index int `json:"index"`
	Total int `json:"total"`
	// Candidate is the deviation that just finished.
	Candidate scenario.DeviationCandidate `json:"candidate"`
	// Trials is how many trials the candidate ran before resolving.
	Trials int `json:"trials"`
	// Gain is the candidate's estimated gain over the 1/n baseline.
	Gain float64 `json:"gain"`
	// BestGain is the running maximum gain over the sweep so far.
	BestGain float64 `json:"best_gain"`
}

// CandidateResult is one deviation candidate's measured outcome.
type CandidateResult struct {
	// Candidate identifies the deviation.
	Candidate scenario.DeviationCandidate `json:"candidate"`
	// Digest is the candidate run's content address (DeviationKey): a
	// reproducible handle on exactly this batch.
	Digest string `json:"digest"`
	// Trials is the number of trials actually run (early stopping may end
	// the batch before the budget).
	Trials int `json:"trials"`
	// Wins counts trials electing Leader.
	Wins int `json:"wins"`
	// Leader is the measured cell: the candidate's target, or the
	// most-elected position for the identity candidate.
	Leader int64 `json:"leader"`
	// Gain is Wins/Trials − 1/n, the estimated gain over the fair
	// baseline; GainLo and GainHi bound it with the certificate's
	// multiplicity-corrected Wilson interval.
	Gain   float64 `json:"gain"`
	GainLo float64 `json:"gain_lo"`
	GainHi float64 `json:"gain_hi"`
	// FailRate is the fraction of FAIL outcomes.
	FailRate float64 `json:"fail_rate"`
	// Infeasible marks candidates whose planning failed at run time
	// (Reason carries the error); they carry no measurement and do not
	// weigh on the verdict.
	Infeasible bool   `json:"infeasible,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// Certificate is the machine-checked fairness statement for one scenario:
// the swept deviation space, each candidate's measured gain under
// simultaneous Wilson bounds, the arg-max deviation, and the verdict.
type Certificate struct {
	// Scenario, Topology, Protocol and Attack mirror the catalog entry.
	Scenario string `json:"scenario"`
	Topology string `json:"topology"`
	Protocol string `json:"protocol"`
	Attack   string `json:"attack,omitempty"`
	// Version names the code revision the certificate was computed by.
	Version string `json:"version"`
	// N is the certified network size; Seed the sweep's base seed.
	N    int   `json:"n"`
	Seed int64 `json:"seed"`
	// Trials is the per-candidate budget, MinTrials the earliest stopping
	// point, and MaxK the resolved coalition bound (0 = unbounded sweep
	// of an attack scenario's own family).
	Trials    int `json:"trials"`
	MinTrials int `json:"min_trials"`
	MaxK      int `json:"max_k,omitempty"`
	// Epsilon and Alpha are the certified threshold and error level; Z is
	// the Bonferroni-corrected critical value applied to every candidate
	// (the identity candidate additionally pays for its max over the n
	// positions).
	Epsilon float64 `json:"epsilon"`
	Alpha   float64 `json:"alpha"`
	Z       float64 `json:"z"`
	// Baseline is the fair win probability 1/n.
	Baseline float64 `json:"baseline"`
	// Candidates is the full sweep, in enumeration order.
	Candidates []CandidateResult `json:"candidates"`
	// BestIndex locates the arg-max candidate (largest estimated gain)
	// in Candidates; −1 when no candidate was feasible.
	BestIndex int `json:"best_index"`
	// MaxGain is the arg-max candidate's estimated gain; MaxGainLower and
	// MaxGainUpper are the largest corrected lower and upper gain bounds
	// over the sweep — the quantities the verdict reads.
	MaxGain      float64 `json:"max_gain"`
	MaxGainLower float64 `json:"max_gain_lower"`
	MaxGainUpper float64 `json:"max_gain_upper"`
	// Verdict is the certified conclusion.
	Verdict Verdict `json:"verdict"`
	// Key is the certificate's own content address (CertificateKey).
	Key string `json:"key"`
}

// Best returns the arg-max candidate result, or nil when nothing was
// feasible.
func (c *Certificate) Best() *CandidateResult {
	if c.BestIndex < 0 || c.BestIndex >= len(c.Candidates) {
		return nil
	}
	return &c.Candidates[c.BestIndex]
}

// Certify runs the best-response sweep for one scenario and returns its
// certificate. The sweep is deterministic: for a fixed seed and options the
// certificate is byte-identical at any worker count.
func Certify(ctx context.Context, sc scenario.Scenario, seed int64, o Options) (*Certificate, error) {
	o = o.withDefaults()
	runOpts := scenario.Opts{N: o.N, Trials: o.Trials, Workers: o.Workers, Arenas: o.Arenas}
	n := sc.N
	if o.N > 0 {
		n = o.N
	}
	if n < sc.MinN {
		return nil, fmt.Errorf("equilibrium: %s needs n ≥ %d, got %d", sc.Name, sc.MinN, n)
	}
	for _, t := range o.Targets {
		if t < 1 || t > int64(n) {
			return nil, fmt.Errorf("equilibrium: %s: target %d out of range [1,%d]", sc.Name, t, n)
		}
	}
	// Attack scenarios sweep their own family unconditionally, so MaxK is
	// normalized away there: requests differing only in an inert bound
	// must share one certificate identity.
	maxK := 0
	if sc.Attack == "" {
		maxK = o.MaxK
		if maxK <= 0 {
			maxK = sc.ResilientK(n)
		}
	}
	space := sc.DeviationSpace(runOpts, maxK, o.Targets)
	if len(space) == 0 {
		return nil, fmt.Errorf("equilibrium: %s has an empty deviation space", sc.Name)
	}
	baseline := 1 / float64(n)
	threshold := baseline + o.Epsilon
	m := len(space)
	z := stats.BonferroniZ(o.Alpha, m)
	// The identity candidate reports the maximum over the n positions, so
	// its interval pays for that selection too; the total error stays
	// within alpha.
	zIdentity := stats.BonferroniZ(o.Alpha, m*n)

	cert := &Certificate{
		Scenario:  sc.Name,
		Topology:  sc.Topology,
		Protocol:  sc.Protocol,
		Attack:    sc.Attack,
		Version:   o.Version,
		N:         n,
		Seed:      seed,
		Trials:    o.Trials,
		MinTrials: o.MinTrials,
		MaxK:      maxK,
		Epsilon:   o.Epsilon,
		Alpha:     o.Alpha,
		Z:         z,
		Baseline:  baseline,
		BestIndex: -1,
	}
	bestGain, anyFeasible := 0.0, false
	for i, cand := range space {
		identity := cand.Family == scenario.FamilyIdentity
		cz := z
		if identity {
			cz = zIdentity
		}
		candOpts := runOpts
		if !o.NoStop {
			candOpts.Stop = stopRule(cand, cz, threshold, o.MinTrials)
		}
		res := CandidateResult{
			Candidate: cand,
			Digest: DeviationKey(o.Version, sc.Name, seed, devIdentity{
				N: n, Trials: o.Trials, MinTrials: o.MinTrials,
				Epsilon: o.Epsilon, Alpha: o.Alpha, M: m, NoStop: o.NoStop,
			}, cand),
		}
		dist, err := sc.RunDeviation(ctx, seed, cand, candOpts)
		var planErr *ring.PlanError
		switch {
		case ctx.Err() != nil:
			return nil, ctx.Err()
		case err != nil && errors.As(err, &planErr):
			// Per-trial planning rejection: enumeration probes planning
			// with one representative seed, so a seed-dependent family
			// (randomized placement) can still refuse some trial seeds.
			// That is genuine infeasibility, recorded and excluded.
			res.Infeasible, res.Reason = true, err.Error()
		case err != nil:
			// Anything else — an engine, simulation, or configuration
			// failure — must fail the sweep: silently dropping the
			// candidate could certify "fair" while the profitable
			// deviation was the one that crashed.
			return nil, fmt.Errorf("equilibrium: %s: candidate %s: %w", sc.Name, cand, err)
		default:
			wins, leader := winCell(dist, cand)
			lo, hi := stats.WilsonInterval(wins, dist.Trials, cz)
			rate := float64(wins) / float64(dist.Trials)
			res.Trials, res.Wins, res.Leader = dist.Trials, wins, leader
			res.Gain, res.GainLo, res.GainHi = rate-baseline, lo-baseline, hi-baseline
			res.FailRate = dist.FailureRate()
			if cert.BestIndex < 0 || res.Gain > bestGain {
				cert.BestIndex, bestGain = i, res.Gain
			}
			if !anyFeasible || res.GainLo > cert.MaxGainLower {
				cert.MaxGainLower = res.GainLo
			}
			if !anyFeasible || res.GainHi > cert.MaxGainUpper {
				cert.MaxGainUpper = res.GainHi
			}
			anyFeasible = true
		}
		cert.Candidates = append(cert.Candidates, res)
		if o.Progress != nil {
			o.Progress(Progress{
				Scenario:  sc.Name,
				Index:     i + 1,
				Total:     m,
				Candidate: cand,
				Trials:    res.Trials,
				Gain:      res.Gain,
				BestGain:  bestGain,
			})
		}
	}
	cert.MaxGain = bestGain
	switch {
	case cert.BestIndex < 0:
		cert.Verdict = VerdictInconclusive
	case cert.MaxGainLower > o.Epsilon:
		cert.Verdict = VerdictExploitable
	case cert.MaxGainUpper <= o.Epsilon:
		cert.Verdict = VerdictFair
	default:
		cert.Verdict = VerdictInconclusive
	}
	cert.Key = Key(sc, seed, o)
	return cert, nil
}

// winCell picks the measured cell of a candidate's distribution: the forced
// target, or the most-elected position for the identity candidate.
func winCell(d *ring.Distribution, cand scenario.DeviationCandidate) (wins int, leader int64) {
	if cand.Family == scenario.FamilyIdentity || cand.Target == 0 {
		l, _ := d.MaxWin()
		return d.Counts[l], l
	}
	return d.Counts[cand.Target], cand.Target
}

// stopRule builds the per-candidate early-stopping rule: end the batch once
// the corrected Wilson interval of the measured cell — the same cell
// winCell reports, one source of truth — lies entirely below or entirely
// above the fairness threshold. The rule sees deterministic chunk-ordered
// prefixes (engine.Options.Stop), so the stopping point — and hence the
// certificate — is identical at any worker count.
//
// Statistical caveat: the interim looks reuse the final critical value z,
// so under optional stopping the realized per-candidate error can exceed
// alpha/m for gains sitting near the threshold — the certificate's Alpha
// is exact only for fixed-sample sweeps (Options.NoStop), which is the
// mode to use when a gain is genuinely boundary-critical. The catalog's
// scenarios live far from ε on both sides (honest gains ≈ 0, exploits
// ≈ 1−1/n), where the inflation is immaterial; a near-threshold candidate
// that never clears the band simply runs its full budget and lands
// inconclusive, never a false verdict at the budget's own resolution.
func stopRule(cand scenario.DeviationCandidate, z, threshold float64, minTrials int) func(*ring.Distribution, int) bool {
	return func(d *ring.Distribution, _ int) bool {
		if d.Trials < minTrials {
			return false
		}
		wins, _ := winCell(d, cand)
		lo, hi := stats.WilsonInterval(wins, d.Trials, z)
		return hi <= threshold || lo > threshold
	}
}

// CertifyAll certifies every registered scenario at its defaults, in
// catalog order.
func CertifyAll(ctx context.Context, seed int64, o Options) ([]*Certificate, error) {
	return certifyEach(ctx, scenario.All(), seed, o)
}

// CertifyMatch certifies the scenarios whose names match the regular
// expression, in catalog order.
func CertifyMatch(ctx context.Context, pattern string, seed int64, o Options) ([]*Certificate, error) {
	scs, err := scenario.Match(pattern)
	if err != nil {
		return nil, err
	}
	if len(scs) == 0 {
		return nil, fmt.Errorf("equilibrium: no scenario matches %q", pattern)
	}
	return certifyEach(ctx, scs, seed, o)
}

func certifyEach(ctx context.Context, scs []scenario.Scenario, seed int64, o Options) ([]*Certificate, error) {
	out := make([]*Certificate, 0, len(scs))
	for _, sc := range scs {
		cert, err := Certify(ctx, sc, seed, o)
		if err != nil {
			return nil, fmt.Errorf("equilibrium: %s: %w", sc.Name, err)
		}
		out = append(out, cert)
	}
	return out, nil
}
