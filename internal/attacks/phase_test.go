package attacks

import (
	"testing"

	"repro/internal/protocols/phaselead"
	"repro/internal/protocols/sumphase"
	"repro/internal/ring"
)

func TestPhaseRushingControlsPhaseLead(t *testing.T) {
	// Section 6 tightness remark: k = √n+3 equally spaced adversaries
	// control PhaseAsyncLead. Every segment is shorter than min(k, l),
	// so every adversary has informed free slots to steer its segment.
	for _, n := range []int{100, 144, 400} {
		proto := phaselead.NewDefault()
		attack := PhaseRushing{Protocol: proto}
		for _, target := range []int64{1, int64(n / 3)} {
			dist, err := ring.AttackTrials(n, proto, attack, target, 42, 10)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if rate := dist.WinRate(target); rate != 1.0 {
				t.Errorf("n=%d target=%d: forced rate %v, want 1.0 (fails: %v)",
					n, target, rate, dist.FailCounts)
			}
		}
	}
}

func TestPhaseRushingInfeasibleAtResilientK(t *testing.T) {
	// Theorem 6.1 regime: for k ≤ √n/10 some segment is at least
	// min(k, l) long, so no coalition member can steer — the planner
	// certifies this.
	const n = 400 // √n/10 = 2
	attack := PhaseRushing{Protocol: phaselead.NewDefault(), K: 2}
	if _, err := attack.Plan(n, 1, 0); err == nil {
		t.Fatal("planned a steering attack with k=2 ≤ √n/10; Theorem 6.1 forbids it")
	}
	// Even well above √n/10, steering needs segments < k: at k = √n/2
	// the segments are ≈ 2√n ≫ k.
	attack.K = SqrtK(n) / 2
	if _, err := attack.Plan(n, 1, 0); err == nil {
		t.Fatal("planned a steering attack with k=√n/2; segments exceed k")
	}
}

func TestPhaseRushingNoSteerFailsUnderRandomFunction(t *testing.T) {
	// Rushing without steering keeps every per-segment validation happy,
	// but under f each segment reconstructs a differently-shifted input:
	// outputs disagree and the outcome is FAIL. (Under A-LEADuni's sum
	// output the very same stream shifts are invisible — this measures
	// exactly what the random function buys.)
	const (
		n      = 64
		k      = 4
		target = int64(7)
		trials = 100
	)
	proto := phaselead.NewDefault()
	attack := PhaseRushing{Protocol: proto, K: k, Mode: PhaseNoSteer}
	dist, err := ring.AttackTrials(n, proto, attack, target, 7, trials)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Counts[target] > 8 { // ≈ trials/n expected even on valid runs
		t.Errorf("target won %d/%d under no-steer rushing", dist.Counts[target], trials)
	}
	if mismatches := dist.FailCounts[2]; mismatches < trials/2 {
		t.Errorf("only %d/%d executions ended in mismatch; shifted inputs should disagree",
			mismatches, trials)
	}
}

func TestPhaseRushingChaseSavesValidityNotBias(t *testing.T) {
	// Theorem 6.1's mechanism, exhibited: with one unsteerable long
	// segment, the coalition can keep every execution valid by chasing
	// the long segment's output, but that output is uniform — the
	// election stays unbiased.
	const (
		n      = 121
		k      = 8
		target = int64(5)
		trials = 240
	)
	proto := phaselead.NewDefault()
	attack := PhaseRushing{Protocol: proto, K: k, Mode: PhaseChase}
	dist, err := ring.AttackTrials(n, proto, attack, target, 17, trials)
	if err != nil {
		t.Fatal(err)
	}
	if rate := dist.FailureRate(); rate > 0.05 {
		t.Errorf("chase mode failed %.2f of executions; expected ≈ 0", rate)
	}
	if dist.Counts[target] > 12 { // 240/121 ≈ 2 expected
		t.Errorf("target won %d/%d under chase; chase must not bias", dist.Counts[target], trials)
	}
	// The chased outcome should spread over many leaders, not collapse.
	distinct := 0
	for j := 1; j <= n; j++ {
		if dist.Counts[j] > 0 {
			distinct++
		}
	}
	if distinct < n/3 {
		t.Errorf("only %d distinct leaders over %d valid chase runs; expected a broad spread",
			distinct, trials-dist.Failures())
	}
}

func TestPhaseRushingTransition(t *testing.T) {
	// The steering feasibility transition sits near k ≈ √n: equal
	// spacing gives segments ≈ n/k, steerable iff n/k < k.
	const n = 256
	feasible := func(k int) bool {
		_, err := PhaseRushing{Protocol: phaselead.NewDefault(), K: k}.Plan(n, 1, 0)
		return err == nil
	}
	if feasible(8) { // segments ≈ 31 ≥ 8
		t.Error("k=8 should not be steerable at n=256")
	}
	if !feasible(SqrtK(n) + 3) {
		t.Error("k=√n+3 should be steerable at n=256")
	}
}

func TestSumPhaseAttackControlsSumProtocol(t *testing.T) {
	// Appendix E.4: four colluders control the sum-output phase protocol.
	for _, n := range []int{24, 60, 121, 400} {
		proto := sumphase.New()
		dist, err := ring.AttackTrials(n, proto, SumPhase{}, 5, 3, 10)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rate := dist.WinRate(5); rate != 1.0 {
			t.Errorf("n=%d: forced rate %v, want 1.0 (fails: %v)", n, rate, dist.FailCounts)
		}
	}
}

func TestSumPhaseAttackFailsAgainstRandomFunction(t *testing.T) {
	// The same k=4 deviation aimed at PhaseAsyncLead (sum replaced by f)
	// is powerless: partial sums of f's input are useless, so the
	// coalition's injected streams cannot be steered to a common output.
	const (
		n      = 121
		target = int64(5)
		trials = 120
	)
	proto := phaselead.NewDefault()
	dist, err := ring.AttackTrials(n, proto, SumPhase{}, target, 11, trials)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Counts[target] > 8 { // ≈1 expected by chance
		t.Errorf("sum attack forced the random-function protocol %d/%d times",
			dist.Counts[target], trials)
	}
}

func TestPhaseRushingBestEffortBelowThreshold(t *testing.T) {
	// Best-effort at sub-threshold k: no segment is steerable, the
	// shifted reconstructions disagree, and the coalition gains nothing —
	// the target is never forced.
	const (
		n      = 100
		k      = 3
		target = int64(9)
		trials = 120
	)
	proto := phaselead.NewDefault()
	attack := PhaseRushing{Protocol: proto, K: k, Mode: PhaseBestEffort}
	dist, err := ring.AttackTrials(n, proto, attack, target, 13, trials)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Counts[target] > 8 { // ≈ 1 expected by chance
		t.Errorf("target won %d/%d at sub-threshold k; Theorem 6.1 forbids bias",
			dist.Counts[target], trials)
	}
}
