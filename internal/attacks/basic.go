package attacks

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
)

// BasicSingle is the Claim B.1 attack: a single adversary controls the
// outcome of Basic-LEAD by withholding its own value until it has received
// all n−1 honest values, then choosing its value to cancel the sum.
type BasicSingle struct {
	// Position is the adversary's ring position; defaults to 2.
	Position sim.ProcID
}

var _ ring.Attack = BasicSingle{}

// Name implements ring.Attack.
func (BasicSingle) Name() string { return "basic-single" }

// Plan implements ring.Attack.
func (a BasicSingle) Plan(n int, target int64, _ int64) (*ring.Deviation, error) {
	pos := a.Position
	if pos == 0 {
		pos = 2
	}
	if pos < 1 || int(pos) > n {
		return nil, fmt.Errorf("attacks: position %d out of range [1,%d]", pos, n)
	}
	if target < 1 || target > int64(n) {
		return nil, fmt.Errorf("attacks: target %d out of range [1,%d]", target, n)
	}
	return &ring.Deviation{
		Coalition: []sim.ProcID{pos},
		Strategies: map[sim.ProcID]sim.Strategy{
			pos: &basicSingleAdversary{n: n, target: target},
		},
	}, nil
}

// basicSingleAdversary stays silent until it has absorbed every honest
// value, then injects the cancelling value and replays what it saw so that
// every honest processor completes its n receives with its own value last.
type basicSingleAdversary struct {
	n        int
	target   int64
	received []int64
}

var _ sim.Strategy = (*basicSingleAdversary)(nil)

func (a *basicSingleAdversary) Init(*sim.Context) {}

func (a *basicSingleAdversary) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	value = ring.Mod(value, a.n)
	a.received = append(a.received, value)
	if len(a.received) < a.n-1 {
		return
	}
	var sum int64
	for _, v := range a.received {
		sum = ring.Mod(sum+v, a.n)
	}
	// The adversary's "secret": whatever makes the total hit the target.
	ctx.Send(ring.Mod(ring.SumForLeader(a.target, a.n)-sum, a.n))
	// Replaying the received values in order shifts every honest
	// processor's stream so that its own value arrives last, passing all
	// validations.
	for _, v := range a.received {
		ctx.Send(v)
	}
	ctx.Terminate(a.target)
}
