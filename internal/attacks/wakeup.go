package attacks

import (
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/wakeup"
)

// WakeupRushing is the rushing attack lifted to the wake-up extension of
// A-LEADuni (Appendix H): the adversaries participate honestly in the id
// exchange and attack the election phase exactly as in Section 4 —
// demonstrating the paper's remark that "our attacks still hold for the
// original protocol".
//
// The plan pins ids to ring positions so that the minimal id (and hence the
// origin role) lands on the honest processor 1, matching the placement
// assumptions of the inner attack; the paper's attacks make the same
// without-loss-of-generality choice.
type WakeupRushing struct {
	// Inner is the election-phase attack; its zero value is the cubic
	// attack with minimal feasible k.
	Inner Rushing
}

var _ ring.Attack = WakeupRushing{}

// Name implements ring.Attack.
func (a WakeupRushing) Name() string { return "wakeup+" + a.Inner.Name() }

// Protocol returns the combined protocol this attack targets: ids pinned to
// positions (so position 1 holds the minimal id and becomes the origin).
func (WakeupRushing) Protocol(n int) ring.Protocol {
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i + 1)
	}
	return wakeup.NewWithIDs(ids)
}

// Plan implements ring.Attack: the inner deviation's strategies are wrapped
// to first play the wake-up phase honestly. The attack targets ring
// positions, which the combined protocol also elects.
func (a WakeupRushing) Plan(n int, target int64, seed int64) (*ring.Deviation, error) {
	inner, err := a.Inner.Plan(n, target, seed)
	if err != nil {
		return nil, err
	}
	dev := &ring.Deviation{
		Coalition:  inner.Coalition,
		Strategies: make(map[sim.ProcID]sim.Strategy, len(inner.Coalition)),
	}
	for pos, strategy := range inner.Strategies {
		dev.Strategies[pos] = &wakeup.PhaseShift{N: n, ID: int64(pos), Inner: strategy}
	}
	return dev, nil
}
