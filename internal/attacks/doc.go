// Package attacks implements every adversarial deviation studied in the
// paper, as executable strategies for the ring simulator:
//
//   - BasicSingle: the single-adversary attack on Basic-LEAD (Claim B.1).
//   - Rushing: the unified rushing engine behind Lemma 4.1, Theorem 4.2
//     (k = ⌈√n⌉ equally spaced adversaries) and Theorem 4.3 (the Cubic
//     attack, k = Θ(n^{1/3}) adversaries at staggered distances), including
//     the distance planner that decides feasibility for arbitrary (n, k).
//   - Randomized: the Appendix C attack by randomly located adversaries that
//     do not know their locations or count (Theorem C.1).
//   - HalfRing: a consecutive coalition of ⌈n/2⌉ processors that controls
//     A-LEADuni, the executable face of the k-simulated-tree impossibility
//     (Theorem 7.2) and the tightness of Claim D.1's k < n/2 hypothesis.
//   - PhaseRushing: the rushing attack against PhaseAsyncLead with
//     k = √n+3 adversaries (Section 6 tightness remark), which also serves,
//     at sub-threshold k, as the strongest known deviation for the
//     resilience experiments.
//   - SumPhase: the k = 4 attack against the sum-based phase protocol
//     (Appendix E.4), piggybacking partial sums on adversary-validated
//     phase rounds.
//   - Abort: the destructive control — k silent processors that can only
//     force FAIL, the "can destroy, cannot profit" baseline every
//     equilibrium certificate sweeps.
//
// All attacks are deterministic deviations (WLOG per Appendix D): given the
// honest processors' randomness, the execution is fully determined. That
// includes the PhaseRushing steering search, which runs on the trial
// engine's deterministic first-hit scan (internal/engine.Search): it always
// commits to the minimal satisfying coordinate assignment, at any worker
// count, so attack executions stay reproducible under parallel trials.
package attacks
