package attacks

import (
	"testing"

	"repro/internal/protocols/alead"
	"repro/internal/ring"
	"repro/internal/sim"
)

// Lemma 3.3 characterizes exactly when an adversarial deviation from
// A-LEADuni succeeds:
//
//	(1) every exposed adversary sends n messages,
//	(2) all exposed adversaries' outgoing sums agree (mod n),
//	(3) each adversary's last l_i messages are its segment's secrets in
//	    replay order.
//
// The scripted deviations below violate each condition in isolation and
// confirm the predicted failure mode; the compliant script succeeds.

// scripted buffers like an honest processor but can (a) drop its final
// sends, (b) corrupt its final message, or (c) shift its outgoing sum by a
// constant while keeping the replay correct.
type scripted struct {
	n           int
	dropLast    int   // violate (1): send this many fewer messages
	corruptTail bool  // violate (3): garble the final (replay) message
	sumShift    int64 // violate (2)/(force): add to the first message

	buffer int64
	sum    int64
	recv   int
	sent   int
}

var _ sim.Strategy = (*scripted)(nil)

func (s *scripted) Init(ctx *sim.Context) {
	// Like an honest processor, commit an initial value; shifting it
	// changes our outgoing sum without touching the replay tail.
	s.buffer = ring.Mod(7+s.sumShift, s.n)
}

// output mirrors the honest computation: when the execution is valid, every
// processor's receive-sum equals the common outgoing sum (Lemma 3.4), so
// terminating with it keeps the coalition's outputs consistent.
func (s *scripted) output() int64 { return ring.LeaderFromSum(s.sum, s.n) }

func (s *scripted) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	value = ring.Mod(value, s.n)
	s.recv++
	s.sum = ring.Mod(s.sum+value, s.n)
	if s.recv > s.n-s.dropLast {
		if s.recv == s.n {
			ctx.Terminate(s.output())
		}
		return
	}
	out := s.buffer
	if s.corruptTail && s.recv == s.n {
		out = ring.Mod(out+1, s.n)
	}
	ctx.Send(out)
	s.sent++
	s.buffer = value
	if s.recv == s.n {
		ctx.Terminate(s.output())
	}
}

func runScripted(t *testing.T, n int, positions []sim.ProcID, mk func(pos sim.ProcID) *scripted) sim.Result {
	t.Helper()
	dev := &ring.Deviation{Coalition: positions, Strategies: map[sim.ProcID]sim.Strategy{}}
	for _, p := range positions {
		dev.Strategies[p] = mk(p)
	}
	res, err := ring.Run(ring.Spec{N: n, Protocol: alead.New(), Deviation: dev, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLemma33CompliantSucceeds(t *testing.T) {
	// Honest-equivalent script: all three conditions hold → success.
	res := runScripted(t, 12, []sim.ProcID{5}, func(sim.ProcID) *scripted {
		return &scripted{n: 12}
	})
	if res.Failed {
		t.Fatalf("compliant deviation failed: %v", res.Reason)
	}
}

func TestLemma33Condition1TooFewMessages(t *testing.T) {
	// Dropping the final send stalls the ring: outcome FAIL, no election.
	res := runScripted(t, 12, []sim.ProcID{5}, func(sim.ProcID) *scripted {
		return &scripted{n: 12, dropLast: 1}
	})
	if !res.Failed || res.Reason != sim.FailStall {
		t.Fatalf("got (%v,%v), want stall failure", res.Failed, res.Reason)
	}
}

func TestLemma33Condition3WrongReplay(t *testing.T) {
	// Corrupting the final replay message makes the successor's own
	// secret check fail: abort.
	res := runScripted(t, 12, []sim.ProcID{5}, func(sim.ProcID) *scripted {
		return &scripted{n: 12, corruptTail: true}
	})
	if !res.Failed || res.Reason != sim.FailAbort {
		t.Fatalf("got (%v,%v), want abort failure", res.Failed, res.Reason)
	}
}

func TestLemma33Condition2DivergentSums(t *testing.T) {
	// Conditions (1) and (3) hold but (2) fails: a rushing coalition
	// whose members steer towards two different targets. Every replay is
	// correct, every count is right, yet segments behind different
	// members compute different sums — outcome mismatch, exactly the
	// second failure mode of Lemma 3.3. (Merely changing one's own
	// secret does NOT diverge the sums: all values circulate to every
	// processor, which the EqualShiftedSums test below confirms.)
	const n = 16
	devA, err := Rushing{Place: PlaceEqual}.Plan(n, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	devB, err := Rushing{Place: PlaceEqual}.Plan(n, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Splice: first half of the coalition aims for 2, second half for 5.
	mixed := &ring.Deviation{Coalition: devA.Coalition, Strategies: map[sim.ProcID]sim.Strategy{}}
	for i, pos := range devA.Coalition {
		if i < len(devA.Coalition)/2 {
			mixed.Strategies[pos] = devA.Strategies[pos]
		} else {
			mixed.Strategies[pos] = devB.Strategies[pos]
		}
	}
	res, err := ring.Run(ring.Spec{N: n, Protocol: alead.New(), Deviation: mixed, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.Reason != sim.FailMismatch {
		t.Fatalf("got (%v,%v), want mismatch failure", res.Failed, res.Reason)
	}
}

func TestLemma33EqualShiftedSumsStillSucceed(t *testing.T) {
	// The same shift applied to both adversaries keeps condition (2):
	// the election succeeds (on a shifted leader) even though both
	// deviated — Lemma 3.3 is about consistency, not honesty.
	res := runScripted(t, 12, []sim.ProcID{4, 9}, func(sim.ProcID) *scripted {
		return &scripted{n: 12, sumShift: 3}
	})
	if res.Failed {
		t.Fatalf("consistently shifted deviation failed: %v", res.Reason)
	}
}
