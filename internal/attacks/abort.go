package attacks

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
)

// Abort is the destructive control deviation: a coalition of k consecutive
// processors (positions 2..k+1, the origin stays honest) that silently drops
// every message it receives. It can only ever force the FAIL outcome — no
// honest processor completes its receives, so the execution stalls — which
// makes it the canonical "can destroy, cannot profit" baseline of the
// utility model (Definition 2.1 assigns FAIL zero utility): any protocol's
// equilibrium certificate should find its gain at or below zero.
//
// It is registered as a deviation family against every ring protocol, so
// best-response sweeps always probe at least one real (if unprofitable)
// deviation inside the resilience bound rather than certifying fairness
// against an empty space.
type Abort struct {
	// K is the coalition size; 0 picks 1.
	K int
}

var _ ring.Attack = Abort{}

// Name implements ring.Attack.
func (Abort) Name() string { return "abort" }

// Plan implements ring.Attack.
func (a Abort) Plan(n int, target int64, _ int64) (*ring.Deviation, error) {
	if target < 1 || target > int64(n) {
		return nil, fmt.Errorf("attacks: target %d out of range [1,%d]", target, n)
	}
	k := a.K
	if k == 0 {
		k = 1
	}
	if k < 1 || k >= n {
		return nil, fmt.Errorf("attacks: abort coalition k=%d out of range [1,%d]", k, n-1)
	}
	dev := &ring.Deviation{
		Coalition:  make([]sim.ProcID, k),
		Strategies: make(map[sim.ProcID]sim.Strategy, k),
	}
	for i := 0; i < k; i++ {
		pos := sim.ProcID(i + 2)
		dev.Coalition[i] = pos
		dev.Strategies[pos] = &abortAdversary{}
	}
	return dev, nil
}

// abortAdversary drops its first receive and ends the execution as failed
// (outcome ⊥). Aborting on receipt, rather than staying silent forever,
// keeps attack trials cheap: the simulator does not have to deliver the
// whole backlog before detecting the stall.
type abortAdversary struct{}

var _ sim.Strategy = (*abortAdversary)(nil)

func (*abortAdversary) Init(*sim.Context) {}

func (*abortAdversary) Receive(ctx *sim.Context, _ sim.ProcID, _ int64) {
	ctx.Abort()
}
