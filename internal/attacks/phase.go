package attacks

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/protocols/phaselead"
	"repro/internal/ring"
	"repro/internal/sim"
)

// PhaseMode selects how far the PhaseRushing coalition pushes its advantage.
type PhaseMode int

// PhaseRushing modes.
const (
	// PhaseSteer requires every coalition member to have an informed free
	// slot (every honest segment shorter than min(k, l)); planning fails
	// otherwise. This is the Section 6 tightness attack.
	PhaseSteer PhaseMode = iota + 1
	// PhaseBestEffort steers the segments that can be steered and leaves
	// the rest alone; used to probe the transition region. Whenever some
	// segment cannot be steered its output disagrees with the steered
	// ones, so executions fail rather than elect the target.
	PhaseBestEffort
	// PhaseNoSteer rushes without ever steering. Under A-LEADuni's sum
	// output such a deviation stays valid; under the random function f
	// each segment reconstructs a differently-shifted input, the outputs
	// disagree, and the outcome is FAIL — a direct measurement of what f
	// buys the protocol.
	PhaseNoSteer
	// PhaseChase demonstrates Theorem 6.1's mechanism: the coalition is
	// clustered so that exactly one segment is long (≥ min(k, l), hence
	// unsteerable) and the k−1 others are singletons. Each short-segment
	// member reconstructs the long segment's input, computes its output —
	// a uniformly random value the coalition cannot influence — and
	// steers its own segment to match it. Executions stay valid, but the
	// election is unbiased: validity is saved, bias is provably lost.
	PhaseChase
)

// PhaseRushing is the rushing attack against PhaseAsyncLead (the tightness
// remark of Section 6): k = √n+3 equally spaced adversaries control the
// outcome, while for k ≤ √n/10 the very same machinery provably cannot bias
// it (Theorem 6.1).
//
// Mechanics. Adversaries never insert secrets of their own and forward data
// without the one-round buffering delay, so the data wave crosses each
// adversary instantly: by round n−k every adversary has heard every honest
// data value, and validation values v̂_1..v̂_{n−l} circulate even earlier
// (l > k). Phase validation forces one data send per round, so the freed
// budget shows up as free *rounds*: adversary a_i's sends in rounds
// (n−k, n−l_i] carry labels that its own segment I_i attributes to positions
// beyond I_i — positions no member of I_i can cross-check. Those are
// informed free coordinates of f: a_i searches values for them (O(1)
// incremental re-evaluation) until f(segment I_i's reconstructed input) hits
// the target. Different segments reconstruct different inputs, but each is
// steered to the same output, so the election is valid and forced.
//
// When some segment has length ≥ min(k, l), its adversary's commitment point
// (round n−l_i) precedes its knowledge point (round n−k): no informed slots
// exist and the segment's output stays uniform — exactly the mechanism of
// Theorem 6.1, measurable by running this attack below threshold.
type PhaseRushing struct {
	// Protocol supplies the exact f, l and m the honest processors use.
	Protocol phaselead.Protocol
	// K is the coalition size; 0 picks ⌈√n⌉+3 (the paper's √n+3).
	K int
	// Mode defaults to PhaseSteer.
	Mode PhaseMode
	// SearchCap bounds the per-segment coordinate search; 0 picks 64·n
	// tries (failure probability ≈ e^{−64} per segment with ≥ 2 slots).
	SearchCap int
	// SearchWorkers parallelizes the coordinate search via engine.Search;
	// 0 keeps it sequential, the right default when the enclosing trials
	// already saturate the CPUs. The chosen assignment is identical at
	// any worker count (always the minimal satisfying one).
	SearchWorkers int
}

var _ ring.Attack = PhaseRushing{}

// Name implements ring.Attack.
func (a PhaseRushing) Name() string {
	switch a.Mode {
	case PhaseNoSteer:
		return "phase-rushing-nosteer"
	case PhaseBestEffort:
		return "phase-rushing-besteffort"
	case PhaseChase:
		return "phase-rushing-chase"
	default:
		return "phase-rushing"
	}
}

// Plan implements ring.Attack.
func (a PhaseRushing) Plan(n int, target int64, _ int64) (*ring.Deviation, error) {
	if target < 1 || target > int64(n) {
		return nil, fmt.Errorf("attacks: target %d out of range [1,%d]", target, n)
	}
	cfg, err := a.Protocol.Config(n)
	if err != nil {
		return nil, err
	}
	mode := a.Mode
	if mode == 0 {
		mode = PhaseSteer
	}
	k := a.K
	if k == 0 {
		k = SqrtK(n) + 3
	}
	limit := k
	if cfg.L < limit {
		limit = cfg.L
	}
	var (
		coalition []sim.ProcID
		dists     []int
	)
	if mode == PhaseChase {
		if k < 3 {
			return nil, fmt.Errorf("attacks: chase mode needs k ≥ 3, got %d", k)
		}
		long := n - 2*k + 1 // one long segment, k−1 singletons
		if long < limit {
			return nil, fmt.Errorf(
				"attacks: chase needs a long segment ≥ min(k,l)=%d, got %d; use PhaseSteer", limit, long)
		}
		dists = make([]int, k)
		dists[0] = long
		for i := 1; i < k; i++ {
			dists[i] = 1
		}
		var err error
		coalition, err = ring.FromDistances(dists, n, 2)
		if err != nil {
			return nil, err
		}
		dists = ring.Distances(coalition, n)
	} else {
		var err error
		coalition, err = ring.EqualSpaced(n, k)
		if err != nil {
			return nil, err
		}
		dists = ring.Distances(coalition, n)
		if mode == PhaseSteer {
			for i, li := range dists {
				if li >= limit {
					return nil, fmt.Errorf(
						"attacks: segment %d has length %d ≥ min(k,l)=%d; no informed free slot (Theorem 6.1 regime)",
						i+1, li, limit)
				}
			}
		}
	}
	searchCap := a.SearchCap
	if searchCap == 0 {
		searchCap = 64 * n
	}
	longPos, longLen := 0, 0
	if mode == PhaseChase {
		for i, li := range dists {
			if li > longLen {
				longPos, longLen = int(coalition[i]), li
			}
		}
	}
	dev := &ring.Deviation{
		Coalition:  coalition,
		Strategies: make(map[sim.ProcID]sim.Strategy, k),
	}
	// Attack trials plan a fresh deviation per trial, so per-member
	// allocations multiply by k·trials: all k members' per-position tables
	// come out of one backing array, the backward walks share one coalition
	// membership table and one backing, and chase mode's long-segment walk —
	// read-only during execution — is computed once and shared.
	isAdv := make([]bool, n+1)
	for _, c := range coalition {
		isAdv[int(c)] = true
	}
	tabs := make([]int64, 3*k*(n+1))
	walks := make([]int, 0, k*(n-k))
	var backwardLong []int
	if mode == PhaseChase {
		backwardLong = fillBackward(longPos, n, isAdv, make([]int, 0, n-k))
	}
	for i, pos := range coalition {
		adv := &phaseRushAdversary{
			cfg:           cfg,
			pos:           int(pos),
			k:             k,
			li:            dists[i],
			target:        target,
			mode:          mode,
			steer:         mode == PhaseSteer || mode == PhaseBestEffort,
			searchCap:     searchCap,
			searchWorkers: a.SearchWorkers,
		}
		adv.valueOf = tabs[0 : n+1 : n+1]
		adv.sentData = tabs[n+1 : 2*(n+1) : 2*(n+1)]
		adv.vhat = tabs[2*(n+1) : 3*(n+1) : 3*(n+1)]
		tabs = tabs[3*(n+1):]
		start := len(walks)
		walks = fillBackward(int(pos), n, isAdv, walks)
		adv.backward = walks[start:len(walks):len(walks)]
		if mode == PhaseChase {
			adv.longPos, adv.longLen = longPos, longLen
			adv.backwardLong = backwardLong
			adv.steer = int(pos) != longPos
		}
		dev.Strategies[pos] = adv
	}
	return dev, nil
}

// fillBackward appends to out the honest positions encountered walking
// backward (against the ring direction) from pos, in order: the j-th
// appended entry is the originator of the j-th data value an all-piping
// coalition member at pos receives. isAdv marks coalition membership by
// position.
func fillBackward(pos, n int, isAdv []bool, out []int) []int {
	p := pos
	for i := 1; i < n; i++ {
		p--
		if p < 1 {
			p += n
		}
		if !isAdv[p] {
			out = append(out, p)
		}
	}
	return out
}

// backwardHonest is fillBackward for one-off callers that hold a coalition
// list rather than a membership table.
func backwardHonest(pos, n int, coalition []sim.ProcID) []int {
	isAdv := make([]bool, n+1)
	for _, c := range coalition {
		isAdv[int(c)] = true
	}
	return fillBackward(pos, n, isAdv, make([]int, 0, n-len(coalition)))
}

// phaseRushAdversary is one coalition member of PhaseRushing.
type phaseRushAdversary struct {
	cfg           phaselead.Config
	pos           int
	k             int
	li            int
	target        int64
	mode          PhaseMode
	steer         bool
	searchCap     int
	searchWorkers int
	backward      []int

	// Chase-mode metadata: the unsteerable long segment's adversary.
	longPos      int
	longLen      int
	backwardLong []int

	round    int
	received int
	valueOf  []int64       // by honest position, −1 = not yet heard
	sentData []int64       // by round, what we sent (for f bookkeeping)
	vhat     []int64       // validation values by round
	steered  map[int]int64 // free round → chosen value (nil until computed)
	chase    int64         // chase-mode common output, once computed
	hasChase bool
}

var _ sim.Strategy = (*phaseRushAdversary)(nil)

func (p *phaseRushAdversary) Init(*sim.Context) {
	n := p.cfg.N
	if p.valueOf == nil {
		// Members built outside Plan (tests) have no pre-carved tables.
		p.valueOf = make([]int64, n+1)
		p.sentData = make([]int64, n+1)
		p.vhat = make([]int64, n+1)
	}
	for i := range p.valueOf {
		p.valueOf[i] = -1
	}
	clear(p.sentData)
	clear(p.vhat)
	p.round, p.received = 0, 0
	p.steered = nil
	p.chase, p.hasChase = 0, false
}

// pipeEnd is the last round in which this member forwards its receive: the
// earlier of its knowledge point (n−k) and its commitment point (n−l_i).
func (p *phaseRushAdversary) pipeEnd() int {
	n := p.cfg.N
	if p.li > p.k {
		return n - p.li
	}
	return n - p.k
}

// knowledgeRound is the round after which all of f's inputs are known to the
// coalition: every data value by n−k (rushing) and v̂_1..v̂_{n−l} by n−l.
func (p *phaseRushAdversary) knowledgeRound() int {
	n := p.cfg.N
	kr := n - p.k
	if n-p.cfg.L > kr {
		kr = n - p.cfg.L
	}
	return kr
}

func (p *phaseRushAdversary) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	p.received++
	if p.received%2 == 1 {
		p.dataStep(ctx, value)
	} else {
		p.validationStep(ctx, value)
	}
}

func (p *phaseRushAdversary) dataStep(ctx *sim.Context, value int64) {
	n := p.cfg.N
	p.round++
	r := p.round
	if r <= n-p.k {
		p.valueOf[p.backward[r-1]] = ring.Mod(value, n)
	}
	var out int64
	switch {
	case r <= p.pipeEnd():
		out = ring.Mod(value, n)
	case r <= n-p.li: // free slot
		if p.steer && r > p.knowledgeRound() {
			if p.steered == nil {
				goal := p.target
				if p.mode == PhaseChase {
					p.chase, p.hasChase = p.longOutput(), true
					goal = p.chase
				}
				p.computeSteering(r, goal)
			}
			if v, ok := p.steered[r]; ok {
				out = v
				break
			}
		}
		out = p.blindValue(r)
	default: // replay: the segment's true secrets, farthest first
		out = p.valueOf[p.cfg.Label(p.pos+1-r)]
	}
	p.sentData[r] = out
	ctx.Send(out)
	if r == p.pos {
		// Our validator round: commit to an arbitrary validation value.
		p.vhat[p.pos] = 0
		ctx.Send(0)
	}
}

func (p *phaseRushAdversary) validationStep(ctx *sim.Context, value int64) {
	r := p.round
	if r != p.pos {
		p.vhat[r] = value
		ctx.Send(value)
	}
	if r == p.cfg.N {
		ctx.Terminate(p.terminateValue())
	}
}

// terminateValue is the output this member terminates with: the forced
// target when steering, or (in chase mode) the long segment's output, which
// the member either computed while steering or — for the long-segment member
// itself — reads off its own completed stream.
func (p *phaseRushAdversary) terminateValue() int64 {
	if p.mode != PhaseChase {
		return p.target
	}
	if p.hasChase {
		return p.chase
	}
	if p.pos == p.longPos {
		return p.ownOutput()
	}
	return p.target // steering never ran; execution will fail anyway
}

// ownOutput evaluates f on this member's segment's reconstruction, i.e. on
// the member's complete sent stream plus the circulating validation prefix.
func (p *phaseRushAdversary) ownOutput() int64 {
	n, f := p.cfg.N, p.cfg.F
	var acc uint64
	for r := 1; r <= n; r++ {
		acc ^= f.CoordData(p.cfg.Label(p.pos+1-r), p.sentData[r])
	}
	for j := 1; j <= n-p.cfg.L; j++ {
		acc ^= f.CoordVal(j, p.vhat[j])
	}
	return f.Finalize(acc)
}

// longOutput reconstructs the long segment's input from globally known
// values — the long member's pipe forwards the honest values behind it, its
// replay re-emits its segment — and evaluates f on it. Every coalition
// member can compute this as soon as it knows all data values.
func (p *phaseRushAdversary) longOutput() int64 {
	n, f := p.cfg.N, p.cfg.F
	var acc uint64
	for r := 1; r <= n; r++ {
		lab := p.cfg.Label(p.longPos + 1 - r)
		var v int64
		if r <= n-p.longLen {
			v = p.valueOf[p.backwardLong[r-1]]
		} else {
			v = p.valueOf[lab]
		}
		acc ^= f.CoordData(lab, v)
	}
	for j := 1; j <= n-p.cfg.L; j++ {
		acc ^= f.CoordVal(j, p.vhat[j])
	}
	return f.Finalize(acc)
}

// blindValue fills a free slot before the knowledge point (or after a failed
// search): the true value when the slot's label is honest, zero otherwise.
func (p *phaseRushAdversary) blindValue(r int) int64 {
	label := p.cfg.Label(p.pos + 1 - r)
	if v := p.valueOf[label]; v >= 0 {
		return v
	}
	return 0
}

// computeSteering fixes the values of the remaining informed free rounds
// rStart..n−l_i so that f evaluated on segment I_i's reconstructed input
// equals goal. Everything else in that input is already determined: past
// sends, the replay tail, and the circulating validation prefix.
func (p *phaseRushAdversary) computeSteering(rStart int, goal int64) {
	p.steered = map[int]int64{}
	n := p.cfg.N
	f := p.cfg.F
	freeEnd := n - p.li
	var acc uint64
	for r := 1; r <= n; r++ {
		if r >= rStart && r <= freeEnd {
			continue // free coordinate, chosen below
		}
		label := p.cfg.Label(p.pos + 1 - r)
		var v int64
		switch {
		case r < rStart:
			v = p.sentData[r]
		default: // replay rounds
			v = p.valueOf[label]
		}
		acc ^= f.CoordData(label, v)
	}
	for j := 1; j <= n-p.cfg.L; j++ {
		acc ^= f.CoordVal(j, p.vhat[j])
	}
	labels := make([]int, 0, freeEnd-rStart+1)
	for r := rStart; r <= freeEnd; r++ {
		labels = append(labels, p.cfg.Label(p.pos+1-r))
	}
	values, ok := searchCoordinates(f, acc, labels, goal, p.searchCap, p.searchWorkers)
	if !ok {
		return // leave steered empty: fall back to blind values
	}
	for i, r := 0, rStart; r <= freeEnd; i, r = i+1, r+1 {
		p.steered[r] = values[i]
	}
}

// searchCoordinates looks for data values at the given labels that make the
// function finalize to target, trying assignments in a fixed deterministic
// order on engine.Search (workers ≤ 1 keeps the scan sequential). With one
// label the search is exhaustive over [n] (success probability ≈ 1−1/e for
// a random f); with two or more, at most cap assignments are tried and
// cap = 64n tries fail with probability ≈ e^{−64}. The returned assignment
// is the minimal satisfying one regardless of worker count.
func searchCoordinates(f interface {
	CoordData(int, int64) uint64
	Finalize(uint64) int64
	N() int
}, acc uint64, labels []int, target int64, cap, workers int) ([]int64, bool) {
	n := int64(f.N())
	c := len(labels)
	if c == 0 {
		return nil, false
	}
	limit := cap
	if c == 1 {
		limit = int(n) // exhaustive over the single coordinate
	}
	// The t-th assignment is t's base-n digits, labels[0] least
	// significant; candidates are tested by folding the digits straight
	// into the accumulator, with no per-try allocation.
	hit, ok := engine.Search(limit, func(t int) bool {
		trial := acc
		rem := int64(t)
		for _, lab := range labels {
			trial ^= f.CoordData(lab, rem%n)
			rem /= n
		}
		return f.Finalize(trial) == target
	}, workers)
	if !ok {
		return nil, false
	}
	values := make([]int64, c)
	rem := int64(hit)
	for i := range values {
		values[i] = rem % n
		rem /= n
	}
	return values, true
}
