package attacks

import (
	"fmt"
	"math"

	"repro/internal/ring"
	"repro/internal/sim"
)

// Randomized is the Appendix C attack on A-LEADuni by randomly located
// adversaries (Theorem C.1). Each non-origin processor turns adversarial
// independently with probability p ≈ √(8·ln n / n), so the expected coalition
// is Θ(√(n log n)). The adversaries know neither their distances nor their
// count: each one pipes messages until it detects circularity — its first C
// received values reappearing — which reveals k, then injects the cancelling
// value and replays its tail.
//
// The attack succeeds with high probability over both the coalition draw and
// the honest secrets; failed trials (prefix collision, an oversized honest
// segment) end in outcome FAIL, exactly as the theorem's 1−δ bound allows.
type Randomized struct {
	// P is the per-processor adversary probability; 0 picks √(8·ln n/n).
	P float64
	// C is the circularity detection prefix length; 0 picks 4.
	C int
}

var _ ring.Attack = Randomized{}

// Name implements ring.Attack.
func (Randomized) Name() string { return "randomized-rushing" }

// DefaultP returns the paper's adversary probability √(8·ln n / n).
func DefaultP(n int) float64 {
	return math.Sqrt(8 * math.Log(float64(n)) / float64(n))
}

// Plan implements ring.Attack: the coalition is drawn from the trial seed.
func (a Randomized) Plan(n int, target int64, seed int64) (*ring.Deviation, error) {
	if target < 1 || target > int64(n) {
		return nil, fmt.Errorf("attacks: target %d out of range [1,%d]", target, n)
	}
	p := a.P
	if p == 0 {
		p = DefaultP(n)
	}
	c := a.C
	if c == 0 {
		c = 4
	}
	coalition := ring.RandomCoalition(n, p, seed)
	if len(coalition) < 2 {
		return nil, fmt.Errorf("attacks: drew %d adversaries, need at least 2", len(coalition))
	}
	dev := &ring.Deviation{
		Coalition:  coalition,
		Strategies: make(map[sim.ProcID]sim.Strategy, len(coalition)),
	}
	// One allocation for all adversary structs and one for all their
	// receive buffers: each adversary records at most 2n values before it
	// detects circularity or bails out, so a k·2n backing array carves into
	// per-adversary capacity without any append-time growth. Attack plans
	// are built per trial, which makes this the allocation hot spot of the
	// randomized-coalition experiments.
	advs := make([]randomizedAdversary, len(coalition))
	buf := make([]int64, len(coalition)*2*n)
	targetSum := ring.SumForLeader(target, n)
	for i, pos := range coalition {
		advs[i] = randomizedAdversary{
			n:         n,
			c:         c,
			target:    target,
			targetSum: targetSum,
			received:  buf[i*2*n : i*2*n : (i+1)*2*n],
		}
		dev.Strategies[pos] = &advs[i]
	}
	return dev, nil
}

// randomizedAdversary is the per-member strategy of the Randomized attack,
// following the Theorem C.1 pseudo-code. It forwards every message while
// watching for its first C values to reappear at the stream's tail; the
// position T of that repetition reveals the coalition size k' = n−T+C, from
// which it derives how many values to replay.
type randomizedAdversary struct {
	n, c      int
	target    int64
	targetSum int64
	received  []int64
	sum       int64
}

var _ sim.Strategy = (*randomizedAdversary)(nil)

func (r *randomizedAdversary) Init(*sim.Context) {}

func (r *randomizedAdversary) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	value = ring.Mod(value, r.n)
	r.received = append(r.received, value)
	r.sum = ring.Mod(r.sum+value, r.n)
	t := len(r.received)
	if t <= r.c || !r.circular() {
		ctx.Send(value)
		if t >= 2*r.n {
			// No circularity can appear this late; bail out so the
			// execution fails instead of looping (counts toward δ).
			ctx.Abort()
		}
		return
	}
	ctx.Send(value) // the T-th message is still forwarded
	kEst := r.n - t + r.c
	replay := kEst - r.c - 1
	hi := r.n - kEst // receives 1..hi are one full honest cycle
	lo := hi - replay
	if replay < 0 || lo < 0 || hi > t {
		// Estimated k too small for this prefix length: the attack
		// cannot complete its quota; fail the execution.
		ctx.Abort()
		return
	}
	var tailSum int64
	for j := lo; j < hi; j++ {
		tailSum = ring.Mod(tailSum+r.received[j], r.n)
	}
	ctx.Send(ring.Mod(r.targetSum-r.sum-tailSum, r.n))
	for j := lo; j < hi; j++ {
		ctx.Send(r.received[j])
	}
	ctx.Terminate(r.target)
}

// circular reports whether the last C received values equal the first C.
func (r *randomizedAdversary) circular() bool {
	t := len(r.received)
	for j := 0; j < r.c; j++ {
		if r.received[t-r.c+j] != r.received[j] {
			return false
		}
	}
	return true
}
