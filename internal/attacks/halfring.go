package attacks

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
)

// HalfRing is a consecutive coalition of k ≥ ⌈n/2⌉ processors that controls
// A-LEADuni. It is the executable face of two results:
//
//   - Theorem 7.2 / Abraham et al.: no protocol resists some coalition of
//     size ⌈n/2⌉ — a ring is a 2-node simulated tree whose parts are the two
//     arcs, and this attack realizes the dictating arc against A-LEADuni.
//   - The tightness of Claim D.1, which proves consecutive coalitions of
//     size k < n/2 gain nothing: at exactly k = ⌈n/2⌉ the block's exit
//     member absorbs the last honest value precisely at its commitment
//     point, one round before it would be too late.
//
// Mechanics: the block occupies positions 2..k+1; interior members are pure
// pipes. The exit member drains the honest arc by sending junk: each junk
// message shifts the honest arc's buffers by one, returning one fresh honest
// secret (the origin's own secret arrives for free at wake-up). After L = n−k
// receives it knows the arc's entire sum, injects the cancelling value and
// replays the honest secrets in arrival order, which is exactly the order
// that makes every honest processor's own secret arrive as its n-th message.
type HalfRing struct {
	// K is the block size; 0 picks ⌈n/2⌉, the minimum feasible.
	K int
}

var _ ring.Attack = HalfRing{}

// Name implements ring.Attack.
func (HalfRing) Name() string { return "half-ring" }

// Plan implements ring.Attack.
func (a HalfRing) Plan(n int, target int64, _ int64) (*ring.Deviation, error) {
	if target < 1 || target > int64(n) {
		return nil, fmt.Errorf("attacks: target %d out of range [1,%d]", target, n)
	}
	k := a.K
	if k == 0 {
		k = (n + 1) / 2
	}
	if 2*k < n {
		return nil, fmt.Errorf("attacks: half-ring needs k ≥ ⌈n/2⌉, got k=%d n=%d (Claim D.1 regime)", k, n)
	}
	if k >= n {
		return nil, fmt.Errorf("attacks: coalition k=%d covers the whole ring n=%d", k, n)
	}
	coalition := make([]sim.ProcID, k)
	dev := &ring.Deviation{Strategies: make(map[sim.ProcID]sim.Strategy, k)}
	for i := 0; i < k; i++ {
		pos := sim.ProcID(i + 2) // block 2..k+1; origin stays honest
		coalition[i] = pos
		if i < k-1 {
			dev.Strategies[pos] = &blockPipe{quota: n, target: target}
		} else {
			dev.Strategies[pos] = &halfRingExit{
				n:         n,
				k:         k,
				target:    target,
				targetSum: ring.SumForLeader(target, n),
			}
		}
	}
	dev.Coalition = coalition
	return dev, nil
}

// blockPipe forwards everything and terminates with the coalition's target
// once its message quota is spent.
type blockPipe struct {
	quota  int
	target int64
	sent   int
}

var _ sim.Strategy = (*blockPipe)(nil)

func (b *blockPipe) Init(*sim.Context) {}

func (b *blockPipe) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	ctx.Send(value)
	b.sent++
	if b.sent >= b.quota {
		ctx.Terminate(b.target)
	}
}

// halfRingExit is the block's last member, adjacent to the honest arc.
type halfRingExit struct {
	n, k      int
	target    int64
	targetSum int64
	received  []int64
}

var _ sim.Strategy = (*halfRingExit)(nil)

func (e *halfRingExit) Init(*sim.Context) {}

func (e *halfRingExit) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	value = ring.Mod(value, e.n)
	e.received = append(e.received, value)
	arc := e.n - e.k // honest processors: k+2..n and the origin
	if len(e.received) < arc {
		// Pump the honest arc: one junk message in, one fresh secret out.
		ctx.Send(0)
		return
	}
	if len(e.received) > arc {
		return // late echoes of our own junk; ignore
	}
	// All honest secrets known: received = d_1, d_n, d_{n−1}, …, d_{k+2}.
	var sum int64
	for _, v := range e.received {
		sum = ring.Mod(sum+v, e.n)
	}
	// Budget: n total sends = (arc−1) junk + pad junk + M + arc replays.
	for pad := e.n - 2*arc; pad > 0; pad-- {
		ctx.Send(0)
	}
	ctx.Send(ring.Mod(e.targetSum-sum, e.n))
	for _, v := range e.received {
		ctx.Send(v)
	}
	ctx.Terminate(e.target)
}
