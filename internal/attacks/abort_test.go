package attacks

import (
	"testing"

	"repro/internal/protocols/alead"
	"repro/internal/ring"
)

// TestAbortForcesFailNeverProfits checks the destructive control: every
// trial under an abort coalition fails, so the coalition's target never
// wins — gain is strictly negative.
func TestAbortForcesFailNeverProfits(t *testing.T) {
	for _, k := range []int{1, 2, 5} {
		dist, err := ring.AttackTrials(16, alead.New(), Abort{K: k}, 2, 7, 50)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := dist.Failures(); got != dist.Trials {
			t.Errorf("k=%d: %d/%d trials failed, want all", k, got, dist.Trials)
		}
		if dist.WinRate(2) != 0 {
			t.Errorf("k=%d: target won %v of trials under abort", k, dist.WinRate(2))
		}
	}
}

// TestAbortPlanValidation checks coalition-size bounds.
func TestAbortPlanValidation(t *testing.T) {
	if _, err := (Abort{K: 16}).Plan(16, 2, 0); err == nil {
		t.Error("k = n should be rejected")
	}
	if _, err := (Abort{}).Plan(8, 9, 0); err == nil {
		t.Error("out-of-range target should be rejected")
	}
	dev, err := Abort{K: 3}.Plan(8, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Validate(8); err != nil {
		t.Fatal(err)
	}
	if len(dev.Coalition) != 3 {
		t.Errorf("coalition size %d, want 3", len(dev.Coalition))
	}
}
