package attacks

import (
	"math/rand"
	"testing"

	"repro/internal/protocols/alead"
	"repro/internal/protocols/basiclead"
	"repro/internal/protocols/phaselead"
	"repro/internal/protocols/sumphase"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/wakeup"
)

// chaos is a failure-injection strategy: on every receive it emits a random
// burst of arbitrary values (huge, negative, zero) and occasionally goes
// silent or terminates with garbage. Honest protocols must stay safe under
// it: every execution either fails cleanly or elects a valid leader, and
// nothing panics or runs away.
type chaos struct {
	rng *rand.Rand
}

var _ sim.Strategy = (*chaos)(nil)

func (c *chaos) Init(ctx *sim.Context) {
	if c.rng.Intn(2) == 0 {
		ctx.Send(c.rng.Int63() - c.rng.Int63())
	}
}

func (c *chaos) Receive(ctx *sim.Context, _ sim.ProcID, _ int64) {
	switch c.rng.Intn(10) {
	case 0:
		// go silent
	case 1:
		ctx.Terminate(c.rng.Int63n(1000) - 500)
	default:
		for burst := c.rng.Intn(3) + 1; burst > 0; burst-- {
			ctx.Send(c.rng.Int63() - c.rng.Int63())
		}
	}
}

func TestProtocolsSurviveChaos(t *testing.T) {
	protocols := []ring.Protocol{
		basiclead.New(),
		alead.New(),
		phaselead.NewDefault(),
		sumphase.New(),
		wakeup.New(),
	}
	const n = 17
	for _, proto := range protocols {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 30; seed++ {
				pos := sim.ProcID(seed%int64(n-1)) + 2
				dev := &ring.Deviation{
					Coalition: []sim.ProcID{pos},
					Strategies: map[sim.ProcID]sim.Strategy{
						pos: &chaos{rng: rand.New(rand.NewSource(seed))},
					},
				}
				res, err := ring.Run(ring.Spec{N: n, Protocol: proto, Deviation: dev, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Failed && (res.Output < 1 || res.Output > int64(n)) {
					t.Fatalf("seed=%d: chaos produced 'valid' outcome %d outside [1,%d]",
						seed, res.Output, n)
				}
			}
		})
	}
}

func TestTwoChaosAdversariesStaySafe(t *testing.T) {
	const n = 23
	for seed := int64(0); seed < 20; seed++ {
		dev := &ring.Deviation{
			Coalition: []sim.ProcID{5, 14},
			Strategies: map[sim.ProcID]sim.Strategy{
				5:  &chaos{rng: rand.New(rand.NewSource(seed))},
				14: &chaos{rng: rand.New(rand.NewSource(seed + 1000))},
			},
		}
		res, err := ring.Run(ring.Spec{N: n, Protocol: phaselead.NewDefault(), Deviation: dev, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Failed && (res.Output < 1 || res.Output > int64(n)) {
			t.Fatalf("seed=%d: invalid 'valid' outcome %d", seed, res.Output)
		}
	}
}

func TestChaosNeverGainsBias(t *testing.T) {
	// Beyond safety: chaos against PhaseAsyncLead should essentially
	// never produce a valid outcome at all (the validations are dense),
	// and certainly not a biased one.
	const (
		n      = 17
		trials = 60
	)
	valid := 0
	for seed := int64(0); seed < trials; seed++ {
		dev := &ring.Deviation{
			Coalition: []sim.ProcID{9},
			Strategies: map[sim.ProcID]sim.Strategy{
				9: &chaos{rng: rand.New(rand.NewSource(seed))},
			},
		}
		res, err := ring.Run(ring.Spec{N: n, Protocol: phaselead.NewDefault(), Deviation: dev, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Failed {
			valid++
		}
	}
	if valid > 3 {
		t.Errorf("chaos produced %d/%d valid phase elections; validations should catch it", valid, trials)
	}
}
