package attacks

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
)

// SumPhase is the Appendix E.4 attack: four colluders control the
// sum-output phase protocol (sumphase.Protocol) by abusing validation rounds
// whose validator is a coalition member as a fast side channel for partial
// sums of the honest secrets.
//
// Coalition layout: {2, x, y, n}, origin honest. The layout matters: an
// exposed adversary whose forward segment wraps past the origin would learn
// the total sum S half a round after its last free send — the informal
// schedule sketched in E.4 with four equal segments runs exactly one round
// short for its last member. Placing the last adversary at position n gives
// it the singleton segment {origin}, whose one missing summand d_1 reaches
// it (with the coalition's 4-round rushing gain) just before its spare
// slots. The headline claim — k = 4 breaks the sum-output protocol — is
// preserved.
//
// Timeline (segments I_2=(2,x), I_x=(x,y), I_y=(y,n), I_n={1}):
//
//	round x (x's validator round, the relay): x seeds ΣI_2; y adds ΣI_x;
//	        n adds ΣI_y and stores the partial; 2 adds d_1, completing
//	        S = Σ honest, and thus knows S; x reads S on return.
//	round n−4 (data): n hears d_1 and completes S from its relay partial.
//	round y (y's validator round, the broadcast): 2 and x, who know S,
//	        replace the circulating value with S; y reads it on return.
//	spares: each member spends its 4 freed data sends on zeros and
//	        M = targetSum − S, placed after its S-pickup round; its last
//	        l_i sends replay its segment's secrets just-in-time.
//
// Every honest segment then sums its adversary's outgoing data to
// targetSum, all phase validations pass, and the target is elected
// deterministically. Against PhaseAsyncLead (sum replaced by the random
// function f) the identical deviation is powerless — partial sums reveal
// nothing about f — which is exactly why the paper introduces f.
type SumPhase struct{}

var _ ring.Attack = SumPhase{}

// Name implements ring.Attack.
func (SumPhase) Name() string { return "sum-phase-k4" }

// sumPhaseK is the paper's headline coalition size for this attack.
const sumPhaseK = 4

// Plan implements ring.Attack.
func (SumPhase) Plan(n int, target int64, _ int64) (*ring.Deviation, error) {
	if target < 1 || target > int64(n) {
		return nil, fmt.Errorf("attacks: target %d out of range [1,%d]", target, n)
	}
	if n < 24 {
		return nil, fmt.Errorf("attacks: sum-phase attack needs n ≥ 24, got %d", n)
	}
	// Honest processors: position 1 plus n−4−1 spread over the three
	// inner segments. The first segment is kept maximal so that the relay
	// round x = 2+l2+1 comes after every member knows its behind-sum.
	inner := n - 5 // honest processors strictly between 2 and n
	l2 := (inner + 2) / 3
	lx := (inner - l2 + 1) / 2
	ly := inner - l2 - lx
	x := 2 + l2 + 1
	y := x + lx + 1
	coalition := []sim.ProcID{2, sim.ProcID(x), sim.ProcID(y), sim.ProcID(n)}

	plan := &sumPhasePlan{
		n: n, relayRound: x, broadcastRound: y,
		target:    target,
		targetSum: ring.SumForLeader(target, n),
	}
	members := []struct {
		pos       int
		li        int // forward honest segment length
		behindLen int // behind honest segment length
		role      sumRole
	}{
		{2, l2, 1, sumRole{relayCompletes: true}},
		{x, lx, l2, sumRole{relaySeeder: true}},
		{y, ly, lx, sumRole{pickupOnBroadcast: true}},
		{n, 1, ly, sumRole{completeOnForward: true}},
	}
	dev := &ring.Deviation{
		Coalition:  coalition,
		Strategies: make(map[sim.ProcID]sim.Strategy, sumPhaseK),
	}
	// One backing array serves the four members' position tables and one
	// membership table their backward walks: attack trials plan a fresh
	// deviation per trial, so per-member allocations multiply.
	isAdv := make([]bool, n+1)
	for _, c := range coalition {
		isAdv[int(c)] = true
	}
	tabs := make([]int64, sumPhaseK*(n+1))
	walks := make([]int, 0, sumPhaseK*(n-sumPhaseK))
	for _, m := range members {
		adv := &sumPhaseAdversary{
			plan:      plan,
			pos:       m.pos,
			li:        m.li,
			behindLen: m.behindLen,
			role:      m.role,
		}
		adv.valueOf = tabs[0 : n+1 : n+1]
		tabs = tabs[n+1:]
		start := len(walks)
		walks = fillBackward(m.pos, n, isAdv, walks)
		adv.backward = walks[start:len(walks):len(walks)]
		dev.Strategies[sim.ProcID(m.pos)] = adv
	}
	return dev, nil
}

// sumPhasePlan is the read-only layout shared by the four strategies.
type sumPhasePlan struct {
	n              int
	relayRound     int
	broadcastRound int
	target         int64
	targetSum      int64
}

// sumRole describes how a member participates in the S-recovery choreography.
type sumRole struct {
	// relaySeeder opens the relay with its behind-sum (member x).
	relaySeeder bool
	// relayCompletes marks the member whose relay addition yields the
	// full S (member 2, the initiator's predecessor-adversary).
	relayCompletes bool
	// pickupOnBroadcast reads S from its own returning validation in the
	// broadcast round (member y).
	pickupOnBroadcast bool
	// completeOnForward stores the relay partial and completes S once
	// its forward segment's secrets (here: the origin's d_1) arrive
	// (member n).
	completeOnForward bool
}

// sumPhaseAdversary is one member of the SumPhase coalition.
type sumPhaseAdversary struct {
	plan      *sumPhasePlan
	pos       int
	li        int
	behindLen int
	role      sumRole
	backward  []int

	round     int
	received  int
	behindSum int64
	knowS     bool
	s         int64
	partial   int64 // relay partial, for completeOnForward
	hasPart   bool
	forwSum   int64 // accumulated forward-segment secrets
	forwSeen  int
	valueOf   []int64 // by honest position; unheard positions read as 0, like the map this replaces
	spareSum  int64   // spare values emitted so far (mod n)
}

var _ sim.Strategy = (*sumPhaseAdversary)(nil)

func (a *sumPhaseAdversary) Init(*sim.Context) {
	if a.valueOf == nil {
		// Members built outside Plan (tests) have no pre-carved table.
		a.valueOf = make([]int64, a.plan.n+1)
	}
	clear(a.valueOf)
	a.round, a.received = 0, 0
	a.behindSum, a.knowS, a.s = 0, false, 0
	a.partial, a.hasPart = 0, false
	a.forwSum, a.forwSeen, a.spareSum = 0, 0, 0
}

func (a *sumPhaseAdversary) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	a.received++
	if a.received%2 == 1 {
		a.dataStep(ctx, value)
	} else {
		a.validationStep(ctx, value)
	}
}

// mSlot is the spare round carrying M: always the last of the four spares,
// which every member reaches only after its S pickup.
func (a *sumPhaseAdversary) mSlot() int { return a.plan.n - a.li }

func (a *sumPhaseAdversary) dataStep(ctx *sim.Context, value int64) {
	n := a.plan.n
	a.round++
	r := a.round
	if r <= n-sumPhaseK {
		v := ring.Mod(value, n)
		pos := a.backward[r-1]
		a.valueOf[pos] = v
		if r <= a.behindLen {
			a.behindSum = ring.Mod(a.behindSum+v, n)
		}
		if a.role.completeOnForward && a.isForward(pos) {
			a.forwSum = ring.Mod(a.forwSum+v, n)
			a.forwSeen++
			if a.forwSeen == a.li && a.hasPart {
				a.knowS, a.s = true, ring.Mod(a.partial+a.forwSum, n)
			}
		}
	}
	pipeEnd := n - sumPhaseK - a.li
	switch {
	case r <= pipeEnd:
		ctx.Send(ring.Mod(value, n))
	case r <= n-a.li: // spare slot
		out := int64(0)
		if r == a.mSlot() && a.knowS {
			out = ring.Mod(a.plan.targetSum-a.s-a.spareSum, n)
		}
		a.spareSum = ring.Mod(a.spareSum+out, n)
		ctx.Send(out)
	default: // replay: the segment's secrets, farthest first
		ctx.Send(a.valueOf[label(a.pos+1-r, n)])
	}
	if r == a.pos {
		// Our validator round: seed the relay, or junk otherwise.
		seed := int64(0)
		if a.role.relaySeeder { // our round IS the relay round
			seed = a.behindSum
		}
		ctx.Send(seed)
	}
}

// isForward reports whether pos lies in this member's forward segment.
func (a *sumPhaseAdversary) isForward(pos int) bool {
	for j := 1; j <= a.li; j++ {
		if label(a.pos+j, a.plan.n) == pos {
			return true
		}
	}
	return false
}

func (a *sumPhaseAdversary) validationStep(ctx *sim.Context, value int64) {
	n := a.plan.n
	r := a.round
	switch {
	case r == a.pos:
		// Our own validation value returned; never abort. At our relay
		// or broadcast round, the returned value is S.
		if (a.role.relaySeeder && r == a.plan.relayRound) ||
			(a.role.pickupOnBroadcast && r == a.plan.broadcastRound) {
			a.knowS, a.s = true, ring.Mod(value, n)
		}
	case r == a.plan.relayRound:
		sum := ring.Mod(value+a.behindSum, n)
		switch {
		case a.role.relayCompletes:
			a.knowS, a.s = true, sum
		case a.role.completeOnForward:
			a.partial, a.hasPart = sum, true
			if a.forwSeen == a.li {
				a.knowS, a.s = true, ring.Mod(a.partial+a.forwSum, n)
			}
		}
		ctx.Send(sum)
	case r == a.plan.broadcastRound && a.knowS:
		ctx.Send(a.s)
	default:
		ctx.Send(value)
	}
	if r == n {
		ctx.Terminate(a.plan.target)
	}
}

// label normalizes a 1-based ring position.
func label(p, n int) int {
	p %= n
	if p <= 0 {
		p += n
	}
	return p
}
