package attacks

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
)

// Placement selects how the Rushing attack lays its coalition out on the
// ring.
type Placement int

// Placements of the rushing coalition.
const (
	// PlaceEqual spaces the coalition evenly (Theorem 4.2, needs k ≳ √n).
	PlaceEqual Placement = iota + 1
	// PlaceStaggered uses the cubic attack's decreasing distances
	// (Theorem 4.3, needs k ≳ (2n)^{1/3}).
	PlaceStaggered
)

// Rushing is the unified rushing attack of Section 4 against A-LEADuni.
// Every adversary skips generating a secret of its own and forwards incoming
// messages without the protocol's one-round buffering delay, so information
// crosses the coalition k rounds early; the freed message budget ("k spare
// messages") is spent pushing zeros to keep far segments fed, after which
// each adversary injects the sum-cancelling value M and replays its
// segment's secrets so that every validation passes (Lemma 3.3).
type Rushing struct {
	// Place selects the coalition layout; defaults to PlaceStaggered.
	Place Placement
	// K is the coalition size. Zero picks the canonical size for the
	// layout: ⌈√n⌉ for PlaceEqual, the minimal feasible (≈(2n)^{1/3})
	// for PlaceStaggered.
	K int
}

var _ ring.Attack = Rushing{}

// Name implements ring.Attack.
func (a Rushing) Name() string {
	if a.place() == PlaceEqual {
		return "rushing-equal"
	}
	return "rushing-cubic"
}

func (a Rushing) place() Placement {
	if a.Place == 0 {
		return PlaceStaggered
	}
	return a.Place
}

// Plan implements ring.Attack.
func (a Rushing) Plan(n int, target int64, _ int64) (*ring.Deviation, error) {
	if target < 1 || target > int64(n) {
		return nil, fmt.Errorf("attacks: target %d out of range [1,%d]", target, n)
	}
	k := a.K
	var (
		dists []int
		err   error
	)
	switch a.place() {
	case PlaceEqual:
		if k == 0 {
			k = SqrtK(n)
		}
		dists, err = EqualDistances(n, k)
	case PlaceStaggered:
		if k == 0 {
			k = MinCubicK(n)
		}
		dists, err = StaggeredDistances(n, k)
	default:
		return nil, fmt.Errorf("attacks: unknown placement %d", a.Place)
	}
	if err != nil {
		return nil, err
	}
	coalition, err := ring.FromDistances(dists, n, 2)
	if err != nil {
		return nil, err
	}
	// FromDistances sorts positions; recover each position's own forward
	// segment length so each adversary knows its replay obligation.
	actual := ring.Distances(coalition, n)
	dev := &ring.Deviation{
		Coalition:  coalition,
		Strategies: make(map[sim.ProcID]sim.Strategy, k),
	}
	for i, pos := range coalition {
		dev.Strategies[pos] = &rushAdversary{
			n:         n,
			k:         k,
			segment:   actual[i],
			target:    target,
			targetSum: ring.SumForLeader(target, n),
		}
	}
	return dev, nil
}

// rushAdversary executes the CubicAttack pseudo-code of Appendix C for one
// coalition member with forward honest segment of the given length:
//
//  1. forward the first n−k−l incoming messages immediately;
//  2. then push k−1 zeros (the freed budget that keeps far segments moving);
//  3. absorb l more messages without sending, completing n−k receives —
//     by Lemma 4.5 these end with the segment's secrets in replay order;
//  4. send M = targetSum − Σ(first n−k receives), making the outgoing sum
//     hit the target regardless of the honest secrets;
//  5. replay the segment's secrets so every honest processor's own value
//     arrives as its n-th message (Lemma 3.5).
type rushAdversary struct {
	n, k      int
	segment   int // l_i: length of the forward honest segment
	target    int64
	targetSum int64
	received  []int64
	sum       int64 // running sum of all receives (mod n)
}

var _ sim.Strategy = (*rushAdversary)(nil)

func (r *rushAdversary) Init(*sim.Context) {}

func (r *rushAdversary) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	value = ring.Mod(value, r.n)
	r.received = append(r.received, value)
	r.sum = ring.Mod(r.sum+value, r.n)
	c := len(r.received)
	pipeEnd := r.n - r.k - r.segment
	absorbEnd := r.n - r.k
	switch {
	case c < pipeEnd:
		ctx.Send(value)
	case c == pipeEnd:
		ctx.Send(value)
		for j := 0; j < r.k-1; j++ {
			ctx.Send(0)
		}
	case c < absorbEnd:
		// Absorb silently: these are the segment's secrets arriving.
	case c == absorbEnd:
		ctx.Send(ring.Mod(r.targetSum-r.sum, r.n))
		for j := pipeEnd; j < absorbEnd; j++ {
			ctx.Send(r.received[j])
		}
		ctx.Terminate(r.target)
	}
}
