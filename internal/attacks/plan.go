package attacks

import (
	"fmt"
	"math"
)

// StaggeredDistances computes honest-segment lengths (l_1..l_k) for the
// cubic attack (Theorem 4.3). The attack requires
//
//	l_k ≤ k−1,  l_i ≤ l_{i+1} + (k−1)  for i < k,  Σ l_i = n−k,
//
// and the termination argument of Lemma 4.4 wants l_1 = max_i l_i. The
// construction caps the paper's maximal staircase l_i = (k+1−i)(k−1) at the
// smallest plateau height h whose total reaches n−k, then shaves the
// remainder off the tail of the plateau, keeping the sequence non-increasing
// up to a single −1 step. All lengths are ≥ 1, so every adversary is exposed.
func StaggeredDistances(n, k int) ([]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("attacks: rushing needs k ≥ 2, got %d", k)
	}
	if n-k < k {
		return nil, fmt.Errorf("attacks: ring too small for %d exposed adversaries (n=%d)", k, n)
	}
	want := n - k
	natural := func(i int) int { return (k + 1 - i) * (k - 1) } // descending staircase
	sumAt := func(h int) int {
		total := 0
		for i := 1; i <= k; i++ {
			v := natural(i)
			if v > h {
				v = h
			}
			if v < 1 {
				v = 1
			}
			total += v
		}
		return total
	}
	if sumAt(natural(1)) < want {
		return nil, fmt.Errorf("attacks: n=%d exceeds cubic capacity %d for k=%d (need k ≳ (2n)^{1/3})",
			n, k+sumAt(natural(1)), k)
	}
	// Binary search the minimal plateau height h with sumAt(h) ≥ want.
	lo, hi := 1, natural(1)
	for lo < hi {
		mid := (lo + hi) / 2
		if sumAt(mid) >= want {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h := lo
	dists := make([]int, k)
	plateau := 0
	for i := 1; i <= k; i++ {
		v := natural(i)
		if v > h {
			v = h
		}
		if v < 1 {
			v = 1
		}
		dists[i-1] = v
		if v == h {
			plateau++
		}
	}
	delta := sumAt(h) - want
	// delta < plateau because h is minimal; shave the tail of the plateau.
	for i := plateau - 1; delta > 0 && i >= 0; i-- {
		dists[i]--
		delta--
	}
	if err := validateRushingDistances(dists, n, k); err != nil {
		return nil, err
	}
	return dists, nil
}

// EqualDistances computes (approximately) equal segment lengths for the
// Theorem 4.2 attack, sorted so that the first segment is longest (which the
// Lemma 4.4 termination argument wants). Feasible only when the common
// length stays at most k−1, i.e. roughly k ≥ √n.
func EqualDistances(n, k int) ([]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("attacks: rushing needs k ≥ 2, got %d", k)
	}
	if n-k < k {
		return nil, fmt.Errorf("attacks: ring too small for %d exposed adversaries (n=%d)", k, n)
	}
	base, extra := (n-k)/k, (n-k)%k
	dists := make([]int, k)
	for i := range dists {
		dists[i] = base
		if i < extra {
			dists[i]++ // longer segments first, so l_1 is maximal
		}
	}
	if err := validateRushingDistances(dists, n, k); err != nil {
		return nil, err
	}
	return dists, nil
}

func validateRushingDistances(dists []int, n, k int) error {
	if len(dists) != k {
		return fmt.Errorf("attacks: %d distances for k=%d", len(dists), k)
	}
	total := 0
	for i, d := range dists {
		if d < 1 {
			return fmt.Errorf("attacks: segment %d has length %d < 1", i+1, d)
		}
		if i+1 < k && d > dists[i+1]+k-1 {
			return fmt.Errorf("attacks: l_%d=%d exceeds l_%d+k−1=%d (rushing infeasible)",
				i+1, d, i+2, dists[i+1]+k-1)
		}
		total += d
	}
	if last := dists[k-1]; last > k-1 {
		return fmt.Errorf("attacks: l_k=%d exceeds k−1=%d (rushing infeasible)", last, k-1)
	}
	if total != n-k {
		return fmt.Errorf("attacks: distances sum to %d, want %d", total, n-k)
	}
	return nil
}

// MinCubicK returns the smallest coalition size for which the staggered
// distance plan is feasible on a ring of n processors; it grows as Θ(n^{1/3})
// (Theorem 4.3 shows k = 2·n^{1/3} always suffices).
func MinCubicK(n int) int {
	for k := 2; k <= n/2; k++ {
		if _, err := StaggeredDistances(n, k); err == nil {
			return k
		}
	}
	return n / 2
}

// SqrtK returns ⌈√n⌉, the equally-spaced coalition size of Theorem 4.2.
func SqrtK(n int) int {
	return int(math.Ceil(math.Sqrt(float64(n))))
}
