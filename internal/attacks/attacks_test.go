package attacks

import (
	"testing"

	"repro/internal/protocols/alead"
	"repro/internal/protocols/basiclead"
	"repro/internal/ring"
	"repro/internal/sim"
)

// forceRate measures how often an attack elects its target over trials.
func forceRate(t *testing.T, protocol ring.Protocol, attack ring.Attack, n int, target int64, trials int) float64 {
	t.Helper()
	dist, err := ring.AttackTrials(n, protocol, attack, target, 1234, trials)
	if err != nil {
		t.Fatalf("%s on %s (n=%d): %v", attack.Name(), protocol.Name(), n, err)
	}
	return dist.WinRate(target)
}

func TestBasicSingleControlsOutcome(t *testing.T) {
	for _, n := range []int{4, 9, 32} {
		for _, target := range []int64{1, int64(n / 2), int64(n)} {
			rate := forceRate(t, basiclead.New(), BasicSingle{}, n, target, 20)
			if rate != 1.0 {
				t.Errorf("n=%d target=%d: forced rate %v, want 1.0 (Claim B.1)", n, target, rate)
			}
		}
	}
}

func TestBasicSinglePositionIrrelevant(t *testing.T) {
	const n = 12
	for _, pos := range []sim.ProcID{1, 2, 7, 12} {
		rate := forceRate(t, basiclead.New(), BasicSingle{Position: pos}, n, 5, 10)
		if rate != 1.0 {
			t.Errorf("position %d: forced rate %v, want 1.0", pos, rate)
		}
	}
}

func TestRushingEqualControlsALead(t *testing.T) {
	// Theorem 4.2: k = ⌈√n⌉ equally spaced adversaries force any target.
	for _, n := range []int{16, 36, 100, 225} {
		for _, target := range []int64{1, int64(n)} {
			rate := forceRate(t, alead.New(), Rushing{Place: PlaceEqual}, n, target, 10)
			if rate != 1.0 {
				t.Errorf("n=%d target=%d: forced rate %v, want 1.0 (Theorem 4.2)", n, target, rate)
			}
		}
	}
}

func TestRushingStaggeredControlsALead(t *testing.T) {
	// Theorem 4.3: the cubic attack with k = Θ(n^{1/3}) staggered
	// adversaries forces any target.
	for _, n := range []int{64, 200, 512, 1000} {
		k := MinCubicK(n)
		if k > 2*cubeRoot(n)+2 {
			t.Errorf("n=%d: minimal cubic k=%d exceeds the 2·n^{1/3} bound %d", n, k, 2*cubeRoot(n))
		}
		rate := forceRate(t, alead.New(), Rushing{Place: PlaceStaggered, K: k}, n, 3, 10)
		if rate != 1.0 {
			t.Errorf("n=%d k=%d: forced rate %v, want 1.0 (Theorem 4.3)", n, k, rate)
		}
	}
}

func cubeRoot(n int) int {
	k := 1
	for (k+1)*(k+1)*(k+1) <= n {
		k++
	}
	return k + 1
}

func TestRushingInfeasibleBelowThreshold(t *testing.T) {
	// Well below (2n)^{1/3} no distance plan exists: the attack machinery
	// itself certifies infeasibility (the empirical side of Theorem 5.1's
	// regime and Conjecture 4.7).
	const n = 1000
	for _, k := range []int{2, 3, 5, 8} {
		if _, err := StaggeredDistances(n, k); err == nil {
			total := k + k*(k-1) + k*(k-1)*(k-1)/2
			if total < n {
				t.Errorf("k=%d: plan feasible but capacity %d < n=%d", k, total, n)
			}
		}
	}
	if _, err := EqualDistances(n, 8); err == nil {
		t.Error("equal placement with k=8 ≪ √1000 should be infeasible (segments exceed k−1)")
	}
}

func TestStaggeredDistancesShape(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{64, 8}, {200, 10}, {512, 16}, {1000, 13}} {
		dists, err := StaggeredDistances(tc.n, tc.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if err := validateRushingDistances(dists, tc.n, tc.k); err != nil {
			t.Fatalf("n=%d k=%d: invalid plan: %v", tc.n, tc.k, err)
		}
		for i, d := range dists {
			if d > dists[0] {
				t.Errorf("n=%d k=%d: l_%d=%d exceeds l_1=%d; Lemma 4.4 wants l_1 maximal",
					tc.n, tc.k, i+1, d, dists[0])
			}
		}
	}
}

func TestRandomizedControlsALeadWHP(t *testing.T) {
	// Theorem C.1: randomly located adversaries with p = √(8 ln n / n)
	// control the outcome with high probability. Failures are allowed
	// within δ; we require a healthy majority of successes.
	const (
		n      = 400
		trials = 40
	)
	rate := forceRate(t, alead.New(), Randomized{}, n, 7, trials)
	if rate < 0.8 {
		t.Errorf("forced rate %v, want ≥ 0.8 (Theorem C.1 says 1−δ)", rate)
	}
}

func TestRandomizedNeverElectsOtherLeader(t *testing.T) {
	// Even when the randomized attack fails, it must fail to FAIL, never
	// hand the election to a different leader.
	const n = 144
	dist, err := ring.AttackTrials(n, alead.New(), Randomized{}, 9, 99, 60)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= n; j++ {
		if int64(j) != 9 && dist.Counts[j] != 0 {
			t.Errorf("leader %d elected %d times under attack targeting 9", j, dist.Counts[j])
		}
	}
}

func TestHalfRingControlsALead(t *testing.T) {
	// The ⌈n/2⌉ consecutive coalition forces any outcome: the executable
	// face of the simulated-tree impossibility (Theorem 7.2).
	for _, n := range []int{6, 7, 16, 33, 100} {
		rate := forceRate(t, alead.New(), HalfRing{}, n, 2, 10)
		if rate != 1.0 {
			t.Errorf("n=%d: forced rate %v, want 1.0", n, rate)
		}
	}
}

func TestHalfRingRejectsSubHalf(t *testing.T) {
	// Claim D.1 regime: consecutive coalitions below n/2 are provably
	// powerless against A-LEADuni; the attack must refuse to plan there.
	if _, err := (HalfRing{K: 15}).Plan(40, 1, 0); err == nil {
		t.Error("half-ring planned with k=15 < n/2=20; Claim D.1 forbids any gain")
	}
}

func TestConsecutiveSubHalfCoalitionPowerless(t *testing.T) {
	// Direct empirical check of Claim D.1: a consecutive coalition of
	// size k < n/2 running the strongest strategy we have (the half-ring
	// machinery, forced) cannot elect its target more often than chance.
	// The exit member's budget runs dry before it learns the arc sum, so
	// executions fail rather than elect the target.
	const (
		n      = 20
		k      = 8
		target = 4
	)
	coalition := make([]sim.ProcID, k)
	dev := &ring.Deviation{Strategies: make(map[sim.ProcID]sim.Strategy, k)}
	for i := 0; i < k; i++ {
		pos := sim.ProcID(i + 2)
		coalition[i] = pos
		if i < k-1 {
			dev.Strategies[pos] = &blockPipe{quota: n, target: target}
		} else {
			dev.Strategies[pos] = &halfRingExit{n: n, k: k, target: target, targetSum: ring.SumForLeader(target, n)}
		}
	}
	dev.Coalition = coalition
	wins := 0
	for seed := int64(0); seed < 40; seed++ {
		res, err := ring.Run(ring.Spec{N: n, Protocol: alead.New(), Deviation: dev, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Failed && res.Output == target {
			wins++
		}
	}
	if wins > 8 { // 40 trials · 1/20 chance ≈ 2 expected wins
		t.Errorf("sub-half consecutive coalition forced target %d/40 times; Claim D.1 says ≈ 1/n", wins)
	}
}

func TestRushingSyncGapIsQuadratic(t *testing.T) {
	// Section 6's motivation: the cubic attack drives the send-count gap
	// |Sent_i − Sent_j| to Θ(k²), which is what PhaseAsyncLead's phase
	// validation eliminates.
	const n = 512
	k := MinCubicK(n)
	attack := Rushing{Place: PlaceStaggered, K: k}
	dev, err := attack.Plan(n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	gap := &maxGapTracer{n: n, coalition: dev.Coalition}
	res, err := ring.Run(ring.Spec{N: n, Protocol: alead.New(), Deviation: dev, Seed: 5, Tracer: gap})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("attack failed: %v", res.Reason)
	}
	if gap.max < k*(k-1)/4 {
		t.Errorf("max adversary send gap %d; expected Ω(k²) ≈ %d", gap.max, k*k)
	}
	if gap.max > 2*k*k {
		t.Errorf("max adversary send gap %d exceeds Lemma D.5's 2k² = %d on a non-failing run", gap.max, 2*k*k)
	}
}

// maxGapTracer tracks the maximal spread of send counts across coalition
// members over the whole execution.
type maxGapTracer struct {
	n         int
	coalition []sim.ProcID
	sent      map[sim.ProcID]int
	max       int
}

func (g *maxGapTracer) OnSend(from sim.ProcID, idx int, _ sim.ProcID, _ int64) {
	if g.sent == nil {
		g.sent = make(map[sim.ProcID]int, len(g.coalition))
		for _, p := range g.coalition {
			g.sent[p] = 0
		}
	}
	if _, ok := g.sent[from]; !ok {
		return
	}
	g.sent[from] = idx
	lo, hi := int(^uint(0)>>1), 0
	for _, s := range g.sent {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi-lo > g.max {
		g.max = hi - lo
	}
}

func (g *maxGapTracer) OnDeliver(sim.ProcID, int, sim.ProcID, int64) {}
func (g *maxGapTracer) OnTerminate(sim.ProcID, int64, bool)          {}

func TestWakeupRushingStillControls(t *testing.T) {
	// Appendix H's remark, executed: the cubic attack survives the
	// wake-up extension — the coalition plays the id exchange honestly
	// and rushes the election phase as before.
	for _, n := range []int{64, 216} {
		attack := WakeupRushing{Inner: Rushing{Place: PlaceStaggered}}
		proto := attack.Protocol(n)
		dist, err := ring.AttackTrials(n, proto, attack, 5, 21, 10)
		if err != nil {
			t.Fatal(err)
		}
		if rate := dist.WinRate(5); rate != 1.0 {
			t.Errorf("n=%d: forced rate %v, want 1.0 (fails: %v)", n, rate, dist.FailCounts)
		}
	}
}

func TestWakeupHonestBaselineUnbiased(t *testing.T) {
	// Control for the wake-up attack test: without the deviation the
	// combined protocol is uniform.
	attack := WakeupRushing{}
	dist, err := ring.Trials(ring.Spec{N: 64, Protocol: attack.Protocol(64), Seed: 3}, 320)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Failures() != 0 {
		t.Fatalf("%d honest trials failed", dist.Failures())
	}
	if dist.Counts[5] > 20 { // 320/64 = 5 expected
		t.Errorf("target won %d/320 honestly", dist.Counts[5])
	}
}
