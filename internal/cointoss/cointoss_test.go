package cointoss

import (
	"math"
	"testing"

	"repro/internal/attacks"
	"repro/internal/protocols/alead"
	"repro/internal/protocols/basiclead"
	"repro/internal/ring"
	"repro/internal/sim"
)

func TestHonestCoinIsFair(t *testing.T) {
	toss := ProtocolTosser(16, alead.New(), 5)
	s, err := Trials(toss, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Fails != 0 {
		t.Fatalf("%d honest tosses failed", s.Fails)
	}
	if b := s.Bias(); b > 0.04 {
		t.Errorf("honest coin bias %v over 2000 tosses", b)
	}
}

func TestAttackedElectionBiasesCoin(t *testing.T) {
	// A fully controlled election (Claim B.1) yields a fully controlled
	// coin, saturating Theorem 8.1's ½·n·ε bound.
	const n = 16
	attack := attacks.BasicSingle{}
	toss := func(instance int, arena *sim.Arena) (int, error) {
		seed := int64(sim.Mix64(77, uint64(instance)))
		dev, err := attack.Plan(n, 4, seed) // leader 4 → low bit 1
		if err != nil {
			return TossFail, err
		}
		return TossArena(ring.Spec{N: n, Protocol: basiclead.New(), Deviation: dev, Seed: seed}, arena)
	}
	s, err := Trials(toss, 200)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ones != 200 {
		t.Errorf("forced coin landed 1 only %d/200 times", s.Ones)
	}
	if got, want := s.Bias(), 0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("bias %v, want %v", got, want)
	}
	// ε = 1−1/n for the attacked election; the bound must dominate.
	if bound := CoinBiasBound(n, 1-1.0/n); bound < s.Bias() {
		t.Errorf("Theorem 8.1 bound %v below measured bias %v", bound, s.Bias())
	}
}

func TestElectViaCoinsUniform(t *testing.T) {
	// coin→FLE with honest coins: the composite election is uniform.
	const n = 8 // 3 coin instances per election
	mk := func(trial int) Tosser {
		return ProtocolTosser(n, alead.New(), int64(sim.Mix64(11, uint64(trial))))
	}
	dist, err := ElectTrials(n, mk, 1600)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Failures() != 0 {
		t.Fatalf("%d composite elections failed", dist.Failures())
	}
	want := 1600.0 / n
	for j := 1; j <= n; j++ {
		if got := float64(dist.Counts[j]); got < want*0.6 || got > want*1.4 {
			t.Errorf("leader %d elected %v times, want ≈ %v", j, got, want)
		}
	}
}

func TestElectRejectsNonPowerOfTwo(t *testing.T) {
	if _, _, err := Elect(6, func(int, *sim.Arena) (int, error) { return 0, nil }, nil); err == nil {
		t.Error("n=6 accepted")
	}
	if _, _, err := Elect(1, func(int, *sim.Arena) (int, error) { return 0, nil }, nil); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestElectPropagatesFailure(t *testing.T) {
	leader, ok, err := Elect(8, func(i int, _ *sim.Arena) (int, error) {
		if i == 1 {
			return TossFail, nil
		}
		return 1, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok || leader != 0 {
		t.Errorf("failed toss did not fail the election: leader=%d ok=%v", leader, ok)
	}
}

func TestElectIndexing(t *testing.T) {
	// Bits are MSB-first: tosses (1,0,1) over n=8 elect leader 6.
	bits := []int{1, 0, 1}
	leader, ok, err := Elect(8, func(i int, _ *sim.Arena) (int, error) { return bits[i], nil }, nil)
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if leader != 6 {
		t.Errorf("leader = %d, want 6", leader)
	}
}

func TestElectionBiasBound(t *testing.T) {
	got, err := ElectionBiasBound(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.125) > 1e-12 {
		t.Errorf("fair-coin bound %v, want 1/8", got)
	}
	got, err = ElectionBiasBound(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("fully biased bound %v, want 1", got)
	}
}
