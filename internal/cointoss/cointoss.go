// Package cointoss implements the Section 8 equivalence between Fair Leader
// Election and Fair Coin Toss:
//
//   - FLE → coin: elect a leader, output its low bit. An ε-unbiased
//     election over an even number of processors yields a (½n·ε)-unbiased
//     coin (Theorem 8.1, first direction).
//   - coin → FLE: run log₂(n) independent coin tosses and elect the
//     processor indexed by the concatenated bits. With ε-unbiased coins the
//     resulting election is (½+ε)^{log₂ n}-unbiased (second direction).
//
// The coin→FLE direction inherits the paper's explicit assumption that
// independent coin-toss instances can be run; the harness realizes
// independence by running instances with independently derived seeds.
package cointoss

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/ring"
	"repro/internal/sim"
)

// Coin outcomes.
const (
	// TossFail marks a failed instance (the underlying election FAILed).
	TossFail = -1
)

// Toss runs one coin-toss instance: elect with the given spec, output the
// leader's low bit (leaders 1..n map to 0,1,0,1,…). Returns TossFail if the
// election fails.
func Toss(spec ring.Spec) (int, error) {
	return TossArena(spec, nil)
}

// TossArena is Toss on a recycled per-worker simulation arena (nil falls
// back to fresh allocations with an identical result).
func TossArena(spec ring.Spec, arena *sim.Arena) (int, error) {
	res, err := ring.RunArena(spec, arena)
	if err != nil {
		return TossFail, err
	}
	if res.Failed {
		return TossFail, nil
	}
	return int((res.Output - 1) & 1), nil
}

// Tosser produces the b-th independent coin toss of a composite run, running
// the underlying election on the given arena (which may be nil). Trial
// batches call tossers (and the factories handed to ElectTrials) from
// multiple goroutines with per-worker arenas, so they must be safe for
// concurrent use — true of any tosser that, like ProtocolTosser, derives a
// per-instance seed and keeps all mutable state on the arena.
type Tosser func(instance int, arena *sim.Arena) (int, error)

// ProtocolTosser builds independent coin instances from a ring protocol:
// instance i runs on its own ring with an independently mixed seed.
func ProtocolTosser(n int, protocol ring.Protocol, baseSeed int64) Tosser {
	return func(instance int, arena *sim.Arena) (int, error) {
		seed := int64(sim.Mix64(uint64(baseSeed), uint64(instance)+0xc01f))
		return TossArena(ring.Spec{N: n, Protocol: protocol, Seed: seed}, arena)
	}
}

// Elect implements the coin→FLE reduction: log₂(n) independent tosses,
// concatenated MSB-first, elect leader index+1. n must be a power of two
// (the paper's simplifying assumption). A failed toss fails the election
// (leader 0, ok=false). The tosses run sequentially on the given arena
// (nil = fresh allocations per toss).
func Elect(n int, toss Tosser, arena *sim.Arena) (leader int64, ok bool, err error) {
	bits, err := log2(n)
	if err != nil {
		return 0, false, err
	}
	idx := int64(0)
	for b := 0; b < bits; b++ {
		bit, err := toss(b, arena)
		if err != nil {
			return 0, false, err
		}
		if bit == TossFail {
			return 0, false, nil
		}
		if bit != 0 && bit != 1 {
			return 0, false, fmt.Errorf("cointoss: toss %d returned %d", b, bit)
		}
		idx = idx<<1 | int64(bit)
	}
	return idx + 1, true, nil
}

func log2(n int) (int, error) {
	if n < 2 || n&(n-1) != 0 {
		return 0, fmt.Errorf("cointoss: n=%d is not a power of two ≥ 2", n)
	}
	bits := 0
	for v := n; v > 1; v >>= 1 {
		bits++
	}
	return bits, nil
}

// CoinStats aggregates coin-toss outcomes.
type CoinStats struct {
	Zeros, Ones, Fails int
}

// add records one toss outcome; anything other than 0 or 1 (in particular
// TossFail) counts as a failure.
func (s *CoinStats) add(bit int) {
	switch bit {
	case 0:
		s.Zeros++
	case 1:
		s.Ones++
	default:
		s.Fails++
	}
}

// merge folds another shard into s.
func (s *CoinStats) merge(o *CoinStats) {
	s.Zeros += o.Zeros
	s.Ones += o.Ones
	s.Fails += o.Fails
}

// Options tunes a parallel batch of coin-toss or composite-election trials.
// The zero value uses every CPU.
type Options struct {
	// Workers is the engine worker count; 0 picks runtime.NumCPU().
	Workers int
	// Chunk is the engine chunk size; 0 picks engine.DefaultChunk.
	Chunk int
}

// coinSink accumulates toss bits (smuggled through sim.Result.Output) into
// per-worker CoinStats shards.
var coinSink = engine.Sink[*CoinStats]{
	New:   func() *CoinStats { return &CoinStats{} },
	Add:   func(s *CoinStats, res sim.Result) { s.add(int(res.Output)) },
	Merge: func(dst, src *CoinStats) { dst.merge(src) },
}

// Trials runs the tosser repeatedly (fresh instance index per trial per
// call) and aggregates. Tosses run in parallel on every CPU — the tosser
// must be safe for concurrent use (ProtocolTosser and every tosser built
// from ring.Run are) — with results identical to a sequential loop.
func Trials(toss Tosser, trials int) (CoinStats, error) {
	return TrialsOpts(context.Background(), toss, trials, Options{})
}

// TrialsOpts is Trials with a context and engine options. Tosses run
// chunked (engine.RunBatch): each worker claims whole trial ranges, so the
// tosser's per-instance work amortizes its arena's recycled state.
func TrialsOpts(ctx context.Context, toss Tosser, trials int, opts Options) (CoinStats, error) {
	job := engine.ChunkFunc(func(start, end int, arena *sim.Arena, add func(sim.Result)) (int, error) {
		for t := start; t < end; t++ {
			bit, err := toss(t, arena)
			if err != nil {
				return t, err
			}
			add(sim.Result{Output: int64(bit)})
		}
		return 0, nil
	})
	s, err := engine.RunBatch(ctx, trials, job, coinSink,
		engine.Options[*CoinStats]{Workers: opts.Workers, Chunk: opts.Chunk})
	if err != nil || s == nil {
		return CoinStats{}, err
	}
	return *s, nil
}

// Bias returns max(Pr[0], Pr[1]) − ½, the ε of the unbias definition.
func (s CoinStats) Bias() float64 {
	total := s.Zeros + s.Ones + s.Fails
	if total == 0 {
		return 0
	}
	p0 := float64(s.Zeros) / float64(total)
	p1 := float64(s.Ones) / float64(total)
	m := p0
	if p1 > m {
		m = p1
	}
	return m - 0.5
}

// CoinBiasBound is Theorem 8.1's first direction: an ε-unbiased election
// over n processors yields a coin with bias at most ½·n·ε.
func CoinBiasBound(n int, electionEpsilon float64) float64 {
	return 0.5 * float64(n) * electionEpsilon
}

// ElectionBiasBound is Theorem 8.1's second direction: log₂(n) independent
// ε-unbiased coins yield an election where no leader's probability exceeds
// (½+ε)^{log₂ n}.
func ElectionBiasBound(n int, coinEpsilon float64) (float64, error) {
	bits, err := log2(n)
	if err != nil {
		return 0, err
	}
	p := 1.0
	for i := 0; i < bits; i++ {
		p *= 0.5 + coinEpsilon
	}
	return p, nil
}

// ElectTrials runs the composite election repeatedly with per-trial derived
// tossers and aggregates a leader distribution. Elections run in parallel
// on every CPU; use ElectTrialsOpts to tune workers or cancellation.
func ElectTrials(n int, mkTosser func(trial int) Tosser, trials int) (*ring.Distribution, error) {
	return ElectTrialsOpts(context.Background(), n, mkTosser, trials, Options{})
}

// ElectTrialsOpts is ElectTrials with a context and engine options.
func ElectTrialsOpts(ctx context.Context, n int, mkTosser func(trial int) Tosser, trials int, opts Options) (*ring.Distribution, error) {
	if mkTosser == nil {
		return nil, errors.New("cointoss: nil tosser factory")
	}
	job := engine.ChunkFunc(func(start, end int, arena *sim.Arena, add func(sim.Result)) (int, error) {
		for t := start; t < end; t++ {
			leader, ok, err := Elect(n, mkTosser(t), arena)
			if err != nil {
				return t, err
			}
			if !ok {
				add(sim.Result{Failed: true, Reason: sim.FailAbort})
				continue
			}
			add(sim.Result{Output: leader})
		}
		return 0, nil
	})
	sink := engine.Sink[*ring.Distribution]{
		New:   func() *ring.Distribution { return ring.NewDistribution(n) },
		Add:   func(d *ring.Distribution, res sim.Result) { d.Add(res) },
		Merge: func(dst, src *ring.Distribution) { _ = dst.Merge(src) },
	}
	return engine.RunBatch(ctx, trials, job, sink,
		engine.Options[*ring.Distribution]{Workers: opts.Workers, Chunk: opts.Chunk})
}
