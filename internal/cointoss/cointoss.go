// Package cointoss implements the Section 8 equivalence between Fair Leader
// Election and Fair Coin Toss:
//
//   - FLE → coin: elect a leader, output its low bit. An ε-unbiased
//     election over an even number of processors yields a (½n·ε)-unbiased
//     coin (Theorem 8.1, first direction).
//   - coin → FLE: run log₂(n) independent coin tosses and elect the
//     processor indexed by the concatenated bits. With ε-unbiased coins the
//     resulting election is (½+ε)^{log₂ n}-unbiased (second direction).
//
// The coin→FLE direction inherits the paper's explicit assumption that
// independent coin-toss instances can be run; the harness realizes
// independence by running instances with independently derived seeds.
package cointoss

import (
	"errors"
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
)

// Coin outcomes.
const (
	// TossFail marks a failed instance (the underlying election FAILed).
	TossFail = -1
)

// Toss runs one coin-toss instance: elect with the given spec, output the
// leader's low bit (leaders 1..n map to 0,1,0,1,…). Returns TossFail if the
// election fails.
func Toss(spec ring.Spec) (int, error) {
	res, err := ring.Run(spec)
	if err != nil {
		return TossFail, err
	}
	if res.Failed {
		return TossFail, nil
	}
	return int((res.Output - 1) & 1), nil
}

// Tosser produces the b-th independent coin toss of a composite run.
type Tosser func(instance int) (int, error)

// ProtocolTosser builds independent coin instances from a ring protocol:
// instance i runs on its own ring with an independently mixed seed.
func ProtocolTosser(n int, protocol ring.Protocol, baseSeed int64) Tosser {
	return func(instance int) (int, error) {
		seed := int64(sim.Mix64(uint64(baseSeed), uint64(instance)+0xc01f))
		return Toss(ring.Spec{N: n, Protocol: protocol, Seed: seed})
	}
}

// Elect implements the coin→FLE reduction: log₂(n) independent tosses,
// concatenated MSB-first, elect leader index+1. n must be a power of two
// (the paper's simplifying assumption). A failed toss fails the election
// (leader 0, ok=false).
func Elect(n int, toss Tosser) (leader int64, ok bool, err error) {
	bits, err := log2(n)
	if err != nil {
		return 0, false, err
	}
	idx := int64(0)
	for b := 0; b < bits; b++ {
		bit, err := toss(b)
		if err != nil {
			return 0, false, err
		}
		if bit == TossFail {
			return 0, false, nil
		}
		if bit != 0 && bit != 1 {
			return 0, false, fmt.Errorf("cointoss: toss %d returned %d", b, bit)
		}
		idx = idx<<1 | int64(bit)
	}
	return idx + 1, true, nil
}

func log2(n int) (int, error) {
	if n < 2 || n&(n-1) != 0 {
		return 0, fmt.Errorf("cointoss: n=%d is not a power of two ≥ 2", n)
	}
	bits := 0
	for v := n; v > 1; v >>= 1 {
		bits++
	}
	return bits, nil
}

// CoinStats aggregates coin-toss outcomes.
type CoinStats struct {
	Zeros, Ones, Fails int
}

// Trials runs the tosser repeatedly (fresh instance index per trial per
// call) and aggregates.
func Trials(toss Tosser, trials int) (CoinStats, error) {
	var s CoinStats
	for t := 0; t < trials; t++ {
		bit, err := toss(t)
		if err != nil {
			return s, err
		}
		switch bit {
		case 0:
			s.Zeros++
		case 1:
			s.Ones++
		default:
			s.Fails++
		}
	}
	return s, nil
}

// Bias returns max(Pr[0], Pr[1]) − ½, the ε of the unbias definition.
func (s CoinStats) Bias() float64 {
	total := s.Zeros + s.Ones + s.Fails
	if total == 0 {
		return 0
	}
	p0 := float64(s.Zeros) / float64(total)
	p1 := float64(s.Ones) / float64(total)
	m := p0
	if p1 > m {
		m = p1
	}
	return m - 0.5
}

// CoinBiasBound is Theorem 8.1's first direction: an ε-unbiased election
// over n processors yields a coin with bias at most ½·n·ε.
func CoinBiasBound(n int, electionEpsilon float64) float64 {
	return 0.5 * float64(n) * electionEpsilon
}

// ElectionBiasBound is Theorem 8.1's second direction: log₂(n) independent
// ε-unbiased coins yield an election where no leader's probability exceeds
// (½+ε)^{log₂ n}.
func ElectionBiasBound(n int, coinEpsilon float64) (float64, error) {
	bits, err := log2(n)
	if err != nil {
		return 0, err
	}
	p := 1.0
	for i := 0; i < bits; i++ {
		p *= 0.5 + coinEpsilon
	}
	return p, nil
}

// ElectTrials runs the composite election repeatedly with per-trial derived
// tossers and aggregates a leader distribution.
func ElectTrials(n int, mkTosser func(trial int) Tosser, trials int) (*ring.Distribution, error) {
	if mkTosser == nil {
		return nil, errors.New("cointoss: nil tosser factory")
	}
	dist := ring.NewDistribution(n)
	for t := 0; t < trials; t++ {
		leader, ok, err := Elect(n, mkTosser(t))
		if err != nil {
			return nil, err
		}
		if !ok {
			dist.Add(sim.Result{Failed: true, Reason: sim.FailAbort})
			continue
		}
		dist.Add(sim.Result{Output: leader})
	}
	return dist, nil
}
