// Package classic implements the classical, non-fault-tolerant leader
// election algorithms the paper situates itself against (Section 1.1):
// Chang–Roberts [12] and Peterson's O(n log n) unidirectional algorithm
// [24]. Both elect the maximal id, so they are neither fair nor resilient —
// a single rational agent simply lies about its id — but they calibrate the
// price of fairness: A-LEADuni and PhaseAsyncLead pay Θ(n²) messages where
// the classical algorithms pay Θ(n log n).
//
// Outputs: every processor terminates with the winning id value, so the
// usual outcome semantics apply (all-equal valid outputs). Ids are either
// the ring positions in ascending/descending arrangement (best/worst cases
// for Chang–Roberts) or uniform 62-bit values drawn at wake-up (the random
// arrangement of the average-case analysis; collisions are negligible and
// would surface as FAIL).
package classic

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
)

// Arrangement selects how ids relate to ring positions.
type Arrangement int

// Id arrangements.
const (
	// ArrangeRandom draws uniform ids: Chang–Roberts' Θ(n log n)
	// average case.
	ArrangeRandom Arrangement = iota + 1
	// ArrangeAscending sets id = position: Chang–Roberts' best case.
	ArrangeAscending
	// ArrangeDescending sets id = n−position+1: Chang–Roberts' Θ(n²)
	// worst case.
	ArrangeDescending
)

func assignID(ctx *sim.Context, arrange Arrangement, n int) int64 {
	switch arrange {
	case ArrangeAscending:
		return int64(ctx.Self())
	case ArrangeDescending:
		return int64(n) - int64(ctx.Self()) + 1
	default:
		return ctx.Rand().Int63() >> 1 & (1<<62 - 1)
	}
}

// ChangRoberts is the Chang–Roberts extrema-finding protocol.
type ChangRoberts struct {
	// Arrange defaults to ArrangeRandom.
	Arrange Arrangement
	// OutputPosition makes the leader announce its ring position instead
	// of its id, so outputs land in [1..n] and the win distribution is
	// comparable with the fair protocols'. With random ids the winning
	// position is uniform (the maximal id lands anywhere), which makes
	// this variant a member of the uniform-election scenario family.
	OutputPosition bool
}

var _ ring.Protocol = ChangRoberts{}

// Name implements ring.Protocol.
func (ChangRoberts) Name() string { return "Chang-Roberts" }

// BatchSafe marks the protocol's strategies as fully re-initialized by Init,
// so one strategy vector can serve every trial of an engine chunk.
func (ChangRoberts) BatchSafe() {}

// Strategies implements ring.Protocol.
func (c ChangRoberts) Strategies(n int) ([]sim.Strategy, error) {
	if n < 2 {
		return nil, fmt.Errorf("classic: need n ≥ 2, got %d", n)
	}
	arrange := c.Arrange
	if arrange == 0 {
		arrange = ArrangeRandom
	}
	out := make([]sim.Strategy, n)
	for i := range out {
		out[i] = &crProcessor{n: n, arrange: arrange, outputPos: c.OutputPosition}
	}
	return out, nil
}

// crProcessor: forward larger candidate ids, swallow smaller ones; the
// processor whose own id returns is the leader and starts the announcement
// wave (encoded as the negated id).
type crProcessor struct {
	n         int
	arrange   Arrangement
	outputPos bool
	id        int64
	announced int64 // the value we announced as leader; 0 if not leading
}

var _ sim.Strategy = (*crProcessor)(nil)

func (p *crProcessor) Init(ctx *sim.Context) {
	p.announced = 0                          // full state reset: objects are reused across batched trials
	p.id = assignID(ctx, p.arrange, p.n) + 1 // keep ids strictly positive
	ctx.Send(p.id)
}

func (p *crProcessor) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	switch {
	case value < 0: // announcement carrying the winner id (or position)
		winner := -value
		if p.announced != 0 && winner == p.announced {
			ctx.Terminate(winner) // own announcement returned
			return
		}
		ctx.Send(value)
		ctx.Terminate(winner)
	case value > p.id:
		ctx.Send(value)
	case value == p.id:
		// Our id survived the full circle: we lead.
		p.announced = p.id
		if p.outputPos {
			p.announced = int64(ctx.Self())
		}
		ctx.Send(-p.announced)
	default:
		// Smaller candidate: swallowed.
	}
}

// Peterson is Peterson's O(n log n) unidirectional algorithm: actives
// compare their value with the two nearest upstream actives' values and
// survive exactly when the nearer one is a local maximum; relays forward.
type Peterson struct {
	// Arrange defaults to ArrangeRandom.
	Arrange Arrangement
	// OutputPosition makes the winning processor announce its ring
	// position instead of the maximal value, so outputs land in [1..n].
	// With random ids the winning position is uniform by rotational
	// symmetry (the winner is the active holding the maximal value when
	// it completes the circle).
	OutputPosition bool
}

var _ ring.Protocol = Peterson{}

// Name implements ring.Protocol.
func (Peterson) Name() string { return "Peterson" }

// BatchSafe marks the protocol's strategies as fully re-initialized by Init,
// so one strategy vector can serve every trial of an engine chunk.
func (Peterson) BatchSafe() {}

// Strategies implements ring.Protocol.
func (p Peterson) Strategies(n int) ([]sim.Strategy, error) {
	if n < 2 {
		return nil, fmt.Errorf("classic: need n ≥ 2, got %d", n)
	}
	arrange := p.Arrange
	if arrange == 0 {
		arrange = ArrangeRandom
	}
	out := make([]sim.Strategy, n)
	for i := range out {
		out[i] = &petersonProcessor{n: n, arrange: arrange, outputPos: p.OutputPosition}
	}
	return out, nil
}

type petersonPhase int

const (
	wantFirst petersonPhase = iota + 1
	wantSecond
)

type petersonProcessor struct {
	n         int
	arrange   Arrangement
	outputPos bool
	relay     bool
	done      bool
	tid       int64
	first     int64
	phase     petersonPhase
}

var _ sim.Strategy = (*petersonProcessor)(nil)

func (p *petersonProcessor) Init(ctx *sim.Context) {
	// Full state reset: strategy objects are reused across batched trials.
	p.relay, p.done, p.first = false, false, 0
	p.tid = assignID(ctx, p.arrange, p.n) + 1
	p.phase = wantFirst
	ctx.Send(p.tid)
}

func (p *petersonProcessor) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	if value < 0 { // announcement wave
		winner := -value
		if p.done {
			ctx.Terminate(winner) // leader's announcement returned
			return
		}
		ctx.Send(value)
		ctx.Terminate(winner)
		return
	}
	if p.relay {
		ctx.Send(value)
		return
	}
	switch p.phase {
	case wantFirst:
		if value == p.tid {
			// Our value circled the ring past every other active:
			// it is the maximum; declare leadership.
			p.done = true
			announce := p.tid
			if p.outputPos {
				announce = int64(ctx.Self())
			}
			ctx.Send(-announce)
			return
		}
		p.first = value
		p.phase = wantSecond
		ctx.Send(value)
	case wantSecond:
		if p.first > p.tid && p.first > value {
			p.tid = p.first // survive with the local maximum
			p.phase = wantFirst
			ctx.Send(p.tid)
		} else {
			p.relay = true
		}
	}
}
