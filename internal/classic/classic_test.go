package classic

import (
	"math"
	"testing"

	"repro/internal/ring"
	"repro/internal/sim"
)

func runOnce(t *testing.T, proto ring.Protocol, n int, seed int64) sim.Result {
	t.Helper()
	res, err := ring.Run(ring.Spec{N: n, Protocol: proto, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChangRobertsElectsMaxID(t *testing.T) {
	for _, arrange := range []Arrangement{ArrangeRandom, ArrangeAscending, ArrangeDescending} {
		for _, n := range []int{2, 5, 16, 64} {
			for seed := int64(0); seed < 3; seed++ {
				res := runOnce(t, ChangRoberts{Arrange: arrange}, n, seed)
				if res.Failed {
					t.Fatalf("arrange=%d n=%d: failed: %v", arrange, n, res.Reason)
				}
				if arrange != ArrangeRandom && res.Output != int64(n)+1 {
					t.Fatalf("arrange=%d n=%d: winner %d, want max id %d",
						arrange, n, res.Output, n+1)
				}
			}
		}
	}
}

func TestPetersonElectsMaxID(t *testing.T) {
	for _, arrange := range []Arrangement{ArrangeRandom, ArrangeAscending, ArrangeDescending} {
		for _, n := range []int{2, 5, 16, 64, 127} {
			for seed := int64(0); seed < 3; seed++ {
				res := runOnce(t, Peterson{Arrange: arrange}, n, seed)
				if res.Failed {
					t.Fatalf("arrange=%d n=%d seed=%d: failed: %v", arrange, n, seed, res.Reason)
				}
				if arrange != ArrangeRandom && res.Output != int64(n)+1 {
					t.Fatalf("arrange=%d n=%d: winner %d, want max id %d",
						arrange, n, res.Output, n+1)
				}
			}
		}
	}
}

func TestAgreementOnRandomIDs(t *testing.T) {
	// With random ids both algorithms agree with each other on the same
	// seed (both elect the maximum).
	for seed := int64(0); seed < 5; seed++ {
		cr := runOnce(t, ChangRoberts{}, 32, seed)
		pt := runOnce(t, Peterson{}, 32, seed)
		if cr.Failed || pt.Failed {
			t.Fatalf("seed=%d: cr failed=%v pt failed=%v", seed, cr.Failed, pt.Failed)
		}
		if cr.Output != pt.Output {
			t.Fatalf("seed=%d: Chang-Roberts winner %d, Peterson winner %d",
				seed, cr.Output, pt.Output)
		}
	}
}

func TestChangRobertsComplexity(t *testing.T) {
	const n = 256
	// Worst case (descending ids): Θ(n²)/2 election messages.
	worst := runOnce(t, ChangRoberts{Arrange: ArrangeDescending}, n, 1)
	if worst.Delivered < n*n/4 {
		t.Errorf("descending arrangement delivered %d messages; want Θ(n²) ≈ %d", worst.Delivered, n*n/2)
	}
	// Best case (ascending): Θ(n).
	best := runOnce(t, ChangRoberts{Arrange: ArrangeAscending}, n, 1)
	if best.Delivered > 4*n {
		t.Errorf("ascending arrangement delivered %d messages; want Θ(n)", best.Delivered)
	}
	// Average case: Θ(n log n); allow generous constants.
	var total float64
	const reps = 10
	for seed := int64(0); seed < reps; seed++ {
		res := runOnce(t, ChangRoberts{}, n, seed)
		total += float64(res.Delivered)
	}
	avg := total / reps
	nlogn := float64(n) * math.Log(float64(n))
	if avg > 3*nlogn || avg < float64(n) {
		t.Errorf("average %v messages; want ≈ n·H_n ≈ %v", avg, nlogn)
	}
}

func TestPetersonComplexityWorstCase(t *testing.T) {
	// Peterson is O(n log n) for every arrangement.
	const n = 256
	bound := 6 * float64(n) * math.Log2(float64(n))
	for _, arrange := range []Arrangement{ArrangeRandom, ArrangeAscending, ArrangeDescending} {
		res := runOnce(t, Peterson{Arrange: arrange}, n, 2)
		if float64(res.Delivered) > bound {
			t.Errorf("arrange=%d: %d messages exceed the O(n log n) bound %v",
				arrange, res.Delivered, bound)
		}
	}
}

func TestFairProtocolsPayQuadratic(t *testing.T) {
	// The calibration point: fairness costs Θ(n²) messages; the classical
	// algorithms stay well below for moderate n.
	const n = 128
	pt := runOnce(t, Peterson{}, n, 3)
	if pt.Delivered >= n*n {
		t.Errorf("Peterson used %d ≥ n² messages", pt.Delivered)
	}
}

func TestOutputPositionLandsInRange(t *testing.T) {
	protos := map[string]ring.Protocol{
		"chang-roberts": ChangRoberts{OutputPosition: true},
		"peterson":      Peterson{OutputPosition: true},
	}
	for name, proto := range protos {
		for _, n := range []int{2, 5, 16, 64} {
			for seed := int64(0); seed < 5; seed++ {
				res, err := ring.Run(ring.Spec{N: n, Protocol: proto, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if res.Failed {
					t.Fatalf("%s n=%d seed=%d failed: %v", name, n, seed, res.Reason)
				}
				if res.Output < 1 || res.Output > int64(n) {
					t.Fatalf("%s n=%d seed=%d: position output %d outside [1,%d]",
						name, n, seed, res.Output, n)
				}
			}
		}
	}
}

func TestOutputPositionAscendingIsDeterministic(t *testing.T) {
	// With id = position, Chang–Roberts' maximal id sits at position n: the
	// position output must name it exactly.
	for _, n := range []int{3, 8, 33} {
		res := runOnce(t, ChangRoberts{Arrange: ArrangeAscending, OutputPosition: true}, n, 1)
		if res.Failed || res.Output != int64(n) {
			t.Fatalf("n=%d: got output %d (failed=%v), want position %d", n, res.Output, res.Failed, n)
		}
	}
}

func TestOutputPositionMatchesIDWinner(t *testing.T) {
	// In Chang–Roberts the declaring processor is the owner of the
	// maximal id, so the position variant must crown exactly the position
	// whose (deterministically derived) random id wins the id variant.
	// (Peterson's declarer is the active *detecting* the maximal value,
	// not its original owner, so no such correspondence is claimed there —
	// its position output is uniform by rotational symmetry instead.)
	for _, n := range []int{4, 9, 32} {
		for seed := int64(0); seed < 3; seed++ {
			idRes := runOnce(t, ChangRoberts{}, n, seed)
			posRes := runOnce(t, ChangRoberts{OutputPosition: true}, n, seed)
			if idRes.Failed || posRes.Failed {
				t.Fatalf("n=%d seed=%d: unexpected failure", n, seed)
			}
			winner := int(posRes.Output)
			wantID := sim.DeriveRand(seed, sim.ProcID(winner)).Int63()>>1&(1<<62-1) + 1
			if idRes.Output != wantID {
				t.Fatalf("n=%d seed=%d: position winner %d holds id %d, but id variant elected %d",
					n, seed, winner, wantID, idRes.Output)
			}
		}
	}
}
