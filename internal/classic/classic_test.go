package classic

import (
	"math"
	"testing"

	"repro/internal/ring"
	"repro/internal/sim"
)

func runOnce(t *testing.T, proto ring.Protocol, n int, seed int64) sim.Result {
	t.Helper()
	res, err := ring.Run(ring.Spec{N: n, Protocol: proto, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChangRobertsElectsMaxID(t *testing.T) {
	for _, arrange := range []Arrangement{ArrangeRandom, ArrangeAscending, ArrangeDescending} {
		for _, n := range []int{2, 5, 16, 64} {
			for seed := int64(0); seed < 3; seed++ {
				res := runOnce(t, ChangRoberts{Arrange: arrange}, n, seed)
				if res.Failed {
					t.Fatalf("arrange=%d n=%d: failed: %v", arrange, n, res.Reason)
				}
				if arrange != ArrangeRandom && res.Output != int64(n)+1 {
					t.Fatalf("arrange=%d n=%d: winner %d, want max id %d",
						arrange, n, res.Output, n+1)
				}
			}
		}
	}
}

func TestPetersonElectsMaxID(t *testing.T) {
	for _, arrange := range []Arrangement{ArrangeRandom, ArrangeAscending, ArrangeDescending} {
		for _, n := range []int{2, 5, 16, 64, 127} {
			for seed := int64(0); seed < 3; seed++ {
				res := runOnce(t, Peterson{Arrange: arrange}, n, seed)
				if res.Failed {
					t.Fatalf("arrange=%d n=%d seed=%d: failed: %v", arrange, n, seed, res.Reason)
				}
				if arrange != ArrangeRandom && res.Output != int64(n)+1 {
					t.Fatalf("arrange=%d n=%d: winner %d, want max id %d",
						arrange, n, res.Output, n+1)
				}
			}
		}
	}
}

func TestAgreementOnRandomIDs(t *testing.T) {
	// With random ids both algorithms agree with each other on the same
	// seed (both elect the maximum).
	for seed := int64(0); seed < 5; seed++ {
		cr := runOnce(t, ChangRoberts{}, 32, seed)
		pt := runOnce(t, Peterson{}, 32, seed)
		if cr.Failed || pt.Failed {
			t.Fatalf("seed=%d: cr failed=%v pt failed=%v", seed, cr.Failed, pt.Failed)
		}
		if cr.Output != pt.Output {
			t.Fatalf("seed=%d: Chang-Roberts winner %d, Peterson winner %d",
				seed, cr.Output, pt.Output)
		}
	}
}

func TestChangRobertsComplexity(t *testing.T) {
	const n = 256
	// Worst case (descending ids): Θ(n²)/2 election messages.
	worst := runOnce(t, ChangRoberts{Arrange: ArrangeDescending}, n, 1)
	if worst.Delivered < n*n/4 {
		t.Errorf("descending arrangement delivered %d messages; want Θ(n²) ≈ %d", worst.Delivered, n*n/2)
	}
	// Best case (ascending): Θ(n).
	best := runOnce(t, ChangRoberts{Arrange: ArrangeAscending}, n, 1)
	if best.Delivered > 4*n {
		t.Errorf("ascending arrangement delivered %d messages; want Θ(n)", best.Delivered)
	}
	// Average case: Θ(n log n); allow generous constants.
	var total float64
	const reps = 10
	for seed := int64(0); seed < reps; seed++ {
		res := runOnce(t, ChangRoberts{}, n, seed)
		total += float64(res.Delivered)
	}
	avg := total / reps
	nlogn := float64(n) * math.Log(float64(n))
	if avg > 3*nlogn || avg < float64(n) {
		t.Errorf("average %v messages; want ≈ n·H_n ≈ %v", avg, nlogn)
	}
}

func TestPetersonComplexityWorstCase(t *testing.T) {
	// Peterson is O(n log n) for every arrangement.
	const n = 256
	bound := 6 * float64(n) * math.Log2(float64(n))
	for _, arrange := range []Arrangement{ArrangeRandom, ArrangeAscending, ArrangeDescending} {
		res := runOnce(t, Peterson{Arrange: arrange}, n, 2)
		if float64(res.Delivered) > bound {
			t.Errorf("arrange=%d: %d messages exceed the O(n log n) bound %v",
				arrange, res.Delivered, bound)
		}
	}
}

func TestFairProtocolsPayQuadratic(t *testing.T) {
	// The calibration point: fairness costs Θ(n²) messages; the classical
	// algorithms stay well below for moderate n.
	const n = 128
	pt := runOnce(t, Peterson{}, n, 3)
	if pt.Delivered >= n*n {
		t.Errorf("Peterson used %d ≥ n² messages", pt.Delivered)
	}
}
