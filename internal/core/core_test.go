package core

import (
	"math"
	"testing"

	"repro/internal/protocols/alead"
	"repro/internal/ring"
	"repro/internal/sim"
)

func mkDist(n int, counts map[int64]int, fails int) *ring.Distribution {
	d := ring.NewDistribution(n)
	for j, c := range counts {
		for i := 0; i < c; i++ {
			d.Add(sim.Result{Output: j})
		}
	}
	for i := 0; i < fails; i++ {
		d.Add(sim.Result{Failed: true, Reason: sim.FailAbort})
	}
	return d
}

func TestUtilityValidate(t *testing.T) {
	if err := NewSelfishUtility(4, 2).Validate(); err != nil {
		t.Errorf("selfish utility invalid: %v", err)
	}
	bad := Utility{0.5, 0, 0}
	if err := bad.Validate(); err == nil {
		t.Error("u(FAIL) != 0 accepted: solution preference violated")
	}
	bad2 := Utility{0, 2, 0}
	if err := bad2.Validate(); err == nil {
		t.Error("u > 1 accepted")
	}
}

func TestExpectedUtility(t *testing.T) {
	dist := mkDist(4, map[int64]int{1: 10, 2: 30, 3: 10, 4: 10}, 40)
	u := NewSelfishUtility(4, 2)
	got, err := ExpectedUtility(dist, u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3) > 1e-12 {
		t.Errorf("E[u] = %v, want 0.3 (failures contribute zero)", got)
	}
}

func TestBiasReport(t *testing.T) {
	dist := mkDist(4, map[int64]int{1: 25, 2: 25, 3: 25, 4: 25}, 0)
	rep := Bias(dist)
	if math.Abs(rep.Epsilon) > 1e-12 {
		t.Errorf("uniform ε = %v, want 0", rep.Epsilon)
	}
	skew := mkDist(4, map[int64]int{1: 100}, 0)
	rep = Bias(skew)
	if rep.Leader != 1 || math.Abs(rep.Epsilon-0.75) > 1e-12 {
		t.Errorf("forced ε = %v (leader %d), want 0.75 on leader 1", rep.Epsilon, rep.Leader)
	}
	if rep.EpsilonHi < rep.Epsilon-1e-9 {
		t.Error("confidence bound below point estimate")
	}
}

func TestLemma24Translations(t *testing.T) {
	// ε-k-unbiased ⇒ (nε)-k-resilient; ε-k-resilient ⇒ ε-k-unbiased.
	const n, eps = 32, 0.01
	if got := ResilienceFromUnbias(n, eps); got != float64(n)*eps {
		t.Errorf("resilience bound %v", got)
	}
	if got := UnbiasFromResilience(eps); got != eps {
		t.Errorf("unbias bound %v", got)
	}
}

func TestUniformityOnHonestProtocol(t *testing.T) {
	// End-to-end: honest A-LEADuni passes the chi-square uniformity test.
	dist, err := ring.Trials(ring.Spec{N: 16, Protocol: alead.New(), Seed: 5}, 3200)
	if err != nil {
		t.Fatal(err)
	}
	verdict, err := Uniformity(dist, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Uniform {
		t.Errorf("honest A-LEADuni rejected as non-uniform: χ²=%v p=%v",
			verdict.Statistic, verdict.PValue)
	}
}

func TestSolutionPreferenceMakesFailWorst(t *testing.T) {
	// The defining property: for any rational utility, a distribution
	// that fails more cannot be better (holding valid-outcome counts).
	base := mkDist(4, map[int64]int{2: 30}, 0)
	worse := mkDist(4, map[int64]int{2: 30}, 30)
	u := NewSelfishUtility(4, 2)
	eBase, err := ExpectedUtility(base, u)
	if err != nil {
		t.Fatal(err)
	}
	eWorse, err := ExpectedUtility(worse, u)
	if err != nil {
		t.Fatal(err)
	}
	if eWorse >= eBase {
		t.Errorf("failures did not hurt: %v ≥ %v", eWorse, eBase)
	}
}
