// Package core implements the game-theoretic layer of the paper's model
// (Section 2): rational utilities, expected utility under an outcome
// distribution, and the empirical counterparts of ε-k-unbias and
// ε-k-resilience, including the Lemma 2.4 translation between them.
//
// The simulation packages measure outcome distributions; this package turns
// them into the quantities the theorems speak about. A protocol is
// ε-k-unbiased if no coalition of size k can push any single outcome's
// probability above 1/n + ε; by Lemma 2.4 that bounds every rational
// coalition's utility gain by n·ε, and conversely ε-resilience implies
// ε-unbias.
package core

import (
	"errors"
	"fmt"

	"repro/internal/ring"
	"repro/internal/stats"
)

// Fail is the outcome index used for FAIL in utility functions.
const Fail = 0

// Utility is a rational utility (Definition 2.1): a function from outcomes
// [1..n] ∪ {Fail} to [0,1] with u(Fail) = 0.
type Utility []float64

// NewSelfishUtility returns the utility of a processor that only values its
// own election: u(j) = 1 iff j = self.
func NewSelfishUtility(n int, self int64) Utility {
	u := make(Utility, n+1)
	if self >= 1 && self <= int64(n) {
		u[self] = 1
	}
	return u
}

// Validate checks the Definition 2.1 constraints.
func (u Utility) Validate() error {
	if len(u) < 2 {
		return errors.New("core: utility needs at least one valid outcome")
	}
	if u[Fail] != 0 {
		return fmt.Errorf("core: u(FAIL) = %v, must be 0 (solution preference)", u[Fail])
	}
	for j, v := range u {
		if v < 0 || v > 1 {
			return fmt.Errorf("core: u(%d) = %v outside [0,1]", j, v)
		}
	}
	return nil
}

// ExpectedUtility computes E[u] under the empirical outcome distribution:
// failures contribute u(Fail) = 0.
func ExpectedUtility(dist *ring.Distribution, u Utility) (float64, error) {
	if err := u.Validate(); err != nil {
		return 0, err
	}
	if len(u) != dist.N+1 {
		return 0, fmt.Errorf("core: utility over %d outcomes, distribution over %d", len(u)-1, dist.N)
	}
	if dist.Trials == 0 {
		return 0, errors.New("core: empty distribution")
	}
	var total float64
	for j := 1; j <= dist.N; j++ {
		total += float64(dist.Counts[j]) * u[j]
	}
	return total / float64(dist.Trials), nil
}

// BiasReport is the empirical ε of Definition 2.3's unbias condition, with a
// confidence interval.
type BiasReport struct {
	// N is the ring size; the honest win probability is 1/N.
	N int
	// Trials is the sample size.
	Trials int
	// Leader is the most-elected leader.
	Leader int64
	// Epsilon is the point estimate max_j Pr[outcome=j] − 1/n (≥ −1/n).
	Epsilon float64
	// EpsilonHi is a 97.5% upper confidence bound on ε via Wilson.
	EpsilonHi float64
	// FailureRate is the fraction of FAIL outcomes.
	FailureRate float64
	// TotalVariation is the TV distance of the valid-outcome histogram
	// from uniform (failures excluded).
	TotalVariation float64
}

// String renders the report compactly.
func (r BiasReport) String() string {
	return fmt.Sprintf("n=%d trials=%d maxwin=%d ε=%.4f (≤%.4f) fail=%.3f tv=%.3f",
		r.N, r.Trials, r.Leader, r.Epsilon, r.EpsilonHi, r.FailureRate, r.TotalVariation)
}

// Bias summarizes an outcome distribution as a Definition 2.3 bias report.
func Bias(dist *ring.Distribution) BiasReport {
	leader, rate := dist.MaxWin()
	_, hi := stats.WilsonInterval(dist.Counts[leader], dist.Trials, 1.96)
	return BiasReport{
		N:              dist.N,
		Trials:         dist.Trials,
		Leader:         leader,
		Epsilon:        rate - 1/float64(dist.N),
		EpsilonHi:      hi - 1/float64(dist.N),
		FailureRate:    dist.FailureRate(),
		TotalVariation: stats.TotalVariationFromUniform(dist.Counts[1:]),
	}
}

// ResilienceFromUnbias is Lemma 2.4's second direction: an ε-k-unbiased FLE
// protocol is (n·ε)-k-resilient.
func ResilienceFromUnbias(n int, epsilon float64) float64 {
	return float64(n) * epsilon
}

// UnbiasFromResilience is Lemma 2.4's first direction: an ε-k-resilient FLE
// protocol is ε-k-unbiased.
func UnbiasFromResilience(epsilon float64) float64 {
	return epsilon
}

// UniformityVerdict runs a chi-square uniformity test over the valid
// outcomes of a distribution.
type UniformityVerdict struct {
	Statistic float64
	PValue    float64
	Uniform   bool // p ≥ alpha
}

// Uniformity tests the valid outcomes against the uniform distribution at
// significance level alpha.
func Uniformity(dist *ring.Distribution, alpha float64) (UniformityVerdict, error) {
	stat, p, err := stats.ChiSquareUniform(dist.Counts[1:])
	if err != nil {
		return UniformityVerdict{}, err
	}
	return UniformityVerdict{Statistic: stat, PValue: p, Uniform: p >= alpha}, nil
}
