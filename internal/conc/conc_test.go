package conc

import (
	"testing"

	"repro/internal/attacks"
	"repro/internal/protocols/alead"
	"repro/internal/protocols/basiclead"
	"repro/internal/protocols/phaselead"
	"repro/internal/ring"
	"repro/internal/sim"
)

func TestCrossValidationWithEventSimulator(t *testing.T) {
	// On a unidirectional ring all oblivious schedules are equivalent, so
	// the Go scheduler must reproduce the event-driven simulator's
	// outcome for every seed.
	protocols := []ring.Protocol{basiclead.New(), alead.New(), phaselead.NewDefault()}
	for _, proto := range protocols {
		for seed := int64(0); seed < 10; seed++ {
			spec := ring.Spec{N: 24, Protocol: proto, Seed: seed}
			want, err := ring.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(spec, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Failed != want.Failed || got.Output != want.Output {
				t.Fatalf("%s seed=%d: concurrent (failed=%v out=%d) vs event-driven (failed=%v out=%d)",
					proto.Name(), seed, got.Failed, got.Output, want.Failed, want.Output)
			}
		}
	}
}

func TestConcurrentAttackMatchesSimulator(t *testing.T) {
	// Adversarial deviations are strategies like any other: the cubic
	// attack must force its target on the concurrent runtime too.
	const n = 64
	attack := attacks.Rushing{Place: attacks.PlaceStaggered}
	for seed := int64(0); seed < 5; seed++ {
		dev, err := attack.Plan(n, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(ring.Spec{N: n, Protocol: alead.New(), Deviation: dev, Seed: seed}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed || res.Output != 3 {
			t.Fatalf("seed=%d: cubic attack on concurrent runtime: failed=%v output=%d",
				seed, res.Failed, res.Output)
		}
	}
}

func TestStallDetection(t *testing.T) {
	// A deviation that goes silent must be reported as a stall, not hang
	// the runtime.
	const n = 8
	spec := ring.Spec{N: n, Protocol: alead.New(), Seed: 0, Deviation: silentDeviation(4)}
	res, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("silent adversary not detected")
	}
}

// silentDeviation plants a mute adversary at the given position.
func silentDeviation(pos sim.ProcID) *ring.Deviation {
	return &ring.Deviation{
		Coalition:  []sim.ProcID{pos},
		Strategies: map[sim.ProcID]sim.Strategy{pos: mute{}},
	}
}

type mute struct{}

func (mute) Init(*sim.Context)                       {}
func (mute) Receive(*sim.Context, sim.ProcID, int64) {}

func TestRunValidation(t *testing.T) {
	if _, err := Run(ring.Spec{N: 1, Protocol: alead.New()}, Options{}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Run(ring.Spec{N: 4}, Options{}); err == nil {
		t.Error("nil protocol accepted")
	}
}
