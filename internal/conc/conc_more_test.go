package conc

import (
	"testing"
	"time"

	"repro/internal/protocols/phaselead"
	"repro/internal/protocols/sumphase"
	"repro/internal/ring"
	"repro/internal/sim"
)

func TestBackendCountersAndSendTo(t *testing.T) {
	// ringSendTo uses SendTo(successor) instead of Send; both must work
	// on the concurrent backend, and Sent/Received must advance.
	const n = 6
	spec := ring.Spec{N: n, Protocol: probeProto{}, Seed: 1}
	res, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("failed: %v", res.Reason)
	}
	if res.Output != int64(n) {
		t.Fatalf("output = %d, want %d (hop count)", res.Output, n)
	}
}

// probeProto passes a token once around via SendTo and checks counters.
type probeProto struct{}

func (probeProto) Name() string { return "probe" }

func (probeProto) Strategies(n int) ([]sim.Strategy, error) {
	out := make([]sim.Strategy, n)
	for i := range out {
		out[i] = &probeStrategy{n: n, isFirst: i == 0}
	}
	return out, nil
}

type probeStrategy struct {
	n       int
	isFirst bool
}

func (p *probeStrategy) Init(ctx *sim.Context) {
	if p.isFirst {
		succ := sim.ProcID(int(ctx.Self())%p.n + 1)
		ctx.SendTo(succ, 1)
		if ctx.Sent() != 1 {
			ctx.Abort()
		}
		// Off-ring destinations vanish silently.
		ctx.SendTo(ctx.Self(), 42)
	}
}

func (p *probeStrategy) Receive(ctx *sim.Context, _ sim.ProcID, v int64) {
	if ctx.Received() != 1 || ctx.N() != p.n {
		ctx.Abort()
		return
	}
	if v < int64(p.n) {
		succ := sim.ProcID(int(ctx.Self())%p.n + 1)
		ctx.SendTo(succ, v+1)
	}
	ctx.Terminate(int64(p.n))
}

func TestConcurrentPhaseProtocols(t *testing.T) {
	// The phase protocols interleave two message kinds; they must behave
	// identically on the concurrent runtime.
	for _, proto := range []ring.Protocol{phaselead.NewDefault(), sumphase.New()} {
		spec := ring.Spec{N: 30, Protocol: proto, Seed: 9}
		want, err := ring.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Failed != want.Failed || got.Output != want.Output {
			t.Fatalf("%s: concurrent (failed=%v out=%d) vs simulator (failed=%v out=%d)",
				proto.Name(), got.Failed, got.Output, want.Failed, want.Output)
		}
	}
}

func TestLinkOverflowFailsCleanly(t *testing.T) {
	// A runaway sender with a tiny link capacity must terminate the run
	// (as a failure), not deadlock it.
	spec := ring.Spec{N: 4, Protocol: floodProto{}, Seed: 0}
	done := make(chan struct{})
	var res sim.Result
	var err error
	go func() {
		res, err = Run(spec, Options{LinkCapacity: 8, StallTimeout: 50 * time.Millisecond})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("overflow run did not finish")
	}
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("flooding not reported as failure")
	}
}

type floodProto struct{}

func (floodProto) Name() string { return "flood" }

func (floodProto) Strategies(n int) ([]sim.Strategy, error) {
	out := make([]sim.Strategy, n)
	for i := range out {
		out[i] = flooder{}
	}
	return out, nil
}

type flooder struct{}

func (flooder) Init(ctx *sim.Context) {
	for i := 0; i < 1000; i++ {
		ctx.Send(int64(i))
	}
}

func (flooder) Receive(ctx *sim.Context, _ sim.ProcID, _ int64) {
	ctx.Send(0)
}
