// Package conc executes ring protocols on a genuinely concurrent runtime:
// one goroutine per processor, buffered channels as FIFO links, and the Go
// scheduler as the (oblivious) message schedule. It runs the exact same
// sim.Strategy implementations as the deterministic event-driven simulator.
//
// On a unidirectional ring every processor has a single incoming FIFO link,
// so all schedules yield the same local computations (Section 2): for a
// given seed, the concurrent runtime and the event-driven simulator must
// produce identical outcomes. The cross-validation tests in this package
// check exactly that, which exercises the model's schedule-independence
// claim on a real scheduler instead of a simulated one.
//
// The runtime never leaks goroutines: processors exit when they terminate,
// when their inbox closes, or when the coordinator cancels the run; Run
// waits for all of them before returning.
package conc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ring"
	"repro/internal/sim"
)

// Options tunes the concurrent runtime.
type Options struct {
	// LinkCapacity is the per-link channel buffer. The model's links are
	// unbounded; a capacity well above any protocol's per-link traffic
	// (ring protocols send ≤ 2n per link) preserves non-blocking sends.
	// 0 picks 8n+64. A send finding the buffer full marks the execution
	// failed rather than blocking, so misbehaving strategies cannot
	// deadlock the runtime.
	LinkCapacity int
	// StallTimeout is how long the coordinator waits without progress
	// before declaring the execution stalled (outcome FAIL, as for a
	// processor that never terminates). 0 picks 200ms.
	StallTimeout time.Duration
}

// Run executes one election on the concurrent runtime.
func Run(spec ring.Spec, opts Options) (sim.Result, error) {
	if spec.N < 2 {
		return sim.Result{}, fmt.Errorf("conc: need n ≥ 2, got %d", spec.N)
	}
	if spec.Protocol == nil {
		return sim.Result{}, errors.New("conc: nil protocol")
	}
	strategies, err := spec.Protocol.Strategies(spec.N)
	if err != nil {
		return sim.Result{}, err
	}
	if err := spec.Deviation.Validate(spec.N); err != nil {
		return sim.Result{}, err
	}
	if spec.Deviation != nil {
		for p, s := range spec.Deviation.Strategies {
			strategies[p-1] = s
		}
	}
	capacity := opts.LinkCapacity
	if capacity == 0 {
		capacity = 8*spec.N + 64
	}
	stall := opts.StallTimeout
	if stall == 0 {
		stall = 200 * time.Millisecond
	}

	rt := &runtime{
		n:        spec.N,
		links:    make([]chan int64, spec.N+1), // links[i]: i → i%n+1
		procs:    make([]procState, spec.N+1),
		done:     make(chan struct{}),
		capacity: capacity,
	}
	for i := 1; i <= spec.N; i++ {
		rt.links[i] = make(chan int64, capacity)
		rt.procs[i].status = sim.StatusRunning
	}

	var wg sync.WaitGroup
	for i := 1; i <= spec.N; i++ {
		id := sim.ProcID(i)
		ctx := sim.NewContext(rt, id, spec.Seed)
		wg.Add(1)
		go func(id sim.ProcID, ctx sim.Context, strategy sim.Strategy) {
			defer wg.Done()
			rt.runProcessor(id, &ctx, strategy)
		}(id, ctx, strategies[i-1])
	}

	// Watchdog: progress is any delivery or termination; two quiet
	// periods in a row with unterminated processors means stall.
	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(finished)
	}()
	ticker := time.NewTicker(stall)
	defer ticker.Stop()
	var lastActivity uint64
	for {
		select {
		case <-finished:
			return rt.result(), nil
		case <-ticker.C:
			now := atomic.LoadUint64(&rt.activity)
			if now == lastActivity {
				rt.cancel()
				<-finished
				return rt.result(), nil
			}
			lastActivity = now
		}
	}
}

type procState struct {
	mu       sync.Mutex
	status   sim.Status
	output   int64
	sent     int64 // atomics via mutex-free reads not needed; guarded
	received int64
	overflow bool
}

// runtime implements sim.Backend over channels.
type runtime struct {
	n        int
	links    []chan int64
	procs    []procState
	done     chan struct{}
	closed   sync.Once
	activity uint64
	termCnt  int64
	capacity int
}

var _ sim.Backend = (*runtime)(nil)

func (rt *runtime) cancel() { rt.closed.Do(func() { close(rt.done) }) }

func (rt *runtime) runProcessor(id sim.ProcID, ctx *sim.Context, strategy sim.Strategy) {
	strategy.Init(ctx)
	// Incoming link: predecessor → id. links[pred] where pred = id−1 (or n).
	pred := int(id) - 1
	if pred < 1 {
		pred = rt.n
	}
	inbox := rt.links[pred]
	for {
		if rt.statusOf(id) != sim.StatusRunning {
			return
		}
		select {
		case <-rt.done:
			return
		case v, ok := <-inbox:
			if !ok {
				return
			}
			p := &rt.procs[id]
			p.mu.Lock()
			running := p.status == sim.StatusRunning
			if running {
				p.received++
			}
			p.mu.Unlock()
			atomic.AddUint64(&rt.activity, 1)
			if !running {
				return
			}
			strategy.Receive(ctx, sim.ProcID(pred), v)
		}
	}
}

func (rt *runtime) statusOf(id sim.ProcID) sim.Status {
	p := &rt.procs[id]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.status
}

// Size implements sim.Backend.
func (rt *runtime) Size() int { return rt.n }

// Send implements sim.Backend: the ring's unique outgoing link.
func (rt *runtime) Send(from sim.ProcID, value int64) {
	p := &rt.procs[from]
	p.mu.Lock()
	if p.status != sim.StatusRunning {
		p.mu.Unlock()
		return
	}
	p.sent++
	p.mu.Unlock()
	select {
	case rt.links[from] <- value:
		atomic.AddUint64(&rt.activity, 1)
	case <-rt.done:
	default:
		// Link buffer exhausted: a runaway strategy. Mark and stop.
		p.mu.Lock()
		p.overflow = true
		p.mu.Unlock()
		rt.cancel()
	}
}

// SendTo implements sim.Backend; on a ring only the successor is reachable.
func (rt *runtime) SendTo(from, to sim.ProcID, value int64) {
	succ := sim.ProcID(int(from)%rt.n + 1)
	if to == succ {
		rt.Send(from, value)
	}
}

// Terminate implements sim.Backend.
func (rt *runtime) Terminate(from sim.ProcID, output int64, aborted bool) {
	p := &rt.procs[from]
	p.mu.Lock()
	if p.status != sim.StatusRunning {
		p.mu.Unlock()
		return
	}
	if aborted {
		p.status = sim.StatusAborted
	} else {
		p.status = sim.StatusTerminated
		p.output = output
	}
	p.mu.Unlock()
	atomic.AddUint64(&rt.activity, 1)
	if atomic.AddInt64(&rt.termCnt, 1) == int64(rt.n) {
		rt.cancel()
	}
}

// Sent implements sim.Backend.
func (rt *runtime) Sent(p sim.ProcID) int {
	s := &rt.procs[p]
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.sent)
}

// Received implements sim.Backend.
func (rt *runtime) Received(p sim.ProcID) int {
	s := &rt.procs[p]
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.received)
}

func (rt *runtime) result() sim.Result {
	res := sim.Result{
		Outputs:  make([]int64, rt.n+1),
		Statuses: make([]sim.Status, rt.n+1),
	}
	first := true
	var common int64
	agree := true
	anyAbort, anyRunning := false, false
	for i := 1; i <= rt.n; i++ {
		p := &rt.procs[i]
		p.mu.Lock()
		status, output := p.status, p.output
		res.Delivered += int(p.received)
		p.mu.Unlock()
		res.Statuses[i] = status
		res.Outputs[i] = output
		switch status {
		case sim.StatusAborted:
			anyAbort = true
		case sim.StatusRunning:
			anyRunning = true
		case sim.StatusTerminated:
			if first {
				common, first = output, false
			} else if output != common {
				agree = false
			}
		}
	}
	switch {
	case anyAbort:
		res.Failed, res.Reason = true, sim.FailAbort
	case anyRunning:
		res.Failed, res.Reason = true, sim.FailStall
	case !agree:
		res.Failed, res.Reason = true, sim.FailMismatch
	default:
		res.Output = common
	}
	res.Steps = res.Delivered
	return res
}
