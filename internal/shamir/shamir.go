// Package shamir implements Shamir's secret sharing over the prime field
// GF(2³¹−1), the substrate behind the paper's asynchronous fully-connected
// scenario (Section 1.1): "for an asynchronous fully connected network, they
// apply Shamir's secret sharing scheme in a straightforward manner and get
// an optimal resilience result of k = n/2−1".
//
// A secret s is embedded as the constant term of a uniformly random degree
// t−1 polynomial; share x (x = 1..n) is the polynomial's value at x. Any t
// shares reconstruct s by Lagrange interpolation at 0; any t−1 shares are
// consistent with every candidate secret and therefore reveal nothing —
// both facts have property tests.
//
// The modulus 2³¹−1 is a Mersenne prime: field elements fit in 31 bits, so
// products fit in int64 without overflow and shares embed directly into the
// simulator's int64 message payloads.
package shamir

import (
	"errors"
	"fmt"
)

// P is the field modulus, the Mersenne prime 2³¹−1.
const P int64 = 1<<31 - 1

// mod reduces into [0, P).
func mod(v int64) int64 {
	v %= P
	if v < 0 {
		v += P
	}
	return v
}

// mulmod multiplies in the field (operands already reduced; the product of
// two 31-bit values fits in 62 bits).
func mulmod(a, b int64) int64 { return a * b % P }

// powmod computes a^e in the field.
func powmod(a, e int64) int64 {
	result := int64(1)
	a = mod(a)
	for e > 0 {
		if e&1 == 1 {
			result = mulmod(result, a)
		}
		a = mulmod(a, a)
		e >>= 1
	}
	return result
}

// invmod computes the multiplicative inverse via Fermat's little theorem.
func invmod(a int64) (int64, error) {
	if mod(a) == 0 {
		return 0, errors.New("shamir: zero has no inverse")
	}
	return powmod(a, P-2), nil
}

// Share is one point of a sharing: the polynomial evaluated at X.
type Share struct {
	X     int64 // evaluation point, 1..n
	Value int64 // field element
}

// Source is the randomness Split consumes: any generator exposing Int63n.
// Both *math/rand.Rand and *sim.Stream satisfy it.
type Source interface {
	Int63n(n int64) int64
}

// Split shares the secret among n parties with reconstruction threshold t:
// any t shares determine the secret, any fewer are independent of it.
func Split(secret int64, t, n int, rng Source) ([]Share, error) {
	if t < 1 || t > n {
		return nil, fmt.Errorf("shamir: threshold %d out of range [1,%d]", t, n)
	}
	if int64(n) >= P {
		return nil, fmt.Errorf("shamir: too many parties (%d)", n)
	}
	if secret < 0 || secret >= P {
		return nil, fmt.Errorf("shamir: secret %d outside GF(%d)", secret, P)
	}
	coeffs := make([]int64, t)
	coeffs[0] = secret
	for i := 1; i < t; i++ {
		coeffs[i] = rng.Int63n(P)
	}
	shares := make([]Share, n)
	for x := 1; x <= n; x++ {
		shares[x-1] = Share{X: int64(x), Value: eval(coeffs, int64(x))}
	}
	return shares, nil
}

// eval computes the polynomial at x by Horner's rule.
func eval(coeffs []int64, x int64) int64 {
	var acc int64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = mod(mulmod(acc, x) + coeffs[i])
	}
	return acc
}

// Reconstruct recovers the secret from at least one share per distinct
// evaluation point, using Lagrange interpolation at 0 over the first
// len(shares) points supplied.
func Reconstruct(shares []Share) (int64, error) {
	if len(shares) == 0 {
		return 0, errors.New("shamir: no shares")
	}
	seen := make(map[int64]bool, len(shares))
	for _, s := range shares {
		if s.X <= 0 || s.X >= P {
			return 0, fmt.Errorf("shamir: invalid evaluation point %d", s.X)
		}
		if seen[s.X] {
			return 0, fmt.Errorf("shamir: duplicate evaluation point %d", s.X)
		}
		seen[s.X] = true
	}
	var secret int64
	for i, si := range shares {
		num, den := int64(1), int64(1)
		for j, sj := range shares {
			if i == j {
				continue
			}
			num = mulmod(num, mod(-sj.X))
			den = mulmod(den, mod(si.X-sj.X))
		}
		inv, err := invmod(den)
		if err != nil {
			return 0, err
		}
		secret = mod(secret + mulmod(si.Value, mulmod(num, inv)))
	}
	return secret, nil
}

// Consistent reports whether all shares lie on one polynomial of degree
// < t: the receiver-side cheater detection used by the fully-connected
// election. It interpolates from the first t shares and checks the rest.
//
// The check is the hot path of the complete-graph election (every processor
// validates every owner's n shares), so the interpolation is barycentric:
// the weights wᵢ = 1/Πⱼ≠ᵢ(xᵢ−xⱼ) are inverted once per base, and each probe
// evaluates Σ yᵢ·wᵢ·Πⱼ≠ᵢ(x−xⱼ) with prefix/suffix products — O(t) field
// multiplications and no inversions per probe, algebraically identical to
// the textbook Lagrange form.
func Consistent(shares []Share, t int) (bool, error) {
	if len(shares) < t {
		return false, fmt.Errorf("shamir: %d shares below threshold %d", len(shares), t)
	}
	base := shares[:t]
	weights, err := baryWeights(base)
	if err != nil {
		return false, err
	}
	scratch := newBaryScratch(t)
	for _, probe := range shares[t:] {
		if baryEval(base, weights, probe.X, scratch) != probe.Value {
			return false, nil
		}
	}
	return true, nil
}

// interpolateAt evaluates the unique degree-(len(base)−1) polynomial
// through base at x.
func interpolateAt(base []Share, x int64) (int64, error) {
	weights, err := baryWeights(base)
	if err != nil {
		return 0, err
	}
	return baryEval(base, weights, x, newBaryScratch(len(base))), nil
}

// baryWeights computes the barycentric Lagrange weights 1/Πⱼ≠ᵢ(xᵢ−xⱼ) for
// the base points. It fails on duplicate evaluation points (zero inverse),
// like the textbook form.
func baryWeights(base []Share) ([]int64, error) {
	weights := make([]int64, len(base))
	for i, si := range base {
		den := int64(1)
		for j, sj := range base {
			if i != j {
				den = mulmod(den, mod(si.X-sj.X))
			}
		}
		inv, err := invmod(den)
		if err != nil {
			return nil, err
		}
		weights[i] = inv
	}
	return weights, nil
}

// baryScratch holds the prefix/suffix product buffers of one evaluation,
// reusable across the probes of a Consistent sweep (the hot path calls
// baryEval once per probe share).
type baryScratch struct {
	prefix, suffix []int64
}

func newBaryScratch(t int) baryScratch {
	return baryScratch{prefix: make([]int64, t+1), suffix: make([]int64, t+1)}
}

// baryEval evaluates the interpolating polynomial at x:
// Σᵢ yᵢ·wᵢ·Πⱼ≠ᵢ(x−xⱼ), with the per-term products taken from prefix and
// suffix products of (x−xⱼ). When x coincides with a base point every other
// term vanishes and the sum collapses to that point's value, exactly as in
// the quadratic form.
func baryEval(base []Share, weights []int64, x int64, s baryScratch) int64 {
	t := len(base)
	// prefix[i] = Π_{j<i}(x−xⱼ), suffix[i] = Π_{j>i}(x−xⱼ).
	prefix, suffix := s.prefix, s.suffix
	prefix[0] = 1
	for i, s := range base {
		prefix[i+1] = mulmod(prefix[i], mod(x-s.X))
	}
	suffix[t] = 1
	for i := t - 1; i >= 0; i-- {
		suffix[i] = mulmod(suffix[i+1], mod(x-base[i].X))
	}
	var result int64
	for i, s := range base {
		num := mulmod(prefix[i], suffix[i+1])
		result = mod(result + mulmod(s.Value, mulmod(num, weights[i])))
	}
	return result
}
