package shamir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(raw int64, tRaw, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		threshold := int(tRaw)%n + 1
		secret := mod(raw)
		shares, err := Split(secret, threshold, n, rng)
		if err != nil {
			return false
		}
		// Any t-subset reconstructs.
		perm := rng.Perm(n)[:threshold]
		subset := make([]Share, threshold)
		for i, idx := range perm {
			subset[i] = shares[idx]
		}
		got, err := Reconstruct(subset)
		return err == nil && got == secret
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestBelowThresholdRevealsNothing(t *testing.T) {
	// Information-theoretic hiding: t−1 shares are consistent with EVERY
	// candidate secret — there is a degree-(t−1) polynomial through the
	// t−1 points and (0, candidate) for any candidate.
	rng := rand.New(rand.NewSource(2))
	const (
		threshold = 4
		n         = 9
	)
	shares, err := Split(12345, threshold, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	partial := shares[:threshold-1]
	const fresh = int64(100) // an evaluation point outside the partial set
	for _, candidate := range []int64{0, 1, 999999, P - 1} {
		// The unique degree-(t−1) polynomial through the t−1 partial
		// shares and (0, candidate) exists for every candidate; extend
		// the partial view with its value at a fresh point and confirm
		// the extended set reconstructs to the candidate — i.e. the
		// adversary's view rules nothing out.
		base := append(append([]Share{}, partial...), Share{X: 0, Value: candidate})
		v, err := interpolateAt(base, fresh)
		if err != nil {
			t.Fatal(err)
		}
		extended := append(append([]Share{}, partial...), Share{X: fresh, Value: v})
		got, err := Reconstruct(extended)
		if err != nil {
			t.Fatal(err)
		}
		if got != candidate {
			t.Fatalf("t−1 shares + crafted point reconstructed %d, want candidate %d", got, candidate)
		}
	}
}

func TestConsistentDetectsTampering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shares, err := Split(777, 5, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Consistent(shares, 5)
	if err != nil || !ok {
		t.Fatalf("honest sharing flagged inconsistent: ok=%v err=%v", ok, err)
	}
	shares[9].Value = mod(shares[9].Value + 1)
	ok, err = Consistent(shares, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tampered share not detected")
	}
}

func TestReconstructValidation(t *testing.T) {
	if _, err := Reconstruct(nil); err == nil {
		t.Error("empty share set accepted")
	}
	if _, err := Reconstruct([]Share{{X: 1, Value: 5}, {X: 1, Value: 6}}); err == nil {
		t.Error("duplicate evaluation points accepted")
	}
	if _, err := Reconstruct([]Share{{X: 0, Value: 5}}); err == nil {
		t.Error("evaluation point 0 accepted (would leak the secret slot)")
	}
}

func TestSplitValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := Split(1, 0, 5, rng); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := Split(1, 6, 5, rng); err == nil {
		t.Error("threshold above n accepted")
	}
	if _, err := Split(P, 2, 5, rng); err == nil {
		t.Error("out-of-field secret accepted")
	}
}

func TestFieldOps(t *testing.T) {
	for _, a := range []int64{1, 2, 12345, P - 1} {
		inv, err := invmod(a)
		if err != nil {
			t.Fatal(err)
		}
		if got := mulmod(a, inv); got != 1 {
			t.Errorf("a·a⁻¹ = %d for a=%d", got, a)
		}
	}
	if _, err := invmod(0); err == nil {
		t.Error("inverse of zero accepted")
	}
	if got := powmod(3, P-1); got != 1 {
		t.Errorf("Fermat check failed: 3^(P−1) = %d", got)
	}
}
