package shamir

import (
	"math/rand"
	"testing"
)

// FuzzShamirRoundtrip drives Split/Reconstruct/Consistent over GF(2³¹−1)
// with fuzzer-chosen parameters: any valid (secret, t, n) must round-trip
// through every t-subset ordering, tampering must be detected, and
// malformed share vectors (too few, duplicates, bad evaluation points,
// out-of-range thresholds) must return errors instead of panicking or
// fabricating secrets.
func FuzzShamirRoundtrip(f *testing.F) {
	f.Add(int64(0), uint8(1), uint8(1), int64(1))
	f.Add(int64(5), uint8(3), uint8(5), int64(42))
	f.Add(int64(P-1), uint8(16), uint8(31), int64(-9))
	f.Add(int64(1<<40), uint8(200), uint8(255), int64(7))
	f.Fuzz(func(t *testing.T, rawSecret int64, rawT, rawN uint8, seed int64) {
		n := int(rawN)%40 + 1
		threshold := int(rawT)%n + 1
		secret := ((rawSecret % P) + P) % P
		rng := rand.New(rand.NewSource(seed))

		shares, err := Split(secret, threshold, n, rng)
		if err != nil {
			t.Fatalf("Split(%d, %d, %d): %v", secret, threshold, n, err)
		}
		if len(shares) != n {
			t.Fatalf("Split returned %d shares for n=%d", len(shares), n)
		}

		// Any t shares — here a random subset in random order — recover
		// the secret exactly.
		perm := rng.Perm(n)
		subset := make([]Share, threshold)
		for i := 0; i < threshold; i++ {
			subset[i] = shares[perm[i]]
		}
		got, err := Reconstruct(subset)
		if err != nil {
			t.Fatalf("Reconstruct(%d shares of %d): %v", threshold, n, err)
		}
		if got != secret {
			t.Fatalf("round-trip lost the secret: got %d, want %d (t=%d n=%d)", got, secret, threshold, n)
		}

		// The full share vector reconstructs too (interpolation through
		// more than t points of a degree-(t−1) polynomial).
		if got, err := Reconstruct(shares); err != nil || got != secret {
			t.Fatalf("full-vector reconstruct: got %d err=%v, want %d", got, err, secret)
		}

		// Consistency holds for honest shares and breaks under tampering
		// of any share beyond the interpolation base.
		ok, err := Consistent(shares, threshold)
		if err != nil || !ok {
			t.Fatalf("honest shares inconsistent: ok=%v err=%v", ok, err)
		}
		if threshold < n {
			tampered := make([]Share, n)
			copy(tampered, shares)
			idx := threshold + rng.Intn(n-threshold)
			tampered[idx].Value = (tampered[idx].Value + 1) % P
			ok, err := Consistent(tampered, threshold)
			if err != nil {
				t.Fatalf("Consistent on tampered shares errored: %v", err)
			}
			if ok {
				t.Fatalf("tampered share %d went undetected (t=%d n=%d)", idx, threshold, n)
			}
		}

		// Malformed share counts and vectors: errors, never panics.
		if _, err := Reconstruct(nil); err == nil {
			t.Fatal("Reconstruct(nil) succeeded")
		}
		if _, err := Reconstruct([]Share{shares[0], shares[0]}); n > 1 && err == nil {
			t.Fatal("duplicate evaluation points accepted")
		}
		if _, err := Reconstruct([]Share{{X: 0, Value: 1}}); err == nil {
			t.Fatal("evaluation point 0 accepted")
		}
		if _, err := Reconstruct([]Share{{X: P, Value: 1}}); err == nil {
			t.Fatal("evaluation point P accepted")
		}
		if _, err := Split(secret, n+1, n, rng); err == nil {
			t.Fatal("threshold above n accepted")
		}
		if _, err := Split(secret, 0, n, rng); err == nil {
			t.Fatal("threshold 0 accepted")
		}
		if _, err := Split(-1-secret, threshold, n, rng); err == nil {
			t.Fatal("negative secret accepted")
		}
		if _, err := Consistent(shares[:threshold-1], threshold); err == nil {
			t.Fatal("Consistent below threshold accepted")
		}

		// Fewer than t shares reveal nothing: reconstruction from t−1
		// points is well-defined interpolation but must not be trusted —
		// here we only require it to not panic and to stay in the field.
		if threshold > 1 {
			v, err := Reconstruct(shares[:threshold-1])
			if err != nil {
				t.Fatalf("below-threshold interpolation errored: %v", err)
			}
			if v < 0 || v >= P {
				t.Fatalf("below-threshold interpolation left the field: %d", v)
			}
		}
	})
}
