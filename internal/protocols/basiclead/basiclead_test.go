package basiclead

import (
	"testing"

	"repro/internal/ring"
	"repro/internal/sim"
)

func TestHonestElectsSumLeader(t *testing.T) {
	for _, n := range []int{2, 3, 8, 31} {
		for seed := int64(0); seed < 5; seed++ {
			res, err := ring.Run(ring.Spec{N: n, Protocol: New(), Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed {
				t.Fatalf("n=%d seed=%d: honest run failed: %v", n, seed, res.Reason)
			}
			var sum int64
			for i := 1; i <= n; i++ {
				sum += sim.DeriveRand(seed, sim.ProcID(i)).Int63n(int64(n))
			}
			if want := ring.LeaderFromSum(sum, n); res.Output != want {
				t.Fatalf("n=%d seed=%d: leader %d, want %d", n, seed, res.Output, want)
			}
		}
	}
}

func TestMessageComplexityIsNSquared(t *testing.T) {
	const n = 23
	res, err := ring.Run(ring.Spec{N: n, Protocol: New(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("honest run failed: %v", res.Reason)
	}
	if res.Delivered != n*n {
		t.Errorf("delivered %d, want n²=%d", res.Delivered, n*n)
	}
}

func TestHonestUniformity(t *testing.T) {
	const (
		n      = 8
		trials = 4000
	)
	dist, err := ring.Trials(ring.Spec{N: n, Protocol: New(), Seed: 17}, trials)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Failures() != 0 {
		t.Fatalf("%d honest trials failed", dist.Failures())
	}
	want := float64(trials) / n
	for j := 1; j <= n; j++ {
		if got := float64(dist.Counts[j]); got < want*0.7 || got > want*1.3 {
			t.Errorf("leader %d elected %v times, want ≈ %v", j, got, want)
		}
	}
}

func TestScheduleIndependence(t *testing.T) {
	const n = 9
	var first int64
	for i, s := range []sim.Scheduler{sim.FIFOScheduler{}, sim.LIFOScheduler{}, sim.NewRandomScheduler(2)} {
		res, err := ring.Run(ring.Spec{N: n, Protocol: New(), Seed: 4, Scheduler: s})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("failed under %T: %v", s, res.Reason)
		}
		if i == 0 {
			first = res.Output
		} else if res.Output != first {
			t.Fatalf("outputs differ across schedules")
		}
	}
}
