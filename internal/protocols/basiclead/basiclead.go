// Package basiclead implements Basic-LEAD (Appendix B of the paper), the
// naive fair-leader-election protocol for an asynchronous unidirectional
// ring. Every processor draws a secret value, broadcasts it around the ring
// by immediate forwarding, and elects the leader determined by the sum of all
// values modulo n.
//
// With honest processors the elected leader is uniform. The protocol is not
// resilient even to a single rational adversary (Claim B.1): an adversary can
// withhold its own value until it has seen everyone else's, then choose its
// value to force any target — see the attacks package.
package basiclead

import (
	"repro/internal/ring"
	"repro/internal/sim"
)

// Protocol is the Basic-LEAD protocol. The zero value is ready to use.
type Protocol struct{}

var _ ring.Protocol = Protocol{}

// New returns the Basic-LEAD protocol.
func New() Protocol { return Protocol{} }

// Name implements ring.Protocol.
func (Protocol) Name() string { return "Basic-LEAD" }

// BatchSafe marks the protocol's strategies as fully re-initialized by Init,
// so one strategy vector can serve every trial of an engine chunk.
func (Protocol) BatchSafe() {}

// Strategies implements ring.Protocol. Every processor runs the same
// strategy; all wake up spontaneously and send their secret immediately.
func (Protocol) Strategies(n int) ([]sim.Strategy, error) {
	strategies := make([]sim.Strategy, n)
	for i := range strategies {
		strategies[i] = &processor{n: n}
	}
	return strategies, nil
}

// processor is one Basic-LEAD participant.
type processor struct {
	n        int
	secret   int64
	sum      int64
	received int
}

var _ sim.Strategy = (*processor)(nil)

// Init draws the secret value and broadcasts it (Basic-LEAD line 2-3),
// resetting all execution state for batched strategy reuse.
func (p *processor) Init(ctx *sim.Context) {
	p.sum, p.received = 0, 0
	p.secret = ctx.Rand().Int63n(int64(p.n))
	ctx.Send(p.secret)
}

// Receive forwards each value once and, on the n-th receive, validates that
// the processor's own value came back around the ring before terminating with
// the common sum (Basic-LEAD lines 6-14; the paper's round counter is offset
// so that exactly n−1 values are forwarded and the n-th is consumed by the
// validation).
func (p *processor) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	value = ring.Mod(value, p.n)
	p.received++
	p.sum = ring.Mod(p.sum+value, p.n)
	if p.received < p.n {
		ctx.Send(value)
		return
	}
	if value != p.secret {
		ctx.Abort()
		return
	}
	ctx.Terminate(ring.LeaderFromSum(p.sum, p.n))
}
