// Package sumphase implements the protocol variant that motivates
// PhaseAsyncLead's random function (Appendix E.4): A-LEADuni's
// sum-of-secrets output combined with the phase-validation mechanism, but
// WITHOUT the random function f. The phase mechanism keeps everyone
// k-synchronized, yet the sum output is fatally compressible: adversaries can
// piggyback partial sums of the honest secrets on validation rounds whose
// validator is a coalition member, learn the total long before their
// commitment points, and control the outcome with just k = 4 colluders — see
// attacks.SumPhase. The package exists purely as the experimental control
// demonstrating why f is necessary.
package sumphase

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
)

// Protocol is the sum-output phase protocol. The zero value is ready to use.
type Protocol struct {
	// M is the validation alphabet size; 0 picks 2n².
	M int64
}

var _ ring.Protocol = Protocol{}

// New returns the sum-output phase protocol with default parameters.
func New() Protocol { return Protocol{} }

// Name implements ring.Protocol.
func (Protocol) Name() string { return "SumPhaseLead" }

// BatchSafe marks the protocol's strategies as fully re-initialized by Init,
// so one strategy vector can serve every trial of an engine chunk.
func (Protocol) BatchSafe() {}

// ValidationAlphabet resolves the validation alphabet size for ring size n.
func (p Protocol) ValidationAlphabet(n int) int64 {
	if p.M != 0 {
		return p.M
	}
	return 2 * int64(n) * int64(n)
}

// Strategies implements ring.Protocol.
func (p Protocol) Strategies(n int) ([]sim.Strategy, error) {
	if n < 2 {
		return nil, fmt.Errorf("sumphase: need n ≥ 2, got %d", n)
	}
	m := p.ValidationAlphabet(n)
	if m < int64(n) {
		return nil, fmt.Errorf("sumphase: M=%d must be at least n=%d", m, n)
	}
	strategies := make([]sim.Strategy, n)
	strategies[0] = &origin{n: n, m: m}
	for i := 1; i < n; i++ {
		strategies[i] = &normal{n: n, m: m, id: i + 1}
	}
	return strategies, nil
}

// normal is a non-origin processor: identical phase mechanics to
// PhaseAsyncLead, but the final output is the sum of the data values.
type normal struct {
	n        int
	m        int64
	id       int
	d, v     int64
	buffer   int64
	sum      int64
	round    int
	received int
}

var _ sim.Strategy = (*normal)(nil)

func (p *normal) Init(ctx *sim.Context) {
	p.buffer, p.sum, p.round, p.received = 0, 0, 0, 0
	p.d = ctx.Rand().Int63n(int64(p.n))
	p.v = ctx.Rand().Int63n(p.m)
	p.buffer = p.d
}

func (p *normal) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	p.received++
	if p.received%2 == 1 {
		p.dataStep(ctx, value)
	} else {
		p.validationStep(ctx, value)
	}
}

func (p *normal) dataStep(ctx *sim.Context, value int64) {
	if value < 0 || value >= int64(p.n) {
		ctx.Abort()
		return
	}
	ctx.Send(p.buffer)
	p.round++
	p.buffer = value
	p.sum = ring.Mod(p.sum+value, p.n)
	if p.round == p.id {
		ctx.Send(p.v)
	}
	if p.round == p.n && value != p.d {
		ctx.Abort()
	}
}

func (p *normal) validationStep(ctx *sim.Context, value int64) {
	if value < 0 || value >= p.m {
		ctx.Abort()
		return
	}
	if p.round == p.id {
		if value != p.v {
			ctx.Abort()
			return
		}
	} else {
		ctx.Send(value)
	}
	if p.round == p.n {
		ctx.Terminate(ring.LeaderFromSum(p.sum, p.n))
	}
}

// origin is processor 1, pacing the rounds exactly as in PhaseAsyncLead.
type origin struct {
	n        int
	m        int64
	d, v     int64
	buffer   int64
	sum      int64
	round    int
	received int
}

var _ sim.Strategy = (*origin)(nil)

func (o *origin) Init(ctx *sim.Context) {
	o.buffer, o.sum, o.received = 0, 0, 0
	o.d = ctx.Rand().Int63n(int64(o.n))
	o.v = ctx.Rand().Int63n(o.m)
	o.round = 1
	ctx.Send(o.d)
	ctx.Send(o.v)
}

func (o *origin) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	o.received++
	if o.received%2 == 1 {
		o.dataStep(ctx, value)
	} else {
		o.validationStep(ctx, value)
	}
}

func (o *origin) dataStep(ctx *sim.Context, value int64) {
	if value < 0 || value >= int64(o.n) {
		ctx.Abort()
		return
	}
	o.buffer = value
	o.sum = ring.Mod(o.sum+value, o.n)
	if o.round == o.n && value != o.d {
		ctx.Abort()
	}
}

func (o *origin) validationStep(ctx *sim.Context, value int64) {
	if value < 0 || value >= o.m {
		ctx.Abort()
		return
	}
	if o.round == 1 {
		if value != o.v {
			ctx.Abort()
			return
		}
	} else {
		ctx.Send(value)
	}
	if o.round == o.n {
		// The round-n data receive (the origin's own value, verified in
		// dataStep) preceded this message, so the sum is complete.
		ctx.Terminate(ring.LeaderFromSum(o.sum, o.n))
		return
	}
	ctx.Send(o.buffer)
	o.round++
}
