package sumphase

import (
	"testing"

	"repro/internal/ring"
	"repro/internal/sim"
)

func TestHonestElectsSumLeader(t *testing.T) {
	for _, n := range []int{2, 3, 5, 24, 64} {
		for seed := int64(0); seed < 4; seed++ {
			res, err := ring.Run(ring.Spec{N: n, Protocol: New(), Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed {
				t.Fatalf("n=%d seed=%d: honest run failed: %v", n, seed, res.Reason)
			}
			var sum int64
			for i := 1; i <= n; i++ {
				// Each processor draws d then v; the data value is
				// the first draw.
				sum += sim.DeriveRand(seed, sim.ProcID(i)).Int63n(int64(n))
			}
			if want := ring.LeaderFromSum(sum, n); res.Output != want {
				t.Fatalf("n=%d seed=%d: leader %d, want %d", n, seed, res.Output, want)
			}
		}
	}
}

func TestMessageComplexityIsTwoNSquared(t *testing.T) {
	const n = 15
	res, err := ring.Run(ring.Spec{N: n, Protocol: New(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("honest run failed: %v", res.Reason)
	}
	if res.Delivered != 2*n*n {
		t.Errorf("delivered %d, want 2n²=%d", res.Delivered, 2*n*n)
	}
}

func TestHonestUniformity(t *testing.T) {
	const (
		n      = 8
		trials = 3000
	)
	dist, err := ring.Trials(ring.Spec{N: n, Protocol: New(), Seed: 23}, trials)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Failures() != 0 {
		t.Fatalf("%d honest trials failed", dist.Failures())
	}
	want := float64(trials) / n
	for j := 1; j <= n; j++ {
		if got := float64(dist.Counts[j]); got < want*0.7 || got > want*1.3 {
			t.Errorf("leader %d elected %v times, want ≈ %v", j, got, want)
		}
	}
}

func TestMalformedValidationAborts(t *testing.T) {
	const n = 12
	dev := &ring.Deviation{
		Coalition:  []sim.ProcID{5},
		Strategies: map[sim.ProcID]sim.Strategy{5: &badValidator{}},
	}
	res, err := ring.Run(ring.Spec{N: n, Protocol: New(), Deviation: dev, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("out-of-range validation value not caught")
	}
}

// badValidator behaves as a data pipe but emits an enormous validation value.
type badValidator struct{ received int }

func (b *badValidator) Init(*sim.Context) {}
func (b *badValidator) Receive(ctx *sim.Context, _ sim.ProcID, v int64) {
	b.received++
	if b.received%2 == 1 {
		ctx.Send(v)
		return
	}
	ctx.Send(1 << 50)
}

func TestMalformedDataToOriginAborts(t *testing.T) {
	// Position n feeds the origin directly; an out-of-range data value
	// must abort the origin.
	const n = 10
	dev := &ring.Deviation{
		Coalition:  []sim.ProcID{n},
		Strategies: map[sim.ProcID]sim.Strategy{n: &badDataFeeder{}},
	}
	res, err := ring.Run(ring.Spec{N: n, Protocol: New(), Deviation: dev, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("origin accepted malformed data")
	}
}

// badDataFeeder sends one huge data value and then stays a pipe.
type badDataFeeder struct{ received int }

func (b *badDataFeeder) Init(*sim.Context) {}
func (b *badDataFeeder) Receive(ctx *sim.Context, _ sim.ProcID, v int64) {
	b.received++
	if b.received == 1 {
		ctx.Send(1 << 40)
		return
	}
	ctx.Send(v)
}

func TestWrongOwnValueReturnAborts(t *testing.T) {
	// A deviator that swaps two data values breaks the own-value return
	// of some honest processor: the execution must fail.
	const n = 12
	dev := &ring.Deviation{
		Coalition:  []sim.ProcID{6},
		Strategies: map[sim.ProcID]sim.Strategy{6: &swapper{}},
	}
	res, err := ring.Run(ring.Spec{N: n, Protocol: New(), Deviation: dev, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("value swap not caught")
	}
}

// swapper behaves like an honest phase processor but swaps its first two
// buffered data values.
type swapper struct {
	received int
	held     []int64
}

func (s *swapper) Init(*sim.Context) {}
func (s *swapper) Receive(ctx *sim.Context, _ sim.ProcID, v int64) {
	s.received++
	if s.received%2 == 0 { // validation: forward
		ctx.Send(v)
		return
	}
	s.held = append(s.held, v)
	switch len(s.held) {
	case 1:
		ctx.Send(0) // our "own" data value
	case 2:
		// hold back the first value one extra round
		ctx.Send(s.held[1])
	default:
		ctx.Send(s.held[len(s.held)-2])
	}
}
