// Package alead implements A-LEADuni, the buffering secret-sharing fair
// leader election protocol for an asynchronous unidirectional ring, due to
// Abraham, Dolev & Halpern and reformulated by Afek et al. (Section 3 and
// Appendix A of Yifrach & Mansour).
//
// Every processor draws a secret d_i. Processor 1, the origin, wakes up
// spontaneously and acts as a pipe: it sends d_1, then forwards messages
// immediately. Every other processor is a buffer of size one: it answers
// each incoming message by releasing the previously buffered value, which
// delays the flow by one round per processor and forces every processor to
// commit to its secret before learning the others. After n rounds every
// processor has seen all n secrets; it verifies that its own secret returned
// as the final message (aborting otherwise, the "punishment" of Section 2)
// and elects the leader indexed by the sum of all secrets modulo n.
//
// Note on the paper's pseudo-code: Appendix A's origin terminates after n−1
// receives, which loses the origin's own value and fails validation even in
// honest executions. This implementation follows the verbal description: the
// origin forwards n−1 messages and consumes its n-th incoming message for
// validation and the final sum only. Honest-run tests pin this behaviour.
package alead

import (
	"repro/internal/ring"
	"repro/internal/sim"
)

// Protocol is A-LEADuni. The zero value is ready to use.
type Protocol struct{}

var _ ring.Protocol = Protocol{}

// New returns the A-LEADuni protocol.
func New() Protocol { return Protocol{} }

// Name implements ring.Protocol.
func (Protocol) Name() string { return "A-LEADuni" }

// BatchSafe marks the protocol's strategies as fully re-initialized by Init,
// so one strategy vector can serve every trial of an engine chunk.
func (Protocol) BatchSafe() {}

// Strategies implements ring.Protocol: processor 1 is the origin, the rest
// are normal (buffering) processors.
func (Protocol) Strategies(n int) ([]sim.Strategy, error) {
	strategies := make([]sim.Strategy, n)
	strategies[0] = &origin{n: n}
	for i := 1; i < n; i++ {
		strategies[i] = &normal{n: n}
	}
	return strategies, nil
}

// origin is processor 1: it wakes up spontaneously, sends its secret, and
// forwards incoming messages without delay.
type origin struct {
	n        int
	secret   int64
	sum      int64
	received int
}

var _ sim.Strategy = (*origin)(nil)

// Init sends the origin's secret, the message that starts the election. It
// re-establishes all execution state, so a strategy object reused across
// batched trials behaves exactly like a fresh one.
func (o *origin) Init(ctx *sim.Context) {
	o.sum, o.received = 0, 0
	o.secret = ctx.Rand().Int63n(int64(o.n))
	ctx.Send(o.secret)
}

// Receive forwards the first n−1 messages immediately and consumes the n-th:
// it must be the origin's own secret, returned after one full circulation.
func (o *origin) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	value = ring.Mod(value, o.n)
	o.received++
	// value is reduced, so the raw sum stays ≤ n² and one reduction inside
	// LeaderFromSum at termination replaces one per message.
	o.sum += value
	if o.received < o.n {
		ctx.Send(value)
		return
	}
	if value != o.secret {
		ctx.Abort()
		return
	}
	ctx.Terminate(ring.LeaderFromSum(o.sum, o.n))
}

// normal is a non-origin processor: a buffer of size one. Its initial buffer
// content is its own secret, so its first outgoing message commits it to d_i
// before it has learned anything.
type normal struct {
	n        int
	secret   int64
	buffer   int64
	sum      int64
	received int
}

var _ sim.Strategy = (*normal)(nil)

// Init draws the secret and stores it in the buffer (Appendix A lines 2-3),
// resetting all execution state for batched strategy reuse.
func (p *normal) Init(ctx *sim.Context) {
	p.sum, p.received = 0, 0
	p.secret = ctx.Rand().Int63n(int64(p.n))
	p.buffer = p.secret
}

// Receive releases the buffered value, buffers the incoming one, and on the
// n-th receive validates that the incoming value is the processor's own
// secret (Appendix A lines 6-16).
func (p *normal) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	value = ring.Mod(value, p.n)
	ctx.Send(p.buffer)
	p.received++
	p.buffer = value
	p.sum += value // reduced once at termination; see origin.Receive
	if p.received < p.n {
		return
	}
	if value != p.secret {
		ctx.Abort()
		return
	}
	ctx.Terminate(ring.LeaderFromSum(p.sum, p.n))
}
