package alead

import (
	"testing"

	"repro/internal/ring"
	"repro/internal/sim"
)

// sendCounter counts sends per processor.
type sendCounter struct {
	sent []int
}

func newSendCounter(n int) *sendCounter { return &sendCounter{sent: make([]int, n+1)} }

func (c *sendCounter) OnSend(from sim.ProcID, _ int, _ sim.ProcID, _ int64) { c.sent[from]++ }
func (c *sendCounter) OnDeliver(sim.ProcID, int, sim.ProcID, int64)         {}
func (c *sendCounter) OnTerminate(sim.ProcID, int64, bool)                  {}

// honestSecrets reproduces the secrets the processors draw for a given seed:
// each draws one Int63n(n) from its derived PRNG at Init.
func honestSecrets(n int, seed int64) []int64 {
	secrets := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		secrets[i] = sim.DeriveRand(seed, sim.ProcID(i)).Int63n(int64(n))
	}
	return secrets
}

func TestHonestElectsSumLeader(t *testing.T) {
	for _, n := range []int{2, 3, 5, 16, 64} {
		for seed := int64(0); seed < 5; seed++ {
			res, err := ring.Run(ring.Spec{N: n, Protocol: New(), Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed {
				t.Fatalf("n=%d seed=%d: honest run failed: %v", n, seed, res.Reason)
			}
			secrets := honestSecrets(n, seed)
			var sum int64
			for i := 1; i <= n; i++ {
				sum += secrets[i]
			}
			want := ring.LeaderFromSum(sum, n)
			if res.Output != want {
				t.Fatalf("n=%d seed=%d: leader = %d, want %d", n, seed, res.Output, want)
			}
		}
	}
}

func TestHonestMessageCounts(t *testing.T) {
	const n = 17
	counter := newSendCounter(n)
	res, err := ring.Run(ring.Spec{N: n, Protocol: New(), Seed: 7, Tracer: counter})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("honest run failed: %v", res.Reason)
	}
	for i := 1; i <= n; i++ {
		if counter.sent[i] != n {
			t.Errorf("processor %d sent %d messages, want n=%d", i, counter.sent[i], n)
		}
	}
	if res.Delivered != n*n {
		t.Errorf("delivered %d messages, want n² = %d", res.Delivered, n*n)
	}
}

func TestScheduleIndependence(t *testing.T) {
	// On a unidirectional ring all oblivious schedules yield the same
	// outcome (Section 2): each processor has a single incoming FIFO link.
	const n = 12
	scheds := []sim.Scheduler{sim.FIFOScheduler{}, sim.LIFOScheduler{}, sim.NewRandomScheduler(99)}
	var outputs []int64
	for _, s := range scheds {
		res, err := ring.Run(ring.Spec{N: n, Protocol: New(), Seed: 5, Scheduler: s})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("failed under %T: %v", s, res.Reason)
		}
		outputs = append(outputs, res.Output)
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("outputs differ across schedules: %v", outputs)
		}
	}
}

func TestHonestUniformity(t *testing.T) {
	// Coarse uniformity check; the statistically rigorous test lives in
	// the stats package tests.
	const (
		n      = 8
		trials = 4000
	)
	dist, err := ring.Trials(ring.Spec{N: n, Protocol: New(), Seed: 321}, trials)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Failures() != 0 {
		t.Fatalf("%d honest trials failed", dist.Failures())
	}
	want := float64(trials) / float64(n)
	for j := 1; j <= n; j++ {
		got := float64(dist.Counts[j])
		if got < want*0.7 || got > want*1.3 {
			t.Errorf("leader %d elected %v times, want about %v", j, got, want)
		}
	}
}
