// Package phaselead implements PhaseAsyncLead, the paper's new
// Θ(√n)-resilient fair leader election protocol for an asynchronous
// unidirectional ring (Section 6, pseudo-code in Appendix E.3).
//
// PhaseAsyncLead extends A-LEADuni with a phase-validation mechanism that
// keeps all processors k-synchronized instead of k²-synchronized. Execution
// proceeds in n rounds; in round r every processor handles one data message
// (the buffered secret-sharing flow of A-LEADuni) and one validation
// message. Processor r is round r's validator: it draws a secret validation
// value v_r ∈ [m] (m = 2n²), sends it right after its round-r data message,
// and aborts unless exactly that value returns after circulating the ring.
// Message types are positional: odd receives are data, even receives are
// validation (Section E.3's remark), and out-of-range payloads abort.
//
// Because synchronization now lets small amounts of information travel
// quickly, the final output is not the sum of the data values but a random
// function f applied to all n data values and the first n−l validation
// values, with l = ⌈10√n⌉: an adversary must learn essentially the whole
// input before it can bias f, and by then it is committed to every outgoing
// message that the honest processors will use (Theorem 6.1).
//
// Note on the paper's pseudo-code: Appendix E.3's origin would emit an
// (n+1)-th data message in round n. As with A-LEADuni, this implementation
// follows the protocol's verbal description: in round n the origin forwards
// the final validation message and terminates, and it also checks that its
// own data value returned in round n. Honest-run tests pin 2n sends per
// processor.
package phaselead

import (
	"fmt"

	"repro/internal/randfunc"
	"repro/internal/ring"
	"repro/internal/sim"
)

// Params configures PhaseAsyncLead. The zero value selects the paper's
// defaults.
type Params struct {
	// L is the validation prefix length fed to f; 0 picks ⌈10√n⌉,
	// clamped to [1, n].
	L int
	// M is the validation alphabet size; 0 picks 2n².
	M int64
	// FuncSeed selects the member of the random function family; it is
	// part of the protocol's definition and must be common knowledge.
	FuncSeed int64
}

// Config is the fully resolved protocol configuration for a ring of size n.
// Attacks and analyses use it to share the exact function and parameters the
// honest processors run with.
type Config struct {
	N int
	L int
	M int64
	F *randfunc.Func
}

// Label returns the 1-based ring position p normalized to [1..n]; data
// values are indexed by the position of their originator ("labels"). The
// hot callers pass p ∈ (−n, n], which the branch-only path handles without
// the division.
func (c Config) Label(p int) int {
	if p > 0 && p <= c.N {
		return p
	}
	if p > -c.N && p <= 0 {
		return p + c.N
	}
	p %= c.N
	if p <= 0 {
		p += c.N
	}
	return p
}

// Output evaluates the protocol's output function on a full data vector
// (1-based positions data[1..n]) and validation vector (vals[1..n]).
func (c Config) Output(data, vals []int64) int64 {
	return c.F.Eval(data[1:c.N+1], vals[1:c.N-c.L+1])
}

// Protocol is PhaseAsyncLead.
type Protocol struct {
	params Params
}

var _ ring.Protocol = Protocol{}

// New returns PhaseAsyncLead with the given parameters.
func New(p Params) Protocol { return Protocol{params: p} }

// NewDefault returns PhaseAsyncLead with the paper's parameters.
func NewDefault() Protocol { return Protocol{} }

// Name implements ring.Protocol.
func (Protocol) Name() string { return "PhaseAsyncLead" }

// BatchSafe marks the protocol's strategies as fully re-initialized by Init
// (they carry an explicit inited flag), so one strategy vector can serve
// every trial of an engine chunk.
func (Protocol) BatchSafe() {}

// DefaultL returns the paper's validation prefix length ⌈10√n⌉, clamped so
// that 1 ≤ n−L < n remains a valid prefix range.
func DefaultL(n int) int {
	l := 1
	for l*l < 100*n { // smallest l with l ≥ 10√n
		l++
	}
	if l > n {
		l = n
	}
	return l
}

// Config resolves the parameters for a ring of size n.
func (p Protocol) Config(n int) (Config, error) {
	if n < 2 {
		return Config{}, fmt.Errorf("phaselead: need n ≥ 2, got %d", n)
	}
	l := p.params.L
	if l == 0 {
		l = DefaultL(n)
	}
	if l < 1 || l > n {
		return Config{}, fmt.Errorf("phaselead: L=%d out of range [1,%d]", l, n)
	}
	m := p.params.M
	if m == 0 {
		m = 2 * int64(n) * int64(n)
	}
	if m < int64(n) {
		return Config{}, fmt.Errorf("phaselead: M=%d must be at least n=%d", m, n)
	}
	f, err := randfunc.New(p.params.FuncSeed, n)
	if err != nil {
		return Config{}, err
	}
	return Config{N: n, L: l, M: m, F: f}, nil
}

// Strategies implements ring.Protocol.
func (p Protocol) Strategies(n int) ([]sim.Strategy, error) {
	cfg, err := p.Config(n)
	if err != nil {
		return nil, err
	}
	strategies := make([]sim.Strategy, n)
	// One backing array serves every processor's data/vals tables: a single
	// allocation per trial instead of 2n, which matters because trial
	// batches rebuild the strategy vector for every execution. The backing
	// is freshly zeroed, exactly like the per-processor make calls it
	// replaces.
	backing := make([]int64, 2*n*(n+1))
	carve := func() (data, vals []int64) {
		data, vals = backing[:n+1:n+1], backing[n+1:2*(n+1):2*(n+1)]
		backing = backing[2*(n+1):]
		return data, vals
	}
	o := &origin{cfg: cfg}
	o.data, o.vals = carve()
	strategies[0] = o
	for i := 1; i < n; i++ {
		p := &normal{cfg: cfg, id: i + 1}
		p.data, p.vals = carve()
		strategies[i] = p
	}
	return strategies, nil
}

// normal is a non-origin PhaseAsyncLead processor (Appendix E.3, normal
// code). It delays data by one round via its buffer, forwards validation
// values immediately, validates its own round, and finally applies f.
type normal struct {
	cfg      Config
	id       int
	d, v     int64
	buffer   int64
	round    int
	received int
	inited   bool
	data     []int64 // by label, 1..n
	vals     []int64 // by round, 1..n
	// acc is f's XOR-accumulator maintained incrementally: every slot of
	// data[1..n] and vals[1..n−l] is written exactly once before
	// termination, so folding each write's coordinate mix as it happens
	// makes the final output a single Finalize instead of an O(n)
	// re-evaluation per processor (which made f cost O(n²) per execution).
	acc uint64
}

var _ sim.Strategy = (*normal)(nil)

func (p *normal) Init(ctx *sim.Context) {
	p.d = ctx.Rand().Int63n(int64(p.cfg.N))
	p.v = ctx.Rand().Int63n(p.cfg.M)
	p.buffer = p.d
	if p.data == nil {
		// Strategies built outside Protocol.Strategies (tests, deviations)
		// have no pre-carved tables.
		p.data = make([]int64, p.cfg.N+1)
		p.vals = make([]int64, p.cfg.N+1)
	} else if p.inited {
		// Init must be idempotent: a strategy object re-run on a Reset
		// network starts from zeroed state, exactly like a fresh one.
		// First-time Inits skip this — carved tables arrive zeroed.
		clear(p.data)
		clear(p.vals)
		p.round, p.received = 0, 0
	}
	p.inited = true
	p.data[p.id] = p.d
	p.acc = p.cfg.F.CoordData(p.id, p.d)
}

func (p *normal) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	p.received++
	if p.received%2 == 1 {
		p.receiveData(ctx, value)
	} else {
		p.receiveValidation(ctx, value)
	}
}

func (p *normal) receiveData(ctx *sim.Context, value int64) {
	if value < 0 || value >= int64(p.cfg.N) {
		ctx.Abort() // a data message outside [n] is a visible deviation
		return
	}
	ctx.Send(p.buffer)
	p.round++
	p.buffer = value
	lbl := p.cfg.Label(p.id - p.round)
	p.data[lbl] = value
	if p.round < p.cfg.N {
		p.acc ^= p.cfg.F.CoordData(lbl, value)
	}
	// Round n rewrites slot id with the processor's own returning value,
	// which line 16 requires to equal d_i — an identity write whose
	// coordinate is already in the accumulator from Init.
	if p.round == p.id {
		// This processor is the round's validator: commit to v_i now.
		p.vals[p.id] = p.v
		if p.id <= p.cfg.N-p.cfg.L {
			p.acc ^= p.cfg.F.CoordVal(p.id, p.v)
		}
		ctx.Send(p.v)
	}
	if p.round == p.cfg.N && value != p.d {
		ctx.Abort() // own data value failed to return (line 16)
	}
}

func (p *normal) receiveValidation(ctx *sim.Context, value int64) {
	if value < 0 || value >= p.cfg.M {
		ctx.Abort()
		return
	}
	if p.round == p.id {
		if value != p.v {
			ctx.Abort() // phase validation failed (line 19)
			return
		}
	} else {
		p.vals[p.round] = value
		if p.round <= p.cfg.N-p.cfg.L {
			p.acc ^= p.cfg.F.CoordVal(p.round, value)
		}
		ctx.Send(value) // forward without delay
	}
	if p.round == p.cfg.N {
		ctx.Terminate(p.cfg.F.Finalize(p.acc))
	}
}

// origin is processor 1 (Appendix E.3, origin code): it initiates every
// round, acts as a data pipe paced by the validation flow, and validates
// round 1.
type origin struct {
	cfg      Config
	d, v     int64
	buffer   int64
	round    int
	received int
	inited   bool
	data     []int64
	vals     []int64
	acc      uint64 // incremental f accumulator; see normal.acc
}

var _ sim.Strategy = (*origin)(nil)

func (o *origin) Init(ctx *sim.Context) {
	o.d = ctx.Rand().Int63n(int64(o.cfg.N))
	o.v = ctx.Rand().Int63n(o.cfg.M)
	if o.data == nil {
		o.data = make([]int64, o.cfg.N+1)
		o.vals = make([]int64, o.cfg.N+1)
	} else if o.inited {
		// See normal.Init: idempotence under strategy reuse.
		clear(o.data)
		clear(o.vals)
		o.buffer, o.received = 0, 0
	}
	o.inited = true
	o.data[1] = o.d
	o.vals[1] = o.v
	o.acc = o.cfg.F.CoordData(1, o.d)
	if 1 <= o.cfg.N-o.cfg.L {
		o.acc ^= o.cfg.F.CoordVal(1, o.v)
	}
	o.round = 1
	ctx.Send(o.d) // open round 1
	ctx.Send(o.v) // origin is round 1's validator
}

func (o *origin) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	o.received++
	if o.received%2 == 1 {
		o.receiveData(ctx, value)
	} else {
		o.receiveValidation(ctx, value)
	}
}

func (o *origin) receiveData(ctx *sim.Context, value int64) {
	if value < 0 || value >= int64(o.cfg.N) {
		ctx.Abort()
		return
	}
	o.buffer = value
	lbl := o.cfg.Label(1 - o.round)
	o.data[lbl] = value
	if o.round < o.cfg.N {
		o.acc ^= o.cfg.F.CoordData(lbl, value)
	}
	// Round n's write is slot 1's identity rewrite, accumulated in Init.
	if o.round == o.cfg.N && value != o.d {
		ctx.Abort() // own data value failed to return
	}
}

func (o *origin) receiveValidation(ctx *sim.Context, value int64) {
	if value < 0 || value >= o.cfg.M {
		ctx.Abort()
		return
	}
	if o.round == 1 {
		if value != o.v {
			ctx.Abort()
			return
		}
	} else {
		o.vals[o.round] = value
		if o.round <= o.cfg.N-o.cfg.L {
			o.acc ^= o.cfg.F.CoordVal(o.round, value)
		}
		ctx.Send(value)
	}
	if o.round == o.cfg.N {
		ctx.Terminate(o.cfg.F.Finalize(o.acc))
		return
	}
	ctx.Send(o.buffer) // open the next round
	o.round++
}
