package phaselead

import (
	"testing"

	"repro/internal/ring"
	"repro/internal/sim"
)

// counter tracks per-processor sends and deliveries.
type counter struct {
	sent, recv []int
}

func newCounter(n int) *counter {
	return &counter{sent: make([]int, n+1), recv: make([]int, n+1)}
}

func (c *counter) OnSend(from sim.ProcID, _ int, _ sim.ProcID, _ int64) { c.sent[from]++ }
func (c *counter) OnDeliver(to sim.ProcID, _ int, _ sim.ProcID, _ int64) {
	c.recv[to]++
}
func (c *counter) OnTerminate(sim.ProcID, int64, bool) {}

func TestHonestRunSucceeds(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 16, 50, 121} {
		for seed := int64(0); seed < 3; seed++ {
			res, err := ring.Run(ring.Spec{N: n, Protocol: NewDefault(), Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed {
				t.Fatalf("n=%d seed=%d: honest run failed: %v", n, seed, res.Reason)
			}
			if res.Output < 1 || res.Output > int64(n) {
				t.Fatalf("n=%d seed=%d: output %d out of range", n, seed, res.Output)
			}
		}
	}
}

func TestHonestMessageCounts(t *testing.T) {
	const n = 13
	c := newCounter(n)
	res, err := ring.Run(ring.Spec{N: n, Protocol: NewDefault(), Seed: 3, Tracer: c})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("honest run failed: %v", res.Reason)
	}
	for i := 1; i <= n; i++ {
		if c.sent[i] != 2*n {
			t.Errorf("processor %d sent %d, want 2n=%d", i, c.sent[i], 2*n)
		}
		if c.recv[i] != 2*n {
			t.Errorf("processor %d received %d, want 2n=%d", i, c.recv[i], 2*n)
		}
	}
	if res.Delivered != 2*n*n {
		t.Errorf("delivered %d, want 2n²=%d", res.Delivered, 2*n*n)
	}
}

func TestOutputMatchesFunction(t *testing.T) {
	// The common output must equal f applied to the true data values and
	// the true first n−l validation values, reconstructed from the seeds.
	const n = 19
	proto := New(Params{L: 5, FuncSeed: 77})
	cfg, err := proto.Config(n)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		res, err := ring.Run(ring.Spec{N: n, Protocol: proto, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("seed=%d: failed: %v", seed, res.Reason)
		}
		data := make([]int64, n+1)
		vals := make([]int64, n+1)
		for i := 1; i <= n; i++ {
			rng := sim.DeriveRand(seed, sim.ProcID(i))
			data[i] = rng.Int63n(int64(n))
			vals[i] = rng.Int63n(cfg.M)
		}
		if want := cfg.Output(data, vals); res.Output != want {
			t.Fatalf("seed=%d: output %d, want f(...)=%d", seed, res.Output, want)
		}
	}
}

func TestScheduleIndependence(t *testing.T) {
	const n = 11
	var first int64
	for i, s := range []sim.Scheduler{sim.FIFOScheduler{}, sim.LIFOScheduler{}, sim.NewRandomScheduler(4)} {
		res, err := ring.Run(ring.Spec{N: n, Protocol: NewDefault(), Seed: 8, Scheduler: s})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("failed under %T: %v", s, res.Reason)
		}
		if i == 0 {
			first = res.Output
		} else if res.Output != first {
			t.Fatalf("outputs differ across schedules: %d vs %d", res.Output, first)
		}
	}
}

func TestHonestUniformity(t *testing.T) {
	const (
		n      = 8
		trials = 4000
	)
	dist, err := ring.Trials(ring.Spec{N: n, Protocol: NewDefault(), Seed: 99}, trials)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Failures() != 0 {
		t.Fatalf("%d honest trials failed", dist.Failures())
	}
	want := float64(trials) / float64(n)
	for j := 1; j <= n; j++ {
		got := float64(dist.Counts[j])
		if got < want*0.7 || got > want*1.3 {
			t.Errorf("leader %d elected %v times, want ≈ %v", j, got, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Params{L: -1}).Config(10); err == nil {
		t.Error("negative L accepted")
	}
	if _, err := New(Params{L: 11}).Config(10); err == nil {
		t.Error("L > n accepted")
	}
	if _, err := New(Params{M: 5}).Config(10); err == nil {
		t.Error("M < n accepted")
	}
	if _, err := NewDefault().Config(1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestDefaultL(t *testing.T) {
	tests := []struct{ n, want int }{
		{4, 4},     // clamped to n
		{100, 100}, // 10√100 = 100 = n
		{400, 200}, // 10·20
		{10000, 1000},
	}
	for _, tt := range tests {
		if got := DefaultL(tt.n); got != tt.want {
			t.Errorf("DefaultL(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestMalformedMessageAborts(t *testing.T) {
	// A single deviator sending an out-of-range data value must be caught:
	// its honest successor aborts and the outcome is FAIL.
	const n = 9
	dev := &ring.Deviation{
		Coalition:  []sim.ProcID{4},
		Strategies: map[sim.ProcID]sim.Strategy{4: &garbageSender{}},
	}
	res, err := ring.Run(ring.Spec{N: n, Protocol: NewDefault(), Deviation: dev, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("garbage sender not caught")
	}
}

// garbageSender emits an out-of-range value on first contact and then stalls.
type garbageSender struct{ fired bool }

func (g *garbageSender) Init(*sim.Context) {}
func (g *garbageSender) Receive(ctx *sim.Context, _ sim.ProcID, _ int64) {
	if !g.fired {
		g.fired = true
		ctx.Send(1 << 40)
	}
}
