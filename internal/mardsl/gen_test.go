package mardsl

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/protocols/basiclead"
	"repro/internal/ring"
)

func TestGeneratedSpecsAlwaysLoad(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		adv := GenerateAdversary(seed)
		prog, err := Load(adv)
		if err != nil {
			t.Fatalf("adversary seed %d: %v\n%s", seed, err, adv)
		}
		if prog.Kind != KindAdversary || prog.Use != "basic-lead" {
			t.Fatalf("adversary seed %d: bad program %+v", seed, prog)
		}
		want := fmt.Sprintf("gen-adv-%016x", uint64(seed))
		if prog.Name != want {
			t.Fatalf("adversary seed %d: name %q, want %q", seed, prog.Name, want)
		}

		proto := GenerateProtocol(seed)
		pprog, err := Load(proto)
		if err != nil {
			t.Fatalf("protocol seed %d: %v\n%s", seed, err, proto)
		}
		if pprog.Kind != KindProtocol {
			t.Fatalf("protocol seed %d: bad kind %q", seed, pprog.Kind)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		if GenerateAdversary(seed) != GenerateAdversary(seed) {
			t.Fatalf("GenerateAdversary(%d) is not deterministic", seed)
		}
		if GenerateProtocol(seed) != GenerateProtocol(seed) {
			t.Fatalf("GenerateProtocol(%d) is not deterministic", seed)
		}
	}
	if GenerateAdversary(1) == GenerateAdversary(2) {
		t.Fatalf("distinct seeds collapsed to one adversary spec")
	}
	if GenerateProtocol(1) == GenerateProtocol(2) {
		t.Fatalf("distinct seeds collapsed to one protocol spec")
	}
}

func TestGeneratedProtocolsRunDeterministically(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog, err := Load(GenerateProtocol(seed))
		if err != nil {
			t.Fatal(err)
		}
		proto, err := prog.RingProtocol()
		if err != nil {
			t.Fatal(err)
		}
		spec := ring.Spec{N: 6, Protocol: proto, Seed: 7}
		a, err := ring.Trials(spec, 40)
		if err != nil {
			t.Fatalf("protocol seed %d: %v", seed, err)
		}
		b, err := ring.Trials(spec, 40)
		if err != nil {
			t.Fatalf("protocol seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("protocol seed %d: repeated batches differ", seed)
		}
	}
}

func TestGeneratedAdversariesRunAgainstBasicLead(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		prog, err := Load(GenerateAdversary(seed))
		if err != nil {
			t.Fatal(err)
		}
		atk, err := prog.RingAttack()
		if err != nil {
			t.Fatal(err)
		}
		// n=10 covers every generated placement (≤5) and target (≤9).
		a, err := ring.AttackTrials(10, basiclead.New(), atk, prog.Defaults.Target, 7, 40)
		if err != nil {
			t.Fatalf("adversary seed %d: %v", seed, err)
		}
		b, err := ring.AttackTrials(10, basiclead.New(), atk, prog.Defaults.Target, 7, 40)
		if err != nil {
			t.Fatalf("adversary seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("adversary seed %d: repeated batches differ", seed)
		}
	}
}
