package mardsl

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/ring"
	"repro/internal/sim"
)

// runSpec compiles a protocol spec and executes one election.
func runSpec(t *testing.T, src string, n int) sim.Result {
	t.Helper()
	prog, err := Load(src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	proto, err := prog.RingProtocol()
	if err != nil {
		t.Fatalf("ring protocol: %v", err)
	}
	res, err := ring.Run(ring.Spec{N: n, Protocol: proto, Seed: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// header wraps a state body into a minimal protocol spec.
func header(body string) string {
	return "spec t\nkind protocol\nreg x\n" + body
}

func TestMachineSemantics(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		n      int
		output int64
		reason sim.FailReason
	}{
		{
			// Euclidean remainder of a negative value.
			name: "negative mod",
			src: header(`state run:
  init:
    set x = (0 - 5) % n
    send x
  on recv:
    terminate x + 1
`),
			n: 4, output: 4,
		},
		{
			// rand of a non-positive bound yields 0 without drawing.
			name: "rand non-positive",
			src: header(`state run:
  init:
    send rand(0 - 3)
  on recv:
    terminate msg + 1
`),
			n: 3, output: 1,
		},
		{
			// replay clamps its range to the buffer.
			name: "replay clamp",
			src: header(`state run:
  init:
    push 7
    push 8
    replay (0 - 2) 9
  on recv when received < 2:
    drop
  on recv:
    terminate msg
`),
			n: 2, output: 8,
		},
		{
			// goto switches the receive table between messages.
			name: "goto",
			src: header(`state a:
  init:
    send self
  on recv:
    send msg
    goto b
state b:
  on recv:
    terminate msg % 1 + 2
`),
			n: 3, output: 2,
		},
		{
			name: "abort",
			src: header(`state run:
  init:
    send 1
  on recv:
    abort
`),
			n: 2, reason: sim.FailAbort,
		},
		{
			name: "drop stalls",
			src: header(`state run:
  init:
    send 1
  on recv:
    drop
`),
			n: 2, reason: sim.FailStall,
		},
		{
			name: "disagreement",
			src: header(`state run:
  init:
    send 1
  on recv:
    terminate self
`),
			n: 2, reason: sim.FailMismatch,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := runSpec(t, tc.src, tc.n)
			if tc.reason != sim.FailNone {
				if !res.Failed || res.Reason != tc.reason {
					t.Fatalf("want failure %v, got %+v", tc.reason, res)
				}
				return
			}
			if res.Failed {
				t.Fatalf("unexpected failure: %+v", res)
			}
			if res.Output != tc.output {
				t.Fatalf("want output %d, got %d", tc.output, res.Output)
			}
		})
	}
}

func TestExpressionEvaluation(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"(3 * 5 + 1) % 7", 2},
		{"leader(6)", 3},    // emod(6, 4) + 1
		{"sumfor(1)", 0},    // emod(0, 4)
		{"- 5 % n", 3},      // unary minus binds tighter than %
		{"2 - 3 - 4", -5},   // left-associative subtraction
		{"2 + 3 * 4", 14},   // precedence
		{"(2 + 3) * 4", 20}, // parentheses
		{"7 % (2 - 2)", 0},  // total mod: zero modulus yields 0
		{"7 % (1 - 4)", 0},  // total mod: negative modulus yields 0
		{"rand(1)", 0},      // the only value in [0, 1)
	}
	for _, tc := range cases {
		t.Run(tc.expr, func(t *testing.T) {
			src := header(`state run:
  init:
    send 1
  on recv:
    terminate ` + tc.expr + "\n")
			res := runSpec(t, src, 4)
			if res.Failed {
				t.Fatalf("unexpected failure: %+v", res)
			}
			if res.Output != tc.want {
				t.Fatalf("%s = %d, want %d", tc.expr, res.Output, tc.want)
			}
		})
	}
}

func TestAdapterKindMismatch(t *testing.T) {
	proto, err := Load(basicLeadSrc)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := Load(basicSingleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proto.RingAttack(); err == nil {
		t.Errorf("RingAttack on a protocol program should error")
	}
	if _, err := adv.RingProtocol(); err == nil {
		t.Errorf("RingProtocol on an adversary program should error")
	}
}

func TestAttackPlanBounds(t *testing.T) {
	prog, err := Load(basicSingleSrc)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := prog.RingAttack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atk.Plan(8, 0, 0); err == nil {
		t.Errorf("target 0 should be rejected")
	}
	if _, err := atk.Plan(8, 99, 0); err == nil {
		t.Errorf("target beyond n should be rejected")
	}
	if _, err := atk.Plan(1, 1, 0); err == nil {
		t.Errorf("coalition position beyond n should be rejected")
	}
	dev, err := atk.Plan(8, 3, 0)
	if err != nil {
		t.Fatalf("feasible plan rejected: %v", err)
	}
	if err := dev.Validate(8); err != nil {
		t.Errorf("planned deviation invalid: %v", err)
	}
}

func TestCompiledTrialsDeterministic(t *testing.T) {
	prog, err := Load(basicLeadSrc)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := prog.RingProtocol()
	if err != nil {
		t.Fatal(err)
	}
	spec := ring.Spec{N: 6, Protocol: proto, Seed: 11}
	a, err := ring.Trials(spec, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ring.Trials(spec, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeated trial batches differ:\n%+v\n%+v", a, b)
	}
}

func TestProgramLimitsCompile(t *testing.T) {
	// A spec at the register limit still compiles and runs.
	var b strings.Builder
	b.WriteString("spec t\nkind protocol\nreg")
	for i := 0; i < MaxRegs; i++ {
		b.WriteString(" r")
		b.WriteByte('a' + byte(i))
	}
	b.WriteString("\nstate run:\n  init:\n    set ra = 1\n    send ra\n  on recv:\n    terminate rp + 1\n")
	res := runSpec(t, b.String(), 3)
	if res.Failed || res.Output != 1 {
		t.Fatalf("max-register spec misbehaved: %+v", res)
	}
}
