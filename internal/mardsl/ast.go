package mardsl

// Hard limits on spec shape. They bound every loop in the parser, the
// validator, and the compiled machine, so arbitrary (fuzzed) input cannot
// make any stage allocate or recurse unboundedly.
const (
	// MaxSpecBytes caps the source text size.
	MaxSpecBytes = 64 << 10
	// MaxStates caps the number of states.
	MaxStates = 64
	// MaxClauses caps the receive clauses per state.
	MaxClauses = 16
	// MaxActions caps the actions per clause.
	MaxActions = 32
	// MaxRegs caps the named registers.
	MaxRegs = 16
	// MaxPlace caps an adversary's coalition positions.
	MaxPlace = 8
	// MaxConds caps the conditions of one guard.
	MaxConds = 8

	maxLineTokens = 128
	maxTokenLen   = 64
	maxExprDepth  = 32
	maxParamValue = 1 << 20
)

// Kind distinguishes the two spec roles.
type Kind string

// The spec kinds.
const (
	// KindProtocol is an honest symmetric protocol: every ring position
	// runs the spec's machine.
	KindProtocol Kind = "protocol"
	// KindAdversary is a deviation: the machines run only at the spec's
	// coalition positions, against the protocol named by Use.
	KindAdversary Kind = "adversary"
)

// Defaults are the registration defaults a spec carries into the scenario
// catalog. Zero fields fall back to the registrar's own defaults.
type Defaults struct {
	// N is the default ring size.
	N int
	// Trials is the default trial count.
	Trials int
	// MinN is the smallest supported ring size.
	MinN int
	// K is the default coalition size exposed to deviation sweeps.
	K int
	// Target is the leader an adversary spec forces by default.
	Target int64
}

// Spec is a parsed MAR document.
type Spec struct {
	// Name is the spec slug; it becomes the protocol or family name.
	Name string
	// Kind is the spec role.
	Kind Kind
	// Topology is the communication graph family; only "ring".
	Topology string
	// Use names the protocol an adversary spec deviates from.
	Use string
	// Place lists an adversary's coalition positions, strictly increasing.
	Place []int
	// Defaults are the registration defaults.
	Defaults Defaults
	// Uniform marks a protocol spec whose honest outcome is uniform.
	Uniform bool
	// Regs lists the named registers, all zero-initialized on wake-up.
	Regs []string
	// States lists the machine states; index 0 is the start state.
	States []*State
}

// State is one machine state.
type State struct {
	// Name identifies the state in goto actions.
	Name string
	// Line is the source line of the state header.
	Line int
	// Init is the wake-up clause; nil when the state has none. Only the
	// start state may carry one.
	Init *Clause
	// Recv lists the receive clauses in source order; on a message the
	// first clause whose guard holds runs.
	Recv []*Clause
}

// Clause is one guarded action list.
type Clause struct {
	// Line is the source line of the clause header.
	Line int
	// Guard lists conditions that must all hold; empty means catch-all.
	Guard []Cond
	// Actions run in order when the guard holds.
	Actions []Action
}

// CmpOp is a guard comparison operator.
type CmpOp uint8

// The comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// Cond is one comparison of a guard.
type Cond struct {
	// Left and Right are the compared expressions.
	Left, Right *Expr
	// Op is the comparison.
	Op CmpOp
}

// ActionKind discriminates Action.
type ActionKind uint8

// The action kinds.
const (
	// ActSet stores A into register Reg.
	ActSet ActionKind = iota
	// ActSend sends A on the outgoing ring link.
	ActSend
	// ActPush appends A to the replay buffer.
	ActPush
	// ActReplay sends replay-buffer entries [A, B), clamped to the buffer.
	ActReplay
	// ActGoto switches the machine to state State.
	ActGoto
	// ActTerminate terminates with output A.
	ActTerminate
	// ActAbort terminates with output ⊥.
	ActAbort
	// ActDrop consumes the message and does nothing.
	ActDrop
)

// Action is one step of a clause.
type Action struct {
	// Kind discriminates the variant.
	Kind ActionKind
	// Line is the source line.
	Line int
	// Reg is the target register of ActSet.
	Reg string
	// A and B are the operand expressions (see ActionKind).
	A, B *Expr
	// State is the target state of ActGoto.
	State string
}

// ExprOp discriminates Expr.
type ExprOp uint8

// The expression node kinds.
const (
	// EConst is the literal Val.
	EConst ExprOp = iota
	// EIdent reads the register or builtin named Ident.
	EIdent
	// EAdd, ESub, EMul combine L and R with int64 wraparound.
	EAdd
	ESub
	EMul
	// EMod is the Euclidean remainder L mod R, 0 when R ≤ 0.
	EMod
	// ENeg negates L.
	ENeg
	// ERand draws uniformly from [0, L) via the processor stream, 0 when
	// L ≤ 0.
	ERand
	// ELeader is ring.LeaderFromSum(L, n).
	ELeader
	// ESumfor is ring.SumForLeader(L, n).
	ESumfor
)

// Expr is one expression node.
type Expr struct {
	// Op discriminates the variant.
	Op ExprOp
	// Val is the literal value of EConst.
	Val int64
	// Ident is the name read by EIdent.
	Ident string
	// L and R are the operands.
	L, R *Expr
}

// keywords are the directive and operator words; they cannot name specs,
// registers, or states.
var keywords = map[string]bool{
	"spec": true, "kind": true, "topology": true, "use": true,
	"place": true, "defaults": true, "uniform": true, "reg": true,
	"state": true, "init": true, "on": true, "recv": true, "when": true,
	"and": true, "set": true, "send": true, "push": true, "replay": true,
	"goto": true, "terminate": true, "abort": true, "drop": true,
	"rand": true, "leader": true, "sumfor": true,
	"protocol": true, "adversary": true,
}

// builtins are the readable environment values.
var builtins = map[string]bool{
	"n": true, "self": true, "received": true, "msg": true, "target": true,
}

// reserved reports whether the word cannot be used as a user name.
func reserved(word string) bool { return keywords[word] || builtins[word] }
