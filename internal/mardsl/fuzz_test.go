package mardsl

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/protocols/basiclead"
	"repro/internal/ring"
)

// fuzzSeeds is the shared seed corpus: the embedded twins, generator
// output from both grammars, and a few near-miss shapes.
func fuzzSeeds() []string {
	seeds := []string{
		basicLeadSrc,
		basicSingleSrc,
		"spec t\nkind protocol\nstate s:\n  init:\n    terminate 1\n",
		"spec t\nkind protocol\nreg x\nstate s:\n  on recv when msg % n == 0 and received < n:\n    set x = rand(n)\n    send x\n  on recv:\n    terminate leader(x)\n",
		"spec t\nkind adversary\nuse basic-lead\nplace 2 5\nstate s:\n  on recv:\n    replay (0 - 1) received\n    abort\n",
		"spec t\nkind protocol\nstate s:\n  on recv:\n    send 1 +\n",
		"state s:\n  on recv:\n    drop\n",
	}
	for seed := int64(1); seed <= 3; seed++ {
		seeds = append(seeds, GenerateAdversary(seed), GenerateProtocol(seed))
	}
	return seeds
}

// FuzzMARParse feeds arbitrary text through the whole front end: Parse,
// Validate, and Compile must never panic, and a validated spec must always
// compile.
func FuzzMARParse(f *testing.F) {
	for _, src := range fuzzSeeds() {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse(src)
		if err != nil {
			return
		}
		if err := Validate(spec); err != nil {
			return
		}
		if _, err := Compile(spec); err != nil {
			t.Fatalf("validated spec failed to compile: %v\n%s", err, src)
		}
	})
}

// FuzzMARCompileRun executes every loadable spec on the arena hot path:
// protocol machines drive full honest trial batches, adversary machines
// run against the native Basic-LEAD, and both must complete without
// panicking and reproduce the same distribution when run twice.
func FuzzMARCompileRun(f *testing.F) {
	for _, src := range fuzzSeeds() {
		f.Add(src)
	}
	ctx := context.Background()
	opts := ring.TrialOptions{Workers: 1}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Load(src)
		if err != nil {
			return
		}
		run := func() (*ring.Distribution, error) {
			if prog.Kind == KindProtocol {
				proto, err := prog.RingProtocol()
				if err != nil {
					t.Fatalf("ring protocol: %v", err)
				}
				spec := ring.Spec{N: 5, Protocol: proto, Seed: 7, StepLimit: 2048}
				return ring.TrialsOpts(ctx, spec, 6, opts)
			}
			atk, err := prog.RingAttack()
			if err != nil {
				t.Fatalf("ring attack: %v", err)
			}
			target := prog.Defaults.Target
			if target == 0 {
				target = 2
			}
			return ring.AttackTrialsOpts(ctx, 9, basiclead.New(), atk, target, 7, 6, opts)
		}
		a, err := run()
		if err != nil {
			var pe *ring.PlanError
			if errors.As(err, &pe) {
				return // infeasible placement or target for this n
			}
			t.Fatalf("run: %v", err)
		}
		b, err := run()
		if err != nil {
			t.Fatalf("second run: %v", err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("repeated runs diverge:\n%+v\n%+v", a, b)
		}
	})
}
