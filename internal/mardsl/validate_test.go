package mardsl

import (
	"strings"
	"testing"
)

func TestValidateErrors(t *testing.T) {
	cases := map[string]string{
		"adversary without use": "spec a\nkind adversary\nstate s:\n  on recv:\n    drop\n",
		"uniform adversary":     "spec a\nkind adversary\nuse p\nuniform\nstate s:\n  on recv:\n    drop\n",
		"protocol with use":     "spec a\nkind protocol\nuse p\nstate s:\n  on recv:\n    drop\n",
		"protocol with place":   "spec a\nkind protocol\nplace 2\nstate s:\n  on recv:\n    drop\n",
		"protocol with target":  "spec a\nkind protocol\ndefaults target=2\nstate s:\n  on recv:\n    drop\n",
		"place not increasing":  "spec a\nkind adversary\nuse p\nplace 3 2\nstate s:\n  on recv:\n    drop\n",
		"missing kind":          "spec a\nstate s:\n  on recv:\n    drop\n",
		"no states":             "spec a\nkind protocol\n",
		"unknown identifier":    "spec a\nkind protocol\nstate s:\n  on recv:\n    send bogus\n",
		"set undeclared reg":    "spec a\nkind protocol\nstate s:\n  on recv:\n    set x = 3\n",
		"goto unknown state":    "spec a\nkind protocol\nstate s:\n  on recv:\n    goto elsewhere\n",
		"msg in init":           "spec a\nkind protocol\nstate s:\n  init:\n    send msg\n  on recv:\n    drop\n",
		"target in protocol":    "spec a\nkind protocol\nstate s:\n  on recv:\n    send target\n",
		"control not last":      "spec a\nkind protocol\nstate s:\n  on recv:\n    abort\n    send 1\n",
		"init in later state":   "spec a\nkind protocol\nstate s:\n  on recv:\n    goto u\nstate u:\n  init:\n    drop\n  on recv:\n    drop\n",
		"unreachable state":     "spec a\nkind protocol\nstate s:\n  on recv:\n    drop\nstate island:\n  on recv:\n    drop\n",
		"unguarded receives":    "spec a\nkind protocol\nstate s:\n  init:\n    send 1\n",
		"dead clauses":          "spec a\nkind protocol\nstate s:\n  init:\n    goto u\n  on recv:\n    drop\nstate u:\n  on recv:\n    drop\n",
		"non-exhaustive":        "spec a\nkind protocol\nstate s:\n  on recv when msg == 0:\n    drop\n",
		"mid catch-all":         "spec a\nkind protocol\nstate s:\n  on recv:\n    drop\n  on recv when msg == 0:\n    drop\n",
	}
	for name, src := range cases {
		spec, err := Parse(src)
		if err != nil {
			t.Errorf("%s: should parse, got %v", name, err)
			continue
		}
		if err := Validate(spec); err == nil {
			t.Errorf("%s: validate unexpectedly succeeded", name)
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	cases := map[string]string{
		"basic lead":             basicLeadSrc,
		"basic single":           basicSingleSrc,
		"terminating start init": "spec a\nkind protocol\nstate s:\n  init:\n    terminate 1\n",
		"goto chain":             "spec a\nkind protocol\nstate s:\n  on recv:\n    goto u\nstate u:\n  on recv:\n    terminate 1\n",
	}
	for name, src := range cases {
		if _, err := Load(src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// exhaustiveOracle re-derives the guard-exhaustiveness property straight
// from the parsed AST, independently of the validator's own walk: in every
// state, exactly the last receive clause is a catch-all.
func exhaustiveOracle(s *Spec) bool {
	for _, st := range s.States {
		for i, cl := range st.Recv {
			if (len(cl.Guard) == 0) != (i == len(st.Recv)-1) {
				return false
			}
		}
	}
	return true
}

// specTokens lexes a spec into per-line token lists, the substrate the
// mutation test perturbs.
func specTokens(t *testing.T, src string) [][]string {
	t.Helper()
	var lines [][]string
	for i, raw := range strings.Split(src, "\n") {
		if j := strings.IndexByte(raw, '#'); j >= 0 {
			raw = raw[:j]
		}
		toks, err := lexLine(i+1, raw)
		if err != nil {
			t.Fatalf("lex line %d: %v", i+1, err)
		}
		if len(toks) > 0 {
			lines = append(lines, toks)
		}
	}
	return lines
}

// assemble joins token lines back into source text. Tokens are
// whitespace-separated, which the lexer treats identically to the original
// spacing.
func assemble(lines [][]string) string {
	parts := make([]string, len(lines))
	for i, toks := range lines {
		parts[i] = strings.Join(toks, " ")
	}
	return strings.Join(parts, "\n")
}

// mutate applies f to a deep copy of lines and returns the reassembled
// source.
func mutate(lines [][]string, f func([][]string) [][]string) string {
	cp := make([][]string, len(lines))
	for i, toks := range lines {
		cp[i] = append([]string(nil), toks...)
	}
	return assemble(f(cp))
}

// TestValidatorRejectsExhaustivenessMutants is the mutation property: every
// single-token mutation of a valid spec that still parses but breaks guard
// exhaustiveness (per the independent oracle) must be rejected by Validate.
// Mutation classes: replace one token with another from the spec's own
// vocabulary, delete one token, and delete one whole line (deleting a
// catch-all clause header folds its actions into the preceding guarded
// clause — the classic way to lose exhaustiveness without losing
// parseability).
func TestValidatorRejectsExhaustivenessMutants(t *testing.T) {
	for _, src := range []string{basicLeadSrc, basicSingleSrc} {
		lines := specTokens(t, src)

		// The reassembled original must still be a valid spec, or the
		// harness itself is broken.
		base, err := Parse(assemble(lines))
		if err != nil {
			t.Fatalf("reassembled original does not parse: %v", err)
		}
		if !exhaustiveOracle(base) {
			t.Fatalf("oracle rejects the original spec")
		}
		if err := Validate(base); err != nil {
			t.Fatalf("reassembled original does not validate: %v", err)
		}

		vocabSet := map[string]bool{"when": true, "and": true, "==": true, "<": true, "0": true}
		for _, toks := range lines {
			for _, tok := range toks {
				vocabSet[tok] = true
			}
		}
		var vocab []string
		for tok := range vocabSet {
			vocab = append(vocab, tok)
		}

		var mutants []string
		for i := range lines {
			i := i
			mutants = append(mutants, mutate(lines, func(cp [][]string) [][]string {
				return append(cp[:i], cp[i+1:]...)
			}))
			for j := range lines[i] {
				j := j
				mutants = append(mutants, mutate(lines, func(cp [][]string) [][]string {
					cp[i] = append(cp[i][:j], cp[i][j+1:]...)
					return cp
				}))
				for _, tok := range vocab {
					if tok == lines[i][j] {
						continue
					}
					tok := tok
					mutants = append(mutants, mutate(lines, func(cp [][]string) [][]string {
						cp[i][j] = tok
						return cp
					}))
				}
			}
		}

		breaking, escaped := 0, 0
		for _, m := range mutants {
			spec, err := Parse(m)
			if err != nil {
				continue // rejected at parse time
			}
			if exhaustiveOracle(spec) {
				continue // property intact; not this test's concern
			}
			breaking++
			if Validate(spec) == nil {
				escaped++
				t.Errorf("mutant breaks exhaustiveness but validates:\n%s", m)
			}
		}
		if breaking == 0 {
			t.Errorf("no parseable exhaustiveness-breaking mutants generated (%d mutants total) — the property test is vacuous", len(mutants))
		}
		t.Logf("%s: %d mutants, %d broke exhaustiveness, %d escaped", base.Name, len(mutants), breaking, escaped)
	}
}
