// Package mardsl compiles a compact text format for per-processor state
// machines — MAR specs — onto the repository's ring simulator. A spec
// describes one protocol participant (or one adversary) as states × guarded
// receive clauses × action lists; the compiler lowers it to a postfix
// instruction form executed by a tiny stack machine implementing
// sim.Strategy, so compiled specs run on the exact arena hot path native
// protocols use: same trial-seed derivation, same engine chunking, same
// counter-based sim.Stream randomness. A compiled spec therefore inherits
// the sim-v2 determinism contract wholesale — byte-identical outcome
// distributions at any worker count, scheduler kind, or shard partition.
//
// # Grammar
//
// Specs are line-oriented; '#' starts a comment, indentation is free. A
// header section names the spec and its registration defaults, then one or
// more states follow. The first state is the start state.
//
//	spec <name>                      # slug; also the registered family name
//	kind protocol | adversary
//	topology ring                    # optional; ring is the only topology
//	use <protocol-slug>              # adversary only: protocol it deviates from
//	place <pos> [<pos> ...]          # adversary only: coalition positions (default 2)
//	defaults n=16 trials=400 [target=2] [minn=4] [k=1]
//	uniform                          # protocol only: honest outcome is uniform
//	reg <name> [<name> ...]          # named registers, zero-initialized
//
//	state <name>:
//	  init:                          # wake-up actions; start state only
//	    <action> ...
//	  on recv [when <cond> {and <cond>}]:
//	    <action> ...
//
// Actions: "set <reg> = <expr>", "send <expr>", "push <expr>" (append to
// the replay buffer), "replay <lo> <hi>" (send buffer entries [lo, hi),
// clamped), "goto <state>", "terminate <expr>", "abort", "drop" (consume
// the message, do nothing). A goto/terminate/abort must be a clause's last
// action.
//
// Conditions compare two expressions with == != < <= > >=. Expressions use
// + - * % (Euclidean remainder, total: a non-positive modulus yields 0),
// parentheses, unary minus, integer literals, registers, and the builtins
// n, self, received (messages processed so far, including the one being
// handled), msg (the payload; receive clauses only) and target (adversary
// specs only). The functions rand(e) — one ctx.Rand().Int63n(e) draw,
// 0 when e ≤ 0 — leader(e) = ring.LeaderFromSum(e, n) and sumfor(e) =
// ring.SumForLeader(e, n) bind the spec to the paper's election arithmetic.
// Arithmetic is int64 with wraparound, which keeps every operation total
// and deterministic.
//
// # Static validation
//
// Validate rejects, with positions: unknown identifiers, msg outside
// receive clauses, target in protocol specs, init outside the start state,
// goto to a missing state, unreachable states, states that can receive but
// have no receive clause (unguarded receives), dead clauses after a
// catch-all, and states whose last receive clause still carries a guard
// (non-exhaustive transitions). Adversary specs must name the protocol
// they deviate from (use) and list strictly increasing coalition
// positions.
//
// # Pipeline
//
// Parse → Validate → Compile yields a Program; Program.RingProtocol and
// Program.RingAttack adapt it to the ring package's interfaces. The
// marlib subpackage registers compiled programs in the scenario catalog
// behind the normal Opts/DeviationFamily plumbing, and GenerateProtocol /
// GenerateAdversary emit grammar-random specs for the generative fuzz and
// certification layers.
package mardsl
