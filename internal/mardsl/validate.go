package mardsl

import "fmt"

// Validate checks a parsed spec's semantic rules: identifier resolution,
// kind-specific directives, control-action placement, goto targets,
// reachability, receive-handler coverage, and guard exhaustiveness. A spec
// that validates always compiles, and its machine can never read an
// undefined name or jump to a missing state.
func Validate(s *Spec) error {
	if err := validateHead(s); err != nil {
		return err
	}
	regs := map[string]bool{}
	for _, r := range s.Regs {
		if !userName(r) {
			return fmt.Errorf("mar: bad register name %q", r)
		}
		if regs[r] {
			return fmt.Errorf("mar: duplicate register %q", r)
		}
		regs[r] = true
	}
	if len(s.Regs) > MaxRegs {
		return fmt.Errorf("mar: more than %d registers", MaxRegs)
	}
	stateIdx := map[string]int{}
	for i, st := range s.States {
		if !userName(st.Name) {
			return fmt.Errorf("mar: bad state name %q", st.Name)
		}
		if _, dup := stateIdx[st.Name]; dup {
			return fmt.Errorf("mar: duplicate state %q", st.Name)
		}
		stateIdx[st.Name] = i
	}
	for i, st := range s.States {
		if st.Init != nil && i > 0 {
			return fmt.Errorf("mar: line %d: init is only allowed in the start state", st.Init.Line)
		}
		if st.Init != nil {
			if err := validateClause(s, st.Init, regs, stateIdx, false); err != nil {
				return err
			}
		}
		for _, cl := range st.Recv {
			if err := validateClause(s, cl, regs, stateIdx, true); err != nil {
				return err
			}
		}
		if err := validateExhaustive(st); err != nil {
			return err
		}
	}
	return validateFlow(s, stateIdx)
}

// validateHead checks the header directives against the spec kind.
func validateHead(s *Spec) error {
	switch {
	case s.Name == "":
		return fmt.Errorf("mar: missing 'spec <name>' directive")
	case !userName(s.Name):
		return fmt.Errorf("mar: bad spec name %q", s.Name)
	case s.Kind != KindProtocol && s.Kind != KindAdversary:
		return fmt.Errorf("mar: missing 'kind protocol' or 'kind adversary' directive")
	case s.Topology != "" && s.Topology != "ring":
		return fmt.Errorf("mar: the only supported topology is ring")
	case len(s.States) == 0:
		return fmt.Errorf("mar: spec has no states")
	case len(s.States) > MaxStates:
		return fmt.Errorf("mar: more than %d states", MaxStates)
	}
	if s.Kind == KindProtocol {
		switch {
		case s.Use != "":
			return fmt.Errorf("mar: use is only valid in adversary specs")
		case len(s.Place) > 0:
			return fmt.Errorf("mar: place is only valid in adversary specs")
		case s.Defaults.Target != 0:
			return fmt.Errorf("mar: a target default is only valid in adversary specs")
		case s.Defaults.K != 0:
			return fmt.Errorf("mar: a k default is only valid in adversary specs")
		}
		return nil
	}
	// Adversary.
	if s.Use == "" {
		return fmt.Errorf("mar: adversary specs need 'use <protocol-slug>'")
	}
	if !userName(s.Use) {
		return fmt.Errorf("mar: bad use slug %q", s.Use)
	}
	if s.Uniform {
		return fmt.Errorf("mar: uniform is only valid in protocol specs")
	}
	if len(s.Place) > MaxPlace {
		return fmt.Errorf("mar: more than %d coalition positions", MaxPlace)
	}
	prev := 0
	for _, pos := range s.Place {
		if pos <= prev {
			return fmt.Errorf("mar: coalition positions must be strictly increasing, got %v", s.Place)
		}
		prev = pos
	}
	return nil
}

// validateClause checks one clause's guard and actions.
func validateClause(s *Spec, cl *Clause, regs map[string]bool, stateIdx map[string]int, recv bool) error {
	if len(cl.Guard) > MaxConds {
		return fmt.Errorf("mar: line %d: more than %d guard conditions", cl.Line, MaxConds)
	}
	if len(cl.Actions) > MaxActions {
		return fmt.Errorf("mar: line %d: more than %d actions", cl.Line, MaxActions)
	}
	for _, cond := range cl.Guard {
		if err := validateExpr(s, cond.Left, regs, recv, cl.Line); err != nil {
			return err
		}
		if err := validateExpr(s, cond.Right, regs, recv, cl.Line); err != nil {
			return err
		}
	}
	for i, act := range cl.Actions {
		control := act.Kind == ActGoto || act.Kind == ActTerminate || act.Kind == ActAbort
		if control && i != len(cl.Actions)-1 {
			return fmt.Errorf("mar: line %d: goto/terminate/abort must be a clause's last action", act.Line)
		}
		switch act.Kind {
		case ActSet:
			if !regs[act.Reg] {
				return fmt.Errorf("mar: line %d: set to undeclared register %q", act.Line, act.Reg)
			}
		case ActGoto:
			if _, ok := stateIdx[act.State]; !ok {
				return fmt.Errorf("mar: line %d: goto to unknown state %q", act.Line, act.State)
			}
		}
		for _, e := range []*Expr{act.A, act.B} {
			if e == nil {
				continue
			}
			if err := validateExpr(s, e, regs, recv, act.Line); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateExpr resolves every identifier of one expression.
func validateExpr(s *Spec, e *Expr, regs map[string]bool, recv bool, line int) error {
	if e == nil {
		return fmt.Errorf("mar: line %d: missing expression", line)
	}
	if e.Op == EIdent {
		switch e.Ident {
		case "n", "self", "received":
		case "msg":
			if !recv {
				return fmt.Errorf("mar: line %d: msg is only available in receive clauses", line)
			}
		case "target":
			if s.Kind != KindAdversary {
				return fmt.Errorf("mar: line %d: target is only available in adversary specs", line)
			}
		default:
			if !regs[e.Ident] {
				return fmt.Errorf("mar: line %d: unknown identifier %q", line, e.Ident)
			}
		}
	}
	for _, sub := range []*Expr{e.L, e.R} {
		if sub == nil {
			continue
		}
		if err := validateExpr(s, sub, regs, recv, line); err != nil {
			return err
		}
	}
	return nil
}

// validateExhaustive checks one state's clause ordering: every receive
// clause except the last must carry a guard (a mid-list catch-all makes
// the rest dead), and the last must not (a guarded tail leaves messages
// with no matching transition).
func validateExhaustive(st *State) error {
	for i, cl := range st.Recv {
		last := i == len(st.Recv)-1
		if !last && len(cl.Guard) == 0 {
			return fmt.Errorf("mar: line %d: catch-all clause makes later clauses of state %q dead", cl.Line, st.Name)
		}
		if last && len(cl.Guard) != 0 {
			return fmt.Errorf("mar: non-exhaustive transitions in state %q: the last receive clause still carries a guard (line %d)", st.Name, cl.Line)
		}
	}
	return nil
}

// validateFlow checks the spec's state graph: every state must be
// reachable from the start state, and every state that can process a
// message must have a receive clause.
func validateFlow(s *Spec, stateIdx map[string]int) error {
	gotoTargets := func(st *State) []int {
		var out []int
		clauses := st.Recv
		if st.Init != nil {
			clauses = append([]*Clause{st.Init}, clauses...)
		}
		for _, cl := range clauses {
			for _, act := range cl.Actions {
				if act.Kind == ActGoto {
					out = append(out, stateIdx[act.State])
				}
			}
		}
		return out
	}
	reachable := make([]bool, len(s.States))
	gotoTarget := make([]bool, len(s.States))
	queue := []int{0}
	reachable[0] = true
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, j := range gotoTargets(s.States[i]) {
			gotoTarget[j] = true
			if !reachable[j] {
				reachable[j] = true
				queue = append(queue, j)
			}
		}
	}
	for i, st := range s.States {
		if !reachable[i] {
			return fmt.Errorf("mar: unreachable state %q (line %d)", st.Name, st.Line)
		}
	}
	// The start state handles receives unless its init unconditionally
	// leaves (goto) or halts (terminate/abort) — and is never jumped back
	// to.
	start := s.States[0]
	startLeaves := false
	if start.Init != nil && len(start.Init.Actions) > 0 {
		last := start.Init.Actions[len(start.Init.Actions)-1]
		startLeaves = last.Kind == ActGoto || last.Kind == ActTerminate || last.Kind == ActAbort
	}
	for i, st := range s.States {
		live := gotoTarget[i] || (i == 0 && !startLeaves)
		if live && len(st.Recv) == 0 {
			return fmt.Errorf("mar: state %q has unguarded receives: messages can arrive but no receive clause handles them (line %d)", st.Name, st.Line)
		}
		if !live && len(st.Recv) > 0 {
			return fmt.Errorf("mar: receive clauses of state %q are dead: control never rests there (line %d)", st.Name, st.Line)
		}
	}
	return nil
}
