package mardsl

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Generated specs draw their shape from a sim.Stream keyed on the caller's
// seed, so a seed fully determines the emitted text. Every generated spec
// parses, validates, and compiles by construction — the generator is the
// positive-case corpus for the fuzz targets and the feedstock of the
// generative certification sweep.

// GenerateAdversary emits a grammar-random adversary spec against the
// native Basic-LEAD protocol: an absorb phase that watches (and possibly
// forwards) honest values below a drawn threshold, then one of several
// endgames — sum-cancelling injection with replay, abort, early
// termination, noise injection, or a two-state handoff. The spec name
// embeds the seed, so distinct seeds register as distinct families.
func GenerateAdversary(seed int64) string {
	rng := sim.NewStream(seed, 1)
	var b strings.Builder
	fmt.Fprintf(&b, "# generated adversary (seed %d)\n", seed)
	fmt.Fprintf(&b, "spec gen-adv-%016x\n", uint64(seed))
	b.WriteString("kind adversary\nuse basic-lead\n")
	pos := 2 + rng.Intn(4)
	target := 2 + rng.Intn(8)
	fmt.Fprintf(&b, "place %d\n", pos)
	fmt.Fprintf(&b, "defaults n=12 trials=240 minn=8 target=%d\n", target)
	b.WriteString("reg acc\n")

	threshold := 1 + rng.Intn(3)
	endgame := rng.Intn(5)
	track := rng.Intn(2) == 1
	record := rng.Intn(2) == 1
	forward := rng.Intn(3)
	if endgame == 0 {
		// The sum-cancelling injection needs the running sum and the
		// replay buffer.
		track, record = true, true
	}
	if endgame == 2 {
		track = true
	}

	b.WriteString("state absorb:\n")
	fmt.Fprintf(&b, "  on recv when received < n - %d:\n", threshold)
	wrote := false
	if track {
		b.WriteString("    set acc = (acc + msg % n) % n\n")
		wrote = true
	}
	if record {
		b.WriteString("    push msg % n\n")
		wrote = true
	}
	switch forward {
	case 1:
		b.WriteString("    send msg % n\n")
		wrote = true
	case 2:
		b.WriteString("    send rand(n)\n")
		wrote = true
	}
	if !wrote {
		b.WriteString("    drop\n")
	}

	b.WriteString("  on recv:\n")
	switch endgame {
	case 0:
		b.WriteString("    set acc = (acc + msg % n) % n\n")
		b.WriteString("    push msg % n\n")
		b.WriteString("    send (sumfor(target) - acc) % n\n")
		b.WriteString("    replay 0 received\n")
		b.WriteString("    terminate target\n")
	case 1:
		b.WriteString("    abort\n")
	case 2:
		b.WriteString("    terminate leader(acc + msg % n)\n")
	case 3:
		b.WriteString("    send rand(n)\n")
		b.WriteString("    terminate target\n")
	case 4:
		b.WriteString("    send msg % n\n")
		b.WriteString("    goto flood\n")
		b.WriteString("state flood:\n")
		b.WriteString("  on recv:\n")
		b.WriteString("    terminate target\n")
	}
	return b.String()
}

// GenerateProtocol emits a grammar-random relay protocol in the
// Basic-LEAD shape: draw a secret, forward values around the ring, and
// terminate on the n-th receive with a drawn output rule. An optional
// validation clause aborts when the returning value is not the secret.
func GenerateProtocol(seed int64) string {
	rng := sim.NewStream(seed, 2)
	var b strings.Builder
	fmt.Fprintf(&b, "# generated protocol (seed %d)\n", seed)
	fmt.Fprintf(&b, "spec gen-proto-%016x\n", uint64(seed))
	b.WriteString("kind protocol\ndefaults n=8 trials=200\nreg sum secret\n")
	validate := rng.Intn(2) == 1
	output := rng.Intn(4)
	b.WriteString("state run:\n")
	b.WriteString("  init:\n")
	b.WriteString("    set secret = rand(n)\n")
	b.WriteString("    send secret\n")
	b.WriteString("  on recv when received < n:\n")
	b.WriteString("    set sum = (sum + msg % n) % n\n")
	b.WriteString("    send msg % n\n")
	if validate {
		b.WriteString("  on recv when msg % n != secret:\n")
		b.WriteString("    abort\n")
	}
	b.WriteString("  on recv:\n")
	b.WriteString("    set sum = (sum + msg % n) % n\n")
	switch output {
	case 0:
		b.WriteString("    terminate leader(sum)\n")
	case 1:
		b.WriteString("    terminate leader(sum + secret)\n")
	case 2:
		b.WriteString("    terminate leader(sum * 3)\n")
	case 3:
		b.WriteString("    terminate 1\n")
	}
	return b.String()
}
