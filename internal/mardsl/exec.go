package mardsl

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
)

// maxReplayBuffer caps a machine's replay buffer; pushes beyond it are
// dropped so a looping spec cannot grow memory without bound.
const maxReplayBuffer = 4096

// machine executes one compiled program as a sim.Strategy. All mutable
// state lives on the machine and is fully re-established by Init, which is
// what lets the protocol adapter declare BatchSafe and ride the engine's
// batched strategy-vector reuse.
type machine struct {
	prog     *Program
	n        int
	target   int64
	state    int
	received int64
	halted   bool
	regs     []int64
	buf      []int64
}

var _ sim.Strategy = (*machine)(nil)

// Init resets every register, the replay buffer, and the state pointer,
// then runs the start state's wake-up clause.
func (m *machine) Init(ctx *sim.Context) {
	m.state = 0
	m.received = 0
	m.halted = false
	m.buf = m.buf[:0]
	if m.regs == nil {
		m.regs = make([]int64, m.prog.nregs)
	} else {
		for i := range m.regs {
			m.regs[i] = 0
		}
	}
	st := &m.prog.states[0]
	if st.hasInit {
		m.exec(ctx, &st.init, 0)
	}
}

// Receive counts the message and runs the current state's first matching
// clause. Validate guarantees the last clause is a catch-all, so exactly
// one clause runs per message.
func (m *machine) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	if m.halted {
		return
	}
	m.received++
	st := &m.prog.states[m.state]
	for i := range st.recv {
		cl := &st.recv[i]
		if m.match(ctx, cl, value) {
			m.exec(ctx, cl, value)
			return
		}
	}
}

// match evaluates a clause's guard.
func (m *machine) match(ctx *sim.Context, cl *cClause, msg int64) bool {
	for _, cond := range cl.guard {
		l := m.eval(ctx, cond.l, msg)
		r := m.eval(ctx, cond.r, msg)
		var ok bool
		switch cond.op {
		case CmpEq:
			ok = l == r
		case CmpNe:
			ok = l != r
		case CmpLt:
			ok = l < r
		case CmpLe:
			ok = l <= r
		case CmpGt:
			ok = l > r
		case CmpGe:
			ok = l >= r
		}
		if !ok {
			return false
		}
	}
	return true
}

// exec runs a clause's actions.
func (m *machine) exec(ctx *sim.Context, cl *cClause, msg int64) {
	for i := range cl.acts {
		act := &cl.acts[i]
		switch act.kind {
		case ActSet:
			m.regs[act.reg] = m.eval(ctx, act.a, msg)
		case ActSend:
			ctx.Send(m.eval(ctx, act.a, msg))
		case ActPush:
			if len(m.buf) < maxReplayBuffer {
				m.buf = append(m.buf, m.eval(ctx, act.a, msg))
			}
		case ActReplay:
			lo := m.eval(ctx, act.a, msg)
			hi := m.eval(ctx, act.b, msg)
			if lo < 0 {
				lo = 0
			}
			if hi > int64(len(m.buf)) {
				hi = int64(len(m.buf))
			}
			for j := lo; j < hi; j++ {
				ctx.Send(m.buf[j])
			}
		case ActGoto:
			m.state = act.state
		case ActTerminate:
			m.halted = true
			ctx.Terminate(m.eval(ctx, act.a, msg))
		case ActAbort:
			m.halted = true
			ctx.Abort()
		case ActDrop:
		}
	}
}

// eval runs one postfix expression. Every operation is total, so
// evaluation cannot fail or panic on any validated program.
func (m *machine) eval(ctx *sim.Context, code cExpr, msg int64) int64 {
	var stack [maxStack]int64
	sp := 0
	for _, in := range code {
		switch in.op {
		case oConst:
			stack[sp] = in.arg
			sp++
		case oReg:
			stack[sp] = m.regs[in.arg]
			sp++
		case oN:
			stack[sp] = int64(m.n)
			sp++
		case oSelf:
			stack[sp] = int64(ctx.Self())
			sp++
		case oReceived:
			stack[sp] = m.received
			sp++
		case oMsg:
			stack[sp] = msg
			sp++
		case oTarget:
			stack[sp] = m.target
			sp++
		case oAdd:
			sp--
			stack[sp-1] += stack[sp]
		case oSub:
			sp--
			stack[sp-1] -= stack[sp]
		case oMul:
			sp--
			stack[sp-1] *= stack[sp]
		case oMod:
			sp--
			stack[sp-1] = emod(stack[sp-1], stack[sp])
		case oNeg:
			stack[sp-1] = -stack[sp-1]
		case oRand:
			if b := stack[sp-1]; b > 0 {
				stack[sp-1] = ctx.Rand().Int63n(b)
			} else {
				stack[sp-1] = 0
			}
		case oLeader:
			stack[sp-1] = emod(stack[sp-1], int64(m.n)) + 1
		case oSumfor:
			stack[sp-1] = emod(stack[sp-1]-1, int64(m.n))
		}
	}
	if sp == 0 {
		return 0
	}
	return stack[sp-1]
}

// emod is the Euclidean remainder in [0, mod), matching ring.Mod, made
// total by yielding 0 for a non-positive modulus.
func emod(v, mod int64) int64 {
	if mod <= 0 {
		return 0
	}
	r := v % mod
	if r < 0 {
		r += mod
	}
	return r
}

// Protocol adapts a compiled protocol program to ring.Protocol.
type Protocol struct {
	prog *Program
}

var _ ring.Protocol = Protocol{}

// RingProtocol returns the program as a ring protocol; it errors for
// adversary programs.
func (p *Program) RingProtocol() (Protocol, error) {
	if p.Kind != KindProtocol {
		return Protocol{}, fmt.Errorf("mar: %s is an adversary spec, not a protocol", p.Name)
	}
	return Protocol{prog: p}, nil
}

// Name implements ring.Protocol.
func (p Protocol) Name() string { return p.prog.Name }

// BatchSafe marks the machines as fully re-initialized by Init, so one
// strategy vector can serve every trial of an engine chunk.
func (p Protocol) BatchSafe() {}

// Strategies implements ring.Protocol: every position runs a fresh machine.
func (p Protocol) Strategies(n int) ([]sim.Strategy, error) {
	out := make([]sim.Strategy, n)
	for i := range out {
		out[i] = &machine{prog: p.prog, n: n}
	}
	return out, nil
}

// Attack adapts a compiled adversary program to ring.Attack.
type Attack struct {
	prog *Program
}

var _ ring.Attack = Attack{}

// RingAttack returns the program as a ring attack; it errors for protocol
// programs.
func (p *Program) RingAttack() (Attack, error) {
	if p.Kind != KindAdversary {
		return Attack{}, fmt.Errorf("mar: %s is a protocol spec, not an adversary", p.Name)
	}
	return Attack{prog: p}, nil
}

// Name implements ring.Attack.
func (a Attack) Name() string { return a.prog.Name }

// Plan implements ring.Attack: the coalition sits at the spec's fixed
// positions, each running a fresh machine aimed at target.
func (a Attack) Plan(n int, target int64, _ int64) (*ring.Deviation, error) {
	if target < 1 || target > int64(n) {
		return nil, fmt.Errorf("mar: %s: target %d out of range [1,%d]", a.prog.Name, target, n)
	}
	coalition := make([]sim.ProcID, len(a.prog.Place))
	strategies := make(map[sim.ProcID]sim.Strategy, len(a.prog.Place))
	for i, pos := range a.prog.Place {
		if pos < 1 || pos > n {
			return nil, fmt.Errorf("mar: %s: position %d out of range [1,%d]", a.prog.Name, pos, n)
		}
		id := sim.ProcID(pos)
		coalition[i] = id
		strategies[id] = &machine{prog: a.prog, n: n, target: target}
	}
	return &ring.Deviation{Coalition: coalition, Strategies: strategies}, nil
}
