package mardsl

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse turns MAR source text into a Spec. It enforces the package's shape
// limits and the line grammar; semantic rules (identifier resolution,
// reachability, exhaustiveness) are Validate's job.
func Parse(src string) (*Spec, error) {
	if len(src) > MaxSpecBytes {
		return nil, fmt.Errorf("mar: spec exceeds %d bytes", MaxSpecBytes)
	}
	p := &specParser{
		spec:   &Spec{Topology: "ring"},
		states: map[string]bool{},
		regs:   map[string]bool{},
		seen:   map[string]bool{},
	}
	for i, raw := range strings.Split(src, "\n") {
		if err := p.line(i+1, raw); err != nil {
			return nil, err
		}
	}
	return p.spec, nil
}

// specParser carries the line-by-line parsing state.
type specParser struct {
	spec   *Spec
	state  *State          // current state block
	clause *Clause         // current clause block
	states map[string]bool // declared state names
	regs   map[string]bool // declared register names
	seen   map[string]bool // header directives already consumed
}

// line consumes one source line.
func (p *specParser) line(ln int, raw string) error {
	if i := strings.IndexByte(raw, '#'); i >= 0 {
		raw = raw[:i]
	}
	toks, err := lexLine(ln, raw)
	if err != nil || len(toks) == 0 {
		return err
	}
	switch toks[0] {
	case "spec", "kind", "topology", "use", "place", "defaults", "uniform", "reg":
		if len(p.spec.States) > 0 {
			return fmt.Errorf("mar: line %d: %s must appear before the first state", ln, toks[0])
		}
		if p.seen[toks[0]] && toks[0] != "reg" {
			return fmt.Errorf("mar: line %d: duplicate %s directive", ln, toks[0])
		}
		p.seen[toks[0]] = true
		return p.header(ln, toks)
	case "state":
		return p.stateHeader(ln, toks)
	case "init":
		return p.initHeader(ln, toks)
	case "on":
		return p.recvHeader(ln, toks)
	case "set", "send", "push", "replay", "goto", "terminate", "abort", "drop":
		return p.action(ln, toks)
	default:
		return fmt.Errorf("mar: line %d: unknown directive %q", ln, toks[0])
	}
}

// header consumes one pre-state header line.
func (p *specParser) header(ln int, toks []string) error {
	switch toks[0] {
	case "spec":
		if len(toks) != 2 || !userName(toks[1]) {
			return fmt.Errorf("mar: line %d: expected 'spec <name>'", ln)
		}
		p.spec.Name = toks[1]
	case "kind":
		if len(toks) != 2 || (toks[1] != string(KindProtocol) && toks[1] != string(KindAdversary)) {
			return fmt.Errorf("mar: line %d: expected 'kind protocol' or 'kind adversary'", ln)
		}
		p.spec.Kind = Kind(toks[1])
	case "topology":
		if len(toks) != 2 || toks[1] != "ring" {
			return fmt.Errorf("mar: line %d: the only supported topology is ring", ln)
		}
	case "use":
		if len(toks) != 2 || !userName(toks[1]) {
			return fmt.Errorf("mar: line %d: expected 'use <protocol-slug>'", ln)
		}
		p.spec.Use = toks[1]
	case "place":
		if len(toks) < 2 {
			return fmt.Errorf("mar: line %d: expected 'place <pos> ...'", ln)
		}
		if len(toks)-1 > MaxPlace {
			return fmt.Errorf("mar: line %d: more than %d coalition positions", ln, MaxPlace)
		}
		for _, t := range toks[1:] {
			v, err := paramValue(ln, t)
			if err != nil {
				return err
			}
			p.spec.Place = append(p.spec.Place, v)
		}
	case "defaults":
		for i := 1; i < len(toks); i += 3 {
			if i+2 >= len(toks) || toks[i+1] != "=" {
				return fmt.Errorf("mar: line %d: expected 'defaults key=value ...'", ln)
			}
			v, err := paramValue(ln, toks[i+2])
			if err != nil {
				return err
			}
			switch toks[i] {
			case "n":
				p.spec.Defaults.N = v
			case "trials":
				p.spec.Defaults.Trials = v
			case "minn":
				p.spec.Defaults.MinN = v
			case "k":
				p.spec.Defaults.K = v
			case "target":
				p.spec.Defaults.Target = int64(v)
			default:
				return fmt.Errorf("mar: line %d: unknown default %q", ln, toks[i])
			}
		}
	case "uniform":
		if len(toks) != 1 {
			return fmt.Errorf("mar: line %d: uniform takes no arguments", ln)
		}
		p.spec.Uniform = true
	case "reg":
		if len(toks) < 2 {
			return fmt.Errorf("mar: line %d: expected 'reg <name> ...'", ln)
		}
		for _, t := range toks[1:] {
			if !userName(t) {
				return fmt.Errorf("mar: line %d: bad register name %q", ln, t)
			}
			if p.regs[t] {
				return fmt.Errorf("mar: line %d: duplicate register %q", ln, t)
			}
			if len(p.spec.Regs) >= MaxRegs {
				return fmt.Errorf("mar: line %d: more than %d registers", ln, MaxRegs)
			}
			p.regs[t] = true
			p.spec.Regs = append(p.spec.Regs, t)
		}
	}
	return nil
}

// stateHeader opens a state block.
func (p *specParser) stateHeader(ln int, toks []string) error {
	if len(toks) != 3 || toks[2] != ":" || !userName(toks[1]) {
		return fmt.Errorf("mar: line %d: expected 'state <name>:'", ln)
	}
	if p.states[toks[1]] {
		return fmt.Errorf("mar: line %d: duplicate state %q", ln, toks[1])
	}
	if len(p.spec.States) >= MaxStates {
		return fmt.Errorf("mar: line %d: more than %d states", ln, MaxStates)
	}
	p.states[toks[1]] = true
	p.state = &State{Name: toks[1], Line: ln}
	p.clause = nil
	p.spec.States = append(p.spec.States, p.state)
	return nil
}

// initHeader opens a state's wake-up clause.
func (p *specParser) initHeader(ln int, toks []string) error {
	if len(toks) != 2 || toks[1] != ":" {
		return fmt.Errorf("mar: line %d: expected 'init:'", ln)
	}
	if p.state == nil {
		return fmt.Errorf("mar: line %d: init outside a state", ln)
	}
	if p.state.Init != nil {
		return fmt.Errorf("mar: line %d: duplicate init clause in state %q", ln, p.state.Name)
	}
	if len(p.state.Recv) > 0 {
		return fmt.Errorf("mar: line %d: init must precede the receive clauses", ln)
	}
	p.clause = &Clause{Line: ln}
	p.state.Init = p.clause
	return nil
}

// recvHeader opens a receive clause, parsing its optional guard.
func (p *specParser) recvHeader(ln int, toks []string) error {
	if p.state == nil {
		return fmt.Errorf("mar: line %d: receive clause outside a state", ln)
	}
	if len(p.state.Recv) >= MaxClauses {
		return fmt.Errorf("mar: line %d: more than %d receive clauses in state %q", ln, MaxClauses, p.state.Name)
	}
	if len(toks) < 3 || toks[1] != "recv" {
		return fmt.Errorf("mar: line %d: expected 'on recv [when <guard>]:'", ln)
	}
	cl := &Clause{Line: ln}
	c := &tokCursor{toks: toks, pos: 2, ln: ln}
	if c.peek() == "when" {
		c.pos++
		guard, err := c.parseGuard()
		if err != nil {
			return err
		}
		cl.Guard = guard
	}
	if c.next() != ":" || c.pos != len(toks) {
		return fmt.Errorf("mar: line %d: expected ':' ending the clause header", ln)
	}
	p.clause = cl
	p.state.Recv = append(p.state.Recv, cl)
	return nil
}

// action consumes one action line into the current clause.
func (p *specParser) action(ln int, toks []string) error {
	if p.clause == nil {
		return fmt.Errorf("mar: line %d: action outside an init or receive clause", ln)
	}
	if len(p.clause.Actions) >= MaxActions {
		return fmt.Errorf("mar: line %d: more than %d actions in one clause", ln, MaxActions)
	}
	act := Action{Line: ln}
	c := &tokCursor{toks: toks, pos: 1, ln: ln}
	var err error
	switch toks[0] {
	case "set":
		act.Kind = ActSet
		if len(toks) < 4 || !userName(toks[1]) || toks[2] != "=" {
			return fmt.Errorf("mar: line %d: expected 'set <reg> = <expr>'", ln)
		}
		act.Reg = toks[1]
		c.pos = 3
		act.A, err = c.parseExpr(0)
	case "send":
		act.Kind = ActSend
		act.A, err = c.parseExpr(0)
	case "push":
		act.Kind = ActPush
		act.A, err = c.parseExpr(0)
	case "replay":
		act.Kind = ActReplay
		if act.A, err = c.parseExpr(0); err == nil {
			act.B, err = c.parseExpr(0)
		}
	case "goto":
		act.Kind = ActGoto
		if len(toks) != 2 || !userName(toks[1]) {
			return fmt.Errorf("mar: line %d: expected 'goto <state>'", ln)
		}
		act.State = toks[1]
		c.pos = 2
	case "terminate":
		act.Kind = ActTerminate
		act.A, err = c.parseExpr(0)
	case "abort":
		act.Kind = ActAbort
	case "drop":
		act.Kind = ActDrop
	}
	if err != nil {
		return err
	}
	if c.pos != len(toks) {
		return fmt.Errorf("mar: line %d: trailing tokens after action", ln)
	}
	p.clause.Actions = append(p.clause.Actions, act)
	return nil
}

// paramValue parses a bounded positive integer parameter.
func paramValue(ln int, tok string) (int, error) {
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil || v < 1 || v > maxParamValue {
		return 0, fmt.Errorf("mar: line %d: expected an integer in [1, %d], got %q", ln, maxParamValue, tok)
	}
	return int(v), nil
}

// userName reports whether the token can name a spec, state, or register:
// an identifier that is not a keyword or builtin.
func userName(tok string) bool {
	return identLike(tok) && !reserved(tok)
}

// identLike reports whether the token has identifier shape.
func identLike(tok string) bool {
	if tok == "" || !isLetter(tok[0]) {
		return false
	}
	for i := 1; i < len(tok); i++ {
		if !isIdentChar(tok[i]) {
			return false
		}
	}
	return true
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isLetter(c) || c >= '0' && c <= '9' || c == '_' || c == '-'
}

// lexLine splits one source line into tokens. Identifiers may contain
// hyphens (slugs like basic-lead), so the '-' operator needs surrounding
// whitespace when adjacent to an identifier.
func lexLine(ln int, line string) ([]string, error) {
	var toks []string
	emit := func(t string) error {
		if len(toks) >= maxLineTokens {
			return fmt.Errorf("mar: line %d: more than %d tokens", ln, maxLineTokens)
		}
		toks = append(toks, t)
		return nil
	}
	for i := 0; i < len(line); {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
			continue
		case isLetter(c):
			j := i + 1
			for j < len(line) && isIdentChar(line[j]) {
				j++
			}
			if j-i > maxTokenLen {
				return nil, fmt.Errorf("mar: line %d: token longer than %d bytes", ln, maxTokenLen)
			}
			if err := emit(line[i:j]); err != nil {
				return nil, err
			}
			i = j
		case c >= '0' && c <= '9':
			j := i + 1
			for j < len(line) && line[j] >= '0' && line[j] <= '9' {
				j++
			}
			if j < len(line) && (isLetter(line[j]) || line[j] == '_') {
				return nil, fmt.Errorf("mar: line %d: malformed number", ln)
			}
			if j-i > maxTokenLen {
				return nil, fmt.Errorf("mar: line %d: token longer than %d bytes", ln, maxTokenLen)
			}
			if err := emit(line[i:j]); err != nil {
				return nil, err
			}
			i = j
		case c == '=' || c == '!' || c == '<' || c == '>':
			if i+1 < len(line) && line[i+1] == '=' {
				if err := emit(line[i : i+2]); err != nil {
					return nil, err
				}
				i += 2
				continue
			}
			if c == '!' {
				return nil, fmt.Errorf("mar: line %d: unexpected character '!'", ln)
			}
			if err := emit(string(c)); err != nil {
				return nil, err
			}
			i++
		case c == '(' || c == ')' || c == ':' || c == '+' || c == '-' || c == '*' || c == '%':
			if err := emit(string(c)); err != nil {
				return nil, err
			}
			i++
		default:
			return nil, fmt.Errorf("mar: line %d: unexpected character %q", ln, c)
		}
	}
	return toks, nil
}

// tokCursor walks one line's tokens during expression parsing.
type tokCursor struct {
	toks []string
	pos  int
	ln   int
}

func (c *tokCursor) peek() string {
	if c.pos < len(c.toks) {
		return c.toks[c.pos]
	}
	return ""
}

func (c *tokCursor) next() string {
	t := c.peek()
	if t != "" {
		c.pos++
	}
	return t
}

func (c *tokCursor) errf(format string, args ...any) error {
	return fmt.Errorf("mar: line %d: %s", c.ln, fmt.Sprintf(format, args...))
}

// cmpOps maps comparison tokens to operators.
var cmpOps = map[string]CmpOp{
	"==": CmpEq, "!=": CmpNe, "<": CmpLt, "<=": CmpLe, ">": CmpGt, ">=": CmpGe,
}

// parseGuard parses "<cond> {and <cond>}".
func (c *tokCursor) parseGuard() ([]Cond, error) {
	var conds []Cond
	for {
		if len(conds) >= MaxConds {
			return nil, c.errf("more than %d guard conditions", MaxConds)
		}
		left, err := c.parseExpr(0)
		if err != nil {
			return nil, err
		}
		op, ok := cmpOps[c.peek()]
		if !ok {
			return nil, c.errf("expected a comparison operator, got %q", c.peek())
		}
		c.pos++
		right, err := c.parseExpr(0)
		if err != nil {
			return nil, err
		}
		conds = append(conds, Cond{Left: left, Right: right, Op: op})
		if c.peek() != "and" {
			return conds, nil
		}
		c.pos++
	}
}

// parseExpr parses the additive level.
func (c *tokCursor) parseExpr(depth int) (*Expr, error) {
	if depth > maxExprDepth {
		return nil, c.errf("expression nested deeper than %d", maxExprDepth)
	}
	left, err := c.parseTerm(depth + 1)
	if err != nil {
		return nil, err
	}
	for {
		var op ExprOp
		switch c.peek() {
		case "+":
			op = EAdd
		case "-":
			op = ESub
		default:
			return left, nil
		}
		c.pos++
		right, err := c.parseTerm(depth + 1)
		if err != nil {
			return nil, err
		}
		left = &Expr{Op: op, L: left, R: right}
	}
}

// parseTerm parses the multiplicative level.
func (c *tokCursor) parseTerm(depth int) (*Expr, error) {
	if depth > maxExprDepth {
		return nil, c.errf("expression nested deeper than %d", maxExprDepth)
	}
	left, err := c.parseUnary(depth + 1)
	if err != nil {
		return nil, err
	}
	for {
		var op ExprOp
		switch c.peek() {
		case "*":
			op = EMul
		case "%":
			op = EMod
		default:
			return left, nil
		}
		c.pos++
		right, err := c.parseUnary(depth + 1)
		if err != nil {
			return nil, err
		}
		left = &Expr{Op: op, L: left, R: right}
	}
}

// parseUnary parses unary minus.
func (c *tokCursor) parseUnary(depth int) (*Expr, error) {
	if depth > maxExprDepth {
		return nil, c.errf("expression nested deeper than %d", maxExprDepth)
	}
	if c.peek() == "-" {
		c.pos++
		operand, err := c.parseUnary(depth + 1)
		if err != nil {
			return nil, err
		}
		return &Expr{Op: ENeg, L: operand}, nil
	}
	return c.parsePrimary(depth + 1)
}

// exprFuncs maps function names to node kinds.
var exprFuncs = map[string]ExprOp{
	"rand": ERand, "leader": ELeader, "sumfor": ESumfor,
}

// parsePrimary parses literals, identifiers, calls, and parentheses.
func (c *tokCursor) parsePrimary(depth int) (*Expr, error) {
	if depth > maxExprDepth {
		return nil, c.errf("expression nested deeper than %d", maxExprDepth)
	}
	tok := c.next()
	switch {
	case tok == "":
		return nil, c.errf("unexpected end of expression")
	case tok == "(":
		e, err := c.parseExpr(depth + 1)
		if err != nil {
			return nil, err
		}
		if c.next() != ")" {
			return nil, c.errf("missing ')'")
		}
		return e, nil
	case tok[0] >= '0' && tok[0] <= '9':
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return nil, c.errf("bad integer literal %q", tok)
		}
		return &Expr{Op: EConst, Val: v}, nil
	case exprFuncs[tok] != 0:
		if c.next() != "(" {
			return nil, c.errf("%s needs a parenthesized argument", tok)
		}
		arg, err := c.parseExpr(depth + 1)
		if err != nil {
			return nil, err
		}
		if c.next() != ")" {
			return nil, c.errf("missing ')' after %s argument", tok)
		}
		return &Expr{Op: exprFuncs[tok], L: arg}, nil
	case identLike(tok):
		if keywords[tok] {
			return nil, c.errf("keyword %q cannot appear in an expression", tok)
		}
		return &Expr{Op: EIdent, Ident: tok}, nil
	default:
		return nil, c.errf("unexpected token %q in expression", tok)
	}
}
