package mardsl

import (
	"strings"
	"testing"
)

// basicLeadSrc is the Basic-LEAD twin spec, duplicated from
// marlib/specs/basic_lead.mar so the package tests stay self-contained.
const basicLeadSrc = `
spec mar-basic-lead
kind protocol
topology ring
uniform
defaults n=16 trials=400

reg secret sum

state run:
  init:
    set secret = rand(n)
    send secret
  on recv when received < n:
    set sum = (sum + msg % n) % n
    send msg % n
  on recv when msg % n != secret:
    abort
  on recv:
    set sum = (sum + msg % n) % n
    terminate leader(sum)
`

// basicSingleSrc is the Claim B.1 adversary twin spec.
const basicSingleSrc = `
spec mar-basic-single
kind adversary
topology ring
use mar-basic-lead
place 2
defaults n=16 trials=200 minn=4 target=2

reg sum

state absorb:
  on recv when received < n - 1:
    set sum = (sum + msg % n) % n
    push msg % n
  on recv:
    set sum = (sum + msg % n) % n
    push msg % n
    send (sumfor(target) - sum) % n
    replay 0 received
    terminate target
`

func TestParseBasicLead(t *testing.T) {
	spec, err := Parse(basicLeadSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if spec.Name != "mar-basic-lead" || spec.Kind != KindProtocol || !spec.Uniform {
		t.Errorf("bad header: %+v", spec)
	}
	if spec.Defaults.N != 16 || spec.Defaults.Trials != 400 {
		t.Errorf("bad defaults: %+v", spec.Defaults)
	}
	if len(spec.Regs) != 2 || spec.Regs[0] != "secret" || spec.Regs[1] != "sum" {
		t.Errorf("bad regs: %v", spec.Regs)
	}
	if len(spec.States) != 1 {
		t.Fatalf("want 1 state, got %d", len(spec.States))
	}
	st := spec.States[0]
	if st.Init == nil || len(st.Init.Actions) != 2 {
		t.Fatalf("bad init clause: %+v", st.Init)
	}
	if len(st.Recv) != 3 {
		t.Fatalf("want 3 receive clauses, got %d", len(st.Recv))
	}
	if len(st.Recv[0].Guard) != 1 || st.Recv[0].Guard[0].Op != CmpLt {
		t.Errorf("bad first guard: %+v", st.Recv[0].Guard)
	}
	if len(st.Recv[2].Guard) != 0 {
		t.Errorf("last clause should be a catch-all")
	}
	if err := Validate(spec); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestParseBasicSingle(t *testing.T) {
	spec, err := Parse(basicSingleSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if spec.Kind != KindAdversary || spec.Use != "mar-basic-lead" {
		t.Errorf("bad header: %+v", spec)
	}
	if len(spec.Place) != 1 || spec.Place[0] != 2 {
		t.Errorf("bad place: %v", spec.Place)
	}
	if spec.Defaults.Target != 2 || spec.Defaults.MinN != 4 {
		t.Errorf("bad defaults: %+v", spec.Defaults)
	}
	if err := Validate(spec); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"oversized spec":         "# " + strings.Repeat("x", MaxSpecBytes),
		"unknown directive":      "spec a\nkind protocol\nfrobnicate 3\n",
		"duplicate spec":         "spec a\nspec b\n",
		"bad kind":               "spec a\nkind nonsense\n",
		"bad topology":           "spec a\nkind protocol\ntopology torus\n",
		"header after state":     "spec a\nkind protocol\nstate s:\n  on recv:\n    drop\nreg x\n",
		"reserved reg":           "spec a\nkind protocol\nreg msg\n",
		"duplicate reg":          "spec a\nkind protocol\nreg x x\n",
		"duplicate state":        "spec a\nkind protocol\nstate s:\n  on recv:\n    drop\nstate s:\n  on recv:\n    drop\n",
		"init after recv":        "spec a\nkind protocol\nstate s:\n  on recv:\n    drop\n  init:\n    drop\n",
		"action outside clause":  "spec a\nkind protocol\nstate s:\n  drop\n",
		"bad guard":              "spec a\nkind protocol\nstate s:\n  on recv when msg:\n    drop\n",
		"missing colon":          "spec a\nkind protocol\nstate s:\n  on recv when msg == 1\n    drop\n",
		"trailing tokens":        "spec a\nkind protocol\nstate s:\n  on recv:\n    send 1 2\n",
		"unbalanced parens":      "spec a\nkind protocol\nstate s:\n  on recv:\n    send (1 + 2\n",
		"keyword in expression":  "spec a\nkind protocol\nstate s:\n  on recv:\n    send goto\n",
		"bad character":          "spec a\nkind protocol\nstate s:\n  on recv:\n    send 1 & 2\n",
		"malformed number":       "spec a\nkind protocol\nstate s:\n  on recv:\n    send 12x\n",
		"bad defaults value":     "spec a\nkind protocol\ndefaults n=0\n",
		"unknown default":        "spec a\nkind protocol\ndefaults frobs=2\n",
		"deeply nested expr":     "spec a\nkind protocol\nstate s:\n  on recv:\n    send " + strings.Repeat("(", 40) + "1" + strings.Repeat(")", 40) + "\n",
		"rand without parens":    "spec a\nkind protocol\nstate s:\n  on recv:\n    send rand 3\n",
		"set without equals":     "spec a\nkind protocol\nreg x\nstate s:\n  on recv:\n    set x 3\n",
		"goto with expression":   "spec a\nkind protocol\nstate s:\n  on recv:\n    goto 1 + 2\n",
		"too many place entries": "spec a\nkind adversary\nplace 1 2 3 4 5 6 7 8 9\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parse unexpectedly succeeded", name)
		}
	}
}

func TestParseLimits(t *testing.T) {
	var b strings.Builder
	b.WriteString("spec a\nkind protocol\n")
	for i := 0; i <= MaxStates; i++ {
		b.WriteString("state s")
		b.WriteString(strings.Repeat("x", i%3))
		b.WriteByte('a' + byte(i%26))
		b.WriteByte('0' + byte(i/26%10))
		b.WriteByte('0' + byte(i/260))
		b.WriteString(":\n  on recv:\n    drop\n")
	}
	if _, err := Parse(b.String()); err == nil {
		t.Errorf("state limit not enforced")
	}

	var c strings.Builder
	c.WriteString("spec a\nkind protocol\nstate s:\n")
	for i := 0; i <= MaxClauses; i++ {
		c.WriteString("  on recv when msg == 0:\n    drop\n")
	}
	if _, err := Parse(c.String()); err == nil {
		t.Errorf("clause limit not enforced")
	}

	var d strings.Builder
	d.WriteString("spec a\nkind protocol\nstate s:\n  on recv:\n")
	for i := 0; i <= MaxActions; i++ {
		d.WriteString("    drop\n")
	}
	if _, err := Parse(d.String()); err == nil {
		t.Errorf("action limit not enforced")
	}
}
