// Package marlib registers compiled MAR specs in the scenario catalog.
// It embeds the repository's spec'd twins of native implementations —
// Basic-LEAD and the Claim B.1 single-adversary attack — and exposes
// Register, the one entry point that turns any MAR source text into
// catalog entries: protocol specs become honest scenarios under every
// scheduler kind, adversary specs become a deviation family plus an
// attack scenario. Registered entries ride the normal catalog plumbing,
// so fleserve, flecert, and cmd/scenarios serve them unchanged.
package marlib

import (
	"embed"
	"fmt"
	"os"

	"repro/internal/mardsl"
	"repro/internal/ring"
	"repro/internal/scenario"
)

//go:embed specs/*.mar
var specFS embed.FS

// embeddedSpecs lists the bundled spec files in registration order: the
// protocol first, so the adversary's use-slug resolves.
var embeddedSpecs = []string{"specs/basic_lead.mar", "specs/basic_single.mar"}

func init() {
	for _, path := range embeddedSpecs {
		src, err := specFS.ReadFile(path)
		if err != nil {
			panic(fmt.Sprintf("marlib: %s: %v", path, err))
		}
		if _, err := Register(string(src)); err != nil {
			panic(fmt.Sprintf("marlib: %s: %v", path, err))
		}
	}
}

// EmbeddedSources returns the bundled spec texts in registration order —
// the seed corpus of the MAR fuzz targets.
func EmbeddedSources() []string {
	out := make([]string, len(embeddedSpecs))
	for i, path := range embeddedSpecs {
		src, err := specFS.ReadFile(path)
		if err != nil {
			panic(fmt.Sprintf("marlib: %s: %v", path, err))
		}
		out[i] = string(src)
	}
	return out
}

// Register compiles one MAR spec and registers it in the scenario catalog,
// returning the names of the scenarios it created. A protocol spec
// registers "ring/<name>/{fifo,lifo,random}"; an adversary spec registers
// the deviation family "<name>" and the scenario
// "ring/<use>/attack=<name>", resolving <use> against the already
// registered catalog (native and compiled protocols alike). Name
// collisions are rejected before anything is registered.
func Register(src string) ([]string, error) {
	prog, err := mardsl.Load(src)
	if err != nil {
		return nil, err
	}
	if prog.Kind == mardsl.KindProtocol {
		return registerProtocol(prog)
	}
	return registerAdversary(prog)
}

// RegisterFiles reads and registers MAR spec files in order — the engine
// behind the commands' repeatable -mar flag — returning every scenario
// name created. Files are registered in argument order, so a protocol
// spec can precede the adversary specs that use it.
func RegisterFiles(paths []string) ([]string, error) {
	var names []string
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return names, fmt.Errorf("marlib: %w", err)
		}
		got, err := Register(string(src))
		if err != nil {
			return names, fmt.Errorf("marlib: %s: %w", path, err)
		}
		names = append(names, got...)
	}
	return names, nil
}

// registerProtocol registers a compiled protocol under every scheduler
// kind of the honest ring catalog.
func registerProtocol(prog *mardsl.Program) ([]string, error) {
	proto, err := prog.RingProtocol()
	if err != nil {
		return nil, err
	}
	n, trials, minN := prog.Defaults.N, prog.Defaults.Trials, prog.Defaults.MinN
	if n == 0 {
		n = 16
	}
	if trials == 0 {
		trials = 400
	}
	scheds := []string{scenario.SchedFIFO, scenario.SchedLIFO, scenario.SchedRandom}
	names := make([]string, len(scheds))
	for i, sched := range scheds {
		names[i] = "ring/" + prog.Name + "/" + sched
		if _, exists := scenario.Find(names[i]); exists {
			return nil, fmt.Errorf("marlib: scenario %s already registered", names[i])
		}
	}
	for i, sched := range scheds {
		err := scenario.RegisterRingScenario(scenario.Scenario{
			Name:      names[i],
			Topology:  "ring",
			Protocol:  prog.Name,
			Scheduler: sched,
			N:         n,
			MinN:      minN,
			Trials:    trials,
			Uniform:   prog.Uniform,
			Note:      "compiled MAR protocol spec",
		}, proto)
		if err != nil {
			return nil, fmt.Errorf("marlib: %w", err)
		}
	}
	return names, nil
}

// registerAdversary registers a compiled adversary as a deviation family
// plus the attack scenario against its use-protocol.
func registerAdversary(prog *mardsl.Program) ([]string, error) {
	atk, err := prog.RingAttack()
	if err != nil {
		return nil, err
	}
	base, ok := scenario.FindRingProtocol(prog.Use)
	if !ok {
		return nil, fmt.Errorf("marlib: %s: no registered ring protocol %q to deviate from", prog.Name, prog.Use)
	}
	if _, dup := scenario.FindFamily(prog.Name); dup {
		return nil, fmt.Errorf("marlib: deviation family %s already registered", prog.Name)
	}
	name := "ring/" + prog.Use + "/attack=" + prog.Name
	if _, exists := scenario.Find(name); exists {
		return nil, fmt.Errorf("marlib: scenario %s already registered", name)
	}
	k := len(prog.Place)
	maxPlace := prog.Place[len(prog.Place)-1]
	err = scenario.RegisterDeviationFamily(scenario.DeviationFamily{
		Name:      prog.Name,
		Protocols: []string{prog.Use},
		Note:      "compiled MAR adversary spec",
		Sizes:     func(int, string) []int { return []int{k} },
		DefaultK:  func(int, string) int { return k },
		Plan: func(_ ring.Protocol, _ int, _ string) (ring.Attack, error) {
			return atk, nil
		},
	})
	if err != nil {
		return nil, fmt.Errorf("marlib: %w", err)
	}
	n, trials, minN, target := prog.Defaults.N, prog.Defaults.Trials, prog.Defaults.MinN, prog.Defaults.Target
	if n == 0 {
		n = 16
	}
	if trials == 0 {
		trials = 200
	}
	if minN < maxPlace+1 {
		minN = maxPlace + 1
	}
	if target == 0 {
		target = 2
	}
	err = scenario.RegisterRingAttackScenario(scenario.Scenario{
		Name:      name,
		Topology:  "ring",
		Protocol:  prog.Use,
		Scheduler: scenario.SchedFIFO,
		Attack:    prog.Name,
		N:         n,
		MinN:      minN,
		Trials:    trials,
		K:         k,
		Target:    target,
		Note:      "compiled MAR adversary spec",
	}, base, prog.Name, "")
	if err != nil {
		return nil, fmt.Errorf("marlib: %w", err)
	}
	return []string{name}, nil
}

// Twin pairs a native scenario with its compiled MAR twin; the
// differential matrix pins each pair's outcome distributions
// byte-identical.
type Twin struct {
	// Native and Compiled are the paired scenario names.
	Native, Compiled string
}

// Twins returns the native↔compiled pairs the embedded specs pin.
func Twins() []Twin {
	return []Twin{
		{Native: "ring/basic-lead/fifo", Compiled: "ring/mar-basic-lead/fifo"},
		{Native: "ring/basic-lead/lifo", Compiled: "ring/mar-basic-lead/lifo"},
		{Native: "ring/basic-lead/random", Compiled: "ring/mar-basic-lead/random"},
		{Native: "ring/basic-lead/attack=basic-single", Compiled: "ring/mar-basic-lead/attack=mar-basic-single"},
	}
}
