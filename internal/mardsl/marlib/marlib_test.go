package marlib_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/mardsl"
	"repro/internal/mardsl/marlib"
	"repro/internal/scenario"
)

func TestEmbeddedSources(t *testing.T) {
	srcs := marlib.EmbeddedSources()
	if len(srcs) != 2 {
		t.Fatalf("want 2 embedded specs, got %d", len(srcs))
	}
	names := []string{"mar-basic-lead", "mar-basic-single"}
	for i, src := range srcs {
		spec, err := mardsl.Parse(src)
		if err != nil {
			t.Fatalf("embedded spec %d: %v", i, err)
		}
		if spec.Name != names[i] {
			t.Errorf("embedded spec %d: name %q, want %q", i, spec.Name, names[i])
		}
	}
}

func TestEmbeddedRegistration(t *testing.T) {
	for _, name := range []string{
		"ring/mar-basic-lead/fifo",
		"ring/mar-basic-lead/lifo",
		"ring/mar-basic-lead/random",
		"ring/mar-basic-lead/attack=mar-basic-single",
	} {
		if _, ok := scenario.Find(name); !ok {
			t.Errorf("scenario %s not registered", name)
		}
	}
	if _, ok := scenario.FindFamily("mar-basic-single"); !ok {
		t.Errorf("deviation family mar-basic-single not registered")
	}
	if _, ok := scenario.FindRingProtocol("mar-basic-lead"); !ok {
		t.Errorf("compiled protocol mar-basic-lead not resolvable")
	}
}

func TestRegisterErrors(t *testing.T) {
	if _, err := marlib.Register("not a spec"); err == nil {
		t.Errorf("malformed source should not register")
	}
	// The embedded specs are already in the catalog: registering them
	// again must fail on the name collision, for protocols and
	// adversaries alike.
	for _, src := range marlib.EmbeddedSources() {
		if _, err := marlib.Register(src); err == nil {
			t.Errorf("duplicate registration should fail")
		}
	}
	// An adversary deviating from a protocol nobody registered.
	orphan := `spec orphan-adv
kind adversary
use no-such-protocol
place 2
state s:
  on recv:
    abort
`
	if _, err := marlib.Register(orphan); err == nil {
		t.Errorf("adversary against an unregistered protocol should fail")
	} else if !strings.Contains(err.Error(), "no-such-protocol") {
		t.Errorf("error should name the missing protocol, got: %v", err)
	}
}

func TestRegisterGeneratedProtocolEndToEnd(t *testing.T) {
	src := mardsl.GenerateProtocol(9001)
	names, err := marlib.Register(src)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if len(names) != 3 {
		t.Fatalf("want 3 scenarios (one per scheduler), got %v", names)
	}
	s, ok := scenario.Find(names[0])
	if !ok {
		t.Fatalf("scenario %s not found after registration", names[0])
	}
	o := scenario.Opts{N: 6, Trials: 50, Workers: 1}
	a, err := s.RunOpts(context.Background(), 3, o)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	o.Workers = 4
	b, err := s.RunOpts(context.Background(), 3, o)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if a.Dist.String() != b.Dist.String() {
		t.Errorf("worker counts diverge on a generated protocol")
	}
}

func TestRegisterGeneratedAdversaryEndToEnd(t *testing.T) {
	src := mardsl.GenerateAdversary(9002)
	names, err := marlib.Register(src)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if len(names) != 1 || !strings.HasPrefix(names[0], "ring/basic-lead/attack=gen-adv-") {
		t.Fatalf("unexpected scenario names %v", names)
	}
	s, ok := scenario.Find(names[0])
	if !ok {
		t.Fatalf("scenario %s not found after registration", names[0])
	}
	o := scenario.Opts{N: 10, Trials: 50, Workers: 1}
	a, err := s.RunOpts(context.Background(), 3, o)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	o.Workers = 4
	b, err := s.RunOpts(context.Background(), 3, o)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if a.Dist.String() != b.Dist.String() {
		t.Errorf("worker counts diverge on a generated adversary")
	}
	// Registering the same generated spec twice must fail cleanly.
	if _, err := marlib.Register(src); err == nil {
		t.Errorf("duplicate generated registration should fail")
	}
}
