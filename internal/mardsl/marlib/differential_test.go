package marlib_test

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/mardsl/marlib"
	"repro/internal/ring"
	"repro/internal/scenario"
	"repro/internal/sim"
)

const diffSeed = 20180516

// distBytes runs the scenario and returns its outcome distribution as
// canonical JSON bytes.
func distBytes(t *testing.T, name string, o scenario.Opts) []byte {
	t.Helper()
	s, ok := scenario.Find(name)
	if !ok {
		t.Fatalf("scenario %s not registered", name)
	}
	out, err := s.RunOpts(context.Background(), diffSeed, o)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	b, err := json.Marshal(out.Dist)
	if err != nil {
		t.Fatalf("marshal %s: %v", name, err)
	}
	return b
}

// TestTwinDistributionsByteIdentical is the differential matrix: every
// embedded spec's compiled scenario must reproduce its native twin's full
// outcome distribution byte-for-byte across ring sizes, worker counts, and
// the catalog's scheduler kinds (the honest twins span fifo/lifo/random).
func TestTwinDistributionsByteIdentical(t *testing.T) {
	for _, twin := range marlib.Twins() {
		for _, n := range []int{5, 8, 16} {
			for _, workers := range []int{1, 4, 8} {
				name := fmt.Sprintf("%s/n=%d/w=%d", twin.Compiled, n, workers)
				t.Run(name, func(t *testing.T) {
					o := scenario.Opts{N: n, Trials: 150, Workers: workers}
					native := distBytes(t, twin.Native, o)
					compiled := distBytes(t, twin.Compiled, o)
					if string(native) != string(compiled) {
						t.Errorf("distributions differ\nnative:   %s\ncompiled: %s", native, compiled)
					}
				})
			}
		}
	}
}

// TestCompiledWorkerInvariance pins the compiled scenarios' own
// determinism contract: one worker and many workers produce the same
// bytes.
func TestCompiledWorkerInvariance(t *testing.T) {
	for _, twin := range marlib.Twins() {
		base := distBytes(t, twin.Compiled, scenario.Opts{Trials: 120, Workers: 1})
		for _, workers := range []int{4, 8} {
			got := distBytes(t, twin.Compiled, scenario.Opts{Trials: 120, Workers: workers})
			if string(got) != string(base) {
				t.Errorf("%s: workers=%d diverges from workers=1", twin.Compiled, workers)
			}
		}
	}
}

// TestCompiledShardsMergeToNative runs the compiled scenarios through the
// fleet path — RunShard over an uneven partition of the batch — and
// checks the merged shards reproduce the native twin's full distribution,
// the property remote chunk claiming relies on.
func TestCompiledShardsMergeToNative(t *testing.T) {
	const trials = 150
	cuts := []int{0, 37, 90, trials}
	for _, twin := range marlib.Twins() {
		t.Run(twin.Compiled, func(t *testing.T) {
			s, ok := scenario.Find(twin.Compiled)
			if !ok {
				t.Fatalf("scenario %s not registered", twin.Compiled)
			}
			if !s.Distributable() {
				t.Fatalf("%s is not distributable", twin.Compiled)
			}
			o := scenario.Opts{Trials: trials, Workers: 2}
			merged := ring.NewDistribution(s.N)
			for i := 0; i+1 < len(cuts); i++ {
				shard, err := s.RunShard(context.Background(), diffSeed, o, cuts[i], cuts[i+1])
				if err != nil {
					t.Fatalf("shard [%d,%d): %v", cuts[i], cuts[i+1], err)
				}
				if err := merged.Merge(shard); err != nil {
					t.Fatalf("merge: %v", err)
				}
			}
			mergedJSON, err := json.Marshal(merged)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			native := distBytes(t, twin.Native, o)
			if string(mergedJSON) != string(native) {
				t.Errorf("merged shards diverge from native\nnative: %s\nmerged: %s", native, mergedJSON)
			}
		})
	}
}

// TestAttackTwinSingleRunSchedulers compares single executions of the
// attack twin under explicit non-FIFO schedulers, covering the scheduler
// dimension the registered attack scenario (FIFO) does not.
func TestAttackTwinSingleRunSchedulers(t *testing.T) {
	arena := sim.NewArena()
	native := scenario.MustFind("ring/basic-lead/attack=basic-single")
	compiled := scenario.MustFind("ring/mar-basic-lead/attack=mar-basic-single")
	scheds := map[string]func(seed int64) sim.Scheduler{
		"fifo":   func(int64) sim.Scheduler { return nil },
		"lifo":   func(int64) sim.Scheduler { return sim.LIFOScheduler{} },
		"random": func(seed int64) sim.Scheduler { return arena.RandomScheduler(seed) },
	}
	for schedName, mk := range scheds {
		for seed := int64(1); seed <= 20; seed++ {
			o := scenario.Opts{N: 9}
			nres, ok, err := native.SingleRun(seed, mk(seed), o)
			if !ok || err != nil {
				t.Fatalf("native single run (%s seed %d): ok=%v err=%v", schedName, seed, ok, err)
			}
			nres = nres.Clone()
			cres, ok, err := compiled.SingleRun(seed, mk(seed), o)
			if !ok || err != nil {
				t.Fatalf("compiled single run (%s seed %d): ok=%v err=%v", schedName, seed, ok, err)
			}
			cres = cres.Clone()
			if !reflect.DeepEqual(nres, cres) {
				t.Errorf("%s seed %d: results differ\nnative:   %+v\ncompiled: %+v", schedName, seed, nres, cres)
			}
		}
	}
}
