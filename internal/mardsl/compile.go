package mardsl

import "fmt"

// opcode is one stack-machine instruction kind.
type opcode uint8

const (
	oConst    opcode = iota // push arg
	oReg                    // push regs[arg]
	oN                      // push ring size
	oSelf                   // push own id
	oReceived               // push processed-message count
	oMsg                    // push current payload
	oTarget                 // push attack target
	oAdd                    // pop b, a; push a+b
	oSub                    // pop b, a; push a−b
	oMul                    // pop b, a; push a·b
	oMod                    // pop b, a; push a mod b (Euclidean; 0 when b ≤ 0)
	oNeg                    // negate top
	oRand                   // top = uniform [0, top) draw; 0 when top ≤ 0
	oLeader                 // top = LeaderFromSum(top, n)
	oSumfor                 // top = SumForLeader(top, n)
)

// instr is one compiled instruction.
type instr struct {
	op  opcode
	arg int64
}

// cExpr is a compiled expression in postfix order.
type cExpr []instr

// cCond is one compiled guard condition.
type cCond struct {
	l, r cExpr
	op   CmpOp
}

// cAct is one compiled action.
type cAct struct {
	kind  ActionKind
	reg   int // register index of ActSet
	state int // state index of ActGoto
	a, b  cExpr
}

// cClause is one compiled clause.
type cClause struct {
	guard []cCond
	acts  []cAct
}

// cState is one compiled state.
type cState struct {
	hasInit bool
	init    cClause
	recv    []cClause
}

// maxStack bounds the expression evaluation stack. The parser's nesting
// limit keeps every parsed expression well under it; Compile re-checks so
// hand-built specs cannot overflow either.
const maxStack = 48

// Program is a compiled spec, ready to instantiate machines. Programs are
// immutable after Compile and safe for concurrent use: every machine owns
// its own mutable state.
type Program struct {
	// Name is the spec slug.
	Name string
	// Kind is the spec role.
	Kind Kind
	// Use names the protocol an adversary program deviates from.
	Use string
	// Place lists an adversary's coalition positions ([2] by default).
	Place []int
	// Defaults are the spec's registration defaults.
	Defaults Defaults
	// Uniform marks a protocol whose honest outcome is uniform.
	Uniform bool

	nregs  int
	states []cState
}

// Compile validates the spec and lowers it to a Program.
func Compile(s *Spec) (*Program, error) {
	if err := Validate(s); err != nil {
		return nil, err
	}
	p := &Program{
		Name:     s.Name,
		Kind:     s.Kind,
		Use:      s.Use,
		Place:    append([]int(nil), s.Place...),
		Defaults: s.Defaults,
		Uniform:  s.Uniform,
		nregs:    len(s.Regs),
	}
	if p.Kind == KindAdversary && len(p.Place) == 0 {
		p.Place = []int{2}
	}
	regIdx := map[string]int{}
	for i, r := range s.Regs {
		regIdx[r] = i
	}
	stateIdx := map[string]int{}
	for i, st := range s.States {
		stateIdx[st.Name] = i
	}
	p.states = make([]cState, len(s.States))
	for i, st := range s.States {
		cs := &p.states[i]
		if st.Init != nil {
			cs.hasInit = true
			cl, err := compileClause(st.Init, regIdx, stateIdx)
			if err != nil {
				return nil, err
			}
			cs.init = cl
		}
		cs.recv = make([]cClause, len(st.Recv))
		for j, rc := range st.Recv {
			cl, err := compileClause(rc, regIdx, stateIdx)
			if err != nil {
				return nil, err
			}
			cs.recv[j] = cl
		}
	}
	return p, nil
}

// Load parses, validates, and compiles source text in one step.
func Load(src string) (*Program, error) {
	spec, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(spec)
}

// compileClause lowers one clause.
func compileClause(cl *Clause, regIdx, stateIdx map[string]int) (cClause, error) {
	out := cClause{acts: make([]cAct, 0, len(cl.Actions))}
	for _, cond := range cl.Guard {
		l, err := compileExpr(cond.Left, regIdx, cl.Line)
		if err != nil {
			return cClause{}, err
		}
		r, err := compileExpr(cond.Right, regIdx, cl.Line)
		if err != nil {
			return cClause{}, err
		}
		out.guard = append(out.guard, cCond{l: l, r: r, op: cond.Op})
	}
	for _, act := range cl.Actions {
		ca := cAct{kind: act.Kind, reg: regIdx[act.Reg], state: stateIdx[act.State]}
		var err error
		if act.A != nil {
			if ca.a, err = compileExpr(act.A, regIdx, act.Line); err != nil {
				return cClause{}, err
			}
		}
		if act.B != nil {
			if ca.b, err = compileExpr(act.B, regIdx, act.Line); err != nil {
				return cClause{}, err
			}
		}
		out.acts = append(out.acts, ca)
	}
	return out, nil
}

// compileExpr lowers one expression to postfix form.
func compileExpr(e *Expr, regIdx map[string]int, line int) (cExpr, error) {
	var code cExpr
	if err := emitExpr(e, regIdx, &code, line); err != nil {
		return nil, err
	}
	if need := stackNeed(code); need > maxStack {
		return nil, fmt.Errorf("mar: line %d: expression needs %d stack slots, limit %d", line, need, maxStack)
	}
	return code, nil
}

// emitExpr appends e's postfix instructions to code.
func emitExpr(e *Expr, regIdx map[string]int, code *cExpr, line int) error {
	switch e.Op {
	case EConst:
		*code = append(*code, instr{op: oConst, arg: e.Val})
	case EIdent:
		switch e.Ident {
		case "n":
			*code = append(*code, instr{op: oN})
		case "self":
			*code = append(*code, instr{op: oSelf})
		case "received":
			*code = append(*code, instr{op: oReceived})
		case "msg":
			*code = append(*code, instr{op: oMsg})
		case "target":
			*code = append(*code, instr{op: oTarget})
		default:
			idx, ok := regIdx[e.Ident]
			if !ok {
				return fmt.Errorf("mar: line %d: unknown identifier %q", line, e.Ident)
			}
			*code = append(*code, instr{op: oReg, arg: int64(idx)})
		}
	case ENeg, ERand, ELeader, ESumfor:
		if err := emitExpr(e.L, regIdx, code, line); err != nil {
			return err
		}
		op := map[ExprOp]opcode{ENeg: oNeg, ERand: oRand, ELeader: oLeader, ESumfor: oSumfor}[e.Op]
		*code = append(*code, instr{op: op})
	case EAdd, ESub, EMul, EMod:
		if err := emitExpr(e.L, regIdx, code, line); err != nil {
			return err
		}
		if err := emitExpr(e.R, regIdx, code, line); err != nil {
			return err
		}
		op := map[ExprOp]opcode{EAdd: oAdd, ESub: oSub, EMul: oMul, EMod: oMod}[e.Op]
		*code = append(*code, instr{op: op})
	default:
		return fmt.Errorf("mar: line %d: bad expression node %d", line, e.Op)
	}
	return nil
}

// stackNeed simulates the postfix program's stack depth.
func stackNeed(code cExpr) int {
	depth, need := 0, 0
	for _, in := range code {
		switch in.op {
		case oConst, oReg, oN, oSelf, oReceived, oMsg, oTarget:
			depth++
		case oAdd, oSub, oMul, oMod:
			depth--
		}
		if depth > need {
			need = depth
		}
	}
	return need
}
