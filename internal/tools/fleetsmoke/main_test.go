package main

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestFleetSmokeEndToEnd builds the real fleserve and fleload binaries and
// runs the full fleet smoke sequence — the same check `make fleet-smoke`
// performs in CI: a 3-node fleet with a mid-job worker kill, byte identity
// against a single-node run, a clean fleload batch, and a disk-cache
// restart replay.
func TestFleetSmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots three daemon processes")
	}
	dir := t.TempDir()
	serveBin := filepath.Join(dir, "fleserve")
	loadBin := filepath.Join(dir, "fleload")
	for bin, pkg := range map[string]string{serveBin: "repro/cmd/fleserve", loadBin: "repro/cmd/fleload"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}
	if err := run([]string{"-bin", serveBin, "-load", loadBin}); err != nil {
		t.Fatal(err)
	}
}

func TestFleetSmokeBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("want flag error")
	}
}

func TestFleetSmokeMissingBinary(t *testing.T) {
	if err := run([]string{"-bin", filepath.Join(t.TempDir(), "absent")}); err == nil {
		t.Fatal("want start error for missing binary")
	}
}
