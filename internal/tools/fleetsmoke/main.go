// Command fleetsmoke is the end-to-end acceptance harness for the
// multi-node simulation fleet: it boots a real coordinator plus two real
// worker fleserve processes sharing one disk cache directory, then fails
// unless
//
//   - a distributed job completes byte-identical to a direct in-process
//     single-node run, with chunks demonstrably claimed over HTTP,
//   - killing a worker mid-run (SIGKILL, no goodbye) loses nothing: its
//     leases expire, the chunks re-issue, and the bytes still match,
//   - a fleload mixed batch (cached/fresh/certify) against the coordinator
//     finishes with zero errors, and
//   - a coordinator restart on the same cache directory replays every
//     previously computed job from disk with zero fresh engine runs.
//
// CI runs it via `make fleet-smoke`.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"time"

	// Imported for its registrations: the in-process registry must
	// match the daemon's catalog, which embeds the MAR spec twins.
	_ "repro/internal/mardsl/marlib"
	"repro/internal/scenario"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("fleetsmoke: PASS")
}

// bigJob is sized to stay in flight long enough to kill a worker mid-run:
// tens of chunks of n=24 trials.
var bigJob = service.JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 60000, Seed: 20180516}

func run(args []string) error {
	fs := flag.NewFlagSet("fleetsmoke", flag.ContinueOnError)
	bin := fs.String("bin", "bin/fleserve", "path to the fleserve binary under test")
	loadBin := fs.String("load", "bin/fleload", "path to the fleload binary under test")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall smoke deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cacheDir, err := os.MkdirTemp("", "fleetsmoke-cache-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)

	// The reference bytes: a direct in-process run, no service anywhere.
	sc, ok := scenario.Find(bigJob.Scenario)
	if !ok {
		return fmt.Errorf("scenario %q not registered", bigJob.Scenario)
	}
	out, err := sc.RunOpts(ctx, bigJob.Seed, scenario.Opts{N: bigJob.N, Trials: bigJob.Trials})
	if err != nil {
		return fmt.Errorf("direct run: %w", err)
	}
	want, err := json.Marshal(out)
	if err != nil {
		return err
	}

	// Node 1: the coordinator. Short leases so the worker-kill recovery
	// happens within the smoke budget; small chunks so the job spreads.
	coord, err := startNode(ctx, *bin,
		"-role", "coordinator", "-cache-dir", cacheDir,
		"-fleet-chunk", "1000", "-lease", "1s", "-parallel", "1")
	if err != nil {
		return err
	}
	defer coord.stop()
	url := "http://" + coord.addr

	// Nodes 2 and 3: workers claiming from the coordinator.
	w1, err := startNode(ctx, *bin, "-role", "worker", "-join", url, "-parallel", "2")
	if err != nil {
		return err
	}
	defer w1.stop()
	w2, err := startNode(ctx, *bin, "-role", "worker", "-join", url, "-parallel", "2")
	if err != nil {
		return err
	}
	defer w2.stop()

	client := service.NewClient(url)
	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("coordinator healthz: %w", err)
	}

	// Phase 1: distributed job with a mid-run worker kill.
	states, err := client.Submit(ctx, []service.JobRequest{bigJob})
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	// Let the fleet sink its teeth in, then kill worker 2 without ceremony.
	time.Sleep(1500 * time.Millisecond)
	w2.kill()
	fmt.Println("fleetsmoke: killed worker 2 mid-run")

	final, err := client.Wait(ctx, states[0].ID)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if final.Status != service.StatusDone {
		return fmt.Errorf("distributed job finished %s: %s", final.Status, final.Error)
	}
	if !bytes.Equal(final.Result, want) {
		return fmt.Errorf("fleet result differs from single-node bytes:\n fleet: %s\ndirect: %s", final.Result, want)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		return fmt.Errorf("statz: %w", err)
	}
	if st.Fleet.RemoteClaims == 0 {
		return fmt.Errorf("no chunks were claimed over HTTP — the workers never participated")
	}
	fmt.Printf("fleetsmoke: distributed job byte-identical (%d chunks, %d remote claims, %d re-issued)\n",
		st.Fleet.ChunksCompleted, st.Fleet.RemoteClaims, st.Fleet.Reissued)

	// Phase 2: fleload mixed batch against the live fleet.
	report := filepath.Join(cacheDir, "fleload.json")
	loadCmd := exec.CommandContext(ctx, *loadBin,
		"-target", url, "-requests", "40", "-rate", "100",
		"-mix", "6:3:1", "-trials", "2000", "-out", report)
	loadCmd.Stdout, loadCmd.Stderr = os.Stdout, os.Stderr
	if err := loadCmd.Run(); err != nil {
		return fmt.Errorf("fleload: %w", err)
	}
	var rep struct {
		Errors        int     `json:"errors"`
		ThroughputRPS float64 `json:"throughput_rps"`
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("fleload report: %w", err)
	}
	if rep.Errors != 0 {
		return fmt.Errorf("fleload recorded %d errors", rep.Errors)
	}
	// throughput_rps counts successful requests only; a clean 40-request
	// batch must therefore report positive successful throughput.
	if rep.ThroughputRPS <= 0 {
		return fmt.Errorf("fleload reported non-positive successful throughput %f", rep.ThroughputRPS)
	}
	fmt.Printf("fleetsmoke: fleload mixed batch clean (%.1f successful rps)\n", rep.ThroughputRPS)

	// Phase 3: coordinator restart. Same cache directory, fresh process —
	// every already-computed identity must replay from disk with zero
	// engine runs.
	coord.stop()
	coord2, err := startNode(ctx, *bin,
		"-role", "coordinator", "-cache-dir", cacheDir,
		"-fleet-chunk", "1000", "-parallel", "1")
	if err != nil {
		return fmt.Errorf("restart coordinator: %w", err)
	}
	defer coord2.stop()
	client2 := service.NewClient("http://" + coord2.addr)

	replay, err := client2.Submit(ctx, []service.JobRequest{bigJob})
	if err != nil {
		return fmt.Errorf("resubmit after restart: %w", err)
	}
	if replay[0].Status != service.StatusDone {
		return fmt.Errorf("restart replay status %s, want immediate done from disk", replay[0].Status)
	}
	if !bytes.Equal(replay[0].Result, want) {
		return fmt.Errorf("restart replay bytes differ from the original computation")
	}
	st2, err := client2.Stats(ctx)
	if err != nil {
		return fmt.Errorf("statz after restart: %w", err)
	}
	if st2.Jobs.Fresh != 0 {
		return fmt.Errorf("restarted coordinator ran %d fresh engine jobs, want 0 (disk replay)", st2.Jobs.Fresh)
	}
	if st2.Disk.Hits == 0 {
		return fmt.Errorf("restarted coordinator reports zero disk hits")
	}
	fmt.Printf("fleetsmoke: coordinator restart replayed from disk (%d disk hits, 0 engine runs)\n", st2.Disk.Hits)
	return nil
}

// node is one running fleserve process.
type node struct {
	cmd  *exec.Cmd
	addr string
}

// stop terminates the node gracefully (SIGINT, then kill after a grace).
func (n *node) stop() {
	if n.cmd.Process == nil {
		return
	}
	_ = n.cmd.Process.Signal(os.Interrupt)
	done := make(chan struct{})
	go func() { _ = n.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		_ = n.cmd.Process.Kill()
		<-done
	}
}

// kill terminates the node abruptly — the crash case under test.
func (n *node) kill() {
	_ = n.cmd.Process.Kill()
	_ = n.cmd.Wait()
}

// startNode launches one fleserve process on an ephemeral port and waits
// for its listening line.
func startNode(ctx context.Context, bin string, extra ...string) (*node, error) {
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s %v: %w", bin, extra, err)
	}
	n := &node{cmd: cmd}
	re := regexp.MustCompile(`listening on (\S+)`)
	scan := bufio.NewScanner(out)
	for scan.Scan() {
		if m := re.FindStringSubmatch(scan.Text()); m != nil {
			n.addr = m[1]
			// Keep draining stdout so the daemon never blocks on a full pipe.
			go func() {
				for scan.Scan() {
				}
			}()
			return n, nil
		}
	}
	n.stop()
	return nil, fmt.Errorf("%s %v exited without a listening line", bin, extra)
}
