// Command committeetable regenerates the README's committee trajectory
// table: message cost and wall-clock per trial versus ring size, composed
// committee election against the flat inner protocol, plus a Wilson upper
// bound on the composed election's worst-position bias. The README table is
// this command's output, so the trajectory is measured, not remembered:
//
//	go run ./internal/tools/committeetable
//
// Composed batches run one committee.Runner per worker over disjoint trial
// stripes — runner state never crosses goroutines. The flat column runs the
// same inner protocol (A-LEADuni) directly on the full ring; above
// -flat-max (default 10,000) one flat trial costs Θ(n²) ≈ 10⁹ messages, so
// the tool prints the analytic n² bill and a time projection instead of
// simulating it, marked "(proj)".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/committee"
	"repro/internal/protocols/alead"
	"repro/internal/ring"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "committeetable:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("committeetable", flag.ContinueOnError)
	var (
		sizesFlag  = fs.String("sizes", "256,1000,10000,50000", "comma-separated ring sizes")
		trials     = fs.Int("trials", 1000, "composed trials per size")
		flatTrials = fs.Int("flat-trials", 4, "flat trials per size (timing sample)")
		flatMax    = fs.Int("flat-max", 10000, "largest n simulated flat; beyond it the n² bill is projected")
		seed       = fs.Int64("seed", 20180516, "base seed")
		workers    = fs.Int("workers", runtime.NumCPU(), "parallel workers for composed batches")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return err
	}

	fmt.Println("| n | groups | composed msgs/trial | flat msgs/trial | composed ms/trial | flat ms/trial | composed bias UB (95%) | 1k-trial batch |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for _, n := range sizes {
		row, err := measure(n, *trials, *flatTrials, *flatMax, *seed, *workers)
		if err != nil {
			return fmt.Errorf("n=%d: %w", n, err)
		}
		fmt.Println(row)
	}
	return nil
}

// measure produces one table row.
func measure(n, trials, flatTrials, flatMax int, seed int64, workers int) (string, error) {
	e, err := committee.New(n, committee.InnerALead)
	if err != nil {
		return "", err
	}
	counts, elapsed, err := composedBatch(e, trials, seed, workers)
	if err != nil {
		return "", err
	}
	maxCount := 0
	for _, c := range counts[1:] {
		if c > maxCount {
			maxCount = c
		}
	}
	_, hi := stats.WilsonInterval(maxCount, trials, 1.96)
	biasUB := hi - 1.0/float64(n)
	perTrial := elapsed.Seconds() * 1000 / float64(trials)
	batch1k := time.Duration(float64(time.Millisecond) * perTrial * 1000)

	flatMsgs, flatMS, projected, err := flatCost(n, flatTrials, flatMax, seed, workers)
	if err != nil {
		return "", err
	}
	proj := ""
	if projected {
		proj = " (proj)"
	}
	return fmt.Sprintf("| %d | %d | %d | %d%s | %.2f | %.0f%s | %.4f | %s |",
		n, e.Groups(), e.MessagesPerTrial(), flatMsgs, proj,
		perTrial, flatMS, proj, biasUB, batch1k.Round(100*time.Millisecond)), nil
}

// composedBatch runs the committee election over disjoint trial stripes,
// one recycled Runner per worker, and returns per-leader counts.
func composedBatch(e *committee.Election, trials int, seed int64, workers int) ([]int, time.Duration, error) {
	if workers < 1 {
		workers = 1
	}
	counts := make([]int, e.N()+1)
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := e.Runner()
			local := make([]int, e.N()+1)
			for t := w; t < trials; t += workers {
				res, err := r.Run(ring.TrialSeed(seed, t))
				if err != nil || res.Failed {
					if err == nil {
						err = fmt.Errorf("trial %d failed: %v", t, res.Reason)
					}
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local[res.Output]++
			}
			mu.Lock()
			for i, c := range local {
				counts[i] += c
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return counts, time.Since(start), firstErr
}

// flatCost measures (or, above flatMax, projects) the flat A-LEADuni bill
// at size n: messages per trial and milliseconds per trial.
func flatCost(n, flatTrials, flatMax int, seed int64, workers int) (msgs int, ms float64, projected bool, err error) {
	if n > flatMax {
		// A-LEADuni circulates every secret around the whole ring: n² data
		// messages. Project time from the largest measured size by the n²
		// growth law.
		baseMsgs, baseMS, _, err := flatCost(flatMax, flatTrials, flatMax, seed, workers)
		if err != nil {
			return 0, 0, false, err
		}
		scale := float64(n) * float64(n) / (float64(flatMax) * float64(flatMax))
		return int(float64(baseMsgs) * scale), baseMS * scale, true, nil
	}
	start := time.Now()
	dist, err := ring.TrialsOpts(context.Background(), ring.Spec{N: n, Protocol: alead.New(), Seed: seed},
		flatTrials, ring.TrialOptions{Workers: workers})
	if err != nil {
		return 0, 0, false, err
	}
	elapsed := time.Since(start)
	return dist.Messages / dist.Trials,
		elapsed.Seconds() * 1000 / float64(dist.Trials), false, nil
}

// parseSizes parses the -sizes list.
func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 4 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		sizes = append(sizes, v)
	}
	return sizes, nil
}
