// Command certsmoke is the end-to-end acceptance harness for the
// certification service: it boots a real fleserve binary on an ephemeral
// port, drives a certification batch over ≥ 10 distinct scenarios through
// POST /certify, and fails unless
//
//   - every sweep completes with a parseable certificate and a verdict,
//   - per-candidate NDJSON progress streamed on at least one watch,
//   - resubmitting the whole batch replays every certificate from the
//     cache byte-for-byte (deterministic sweeps make the replay exact), and
//   - the stats endpoint accounts the sweeps as certificate jobs.
//
// CI runs it via `make certify-smoke`.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"time"

	"repro/internal/equilibrium"
	// Imported for its registrations: the in-process registry must
	// match the daemon's catalog, which embeds the MAR spec twins.
	_ "repro/internal/mardsl/marlib"
	"repro/internal/scenario"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "certsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("certsmoke: PASS")
}

// smokeTrials is each sweep's per-candidate budget: enough to resolve the
// ε question at the smoke's small sizes (early stopping usually ends
// candidates around a third of it), small enough to keep the smoke quick.
const smokeTrials = 1500

// distinctCount is the number of distinct scenarios the batch certifies.
const distinctCount = 10

func run(args []string) error {
	fs := flag.NewFlagSet("certsmoke", flag.ContinueOnError)
	bin := fs.String("bin", "bin/fleserve", "path to the fleserve binary under test")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall smoke deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	addr, stop, err := startDaemon(ctx, *bin)
	if err != nil {
		return err
	}
	defer stop()

	client := service.NewClient("http://" + addr)
	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	batch := pickDistinct()
	if len(batch) < distinctCount {
		return fmt.Errorf("only %d cheap scenarios available, need %d", len(batch), distinctCount)
	}
	states, err := client.SubmitCerts(ctx, batch)
	if err != nil {
		return fmt.Errorf("submit %d-sweep batch: %w", len(batch), err)
	}

	// Wait on every sweep via the NDJSON stream, collect the certificate
	// bytes, and demand per-candidate progress on the first stream.
	results := make(map[string][]byte, len(batch))
	verdicts := map[equilibrium.Verdict]int{}
	progressed := false
	for i, st := range states {
		final, err := client.WatchCert(ctx, st.ID, func(line service.CertState) {
			if line.Progress != nil {
				progressed = true
			}
		})
		if err != nil {
			return fmt.Errorf("watch %s (%s): %w", st.ID, batch[i].Scenario, err)
		}
		if final.Status != service.StatusDone {
			return fmt.Errorf("sweep %s (%s) finished %s: %s", st.ID, batch[i].Scenario, final.Status, final.Error)
		}
		var cert equilibrium.Certificate
		if err := json.Unmarshal(final.Result, &cert); err != nil {
			return fmt.Errorf("sweep %s: bad certificate bytes: %w", st.ID, err)
		}
		if cert.Key != st.ID {
			return fmt.Errorf("sweep %s: certificate key %s diverges from its job id", st.ID, cert.Key)
		}
		verdicts[cert.Verdict]++
		results[st.ID] = final.Result
	}
	if !progressed {
		return fmt.Errorf("no watch stream carried per-candidate progress")
	}

	// Replays: resubmit the whole batch; every sweep must come back
	// already done with the exact first-run bytes.
	replays, err := client.SubmitCerts(ctx, batch)
	if err != nil {
		return fmt.Errorf("replay batch: %w", err)
	}
	for i, st := range replays {
		if st.Status != service.StatusDone {
			return fmt.Errorf("replay %d (%s) not served from cache: status %s", i, batch[i].Scenario, st.Status)
		}
		if !bytes.Equal(st.Result, results[st.ID]) {
			return fmt.Errorf("replay %d (%s) certificate bytes differ from first computation", i, batch[i].Scenario)
		}
	}

	st, err := client.Stats(ctx)
	if err != nil {
		return fmt.Errorf("statz: %w", err)
	}
	if st.Jobs.Certificates != int64(2*len(batch)) {
		return fmt.Errorf("stats count %d certificate submissions, want %d", st.Jobs.Certificates, 2*len(batch))
	}
	if st.Jobs.Fresh != int64(len(batch)) {
		return fmt.Errorf("engine ran %d sweeps for %d distinct requests", st.Jobs.Fresh, len(batch))
	}
	if verdicts[equilibrium.VerdictFair]+verdicts[equilibrium.VerdictExploitable] == 0 {
		return fmt.Errorf("every sweep came back inconclusive: the budget resolves nothing")
	}
	fmt.Printf("certsmoke: %d sweeps certified (%d fair, %d exploitable, %d inconclusive), replays byte-identical\n",
		len(batch), verdicts[equilibrium.VerdictFair], verdicts[equilibrium.VerdictExploitable],
		verdicts[equilibrium.VerdictInconclusive])
	return nil
}

// pickDistinct selects distinctCount cheap scenarios — small honest rings
// first, then small attacks — sized for speed, with distinct seeds so the
// batch genuinely mixes content addresses.
func pickDistinct() []service.CertRequest {
	var reqs []service.CertRequest
	add := func(attacks bool) {
		for _, s := range scenario.All() {
			if len(reqs) == distinctCount || (s.Attack != "") != attacks {
				continue
			}
			n := 8
			if s.MinN > n {
				n = s.MinN
			}
			if n > 24 {
				continue // keep the smoke cheap
			}
			reqs = append(reqs, service.CertRequest{
				Scenario: s.Name,
				N:        n,
				Trials:   smokeTrials,
				Seed:     int64(2000 + len(reqs)),
			})
		}
	}
	add(false)
	add(true)
	return reqs
}

// startDaemon launches the fleserve binary on an ephemeral port and returns
// its resolved address plus a stop function that terminates it.
func startDaemon(ctx context.Context, bin string) (addr string, stop func(), err error) {
	cmd := exec.CommandContext(ctx, bin, "-addr", "127.0.0.1:0", "-parallel", "2")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("start %s: %w", bin, err)
	}
	stop = func() {
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	}
	re := regexp.MustCompile(`listening on (\S+)`)
	scan := bufio.NewScanner(out)
	for scan.Scan() {
		if m := re.FindStringSubmatch(scan.Text()); m != nil {
			go func() {
				for scan.Scan() {
				}
			}()
			return m[1], stop, nil
		}
	}
	stop()
	return "", nil, fmt.Errorf("%s exited without a listening line", bin)
}
