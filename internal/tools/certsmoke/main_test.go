package main

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestCertSmokeEndToEnd builds the real fleserve binary and runs the full
// certification smoke sequence against it — the same check `make
// certify-smoke` performs in CI.
func TestCertSmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "fleserve")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/fleserve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build fleserve: %v\n%s", err, out)
	}
	if err := run([]string{"-bin", bin}); err != nil {
		t.Fatal(err)
	}
}

func TestCertSmokeBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("want flag error")
	}
}

func TestCertSmokeMissingBinary(t *testing.T) {
	if err := run([]string{"-bin", filepath.Join(t.TempDir(), "absent")}); err == nil {
		t.Fatal("want start error for missing binary")
	}
}

// TestPickDistinct checks the batch builder finds enough cheap scenarios
// and keeps their content addresses distinct.
func TestPickDistinct(t *testing.T) {
	reqs := pickDistinct()
	if len(reqs) < distinctCount {
		t.Fatalf("picked %d scenarios, want %d", len(reqs), distinctCount)
	}
	seen := map[string]bool{}
	for _, r := range reqs {
		key := r.Scenario
		if seen[key] {
			t.Errorf("scenario %s picked twice", key)
		}
		seen[key] = true
		if r.N > 24 {
			t.Errorf("%s sized n=%d, too big for a smoke", r.Scenario, r.N)
		}
	}
}
