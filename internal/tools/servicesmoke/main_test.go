package main

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestSmokeEndToEnd builds the real fleserve binary and runs the full smoke
// sequence against it — the same check `make service-smoke` performs in CI.
func TestSmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "fleserve")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/fleserve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build fleserve: %v\n%s", err, out)
	}
	if err := run([]string{"-bin", bin}); err != nil {
		t.Fatal(err)
	}
}

func TestSmokeBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("want flag error")
	}
}

func TestSmokeMissingBinary(t *testing.T) {
	if err := run([]string{"-bin", filepath.Join(t.TempDir(), "absent")}); err == nil {
		t.Fatal("want start error for missing binary")
	}
}
