// Command servicesmoke is the end-to-end acceptance harness for the
// simulation service: it boots a real fleserve binary on an ephemeral port,
// drives a 100-job concurrent batch (20 distinct scenarios × 5 identical
// submissions each) through the HTTP API, and fails unless
//
//   - every job completes,
//   - the stats endpoint reports a cache hit-rate ≥ 0.8,
//   - every duplicate's streamed result is byte-identical to its first
//     computation, replays stay byte-identical on resubmission, and
//   - each distinct job's result bytes equal a direct in-process
//     scenario run with the same parameters (the service adds transport,
//     never drift).
//
// CI runs it via `make service-smoke`.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"time"

	// Imported for its registrations: the in-process registry must
	// match the daemon's catalog, which embeds the MAR spec twins.
	_ "repro/internal/mardsl/marlib"
	"repro/internal/scenario"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "servicesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servicesmoke: PASS")
}

// smokeTrials keeps each distinct job cheap: the point is scheduling and
// caching behaviour, not statistical power.
const smokeTrials = 100

// distinctScenarios picks the uniform-election scenarios the batch mixes.
const distinctCount = 20

func run(args []string) error {
	fs := flag.NewFlagSet("servicesmoke", flag.ContinueOnError)
	bin := fs.String("bin", "bin/fleserve", "path to the fleserve binary under test")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall smoke deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	addr, stop, err := startDaemon(ctx, *bin)
	if err != nil {
		return err
	}
	defer stop()

	client := service.NewClient("http://" + addr)
	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	catalog, err := client.Scenarios(ctx)
	if err != nil {
		return fmt.Errorf("scenarios: %w", err)
	}
	if len(catalog) != len(scenario.All()) {
		return fmt.Errorf("catalog lists %d scenarios, registry has %d", len(catalog), len(scenario.All()))
	}

	// 20 distinct jobs × 5 identical copies = the 100-job batch. Seeds
	// vary per distinct job so nothing collides by accident.
	distinct := pickDistinct(catalog)
	var batch []service.JobRequest
	for copyi := 0; copyi < 5; copyi++ {
		batch = append(batch, distinct...)
	}
	states, err := client.Submit(ctx, batch)
	if err != nil {
		return fmt.Errorf("submit 100-job batch: %w", err)
	}
	if len(states) != len(batch) {
		return fmt.Errorf("submitted %d jobs, got %d states", len(batch), len(states))
	}
	// The 5 copies of each distinct job must share one content address.
	for i, st := range states {
		if want := states[i%len(distinct)].ID; st.ID != want {
			return fmt.Errorf("job %d (%s) got id %s, its first copy got %s", i, st.Scenario, st.ID, want)
		}
	}

	// Wait on every distinct job via the NDJSON stream and collect the
	// streamed result bytes.
	results := make(map[string][]byte, len(distinct))
	for i := range distinct {
		id := states[i].ID
		final, err := client.Wait(ctx, id)
		if err != nil {
			return fmt.Errorf("wait %s (%s): %w", id, distinct[i].Scenario, err)
		}
		if final.Status != service.StatusDone {
			return fmt.Errorf("job %s (%s) finished %s: %s", id, distinct[i].Scenario, final.Status, final.Error)
		}
		if len(final.Result) == 0 {
			return fmt.Errorf("job %s (%s) finished without result bytes", id, distinct[i].Scenario)
		}
		results[id] = final.Result
	}

	// Replays: resubmit the whole batch once more; every job must come
	// back already done with the exact first-run bytes.
	replays, err := client.Submit(ctx, batch)
	if err != nil {
		return fmt.Errorf("replay batch: %w", err)
	}
	for i, st := range replays {
		if st.Status != service.StatusDone {
			return fmt.Errorf("replay %d (%s) not served from cache: status %s", i, st.Scenario, st.Status)
		}
		if !bytes.Equal(st.Result, results[st.ID]) {
			return fmt.Errorf("replay %d (%s) bytes differ from first computation", i, st.Scenario)
		}
	}

	// Byte-identity against direct in-process runs.
	for i, req := range distinct {
		sc, ok := scenario.Find(req.Scenario)
		if !ok {
			return fmt.Errorf("scenario %q vanished", req.Scenario)
		}
		out, err := sc.RunOpts(ctx, req.Seed, scenario.Opts{N: req.N, Trials: req.Trials, K: req.K, Target: req.Target})
		if err != nil {
			return fmt.Errorf("direct run %s: %w", req.Scenario, err)
		}
		want, err := json.Marshal(out)
		if err != nil {
			return err
		}
		if !bytes.Equal(results[states[i].ID], want) {
			return fmt.Errorf("service result for %s differs from direct run:\nservice: %s\n direct: %s",
				req.Scenario, results[states[i].ID], want)
		}
	}

	// The acceptance bar: ≥ 0.8 job-level hit rate on the 100-job batch
	// (the replay round only pushes it higher).
	st, err := client.Stats(ctx)
	if err != nil {
		return fmt.Errorf("statz: %w", err)
	}
	if st.Cache.HitRate < 0.8 {
		return fmt.Errorf("cache hit-rate %.3f < 0.8 (hits=%d misses=%d)", st.Cache.HitRate, st.Cache.Hits, st.Cache.Misses)
	}
	if st.Jobs.Fresh != int64(len(distinct)) {
		return fmt.Errorf("engine ran %d jobs for %d distinct requests", st.Jobs.Fresh, len(distinct))
	}
	if st.Workers.ArenasAllocated == 0 {
		return fmt.Errorf("no persistent arenas allocated")
	}
	if st.Trials.Completed == 0 {
		return fmt.Errorf("stats report zero completed trials")
	}
	fmt.Printf("servicesmoke: %d jobs (%d distinct), hit-rate %.2f, %d trials at %.0f/s, %d arenas\n",
		st.Jobs.Submitted, st.Jobs.Fresh, st.Cache.HitRate, st.Trials.Completed,
		st.Trials.PerSecond, st.Workers.ArenasAllocated)
	return nil
}

// pickDistinct selects distinctCount cheap runnable scenarios, preferring
// honest (attack-free) entries, and sizes them for speed. Seeds differ per
// entry so the batch genuinely mixes content addresses.
func pickDistinct(catalog []scenario.Descriptor) []service.JobRequest {
	var reqs []service.JobRequest
	add := func(attacks bool) {
		for _, d := range catalog {
			if len(reqs) == distinctCount || (d.Attack != "") != attacks {
				continue
			}
			n := 8
			if d.MinN > n {
				n = d.MinN
			}
			reqs = append(reqs, service.JobRequest{
				Scenario: d.Name,
				N:        n,
				Trials:   smokeTrials,
				Seed:     int64(1000 + len(reqs)),
			})
		}
	}
	add(false)
	add(true) // only if fewer than distinctCount honest scenarios exist
	return reqs
}

// startDaemon launches the fleserve binary on an ephemeral port and returns
// its resolved address plus a stop function that terminates it.
func startDaemon(ctx context.Context, bin string) (addr string, stop func(), err error) {
	cmd := exec.CommandContext(ctx, bin, "-addr", "127.0.0.1:0", "-parallel", "2")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("start %s: %w", bin, err)
	}
	stop = func() {
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	}
	re := regexp.MustCompile(`listening on (\S+)`)
	scan := bufio.NewScanner(out)
	for scan.Scan() {
		if m := re.FindStringSubmatch(scan.Text()); m != nil {
			// Keep draining stdout so the daemon never blocks on a full
			// pipe.
			go func() {
				for scan.Scan() {
				}
			}()
			return m[1], stop, nil
		}
	}
	stop()
	return "", nil, fmt.Errorf("%s exited without a listening line", bin)
}
