// Command profcapture captures a CPU profile of a live fleserve daemon
// under load: it boots the real binary with -pprof on an ephemeral port,
// submits an E5-shaped job batch (honest A-LEADuni at n=64, the workload
// behind the suite's heaviest resilience table), pulls
// /debug/pprof/profile while the engine is busy, and writes the profile
// for `go tool pprof`. The outstanding jobs are canceled once the window
// closes, so the capture's wall clock is the profile window plus startup.
//
// CI does not run it; `make profile` is the operator entry point.
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "profcapture: FAIL:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("profcapture", flag.ContinueOnError)
	bin := fs.String("bin", "bin/fleserve", "path to the fleserve binary under test")
	out := fs.String("out", "bench/e5.cpu.pprof", "output path for the CPU profile")
	seconds := fs.Int("seconds", 10, "CPU profile window in seconds")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	addr, stop, err := startDaemon(ctx, *bin)
	if err != nil {
		return err
	}
	defer stop()

	client := service.NewClient("http://" + addr)
	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// Enough distinct jobs to keep every engine slot busy for well over
	// the profile window; seeds differ so no submission collapses into a
	// cache hit.
	var batch []service.JobRequest
	for i := 0; i < 8; i++ {
		batch = append(batch, service.JobRequest{
			Scenario: "ring/a-lead/fifo",
			N:        64,
			Trials:   1_000_000,
			Seed:     int64(5000 + i),
		})
	}
	states, err := client.Submit(ctx, batch)
	if err != nil {
		return fmt.Errorf("submit load batch: %w", err)
	}

	url := fmt.Sprintf("http://%s/debug/pprof/profile?seconds=%d", addr, *seconds)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("capture %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("capture %s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	profile, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("read profile: %w", err)
	}
	// pprof profiles are gzip-framed protobufs; reject anything else
	// before writing (an HTML error page would otherwise pass silently).
	if len(profile) < 2 || profile[0] != 0x1f || profile[1] != 0x8b {
		return fmt.Errorf("response is not a gzip pprof profile (%d bytes)", len(profile))
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(*out, profile, 0o644); err != nil {
		return err
	}

	// The load batch has served its purpose; cancel what's still queued or
	// running so the daemon shuts down promptly.
	for _, st := range states {
		_ = client.Cancel(ctx, st.ID)
	}
	fmt.Printf("profcapture: wrote %d-second CPU profile (%d bytes) to %s\n", *seconds, len(profile), *out)
	fmt.Printf("profcapture: inspect with: go tool pprof %s\n", *out)
	return nil
}

// startDaemon launches the fleserve binary with profiling enabled on an
// ephemeral port and returns its resolved address plus a stop function.
func startDaemon(ctx context.Context, bin string) (addr string, stop func(), err error) {
	cmd := exec.CommandContext(ctx, bin, "-addr", "127.0.0.1:0", "-parallel", "2", "-pprof")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("start %s: %w", bin, err)
	}
	stop = func() {
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	}
	re := regexp.MustCompile(`listening on (\S+)`)
	scan := bufio.NewScanner(out)
	for scan.Scan() {
		if m := re.FindStringSubmatch(scan.Text()); m != nil {
			go func() {
				for scan.Scan() {
				}
			}()
			return m[1], stop, nil
		}
	}
	stop()
	return "", nil, fmt.Errorf("%s exited without a listening line", bin)
}
