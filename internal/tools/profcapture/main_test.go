package main

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestProfcaptureEndToEnd builds the real fleserve binary and captures a
// short CPU profile from it under the E5-shaped load — the same sequence
// `make profile` runs, shrunk to a 1-second window.
func TestProfcaptureEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and profiles a live daemon")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "fleserve")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/fleserve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build fleserve: %v\n%s", err, out)
	}
	out := filepath.Join(dir, "profiles", "e5.cpu.pprof")
	if err := run([]string{"-bin", bin, "-out", out, "-seconds", "1"}); err != nil {
		t.Fatal(err)
	}
	if fi, err := filepath.Glob(out); err != nil || len(fi) != 1 {
		t.Fatalf("profile not written: %v %v", fi, err)
	}
}

func TestProfcaptureBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("want flag error")
	}
}

func TestProfcaptureMissingBinary(t *testing.T) {
	if err := run([]string{"-bin", filepath.Join(t.TempDir(), "absent")}); err == nil {
		t.Fatal("want start error for missing binary")
	}
}
