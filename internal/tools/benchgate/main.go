// Command benchgate is the CI performance-regression gate: it re-times the
// gate benchmarks (E1, E9, E11 — one cheap, one attack-heavy, one
// tree-topology experiment) and compares their ns/op against the committed
// BENCH_*.txt baseline. The build fails when the geometric mean of the
// new/old ratios exceeds the threshold (default +15%).
//
// The gate takes the minimum of -count runs on the fresh side — the
// standard noise floor for wall-clock benchmarks on shared runners — while
// the baseline side reads the committed recording as-is. A geomean over
// three benchmarks with a 15% margin tolerates runner jitter; a kernel
// regression (the thing the gate exists for) moves all three together and
// trips it.
//
// Usage: benchgate [-baseline BENCH_X.txt] [-threshold 1.15] [-count 3]
//
// An empty -baseline picks the newest committed BENCH_*.txt by name. CI
// runs it via `make bench-gate`.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// gateBenchmarks are the tracked benchmarks: experiment E1 (Basic-LEAD
// single adversary), E9 (sum-phase attack), E11 (tree impossibility), and
// the committee-sharded election at n=10,000.
var gateBenchmarks = []string{
	"BenchmarkE1BasicLeadSingleAdversary",
	"BenchmarkE9SumPhaseAttack",
	"BenchmarkE11TreeImpossibility",
	"BenchmarkCommittee10k",
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baseline := fs.String("baseline", "", "committed BENCH_*.txt to gate against (empty = newest by name)")
	threshold := fs.Float64("threshold", 1.15, "maximum allowed geomean of new/old ns/op ratios")
	count := fs.Int("count", 3, "fresh runs per benchmark; the minimum is compared")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := *baseline
	if path == "" {
		var err error
		if path, err = newestBaseline(); err != nil {
			return err
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	old := parseBench(string(raw))

	out, err := exec.Command("go", "test", "-run", "^$",
		"-bench", gatePattern(), "-count", strconv.Itoa(*count), ".").CombinedOutput()
	if err != nil {
		return fmt.Errorf("bench run: %w\n%s", err, out)
	}
	fresh := parseBench(string(out))

	fmt.Printf("benchgate: baseline %s, threshold %.2f\n", path, *threshold)
	geomean := 1.0
	for _, name := range gateBenchmarks {
		oldNs, ok := old[name]
		if !ok {
			return fmt.Errorf("baseline %s has no recording for %s", path, name)
		}
		newNs, ok := fresh[name]
		if !ok {
			return fmt.Errorf("fresh run produced no result for %s\n%s", name, out)
		}
		ratio := newNs / oldNs
		geomean *= ratio
		fmt.Printf("  %-40s %12.0f -> %12.0f ns/op  (x%.3f)\n", name, oldNs, newNs, ratio)
	}
	geomean = math.Pow(geomean, 1/float64(len(gateBenchmarks)))
	fmt.Printf("  geomean ratio: x%.3f\n", geomean)
	if geomean > *threshold {
		return fmt.Errorf("geomean ns/op ratio %.3f exceeds threshold %.2f: performance regression against %s",
			geomean, *threshold, path)
	}
	fmt.Println("benchgate: PASS")
	return nil
}

// gatePattern anchors each gate benchmark name exactly.
func gatePattern() string {
	p := "^("
	for i, name := range gateBenchmarks {
		if i > 0 {
			p += "|"
		}
		p += name
	}
	return p + ")$"
}

// newestBaseline picks the lexically newest committed recording — the
// BENCH_<date>[_<tag>].txt naming makes name order date order.
func newestBaseline() (string, error) {
	matches, err := filepath.Glob("BENCH_*.txt")
	if err != nil || len(matches) == 0 {
		return "", fmt.Errorf("no committed BENCH_*.txt baseline found")
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

// benchLine matches one benchmark result, tolerating the committed .txt
// twins' habit of splitting a benchmark's name and numbers across two lines
// (they are recovered by the joiner in parseBench) and stripping the
// -GOMAXPROCS suffix so recordings from different machines share keys.
var benchLine = regexp.MustCompile(`(Benchmark[A-Za-z0-9_/]+)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// joinSplit glues a benchmark name left alone at the end of a line to the
// numbers on the next line, the shape bench.sh's txt twins record.
var joinSplit = regexp.MustCompile(`(Benchmark[A-Za-z0-9_/-]+)[ \t]*\n[ \t]+`)

// parseBench extracts minimum ns/op per benchmark name from go test -bench
// output (or a recorded .txt twin).
func parseBench(s string) map[string]float64 {
	res := make(map[string]float64)
	joined := joinSplit.ReplaceAllString(s, "$1 ")
	for _, m := range benchLine.FindAllStringSubmatch(joined, -1) {
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := res[m[1]]; !ok || ns < prev {
			res[m[1]] = ns
		}
	}
	return res
}
