package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// chdir switches the working directory for one test and restores it.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

func TestParseBench(t *testing.T) {
	out := `goos: linux
BenchmarkE1BasicLeadSingleAdversary-8   	    1000	    120000 ns/op
BenchmarkE1BasicLeadSingleAdversary-8   	    1200	    110000 ns/op
BenchmarkE9SumPhaseAttack
	     500	   2400000.5 ns/op
PASS
`
	res := parseBench(out)
	if res["BenchmarkE1BasicLeadSingleAdversary"] != 110000 {
		t.Fatalf("min ns/op not kept: %v", res)
	}
	if res["BenchmarkE9SumPhaseAttack"] != 2400000.5 {
		t.Fatalf("split-line recording not joined: %v", res)
	}
	if len(res) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(res), res)
	}
}

func TestGatePatternAnchorsEveryGateBenchmark(t *testing.T) {
	re, err := regexp.Compile(gatePattern())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range gateBenchmarks {
		if !re.MatchString(name) {
			t.Fatalf("pattern misses %s", name)
		}
		if re.MatchString(name + "Extra") {
			t.Fatalf("pattern not anchored: matched %sExtra", name)
		}
	}
}

func TestNewestBaselinePicksLexicallyLast(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2026-01-01.txt", "BENCH_2026-02-01_fleet.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	chdir(t, dir)
	got, err := newestBaseline()
	if err != nil || got != "BENCH_2026-02-01_fleet.txt" {
		t.Fatalf("newestBaseline = %q err %v", got, err)
	}
}

func TestRunErrorPaths(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("want flag error")
	}
	empty := t.TempDir()
	chdir(t, empty)
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "no committed BENCH_") {
		t.Fatalf("want missing-baseline error, got %v", err)
	}
	if err := run([]string{"-baseline", filepath.Join(empty, "absent.txt")}); err == nil {
		t.Fatal("want read error for absent baseline")
	}
	// A baseline missing a gate benchmark fails after the fresh timing run;
	// outside a module the bench invocation itself fails first — either way
	// run must surface an error, not gate on partial data.
	if err := os.WriteFile("BENCH_2026-03-01.txt", []byte("BenchmarkOther 1 5 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-count", "1"}); err == nil {
		t.Fatal("want error for baseline without gate benchmarks")
	}
}
