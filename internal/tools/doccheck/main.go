// Command doccheck enforces the repository's documentation floor. It has
// three checks, all pure go/ast analysis with no dependencies:
//
//   - every package reachable under the roots passed via -pkgdoc must carry
//     a package doc comment (the ARCHITECTURE.md acceptance bar: all of
//     internal/ plus the root package);
//   - every exported top-level identifier in the directories passed as
//     positional arguments (the public API) must carry a doc comment;
//   - every exported top-level function in the directories passed via
//     -apicheck must take at most three positional parameters (a leading
//     context.Context is free), so new root entry points grow spec/options
//     structs instead of positional tails. Functions whose doc comment
//     carries a "Deprecated:" paragraph are exempt (the legacy wrappers
//     being migrated away from are the rule's reason to exist), and a
//     //doccheck:allow-positional directive in the doc comment grants an
//     explicit waiver.
//
// Usage:
//
//	go run ./internal/tools/doccheck [-pkgdoc root]... [-apicheck dir]... [dir]...
//
// Exit status is non-zero if any check fails; each failure is reported as
// file:line so editors can jump to it. The make docs-check target wires
// this into CI.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	var pkgdocRoots, apiRoots multiFlag
	flag.Var(&pkgdocRoots, "pkgdoc", "root directory whose packages must all have package doc comments (repeatable)")
	flag.Var(&apiRoots, "apicheck", "directory whose exported functions must take ≤ 3 positional parameters (repeatable)")
	flag.Parse()

	failures := 0
	report := func(pos token.Position, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "%s: %s\n", pos, fmt.Sprintf(format, args...))
		failures++
	}

	for _, root := range pkgdocRoots {
		if err := walkPackages(root, func(dir string) error {
			return checkPackageDoc(dir, report)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
	}
	for _, dir := range flag.Args() {
		if err := checkExportedDocs(dir, report); err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
	}
	for _, dir := range apiRoots {
		if err := checkPositionalParams(dir, report); err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d violation(s)\n", failures)
		os.Exit(1)
	}
}

type multiFlag []string

// String implements flag.Value.
func (m *multiFlag) String() string { return strings.Join(*m, ",") }

// Set implements flag.Value.
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// walkPackages calls fn for every directory under root that contains at
// least one non-test Go file, skipping testdata and hidden directories.
func walkPackages(root string, fn func(dir string) error) error {
	seen := map[string]bool{}
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (len(name) > 1 && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if seen[dir] {
			return nil
		}
		seen[dir] = true
		return fn(dir)
	})
}

// parseDir parses the non-test Go files of one directory with comments.
func parseDir(dir string) (*token.FileSet, []*ast.File, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	return fset, files, nil
}

// checkPackageDoc reports a failure if no file of the package carries a
// package doc comment.
func checkPackageDoc(dir string, report func(token.Position, string, ...any)) error {
	fset, files, err := parseDir(dir)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return nil
	}
	for _, f := range files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return nil
		}
	}
	report(fset.Position(files[0].Package), "package %s has no package doc comment", files[0].Name.Name)
	return nil
}

// checkExportedDocs reports every exported top-level identifier (type, func,
// method on an exported type, const, var) without a doc comment. Grouped
// const/var declarations are satisfied by a doc comment on the group.
func checkExportedDocs(dir string, report func(token.Position, string, ...any)) error {
	fset, files, err := parseDir(dir)
	if err != nil {
		return err
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedReceiver(d) {
					continue
				}
				if d.Doc == nil {
					report(fset.Position(d.Pos()), "exported %s %s has no doc comment", declKind(d), d.Name.Name)
				}
			case *ast.GenDecl:
				checkGenDecl(fset, d, report)
			}
		}
	}
	return nil
}

// exportedReceiver reports whether a function is free-standing or a method
// on an exported named type (methods on unexported types are not API).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic receiver instantiations like T[S].
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if idx, ok := t.(*ast.IndexListExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// maxPositional is the parameter budget for exported functions under
// -apicheck; anything wider must take a spec or options struct.
const maxPositional = 3

// checkPositionalParams reports every exported free-standing function with
// more than maxPositional parameters, not counting a leading
// context.Context. "Deprecated:" doc comments are exempt — the rule exists
// to stop the next positional API, not to force-break the wrappers being
// migrated away from — and //doccheck:allow-positional in the doc comment
// is an explicit reviewed waiver.
func checkPositionalParams(dir string, report func(token.Position, string, ...any)) error {
	fset, files, err := parseDir(dir)
	if err != nil {
		return err
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Recv != nil || !d.Name.IsExported() {
				continue
			}
			if isDeprecated(d.Doc) || hasDirective(d.Doc, "doccheck:allow-positional") {
				continue
			}
			if n := positionalParams(d.Type); n > maxPositional {
				report(fset.Position(d.Pos()),
					"exported function %s takes %d positional parameters (max %d): use a spec/options struct, mark it Deprecated:, or add //doccheck:allow-positional",
					d.Name.Name, n, maxPositional)
			}
		}
	}
	return nil
}

// positionalParams counts a signature's parameters, with a leading
// context.Context free of charge.
func positionalParams(ft *ast.FuncType) int {
	if ft.Params == nil {
		return 0
	}
	n := 0
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			n++
			continue
		}
		n += len(field.Names)
	}
	if len(ft.Params.List) > 0 && isContextContext(ft.Params.List[0].Type) &&
		len(ft.Params.List[0].Names) <= 1 {
		n--
	}
	return n
}

// isContextContext reports whether an expression is the type context.Context.
func isContextContext(t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context"
}

// isDeprecated reports whether a doc comment carries a standard
// "Deprecated:" paragraph.
func isDeprecated(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(doc.Text(), "Deprecated:")
}

// hasDirective reports whether a doc comment contains the given //-directive
// line. Directives are stripped from CommentGroup.Text, so scan the raw
// comment list.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == directive {
			return true
		}
	}
	return false
}

// checkGenDecl enforces doc comments on exported types, consts and vars.
func checkGenDecl(fset *token.FileSet, d *ast.GenDecl, report func(token.Position, string, ...any)) {
	groupDocumented := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(fset.Position(s.Pos()), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDocumented || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(fset.Position(s.Pos()), "exported %s %s has no doc comment", d.Tok, name.Name)
					break
				}
			}
		}
	}
}
