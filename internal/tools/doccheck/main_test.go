package main

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func collect(failures *[]string) func(token.Position, string, ...any) {
	return func(pos token.Position, format string, args ...any) {
		*failures = append(*failures, format)
	}
}

func TestCheckPackageDoc(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "good"), "good.go", "// Package good is documented.\npackage good\n")
	write(t, filepath.Join(root, "bad"), "bad.go", "package bad\n")
	write(t, filepath.Join(root, "bad"), "bad_test.go", "// Package bad test file docs do not count.\npackage bad\n")
	write(t, filepath.Join(root, "testdata"), "skipped.go", "package skipped\n")

	var failures []string
	err := walkPackages(root, func(dir string) error {
		return checkPackageDoc(dir, collect(&failures))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 {
		t.Fatalf("got %d failures (%v), want exactly the undocumented package", len(failures), failures)
	}
}

func TestCheckExportedDocs(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "api.go", `// Package api is documented.
package api

// Documented is fine.
func Documented() {}

func Undocumented() {}

// T is fine.
type T struct{}

// Method is fine.
func (T) Method() {}

func (T) Naked() {}

type U struct{}

type hidden struct{}

func (hidden) NotAPI() {}

// Group doc satisfies the whole block.
const (
	A = 1
	B = 2
)

var Loose = 3
`)
	var failures []string
	if err := checkExportedDocs(dir, collect(&failures)); err != nil {
		t.Fatal(err)
	}
	// Undocumented func, T.Naked method, type U, var Loose.
	if len(failures) != 4 {
		t.Fatalf("got %d failures (%v), want 4", len(failures), failures)
	}
}

func TestRepositoryPassesItsOwnFloor(t *testing.T) {
	// The repo root is three levels up; the floor this tool enforces in CI
	// must hold for the tree the test runs in.
	root := filepath.Join("..", "..", "..")
	var failures []string
	err := walkPackages(root, func(dir string) error {
		return checkPackageDoc(dir, collect(&failures))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := checkExportedDocs(root, collect(&failures)); err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("documentation floor violated: %v", failures)
	}
}
