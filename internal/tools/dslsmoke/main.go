// Command dslsmoke is the end-to-end acceptance harness for the MAR spec
// pipeline: it generates a protocol spec and an adversary spec from a
// fixed seed, registers them in-process, writes them to disk, boots a real
// fleserve binary with the same files on its -mar flag, and fails unless
//
//   - the daemon's catalog lists every generated scenario and matches the
//     in-process registry entry for entry,
//   - a trial job on a generated scenario streams result bytes identical
//     to a direct in-process run with the same parameters, and
//   - a certification sweep over the generated adversary completes with a
//     parseable certificate carrying a verdict.
//
// CI runs it via `make dsl-smoke`.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"time"

	"repro/internal/equilibrium"
	"repro/internal/mardsl"
	"repro/internal/mardsl/marlib"
	"repro/internal/scenario"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dslsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("dslsmoke: PASS")
}

func run(args []string) error {
	fs := flag.NewFlagSet("dslsmoke", flag.ContinueOnError)
	bin := fs.String("bin", "bin/fleserve", "path to the fleserve binary under test")
	seed := fs.Int64("seed", 20180516, "generator seed for the smoke specs")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall smoke deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Generate both spec kinds, register them in this process (the
	// reference registry), and persist them for the daemon's -mar flag.
	dir, err := os.MkdirTemp("", "dslsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	specs := []struct{ kind, src string }{
		{"protocol.mar", mardsl.GenerateProtocol(*seed)},
		{"adversary.mar", mardsl.GenerateAdversary(*seed)},
	}
	var files, names []string
	for _, sp := range specs {
		kind, src := sp.kind, sp.src
		path := filepath.Join(dir, kind)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			return err
		}
		got, err := marlib.Register(src)
		if err != nil {
			return fmt.Errorf("register %s: %w", kind, err)
		}
		files = append(files, path)
		names = append(names, got...)
	}
	if len(names) != 4 {
		return fmt.Errorf("generated specs registered %d scenarios, want 4 (3 honest + 1 attack): %v", len(names), names)
	}

	addr, stop, err := startDaemon(ctx, *bin, files)
	if err != nil {
		return err
	}
	defer stop()

	client := service.NewClient("http://" + addr)
	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	catalog, err := client.Scenarios(ctx)
	if err != nil {
		return fmt.Errorf("scenarios: %w", err)
	}
	if len(catalog) != len(scenario.All()) {
		return fmt.Errorf("daemon lists %d scenarios, local registry has %d", len(catalog), len(scenario.All()))
	}
	listed := make(map[string]bool, len(catalog))
	for _, d := range catalog {
		listed[d.Name] = true
	}
	for _, name := range names {
		if !listed[name] {
			return fmt.Errorf("daemon catalog is missing generated scenario %s", name)
		}
	}

	// One trial job per generated scenario: the daemon's streamed result
	// bytes must equal a direct in-process run.
	var batch []service.JobRequest
	for i, name := range names {
		batch = append(batch, service.JobRequest{Scenario: name, Trials: 120, Seed: int64(4000 + i)})
	}
	states, err := client.Submit(ctx, batch)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	for i, st := range states {
		final, err := client.Wait(ctx, st.ID)
		if err != nil {
			return fmt.Errorf("wait %s (%s): %w", st.ID, batch[i].Scenario, err)
		}
		if final.Status != service.StatusDone {
			return fmt.Errorf("job %s (%s) finished %s: %s", st.ID, batch[i].Scenario, final.Status, final.Error)
		}
		sc, ok := scenario.Find(batch[i].Scenario)
		if !ok {
			return fmt.Errorf("scenario %q vanished locally", batch[i].Scenario)
		}
		out, err := sc.RunOpts(ctx, batch[i].Seed, scenario.Opts{Trials: batch[i].Trials})
		if err != nil {
			return fmt.Errorf("direct run %s: %w", batch[i].Scenario, err)
		}
		want, err := json.Marshal(out)
		if err != nil {
			return err
		}
		if !bytes.Equal(final.Result, want) {
			return fmt.Errorf("service result for %s differs from direct run:\nservice: %s\n direct: %s",
				batch[i].Scenario, final.Result, want)
		}
	}

	// Certify the generated adversary's attack scenario through the
	// daemon: the sweep must finish with a verdict-bearing certificate.
	attack := names[len(names)-1]
	certs, err := client.SubmitCerts(ctx, []service.CertRequest{{Scenario: attack, Trials: 600, Seed: 9}})
	if err != nil {
		return fmt.Errorf("submit cert: %w", err)
	}
	final, err := client.WatchCert(ctx, certs[0].ID, func(service.CertState) {})
	if err != nil {
		return fmt.Errorf("watch cert %s: %w", certs[0].ID, err)
	}
	if final.Status != service.StatusDone {
		return fmt.Errorf("sweep %s finished %s: %s", certs[0].ID, final.Status, final.Error)
	}
	var cert equilibrium.Certificate
	if err := json.Unmarshal(final.Result, &cert); err != nil {
		return fmt.Errorf("bad certificate bytes: %w", err)
	}
	switch cert.Verdict {
	case equilibrium.VerdictFair, equilibrium.VerdictExploitable, equilibrium.VerdictInconclusive:
	default:
		return fmt.Errorf("certificate for %s carries no verdict: %s", attack, final.Result)
	}
	fmt.Printf("dslsmoke: %d generated scenarios served byte-identically, %s certified %s\n",
		len(names), attack, cert.Verdict)
	return nil
}

// startDaemon launches the fleserve binary on an ephemeral port with the
// spec files on its -mar flag and returns its resolved address plus a stop
// function that terminates it.
func startDaemon(ctx context.Context, bin string, marFiles []string) (addr string, stop func(), err error) {
	args := []string{"-addr", "127.0.0.1:0", "-parallel", "1"}
	for _, f := range marFiles {
		args = append(args, "-mar", f)
	}
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("start %s: %w", bin, err)
	}
	stop = func() {
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	}
	re := regexp.MustCompile(`listening on (\S+)`)
	scan := bufio.NewScanner(out)
	for scan.Scan() {
		if m := re.FindStringSubmatch(scan.Text()); m != nil {
			// Keep draining stdout so the daemon never blocks on a full
			// pipe.
			go func() {
				for scan.Scan() {
				}
			}()
			return m[1], stop, nil
		}
	}
	stop()
	return "", nil, fmt.Errorf("%s exited without a listening line", bin)
}
