package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Job produces one trial of a Monte-Carlo batch. Implementations must be
// safe for concurrent use: Trial is called from multiple goroutines with
// distinct trial indices. Determinism across worker counts requires that
// the result depend only on the trial index (derive per-trial randomness
// from it with sim.Mix64, never from shared mutable state).
type Job interface {
	// Trial runs the t-th trial (t in [0, trials)) and returns its outcome.
	//
	// arena is the calling worker's recycled simulation workspace: run the
	// trial's execution through it (sim.Arena.Run, ring.RunArena, …) and
	// the batch stays near-allocation-free. It is never shared between
	// workers, may be nil, and jobs that do not build sim networks simply
	// ignore it. The returned Result may alias arena memory — the engine
	// folds it into the worker's shard before the next Trial call, and
	// sinks must not retain the Result's slices.
	Trial(t int, arena *sim.Arena) (sim.Result, error)
}

// JobFunc adapts a function to the Job interface.
type JobFunc func(t int, arena *sim.Arena) (sim.Result, error)

// Trial implements Job.
func (f JobFunc) Trial(t int, arena *sim.Arena) (sim.Result, error) { return f(t, arena) }

// ChunkJob produces trials a contiguous work-claim chunk at a time, the
// batched form of Job: the engine hands a whole [start, end) range to one
// worker so per-trial overheads — strategy-vector construction, scheduler
// setup, bounds validation — amortize across the chunk. Implementations must
// be safe for concurrent use on distinct ranges, and every per-trial result
// must depend only on the trial index, exactly as for Job; the merged shard
// is then identical for every worker count and chunk size.
type ChunkJob interface {
	// RunChunk runs trials [start, end) in ascending order on the worker's
	// arena, calling add exactly once per completed trial, in trial order.
	// On failure it returns the failing trial's index with the error;
	// results added before the failure are discarded with the batch.
	RunChunk(start, end int, arena *sim.Arena, add func(sim.Result)) (int, error)
}

// ChunkFunc adapts a function to the ChunkJob interface.
type ChunkFunc func(start, end int, arena *sim.Arena, add func(sim.Result)) (int, error)

// RunChunk implements ChunkJob.
func (f ChunkFunc) RunChunk(start, end int, arena *sim.Arena, add func(sim.Result)) (int, error) {
	return f(start, end, arena, add)
}

// jobChunks lowers a per-trial Job onto the chunked interface.
type jobChunks struct{ job Job }

func (j jobChunks) RunChunk(start, end int, arena *sim.Arena, add func(sim.Result)) (int, error) {
	for t := start; t < end; t++ {
		res, err := j.job.Trial(t, arena)
		if err != nil {
			return t, err
		}
		add(res)
	}
	return 0, nil
}

// Sink tells the engine how to accumulate results into per-worker shards of
// type S and merge them. All three functions must be deterministic; Add and
// Merge must commute (counter sums do), which is what makes the merged
// result independent of trial scheduling.
type Sink[S any] struct {
	// New allocates an empty shard.
	New func() S
	// Add folds one trial result into a shard. It is never called
	// concurrently on the same shard.
	Add func(S, sim.Result)
	// Merge folds src into dst. Called single-threaded during the final
	// (or frontier) merge.
	Merge func(dst, src S)
}

// trialError is an error annotated with the index of the trial that raised
// it, so the engine can report the lowest-indexed failure deterministically.
type trialError struct {
	trial int
	err   error
}

// Run executes trials jobs on opts.Workers workers and returns the merged
// shard. For a fixed job and base seed the returned shard is identical for
// every worker count, including 1 (sequential). On error, the batch is
// abandoned and the lowest-indexed failure observed is returned (jobs whose
// errors depend only on configuration, not the trial index — the common
// case — therefore report deterministically); on context cancellation,
// ctx.Err() is returned.
func Run[S any](ctx context.Context, trials int, job Job, sink Sink[S], opts Options[S]) (S, error) {
	return RunBatch(ctx, trials, jobChunks{job}, sink, opts)
}

// RunBatch is Run for chunked jobs: the unit of work claimed by a worker is
// a whole contiguous trial range, so the job can thread batch state (a
// reused strategy vector, a pre-validated configuration) through all trials
// of the chunk. Cancellation is observed between chunks; a chunk in flight
// runs to completion first.
func RunBatch[S any](ctx context.Context, trials int, job ChunkJob, sink Sink[S], opts Options[S]) (S, error) {
	merged := sink.New()
	if trials <= 0 {
		return merged, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > trials {
		workers = trials
	}
	chunk := opts.Chunk
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if opts.Stop != nil || opts.Observe != nil {
		// Observers ride the same chunk-ordered frontier machinery as
		// stopping rules: both need deterministic prefixes.
		return runAdaptive(ctx, trials, chunk, workers, job, sink, opts, merged)
	}
	if workers == 1 {
		// Sequential fast path: one shard, one arena, no goroutines.
		arena := opts.Arenas.Get()
		defer opts.Arenas.Put(arena)
		add := func(res sim.Result) { sink.Add(merged, res) }
		for start := 0; start < trials; start += chunk {
			if err := ctx.Err(); err != nil {
				var zero S
				return zero, err
			}
			end := start + chunk
			if end > trials {
				end = trials
			}
			if _, err := job.RunChunk(start, end, arena, add); err != nil {
				var zero S
				return zero, err
			}
		}
		return merged, nil
	}

	var (
		cursor  atomic.Int64 // next chunk start
		wg      sync.WaitGroup
		shards  = make([]S, workers)
		mu      sync.Mutex
		firstER *trialError
	)
	fail := func(t int, err error) {
		mu.Lock()
		if firstER == nil || t < firstER.trial {
			firstER = &trialError{trial: t, err: err}
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstER != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := sink.New()
			shards[w] = shard
			add := func(res sim.Result) { sink.Add(shard, res) }
			// Each worker owns one arena for the duration of the batch;
			// trials claimed by this worker recycle its network, RNGs,
			// and scratch buffers. With opts.Arenas the arena outlives
			// the batch on the shared pool.
			arena := opts.Arenas.Get()
			defer opts.Arenas.Put(arena)
			for {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= trials {
					return
				}
				end := start + chunk
				if end > trials {
					end = trials
				}
				if ctx.Err() != nil {
					return
				}
				if t, err := job.RunChunk(start, end, arena, add); err != nil {
					fail(t, err)
					return
				}
				if failed() {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		var zero S
		return zero, err
	}
	if firstER != nil {
		var zero S
		return zero, firstER.err
	}
	for _, shard := range shards {
		sink.Merge(merged, shard)
	}
	return merged, nil
}

// runAdaptive executes the batch with per-chunk shards and an in-order
// frontier merge, so the early-stopping rule and the Observe hook both see
// deterministic prefixes (chunks 0..i) regardless of which workers ran
// which chunks. Chunks completed beyond the stopping point are discarded:
// wasted work, never nondeterminism. With only an Observe hook (Stop nil)
// the batch always runs to completion.
func runAdaptive[S any](ctx context.Context, trials, chunk, workers int, job ChunkJob, sink Sink[S], opts Options[S], merged S) (S, error) {
	numChunks := (trials + chunk - 1) / chunk
	var (
		cursor   atomic.Int64
		stopAt   atomic.Int64 // first chunk index NOT to run; numChunks = no stop
		wg       sync.WaitGroup
		mu       sync.Mutex
		results  = make([]S, numChunks)
		done     = make([]bool, numChunks)
		frontier = 0 // chunks [0, frontier) merged into merged
		stopped  = false
		firstER  *trialError
	)
	stopAt.Store(int64(numChunks))
	// advance merges consecutive completed chunks into the prefix and
	// evaluates the stopping rule at each boundary, in chunk order.
	advance := func() {
		if firstER != nil {
			return // batch abandoned; don't let a firing Stop rule resurrect stopAt
		}
		for frontier < numChunks && done[frontier] && !stopped {
			if int64(frontier) >= stopAt.Load() {
				break
			}
			sink.Merge(merged, results[frontier])
			var zero S
			results[frontier] = zero // release
			frontier++
			prefixTrials := frontier * chunk
			if prefixTrials > trials {
				prefixTrials = trials
			}
			if opts.Observe != nil {
				opts.Observe(merged, prefixTrials)
			}
			if opts.Stop != nil && opts.Stop(merged, prefixTrials) {
				stopped = true
				stopAt.Store(int64(frontier))
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker arena, exactly as in the non-adaptive path.
			arena := opts.Arenas.Get()
			defer opts.Arenas.Put(arena)
			for {
				c := int(cursor.Add(1)) - 1
				if c >= numChunks || int64(c) >= stopAt.Load() {
					return
				}
				shard := sink.New()
				start, end := c*chunk, (c+1)*chunk
				if end > trials {
					end = trials
				}
				if ctx.Err() != nil {
					return
				}
				add := func(res sim.Result) { sink.Add(shard, res) }
				if t, err := job.RunChunk(start, end, arena, add); err != nil {
					mu.Lock()
					if firstER == nil || t < firstER.trial {
						firstER = &trialError{trial: t, err: err}
					}
					mu.Unlock()
					// Abandon the batch: stop every worker from claiming
					// further chunks.
					stopAt.Store(0)
					return
				}
				mu.Lock()
				results[c], done[c] = shard, true
				advance()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		var zero S
		return zero, err
	}
	if firstER != nil {
		var zero S
		return zero, firstER.err
	}
	return merged, nil
}
