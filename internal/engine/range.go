package engine

import (
	"context"
	"fmt"

	"repro/internal/sim"
)

// RunRange executes trials [start, end) of a larger logical batch and
// returns their merged shard. Trial indices passed to the job are the
// logical ones — trial t of RunRange(start, end) is trial t of the full
// batch — so per-trial seed derivations are unchanged and the shard is
// exactly the contribution those trials make to the full run. Because sink
// merges are commutative counter sums, merging the shards of any partition
// of [0, trials) reproduces the full batch's result bit-for-bit; this is
// the primitive behind remote chunk claiming, where worker nodes each run a
// sub-range and a coordinator folds the shards back together.
func RunRange[S any](ctx context.Context, start, end int, job ChunkJob, sink Sink[S], opts Options[S]) (S, error) {
	if start < 0 || end < start {
		var zero S
		return zero, fmt.Errorf("engine: invalid trial range [%d, %d)", start, end)
	}
	return RunBatch(ctx, end-start, offsetJob{job: job, off: start}, sink, opts)
}

// offsetJob shifts a chunk job's trial indices by a fixed offset, so the
// engine's internal [0, end-start) claiming surfaces as logical trials
// [start, end) to the underlying job. Failure indices reported by the inner
// job are already logical and pass through untouched.
type offsetJob struct {
	job ChunkJob
	off int
}

// RunChunk implements ChunkJob.
func (o offsetJob) RunChunk(start, end int, arena *sim.Arena, add func(sim.Result)) (int, error) {
	return o.job.RunChunk(start+o.off, end+o.off, arena, add)
}
