package engine

// DefaultChunk is the default number of trials per work unit. It is fixed —
// independent of worker count and machine — because the adaptive stopping
// rule fires at chunk boundaries: a chunk size derived from the environment
// would make the stopping point environment-dependent. 32 trials amortize
// the claim/merge overhead while keeping stopping granularity fine and tail
// latency low (a straggling worker holds at most one chunk).
const DefaultChunk = 32

// Options tunes one Run. The zero value runs on runtime.NumCPU() workers
// with DefaultChunk trials per chunk and no early stopping.
type Options[S any] struct {
	// Workers is the number of concurrent workers; 0 picks
	// runtime.NumCPU(). The merged result is identical for every value.
	Workers int
	// Chunk is the number of trials per claimed work unit; 0 picks
	// DefaultChunk. With a Stop rule, the rule is evaluated once per
	// chunk boundary, so Chunk trades stopping granularity against
	// coordination overhead. Changing Chunk may change where an adaptive
	// run stops (never what a full run returns).
	Chunk int
	// Stop, if non-nil, enables adaptive early stopping: it is called
	// with the merged prefix of chunks 0..i (in chunk order, under a
	// lock) and the number of trials that prefix holds, and returns true
	// to stop the batch after that prefix. The decision point depends
	// only on (base seed, trials, Chunk) — never on worker count or
	// scheduling — so adaptive runs stay deterministic. Chunks already
	// completed beyond the stopping point are discarded.
	//
	// Use stats.WilsonInterval to build rules that stop once a rate
	// estimate is resolved to a target half-width.
	Stop func(prefix S, trials int) bool
	// Observe, if non-nil, receives the same deterministic prefixes a
	// Stop rule would see — the merge of chunks 0..i, in chunk order,
	// under a lock — without any power to stop the batch. It is the
	// progress hook behind streaming consumers (the service daemon's
	// NDJSON job streams): the sequence of snapshots depends only on
	// (base seed, trials, Chunk), never on worker count or scheduling,
	// and the final call always covers the whole batch. The callback
	// must not retain prefix (it aliases the engine's merge target) and
	// should be cheap: it runs under the engine's merge lock.
	Observe func(prefix S, trials int)
	// Arenas, if non-nil, supplies worker arenas from a shared pool
	// instead of constructing fresh ones per Run, and returns them when
	// the batch ends. A resident process that runs many batches points
	// them all at one pool so per-worker simulation workspaces persist
	// across jobs, not just across the trials of one job. Results are
	// identical with or without a pool. Nil means no pooling: workers
	// get fresh arenas, exactly the pre-pool behaviour (ArenaPool's
	// methods are nil-safe, so the engine calls them unconditionally).
	Arenas *ArenaPool
}
