package engine

// DefaultChunk is the default number of trials per work unit. It is fixed —
// independent of worker count and machine — because the adaptive stopping
// rule fires at chunk boundaries: a chunk size derived from the environment
// would make the stopping point environment-dependent. 32 trials amortize
// the claim/merge overhead while keeping stopping granularity fine and tail
// latency low (a straggling worker holds at most one chunk).
const DefaultChunk = 32

// Options tunes one Run. The zero value runs on runtime.NumCPU() workers
// with DefaultChunk trials per chunk and no early stopping.
type Options[S any] struct {
	// Workers is the number of concurrent workers; 0 picks
	// runtime.NumCPU(). The merged result is identical for every value.
	Workers int
	// Chunk is the number of trials per claimed work unit; 0 picks
	// DefaultChunk. With a Stop rule, the rule is evaluated once per
	// chunk boundary, so Chunk trades stopping granularity against
	// coordination overhead. Changing Chunk may change where an adaptive
	// run stops (never what a full run returns).
	Chunk int
	// Stop, if non-nil, enables adaptive early stopping: it is called
	// with the merged prefix of chunks 0..i (in chunk order, under a
	// lock) and the number of trials that prefix holds, and returns true
	// to stop the batch after that prefix. The decision point depends
	// only on (base seed, trials, Chunk) — never on worker count or
	// scheduling — so adaptive runs stay deterministic. Chunks already
	// completed beyond the stopping point are discarded.
	//
	// Use stats.WilsonInterval to build rules that stop once a rate
	// estimate is resolved to a target half-width.
	Stop func(prefix S, trials int) bool
}
