package engine

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestArenaPoolRecyclesAcrossRuns(t *testing.T) {
	pool := NewArenaPool()
	job := mixJob(41)
	sink := tallySink()
	const workers = 3
	for batch := 0; batch < 20; batch++ {
		if _, err := Run(context.Background(), 200, job, sink,
			Options[*tally]{Workers: workers, Arenas: pool}); err != nil {
			t.Fatal(err)
		}
	}
	// Every batch returns its arenas, so the population plateaus at the
	// peak concurrent worker count instead of growing per batch.
	if got := pool.Allocated(); got > workers {
		t.Fatalf("pool allocated %d arenas over 20 batches on %d workers", got, workers)
	}
	if got := pool.Idle(); got != pool.Allocated() {
		t.Fatalf("idle %d != allocated %d after all batches returned", got, pool.Allocated())
	}
}

func TestArenaPoolGetPutExplicit(t *testing.T) {
	pool := NewArenaPool()
	a := pool.Get()
	if a == nil {
		t.Fatal("Get returned nil arena")
	}
	if pool.Allocated() != 1 || pool.Idle() != 0 {
		t.Fatalf("allocated=%d idle=%d after one Get", pool.Allocated(), pool.Idle())
	}
	pool.Put(a)
	if pool.Idle() != 1 {
		t.Fatalf("idle=%d after Put", pool.Idle())
	}
	if got := pool.Get(); got != a {
		t.Fatal("Get did not return the recycled arena")
	}
	pool.Put(nil) // no-op
	if pool.Idle() != 0 {
		t.Fatal("Put(nil) changed the free list")
	}
}

func TestNilArenaPoolFallsBack(t *testing.T) {
	var pool *ArenaPool
	if pool.Get() == nil {
		t.Fatal("nil pool Get must construct a fresh arena")
	}
	pool.Put(sim.NewArena()) // must not panic
	if pool.Allocated() != 0 || pool.Idle() != 0 {
		t.Fatal("nil pool reports nonzero sizes")
	}
}

func TestPooledRunMatchesUnpooled(t *testing.T) {
	job := mixJob(97)
	sink := tallySink()
	want, err := Run(context.Background(), 1000, job, sink, Options[*tally]{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewArenaPool()
	for round := 0; round < 3; round++ {
		got, err := Run(context.Background(), 1000, job, sink,
			Options[*tally]{Workers: 4, Arenas: pool})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: pooled run differs from unpooled", round)
		}
	}
}

func TestObservePrefixesAreDeterministicAndComplete(t *testing.T) {
	job := mixJob(7)
	sink := tallySink()
	const trials = 500

	type point struct {
		trials   int
		messages int
	}
	capture := func(workers int) []point {
		var pts []point
		_, err := Run(context.Background(), trials, job, sink, Options[*tally]{
			Workers: workers,
			Observe: func(prefix *tally, n int) {
				pts = append(pts, point{trials: n, messages: prefix.messages})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}

	want := capture(1)
	if len(want) == 0 {
		t.Fatal("no observations")
	}
	if last := want[len(want)-1]; last.trials != trials {
		t.Fatalf("final observation covers %d trials, want %d", last.trials, trials)
	}
	prev := 0
	for _, p := range want {
		if p.trials <= prev {
			t.Fatalf("observation trials not strictly increasing: %d after %d", p.trials, prev)
		}
		prev = p.trials
	}
	for _, workers := range []int{2, 4, 7} {
		if got := capture(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("observation sequence at %d workers differs from sequential", workers)
		}
	}
}

func TestObserveComposesWithStop(t *testing.T) {
	job := mixJob(21)
	sink := tallySink()
	var observed []int
	stopAt := 0
	got, err := Run(context.Background(), 10000, job, sink, Options[*tally]{
		Workers: 4,
		Observe: func(_ *tally, n int) { observed = append(observed, n) },
		Stop: func(_ *tally, n int) bool {
			if n >= 160 {
				stopAt = n
				return true
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || stopAt == 0 {
		t.Fatal("stop rule never fired")
	}
	if last := observed[len(observed)-1]; last != stopAt {
		t.Fatalf("last observation %d != stopping point %d", last, stopAt)
	}
}
