package engine

import (
	"math"
	"sync"
	"sync/atomic"
)

// Search finds the smallest t in [0, limit) for which pred returns true,
// scanning with the given number of workers (0 picks 1: searches usually
// run inside already-parallel trials, so parallelism here is opt-in). The
// result is deterministic — always the minimal satisfying index, at any
// worker count — which is what the PhaseRushing steering search needs: the
// chosen coordinate assignment must not depend on scheduling.
//
// pred must be safe for concurrent use and depend only on t.
func Search(limit int, pred func(t int) bool, workers int) (int, bool) {
	if limit <= 0 {
		return 0, false
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > limit {
		workers = limit
	}
	if workers == 1 {
		for t := 0; t < limit; t++ {
			if pred(t) {
				return t, true
			}
		}
		return 0, false
	}
	const chunk = 64
	var (
		cursor atomic.Int64
		best   atomic.Int64
		wg     sync.WaitGroup
	)
	best.Store(math.MaxInt64)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(cursor.Add(chunk)) - chunk
				// Chunks are claimed in ascending order, so once a
				// chunk starts at or beyond the best hit, no earlier
				// index remains unscanned by this or a later claim.
				if start >= limit || int64(start) >= best.Load() {
					return
				}
				end := start + chunk
				if end > limit {
					end = limit
				}
				for t := start; t < end; t++ {
					if int64(t) >= best.Load() {
						break
					}
					if pred(t) {
						// CAS-min: keep the smallest hit.
						for {
							cur := best.Load()
							if int64(t) >= cur || best.CompareAndSwap(cur, int64(t)) {
								break
							}
						}
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if b := best.Load(); b < int64(limit) {
		return int(b), true
	}
	return 0, false
}
