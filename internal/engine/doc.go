// Package engine is the unified parallel Monte-Carlo trial runner behind
// every experiment in the reproduction. All bias estimates (the ε of
// Definition 2.3) are built from thousands of independent executions; the
// engine shards that embarrassingly parallel workload across workers while
// keeping the merged outcome bit-for-bit identical to a sequential run.
//
// # Design
//
//   - A Job runs one trial: it derives the trial's seed (via sim.Mix64 from
//     a base seed), plans any per-trial deviation, executes on the worker's
//     arena, and returns a sim.Result.
//   - Trials are dispatched in fixed-size chunks claimed from a shared
//     atomic cursor (dynamic work stealing of index ranges), so fast
//     workers steal the load of slow ones without any per-trial locking.
//   - Accumulation is sharded: every worker folds its results into a
//     private shard (e.g. a ring.Distribution) supplied by a Sink; shards
//     are merged once at the end. Because all shard operations are sums of
//     counters, the merged value is independent of which worker ran which
//     trial — for a fixed base seed the output is identical at any worker
//     count. A regression test enforces this.
//   - Every worker owns a sim.Arena, created when the worker starts and
//     passed to each Trial call it claims. Jobs run their executions
//     through the arena, so a batch of thousands of trials recycles a
//     near-constant amount of simulation memory per worker instead of
//     rebuilding networks, queues, and PRNGs per trial.
//   - Optional adaptive early stopping evaluates a caller-supplied rule at
//     deterministic chunk boundaries, in chunk order, so the stopping point
//     is also independent of scheduling (see options.go).
//   - The context cancels the whole batch between trials.
//
// # Invariants
//
//   - Determinism: for a fixed job and base seed, Run's merged shard is
//     identical at every worker count (including 1) and every chunk size;
//     with a Stop rule, the stopping point additionally depends on the
//     chunk size but never on worker count or scheduling.
//   - Jobs must derive all per-trial randomness from the trial index;
//     sharing mutable state between trials breaks the determinism contract.
//   - Arenas never cross worker boundaries: a Job's Trial receives the
//     arena of exactly the goroutine invoking it, and the engine folds the
//     returned Result into the worker's shard before the same arena runs
//     the next trial, so Result memory recycled by the arena is never
//     observed stale.
//   - Errors are reported deterministically: the lowest-indexed failing
//     trial wins, and the batch is abandoned without draining the
//     remaining trials.
package engine
