package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// tally is a minimal shard: per-output counts plus a message sum, exercising
// the same counter-merge shape as ring.Distribution without importing it.
type tally struct {
	counts   map[int64]int
	fails    int
	messages int
}

func tallySink() Sink[*tally] {
	return Sink[*tally]{
		New: func() *tally { return &tally{counts: map[int64]int{}} },
		Add: func(s *tally, res sim.Result) {
			s.messages += res.Delivered
			if res.Failed {
				s.fails++
				return
			}
			s.counts[res.Output]++
		},
		Merge: func(dst, src *tally) {
			dst.fails += src.fails
			dst.messages += src.messages
			for k, v := range src.counts {
				dst.counts[k] += v
			}
		},
	}
}

// mixJob derives every trial's outcome purely from the trial index, like
// every real job in the repository derives its seed via sim.Mix64.
func mixJob(baseSeed uint64) Job {
	return JobFunc(func(t int, _ *sim.Arena) (sim.Result, error) {
		h := sim.Mix64(baseSeed, uint64(t))
		res := sim.Result{Output: int64(h % 17), Delivered: int(h % 97)}
		if h%13 == 0 {
			res = sim.Result{Failed: true, Reason: sim.FailAbort, Delivered: res.Delivered}
		}
		return res, nil
	})
}

// sequentialBaseline is the pre-engine trial loop, kept as the ground truth
// the parallel runs must reproduce bit for bit.
func sequentialBaseline(t *testing.T, job Job, trials int) *tally {
	t.Helper()
	sink := tallySink()
	acc := sink.New()
	for i := 0; i < trials; i++ {
		res, err := job.Trial(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		sink.Add(acc, res)
	}
	return acc
}

func TestRunMatchesSequentialAtAnyWorkerCount(t *testing.T) {
	const trials = 1000
	job := mixJob(42)
	want := sequentialBaseline(t, job, trials)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{0, 1, 7, 1000} {
			got, err := Run(context.Background(), trials, job, tallySink(),
				Options[*tally]{Workers: workers, Chunk: chunk})
			if err != nil {
				t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d chunk=%d: merged shard differs from sequential baseline", workers, chunk)
			}
		}
	}
}

func TestRunZeroAndNegativeTrials(t *testing.T) {
	for _, trials := range []int{0, -3} {
		got, err := Run(context.Background(), trials, mixJob(1), tallySink(), Options[*tally]{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.counts) != 0 || got.fails != 0 {
			t.Errorf("trials=%d: expected empty shard, got %+v", trials, got)
		}
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	job := JobFunc(func(t int, _ *sim.Arena) (sim.Result, error) {
		if t == 37 {
			return sim.Result{}, fmt.Errorf("trial %d: %w", t, boom)
		}
		return sim.Result{Output: 1}, nil
	})
	for _, workers := range []int{1, 4} {
		_, err := Run(context.Background(), 100, job, tallySink(), Options[*tally]{Workers: workers})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	job := JobFunc(func(t int, _ *sim.Arena) (sim.Result, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		return sim.Result{Output: 1}, nil
	})
	_, err := Run(ctx, 1_000_000, job, tallySink(), Options[*tally]{Workers: 4, Chunk: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1_000_000 {
		t.Errorf("cancellation did not interrupt the batch (ran %d trials)", n)
	}
}

func TestAdaptiveStopIsDeterministic(t *testing.T) {
	const trials = 10_000
	job := mixJob(7)
	stop := func(prefix *tally, done int) bool {
		return done >= 500 && prefix.fails >= 20
	}
	var want *tally
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := Run(context.Background(), trials, job, tallySink(),
			Options[*tally]{Workers: workers, Chunk: 64, Stop: stop})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		total := got.fails
		for _, v := range got.counts {
			total += v
		}
		if total >= trials {
			t.Fatalf("workers=%d: stop rule never fired (%d trials)", workers, total)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: adaptive run differs from workers=1 run", workers)
		}
	}
}

func TestAdaptiveRunAbandonsBatchOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	job := JobFunc(func(t int, _ *sim.Arena) (sim.Result, error) {
		ran.Add(1)
		if t == 0 {
			return sim.Result{}, boom
		}
		return sim.Result{Output: 1}, nil
	})
	_, err := Run(context.Background(), 1_000_000, job, tallySink(),
		Options[*tally]{Workers: 4, Chunk: 8, Stop: func(*tally, int) bool { return false }})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The error must short-circuit chunk claiming, not let the other
	// workers grind through the remaining million trials.
	if n := ran.Load(); n > 10_000 {
		t.Errorf("ran %d trials after the first error; batch was not abandoned", n)
	}
}

func TestAdaptiveStopRunsToCompletionWhenRuleNeverFires(t *testing.T) {
	const trials = 300
	job := mixJob(3)
	want := sequentialBaseline(t, job, trials)
	got, err := Run(context.Background(), trials, job, tallySink(),
		Options[*tally]{Workers: 4, Chunk: 16, Stop: func(*tally, int) bool { return false }})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("non-firing adaptive run differs from sequential baseline")
	}
}

func TestSearchFindsMinimalIndex(t *testing.T) {
	pred := func(t int) bool { return t == 113 || t == 640 || t == 641 }
	for _, workers := range []int{0, 1, 3, 8} {
		got, ok := Search(1000, pred, workers)
		if !ok || got != 113 {
			t.Errorf("workers=%d: Search = (%d, %v), want (113, true)", workers, got, ok)
		}
	}
}

func TestSearchHitInFirstAndLastSlot(t *testing.T) {
	for _, workers := range []int{1, 4} {
		if got, ok := Search(500, func(t int) bool { return t == 0 }, workers); !ok || got != 0 {
			t.Errorf("workers=%d: first-slot hit = (%d, %v)", workers, got, ok)
		}
		if got, ok := Search(500, func(t int) bool { return t == 499 }, workers); !ok || got != 499 {
			t.Errorf("workers=%d: last-slot hit = (%d, %v)", workers, got, ok)
		}
	}
}

func TestSearchNotFound(t *testing.T) {
	for _, workers := range []int{1, 4} {
		if _, ok := Search(2000, func(int) bool { return false }, workers); ok {
			t.Errorf("workers=%d: found a hit in an all-false predicate", workers)
		}
	}
	if _, ok := Search(0, func(int) bool { return true }, 1); ok {
		t.Error("empty range produced a hit")
	}
}
