package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestRunRangePartitionReproducesFullBatch pins the remote-chunking
// contract: running any partition of [0, trials) through RunRange and
// merging the shards reproduces the full batch exactly, for any partition
// granularity and worker count.
func TestRunRangePartitionReproducesFullBatch(t *testing.T) {
	const trials = 500
	job := jobChunks{mixJob(7)}
	sink := tallySink()
	want := sequentialBaseline(t, mixJob(7), trials)

	for _, step := range []int{1, 33, 100, trials} {
		for _, workers := range []int{1, 3} {
			merged := sink.New()
			for start := 0; start < trials; start += step {
				end := start + step
				if end > trials {
					end = trials
				}
				shard, err := RunRange(context.Background(), start, end, job, sink,
					Options[*tally]{Workers: workers})
				if err != nil {
					t.Fatalf("RunRange(%d, %d): %v", start, end, err)
				}
				sink.Merge(merged, shard)
			}
			if !reflect.DeepEqual(merged, want) {
				t.Fatalf("step %d workers %d: merged shards differ from sequential baseline", step, workers)
			}
		}
	}
}

// TestRunRangeUsesLogicalTrialIndices pins that the job sees the logical
// trial indices of the full batch, not range-local ones: a range [start,
// end) must invoke exactly trials start..end-1.
func TestRunRangeUsesLogicalTrialIndices(t *testing.T) {
	var mu = make(chan struct{}, 1)
	seen := map[int]int{}
	job := JobFunc(func(tr int, _ *sim.Arena) (sim.Result, error) {
		mu <- struct{}{}
		seen[tr]++
		<-mu
		return sim.Result{Output: 1}, nil
	})
	if _, err := RunRange(context.Background(), 120, 200, jobChunks{job}, tallySink(),
		Options[*tally]{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 80 {
		t.Fatalf("ran %d distinct trials, want 80", len(seen))
	}
	for tr, count := range seen {
		if tr < 120 || tr >= 200 {
			t.Fatalf("trial %d outside the requested range [120, 200)", tr)
		}
		if count != 1 {
			t.Fatalf("trial %d ran %d times", tr, count)
		}
	}
}

// TestRunRangeRejectsInvalidRange pins the argument validation.
func TestRunRangeRejectsInvalidRange(t *testing.T) {
	for _, r := range [][2]int{{-1, 5}, {10, 3}} {
		if _, err := RunRange(context.Background(), r[0], r[1], jobChunks{mixJob(1)}, tallySink(),
			Options[*tally]{}); err == nil {
			t.Fatalf("range [%d, %d) accepted", r[0], r[1])
		}
	}
	// An empty range is valid and returns the empty shard.
	got, err := RunRange(context.Background(), 7, 7, jobChunks{mixJob(1)}, tallySink(), Options[*tally]{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tallySink().New()) {
		t.Fatal("empty range returned a non-empty shard")
	}
}

// TestRunRangeReportsLogicalFailureIndex pins that errors carry the logical
// trial index, so a coordinator's deterministic lowest-failure reporting
// holds across distributed shards too.
func TestRunRangeReportsLogicalFailureIndex(t *testing.T) {
	boom := errors.New("boom")
	job := JobFunc(func(tr int, _ *sim.Arena) (sim.Result, error) {
		if tr == 150 {
			return sim.Result{}, boom
		}
		return sim.Result{Output: 1}, nil
	})
	_, err := RunRange(context.Background(), 100, 200, jobChunks{job}, tallySink(),
		Options[*tally]{Workers: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the trial-150 failure", err)
	}
}
