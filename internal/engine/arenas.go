package engine

import (
	"sync"

	"repro/internal/sim"
)

// ArenaPool hands engine workers recycled sim.Arena workspaces across Run
// calls. Without a pool, every Run constructs one fresh arena per worker and
// drops them all when the batch ends — fine for a one-shot CLI, wasteful for
// a resident service that runs thousands of batches: each new batch rebuilds
// networks, schedulers, and scratch buffers the previous batch just warmed.
// Sharing one pool across batches makes arena reuse span jobs, not just the
// trials of one job.
//
// The pool is safe for concurrent use. It is an explicit free list rather
// than a sync.Pool so reuse is observable (Allocated) and never discarded by
// GC pressure: the population is bounded by the peak number of concurrent
// workers, which is small.
//
// A nil *ArenaPool is valid and means "no pooling": Get falls back to
// sim.NewArena and Put is a no-op, so the zero engine.Options behaviour is
// unchanged.
type ArenaPool struct {
	mu        sync.Mutex
	free      []*sim.Arena
	allocated int
}

// NewArenaPool returns an empty pool.
func NewArenaPool() *ArenaPool { return &ArenaPool{} }

// Get returns a recycled arena, constructing a fresh one only when the free
// list is empty. Arena-run executions are bit-for-bit identical to fresh
// ones (see sim.Arena), so results never depend on which arena a worker got.
func (p *ArenaPool) Get() *sim.Arena {
	if p == nil {
		return sim.NewArena()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return a
	}
	p.allocated++
	return sim.NewArena()
}

// Put returns an arena to the free list. The caller must not use the arena
// afterwards.
func (p *ArenaPool) Put(a *sim.Arena) {
	if p == nil || a == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, a)
}

// Allocated reports how many arenas the pool has ever constructed — the
// peak number of workers that held one simultaneously. A service running
// batch after batch on W workers stays at W forever; that plateau is what
// the persistent-arena tests assert.
func (p *ArenaPool) Allocated() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocated
}

// Idle reports how many arenas currently sit on the free list.
func (p *ArenaPool) Idle() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
