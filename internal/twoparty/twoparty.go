// Package twoparty models finite two-party coin-toss protocols and computes
// which party can "assure" which outcome (Definition F.1), the engine behind
// the impossibility results of Section 7 / Appendix F.
//
// A protocol is a finite message tree: each internal node names the party
// whose turn it is and a table mapping that party's private input to the
// message it honestly sends; leaves carry the outcome bit. An adversarial
// party may send any message with a defined continuation, while the honest
// party follows its table — revealing information about its input that the
// adversary exploits. A party assures bit b if it has a deviation forcing
// outcome b against every input of its honest opponent (Definition F.1).
//
// Lemma F.2 states the dichotomy: in every such protocol either some bit is
// assured by both parties (a favourable value), or one party assures both
// bits (a dictator). The Assures solver makes the lemma executable, and the
// package's property tests check it over enumerated and random protocols —
// which is the paper's route to "no tree network admits a 1-resilient fair
// coin toss" (Lemma F.3) and then Theorem 7.2.
package twoparty

import (
	"errors"
	"fmt"
	"math/rand"
)

// Party identifies one of the two participants.
type Party int

// The two parties.
const (
	PartyA Party = iota + 1
	PartyB
)

// Other returns the opponent.
func (p Party) Other() Party {
	if p == PartyA {
		return PartyB
	}
	return PartyA
}

// String implements fmt.Stringer.
func (p Party) String() string {
	if p == PartyA {
		return "A"
	}
	return "B"
}

// Node is one position of the protocol tree.
type Node struct {
	// Leaf, when non-nil, ends the protocol with outcome *Leaf ∈ {0,1}.
	Leaf *int
	// Turn is the party that sends at this node (internal nodes only).
	Turn Party
	// Msg maps the sender's input index to the message it honestly
	// sends; every entry must be a key of Next.
	Msg []int
	// Next maps messages to continuations. Keys beyond the range of Msg
	// are moves only an adversarial sender would play.
	Next map[int]*Node
}

// LeafNode returns a leaf with the given outcome bit.
func LeafNode(bit int) *Node { return &Node{Leaf: &bit} }

// Protocol is a finite two-party coin-toss protocol.
type Protocol struct {
	// Root is the first position; PartyA's input space has InputsA
	// elements, PartyB's InputsB.
	Root    *Node
	InputsA int
	InputsB int
}

// Validate checks structural sanity: every honest message has a
// continuation, input tables have the right size, leaves carry bits.
func (p *Protocol) Validate() error {
	if p.InputsA < 1 || p.InputsB < 1 {
		return errors.New("twoparty: empty input space")
	}
	if p.InputsA > 30 || p.InputsB > 30 {
		return errors.New("twoparty: input space too large for the bitmask solver")
	}
	return p.validateNode(p.Root)
}

func (p *Protocol) validateNode(n *Node) error {
	if n == nil {
		return errors.New("twoparty: nil node")
	}
	if n.Leaf != nil {
		if *n.Leaf != 0 && *n.Leaf != 1 {
			return fmt.Errorf("twoparty: leaf outcome %d", *n.Leaf)
		}
		return nil
	}
	if n.Turn != PartyA && n.Turn != PartyB {
		return fmt.Errorf("twoparty: bad turn %d", n.Turn)
	}
	inputs := p.InputsA
	if n.Turn == PartyB {
		inputs = p.InputsB
	}
	if len(n.Msg) != inputs {
		return fmt.Errorf("twoparty: %s node has %d-entry table, want %d", n.Turn, len(n.Msg), inputs)
	}
	if len(n.Next) == 0 {
		return errors.New("twoparty: internal node with no continuations")
	}
	for input, m := range n.Msg {
		if n.Next[m] == nil {
			return fmt.Errorf("twoparty: %s input %d sends %d with no continuation", n.Turn, input, m)
		}
	}
	for _, child := range n.Next {
		if err := p.validateNode(child); err != nil {
			return err
		}
	}
	return nil
}

// Outcome plays the protocol honestly with the given inputs.
func (p *Protocol) Outcome(inputA, inputB int) int {
	node := p.Root
	for node.Leaf == nil {
		input := inputA
		if node.Turn == PartyB {
			input = inputB
		}
		node = node.Next[node.Msg[input]]
	}
	return *node.Leaf
}

// IsFair reports whether the honest outcome over uniform independent inputs
// is exactly balanced (possible only when InputsA·InputsB is even).
func (p *Protocol) IsFair() bool {
	ones := 0
	for a := 0; a < p.InputsA; a++ {
		for b := 0; b < p.InputsB; b++ {
			ones += p.Outcome(a, b)
		}
	}
	return 2*ones == p.InputsA*p.InputsB
}

// Assures reports whether the given party has an adversarial deviation that
// forces outcome bit for every input of its honest opponent and every
// message schedule (Definition F.1). The solver walks the protocol tree
// with the set of opponent inputs consistent with the history: at the
// adversary's turn it may pick any continuation (∃); at the opponent's turn
// the honest message partitions the consistent inputs, and the adversary
// must win every non-empty class (∀).
func (p *Protocol) Assures(party Party, bit int) bool {
	oppInputs := p.InputsB
	if party == PartyB {
		oppInputs = p.InputsA
	}
	full := uint32(1)<<oppInputs - 1
	memo := make(map[assureKey]bool)
	return p.assures(p.Root, party, bit, full, memo)
}

type assureKey struct {
	node *Node
	opp  uint32
}

func (p *Protocol) assures(n *Node, party Party, bit int, opp uint32, memo map[assureKey]bool) bool {
	if n.Leaf != nil {
		return *n.Leaf == bit
	}
	key := assureKey{n, opp}
	if v, ok := memo[key]; ok {
		return v
	}
	var result bool
	if n.Turn == party {
		// Adversary's move: any defined continuation.
		for _, child := range n.Next {
			if p.assures(child, party, bit, opp, memo) {
				result = true
				break
			}
		}
	} else {
		// Honest opponent's move: its input (within the consistent set)
		// determines the message; the adversary must handle every class.
		classes := make(map[int]uint32)
		for input := 0; input < len(n.Msg); input++ {
			if opp&(1<<input) != 0 {
				classes[n.Msg[input]] |= 1 << input
			}
		}
		result = true
		for m, class := range classes {
			if !p.assures(n.Next[m], party, bit, class, memo) {
				result = false
				break
			}
		}
	}
	memo[key] = result
	return result
}

// Verdict classifies a protocol per Lemma F.2.
type Verdict struct {
	// AssuresZero[p] / AssuresOne[p] report what party p can force.
	AssuresZero map[Party]bool
	AssuresOne  map[Party]bool
}

// Dictator returns the dictating party, if any: one that assures both bits.
func (v Verdict) Dictator() (Party, bool) {
	for _, p := range []Party{PartyA, PartyB} {
		if v.AssuresZero[p] && v.AssuresOne[p] {
			return p, true
		}
	}
	return 0, false
}

// Favourable returns a bit assured by both parties, if any.
func (v Verdict) Favourable() (int, bool) {
	if v.AssuresZero[PartyA] && v.AssuresZero[PartyB] {
		return 0, true
	}
	if v.AssuresOne[PartyA] && v.AssuresOne[PartyB] {
		return 1, true
	}
	return 0, false
}

// SatisfiesLemmaF2 checks the dichotomy: (A assures 0 ∨ B assures 1) and
// (A assures 1 ∨ B assures 0).
func (v Verdict) SatisfiesLemmaF2() bool {
	first := v.AssuresZero[PartyA] || v.AssuresOne[PartyB]
	second := v.AssuresOne[PartyA] || v.AssuresZero[PartyB]
	return first && second
}

// Classify computes the full verdict.
func (p *Protocol) Classify() Verdict {
	return Verdict{
		AssuresZero: map[Party]bool{
			PartyA: p.Assures(PartyA, 0),
			PartyB: p.Assures(PartyB, 0),
		},
		AssuresOne: map[Party]bool{
			PartyA: p.Assures(PartyA, 1),
			PartyB: p.Assures(PartyB, 1),
		},
	}
}

// RandomProtocol generates a random protocol tree for property testing:
// depth levels of alternating-ish turns, the given alphabet size, and
// random leaf bits and input tables.
func RandomProtocol(rng *rand.Rand, inputsA, inputsB, depth, alphabet int) *Protocol {
	p := &Protocol{InputsA: inputsA, InputsB: inputsB}
	p.Root = p.randomNode(rng, depth, alphabet)
	return p
}

func (p *Protocol) randomNode(rng *rand.Rand, depth, alphabet int) *Node {
	if depth == 0 {
		return LeafNode(rng.Intn(2))
	}
	turn := PartyA
	if rng.Intn(2) == 1 {
		turn = PartyB
	}
	inputs := p.InputsA
	if turn == PartyB {
		inputs = p.InputsB
	}
	n := &Node{Turn: turn, Msg: make([]int, inputs), Next: make(map[int]*Node, alphabet)}
	for m := 0; m < alphabet; m++ {
		n.Next[m] = p.randomNode(rng, depth-1, alphabet)
	}
	for i := range n.Msg {
		n.Msg[i] = rng.Intn(alphabet)
	}
	return n
}

// XORProtocol is the classic example: A announces its input bit, then B
// announces its bit, and the outcome is the XOR. The second mover is a
// dictator.
func XORProtocol() *Protocol {
	leaf := func(bit int) *Node { return LeafNode(bit) }
	bNode := func(aBit int) *Node {
		return &Node{
			Turn: PartyB,
			Msg:  []int{0, 1},
			Next: map[int]*Node{0: leaf(aBit ^ 0), 1: leaf(aBit ^ 1)},
		}
	}
	return &Protocol{
		InputsA: 2,
		InputsB: 2,
		Root: &Node{
			Turn: PartyA,
			Msg:  []int{0, 1},
			Next: map[int]*Node{0: bNode(0), 1: bNode(1)},
		},
	}
}
