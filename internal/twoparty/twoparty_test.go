package twoparty

import (
	"math/rand"
	"testing"
)

func TestXORProtocolSecondMoverDictates(t *testing.T) {
	p := XORProtocol()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.IsFair() {
		t.Fatal("XOR protocol should be a fair coin toss")
	}
	v := p.Classify()
	dict, ok := v.Dictator()
	if !ok || dict != PartyB {
		t.Fatalf("dictator = %v (ok=%v), want B", dict, ok)
	}
	if v.AssuresZero[PartyA] || v.AssuresOne[PartyA] {
		t.Error("first mover should assure nothing in XOR exchange")
	}
	if !v.SatisfiesLemmaF2() {
		t.Error("Lemma F.2 dichotomy violated")
	}
}

func TestConstantProtocolFavourable(t *testing.T) {
	// A protocol that always outputs 1 has favourable value 1.
	p := &Protocol{InputsA: 2, InputsB: 2, Root: LeafNode(1)}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	v := p.Classify()
	if bit, ok := v.Favourable(); !ok || bit != 1 {
		t.Fatalf("favourable = (%d,%v), want (1,true)", bit, ok)
	}
	if _, ok := v.Dictator(); ok {
		t.Error("constant protocol should have no dictator")
	}
	if !v.SatisfiesLemmaF2() {
		t.Error("Lemma F.2 dichotomy violated")
	}
}

func TestFirstMoverAnnouncesOutcome(t *testing.T) {
	// A announces the outcome directly: A dictates.
	p := &Protocol{
		InputsA: 2, InputsB: 2,
		Root: &Node{
			Turn: PartyA,
			Msg:  []int{0, 1},
			Next: map[int]*Node{0: LeafNode(0), 1: LeafNode(1)},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	v := p.Classify()
	if dict, ok := v.Dictator(); !ok || dict != PartyA {
		t.Fatalf("dictator = (%v,%v), want A", dict, ok)
	}
}

func TestLemmaF2OnRandomProtocols(t *testing.T) {
	// The dichotomy must hold for EVERY protocol; check it over a large
	// random family, including unfair ones.
	rng := rand.New(rand.NewSource(42))
	fairChecked := 0
	for trial := 0; trial < 400; trial++ {
		p := RandomProtocol(rng, 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(4), 1+rng.Intn(3))
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: invalid random protocol: %v", trial, err)
		}
		v := p.Classify()
		if !v.SatisfiesLemmaF2() {
			t.Fatalf("trial %d: Lemma F.2 dichotomy violated: %+v", trial, v)
		}
		if p.IsFair() {
			fairChecked++
			// Corollary for fair protocols: someone assures a bit,
			// so no fair two-party coin toss is 1-resilient.
			someone := v.AssuresZero[PartyA] || v.AssuresZero[PartyB] ||
				v.AssuresOne[PartyA] || v.AssuresOne[PartyB]
			if !someone {
				t.Fatalf("trial %d: fair protocol where nobody assures anything", trial)
			}
		}
	}
	if fairChecked < 20 {
		t.Logf("only %d fair protocols among 400 random ones", fairChecked)
	}
}

func TestDeepProtocolDictatorship(t *testing.T) {
	// Multi-round alternation: whoever moves last with full knowledge
	// dictates in a "parity of all messages" protocol.
	mk := func(depth int) *Protocol {
		p := &Protocol{InputsA: 2, InputsB: 2}
		var build func(turn Party, parity, d int) *Node
		build = func(turn Party, parity, d int) *Node {
			if d == 0 {
				return LeafNode(parity)
			}
			return &Node{
				Turn: turn,
				Msg:  []int{0, 1},
				Next: map[int]*Node{
					0: build(turn.Other(), parity, d-1),
					1: build(turn.Other(), parity^1, d-1),
				},
			}
		}
		p.Root = build(PartyA, 0, depth)
		return p
	}
	// Depth 2: B moves last having seen A's (input-revealing) message,
	// while A moved blind — B alone dictates. Depth ≥ 3: honest messages
	// reveal inputs, so every later mover can predict all remaining
	// honest messages, and BOTH parties dictate.
	p2 := mk(2)
	if err := p2.Validate(); err != nil {
		t.Fatal(err)
	}
	v2 := p2.Classify()
	if dict, ok := v2.Dictator(); !ok || dict != PartyB {
		t.Errorf("depth 2: dictator = (%v,%v), want B", dict, ok)
	}
	if v2.AssuresZero[PartyA] || v2.AssuresOne[PartyA] {
		t.Error("depth 2: blind first mover should assure nothing")
	}
	for depth := 3; depth <= 6; depth++ {
		p := mk(depth)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		v := p.Classify()
		for _, party := range []Party{PartyA, PartyB} {
			if !v.AssuresZero[party] || !v.AssuresOne[party] {
				t.Errorf("depth %d: %v should dictate (inputs are revealed)", depth, party)
			}
		}
	}
}

func TestValidateCatchesBrokenProtocols(t *testing.T) {
	broken := &Protocol{InputsA: 2, InputsB: 2,
		Root: &Node{Turn: PartyA, Msg: []int{0, 7}, Next: map[int]*Node{0: LeafNode(0)}}}
	if err := broken.Validate(); err == nil {
		t.Error("missing continuation accepted")
	}
	badLeaf := &Protocol{InputsA: 1, InputsB: 1, Root: LeafNode(3)}
	if err := badLeaf.Validate(); err == nil {
		t.Error("non-bit leaf accepted")
	}
	tooBig := &Protocol{InputsA: 40, InputsB: 1, Root: LeafNode(0)}
	if err := tooBig.Validate(); err == nil {
		t.Error("oversized input space accepted")
	}
}

func TestOutcomeDeterminism(t *testing.T) {
	p := XORProtocol()
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if got := p.Outcome(a, b); got != a^b {
				t.Errorf("Outcome(%d,%d) = %d, want %d", a, b, got, a^b)
			}
		}
	}
}
