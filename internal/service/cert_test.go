package service

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/equilibrium"
	"repro/internal/scenario"
)

// quickCert certifies a small honest scenario in well under a second.
var quickCert = CertRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 300, Seed: 11}

// TestCertifyEndToEnd drives one certification sweep through the HTTP API:
// submit, watch the per-candidate NDJSON stream, and check the terminal
// certificate parses with a verdict.
func TestCertifyEndToEnd(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()

	states, err := client.SubmitCerts(ctx, []CertRequest{quickCert})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if len(states) != 1 {
		t.Fatalf("got %d states", len(states))
	}
	var progressLines int
	final, err := client.WatchCert(ctx, states[0].ID, func(st CertState) {
		if st.Progress != nil {
			progressLines++
			if st.Progress.Total < 1 || st.Progress.Index < 1 || st.Progress.Index > st.Progress.Total {
				t.Errorf("bad progress indices: %+v", st.Progress)
			}
		}
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if final.Status != StatusDone {
		t.Fatalf("finished %s: %s", final.Status, final.Error)
	}
	var cert equilibrium.Certificate
	if err := json.Unmarshal(final.Result, &cert); err != nil {
		t.Fatalf("bad certificate bytes: %v", err)
	}
	if cert.Scenario != quickCert.Scenario || cert.Verdict == "" {
		t.Errorf("odd certificate: scenario %q verdict %q", cert.Scenario, cert.Verdict)
	}
	if cert.Key != final.ID {
		t.Errorf("certificate key %s differs from job id %s", cert.Key, final.ID)
	}
}

// TestCertifyCacheReplayByteIdentity resubmits an identical sweep and
// demands the cached certificate byte-for-byte, plus agreement with a
// direct in-process Certify under the daemon's version.
func TestCertifyCacheReplayByteIdentity(t *testing.T) {
	srv, client := newTestServer(t, Config{Version: "test-pin"})
	ctx := context.Background()

	first, err := client.SubmitCerts(ctx, []CertRequest{quickCert})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.WaitCert(ctx, first[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("finished %s: %s", final.Status, final.Error)
	}

	replay, err := client.SubmitCerts(ctx, []CertRequest{quickCert})
	if err != nil {
		t.Fatal(err)
	}
	if replay[0].Status != StatusDone {
		t.Fatalf("replay not served from cache: %s", replay[0].Status)
	}
	if !bytes.Equal(replay[0].Result, final.Result) {
		t.Error("replayed certificate bytes differ from first computation")
	}

	// The service must add transport, never drift: a direct in-process
	// sweep under the same version produces the same bytes.
	sc := scenario.MustFind(quickCert.Scenario)
	direct, err := equilibrium.Certify(ctx, sc, quickCert.Seed, equilibrium.Options{
		N: quickCert.N, Trials: quickCert.Trials, Version: srv.Scheduler().Version(),
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final.Result, want) {
		t.Errorf("service certificate differs from direct Certify:\nservice: %s\n direct: %s", final.Result, want)
	}
}

// TestCertifyDedupSharesOneSweep checks identical in-flight certification
// requests fold into one computation, and that trial jobs and sweeps share
// the engine slots without sharing identities.
func TestCertifyDedupSharesOneSweep(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	ctx := context.Background()

	// Occupy the single engine slot so the sweeps stay queued.
	blocker := JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 6000, Seed: 1}
	if _, err := client.Submit(ctx, []JobRequest{blocker}); err != nil {
		t.Fatal(err)
	}
	pair, err := client.SubmitCerts(ctx, []CertRequest{quickCert, quickCert})
	if err != nil {
		t.Fatal(err)
	}
	if pair[0].ID != pair[1].ID {
		t.Errorf("identical requests got distinct ids %s and %s", pair[0].ID, pair[1].ID)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs.Certificates != 2 {
		t.Errorf("stats count %d certificate submissions, want 2", st.Jobs.Certificates)
	}
	// Exactly two fresh runs total: the blocker and one sweep.
	if st.Jobs.Fresh != 2 {
		t.Errorf("%d fresh runs, want 2 (blocker + deduped sweep)", st.Jobs.Fresh)
	}
	final, err := client.WaitCert(ctx, pair[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("sweep finished %s: %s", final.Status, final.Error)
	}
	_ = srv
}

// TestCertifyCancel cancels a queued sweep and checks the terminal state
// propagates to watchers and to resubmission semantics.
func TestCertifyCancel(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()

	// The blocker must hold the single engine slot until the cancel request
	// lands; the batched trial kernel runs a-lead trials in microseconds, so
	// the trial count is sized for hundreds of milliseconds of occupancy.
	blocker := JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 120000, Seed: 2}
	if _, err := client.Submit(ctx, []JobRequest{blocker}); err != nil {
		t.Fatal(err)
	}
	states, err := client.SubmitCerts(ctx, []CertRequest{{Scenario: "ring/a-lead/fifo", N: 16, Trials: 5000, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.CancelCert(ctx, states[0].ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	final, err := client.WaitCert(ctx, states[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCanceled {
		t.Errorf("status %s, want canceled", final.Status)
	}
	// Canceling again conflicts; a bogus id is a 404.
	if err := client.CancelCert(ctx, states[0].ID); err == nil {
		t.Error("second cancel should conflict")
	}
	if err := client.CancelCert(ctx, "deadbeef"); err == nil {
		t.Error("unknown id should 404")
	}
}

// TestCertifyRejectsBadBatchWhole mirrors the job-batch validation: one bad
// request rejects the whole batch before anything runs.
func TestCertifyRejectsBadBatchWhole(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()
	bad := []CertRequest{
		quickCert,
		{Scenario: "ring/no-such/protocol", Seed: 1},
	}
	if _, err := client.SubmitCerts(ctx, bad); err == nil {
		t.Fatal("unknown scenario should reject the batch")
	}
	bad[1] = CertRequest{Scenario: "ring/a-lead/attack=rushing-equal", N: 4, Seed: 1}
	if _, err := client.SubmitCerts(ctx, bad); err == nil {
		t.Fatal("n below the scenario floor should reject the batch")
	}
	bad[1] = CertRequest{Scenario: "ring/basic-lead/fifo", Epsilon: 1.5, Seed: 1}
	if _, err := client.SubmitCerts(ctx, bad); err == nil {
		t.Fatal("epsilon out of range should reject the batch")
	}
	// The MaxTrials bound applies to the whole sweep: ring/sum-phase/fifo
	// enumerates several candidates, so a per-candidate budget under the
	// bound can still push the sweep total over it.
	bad[1] = CertRequest{Scenario: "ring/sum-phase/fifo", Trials: 200_000, Seed: 1}
	if _, err := client.SubmitCerts(ctx, bad); err == nil {
		t.Fatal("sweep total over MaxTrials should reject the batch")
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs.Fresh != 0 {
		t.Errorf("%d fresh runs after rejected batches, want 0", st.Jobs.Fresh)
	}
}
