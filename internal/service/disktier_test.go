package service

import (
	"bytes"
	"context"
	"testing"
)

// TestDiskTierRestartReplaysWithZeroEngineRuns pins the durability
// acceptance criterion: a daemon restarted on the same cache directory
// replays previously computed results byte-for-byte from disk — zero fresh
// engine runs — and a certification sweep survives the restart the same
// way.
func TestDiskTierRestartReplaysWithZeroEngineRuns(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Version: "disk-test", CacheDir: dir}

	srv1, client1 := newTestServer(t, cfg)
	ctx := context.Background()
	states, err := client1.Submit(ctx, []JobRequest{quickJob})
	if err != nil {
		t.Fatal(err)
	}
	id := states[0].ID
	waitStatus(t, srv1, id, StatusDone)
	first, err := client1.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st := srv1.Scheduler().Stats(); !st.Disk.Enabled || st.Disk.Writes == 0 {
		t.Fatalf("disk tier recorded no writes: %+v", st.Disk)
	}
	srv1.Close()

	// A second daemon — fresh process state, same directory.
	srv2, client2 := newTestServer(t, cfg)
	states, err = client2.Submit(ctx, []JobRequest{quickJob})
	if err != nil {
		t.Fatal(err)
	}
	if states[0].ID != id {
		t.Fatalf("restart changed the job identity: %s vs %s", states[0].ID, id)
	}
	if states[0].Status != StatusDone || !states[0].Cached {
		t.Fatalf("restarted daemon did not replay from disk: %+v", states[0])
	}
	if !bytes.Equal(states[0].Result, first.Result) {
		t.Fatal("replayed bytes differ from the original computation")
	}
	st := srv2.Scheduler().Stats()
	if st.Jobs.Fresh != 0 {
		t.Fatalf("restarted daemon ran %d fresh jobs, want 0", st.Jobs.Fresh)
	}
	if st.Disk.Hits == 0 {
		t.Fatalf("replay did not come from the disk tier: %+v", st.Disk)
	}

	// The promoted entry now serves from memory: another submission must
	// not touch the disk tier again.
	before := st.Disk.Hits
	if _, err := client2.Submit(ctx, []JobRequest{quickJob}); err != nil {
		t.Fatal(err)
	}
	if st := srv2.Scheduler().Stats(); st.Disk.Hits != before {
		t.Fatalf("memory tier not promoted: disk hits went %d -> %d", before, st.Disk.Hits)
	}
}

// TestDiskTierSharedAcrossServers pins the fleet-sharing property: two
// live daemons on one cache directory see each other's finished results.
func TestDiskTierSharedAcrossServers(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Version: "disk-share", CacheDir: dir}
	srvA, clientA := newTestServer(t, cfg)
	_, clientB := newTestServer(t, cfg)

	ctx := context.Background()
	states, err := clientA.Submit(ctx, []JobRequest{quickJob})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, srvA, states[0].ID, StatusDone)
	got, err := clientB.Submit(ctx, []JobRequest{quickJob})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Status != StatusDone || !got[0].Cached {
		t.Fatalf("daemon B did not replay daemon A's result: %+v", got[0])
	}
}
