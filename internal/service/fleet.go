package service

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ring"
	"repro/internal/scenario"
)

// Node roles. A single node schedules and runs everything in-process; a
// coordinator decomposes trial jobs into chunks that workers (and its own
// local claimants) lease over HTTP; a worker owns no jobs and only claims
// chunks from the coordinator it joined.
const (
	RoleSingle      = "single"
	RoleCoordinator = "coordinator"
	RoleWorker      = "worker"
)

// DefaultFleetChunk is the trials-per-chunk used when Config leaves
// FleetChunk zero: small enough that a medium batch spreads across a
// 3-node fleet, large enough that per-chunk HTTP overhead stays a rounding
// error next to the engine work.
const DefaultFleetChunk = 512

// DefaultLeaseTTL is the chunk lease lifetime used when Config leaves
// LeaseTTL zero. A worker heartbeats at a third of this, so three missed
// beats mark it dead and its chunks get re-issued.
const DefaultLeaseTTL = 5 * time.Second

// ClaimRequest is the POST /chunks/claim payload: the claimant announces
// its code version (chunk results computed by a different build must never
// fold into a job's distribution) and a display name for stats.
type ClaimRequest struct {
	Version string `json:"version"`
	Node    string `json:"node,omitempty"`
}

// ChunkLease answers a successful claim: one trial range of one job,
// leased to the claimant until TTL expires. The embedded JobRequest is
// everything a worker needs to reproduce the exact sub-batch — scenario,
// overrides, and the batch base seed; per-trial seeds derive from the
// logical indices in [Start, End).
type ChunkLease struct {
	Lease    int64      `json:"lease"`
	Job      JobRequest `json:"job"`
	Start    int        `json:"start"`
	End      int        `json:"end"`
	TTLMilli int64      `json:"ttl_ms"`
}

// ChunkResult is the POST /chunks/result payload: the shard distribution
// of the leased range, or the error that prevented it.
type ChunkResult struct {
	Lease int64              `json:"lease"`
	Dist  *ring.Distribution `json:"dist,omitempty"`
	Error string             `json:"error,omitempty"`
}

// ChunkHeartbeat is the POST /chunks/heartbeat payload; a beat extends the
// lease by one TTL. A 410 response tells the claimant its lease is gone —
// the job was canceled or the lease expired and was re-issued — and the
// run should be abandoned.
type ChunkHeartbeat struct {
	Lease int64 `json:"lease"`
}

// fleetTask is one trial job being distributed: its chunk results and the
// chunk-order merge frontier. Results merge into merged strictly in chunk
// index order — exactly the order the single-node engine folds its own
// chunk stream — so the progress snapshots and the final distribution are
// byte-identical to a local run at any fleet size.
type fleetTask struct {
	job  *Job
	sc   scenario.Scenario
	opts scenario.Opts

	total    int                  // resolved trial count
	chunks   int                  // total chunk count
	results  []*ring.Distribution // per chunk index, nil until reported
	frontier int                  // chunks merged into merged so far
	merged   *ring.Distribution

	done    chan struct{} // closed when merged covers the batch or the task dies
	err     error         // first chunk failure, set before done closes
	aborted bool
}

// fleetChunk is one leasable trial range.
type fleetChunk struct {
	task       *fleetTask
	index      int
	start, end int
	lease      int64 // current lease id; 0 while queued
	expires    time.Time
}

// fleet is the coordinator's chunk exchange: a queue of unleased chunks, a
// lease table, and the merge state of every distributed job. Locking: f.mu
// is leaf-level — nothing under it takes s.mu or a job's mu except the
// progress update path, which takes job.mu (itself a leaf). Scheduler
// methods may call into fleet while holding no locks.
type fleet struct {
	s         *Scheduler
	chunkSize int
	ttl       time.Duration

	mu        sync.Mutex
	cond      *sync.Cond // signaled when queue gains work or the fleet closes
	queue     []*fleetChunk
	leased    map[int64]*fleetChunk
	nextLease int64
	closed    bool

	enqueued  atomic.Int64 // chunks created
	completed atomic.Int64 // chunk results folded in
	reissued  atomic.Int64 // leases reclaimed from dead claimants
	remote    atomic.Int64 // claims granted over HTTP
}

// newFleet builds the coordinator state and starts its goroutines: one
// janitor that reclaims expired leases even when no claim traffic arrives,
// and cfg.Parallel local claimants, so a coordinator with zero workers
// still drains every job by itself.
func newFleet(s *Scheduler) *fleet {
	f := &fleet{
		s:         s,
		chunkSize: s.cfg.FleetChunk,
		ttl:       s.cfg.LeaseTTL,
		leased:    make(map[int64]*fleetChunk),
	}
	if f.chunkSize <= 0 {
		f.chunkSize = DefaultFleetChunk
	}
	if f.ttl <= 0 {
		f.ttl = DefaultLeaseTTL
	}
	f.cond = sync.NewCond(&f.mu)
	s.wg.Add(1)
	go f.janitor()
	for i := 0; i < s.cfg.Parallel; i++ {
		s.wg.Add(1)
		go f.localClaimant()
	}
	return f
}

// janitor periodically reclaims expired leases and wakes blocked local
// claimants; it also propagates scheduler shutdown into the cond so no
// claimant sleeps through Close.
func (f *fleet) janitor() {
	defer f.s.wg.Done()
	ticker := time.NewTicker(f.ttl / 2)
	defer ticker.Stop()
	for {
		select {
		case <-f.s.baseCtx.Done():
			f.mu.Lock()
			f.closed = true
			f.cond.Broadcast()
			f.mu.Unlock()
			return
		case <-ticker.C:
			f.mu.Lock()
			f.reclaimExpiredLocked()
			if len(f.queue) > 0 {
				f.cond.Broadcast()
			}
			f.mu.Unlock()
		}
	}
}

// enqueue decomposes one fresh job into leasable chunks and returns its
// task; runFleet waits on task.done.
func (f *fleet) enqueue(j *Job, sc scenario.Scenario, opts scenario.Opts) *fleetTask {
	n, total := sc.Resolve(opts)
	task := &fleetTask{
		job:    j,
		sc:     sc,
		opts:   opts,
		total:  total,
		merged: ring.NewDistribution(n),
		done:   make(chan struct{}),
	}
	task.chunks = (total + f.chunkSize - 1) / f.chunkSize
	task.results = make([]*ring.Distribution, task.chunks)

	f.mu.Lock()
	for i, start := 0, 0; start < total; i, start = i+1, start+f.chunkSize {
		end := start + f.chunkSize
		if end > total {
			end = total
		}
		f.queue = append(f.queue, &fleetChunk{task: task, index: i, start: start, end: end})
	}
	f.enqueued.Add(int64(task.chunks))
	f.cond.Broadcast()
	f.mu.Unlock()
	return task
}

// reclaimExpiredLocked sweeps the lease table: expired chunks of live
// tasks rejoin the queue under a fresh claim; chunks of dead tasks are
// dropped. Callers hold f.mu.
func (f *fleet) reclaimExpiredLocked() {
	now := time.Now()
	for id, c := range f.leased {
		if now.Before(c.expires) {
			continue
		}
		delete(f.leased, id)
		c.lease = 0
		if !c.task.aborted {
			f.queue = append(f.queue, c)
			f.reissued.Add(1)
		}
	}
}

// popLocked removes and returns the next live queued chunk, discarding
// chunks whose task has died. Callers hold f.mu.
func (f *fleet) popLocked() *fleetChunk {
	for len(f.queue) > 0 {
		c := f.queue[0]
		f.queue[0] = nil
		f.queue = f.queue[1:]
		if c.task.aborted {
			continue
		}
		return c
	}
	return nil
}

// leaseLocked grants a lease on c. Callers hold f.mu.
func (f *fleet) leaseLocked(c *fleetChunk) {
	f.nextLease++
	c.lease = f.nextLease
	c.expires = time.Now().Add(f.ttl)
	f.leased[c.lease] = c
}

// claimRemote hands one chunk to an HTTP claimant, or nil when no work is
// queued. Remote claimants poll; only local claimants block.
func (f *fleet) claimRemote() *ChunkLease {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.reclaimExpiredLocked()
	c := f.popLocked()
	if c == nil {
		return nil
	}
	f.leaseLocked(c)
	f.remote.Add(1)
	return &ChunkLease{
		Lease:    c.lease,
		Job:      c.task.job.Req,
		Start:    c.start,
		End:      c.end,
		TTLMilli: f.ttl.Milliseconds(),
	}
}

// claimBlocking waits for a chunk for a local claimant, returning nil when
// the fleet shuts down.
func (f *fleet) claimBlocking() *fleetChunk {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return nil
		}
		f.reclaimExpiredLocked()
		if c := f.popLocked(); c != nil {
			f.leaseLocked(c)
			return c
		}
		f.cond.Wait()
	}
}

// heartbeat extends a live lease by one TTL. It reports false when the
// lease is unknown — expired and re-issued, or the job is gone — which
// tells the claimant to abandon the run.
func (f *fleet) heartbeat(lease int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.leased[lease]
	if !ok || c.task.aborted {
		return false
	}
	c.expires = time.Now().Add(f.ttl)
	return true
}

// report resolves a lease with its shard result or error. Unknown leases
// (expired and re-issued, canceled jobs) report false and the result is
// dropped — the lease table is what makes re-issued chunks merge exactly
// once. A chunk error fails the whole task: partial batches are never
// cached or served.
func (f *fleet) report(lease int64, dist *ring.Distribution, errMsg string) bool {
	f.mu.Lock()
	c, ok := f.leased[lease]
	if !ok {
		f.mu.Unlock()
		return false
	}
	delete(f.leased, lease)
	t := c.task
	if t.aborted {
		f.mu.Unlock()
		return true
	}
	if errMsg != "" {
		f.failTaskLocked(t, &chunkError{index: c.index, msg: errMsg})
		f.mu.Unlock()
		return true
	}
	t.results[c.index] = dist
	f.completed.Add(1)
	// Advance the chunk-order merge frontier as far as contiguous results
	// allow. Merging in index order — never arrival order — is what keeps
	// the progress stream and any partial observation deterministic; the
	// final totals are order-independent anyway (counter sums).
	for t.frontier < t.chunks && t.results[t.frontier] != nil {
		_ = t.merged.Merge(t.results[t.frontier])
		t.results[t.frontier] = nil
		t.frontier++
	}
	frontierTrials := t.merged.Trials
	finished := t.frontier == t.chunks
	if finished {
		close(t.done)
	}
	// Snapshot while still holding f.mu: the next reporter's frontier
	// advance mutates t.merged, so reading it outside the lock races.
	var snap scenario.Snapshot
	publish := frontierTrials > 0 && !finished
	if publish {
		snap = scenario.NewSnapshot(t.merged, frontierTrials, t.total)
	}
	f.mu.Unlock()

	// Progress accounting outside f.mu: job.mu and the scheduler counter
	// are leaves of their own.
	if publish {
		f.publishProgress(t, snap, frontierTrials)
	}
	return true
}

// publishProgress mirrors the engine's Progress callback for a distributed
// job: a deterministic chunk-ordered prefix snapshot.
func (f *fleet) publishProgress(t *fleetTask, snap scenario.Snapshot, done int) {
	j := t.job
	j.mu.Lock()
	if done < j.lastDone {
		// A stale prefix (racing reporters) must never regress the stream.
		j.mu.Unlock()
		return
	}
	j.snap, j.hasSnap = snap, true
	delta := done - j.lastDone
	j.lastDone = done
	j.mu.Unlock()
	f.s.trialsDone.Add(int64(delta))
}

// chunkError carries the failing chunk's index for error reporting.
type chunkError struct {
	index int
	msg   string
}

func (e *chunkError) Error() string {
	return e.msg
}

// failTaskLocked kills a task: queued chunks die lazily via the aborted
// flag, in-flight leases are dropped so late results bounce, and done
// closes exactly once. Callers hold f.mu.
func (f *fleet) failTaskLocked(t *fleetTask, err error) {
	if t.aborted || t.frontier == t.chunks {
		return
	}
	t.aborted = true
	t.err = err
	for id, c := range f.leased {
		if c.task == t {
			delete(f.leased, id)
		}
	}
	close(t.done)
}

// abort cancels a task (job canceled or scheduler closing).
func (f *fleet) abort(t *fleetTask) {
	f.mu.Lock()
	f.failTaskLocked(t, t.job.ctx.Err())
	f.mu.Unlock()
}

// localClaimant is the coordinator's in-process worker loop: claim, run,
// report. It shares the scheduler's arena pool and worker count with the
// single-node path, so a zero-worker coordinator is operationally a
// single node with chunk-granular scheduling.
func (f *fleet) localClaimant() {
	defer f.s.wg.Done()
	for {
		c := f.claimBlocking()
		if c == nil {
			return
		}
		f.runLocal(c)
	}
}

// runLocal executes one claimed chunk in-process, heartbeating like a
// remote worker so long chunks survive their lease.
func (f *fleet) runLocal(c *fleetChunk) {
	f.s.busy.Add(1)
	defer f.s.busy.Add(-1)
	t := c.task
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(f.ttl / 3)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if !f.heartbeat(c.lease) {
					return
				}
			}
		}
	}()
	o := t.opts
	o.Workers = f.s.cfg.Workers
	o.Arenas = f.s.arenas
	dist, err := t.sc.RunShard(t.job.ctx, t.job.Req.Seed, o, c.start, c.end)
	if err != nil {
		f.report(c.lease, nil, err.Error())
		return
	}
	f.report(c.lease, dist, "")
}

// runFleet is the coordinator counterpart of run: decompose the job,
// wait for the chunk-order merge to cover the batch, summarize, cache.
func (s *Scheduler) runFleet(j *Job, sc scenario.Scenario) {
	defer s.wg.Done()
	defer j.cancel()
	j.mu.Lock()
	j.status = StatusRunning
	j.mu.Unlock()

	opts := j.Req.opts()
	task := s.fleet.enqueue(j, sc, opts)
	select {
	case <-task.done:
	case <-j.ctx.Done():
		s.fleet.abort(task)
	}
	s.fleet.mu.Lock()
	err, merged := task.err, task.merged
	s.fleet.mu.Unlock()
	switch {
	case j.ctx.Err() != nil:
		s.canceled.Add(1)
		j.finish(StatusCanceled, nil, context.Cause(j.ctx).Error())
		s.retire(j)
	case err != nil:
		s.failed.Add(1)
		j.finish(StatusFailed, nil, err.Error())
		s.retire(j)
	default:
		out := sc.OutcomeFromDist(merged, opts)
		b, merr := json.Marshal(out)
		if merr != nil {
			s.failed.Add(1)
			j.finish(StatusFailed, nil, merr.Error())
			s.retire(j)
			return
		}
		f := s.fleet
		f.publishFinal(task)
		s.cachePut(j.ID, b)
		s.completed.Add(1)
		j.finish(StatusDone, b, "")
	}
}

// publishFinal records the completed batch in the trial counters (the
// final frontier advance skips publishProgress so done is only ever
// published after the outcome exists). The task is finished, so t.merged
// is quiescent and safe to read without f.mu.
func (f *fleet) publishFinal(t *fleetTask) {
	f.publishProgress(t, scenario.NewSnapshot(t.merged, t.total, t.total), t.total)
}
