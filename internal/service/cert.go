package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/equilibrium"
	"repro/internal/scenario"
)

// CertRequest describes one certification sweep: a registered scenario plus
// the sweep parameters that pin its certificate. Zero fields keep the
// equilibrium defaults (2000-trial budget, ε = 0.05, α = 0.05, the
// protocol's resilience bound).
type CertRequest struct {
	// Scenario is the registered scenario name.
	Scenario string `json:"scenario"`
	// N overrides the network size.
	N int `json:"n,omitempty"`
	// Trials is the per-candidate trial budget.
	Trials int `json:"trials,omitempty"`
	// MinTrials is the earliest early-stopping point.
	MinTrials int `json:"min_trials,omitempty"`
	// MaxK bounds honest sweeps' coalition sizes.
	MaxK int `json:"max_k,omitempty"`
	// Epsilon and Alpha are the certified threshold and error level.
	Epsilon float64 `json:"epsilon,omitempty"`
	Alpha   float64 `json:"alpha,omitempty"`
	// Seed is the sweep's base seed; it is part of the certificate's
	// identity.
	Seed int64 `json:"seed"`
}

// options lowers the request onto equilibrium.Options (identity-relevant
// fields only; the scheduler adds workers/arenas/progress at run time).
func (r CertRequest) options(version string) equilibrium.Options {
	return equilibrium.Options{
		N: r.N, Trials: r.Trials, MinTrials: r.MinTrials, MaxK: r.MaxK,
		Epsilon: r.Epsilon, Alpha: r.Alpha, Version: version,
	}
}

// CertState is the wire representation of a certification job at one
// instant. Result holds the exact cached certificate bytes, so byte
// identity survives the round trip through the API.
type CertState struct {
	ID       string                `json:"id"`
	Scenario string                `json:"scenario"`
	Seed     int64                 `json:"seed"`
	Status   JobStatus             `json:"status"`
	Cached   bool                  `json:"cached,omitempty"`
	Deduped  int                   `json:"deduped,omitempty"`
	Progress *equilibrium.Progress `json:"progress,omitempty"`
	Error    string                `json:"error,omitempty"`
	Result   json.RawMessage       `json:"result,omitempty"`
}

// CertJob is one scheduled certification sweep; like Job, its identity is
// its content address (equilibrium.Key), so identical requests share one
// computation.
type CertJob struct {
	// ID is the certificate's content address.
	ID string
	// Req is the request that first created the job.
	Req CertRequest

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu      sync.Mutex
	status  JobStatus
	cached  bool
	deduped int
	result  []byte
	errMsg  string
	prog    equilibrium.Progress
	hasProg bool
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *CertJob) Done() <-chan struct{} { return j.done }

// State captures the job's current wire state.
func (j *CertJob) State() CertState {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := CertState{
		ID:       j.ID,
		Scenario: j.Req.Scenario,
		Seed:     j.Req.Seed,
		Status:   j.status,
		Cached:   j.cached,
		Deduped:  j.deduped,
		Error:    j.errMsg,
	}
	if j.hasProg {
		prog := j.prog
		st.Progress = &prog
	}
	if j.result != nil {
		st.Result = json.RawMessage(j.result)
	}
	return st
}

// finish moves the job to a terminal state exactly once.
func (j *CertJob) finish(status JobStatus, result []byte, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return
	}
	j.status = status
	j.result = result
	j.errMsg = errMsg
	close(j.done)
}

// SubmitCerts registers a batch of certification requests and returns one
// *CertJob per request, in order, with exactly the dedup semantics of
// Submit: identical requests — in this batch, in flight, or already cached —
// resolve to the same job, and the batch is rejected whole on any invalid
// request.
func (s *Scheduler) SubmitCerts(reqs []CertRequest) ([]*CertJob, error) {
	if len(reqs) == 0 {
		return nil, errors.New("service: empty certification batch")
	}
	scs := make([]scenario.Scenario, len(reqs))
	for i, req := range reqs {
		sc, ok := scenario.Find(req.Scenario)
		if !ok {
			return nil, fmt.Errorf("service: cert %d: no registered scenario %q", i, req.Scenario)
		}
		if err := s.validateCert(sc, req); err != nil {
			return nil, fmt.Errorf("service: cert %d: %w", i, err)
		}
		scs[i] = sc
	}
	out := make([]*CertJob, len(reqs))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.baseCtx.Err() != nil {
		return nil, errors.New("service: scheduler is closed")
	}
	for i, req := range reqs {
		s.submitted.Add(1)
		s.certsSubmitted.Add(1)
		id := equilibrium.Key(scs[i], req.Seed, req.options(s.version))
		if j, ok := s.certs[id]; ok {
			st := func() JobStatus { j.mu.Lock(); defer j.mu.Unlock(); return j.status }()
			switch {
			case st == StatusDone:
				s.hitsCache.Add(1)
				out[i] = j
				continue
			case !st.Terminal():
				s.hitsDedup.Add(1)
				j.mu.Lock()
				j.deduped++
				j.mu.Unlock()
				out[i] = j
				continue
			}
			// Failed or canceled: schedule a fresh run under the same
			// identity.
		}
		if b, ok := s.cacheGetLocked(id); ok {
			j := s.newCertJob(id, req)
			j.cached = true
			j.status = StatusDone
			j.result = b
			close(j.done)
			j.cancel()
			s.certs[id] = j
			s.hitsCache.Add(1)
			out[i] = j
			continue
		}
		j := s.newCertJob(id, req)
		s.certs[id] = j
		s.runsFresh.Add(1)
		s.wg.Add(1)
		go s.runCert(j, scs[i])
		out[i] = j
	}
	return out, nil
}

// validateCert applies the submit-time checks for a certification request.
// A sweep occupies one engine slot for its whole duration, so the
// MaxTrials bound applies to the sweep's worst case — the per-candidate
// budget times the enumerated space — not to one candidate alone.
func (s *Scheduler) validateCert(sc scenario.Scenario, req CertRequest) error {
	n := sc.N
	if req.N > 0 {
		n = req.N
	}
	switch {
	case req.N < 0 || req.Trials < 0 || req.MinTrials < 0 || req.MaxK < 0:
		return fmt.Errorf("%s: negative override", sc.Name)
	case req.Epsilon < 0 || req.Epsilon >= 1 || req.Alpha < 0 || req.Alpha >= 1:
		return fmt.Errorf("%s: epsilon/alpha out of [0,1)", sc.Name)
	case n < sc.MinN:
		return fmt.Errorf("%s needs n ≥ %d, got %d", sc.Name, sc.MinN, n)
	case req.Trials > s.cfg.MaxTrials:
		// Checked first so the sweep-total product below cannot overflow.
		return fmt.Errorf("%s: %d trials exceeds the per-job bound %d", sc.Name, req.Trials, s.cfg.MaxTrials)
	}
	trials := req.Trials
	if trials <= 0 {
		trials = equilibrium.DefaultTrials
	}
	candidates := len(sc.DeviationSpace(scenario.Opts{N: req.N, Trials: req.Trials, K: 0}, req.MaxK, nil))
	if candidates < 1 {
		candidates = 1
	}
	if total := trials * candidates; total > s.cfg.MaxTrials {
		return fmt.Errorf("%s: sweep of %d candidates × %d trials = %d exceeds the per-job bound %d",
			sc.Name, candidates, trials, total, s.cfg.MaxTrials)
	}
	return nil
}

// newCertJob builds a queued certification job wired to the scheduler's
// lifetime.
func (s *Scheduler) newCertJob(id string, req CertRequest) *CertJob {
	ctx, cancel := context.WithCancel(s.baseCtx)
	return &CertJob{
		ID:     id,
		Req:    req,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		status: StatusQueued,
	}
}

// retireCert records a failed or canceled certification job in the bounded
// terminal list, mirroring retire.
func (s *Scheduler) retireCert(j *CertJob) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retiredCerts = append(s.retiredCerts, j)
	for len(s.retiredCerts) > s.retiredCap {
		old := s.retiredCerts[0]
		s.retiredCerts[0] = nil
		s.retiredCerts = s.retiredCerts[1:]
		if cur, ok := s.certs[old.ID]; ok && cur == old {
			delete(s.certs, old.ID)
		}
	}
}

// runCert executes one certification sweep on the engine, respecting the
// Parallel bound: a sweep occupies one engine slot for its whole duration,
// exactly like a trial job.
func (s *Scheduler) runCert(j *CertJob, sc scenario.Scenario) {
	defer s.wg.Done()
	defer j.cancel()
	select {
	case s.sem <- struct{}{}:
	case <-j.ctx.Done():
		s.canceled.Add(1)
		j.finish(StatusCanceled, nil, context.Cause(j.ctx).Error())
		s.retireCert(j)
		return
	}
	defer func() { <-s.sem }()
	s.busy.Add(1)
	defer s.busy.Add(-1)

	j.mu.Lock()
	j.status = StatusRunning
	j.mu.Unlock()

	opts := j.Req.options(s.version)
	opts.Workers = s.cfg.Workers
	opts.Arenas = s.arenas
	opts.Progress = func(p equilibrium.Progress) {
		j.mu.Lock()
		j.prog, j.hasProg = p, true
		j.mu.Unlock()
		s.trialsDone.Add(int64(p.Trials))
	}
	cert, err := equilibrium.Certify(j.ctx, sc, j.Req.Seed, opts)
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || j.ctx.Err() != nil):
		s.canceled.Add(1)
		j.finish(StatusCanceled, nil, err.Error())
		s.retireCert(j)
	case err != nil:
		s.failed.Add(1)
		j.finish(StatusFailed, nil, err.Error())
		s.retireCert(j)
	default:
		b, merr := json.Marshal(cert)
		if merr != nil {
			s.failed.Add(1)
			j.finish(StatusFailed, nil, merr.Error())
			s.retireCert(j)
			return
		}
		s.cachePut(j.ID, b)
		s.completed.Add(1)
		j.finish(StatusDone, b, "")
	}
}

// Cert returns the certification job with the given content address.
func (s *Scheduler) Cert(id string) (*CertJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.certs[id]
	return j, ok
}

// CancelCert cancels a queued or running certification job, with the same
// content-addressed semantics as Cancel.
func (s *Scheduler) CancelCert(id string) bool {
	s.mu.Lock()
	j, ok := s.certs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	terminal := j.status.Terminal()
	j.mu.Unlock()
	if terminal {
		return false
	}
	j.cancel()
	return true
}
