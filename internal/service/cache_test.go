package service

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	evicted := c.Put("c", []byte("3"))
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted %v, want [a]", evicted)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("evicted entry still served")
	}
	if b, ok := c.Get("c"); !ok || !bytes.Equal(b, []byte("3")) {
		t.Fatalf("newest entry lost: %q %v", b, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	hits, misses := c.Lookups()
	if hits != 1 || misses != 1 {
		t.Fatalf("lookups = %d/%d, want 1 hit 1 miss", hits, misses)
	}
}

// TestCacheGetRefreshesRecency pins true LRU semantics: a Get moves the
// entry to the most-recent position, so the untouched entry is the one
// evicted — insertion order alone must not decide.
func TestCacheGetRefreshesRecency(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry a lost before capacity reached")
	}
	evicted := c.Put("c", []byte("3"))
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b] — Get(a) should have refreshed a", evicted)
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
}

// TestCacheHotEntrySurvivesChurn pins the property the LRU rewrite exists
// for: a repeatedly hit entry survives arbitrary capacity churn from cold
// one-shot entries, where the old FIFO policy would have aged it out by
// insertion time regardless of use.
func TestCacheHotEntrySurvivesChurn(t *testing.T) {
	c := NewCache(3)
	c.Put("hot", []byte("h"))
	for i := 0; i < 50; i++ {
		if _, ok := c.Get("hot"); !ok {
			t.Fatalf("hot entry evicted after %d cold inserts", i)
		}
		c.Put(fmt.Sprintf("cold%d", i), []byte{byte(i)})
	}
	if b, ok := c.Get("hot"); !ok || string(b) != "h" {
		t.Fatalf("hot entry lost to cold churn: %q %v", b, ok)
	}
}

func TestCacheFirstPutWins(t *testing.T) {
	c := NewCache(4)
	c.Put("k", []byte("first"))
	if evicted := c.Put("k", []byte("second")); evicted != nil {
		t.Fatalf("duplicate put evicted %v", evicted)
	}
	b, ok := c.Get("k")
	if !ok || string(b) != "first" {
		t.Fatalf("got %q, want the first computation's bytes", b)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d after duplicate put, want 1", c.Len())
	}
}

// TestCacheRePutRefreshesRecency pins that a duplicate Put, while keeping
// the original bytes, still counts as use: the re-put key outlives an
// older untouched one.
func TestCacheRePutRefreshesRecency(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Put("a", []byte("ignored"))
	evicted := c.Put("c", []byte("3"))
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
}

func TestCacheDefaultSize(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < DefaultCacheSize+5; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != DefaultCacheSize {
		t.Fatalf("len = %d, want the default capacity %d", c.Len(), DefaultCacheSize)
	}
}
