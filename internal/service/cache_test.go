package service

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheEvictsOldestFirst(t *testing.T) {
	var evicted []string
	c := NewCache(2, func(key string) { evicted = append(evicted, key) })
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Put("c", []byte("3"))
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted %v, want [a]", evicted)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("evicted entry still served")
	}
	if b, ok := c.Get("c"); !ok || !bytes.Equal(b, []byte("3")) {
		t.Fatalf("newest entry lost: %q %v", b, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	hits, misses := c.Lookups()
	if hits != 1 || misses != 1 {
		t.Fatalf("lookups = %d/%d, want 1 hit 1 miss", hits, misses)
	}
}

func TestCacheFirstPutWins(t *testing.T) {
	c := NewCache(4, nil)
	c.Put("k", []byte("first"))
	c.Put("k", []byte("second"))
	b, ok := c.Get("k")
	if !ok || string(b) != "first" {
		t.Fatalf("got %q, want the first computation's bytes", b)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d after duplicate put, want 1", c.Len())
	}
}

func TestCacheDefaultSize(t *testing.T) {
	c := NewCache(0, nil)
	for i := 0; i < DefaultCacheSize+5; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != DefaultCacheSize {
		t.Fatalf("len = %d, want the default capacity %d", c.Len(), DefaultCacheSize)
	}
}
