package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
)

// workerPollInterval is how long an idle worker waits between claim
// attempts when the coordinator has no queued chunks.
const workerPollInterval = 150 * time.Millisecond

// workerRetryInterval is the back-off after a claim transport error or a
// version mismatch; both are conditions that need operator time, not a
// hot retry loop.
const workerRetryInterval = time.Second

// Worker is a fleet worker node's claim loop: it polls its coordinator
// for chunk leases, runs each leased trial range through the exact
// deterministic shard path a local run uses, heartbeats while running,
// and reports the shard distribution back. Workers hold no job state —
// if one dies, its leases expire and the coordinator re-issues the chunks.
type Worker struct {
	s      *Scheduler
	join   string
	node   string
	client *http.Client

	claimed atomic.Int64
	done    atomic.Int64
	errs    atomic.Int64
}

// newWorker wires a claim loop to the scheduler's lifetime and starts
// cfg.Parallel claimant goroutines.
func newWorker(s *Scheduler) *Worker {
	host, _ := os.Hostname()
	w := &Worker{
		s:      s,
		join:   s.cfg.Join,
		node:   fmt.Sprintf("%s-%d", host, os.Getpid()),
		client: &http.Client{Timeout: 30 * time.Second},
	}
	for i := 0; i < s.cfg.Parallel; i++ {
		s.wg.Add(1)
		go w.loop()
	}
	return w
}

// Counters returns the worker's cumulative claim-loop counters.
func (w *Worker) Counters() (claimed, done, errs int64) {
	return w.claimed.Load(), w.done.Load(), w.errs.Load()
}

// loop is one claimant: claim, run, report, forever. It exits when the
// scheduler closes.
func (w *Worker) loop() {
	defer w.s.wg.Done()
	ctx := w.s.baseCtx
	for ctx.Err() == nil {
		lease, retryIn, err := w.claim(ctx)
		switch {
		case err != nil:
			w.errs.Add(1)
			sleepCtx(ctx, retryIn)
		case lease == nil:
			sleepCtx(ctx, retryIn)
		default:
			w.claimed.Add(1)
			w.runLease(ctx, lease)
		}
	}
}

// sleepCtx waits d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// claim asks the coordinator for one chunk. It returns (nil, wait, nil)
// when no work is queued and (nil, wait, err) on transport errors or a
// version mismatch, with wait the appropriate re-poll delay.
func (w *Worker) claim(ctx context.Context) (*ChunkLease, time.Duration, error) {
	body, _ := json.Marshal(ClaimRequest{Version: w.s.version, Node: w.node})
	resp, err := w.post(ctx, "/chunks/claim", body)
	if err != nil {
		return nil, workerRetryInterval, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, workerPollInterval, nil
	case http.StatusConflict:
		return nil, workerRetryInterval, fmt.Errorf("service: version mismatch with coordinator %s", w.join)
	case http.StatusOK:
		var lease ChunkLease
		if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
			return nil, workerRetryInterval, fmt.Errorf("service: bad lease: %w", err)
		}
		return &lease, 0, nil
	default:
		return nil, workerRetryInterval, fmt.Errorf("service: claim: coordinator returned %s", resp.Status)
	}
}

// runLease executes one leased chunk and reports its shard. A heartbeat
// goroutine keeps the lease alive at a third of its TTL; a 410 from the
// coordinator (lease re-issued, job canceled) cancels the run — the work
// no longer has a recipient.
func (w *Worker) runLease(ctx context.Context, lease *ChunkLease) {
	w.s.busy.Add(1)
	defer w.s.busy.Add(-1)
	sc, ok := scenario.Find(lease.Job.Scenario)
	if !ok {
		w.errs.Add(1)
		w.report(ctx, ChunkResult{Lease: lease.Lease,
			Error: fmt.Sprintf("worker has no scenario %q", lease.Job.Scenario)})
		return
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := make(chan struct{})
	defer close(stop)
	beat := time.Duration(lease.TTLMilli) * time.Millisecond / 3
	if beat <= 0 {
		beat = DefaultLeaseTTL / 3
	}
	go func() {
		ticker := time.NewTicker(beat)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if !w.heartbeat(runCtx, lease.Lease) {
					cancel()
					return
				}
			}
		}
	}()

	o := lease.Job.opts()
	o.Workers = w.s.cfg.Workers
	o.Arenas = w.s.arenas
	dist, err := sc.RunShard(runCtx, lease.Job.Seed, o, lease.Start, lease.End)
	if err != nil {
		w.errs.Add(1)
		if runCtx.Err() != nil {
			// Canceled: the lease is gone; nothing to report.
			return
		}
		w.report(ctx, ChunkResult{Lease: lease.Lease, Error: err.Error()})
		return
	}
	if w.report(ctx, ChunkResult{Lease: lease.Lease, Dist: dist}) {
		w.done.Add(1)
	}
}

// heartbeat extends the lease; false means the lease is gone.
func (w *Worker) heartbeat(ctx context.Context, lease int64) bool {
	body, _ := json.Marshal(ChunkHeartbeat{Lease: lease})
	resp, err := w.post(ctx, "/chunks/heartbeat", body)
	if err != nil {
		// Transport trouble is not lease loss: keep running; the next
		// beat (or the result post) retries, and the lease survives up
		// to a full TTL without one.
		return true
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// report delivers a chunk result, retrying transport errors a few times —
// the shard is minutes of compute and the coordinator may be mid-restart.
// It reports whether the coordinator accepted the result.
func (w *Worker) report(ctx context.Context, res ChunkResult) bool {
	body, _ := json.Marshal(res)
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			sleepCtx(ctx, workerRetryInterval)
		}
		resp, err := w.post(ctx, "/chunks/result", body)
		if err != nil {
			if ctx.Err() != nil {
				return false
			}
			continue
		}
		accepted := resp.StatusCode == http.StatusOK
		resp.Body.Close()
		if accepted || resp.StatusCode == http.StatusGone {
			return accepted
		}
	}
	w.errs.Add(1)
	return false
}

// post sends one JSON request to the coordinator.
func (w *Worker) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.join+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.client.Do(req)
}
