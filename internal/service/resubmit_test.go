package service

import (
	"context"
	"testing"
	"time"
)

// TestResubmitAfterFailureKeepsNewJobAlive pins the retire-path identity
// guard: when a canceled job's identity is resubmitted, a NEW *Job object
// takes over the same content-addressed ID. Retiring the old record under
// cache churn must evict only the old object — the `cur == old` check in
// retire — never the live successor that happens to share its ID.
func TestResubmitAfterFailureKeepsNewJobAlive(t *testing.T) {
	// CacheSize 1 keeps the retired-job window at one entry, so every
	// retirement after the first forces an eviction decision.
	srv, client := newTestServer(t, Config{CacheSize: 1})
	sched := srv.Scheduler()
	ctx := context.Background()

	// Hold the single engine slot so jobs under test sit queued and cancel
	// deterministically.
	blocker := JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 500000, Seed: 70}
	blockerStates, err := client.Submit(ctx, []JobRequest{blocker})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	waitStatus(t, srv, blockerStates[0].ID, StatusRunning)

	// First incarnation: submit, cancel, observe terminal state.
	target := JobRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 200, Seed: 71}
	firstStates, err := client.Submit(ctx, []JobRequest{target})
	if err != nil {
		t.Fatalf("submit first: %v", err)
	}
	id := firstStates[0].ID
	oldJob, ok := sched.Job(id)
	if !ok {
		t.Fatalf("job %s not registered", id)
	}
	if !sched.Cancel(id) {
		t.Fatalf("cancel %s", id)
	}
	<-oldJob.Done()
	// A watcher attached to the OLD incarnation sees its terminal state.
	if st := oldJob.State(); st.Status != StatusCanceled {
		t.Fatalf("old incarnation ended %s, want canceled", st.Status)
	}

	// Second incarnation: the same identity resubmits as a fresh run — a
	// distinct *Job under the same ID.
	secondStates, err := client.Submit(ctx, []JobRequest{target})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if secondStates[0].ID != id {
		t.Fatalf("resubmission changed identity: %s vs %s", secondStates[0].ID, id)
	}
	newJob, ok := sched.Job(id)
	if !ok {
		t.Fatal("resubmitted job not registered")
	}
	if newJob == oldJob {
		t.Fatal("resubmission reused the canceled *Job instead of replacing it")
	}

	// Churn the retirement window: cancel unrelated jobs until the OLD
	// incarnation's record must have been pushed out of the window. Its
	// eviction runs while s.jobs[id] points at the NEW object — the guard
	// under test.
	for seed := int64(100); seed < 103; seed++ {
		churn := JobRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 50, Seed: seed}
		states, err := client.Submit(ctx, []JobRequest{churn})
		if err != nil {
			t.Fatalf("submit churn %d: %v", seed, err)
		}
		if !sched.Cancel(states[0].ID) {
			t.Fatalf("cancel churn %d", seed)
		}
		j, _ := sched.Job(states[0].ID)
		<-j.Done()
	}

	// The new incarnation must still be addressable: retire evicted the old
	// record without deleting the live successor from the job table.
	// (Retirement runs just after each done channel closes; give the last
	// churn retirement a beat to land before the decisive check.)
	time.Sleep(100 * time.Millisecond)
	if cur, ok := sched.Job(id); !ok {
		t.Fatal("live resubmitted job was deleted by the old record's retirement")
	} else if cur != newJob {
		t.Fatal("job table no longer points at the resubmitted incarnation")
	}

	// Watchers of each incarnation see distinct terminal states: old is
	// canceled (checked above and stable), new completes once the blocker
	// frees the slot.
	if !sched.Cancel(blockerStates[0].ID) {
		t.Fatal("cancel blocker")
	}
	final, err := client.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait for resubmitted job: %v", err)
	}
	if final.Status != StatusDone {
		t.Fatalf("resubmitted job ended %s: %s", final.Status, final.Error)
	}
	if st := oldJob.State(); st.Status != StatusCanceled {
		t.Fatalf("old incarnation's state mutated to %s after the new one finished", st.Status)
	}
}
