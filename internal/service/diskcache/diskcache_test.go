package diskcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// key returns a deterministic valid content address for test entry i.
func key(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("entry-%d", i)))
	return hex.EncodeToString(sum[:])
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := key(1)
	if _, ok, err := s.Get(k); err != nil || ok {
		t.Fatalf("empty store Get = ok %v err %v", ok, err)
	}
	val := []byte(`{"scenario":"ring/a-lead/fifo"}`)
	if err := s.Put(k, val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(k)
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q ok %v err %v", got, ok, err)
	}
	hits, misses, writes := s.Stats()
	if hits != 1 || misses != 1 || writes != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", hits, misses, writes)
	}
}

// TestStoreOnDiskLayout pins the v1 format: one file per key at
// <root>/flecache-v1/<key[:2]>/<key>, holding the exact value bytes.
func TestStoreOnDiskLayout(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	k := key(2)
	if err := s.Put(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(root, FormatDir, k[:2], k)
	b, err := os.ReadFile(want)
	if err != nil {
		t.Fatalf("entry not at the documented path: %v", err)
	}
	if string(b) != "payload" {
		t.Fatalf("file holds %q", b)
	}
	if s.Dir() != filepath.Join(root, FormatDir) {
		t.Fatalf("Dir() = %q, want the versioned format dir", s.Dir())
	}
}

// TestStoreReopenServesEntries pins crash/restart survival: a second Open
// of the same root serves everything the first process wrote.
func TestStoreReopenServesEntries(t *testing.T) {
	root := t.TempDir()
	s1, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s1.Put(key(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, ok, err := s2.Get(key(i))
		if err != nil || !ok || string(b) != fmt.Sprintf("v%d", i) {
			t.Fatalf("entry %d after reopen: %q ok %v err %v", i, b, ok, err)
		}
	}
	if n, err := s2.Len(); err != nil || n != 10 {
		t.Fatalf("Len = %d err %v, want 10", n, err)
	}
}

// TestStoreFirstPutWins pins immutability: a second Put of the same key
// leaves the original bytes in place.
func TestStoreFirstPutWins(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := key(3)
	if err := s.Put(k, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, []byte("second")); err != nil {
		t.Fatal(err)
	}
	b, ok, err := s.Get(k)
	if err != nil || !ok || string(b) != "first" {
		t.Fatalf("got %q ok %v err %v, want the first bytes", b, ok, err)
	}
}

// TestOpenSweepsOrphanedTempFiles pins crash recovery: *.tmp files left by
// a writer that died before its rename are removed on Open, and completed
// entries are untouched.
func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	root := t.TempDir()
	s, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	k := key(4)
	if err := s.Put(k, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	bucket := filepath.Join(root, FormatDir, k[:2])
	orphan := filepath.Join(bucket, key(5)+".12345.tmp")
	if err := os.WriteFile(orphan, []byte("torn wr"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(root); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan survived reopen: %v", err)
	}
	if b, ok, _ := s.Get(k); !ok || string(b) != "kept" {
		t.Fatalf("completed entry damaged by sweep: %q %v", b, ok)
	}
}

// TestStoreRejectsInvalidKeys pins the path-safety guard: only 64-char
// lowercase hex content addresses reach the filesystem.
func TestStoreRejectsInvalidKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"",
		"short",
		strings.Repeat("g", 64),
		strings.Repeat("A", 64),
		"../" + strings.Repeat("a", 61),
		strings.Repeat("a", 63) + "/",
	}
	for _, k := range bad {
		if err := s.Put(k, []byte("x")); err == nil {
			t.Fatalf("Put accepted invalid key %q", k)
		}
		if _, _, err := s.Get(k); err == nil {
			t.Fatalf("Get accepted invalid key %q", k)
		}
	}
}

// TestStoreErrorPaths pins the I/O failure behavior: an unusable root
// fails Open, a blocked bucket fails Put, and a directory squatting on an
// entry path surfaces as a Get error rather than a silent miss.
func TestStoreErrorPaths(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open accepted an empty root")
	}
	root := t.TempDir()
	file := filepath.Join(root, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The format dir cannot be created under a regular file.
	if _, err := Open(filepath.Join(file, "sub")); err == nil {
		t.Fatal("Open accepted a root under a regular file")
	}

	s, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	k := key(7)
	// A regular file where the fan-out bucket belongs blocks the Put.
	if err := os.WriteFile(filepath.Join(s.Dir(), k[:2]), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, []byte("v")); err == nil {
		t.Fatal("Put succeeded into a blocked bucket")
	}

	// A directory at an entry's final path is a real I/O error on Get,
	// not a miss: the caller must not recompute over corruption.
	k2 := key(8)
	if err := os.MkdirAll(filepath.Join(s.Dir(), k2[:2], k2), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(k2); err == nil || ok {
		t.Fatalf("Get on a squatted path = ok %v err %v, want error", ok, err)
	}
}

// TestStoreConcurrentPutSameKey pins the multi-writer race: many
// goroutines publishing the same key all succeed and the entry ends whole.
func TestStoreConcurrentPutSameKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := key(6)
	val := bytes.Repeat([]byte("abcdefgh"), 1024)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- s.Put(k, val)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	b, ok, err := s.Get(k)
	if err != nil || !ok || !bytes.Equal(b, val) {
		t.Fatalf("entry torn after concurrent puts: len %d ok %v err %v", len(b), ok, err)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d err %v, want 1", n, err)
	}
}
