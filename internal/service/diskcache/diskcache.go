// Package diskcache is the crash-safe, disk-backed tier of the service's
// content-addressed result cache. Each finished result is one file of
// exact wire bytes under a fan-out directory keyed by its SHA-256 content
// address, so a cache directory can be shared by every node of a fleet and
// survives process restarts: a coordinator reopening the directory replays
// any previously computed result bit-for-bit with zero engine runs.
//
// On-disk format (format version v1):
//
//	<root>/flecache-v1/<key[:2]>/<key>
//
// where key is the 64-character lowercase hex SHA-256 content address
// (scenario.JobKey for trial jobs, equilibrium.Key for certificates — the
// two key spaces are disjoint, so one directory serves both). The two-hex
// fan-out keeps directories small at realistic cache sizes. The format
// version is part of the directory name, not the file contents: a future
// incompatible layout writes to flecache-v2 and never misreads v1 files.
//
// Writes are crash-safe: bytes land in a same-directory temp file, are
// fsynced, and are atomically renamed into place, so a reader can never
// observe a torn entry — any file at the final path is complete. A crash
// between the temp write and the rename leaves only a *.tmp orphan, which
// Open sweeps away. Entries are immutable once written: like the in-memory
// tier, the first computation's bytes win, which keeps replays identical
// for the entry's lifetime even when several nodes race to publish the
// same key.
package diskcache

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// FormatDir is the versioned directory, under the configured root, that
// holds all v1 entries.
const FormatDir = "flecache-v1"

// Store is a handle on one cache directory. All methods are safe for
// concurrent use by any number of goroutines and, because every mutation
// is an atomic rename, by any number of processes sharing the directory.
type Store struct {
	dir string // <root>/flecache-v1

	hits   atomic.Int64
	misses atomic.Int64
	writes atomic.Int64
}

// Open prepares root for use as a cache directory, creating it if needed,
// and sweeps any *.tmp orphans a crashed writer left behind. Reopening a
// directory written by an earlier process serves all of its entries.
func Open(root string) (*Store, error) {
	if root == "" {
		return nil, errors.New("diskcache: empty cache directory")
	}
	dir := filepath.Join(root, FormatDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	if err := sweepOrphans(dir); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// sweepOrphans removes temp files abandoned by writers that crashed
// between the write and the rename. Entries at their final paths are never
// touched.
func sweepOrphans(dir string) error {
	return filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return fmt.Errorf("diskcache: sweep: %w", err)
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".tmp") {
			if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("diskcache: sweep: %w", err)
			}
		}
		return nil
	})
}

// Dir returns the versioned directory entries live in.
func (s *Store) Dir() string { return s.dir }

// path maps a validated key to its entry file.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// validKey reports whether key is a 64-character lowercase hex string —
// the only shape either content-address space produces. Rejecting anything
// else keeps arbitrary strings from steering file paths.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the stored bytes for key. A missing entry is (nil, false,
// nil); the error return is reserved for real I/O failures.
func (s *Store) Get(key string) ([]byte, bool, error) {
	if !validKey(key) {
		return nil, false, fmt.Errorf("diskcache: invalid key %q", key)
	}
	b, err := os.ReadFile(s.path(key))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		s.misses.Add(1)
		return nil, false, nil
	case err != nil:
		return nil, false, fmt.Errorf("diskcache: %w", err)
	}
	s.hits.Add(1)
	return b, true, nil
}

// Put durably stores val under key. An existing entry is left untouched —
// first put wins, and concurrent writers of the same key (even from other
// processes) settle via atomic rename without ever exposing partial bytes.
func (s *Store) Put(key string, val []byte) error {
	if !validKey(key) {
		return fmt.Errorf("diskcache: invalid key %q", key)
	}
	final := s.path(key)
	if _, err := os.Stat(final); err == nil {
		return nil
	}
	bucket := filepath.Dir(final)
	if err := os.MkdirAll(bucket, 0o755); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	// Temp file in the destination directory so the rename cannot cross
	// filesystems (renames are only atomic within one).
	tmp, err := os.CreateTemp(bucket, key+".*.tmp")
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// Len walks the directory and returns the number of stored entries. It is
// an O(entries) scan meant for stats and tests, not hot paths.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && validKey(d.Name()) {
			n++
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("diskcache: %w", err)
	}
	return n, nil
}

// Stats returns the process-local operation counters: disk hits, disk
// misses, and entries written by this handle. Entries written by other
// nodes sharing the directory appear as hits here, not writes.
func (s *Store) Stats() (hits, misses, writes int64) {
	return s.hits.Load(), s.misses.Load(), s.writes.Load()
}
