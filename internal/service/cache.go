package service

import "sync"

// Cache is the content-addressed result store: finished job results, as
// exact wire bytes, keyed by scenario.JobKey. Because every key pins the
// code version, seed derivation, and full run configuration, a hit is a
// bit-for-bit replay of the first computation — the cache never serves an
// approximation.
//
// Entries are evicted oldest-first once the configured capacity is
// exceeded; an optional eviction hook lets the scheduler drop its job
// metadata in step so the two views never disagree. All methods are safe
// for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string][]byte
	order   []string // insertion order; index 0 is evicted first
	onEvict func(key string)
	hits    int64
	misses  int64
}

// DefaultCacheSize is the entry capacity used when Config leaves it zero.
const DefaultCacheSize = 4096

// NewCache returns an empty cache holding at most max entries (0 picks
// DefaultCacheSize). onEvict, if non-nil, is called with each evicted key,
// outside any per-entry work but under the cache lock — keep it cheap.
func NewCache(max int, onEvict func(key string)) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &Cache{
		max:     max,
		entries: make(map[string][]byte),
		onEvict: onEvict,
	}
}

// Get returns the stored bytes for key. The returned slice is shared — the
// whole point is byte identity — and must be treated as read-only.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return b, ok
}

// Put stores val under key, evicting the oldest entries if the cache is
// full. Re-putting an existing key is a no-op: the first computation's
// bytes win, which keeps replays identical over the cache entry's lifetime.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; exists {
		return
	}
	c.entries[key] = val
	c.order = append(c.order, key)
	for len(c.entries) > c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
		if c.onEvict != nil {
			c.onEvict(oldest)
		}
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Lookups returns the raw Get counters (hits, misses). These count cache
// probes, not job outcomes; the scheduler's Stats reports the job-level
// hit rate the acceptance checks care about.
func (c *Cache) Lookups() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
