package service

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed result store: finished job results, as
// exact wire bytes, keyed by scenario.JobKey. Because every key pins the
// code version, seed derivation, and full run configuration, a hit is a
// bit-for-bit replay of the first computation — the cache never serves an
// approximation.
//
// Entries are evicted least-recently-used once the configured capacity is
// exceeded: Get refreshes an entry's recency, so a hot result survives
// capacity churn from cold ones. Put reports the evicted keys to its
// caller instead of invoking a callback, so the scheduler can apply its
// own bookkeeping under its own lock — no foreign code ever runs under the
// cache lock. All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front is least recently used, back is most recent
	hits    int64
	misses  int64
}

// entry is the list payload: the key rides along so eviction can report it.
type entry struct {
	key string
	val []byte
}

// DefaultCacheSize is the entry capacity used when Config leaves it zero.
const DefaultCacheSize = 4096

// NewCache returns an empty cache holding at most max entries (0 picks
// DefaultCacheSize).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &Cache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Get returns the stored bytes for key and refreshes the entry's recency.
// The returned slice is shared — the whole point is byte identity — and
// must be treated as read-only.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToBack(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key and returns the keys evicted to make room,
// least recently used first. Re-putting an existing key refreshes its
// recency but keeps the original bytes: the first computation wins, which
// keeps replays identical over the cache entry's lifetime. Callers that
// mirror cache membership elsewhere must process the returned keys under
// their own lock.
func (c *Cache) Put(key string, val []byte) (evicted []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, exists := c.entries[key]; exists {
		c.order.MoveToBack(el)
		return nil
	}
	c.entries[key] = c.order.PushBack(&entry{key: key, val: val})
	for c.order.Len() > c.max {
		oldest := c.order.Front()
		c.order.Remove(oldest)
		k := oldest.Value.(*entry).key
		delete(c.entries, k)
		evicted = append(evicted, k)
	}
	return evicted
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Lookups returns the raw Get counters (hits, misses). These count cache
// probes, not job outcomes; the scheduler's Stats reports the job-level
// hit rate the acceptance checks care about.
func (c *Cache) Lookups() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
