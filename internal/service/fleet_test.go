package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

// directBytes computes the reference result for a job the way a bare
// single-node engine run would, bypassing the service entirely.
func directBytes(t *testing.T, req JobRequest) []byte {
	t.Helper()
	sc, ok := scenario.Find(req.Scenario)
	if !ok {
		t.Fatalf("no scenario %q", req.Scenario)
	}
	out, err := sc.RunOpts(context.Background(), req.Seed, req.opts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// waitResult submits req and waits for its terminal state.
func waitResult(t *testing.T, client *Client, req JobRequest) JobState {
	t.Helper()
	states, err := client.Submit(context.Background(), []JobRequest{req})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := client.Wait(ctx, states[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	return final
}

// TestFleetCoordinatorAloneByteIdentity pins the tentpole invariant at
// fleet size one: a coordinator with no workers (local claimants only)
// produces bytes identical to a bare engine run, across chunk sizes that
// do and do not divide the batch.
func TestFleetCoordinatorAloneByteIdentity(t *testing.T) {
	req := JobRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 500, Seed: 77}
	want := directBytes(t, req)
	for _, chunk := range []int{1000, 100, 33} {
		cfg := Config{Version: "fleet-one", Role: RoleCoordinator, FleetChunk: chunk}
		srv, client := newTestServer(t, cfg)
		final := waitResult(t, client, req)
		if final.Status != StatusDone {
			t.Fatalf("chunk %d: job ended %s: %s", chunk, final.Status, final.Error)
		}
		if !bytes.Equal(final.Result, want) {
			t.Fatalf("chunk %d: fleet result differs from single-node bytes", chunk)
		}
		st := srv.Scheduler().Stats()
		if st.Fleet.Role != RoleCoordinator {
			t.Fatalf("role = %q", st.Fleet.Role)
		}
		wantChunks := (500 + chunk - 1) / chunk
		if st.Fleet.ChunksCompleted != int64(wantChunks) {
			t.Fatalf("chunk %d: completed %d chunks, want %d", chunk, st.Fleet.ChunksCompleted, wantChunks)
		}
	}
}

// TestFleetChunkProtocol drives the coordinator's /chunks endpoints as a
// remote worker would: version gating, claim, shard execution through
// RunShard, result delivery, and the rejection of bogus leases.
func TestFleetChunkProtocol(t *testing.T) {
	cfg := Config{Version: "fleet-proto", Role: RoleCoordinator, FleetChunk: 40, Parallel: 1}
	srv, client := newTestServer(t, cfg)
	base := client.BaseURL()

	post := func(path string, body any) *http.Response {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Empty queue: a claim with the right version gets 204.
	resp := post("/chunks/claim", ClaimRequest{Version: srv.Scheduler().Version()})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("claim on empty queue = %d, want 204", resp.StatusCode)
	}
	resp.Body.Close()

	// Version mismatch is a hard 409 regardless of queue state.
	resp = post("/chunks/claim", ClaimRequest{Version: "other-build"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched claim = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// Bogus lease ids bounce with 410.
	resp = post("/chunks/result", ChunkResult{Lease: 999999})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("bogus result = %d, want 410", resp.StatusCode)
	}
	resp.Body.Close()
	resp = post("/chunks/heartbeat", ChunkHeartbeat{Lease: 999999})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("bogus heartbeat = %d, want 410", resp.StatusCode)
	}
	resp.Body.Close()

	// Submit a job and work as a protocol-level claimant alongside the
	// coordinator's local claimants: claim, run the exact leased range,
	// report. Whoever wins each chunk, the merged bytes must equal the
	// bare engine run.
	req := JobRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 400, Seed: 31}
	want := directBytes(t, req)
	states, err := client.Submit(context.Background(), []JobRequest{req})
	if err != nil {
		t.Fatal(err)
	}
	for {
		resp := post("/chunks/claim", ClaimRequest{Version: srv.Scheduler().Version(), Node: "test-claimant"})
		if resp.StatusCode == http.StatusNoContent {
			resp.Body.Close()
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("claim = %d", resp.StatusCode)
		}
		var lease ChunkLease
		if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		sc, _ := scenario.Find(lease.Job.Scenario)
		dist, err := sc.RunShard(context.Background(), lease.Job.Seed, lease.Job.opts(), lease.Start, lease.End)
		if err != nil {
			t.Fatal(err)
		}
		rr := post("/chunks/result", ChunkResult{Lease: lease.Lease, Dist: dist})
		if rr.StatusCode != http.StatusOK {
			t.Fatalf("result = %d", rr.StatusCode)
		}
		rr.Body.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := client.Wait(ctx, states[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatal("mixed local/remote chunks broke byte identity")
	}
}

// TestFleetDeadClaimantReissue pins the crash-recovery path: a claimant
// that leases a chunk and vanishes (no heartbeat, no result) must not
// strand the job — the lease expires and the chunk is re-issued, and the
// final bytes are still identical to a single-node run.
func TestFleetDeadClaimantReissue(t *testing.T) {
	cfg := Config{
		Version: "fleet-reissue", Role: RoleCoordinator,
		FleetChunk: 500, LeaseTTL: 300 * time.Millisecond, Parallel: 1,
	}
	srv, client := newTestServer(t, cfg)
	req := JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 40000, Seed: 13}
	want := directBytes(t, req)

	states, err := client.Submit(context.Background(), []JobRequest{req})
	if err != nil {
		t.Fatal(err)
	}
	// Claim one chunk as a worker that immediately dies.
	body, _ := json.Marshal(ClaimRequest{Version: srv.Scheduler().Version(), Node: "doomed"})
	resp, err := http.Post(client.BaseURL()+"/chunks/claim", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("claim = %d, want a lease while the batch is fresh", resp.StatusCode)
	}
	var lease ChunkLease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	final, err := client.Wait(ctx, states[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatal("re-issued chunk broke byte identity")
	}
	st := srv.Scheduler().Stats()
	if st.Fleet.Reissued == 0 {
		t.Fatal("abandoned lease was never re-issued")
	}
	// The dead claimant's lease is gone: a late result must bounce.
	body, _ = json.Marshal(ChunkResult{Lease: lease.Lease, Dist: nil, Error: ""})
	late, err := http.Post(client.BaseURL()+"/chunks/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer late.Body.Close()
	if late.StatusCode != http.StatusGone {
		t.Fatalf("late result from a dead claimant = %d, want 410 (double merge hazard)", late.StatusCode)
	}
}

// TestFleetWorkersEndToEnd runs a real 3-node fleet — coordinator plus two
// worker Servers with live claim loops — kills one worker mid-job, and
// requires byte identity with a bare single-node run plus evidence that
// remote claims actually happened.
func TestFleetWorkersEndToEnd(t *testing.T) {
	coord, client := newTestServer(t, Config{
		Version: "fleet-e2e", Role: RoleCoordinator,
		FleetChunk: 500, LeaseTTL: 500 * time.Millisecond, Parallel: 1, Workers: 1,
	})

	newFleetWorker := func() *Server {
		w, err := New(Config{
			Version: "fleet-e2e", Role: RoleWorker, Join: client.BaseURL(),
			Parallel: 2, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	w1 := newFleetWorker()
	defer w1.Close()
	w2 := newFleetWorker()

	req := JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 60000, Seed: 21}
	want := directBytes(t, req)
	states, err := client.Submit(context.Background(), []JobRequest{req})
	if err != nil {
		t.Fatal(err)
	}

	// Let the fleet get into the job, then kill one worker mid-run: its
	// in-flight leases must expire and re-issue, not wedge the job.
	time.Sleep(700 * time.Millisecond)
	w2.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	final, err := client.Wait(ctx, states[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatal("3-node fleet result differs from single-node bytes")
	}
	st := coord.Scheduler().Stats()
	if st.Fleet.RemoteClaims == 0 {
		t.Fatal("no chunks were ever claimed remotely — the fleet never fleeted")
	}
}

// TestFleetWorkerHeartbeatKeepsLongChunkAlive pins the lease-extension
// path: one chunk that takes several lease TTLs to compute must survive —
// the worker's heartbeats keep extending it, the chunk is never re-issued,
// and the result still matches single-node bytes.
func TestFleetWorkerHeartbeatKeepsLongChunkAlive(t *testing.T) {
	// Two chunks, each taking several TTLs to compute: the coordinator's
	// single local claimant takes one, the worker claims the other, and
	// only heartbeats keep the worker's lease alive across its long run.
	coord, client := newTestServer(t, Config{
		Version: "fleet-beat", Role: RoleCoordinator,
		FleetChunk: 50000, LeaseTTL: 200 * time.Millisecond, Parallel: 1, Workers: 1,
	})
	w, err := New(Config{
		Version: "fleet-beat", Role: RoleWorker, Join: client.BaseURL(),
		Parallel: 2, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	req := JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 100000, Seed: 55}
	want := directBytes(t, req)
	final := waitResult(t, client, req)
	if final.Status != StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatal("heartbeat-extended chunk broke byte identity")
	}
	st := coord.Scheduler().Stats()
	if st.Fleet.Reissued != 0 {
		t.Fatalf("%d chunks re-issued despite live heartbeats", st.Fleet.Reissued)
	}
	if st.Fleet.RemoteClaims == 0 {
		t.Fatal("the worker never claimed its chunk")
	}
	if claimed, _, _ := w.Worker().Counters(); claimed == 0 {
		t.Fatal("worker counters recorded no claims")
	}
}

// TestFleetChunkErrorFailsWholeJob pins the no-partial-batches rule: one
// chunk reporting an error fails the entire job with that message —
// partial distributions are never merged into a served result.
func TestFleetChunkErrorFailsWholeJob(t *testing.T) {
	srv, client := newTestServer(t, Config{
		Version: "fleet-cherr", Role: RoleCoordinator, FleetChunk: 300, Parallel: 1,
	})
	req := JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 60000, Seed: 91}
	states, err := client.Submit(context.Background(), []JobRequest{req})
	if err != nil {
		t.Fatal(err)
	}
	// Claim one chunk as a remote worker and report a failure for it.
	body, _ := json.Marshal(ClaimRequest{Version: srv.Scheduler().Version(), Node: "saboteur"})
	resp, err := http.Post(client.BaseURL()+"/chunks/claim", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("claim = %d", resp.StatusCode)
	}
	var lease ChunkLease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body, _ = json.Marshal(ChunkResult{Lease: lease.Lease, Error: "arena caught fire"})
	rr, err := http.Post(client.BaseURL()+"/chunks/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := client.Wait(ctx, states[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusFailed {
		t.Fatalf("job ended %s, want failed", final.Status)
	}
	if !strings.Contains(final.Error, "arena caught fire") {
		t.Fatalf("job error %q does not carry the chunk's message", final.Error)
	}
}

// TestWorkerStatsSurface pins the worker node's observability: /statz on a
// worker reports its role and its claim-loop counters.
func TestWorkerStatsSurface(t *testing.T) {
	_, coordClient := newTestServer(t, Config{
		Version: "fleet-wstats", Role: RoleCoordinator, FleetChunk: 200, Parallel: 1,
	})
	w, err := New(Config{Version: "fleet-wstats", Role: RoleWorker, Join: coordClient.BaseURL(), Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	wClient := NewClient(ts.URL)

	// Give the worker something to claim so its counters move.
	req := JobRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 1000, Seed: 61}
	final := waitResult(t, coordClient, req)
	if final.Status != StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := wClient.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Fleet.Role != RoleWorker {
			t.Fatalf("worker /statz role %q", st.Fleet.Role)
		}
		if st.Fleet.Claimed > 0 && st.Fleet.Done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker counters never moved: %+v", st.Fleet)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWorkerVersionMismatchBacksOff pins the mixed-build guard end to
// end: a worker built at a different code version must never receive a
// lease — its claims bounce with 409 and it counts errors instead of work.
func TestWorkerVersionMismatchBacksOff(t *testing.T) {
	_, coordClient := newTestServer(t, Config{
		Version: "build-A", Role: RoleCoordinator, FleetChunk: 100, Parallel: 1,
	})
	w, err := New(Config{Version: "build-B", Role: RoleWorker, Join: coordClient.BaseURL(), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	// Work exists, but the worker must not get any of it.
	final := waitResult(t, coordClient, JobRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 500, Seed: 41})
	if final.Status != StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		claimed, done, errs := w.Worker().Counters()
		if claimed != 0 || done != 0 {
			t.Fatalf("mismatched worker got work: claimed=%d done=%d", claimed, done)
		}
		if errs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("mismatched worker never recorded a version error")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMemCacheEvictionDropsJobRecord pins the eviction plumbing through
// the scheduler: when the LRU cache evicts a result's bytes, the job
// record under the same content address is dropped with it, and a
// resubmission of the evicted identity recomputes instead of replaying.
func TestMemCacheEvictionDropsJobRecord(t *testing.T) {
	srv, client := newTestServer(t, Config{CacheSize: 1})

	first := JobRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 60, Seed: 81}
	second := JobRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 60, Seed: 82}
	for _, req := range []JobRequest{first, second} {
		final := waitResult(t, client, req)
		if final.Status != StatusDone {
			t.Fatalf("job ended %s: %s", final.Status, final.Error)
		}
	}
	st := srv.Scheduler().Stats()
	if st.Cache.Entries != 1 {
		t.Fatalf("cache holds %d entries, want 1 (capacity)", st.Cache.Entries)
	}
	// The first identity was evicted: resubmitting runs fresh, not replay.
	fresh := st.Jobs.Fresh
	final := waitResult(t, client, first)
	if final.Status != StatusDone {
		t.Fatalf("resubmitted job ended %s: %s", final.Status, final.Error)
	}
	if got := srv.Scheduler().Stats().Jobs.Fresh; got != fresh+1 {
		t.Fatalf("fresh runs %d after resubmitting an evicted identity, want %d", got, fresh+1)
	}
}

// TestFleetCancelDistributedJob pins cancelation: a distributed job
// cancels promptly, its queued chunks die, and late chunk results bounce
// instead of resurrecting state.
func TestFleetCancelDistributedJob(t *testing.T) {
	_, client := newTestServer(t, Config{
		Version: "fleet-cancel", Role: RoleCoordinator, FleetChunk: 500, Parallel: 1,
	})
	req := JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 200000, Seed: 3}
	states, err := client.Submit(context.Background(), []JobRequest{req})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Cancel(context.Background(), states[0].ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := client.Wait(ctx, states[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCanceled {
		t.Fatalf("job ended %s, want canceled", final.Status)
	}
}

// TestWorkerRejectsJobSurface pins the worker role's HTTP posture: the
// job endpoints point at the coordinator instead of accepting work the
// node cannot own.
func TestWorkerRejectsJobSurface(t *testing.T) {
	_, coordClient := newTestServer(t, Config{Version: "fleet-posture", Role: RoleCoordinator})
	w, err := New(Config{Version: "fleet-posture", Role: RoleWorker, Join: coordClient.BaseURL(), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte(`{"jobs":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("worker /jobs = %d, want 421", resp.StatusCode)
	}

	// A worker without a coordinator URL must not construct at all.
	if _, err := New(Config{Role: RoleWorker}); err == nil {
		t.Fatal("worker without Join constructed")
	}
	// Unknown roles must not construct either.
	if _, err := New(Config{Role: "manager"}); err == nil {
		t.Fatal("unknown role constructed")
	}
}
