package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// waitCounters polls the worker's counters until cond is satisfied or the
// deadline passes.
func waitCounters(t *testing.T, w *Server, cond func(claimed, done, errs int64) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond(w.Worker().Counters()) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	c, d, e := w.Worker().Counters()
	t.Fatalf("worker counters never settled: claimed %d done %d errs %d", c, d, e)
}

// TestWorkerUnreachableCoordinatorCountsErrors pins the claim-loop
// transport-error branch: a worker joined to a dead address keeps polling
// on the retry back-off and surfaces every failed claim in its error
// counter instead of crashing or spinning.
func TestWorkerUnreachableCoordinatorCountsErrors(t *testing.T) {
	w, err := New(Config{Version: "fleet-dead", Role: RoleWorker,
		Join: "http://127.0.0.1:1", Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	waitCounters(t, w, func(claimed, done, errs int64) bool { return errs >= 1 })
	if claimed, done, _ := w.Worker().Counters(); claimed != 0 || done != 0 {
		t.Fatalf("work appeared from a dead coordinator: claimed %d done %d", claimed, done)
	}
}

// TestWorkerSurvivesBrokenCoordinatorReplies pins the claim decode guards:
// a coordinator that answers 500, then unparseable lease JSON, only ever
// moves the error counter — the worker never treats garbage as a lease.
func TestWorkerSurvivesBrokenCoordinatorReplies(t *testing.T) {
	var calls atomic.Int64
	coord := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/chunks/claim" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		if calls.Add(1) == 1 {
			http.Error(rw, "scheduler mid-restart", http.StatusInternalServerError)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		rw.Write([]byte(`{"lease": "not a number"`))
	}))
	defer coord.Close()

	w, err := New(Config{Version: "fleet-garbage", Role: RoleWorker,
		Join: coord.URL, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	waitCounters(t, w, func(claimed, done, errs int64) bool { return errs >= 2 })
	if claimed, done, _ := w.Worker().Counters(); claimed != 0 || done != 0 {
		t.Fatalf("garbage replies produced work: claimed %d done %d", claimed, done)
	}
}

// TestWorkerReportsUnknownScenario pins the lease-validation branch of
// runLease: a lease naming a scenario this build does not register is
// answered with a ChunkResult carrying an error, so the coordinator can
// fail the job instead of waiting out the lease.
func TestWorkerReportsUnknownScenario(t *testing.T) {
	leased := make(chan struct{}, 1)
	reported := make(chan ChunkResult, 1)
	coord := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/chunks/claim":
			select {
			case leased <- struct{}{}:
				rw.Header().Set("Content-Type", "application/json")
				json.NewEncoder(rw).Encode(ChunkLease{
					Lease:    7,
					Job:      JobRequest{Scenario: "no/such/scenario", Trials: 10},
					Start:    0,
					End:      10,
					TTLMilli: 5000,
				})
			default:
				rw.WriteHeader(http.StatusNoContent)
			}
		case "/chunks/result":
			var res ChunkResult
			if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
				t.Errorf("bad result body: %v", err)
			}
			select {
			case reported <- res:
			default:
			}
			rw.WriteHeader(http.StatusOK)
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
			rw.WriteHeader(http.StatusNotFound)
		}
	}))
	defer coord.Close()

	w, err := New(Config{Version: "fleet-noscn", Role: RoleWorker,
		Join: coord.URL, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	select {
	case res := <-reported:
		if res.Lease != 7 || res.Error == "" || res.Dist != nil {
			t.Fatalf("want an error result for lease 7, got %+v", res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never reported the bad lease")
	}
	waitCounters(t, w, func(claimed, done, errs int64) bool {
		return claimed == 1 && done == 0 && errs >= 1
	})
}

// TestWorkerGivesUpAfterRepeatedResultRejections pins report's retry
// exhaustion: a coordinator that persistently 500s the result post makes
// the worker stop after its bounded retries and count the loss, rather
// than retrying forever or claiming the chunk done.
func TestWorkerGivesUpAfterRepeatedResultRejections(t *testing.T) {
	leased := make(chan struct{}, 1)
	coord := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/chunks/claim":
			select {
			case leased <- struct{}{}:
				rw.Header().Set("Content-Type", "application/json")
				json.NewEncoder(rw).Encode(ChunkLease{
					Lease:    3,
					Job:      JobRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 4, Seed: 1},
					Start:    0,
					End:      4,
					TTLMilli: 60000,
				})
			default:
				rw.WriteHeader(http.StatusNoContent)
			}
		case "/chunks/result":
			http.Error(rw, "persistent store failure", http.StatusInternalServerError)
		case "/chunks/heartbeat":
			rw.WriteHeader(http.StatusOK)
		default:
			rw.WriteHeader(http.StatusNotFound)
		}
	}))
	defer coord.Close()

	w, err := New(Config{Version: "fleet-reject", Role: RoleWorker,
		Join: coord.URL, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	waitCounters(t, w, func(claimed, done, errs int64) bool {
		return claimed == 1 && done == 0 && errs >= 1
	})
}
