package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/scenario"
)

// newTestServer boots a daemon on an httptest listener with a single
// engine-run slot, so queueing and dedup behaviour is deterministic.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Parallel == 0 {
		cfg.Parallel = 1
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, NewClient(ts.URL)
}

// slowJob is big enough to stay in flight while the test races a duplicate
// submission against it (sized for the batched trial kernel, which runs
// tens of thousands of n=24 trials per second per worker).
var slowJob = JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 40000, Seed: 99}

// quickJob finishes in well under a second.
var quickJob = JobRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 120, Seed: 5}

func TestDedupIdenticalConcurrentJobs(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	ctx := context.Background()

	// Occupy the single engine slot so the jobs under test stay queued
	// for as long as this test needs.
	blocker := JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 200000, Seed: 1}
	first, err := client.Submit(ctx, []JobRequest{blocker})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}

	// Two identical jobs in one batch, then the same job again in a
	// second batch: all three must resolve to one content address and
	// one engine run.
	batch, err := client.Submit(ctx, []JobRequest{slowJob, slowJob})
	if err != nil {
		t.Fatalf("submit pair: %v", err)
	}
	again, err := client.Submit(ctx, []JobRequest{slowJob})
	if err != nil {
		t.Fatalf("submit again: %v", err)
	}
	if batch[0].ID != batch[1].ID || batch[0].ID != again[0].ID {
		t.Fatalf("identical jobs got distinct ids: %s %s %s", batch[0].ID, batch[1].ID, again[0].ID)
	}
	if batch[0].ID == first[0].ID {
		t.Fatal("distinct jobs share an id")
	}

	st := srv.Scheduler().Stats()
	if st.Jobs.Fresh != 2 {
		t.Fatalf("fresh engine runs = %d, want 2 (blocker + one shared run)", st.Jobs.Fresh)
	}
	if st.Cache.DedupHits != 2 {
		t.Fatalf("dedup hits = %d, want 2", st.Cache.DedupHits)
	}

	final, err := client.Wait(ctx, batch[0].ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.Status != StatusDone {
		t.Fatalf("job finished %s: %s", final.Status, final.Error)
	}
	if final.Deduped != 2 {
		t.Fatalf("final state records %d dedup joins, want 2", final.Deduped)
	}
}

func TestCacheReplayByteIdentity(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()

	states, err := client.Submit(ctx, []JobRequest{quickJob})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	first, err := client.Wait(ctx, states[0].ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if first.Status != StatusDone || len(first.Result) == 0 {
		t.Fatalf("first run finished %s with %d result bytes", first.Status, len(first.Result))
	}

	// Resubmit after completion: must be a cache replay with the exact
	// first-run bytes.
	replayStates, err := client.Submit(ctx, []JobRequest{quickJob})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	replay := replayStates[0]
	if replay.Status != StatusDone {
		t.Fatalf("replay status %s, want immediate done", replay.Status)
	}
	if !bytes.Equal(replay.Result, first.Result) {
		t.Fatalf("replay bytes differ:\n first: %s\nreplay: %s", first.Result, replay.Result)
	}

	// The cached bytes are an exact marshal of a direct registry run.
	sc, _ := scenario.Find(quickJob.Scenario)
	direct, err := sc.RunOpts(ctx, quickJob.Seed, scenario.Opts{N: quickJob.N, Trials: quickJob.Trials})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Result, want) {
		t.Fatalf("service bytes differ from direct run:\nservice: %s\n direct: %s", first.Result, want)
	}
}

func TestCancelMidFlightBatch(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	ctx := context.Background()

	// One running job holding the single slot, then one queued behind it
	// (submitted second, so it cannot win the slot).
	running := JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 200000, Seed: 3}
	queued := JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 200000, Seed: 4}
	states, err := client.Submit(ctx, []JobRequest{running})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitStatus(t, srv, states[0].ID, StatusRunning)
	queuedStates, err := client.Submit(ctx, []JobRequest{queued})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	states = append(states, queuedStates...)
	for _, st := range states {
		if err := client.Cancel(ctx, st.ID); err != nil {
			t.Fatalf("cancel %s: %v", st.ID, err)
		}
	}
	for _, st := range states {
		final, err := client.Wait(ctx, st.ID)
		if err != nil {
			t.Fatalf("wait %s: %v", st.ID, err)
		}
		if final.Status != StatusCanceled {
			t.Fatalf("job %s finished %s, want canceled", st.ID, final.Status)
		}
	}
	// Canceling a terminal job is a conflict, not a success.
	if err := client.Cancel(ctx, states[0].ID); err == nil {
		t.Fatal("second cancel succeeded, want conflict")
	}

	// The daemon still works after cancellations, and a resubmission of
	// a canceled identity reruns rather than replaying nothing.
	redo, err := client.Submit(ctx, []JobRequest{quickJob})
	if err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
	final, err := client.Wait(ctx, redo[0].ID)
	if err != nil {
		t.Fatalf("wait after cancel: %v", err)
	}
	if final.Status != StatusDone {
		t.Fatalf("post-cancel job finished %s: %s", final.Status, final.Error)
	}
	st := srv.Scheduler().Stats()
	if st.Jobs.Canceled != 2 {
		t.Fatalf("canceled = %d, want 2", st.Jobs.Canceled)
	}
}

func TestWatchStreamsProgress(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()

	job := JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 20000, Seed: 11}
	states, err := client.Submit(ctx, []JobRequest{job})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var lines []JobState
	final, err := client.Watch(ctx, states[0].ID, func(st JobState) { lines = append(lines, st) })
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if final.Status != StatusDone {
		t.Fatalf("watched job finished %s: %s", final.Status, final.Error)
	}
	if len(lines) < 2 {
		t.Fatalf("stream carried %d lines, want at least a progress line and the terminal line", len(lines))
	}
	lastDone := -1
	for _, st := range lines {
		if st.Progress == nil {
			continue
		}
		if st.Progress.Done < lastDone {
			t.Fatalf("progress went backwards: %d after %d", st.Progress.Done, lastDone)
		}
		lastDone = st.Progress.Done
		if st.Progress.Total != job.Trials {
			t.Fatalf("progress total %d, want %d", st.Progress.Total, job.Trials)
		}
		if st.Progress.MaxWin.Lo > st.Progress.MaxWin.Rate || st.Progress.MaxWin.Hi < st.Progress.MaxWin.Rate {
			t.Fatalf("Wilson interval [%f, %f] does not bracket rate %f",
				st.Progress.MaxWin.Lo, st.Progress.MaxWin.Hi, st.Progress.MaxWin.Rate)
		}
	}
	if lastDone != job.Trials {
		t.Fatalf("final progress covers %d trials, want %d", lastDone, job.Trials)
	}
}

func TestScenariosEndpointMatchesRegistry(t *testing.T) {
	_, client := newTestServer(t, Config{})
	descs, err := client.Scenarios(context.Background())
	if err != nil {
		t.Fatalf("scenarios: %v", err)
	}
	all := scenario.All()
	if len(descs) != len(all) {
		t.Fatalf("endpoint lists %d scenarios, registry has %d", len(descs), len(all))
	}
	for i, d := range descs {
		if d != all[i].Describe() {
			t.Fatalf("descriptor %d differs: %+v vs %+v", i, d, all[i].Describe())
		}
	}
}

func TestSubmitRejectsUnknownScenarioWhole(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	_, err := client.Submit(context.Background(), []JobRequest{quickJob, {Scenario: "no/such/thing", Seed: 1}})
	if err == nil {
		t.Fatal("batch with unknown scenario accepted")
	}
	if st := srv.Scheduler().Stats(); st.Jobs.Submitted != 0 {
		t.Fatalf("rejected batch still recorded %d submissions", st.Jobs.Submitted)
	}
}

func TestStatsHitRate(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	ctx := context.Background()

	// 1 fresh + 4 duplicates in one batch, then 5 replays after it
	// lands: 9 hits / 10 submissions.
	batch := make([]JobRequest, 5)
	for i := range batch {
		batch[i] = quickJob
	}
	states, err := client.Submit(ctx, batch)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := client.Wait(ctx, states[0].ID); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if _, err := client.Submit(ctx, batch); err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Jobs.Submitted != 10 || st.Jobs.Fresh != 1 {
		t.Fatalf("submitted=%d fresh=%d, want 10/1", st.Jobs.Submitted, st.Jobs.Fresh)
	}
	if st.Cache.Hits != 9 || st.Cache.HitRate != 0.9 {
		t.Fatalf("hits=%d rate=%f, want 9 at 0.9", st.Cache.Hits, st.Cache.HitRate)
	}
	if st.Workers.ArenasAllocated == 0 {
		t.Fatal("no arenas recorded as allocated after an engine run")
	}
	_ = srv
}

func TestSchedulerClosedRejectsSubmissions(t *testing.T) {
	srv, err := New(Config{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := srv.Scheduler().Submit([]JobRequest{quickJob}); err == nil {
		t.Fatal("closed scheduler accepted a batch")
	}
}

// TestShutdownDrainsActiveWatchStream pins the graceful-shutdown ordering:
// an open ?watch=1 stream on an in-flight job must not stall Shutdown for
// the full grace period — closing the scheduler first terminates the job,
// the stream drains, and Serve returns promptly and cleanly.
func TestShutdownDrainsActiveWatchStream(t *testing.T) {
	srv, err := New(Config{Addr: "127.0.0.1:0", Parallel: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, ln) }()

	client := NewClient("http://" + srv.Addr())
	long := JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 500000, Seed: 8}
	states, err := client.Submit(context.Background(), []JobRequest{long})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitStatus(t, srv, states[0].ID, StatusRunning)

	watchDone := make(chan JobState, 1)
	go func() {
		final, _ := client.Wait(context.Background(), states[0].ID)
		watchDone <- final
	}()
	// Give the watcher time to attach before pulling the plug.
	time.Sleep(200 * time.Millisecond)

	start := time.Now()
	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v, want clean shutdown", err)
		}
	case <-time.After(2 * shutdownGrace):
		t.Fatal("Serve did not return after context cancel")
	}
	if took := time.Since(start); took >= shutdownGrace {
		t.Fatalf("shutdown took %v — the watch stream stalled the drain past the %v grace", took, shutdownGrace)
	}
	if final := <-watchDone; final.Status == StatusRunning || final.Status == StatusQueued {
		t.Fatalf("watcher observed non-terminal final state %s", final.Status)
	}
}

// TestSubmitRejectsInvalidParamsWhole pins the whole-batch validation: a
// request whose resolved parameters cannot run (size below MinN, bad or
// over-bound trial counts) rejects the batch at submit time instead of
// half-running it.
func TestSubmitRejectsInvalidParamsWhole(t *testing.T) {
	srv, client := newTestServer(t, Config{MaxTrials: 500})
	ctx := context.Background()
	bad := []struct {
		name string
		req  JobRequest
	}{
		{"n below MinN", JobRequest{Scenario: "ring/a-lead/attack=rushing-equal", N: 4, Trials: 10, Seed: 1}},
		{"trials over bound", JobRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 501, Seed: 1}},
		{"negative trials", JobRequest{Scenario: "ring/basic-lead/fifo", N: 8, Trials: -5, Seed: 1}},
		{"negative n", JobRequest{Scenario: "ring/basic-lead/fifo", N: -8, Trials: 10, Seed: 1}},
	}
	for _, tc := range bad {
		if _, err := client.Submit(ctx, []JobRequest{quickJob, tc.req}); err == nil {
			t.Fatalf("%s: batch accepted", tc.name)
		}
	}
	if st := srv.Scheduler().Stats(); st.Jobs.Submitted != 0 {
		t.Fatalf("rejected batches still recorded %d submissions", st.Jobs.Submitted)
	}
}

// TestRetiredJobsAreBounded pins the resident-daemon memory bound: failed
// and canceled job records are dropped oldest-first once the retention cap
// (the cache capacity) is exceeded.
func TestRetiredJobsAreBounded(t *testing.T) {
	srv, client := newTestServer(t, Config{CacheSize: 2})
	ctx := context.Background()
	sched := srv.Scheduler()

	// Hold the single engine slot so the jobs under test stay queued and
	// cancel deterministically.
	blocker := JobRequest{Scenario: "ring/a-lead/fifo", N: 24, Trials: 500000, Seed: 77}
	blockerStates, err := client.Submit(ctx, []JobRequest{blocker})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	waitStatus(t, srv, blockerStates[0].ID, StatusRunning)

	var ids []string
	for seed := int64(0); seed < 3; seed++ {
		states, err := client.Submit(ctx, []JobRequest{{Scenario: "ring/basic-lead/fifo", N: 8, Trials: 50, Seed: seed}})
		if err != nil {
			t.Fatalf("submit seed %d: %v", seed, err)
		}
		id := states[0].ID
		if !sched.Cancel(id) {
			t.Fatalf("cancel seed %d", seed)
		}
		j, _ := sched.Job(id)
		<-j.Done()
		ids = append(ids, id)
	}
	// Cap 2: the first canceled record must be gone, the last two kept.
	// (Retirement runs just after the job's done channel closes, so poll.)
	evicted := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if _, ok := sched.Job(ids[0]); !ok {
			evicted = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !evicted {
		t.Fatal("oldest retired job still retained beyond the cap")
	}
	for _, id := range ids[1:] {
		j, ok := sched.Job(id)
		if !ok {
			t.Fatalf("job %s dropped while under the cap", id)
		}
		if st := j.State().Status; st != StatusCanceled {
			t.Fatalf("retained job has status %s", st)
		}
	}
	if !sched.Cancel(blockerStates[0].ID) {
		t.Fatal("cancel blocker")
	}
}

// waitStatus polls until the job reports the wanted status.
func waitStatus(t *testing.T, srv *Server, id string, want JobStatus) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := srv.Scheduler().Job(id)
		if ok && j.State().Status == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}
