package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/scenario"
)

// maxBatch bounds one POST /jobs submission; large experiment sweeps should
// arrive as several batches rather than one unbounded allocation.
const maxBatch = 10000

// watchPollInterval is how often a watch stream re-checks a job for
// progress between event wakeups.
const watchPollInterval = 100 * time.Millisecond

// BatchRequest is the POST /jobs payload.
type BatchRequest struct {
	Jobs []JobRequest `json:"jobs"`
}

// BatchResponse answers POST /jobs: one state per submitted job, in
// request order. Jobs resolved from the cache arrive already done, result
// included.
type BatchResponse struct {
	Jobs []JobState `json:"jobs"`
}

// errorResponse is the uniform error payload.
type errorResponse struct {
	Error string `json:"error"`
}

// routes assembles the daemon's HTTP surface. Workers expose only the
// operational endpoints: a worker owns no jobs, so the job surface points
// submitters at the coordinator instead of half-working. Coordinators
// additionally serve the chunk-lease exchange under /chunks/.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /scenarios", s.handleScenarios)
	mux.HandleFunc("GET /statz", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleStats)
	if s.cfg.Role == RoleWorker {
		reject := func(w http.ResponseWriter, _ *http.Request) {
			writeError(w, http.StatusMisdirectedRequest,
				"this node is a fleet worker; submit jobs to its coordinator at %s", s.cfg.Join)
		}
		mux.HandleFunc("/jobs", reject)
		mux.HandleFunc("/jobs/{id}", reject)
		mux.HandleFunc("/certify", reject)
		mux.HandleFunc("/certify/{id}", reject)
		return mux
	}
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /certify", s.handleCertify)
	mux.HandleFunc("GET /certify/{id}", s.handleCert)
	mux.HandleFunc("DELETE /certify/{id}", s.handleCancelCert)
	if s.cfg.Role == RoleCoordinator {
		mux.HandleFunc("POST /chunks/claim", s.handleChunkClaim)
		mux.HandleFunc("POST /chunks/result", s.handleChunkResult)
		mux.HandleFunc("POST /chunks/heartbeat", s.handleChunkHeartbeat)
	}
	if s.cfg.Profiling {
		// The daemon serves its own mux, never DefaultServeMux, so the
		// pprof surface exists only when this instance opted in.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes a JSON error payload.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// handleHealthz answers liveness probes.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "version": s.sched.Version()})
}

// handleScenarios serves the registry catalog.
func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	all := scenario.All()
	descs := make([]scenario.Descriptor, len(all))
	for i, sc := range all {
		descs[i] = sc.Describe()
	}
	writeJSON(w, http.StatusOK, descs)
}

// handleSubmit accepts a job batch. Jobs run on the scheduler's own
// lifetime, not the request's: a client that disconnects after submitting
// still gets its results computed (and cached) for the next asker.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch: %v", err)
		return
	}
	if len(batch.Jobs) > maxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d exceeds the %d-job limit", len(batch.Jobs), maxBatch)
		return
	}
	jobs, err := s.sched.Submit(batch.Jobs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := BatchResponse{Jobs: make([]JobState, len(jobs))}
	for i, j := range jobs {
		resp.Jobs[i] = j.State()
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// handleJob serves one job's state; with ?watch=1 it streams NDJSON
// progress lines — one JobState per change, ending with the terminal state
// (result included) — until the job finishes or the client goes away.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	serveWatchable(w, r, j.Done(), func() (any, bool) {
		st := j.State()
		return st, st.Status.Terminal()
	})
}

// serveWatchable serves one watchable resource: plain JSON state without
// ?watch=1, an NDJSON change stream with it. state returns the current wire
// state and whether it is terminal; done wakes the stream when it is.
func serveWatchable(w http.ResponseWriter, r *http.Request, done <-chan struct{}, state func() (any, bool)) {
	if watch := r.URL.Query().Get("watch"); watch != "1" && watch != "true" {
		st, _ := state()
		writeJSON(w, http.StatusOK, st)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)
	ticker := time.NewTicker(watchPollInterval)
	defer ticker.Stop()
	var last []byte
	for {
		st, terminal := state()
		line, err := json.Marshal(st)
		if err != nil {
			return
		}
		if string(line) != string(last) {
			last = line
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		}
		if terminal {
			return
		}
		select {
		case <-ticker.C:
		case <-done:
			// A closed channel is permanently ready: left in the select,
			// it would turn every later iteration into a busy spin (the
			// poll pace is the ticker's job). One wakeup is all the event
			// carries, so disable the case after delivering it.
			done = nil
		case <-r.Context().Done():
			return
		}
	}
}

// handleCancel cancels a queued or running job.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.sched.Cancel(id) {
		writeJSON(w, http.StatusOK, map[string]any{"canceled": true})
		return
	}
	if j, ok := s.sched.Job(id); ok {
		writeError(w, http.StatusConflict, "job is already %s", j.State().Status)
		return
	}
	writeError(w, http.StatusNotFound, "no such job")
}

// CertBatchRequest is the POST /certify payload.
type CertBatchRequest struct {
	Certs []CertRequest `json:"certs"`
}

// CertBatchResponse answers POST /certify: one state per submitted sweep,
// in request order. Sweeps resolved from the cache arrive already done,
// certificate included.
type CertBatchResponse struct {
	Certs []CertState `json:"certs"`
}

// handleCertify accepts a certification batch. Like trial jobs, sweeps run
// on the scheduler's lifetime, and identical requests share one
// computation whose cached certificate replays byte-for-byte.
func (s *Server) handleCertify(w http.ResponseWriter, r *http.Request) {
	var batch CertBatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch: %v", err)
		return
	}
	if len(batch.Certs) > maxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d exceeds the %d-job limit", len(batch.Certs), maxBatch)
		return
	}
	jobs, err := s.sched.SubmitCerts(batch.Certs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := CertBatchResponse{Certs: make([]CertState, len(jobs))}
	for i, j := range jobs {
		resp.Certs[i] = j.State()
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// handleCert serves one certification job's state; with ?watch=1 it streams
// NDJSON progress — one CertState per finished deviation candidate — ending
// with the terminal state, certificate included.
func (s *Server) handleCert(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Cert(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such certification job")
		return
	}
	serveWatchable(w, r, j.Done(), func() (any, bool) {
		st := j.State()
		return st, st.Status.Terminal()
	})
}

// handleCancelCert cancels a queued or running certification job.
func (s *Server) handleCancelCert(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.sched.CancelCert(id) {
		writeJSON(w, http.StatusOK, map[string]any{"canceled": true})
		return
	}
	if j, ok := s.sched.Cert(id); ok {
		writeError(w, http.StatusConflict, "certification job is already %s", j.State().Status)
		return
	}
	writeError(w, http.StatusNotFound, "no such certification job")
}

// handleChunkClaim leases one queued trial chunk to a fleet claimant: 200
// with the lease, 204 when nothing is queued, 409 when the claimant's code
// version differs from the coordinator's (shards from a different build
// must never fold into a job).
func (s *Server) handleChunkClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad claim: %v", err)
		return
	}
	if req.Version != s.sched.Version() {
		writeError(w, http.StatusConflict, "version mismatch: coordinator runs %s, claimant runs %s",
			s.sched.Version(), req.Version)
		return
	}
	lease := s.sched.fleet.claimRemote()
	if lease == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

// handleChunkResult folds a reported shard into its job, or 410 when the
// lease is gone (expired and re-issued, or the job was canceled) — the
// lease table is what guarantees each chunk merges exactly once.
func (s *Server) handleChunkResult(w http.ResponseWriter, r *http.Request) {
	var res ChunkResult
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	if err := dec.Decode(&res); err != nil {
		writeError(w, http.StatusBadRequest, "bad result: %v", err)
		return
	}
	if !s.sched.fleet.report(res.Lease, res.Dist, res.Error) {
		writeError(w, http.StatusGone, "lease %d is no longer held", res.Lease)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"accepted": true})
}

// handleChunkHeartbeat extends a live lease, or 410 when it is gone and
// the claimant should abandon the run.
func (s *Server) handleChunkHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb ChunkHeartbeat
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	if err := dec.Decode(&hb); err != nil {
		writeError(w, http.StatusBadRequest, "bad heartbeat: %v", err)
		return
	}
	if !s.sched.fleet.heartbeat(hb.Lease) {
		writeError(w, http.StatusGone, "lease %d is no longer held", hb.Lease)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"extended": true})
}

// handleStats serves the scheduler's operational counters, plus the claim
// loop's on a worker node.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sched.Stats()
	if s.worker != nil {
		st.Fleet.Claimed, st.Fleet.Done, st.Fleet.Errors = s.worker.Counters()
	}
	writeJSON(w, http.StatusOK, st)
}
