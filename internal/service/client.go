package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/scenario"
)

// Client is a typed HTTP client for a running daemon. The zero HTTP client
// is used unless replaced; all methods honor their context.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewClient(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), http: &http.Client{}}
}

// BaseURL returns the daemon URL this client talks to, normalized (no
// trailing slash). Useful for handing the same endpoint to a fleet worker's
// Join configuration.
func (c *Client) BaseURL() string { return c.base }

// get issues one GET and decodes the JSON body into out.
func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if err := checkStatus(resp); err != nil {
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// checkStatus turns a non-2xx response into an error carrying the server's
// message.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	var e errorResponse
	if b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16)); err == nil {
		if json.Unmarshal(b, &e) != nil || e.Error == "" {
			e.Error = strings.TrimSpace(string(b))
		}
	}
	return fmt.Errorf("service: %s: %s", resp.Status, e.Error)
}

// drainClose discards the rest of a response body so the connection can be
// reused, then closes it.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	_ = body.Close()
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	var out map[string]any
	return c.get(ctx, "/healthz", &out)
}

// Scenarios fetches the registry catalog.
func (c *Client) Scenarios(ctx context.Context) ([]scenario.Descriptor, error) {
	var out []scenario.Descriptor
	if err := c.get(ctx, "/scenarios", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats fetches the daemon's operational counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.get(ctx, "/statz", &out)
	return out, err
}

// Submit posts a job batch and returns the accepted states, in request
// order. Cached jobs come back already done, result included.
func (c *Client) Submit(ctx context.Context, reqs []JobRequest) ([]JobState, error) {
	body, err := json.Marshal(BatchRequest{Jobs: reqs})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Job fetches one job's current state.
func (c *Client) Job(ctx context.Context, id string) (JobState, error) {
	var out JobState
	err := c.get(ctx, "/jobs/"+id, &out)
	return out, err
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	return checkStatus(resp)
}

// watchStream follows one NDJSON watch endpoint, invoking fn (if non-nil)
// on every decoded line, and returns the last state seen. status extracts
// the lifecycle status so the shared loop can demand a terminal ending.
func watchStream[T any](ctx context.Context, c *Client, path, id string, fn func(T), status func(T) JobStatus) (T, error) {
	var last T
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path+"/"+id+"?watch=1", nil)
	if err != nil {
		return last, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return last, err
	}
	defer drainClose(resp.Body)
	if err := checkStatus(resp); err != nil {
		return last, err
	}
	scan := bufio.NewScanner(resp.Body)
	scan.Buffer(make([]byte, 0, 64*1024), 16<<20)
	seen := false
	for scan.Scan() {
		var st T
		if err := json.Unmarshal(scan.Bytes(), &st); err != nil {
			return last, fmt.Errorf("service: bad stream line: %w", err)
		}
		last, seen = st, true
		if fn != nil {
			fn(st)
		}
	}
	if err := scan.Err(); err != nil {
		return last, err
	}
	if !seen {
		return last, fmt.Errorf("service: empty watch stream for %s", id)
	}
	if !status(last).Terminal() {
		return last, fmt.Errorf("service: watch stream for %s ended at status %s", id, status(last))
	}
	return last, nil
}

// Watch follows a job's NDJSON progress stream, invoking fn (if non-nil)
// on every line, and returns the terminal state.
func (c *Client) Watch(ctx context.Context, id string, fn func(JobState)) (JobState, error) {
	return watchStream(ctx, c, "/jobs", id, fn, func(st JobState) JobStatus { return st.Status })
}

// Wait blocks until the job reaches a terminal state and returns it.
func (c *Client) Wait(ctx context.Context, id string) (JobState, error) {
	return c.Watch(ctx, id, nil)
}

// SubmitCerts posts a certification batch and returns the accepted states,
// in request order. Cached sweeps come back already done, certificate
// included.
func (c *Client) SubmitCerts(ctx context.Context, reqs []CertRequest) ([]CertState, error) {
	body, err := json.Marshal(CertBatchRequest{Certs: reqs})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/certify", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if err := checkStatus(resp); err != nil {
		return nil, err
	}
	var out CertBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Certs, nil
}

// Cert fetches one certification job's current state.
func (c *Client) Cert(ctx context.Context, id string) (CertState, error) {
	var out CertState
	err := c.get(ctx, "/certify/"+id, &out)
	return out, err
}

// CancelCert cancels a queued or running certification job.
func (c *Client) CancelCert(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/certify/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	return checkStatus(resp)
}

// WatchCert follows a certification job's NDJSON progress stream —
// one line per finished deviation candidate — invoking fn (if non-nil) on
// every line, and returns the terminal state.
func (c *Client) WatchCert(ctx context.Context, id string, fn func(CertState)) (CertState, error) {
	return watchStream(ctx, c, "/certify", id, fn, func(st CertState) JobStatus { return st.Status })
}

// WaitCert blocks until the certification job reaches a terminal state and
// returns it.
func (c *Client) WaitCert(ctx context.Context, id string) (CertState, error) {
	return c.WatchCert(ctx, id, nil)
}
