// Package service is the resident simulation daemon behind cmd/fleserve: a
// long-running HTTP front end over the scenario registry that batches,
// deduplicates, caches, and streams Monte-Carlo trial work instead of
// recomputing every request from scratch.
//
// Three pieces cooperate:
//
//   - The Scheduler accepts batches of {scenario, n, trials, seed} job
//     requests, content-addresses each one with scenario.JobKey,
//     deduplicates identical jobs in flight (two concurrent submissions of
//     the same key share one engine run), and multiplexes fresh work onto a
//     bounded set of engine runs whose workers draw recycled sim.Arena
//     workspaces from one shared engine.ArenaPool — arenas persist across
//     jobs, not just across the trials of one job.
//   - The Cache stores each finished result's exact wire bytes under its
//     job key. Deterministic seeding makes a cached distribution an exact
//     replay, not an approximation, so a hit returns byte-identical output
//     at zero simulation cost.
//   - The HTTP handlers expose GET /scenarios, POST /jobs (batch), GET
//     /jobs/{id} (with NDJSON progress streaming: trials completed plus the
//     running bias estimate under its Wilson interval), DELETE /jobs/{id},
//     /healthz, and a /statz (alias /metrics) stats endpoint reporting
//     cache hit rate, worker utilization, and trial throughput.
//
// The package is re-exported for library users as repro.Serve and
// repro.NewServiceClient.
package service
