package service

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"
)

// shutdownGrace bounds how long Serve waits for in-flight HTTP responses
// once its context is canceled.
const shutdownGrace = 5 * time.Second

// Server is one daemon instance: a scheduler plus its HTTP surface. Build
// it with New, then either mount Handler on an existing mux (tests use
// httptest.NewServer) or run it as a process with ListenAndServe.
type Server struct {
	cfg     Config
	sched   *Scheduler
	worker  *Worker // non-nil only for RoleWorker
	handler http.Handler

	mu   sync.Mutex
	addr string
}

// New builds a server from the configuration. The scheduler starts
// immediately; Close (or ListenAndServe's return) releases it. The only
// failure modes are an unusable Config.CacheDir and an invalid fleet
// configuration.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:8080"
	}
	sched, err := NewScheduler(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, sched: sched}
	if cfg.Role == RoleWorker {
		if cfg.Join == "" {
			sched.Close()
			return nil, errors.New("service: role worker requires Join (the coordinator URL)")
		}
		s.worker = newWorker(sched)
	}
	s.handler = s.routes()
	return s, nil
}

// Worker returns the node's claim loop when running as RoleWorker, nil
// otherwise.
func (s *Server) Worker() *Worker { return s.worker }

// Handler returns the daemon's HTTP surface, for embedding or tests.
func (s *Server) Handler() http.Handler { return s.handler }

// Scheduler exposes the underlying scheduler, for embedders that submit
// work in-process.
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Addr returns the bound listen address once Listen has succeeded (""
// before). With a ":0" configuration this is where the kernel actually put
// the daemon.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Listen binds the configured address and records the resolved one.
func (s *Server) Listen() (net.Listener, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.addr = ln.Addr().String()
	s.mu.Unlock()
	return ln, nil
}

// Serve runs the HTTP server on ln until ctx is canceled, then shuts down
// gracefully: close the scheduler first (canceling in-flight jobs, so
// active watch streams observe terminal states and drain), then stop
// accepting and wait up to shutdownGrace for responses to finish. It
// returns nil on a clean shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{Handler: s.handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		s.sched.Close()
		return err
	case <-ctx.Done():
	}
	// Scheduler first: a ?watch=1 stream on an in-flight job only ends
	// when the job does, so canceling jobs before Shutdown is what lets
	// Shutdown's drain actually complete instead of burning the grace.
	s.sched.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err := httpSrv.Shutdown(shutdownCtx)
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := s.Listen()
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Close releases the scheduler without having served; Serve callers do not
// need it.
func (s *Server) Close() { s.sched.Close() }
