package service

import (
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestServeWatchableNoBusySpinAfterDone is the regression test for the
// watch-stream spin: once the done channel closes, its select case is
// permanently ready, and before the fix the loop would re-poll state() in
// a hot spin for as long as the state stayed non-terminal. A job's own
// done/terminal transition is atomic, but a watcher composed over slower
// state (or a racing reader observing the two updates apart) must degrade
// to ticker pacing, not a CPU burn. The state below stays non-terminal for
// several ticker periods after done closes; the call count must stay in
// ticker territory.
func TestServeWatchableNoBusySpinAfterDone(t *testing.T) {
	done := make(chan struct{})
	close(done)
	deadline := time.Now().Add(350 * time.Millisecond)
	var calls atomic.Int64
	state := func() (any, bool) {
		n := calls.Add(1)
		return map[string]int64{"calls": n}, time.Now().After(deadline)
	}

	w := httptest.NewRecorder()
	r := httptest.NewRequest("GET", "/jobs/x?watch=1", nil)
	start := time.Now()
	serveWatchable(w, r, done, state)
	elapsed := time.Since(start)

	// The loop runs once up front, once for the done wakeup, then on the
	// 100ms ticker until the deadline: single digits. The pre-fix spin
	// reached this count in microseconds and kept going for the full
	// window — tens of thousands of calls.
	if n := calls.Load(); n > 50 {
		t.Fatalf("state() called %d times in %v: watch loop is busy-spinning after done", n, elapsed)
	}
	if w.Code != 200 {
		t.Fatalf("status = %d", w.Code)
	}
}
