package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/service/diskcache"
)

// JobRequest describes one unit of trial work: a registered scenario plus
// the overrides and seed that pin its result. Zero overrides keep the
// scenario's registered defaults, exactly as scenario.Opts does.
type JobRequest struct {
	// Scenario is the registered scenario name (see GET /scenarios).
	Scenario string `json:"scenario"`
	// N, Trials, K, and Target override the scenario defaults.
	N      int   `json:"n,omitempty"`
	Trials int   `json:"trials,omitempty"`
	K      int   `json:"k,omitempty"`
	Target int64 `json:"target,omitempty"`
	// Seed is the batch base seed; it is part of the job's identity.
	Seed int64 `json:"seed"`
}

// opts lowers the request onto scenario.Opts (identity-relevant fields
// only; the scheduler adds workers/arenas/progress at run time).
func (r JobRequest) opts() scenario.Opts {
	return scenario.Opts{N: r.N, Trials: r.Trials, K: r.K, Target: r.Target}
}

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle states. Queued and running jobs are in flight; done,
// failed, and canceled are terminal.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// JobState is the wire representation of a job at one instant: what GET
// /jobs/{id} returns and what each NDJSON stream line carries. Result holds
// the exact cached bytes of the outcome, so byte identity survives the
// round trip through the API.
type JobState struct {
	ID       string             `json:"id"`
	Scenario string             `json:"scenario"`
	Seed     int64              `json:"seed"`
	Status   JobStatus          `json:"status"`
	Cached   bool               `json:"cached,omitempty"`
	Deduped  int                `json:"deduped,omitempty"`
	Progress *scenario.Snapshot `json:"progress,omitempty"`
	Error    string             `json:"error,omitempty"`
	Result   json.RawMessage    `json:"result,omitempty"`
}

// Job is one scheduled unit of work. Its identity is its content address:
// two requests with the same JobKey are the same job.
type Job struct {
	// ID is the job's content address (scenario.JobKey).
	ID string
	// Req is the request that first created the job.
	Req JobRequest

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	status   JobStatus
	cached   bool
	deduped  int
	result   []byte
	errMsg   string
	snap     scenario.Snapshot
	hasSnap  bool
	lastDone int
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State captures the job's current wire state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobState{
		ID:       j.ID,
		Scenario: j.Req.Scenario,
		Seed:     j.Req.Seed,
		Status:   j.status,
		Cached:   j.cached,
		Deduped:  j.deduped,
		Error:    j.errMsg,
	}
	if j.hasSnap {
		snap := j.snap
		st.Progress = &snap
	}
	if j.result != nil {
		st.Result = json.RawMessage(j.result)
	}
	return st
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(status JobStatus, result []byte, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return
	}
	j.status = status
	j.result = result
	j.errMsg = errMsg
	close(j.done)
}

// Config tunes one daemon instance.
type Config struct {
	// Addr is the HTTP listen address; "" picks "127.0.0.1:8080".
	Addr string
	// Workers is the engine worker count per job run; 0 picks
	// runtime.NumCPU(). Results are identical for any value.
	Workers int
	// Parallel bounds the number of engine runs in flight at once; 0
	// picks 2. Additional jobs queue.
	Parallel int
	// CacheSize is the result cache capacity in entries; 0 picks
	// DefaultCacheSize. The same bound caps retained failed/canceled job
	// records, so a resident daemon's memory stays bounded either way.
	CacheSize int
	// CacheDir, when non-empty, backs the result cache with a crash-safe
	// disk tier rooted at this directory (see internal/service/diskcache).
	// The in-memory cache becomes a read-through layer over it: memory
	// misses fall through to disk, disk hits are promoted back into
	// memory, and every finished result is written through to both. The
	// directory may be shared by every node of a fleet and survives
	// restarts — a reopened daemon replays previously computed results
	// with zero engine runs.
	CacheDir string
	// MaxTrials bounds a single job's trial count; 0 picks
	// DefaultMaxTrials. A service must refuse a job that would occupy an
	// engine slot effectively forever.
	MaxTrials int
	// Version names the code revision in every job key; "" picks
	// BuildVersion(). Results computed by different versions never share
	// cache entries.
	Version string
	// Profiling mounts net/http/pprof under /debug/pprof/ so a running
	// daemon can be profiled in place (`go tool pprof .../debug/pprof/
	// profile`). Off by default: the endpoints expose stacks and timings
	// and belong behind an operator's explicit opt-in.
	Profiling bool
	// Role selects the node's fleet role: RoleSingle (default when empty)
	// runs jobs entirely in-process; RoleCoordinator decomposes trial
	// jobs into chunk leases served at /chunks/* and merges the shards in
	// chunk order, so results are byte-identical to a single node at any
	// fleet size; RoleWorker joins a coordinator and only claims chunks.
	Role string
	// Join is the coordinator base URL a RoleWorker node claims from
	// (e.g. "http://127.0.0.1:8080"). Required for workers, ignored
	// otherwise.
	Join string
	// FleetChunk is the coordinator's trials-per-chunk decomposition
	// granularity; 0 picks DefaultFleetChunk. Any value produces the same
	// job results (the merge is a counter sum); smaller chunks spread
	// better, larger ones amortize HTTP round trips.
	FleetChunk int
	// LeaseTTL is how long a claimed chunk stays leased without a
	// heartbeat before the coordinator re-issues it to another claimant;
	// 0 picks DefaultLeaseTTL.
	LeaseTTL time.Duration
}

// DefaultMaxTrials is the per-job trial ceiling used when Config leaves
// MaxTrials zero — generous next to any registered scenario default (≤ 400)
// while keeping one job from monopolizing an engine slot indefinitely.
const DefaultMaxTrials = 1_000_000

// BuildVersion returns the VCS revision baked into the running binary —
// with a "-dirty" suffix when the working tree had uncommitted changes, so
// two dirty builds of the same commit never share cache identities as if
// their physics were proven equal — or "dev" when no revision is recorded
// (go test, go run without VCS stamping). It is the default code-version
// component of every job key.
func BuildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	revision, modified := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if revision == "" {
		return "dev"
	}
	if modified {
		return revision + "-dirty"
	}
	return revision
}

// Scheduler accepts job batches, deduplicates them against in-flight and
// cached work, and multiplexes fresh jobs onto a bounded set of engine
// runs. One engine.ArenaPool is shared by every run it starts, so worker
// simulation workspaces persist for the scheduler's whole lifetime.
type Scheduler struct {
	cfg     Config
	version string
	cache   *Cache
	disk    *diskcache.Store // nil without Config.CacheDir
	fleet   *fleet           // nil unless Config.Role is RoleCoordinator
	arenas  *engine.ArenaPool

	baseCtx    context.Context
	baseCancel context.CancelFunc
	sem        chan struct{}
	wg         sync.WaitGroup

	mu           sync.Mutex
	jobs         map[string]*Job
	certs        map[string]*CertJob
	retired      []*Job     // failed/canceled records, oldest first, capped at retiredCap
	retiredCerts []*CertJob // same, for certification jobs

	retiredCap int

	start          time.Time
	certsSubmitted atomic.Int64
	submitted      atomic.Int64
	runsFresh      atomic.Int64 // jobs that required an engine run
	hitsCache      atomic.Int64 // jobs replayed from the cache or a finished twin
	hitsDedup      atomic.Int64 // jobs folded into an in-flight twin
	completed      atomic.Int64
	failed         atomic.Int64
	canceled       atomic.Int64
	trialsDone     atomic.Int64
	busy           atomic.Int64
	diskErrs       atomic.Int64
}

// NewScheduler returns a running scheduler. Close releases it. The only
// failure mode is an unusable Config.CacheDir.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 2
	}
	if cfg.MaxTrials <= 0 {
		cfg.MaxTrials = DefaultMaxTrials
	}
	version := cfg.Version
	if version == "" {
		version = BuildVersion()
	}
	retiredCap := cfg.CacheSize
	if retiredCap <= 0 {
		retiredCap = DefaultCacheSize
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:        cfg,
		version:    version,
		arenas:     engine.NewArenaPool(),
		baseCtx:    ctx,
		baseCancel: cancel,
		sem:        make(chan struct{}, cfg.Parallel),
		jobs:       make(map[string]*Job),
		certs:      make(map[string]*CertJob),
		retiredCap: retiredCap,
		start:      time.Now(),
	}
	s.cache = NewCache(cfg.CacheSize)
	if cfg.CacheDir != "" {
		disk, err := diskcache.Open(cfg.CacheDir)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("service: %w", err)
		}
		s.disk = disk
	}
	switch cfg.Role {
	case "", RoleSingle, RoleWorker:
		// A worker's claim loop lives at the Server layer (it speaks
		// HTTP); the scheduler itself runs nothing fleet-specific.
	case RoleCoordinator:
		s.fleet = newFleet(s)
	default:
		cancel()
		return nil, fmt.Errorf("service: unknown role %q (want %s, %s, or %s)",
			cfg.Role, RoleSingle, RoleCoordinator, RoleWorker)
	}
	return s, nil
}

// cachePut stores finished result bytes in both tiers and drops the job
// records of any entries the memory insert evicted, so the cache and the
// job maps cannot disagree about what is replayable. Trial jobs and
// certificates share one cache — their content addresses live in disjoint
// key spaces — so one sweep covers both maps. The eviction keys come back
// as a return value from Cache.Put and are applied here under s.mu: no
// scheduler state is ever touched under the cache's internal lock, so the
// two locks can never deadlock against each other.
func (s *Scheduler) cachePut(key string, b []byte) {
	s.mu.Lock()
	s.memPutLocked(key, b)
	s.mu.Unlock()
	if s.disk != nil {
		// The disk write happens outside s.mu — it is durable-tier
		// bookkeeping, not shared-map state, and fsync latency must not
		// stall submissions. A failed write only narrows future replay.
		if err := s.disk.Put(key, b); err != nil {
			s.diskErrs.Add(1)
		}
	}
}

// memPutLocked inserts into the in-memory tier and applies its eviction
// bookkeeping. Callers hold s.mu.
func (s *Scheduler) memPutLocked(key string, b []byte) {
	for _, old := range s.cache.Put(key, b) {
		delete(s.jobs, old)
		delete(s.certs, old)
	}
}

// cacheGetLocked is the read-through lookup: the in-memory tier first,
// then the disk tier, promoting disk hits back into memory so repeated
// replays stay off the filesystem. Callers hold s.mu. Disk read errors
// degrade to misses (and count in Stats.Disk.Errors): a flaky cache
// directory costs recomputation, never wrong bytes.
func (s *Scheduler) cacheGetLocked(key string) ([]byte, bool) {
	if b, ok := s.cache.Get(key); ok {
		return b, true
	}
	if s.disk == nil {
		return nil, false
	}
	b, ok, err := s.disk.Get(key)
	if err != nil {
		s.diskErrs.Add(1)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	s.memPutLocked(key, b)
	return b, true
}

// Version returns the code-version component of this scheduler's job keys.
func (s *Scheduler) Version() string { return s.version }

// Submit registers a batch of job requests and returns one *Job per
// request, in order. Identical requests — in this batch, in flight from
// earlier batches, or already cached — resolve to the same job. The batch
// is rejected whole if any request names an unknown scenario or resolves
// to invalid parameters (size below the scenario's minimum, non-positive
// or over-bound trials), so a typo cannot half-run a batch. Attack-plan
// feasibility (coalition sizes) is still a run-time concern: those
// failures surface as a failed job, not a rejected batch.
func (s *Scheduler) Submit(reqs []JobRequest) ([]*Job, error) {
	if len(reqs) == 0 {
		return nil, errors.New("service: empty batch")
	}
	// Validate every request before creating any job.
	scs := make([]scenario.Scenario, len(reqs))
	for i, req := range reqs {
		sc, ok := scenario.Find(req.Scenario)
		if !ok {
			return nil, fmt.Errorf("service: job %d: no registered scenario %q", i, req.Scenario)
		}
		if err := s.validate(sc, req); err != nil {
			return nil, fmt.Errorf("service: job %d: %w", i, err)
		}
		scs[i] = sc
	}
	out := make([]*Job, len(reqs))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.baseCtx.Err() != nil {
		return nil, errors.New("service: scheduler is closed")
	}
	for i, req := range reqs {
		s.submitted.Add(1)
		id := scs[i].JobKey(s.version, req.Seed, req.opts())
		if j, ok := s.jobs[id]; ok {
			st := func() JobStatus { j.mu.Lock(); defer j.mu.Unlock(); return j.status }()
			switch {
			case st == StatusDone:
				s.hitsCache.Add(1)
				out[i] = j
				continue
			case !st.Terminal():
				s.hitsDedup.Add(1)
				j.mu.Lock()
				j.deduped++
				j.mu.Unlock()
				out[i] = j
				continue
			}
			// Failed or canceled: fall through and schedule a fresh run
			// under the same identity.
		}
		if b, ok := s.cacheGetLocked(id); ok {
			j := s.newJob(id, req)
			j.cached = true
			j.status = StatusDone
			j.result = b
			close(j.done)
			j.cancel() // born terminal: release the context immediately
			s.jobs[id] = j
			s.hitsCache.Add(1)
			out[i] = j
			continue
		}
		j := s.newJob(id, req)
		s.jobs[id] = j
		s.runsFresh.Add(1)
		s.wg.Add(1)
		if s.fleet != nil && scs[i].Distributable() {
			go s.runFleet(j, scs[i])
		} else {
			go s.run(j, scs[i])
		}
		out[i] = j
	}
	return out, nil
}

// validate applies the submit-time checks that make batch rejection whole:
// the request's resolved parameters must be runnable at all and its trial
// count bounded, mirroring the size/trial validation RunOpts would fail
// with mid-batch.
func (s *Scheduler) validate(sc scenario.Scenario, req JobRequest) error {
	n, trials := sc.N, sc.Trials
	if req.N > 0 {
		n = req.N
	}
	if req.Trials > 0 {
		trials = req.Trials
	}
	switch {
	case req.N < 0 || req.Trials < 0:
		return fmt.Errorf("%s: negative override (n=%d trials=%d)", sc.Name, req.N, req.Trials)
	case n < sc.MinN:
		return fmt.Errorf("%s needs n ≥ %d, got %d", sc.Name, sc.MinN, n)
	case trials < 1:
		return fmt.Errorf("%s needs ≥ 1 trial, got %d", sc.Name, trials)
	case trials > s.cfg.MaxTrials:
		return fmt.Errorf("%s: %d trials exceeds the per-job bound %d", sc.Name, trials, s.cfg.MaxTrials)
	}
	return nil
}

// retire records a failed or canceled job in the bounded terminal list;
// beyond the cap the oldest retired record is dropped from the jobs map
// (unless a fresh run has already replaced it under the same identity).
// Done jobs are instead governed by the cache's eviction hook.
func (s *Scheduler) retire(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retired = append(s.retired, j)
	for len(s.retired) > s.retiredCap {
		old := s.retired[0]
		s.retired[0] = nil
		s.retired = s.retired[1:]
		if cur, ok := s.jobs[old.ID]; ok && cur == old {
			delete(s.jobs, old.ID)
		}
	}
}

// newJob builds a queued job wired to the scheduler's lifetime.
func (s *Scheduler) newJob(id string, req JobRequest) *Job {
	ctx, cancel := context.WithCancel(s.baseCtx)
	return &Job{
		ID:     id,
		Req:    req,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		status: StatusQueued,
	}
}

// run executes one job on the engine, respecting the Parallel bound.
func (s *Scheduler) run(j *Job, sc scenario.Scenario) {
	defer s.wg.Done()
	defer j.cancel() // release the context once the job is terminal
	select {
	case s.sem <- struct{}{}:
	case <-j.ctx.Done():
		// Canceled (or scheduler closed) while still queued.
		s.canceled.Add(1)
		j.finish(StatusCanceled, nil, context.Cause(j.ctx).Error())
		s.retire(j)
		return
	}
	defer func() { <-s.sem }()
	s.busy.Add(1)
	defer s.busy.Add(-1)

	j.mu.Lock()
	j.status = StatusRunning
	j.mu.Unlock()

	opts := j.Req.opts()
	opts.Workers = s.cfg.Workers
	opts.Arenas = s.arenas
	opts.Progress = func(snap scenario.Snapshot) {
		j.mu.Lock()
		j.snap, j.hasSnap = snap, true
		delta := snap.Done - j.lastDone
		j.lastDone = snap.Done
		j.mu.Unlock()
		s.trialsDone.Add(int64(delta))
	}
	out, err := sc.RunOpts(j.ctx, j.Req.Seed, opts)
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || j.ctx.Err() != nil):
		s.canceled.Add(1)
		j.finish(StatusCanceled, nil, err.Error())
		s.retire(j)
	case err != nil:
		s.failed.Add(1)
		j.finish(StatusFailed, nil, err.Error())
		s.retire(j)
	default:
		b, merr := json.Marshal(out)
		if merr != nil {
			s.failed.Add(1)
			j.finish(StatusFailed, nil, merr.Error())
			s.retire(j)
			return
		}
		s.cachePut(j.ID, b)
		s.completed.Add(1)
		j.finish(StatusDone, b, "")
	}
}

// Job returns the job with the given content address.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a queued or running job. It reports whether a cancelation
// was delivered; terminal and unknown jobs return false.
//
// Jobs are content-addressed, so a cancelation reaches every submitter of
// the identical request: deduped watchers observe status "canceled" and
// must resubmit (which schedules a fresh run) if they still want the
// result. That is deliberate — the job's identity, not its first
// submitter, owns the computation.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	terminal := j.status.Terminal()
	j.mu.Unlock()
	if terminal {
		return false
	}
	j.cancel()
	return true
}

// Close cancels every in-flight job and waits for their goroutines. The
// scheduler accepts no further submissions afterwards. The cancel happens
// under s.mu: Submit holds the lock from its closed-check through its last
// wg.Add, so Close can never start waiting on a counter a racing Submit is
// about to bump from zero.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.baseCancel()
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats is the daemon's operational snapshot, served by /statz.
type Stats struct {
	// Version is the job-key code version.
	Version string `json:"version"`
	// UptimeSeconds is the scheduler's age.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Scenarios is the registry size.
	Scenarios int `json:"scenarios"`
	// Jobs counts submissions by resolution; Certificates is the subset
	// that were certification sweeps.
	Jobs struct {
		Submitted    int64 `json:"submitted"`
		Certificates int64 `json:"certificates"`
		Fresh        int64 `json:"fresh"`
		Completed    int64 `json:"completed"`
		Failed       int64 `json:"failed"`
		Canceled     int64 `json:"canceled"`
		InFlight     int64 `json:"in_flight"`
	} `json:"jobs"`
	// Cache reports the job-level hit accounting: Hits counts
	// submissions resolved without an engine run (cache replays plus
	// in-flight dedup joins), Misses counts submissions that required
	// one. HitRate is Hits/(Hits+Misses).
	Cache struct {
		Hits         int64   `json:"hits"`
		DedupHits    int64   `json:"dedup_hits"`
		Misses       int64   `json:"misses"`
		HitRate      float64 `json:"hit_rate"`
		Entries      int     `json:"entries"`
		LookupHits   int64   `json:"lookup_hits"`
		LookupMisses int64   `json:"lookup_misses"`
	} `json:"cache"`
	// Disk reports the durable cache tier (zero value when no CacheDir is
	// configured). Hits/Misses count read-through probes that reached the
	// disk tier; Writes counts entries this process persisted; Errors
	// counts I/O failures that degraded to misses or dropped writes.
	Disk struct {
		Enabled bool  `json:"enabled"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Writes  int64 `json:"writes"`
		Errors  int64 `json:"errors"`
	} `json:"disk"`
	// Fleet reports the node's role and chunk-exchange counters. On a
	// coordinator, the chunk fields cover the lease lifecycle (queued and
	// leased are instantaneous, the rest cumulative); on a worker, the
	// claimed/done/errors counters cover its claim loop. A single node
	// reports only its role.
	Fleet struct {
		Role            string `json:"role"`
		ChunkTrials     int    `json:"chunk_trials,omitempty"`
		LeaseTTLMillis  int64  `json:"lease_ttl_ms,omitempty"`
		ChunksQueued    int    `json:"chunks_queued,omitempty"`
		ChunksLeased    int    `json:"chunks_leased,omitempty"`
		ChunksEnqueued  int64  `json:"chunks_enqueued,omitempty"`
		ChunksCompleted int64  `json:"chunks_completed,omitempty"`
		Reissued        int64  `json:"reissued,omitempty"`
		RemoteClaims    int64  `json:"remote_claims,omitempty"`
		Claimed         int64  `json:"claimed,omitempty"`
		Done            int64  `json:"done,omitempty"`
		Errors          int64  `json:"errors,omitempty"`
	} `json:"fleet"`
	// Workers reports engine-run concurrency and arena reuse.
	Workers struct {
		Parallel        int     `json:"parallel"`
		PerJob          int     `json:"per_job"`
		Busy            int64   `json:"busy"`
		Utilization     float64 `json:"utilization"`
		ArenasAllocated int     `json:"arenas_allocated"`
		ArenasIdle      int     `json:"arenas_idle"`
	} `json:"workers"`
	// Trials reports cumulative trial throughput.
	Trials struct {
		Completed int64   `json:"completed"`
		PerSecond float64 `json:"per_second"`
	} `json:"trials"`
}

// Stats captures the scheduler's current counters.
func (s *Scheduler) Stats() Stats {
	var st Stats
	st.Version = s.version
	st.UptimeSeconds = time.Since(s.start).Seconds()
	st.Scenarios = len(scenario.All())

	st.Jobs.Submitted = s.submitted.Load()
	st.Jobs.Certificates = s.certsSubmitted.Load()
	st.Jobs.Fresh = s.runsFresh.Load()
	st.Jobs.Completed = s.completed.Load()
	st.Jobs.Failed = s.failed.Load()
	st.Jobs.Canceled = s.canceled.Load()
	st.Jobs.InFlight = st.Jobs.Fresh - st.Jobs.Completed - st.Jobs.Failed - st.Jobs.Canceled

	cacheHits, dedupHits := s.hitsCache.Load(), s.hitsDedup.Load()
	st.Cache.Hits = cacheHits + dedupHits
	st.Cache.DedupHits = dedupHits
	st.Cache.Misses = st.Jobs.Fresh
	if total := st.Cache.Hits + st.Cache.Misses; total > 0 {
		st.Cache.HitRate = float64(st.Cache.Hits) / float64(total)
	}
	st.Cache.Entries = s.cache.Len()
	st.Cache.LookupHits, st.Cache.LookupMisses = s.cache.Lookups()

	if s.disk != nil {
		st.Disk.Enabled = true
		st.Disk.Hits, st.Disk.Misses, st.Disk.Writes = s.disk.Stats()
		st.Disk.Errors = s.diskErrs.Load()
	}

	st.Fleet.Role = s.cfg.Role
	if st.Fleet.Role == "" {
		st.Fleet.Role = RoleSingle
	}
	if f := s.fleet; f != nil {
		st.Fleet.ChunkTrials = f.chunkSize
		st.Fleet.LeaseTTLMillis = f.ttl.Milliseconds()
		f.mu.Lock()
		st.Fleet.ChunksQueued = len(f.queue)
		st.Fleet.ChunksLeased = len(f.leased)
		f.mu.Unlock()
		st.Fleet.ChunksEnqueued = f.enqueued.Load()
		st.Fleet.ChunksCompleted = f.completed.Load()
		st.Fleet.Reissued = f.reissued.Load()
		st.Fleet.RemoteClaims = f.remote.Load()
	}

	st.Workers.Parallel = s.cfg.Parallel
	st.Workers.PerJob = s.cfg.Workers
	st.Workers.Busy = s.busy.Load()
	st.Workers.Utilization = float64(st.Workers.Busy) / float64(s.cfg.Parallel)
	st.Workers.ArenasAllocated = s.arenas.Allocated()
	st.Workers.ArenasIdle = s.arenas.Idle()

	st.Trials.Completed = s.trialsDone.Load()
	if up := st.UptimeSeconds; up > 0 {
		st.Trials.PerSecond = float64(st.Trials.Completed) / up
	}
	return st
}
