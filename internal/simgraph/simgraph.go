// Package simgraph implements the graph-theoretic side of Section 7:
// undirected communication graphs, trees, the k-simulated-tree property
// (Definition 7.1), and the Claim F.5 constructive decomposition showing
// every connected graph is a ⌈n/2⌉-simulated tree.
//
// A graph G is a k-simulated tree when its vertices can be partitioned into
// connected parts of size at most k whose quotient graph is a tree. By
// Theorem 7.2 no such graph admits an ε-k-resilient fair leader election
// protocol for ε ≤ 1/n: a coalition occupying one part can simulate its
// tree node and, by the Lemma F.2/F.3 induction, assures an outcome. The
// attacks package's HalfRing realizes this concretely for the ring, which
// this package decomposes into a 2-node simulated tree.
package simgraph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over vertices 1..N.
type Graph struct {
	N   int
	adj [][]int // adjacency lists, 1-indexed
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) (*Graph, error) {
	if n < 1 {
		return nil, errors.New("simgraph: need n ≥ 1")
	}
	return &Graph{N: n, adj: make([][]int, n+1)}, nil
}

// AddEdge inserts the undirected edge {u, v}; duplicates are ignored.
func (g *Graph) AddEdge(u, v int) error {
	if u < 1 || u > g.N || v < 1 || v > g.N {
		return fmt.Errorf("simgraph: edge {%d,%d} out of range [1,%d]", u, v, g.N)
	}
	if u == v {
		return fmt.Errorf("simgraph: self-loop on %d", u)
	}
	for _, w := range g.adj[u] {
		if w == v {
			return nil
		}
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// Neighbors returns v's adjacency list (not a copy; callers must not
// modify it).
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Edges returns each undirected edge once, as ordered pairs u < v.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 1; u <= g.N; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool {
	if g.N == 0 {
		return true
	}
	return len(g.component(1, nil)) == g.N
}

// component returns the vertices reachable from start while staying inside
// allowed (nil = all vertices). Both the visited set and the allowed set are
// dense boolean slices indexed by vertex — the decomposition search calls
// this in its innermost loop, where map-backed sets dominated the profile.
func (g *Graph) component(start int, allowed []bool) []int {
	if allowed != nil && !allowed[start] {
		return nil
	}
	seen := make([]bool, g.N+1)
	seen[start] = true
	queue := make([]int, 1, g.N)
	queue[0] = start
	out := make([]int, 0, g.N)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		for _, w := range g.adj[v] {
			if seen[w] || (allowed != nil && !allowed[w]) {
				continue
			}
			seen[w] = true
			queue = append(queue, w)
		}
	}
	sort.Ints(out)
	return out
}

// IsTree reports whether the graph is a tree (connected, |E| = n−1).
func (g *Graph) IsTree() bool {
	return g.Connected() && len(g.Edges()) == g.N-1
}

// Ring returns the n-cycle.
func Ring(n int) (*Graph, error) {
	g, err := NewGraph(n)
	if err != nil {
		return nil, err
	}
	if n < 3 {
		return nil, errors.New("simgraph: ring needs n ≥ 3")
	}
	for i := 1; i <= n; i++ {
		if err := g.AddEdge(i, i%n+1); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Path returns the path graph 1–2–…–n.
func Path(n int) (*Graph, error) {
	g, err := NewGraph(n)
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Star returns the star with center 1 and n−1 leaves.
func Star(n int) (*Graph, error) {
	g, err := NewGraph(n)
	if err != nil {
		return nil, err
	}
	for i := 2; i <= n; i++ {
		if err := g.AddEdge(1, i); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Grid returns the rows×cols grid graph (vertices numbered row-major).
func Grid(rows, cols int) (*Graph, error) {
	g, err := NewGraph(rows * cols)
	if err != nil {
		return nil, err
	}
	id := func(r, c int) int { return r*cols + c + 1 }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddEdge(id(r, c), id(r, c+1)); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddEdge(id(r, c), id(r+1, c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Partition assigns every vertex to a part (Part[v] ∈ [1..Parts]).
type Partition struct {
	Part  []int // 1-indexed by vertex
	Parts int
}

// Members returns the vertices of the given part.
func (p Partition) Members(part int) []int {
	var out []int
	for v := 1; v < len(p.Part); v++ {
		if p.Part[v] == part {
			out = append(out, v)
		}
	}
	return out
}

// MaxPartSize returns the size of the largest part — the k of the
// k-simulated tree this partition witnesses.
func (p Partition) MaxPartSize() int {
	sizes := make([]int, p.Parts+1)
	maxSize := 0
	for v := 1; v < len(p.Part); v++ {
		sizes[p.Part[v]]++
		if sizes[p.Part[v]] > maxSize {
			maxSize = sizes[p.Part[v]]
		}
	}
	return maxSize
}

// VerifySimulatedTree checks Definition 7.1: every part is non-empty,
// connected in g, of size at most k, and the quotient graph over the parts
// is a tree. It returns the quotient tree on success.
func VerifySimulatedTree(g *Graph, p Partition, k int) (*Graph, error) {
	if len(p.Part) != g.N+1 {
		return nil, fmt.Errorf("simgraph: partition covers %d vertices, graph has %d", len(p.Part)-1, g.N)
	}
	// Group all members in one pass, then check each part against a
	// reusable allowed set (only the part's own entries are toggled).
	membersByPart := make([][]int, p.Parts+1)
	for v := 1; v < len(p.Part); v++ {
		part := p.Part[v]
		if part < 1 || part > p.Parts {
			return nil, fmt.Errorf("simgraph: vertex %d assigned to part %d outside [1,%d]", v, part, p.Parts)
		}
		membersByPart[part] = append(membersByPart[part], v)
	}
	allowed := make([]bool, g.N+1)
	for part := 1; part <= p.Parts; part++ {
		members := membersByPart[part]
		if len(members) == 0 {
			return nil, fmt.Errorf("simgraph: empty part %d", part)
		}
		if len(members) > k {
			return nil, fmt.Errorf("simgraph: part %d has %d > k=%d members", part, len(members), k)
		}
		for _, v := range members {
			allowed[v] = true
		}
		got := g.component(members[0], allowed)
		for _, v := range members {
			allowed[v] = false
		}
		if len(got) != len(members) {
			return nil, fmt.Errorf("simgraph: part %d is disconnected", part)
		}
	}
	quotient, err := NewGraph(p.Parts)
	if err != nil {
		return nil, err
	}
	for _, e := range g.Edges() {
		pu, pv := p.Part[e[0]], p.Part[e[1]]
		if pu != pv {
			if err := quotient.AddEdge(pu, pv); err != nil {
				return nil, err
			}
		}
	}
	if !quotient.IsTree() {
		return nil, errors.New("simgraph: quotient graph is not a tree")
	}
	return quotient, nil
}

// HalfSplit decomposes any connected graph into a ⌈n/2⌉-simulated tree
// following Claim F.5's construction: the first part is a connected set of
// ⌈n/2⌉ vertices (grown by BFS), and each following part is a maximal
// connected subset of what remains. Maximality forbids cycles in the
// quotient, which is therefore a tree.
func HalfSplit(g *Graph) (Partition, error) {
	if !g.Connected() {
		return Partition{}, errors.New("simgraph: graph is not connected")
	}
	part := make([]int, g.N+1)
	half := (g.N + 1) / 2

	// B1: BFS from vertex 1, first ⌈n/2⌉ vertices reached.
	taken := 0
	seen := make([]bool, g.N+1)
	seen[1] = true
	queue := []int{1}
	for len(queue) > 0 && taken < half {
		v := queue[0]
		queue = queue[1:]
		part[v] = 1
		taken++
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	parts := 1
	// Remaining parts: maximal connected subsets of the leftovers.
	allowed := make([]bool, g.N+1)
	for v := 1; v <= g.N; v++ {
		if part[v] != 0 {
			continue
		}
		parts++
		for w := 1; w <= g.N; w++ {
			allowed[w] = part[w] == 0
		}
		for _, w := range g.component(v, allowed) {
			part[w] = parts
		}
	}
	return Partition{Part: part, Parts: parts}, nil
}

// TreeSelfPartition returns the trivial 1-simulated-tree partition of a
// tree: every vertex its own part. Trees therefore admit no 1-resilient
// fair leader election at all (Theorem 7.2 with k = 1).
func TreeSelfPartition(g *Graph) (Partition, error) {
	if !g.IsTree() {
		return Partition{}, errors.New("simgraph: graph is not a tree")
	}
	part := make([]int, g.N+1)
	for v := 1; v <= g.N; v++ {
		part[v] = v
	}
	return Partition{Part: part, Parts: g.N}, nil
}

// MinSimulatedTreeK searches for the smallest k for which the graph is a
// k-simulated tree, by trying contractions greedily over BFS-grown parts of
// bounded size from every start vertex. It is a heuristic upper bound — the
// exact minimum is a hard combinatorial problem — but it is exact on trees
// (k = 1) and rings (k = ⌈n/2⌉), the two cases the paper discusses.
func MinSimulatedTreeK(g *Graph) (int, Partition, error) {
	if !g.Connected() {
		return 0, Partition{}, errors.New("simgraph: graph is not connected")
	}
	if g.IsTree() {
		p, err := TreeSelfPartition(g)
		return 1, p, err
	}
	sc := newSearchScratch(g.N)
	for k := 2; k <= (g.N+1)/2; k++ {
		for start := 1; start <= g.N; start++ {
			p := greedyPartition(g, k, start, sc)
			if verifyCandidate(g, p, k, sc) {
				// p aliases the scratch; copy it out before returning.
				part := make([]int, len(p.Part))
				copy(part, p.Part)
				return k, Partition{Part: part, Parts: p.Parts}, nil
			}
		}
	}
	p, err := HalfSplit(g)
	return (g.N + 1) / 2, p, err
}

// searchScratch holds the working sets of MinSimulatedTreeK's greedy
// search. The search tries O(n²) candidate partitions (every k and every
// start vertex) before it settles, so its inner loop allocates nothing:
// visited sets are generation-stamped instead of cleared, and every slice
// is reused at its grown capacity.
type searchScratch struct {
	part     []int
	seen     []int // visited iff seen[v] == gen
	gen      int
	queue    []int
	frontier []int
	allowed  []bool
	byPart   [][]int
	quot     *Graph
}

func newSearchScratch(n int) *searchScratch {
	return &searchScratch{
		part:    make([]int, n+1),
		seen:    make([]int, n+1),
		queue:   make([]int, 0, n),
		allowed: make([]bool, n+1),
	}
}

// bfs fills sc.queue with the vertices reachable from start in BFS order,
// restricted to allowed when non-nil, and returns it (valid until the next
// call).
func (sc *searchScratch) bfs(g *Graph, start int, allowed []bool) []int {
	sc.gen++
	seen, gen := sc.seen, sc.gen
	seen[start] = gen
	queue := append(sc.queue[:0], start)
	for qi := 0; qi < len(queue); qi++ {
		for _, w := range g.adj[queue[qi]] {
			if seen[w] != gen && (allowed == nil || allowed[w]) {
				seen[w] = gen
				queue = append(queue, w)
			}
		}
	}
	sc.queue = queue
	return queue
}

// greedyPartition grows parts of size ≤ k by BFS starting at start,
// exactly as Claim F.5's construction walks the graph. The returned
// partition aliases sc.part and is valid until the next call.
func greedyPartition(g *Graph, k, start int, sc *searchScratch) Partition {
	clear(sc.part)
	part := sc.part
	parts := 0
	// BFS order from start keeps parts contiguous.
	for _, v := range sc.bfs(g, start, nil) {
		if part[v] != 0 {
			continue
		}
		parts++
		// Grow a connected part of size ≤ k around v among unassigned.
		part[v] = parts
		count := 1
		frontier := append(sc.frontier[:0], v)
		for fi := 0; fi < len(frontier) && count < k; fi++ {
			for _, w := range g.adj[frontier[fi]] {
				if part[w] == 0 && count < k {
					part[w] = parts
					count++
					frontier = append(frontier, w)
				}
			}
		}
		sc.frontier = frontier
	}
	return Partition{Part: part, Parts: parts}
}

// verifyCandidate decides VerifySimulatedTree's accept/reject question on a
// search candidate without allocating: same part-range, non-emptiness, size,
// connectivity and quotient-tree checks, with every working set drawn from
// the scratch. Candidates that pass are re-checkable by the public verifier.
func verifyCandidate(g *Graph, p Partition, k int, sc *searchScratch) bool {
	if cap(sc.byPart) < p.Parts+1 {
		sc.byPart = make([][]int, p.Parts+1)
	}
	byPart := sc.byPart[:p.Parts+1]
	for i := range byPart {
		byPart[i] = byPart[i][:0]
	}
	for v := 1; v < len(p.Part); v++ {
		part := p.Part[v]
		if part < 1 || part > p.Parts {
			return false
		}
		byPart[part] = append(byPart[part], v)
	}
	sc.byPart = byPart
	for part := 1; part <= p.Parts; part++ {
		members := byPart[part]
		if len(members) == 0 || len(members) > k {
			return false
		}
		for _, v := range members {
			sc.allowed[v] = true
		}
		reached := len(sc.bfs(g, members[0], sc.allowed))
		for _, v := range members {
			sc.allowed[v] = false
		}
		if reached != len(members) {
			return false
		}
	}
	// The quotient over the parts must be a tree: exactly parts−1 distinct
	// inter-part edges, and connected.
	if sc.quot == nil || cap(sc.quot.adj) < p.Parts+1 {
		sc.quot = &Graph{adj: make([][]int, p.Parts+1)}
	}
	q := sc.quot
	q.N = p.Parts
	q.adj = q.adj[:cap(q.adj)][:p.Parts+1]
	for i := range q.adj {
		q.adj[i] = q.adj[i][:0]
	}
	edges := 0
	for u := 1; u <= g.N; u++ {
		for _, v := range g.adj[u] {
			if u >= v {
				continue
			}
			pu, pv := p.Part[u], p.Part[v]
			if pu == pv {
				continue
			}
			dup := false
			for _, w := range q.adj[pu] {
				if w == pv {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			q.adj[pu] = append(q.adj[pu], pv)
			q.adj[pv] = append(q.adj[pv], pu)
			edges++
		}
	}
	if edges != p.Parts-1 {
		return false
	}
	return len(sc.bfs(q, 1, nil)) == q.N
}
