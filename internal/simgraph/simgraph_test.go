package simgraph

import (
	"math/rand"
	"testing"
)

func TestRingIsTwoNodeSimulatedTree(t *testing.T) {
	// The paper's headline instance: a ring splits into two arcs of
	// ⌈n/2⌉, whose quotient is the 2-vertex tree — hence no FLE protocol
	// on a ring resists some ⌈n/2⌉ coalition (realized by attacks.HalfRing).
	for _, n := range []int{3, 4, 7, 16, 33} {
		g, err := Ring(n)
		if err != nil {
			t.Fatal(err)
		}
		p, err := HalfSplit(g)
		if err != nil {
			t.Fatal(err)
		}
		k := (n + 1) / 2
		quotient, err := VerifySimulatedTree(g, p, k)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if quotient.N != 2 {
			t.Errorf("n=%d: quotient has %d nodes, want 2", n, quotient.N)
		}
		if p.MaxPartSize() != k {
			t.Errorf("n=%d: max part %d, want ⌈n/2⌉=%d", n, p.MaxPartSize(), k)
		}
	}
}

func TestTreesAreOneSimulatedTrees(t *testing.T) {
	mk := []func(int) (*Graph, error){Path, Star}
	for _, makeGraph := range mk {
		g, err := makeGraph(9)
		if err != nil {
			t.Fatal(err)
		}
		p, err := TreeSelfPartition(g)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := VerifySimulatedTree(g, p, 1); err != nil {
			t.Errorf("tree self-partition rejected: %v", err)
		}
	}
	ring, _ := Ring(5)
	if _, err := TreeSelfPartition(ring); err == nil {
		t.Error("ring accepted as a tree")
	}
}

func TestClaimF5OnRandomConnectedGraphs(t *testing.T) {
	// Claim F.5: every connected graph is a ⌈n/2⌉-simulated tree, and
	// HalfSplit constructs the witness.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(24)
		g, err := NewGraph(n)
		if err != nil {
			t.Fatal(err)
		}
		// Random spanning tree first (guarantees connectivity)...
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			if err := g.AddEdge(perm[i]+1, perm[rng.Intn(i)]+1); err != nil {
				t.Fatal(err)
			}
		}
		// ...then random extra edges.
		for e := rng.Intn(2 * n); e > 0; e-- {
			u, v := 1+rng.Intn(n), 1+rng.Intn(n)
			if u != v {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		p, err := HalfSplit(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, err := VerifySimulatedTree(g, p, (n+1)/2); err != nil {
			t.Fatalf("trial %d (n=%d): Claim F.5 construction invalid: %v", trial, n, err)
		}
	}
}

func TestVerifyRejectsBadPartitions(t *testing.T) {
	g, _ := Ring(6)
	// Disconnected part: {1,4} are not adjacent on the 6-ring.
	bad := Partition{Part: []int{0, 1, 2, 2, 1, 2, 2}, Parts: 2}
	if _, err := VerifySimulatedTree(g, bad, 3); err == nil {
		t.Error("disconnected part accepted")
	}
	// Oversized part.
	p, _ := HalfSplit(g)
	if _, err := VerifySimulatedTree(g, p, 2); err == nil {
		t.Error("k smaller than the largest part accepted")
	}
	// Quotient with a cycle: three arcs of a ring.
	threeArcs := Partition{Part: []int{0, 1, 1, 2, 2, 3, 3}, Parts: 3}
	if _, err := VerifySimulatedTree(g, threeArcs, 2); err == nil {
		t.Error("cyclic quotient accepted as a tree")
	}
}

func TestMinSimulatedTreeK(t *testing.T) {
	path, _ := Path(8)
	k, _, err := MinSimulatedTreeK(path)
	if err != nil || k != 1 {
		t.Errorf("path: k=%d err=%v, want 1", k, err)
	}
	ring, _ := Ring(8)
	k, p, err := MinSimulatedTreeK(ring)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySimulatedTree(ring, p, k); err != nil {
		t.Fatalf("returned witness invalid: %v", err)
	}
	if k != 4 {
		t.Errorf("8-ring: k=%d, want ⌈n/2⌉=4", k)
	}
	grid, _ := Grid(3, 3)
	k, p, err = MinSimulatedTreeK(grid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySimulatedTree(grid, p, k); err != nil {
		t.Fatalf("grid witness invalid: %v", err)
	}
	if k > 5 { // ⌈9/2⌉ = 5 is the Claim F.5 fallback
		t.Errorf("3×3 grid: k=%d exceeds ⌈n/2⌉", k)
	}
	t.Logf("3×3 grid simulated-tree k ≤ %d (Figure 2 analogue)", k)
}

func TestGraphBasics(t *testing.T) {
	g, err := NewGraph(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil { // duplicate ignored
		t.Fatal(err)
	}
	if got := len(g.Edges()); got != 1 {
		t.Errorf("%d edges after duplicate add, want 1", got)
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 2); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestGridConstruction(t *testing.T) {
	g, err := Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 12 {
		t.Fatalf("grid has %d vertices", g.N)
	}
	// 3×4 grid: 3·3 horizontal + 2·4 vertical = 17 edges.
	if got := len(g.Edges()); got != 17 {
		t.Errorf("grid has %d edges, want 17", got)
	}
	if !g.Connected() {
		t.Error("grid not connected")
	}
}
