// Package fullnet implements fair leader election on an asynchronous fully
// connected network via Shamir secret sharing — the paper's Section 1.1
// reference scenario, where the straightforward construction is resilient to
// coalitions of size k = ⌈n/2⌉−1 and provably no further.
//
// Protocol. Every processor draws a secret d_i ∈ [n], splits it with
// threshold t = ⌈n/2⌉ and sends share x to processor x. A processor reveals
// the shares it holds (one per owner, broadcast to everyone) only once it
// has received a share from every owner — so every owner is committed to a
// unique reconstructible secret before anyone's reveal discloses anything.
// When all n² reveals are in, each processor checks every owner's n shares
// lie on one degree-(t−1) polynomial (cheater detection), reconstructs,
// verifies its own secret survived, and elects leader Σd_i mod n + 1.
//
// Resilience shape. A coalition of k < t processors holds fewer than t
// shares of any honest secret when it must commit its own, so the election
// stays uniform. At k ≥ t the coalition pools its phase-1 shares, privately
// reconstructs every honest secret before distributing the last member's
// shares, and picks that member's secret to force any target — matching the
// paper's impossibility threshold of ⌈n/2⌉ exactly (Theorem 7.2: a complete
// graph is a 2-node simulated tree with parts of size ⌈n/2⌉).
package fullnet

import (
	"errors"
	"fmt"

	"repro/internal/ring"
	"repro/internal/shamir"
	"repro/internal/sim"
)

// Message type tags, packed into int64 payloads as
// [type:2][owner:12][value:31].
const (
	msgShare  int64 = 1 // phase 1: owner → holder (holder's x = recipient)
	msgReveal int64 = 2 // phase 2: holder broadcasts its share of owner
	msgRelay  int64 = 3 // coalition-internal: drone forwards a held share
)

func pack(kind, owner, value int64) int64 {
	return kind | owner<<2 | value<<14
}

func unpack(m int64) (kind, owner, value int64) {
	return m & 3, (m >> 2) & 0xfff, m >> 14
}

// Election configures fair leader election on the complete graph K_n.
type Election struct {
	n     int
	t     int
	edges []sim.Edge // the n·(n−1) directed links of K_n, built once
}

// New builds an election for n processors; threshold 0 picks ⌈n/2⌉.
func New(n, threshold int) (*Election, error) {
	if n < 3 {
		return nil, fmt.Errorf("fullnet: need n ≥ 3, got %d", n)
	}
	if n > 0xfff {
		return nil, fmt.Errorf("fullnet: n=%d exceeds the payload owner field", n)
	}
	if threshold == 0 {
		threshold = (n + 1) / 2
	}
	if threshold < 2 || threshold > n {
		return nil, fmt.Errorf("fullnet: threshold %d out of range [2,%d]", threshold, n)
	}
	// The complete-graph edge set is immutable and read-only during
	// execution, so one copy serves every run and every trial worker.
	edges := make([]sim.Edge, 0, n*(n-1))
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if i != j {
				edges = append(edges, sim.Edge{From: sim.ProcID(i), To: sim.ProcID(j)})
			}
		}
	}
	return &Election{n: n, t: threshold, edges: edges}, nil
}

// Threshold returns the reconstruction threshold t.
func (e *Election) Threshold() int { return e.t }

// Run executes one honest election.
func (e *Election) Run(seed int64, sched sim.Scheduler) (sim.Result, error) {
	return e.RunArena(seed, sched, nil)
}

// RunArena is Run on a recycled per-worker simulation arena (nil falls back
// to fresh allocations with an identical result).
func (e *Election) RunArena(seed int64, sched sim.Scheduler, arena *sim.Arena) (sim.Result, error) {
	strategies := arena.Strategies(e.n)
	for i := 1; i <= e.n; i++ {
		strategies[i-1] = &participant{n: e.n, t: e.t, id: i}
	}
	return e.execute(strategies, seed, sched, arena)
}

// RunAttack executes an election with a coalition of size k (occupying the
// last k positions) trying to force target. Planning fails for k below the
// threshold: the coalition cannot reconstruct any honest secret before its
// last member commits, which is the resilience certificate.
func (e *Election) RunAttack(k int, target int64, seed int64, sched sim.Scheduler) (sim.Result, error) {
	return e.RunAttackArena(k, target, seed, sched, nil)
}

// RunAttackArena is RunAttack on a recycled per-worker simulation arena
// (nil falls back to fresh allocations with an identical result).
func (e *Election) RunAttackArena(k int, target int64, seed int64, sched sim.Scheduler, arena *sim.Arena) (sim.Result, error) {
	if target < 1 || target > int64(e.n) {
		return sim.Result{}, fmt.Errorf("fullnet: target %d out of range [1,%d]", target, e.n)
	}
	if k < e.t {
		return sim.Result{}, fmt.Errorf(
			"fullnet: coalition of %d holds fewer than t=%d shares per honest secret; early reconstruction impossible (resilient regime)",
			k, e.t)
	}
	if k >= e.n {
		return sim.Result{}, errors.New("fullnet: coalition covers the whole network")
	}
	closer := e.n // the last member commits last
	strategies := arena.Strategies(e.n)
	for i := 1; i <= e.n-k; i++ {
		strategies[i-1] = &participant{n: e.n, t: e.t, id: i}
	}
	for i := e.n - k + 1; i <= e.n; i++ {
		if i == closer {
			strategies[i-1] = &closerAdversary{
				participant: participant{n: e.n, t: e.t, id: i},
				honestCount: e.n - k,
				targetSum:   ring.SumForLeader(target, e.n),
			}
		} else {
			strategies[i-1] = &droneAdversary{
				participant: participant{n: e.n, t: e.t, id: i},
				closer:      sim.ProcID(closer),
			}
		}
	}
	return e.execute(strategies, seed, sched, arena)
}

// Runner is a reusable trial runner: the participant (and coalition)
// strategy objects are built and validated once and fully re-initialized in
// place by every run — reset recycles the O(n²) share/reveal buffers — so a
// chunked trial batch constructs nothing per trial. Each Runner serves one
// goroutine; runs on it are bit-identical to RunArena/RunAttackArena calls
// with the same seeds.
type Runner struct {
	e          *Election
	strategies []sim.Strategy
}

// Runner returns a reusable runner for honest elections.
func (e *Election) Runner() *Runner {
	strategies := make([]sim.Strategy, e.n)
	for i := 1; i <= e.n; i++ {
		strategies[i-1] = &participant{n: e.n, t: e.t, id: i}
	}
	return &Runner{e: e, strategies: strategies}
}

// AttackRunner returns a reusable runner for coalition elections, validating
// the configuration once with RunAttackArena's exact checks and errors.
func (e *Election) AttackRunner(k int, target int64) (*Runner, error) {
	if target < 1 || target > int64(e.n) {
		return nil, fmt.Errorf("fullnet: target %d out of range [1,%d]", target, e.n)
	}
	if k < e.t {
		return nil, fmt.Errorf(
			"fullnet: coalition of %d holds fewer than t=%d shares per honest secret; early reconstruction impossible (resilient regime)",
			k, e.t)
	}
	if k >= e.n {
		return nil, errors.New("fullnet: coalition covers the whole network")
	}
	closer := e.n
	strategies := make([]sim.Strategy, e.n)
	for i := 1; i <= e.n-k; i++ {
		strategies[i-1] = &participant{n: e.n, t: e.t, id: i}
	}
	for i := e.n - k + 1; i <= e.n; i++ {
		if i == closer {
			strategies[i-1] = &closerAdversary{
				participant: participant{n: e.n, t: e.t, id: i},
				honestCount: e.n - k,
				targetSum:   ring.SumForLeader(target, e.n),
			}
		} else {
			strategies[i-1] = &droneAdversary{
				participant: participant{n: e.n, t: e.t, id: i},
				closer:      sim.ProcID(closer),
			}
		}
	}
	return &Runner{e: e, strategies: strategies}, nil
}

// Run executes one election on the runner's strategy vector.
func (r *Runner) Run(seed int64, sched sim.Scheduler, arena *sim.Arena) (sim.Result, error) {
	return r.e.execute(r.strategies, seed, sched, arena)
}

func (e *Election) execute(strategies []sim.Strategy, seed int64, sched sim.Scheduler, arena *sim.Arena) (sim.Result, error) {
	return arena.Run(sim.Config{
		Strategies: strategies,
		Edges:      e.edges,
		Seed:       seed,
		Scheduler:  sched,
		StepLimit:  8*e.n*e.n*e.n + 4096,
	})
}

// participant is the honest strategy.
type participant struct {
	n, t, id int

	secret    int64
	myShares  []int64 // by owner: the share this processor holds
	haveShare []bool
	shareCnt  int
	revealed  bool
	reveals   [][]int64 // [owner][holder]
	revealCnt int
	done      bool
}

var _ sim.Strategy = (*participant)(nil)

// reset re-establishes the pre-run state, recycling the O(n²) share and
// reveal buffers when they are already the right shape — the allocation
// that used to dominate a trial's cost. A reset participant is
// indistinguishable from a freshly constructed one, which is what lets
// chunked trial batches (Runner) reuse one strategy vector across trials.
func (p *participant) reset() {
	if len(p.myShares) != p.n+1 {
		p.myShares = make([]int64, p.n+1)
		p.haveShare = make([]bool, p.n+1)
		p.reveals = make([][]int64, p.n+1)
		for o := 1; o <= p.n; o++ {
			p.reveals[o] = make([]int64, p.n+1)
		}
	} else {
		clear(p.myShares)
		clear(p.haveShare)
	}
	for o := 1; o <= p.n; o++ {
		row := p.reveals[o]
		for h := range row {
			row[h] = -1
		}
	}
	p.secret = 0
	p.shareCnt, p.revealed = 0, false
	p.revealCnt, p.done = 0, false
}

func (p *participant) Init(ctx *sim.Context) {
	p.reset()
	p.secret = ctx.Rand().Int63n(int64(p.n))
	p.distribute(ctx, p.secret)
}

// distribute splits and sends the secret's shares (own share kept locally).
func (p *participant) distribute(ctx *sim.Context, secret int64) {
	shares, err := shamir.Split(secret, p.t, p.n, ctx.Rand())
	if err != nil {
		ctx.Abort()
		return
	}
	for _, s := range shares {
		if int(s.X) == p.id {
			p.acceptShare(ctx, int64(p.id), s.Value)
			continue
		}
		ctx.SendTo(sim.ProcID(s.X), pack(msgShare, int64(p.id), s.Value))
	}
}

func (p *participant) acceptShare(ctx *sim.Context, owner, value int64) {
	if owner < 1 || owner > int64(p.n) || value < 0 || value >= shamir.P {
		ctx.Abort()
		return
	}
	if p.haveShare[owner] {
		ctx.Abort() // duplicate distribution is a visible deviation
		return
	}
	p.haveShare[owner] = true
	p.myShares[owner] = value
	p.shareCnt++
	if p.shareCnt == p.n && !p.revealed {
		p.revealed = true
		// Every owner is now committed; disclose our row.
		for o := 1; o <= p.n; o++ {
			p.acceptReveal(ctx, o, p.id, p.myShares[int64(o)])
			for dst := 1; dst <= p.n; dst++ {
				if dst != p.id {
					ctx.SendTo(sim.ProcID(dst), pack(msgReveal, int64(o), p.myShares[o]))
				}
			}
		}
	}
}

func (p *participant) acceptReveal(ctx *sim.Context, owner, holder int, value int64) {
	if owner < 1 || owner > p.n || value < 0 || value >= shamir.P {
		ctx.Abort()
		return
	}
	if p.reveals[owner][holder] >= 0 {
		ctx.Abort() // duplicate reveal
		return
	}
	p.reveals[owner][holder] = value
	p.revealCnt++
	if p.revealCnt == p.n*p.n {
		p.finish(ctx)
	}
}

func (p *participant) finish(ctx *sim.Context) {
	if p.done {
		return
	}
	p.done = true
	var sum int64
	for o := 1; o <= p.n; o++ {
		shares := make([]shamir.Share, p.n)
		for h := 1; h <= p.n; h++ {
			shares[h-1] = shamir.Share{X: int64(h), Value: p.reveals[o][h]}
		}
		ok, err := shamir.Consistent(shares, p.t)
		if err != nil || !ok {
			ctx.Abort() // owner o distributed an invalid sharing
			return
		}
		secret, err := shamir.Reconstruct(shares[:p.t])
		if err != nil {
			ctx.Abort()
			return
		}
		if o == p.id && secret != p.secret {
			ctx.Abort() // our own secret was corrupted in flight
			return
		}
		sum = ring.Mod(sum+secret, p.n)
	}
	ctx.Terminate(ring.LeaderFromSum(sum, p.n))
}

func (p *participant) Receive(ctx *sim.Context, from sim.ProcID, m int64) {
	kind, owner, value := unpack(m)
	switch kind {
	case msgShare:
		if owner != int64(from) {
			ctx.Abort() // shares must come from their owner
			return
		}
		p.acceptShare(ctx, owner, value)
	case msgReveal:
		p.acceptReveal(ctx, int(owner), int(from), value)
	default:
		ctx.Abort() // unknown message type
	}
}
