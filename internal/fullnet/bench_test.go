package fullnet

import "testing"

func BenchmarkHonestN32(b *testing.B) {
	e, _ := New(32, 0)
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(int64(i), nil); err != nil {
			b.Fatal(err)
		}
	}
}
