package fullnet

import (
	"repro/internal/ring"
	"repro/internal/shamir"
	"repro/internal/sim"
)

// droneAdversary is an ordinary coalition member: it participates honestly
// with the fixed secret 0 (known to the whole coalition), and forwards every
// phase-1 share it receives from an honest owner to the closer, giving the
// coalition t-of-n visibility into every honest secret.
type droneAdversary struct {
	participant
	closer sim.ProcID
}

var _ sim.Strategy = (*droneAdversary)(nil)

func (d *droneAdversary) Init(ctx *sim.Context) {
	d.reset()
	d.secret = 0 // coalition constant: the closer accounts for it
	d.distribute(ctx, d.secret)
}

func (d *droneAdversary) Receive(ctx *sim.Context, from sim.ProcID, m int64) {
	kind, owner, value := unpack(m)
	if kind == msgShare && owner == int64(from) {
		// Pool the coalition's view at the closer before processing.
		ctx.SendTo(d.closer, pack(msgRelay, owner, value))
	}
	d.participant.Receive(ctx, from, m)
}

// closerAdversary is the coalition member that commits last. It withholds
// its phase-1 distribution until the pooled relays and its own incoming
// shares let it reconstruct every honest secret, then picks its own secret
// so that the total sum elects the target, and behaves honestly afterwards.
// Honest processors cannot start revealing until the closer distributes, so
// nothing the adversary needs is gated on its own commitment.
type closerAdversary struct {
	participant
	honestCount int
	targetSum   int64

	pool        map[int64]map[int64]int64 // owner → holder → share value
	distributed bool
}

var _ sim.Strategy = (*closerAdversary)(nil)

func (c *closerAdversary) Init(ctx *sim.Context) {
	c.reset()
	c.distributed = false
	if c.pool == nil {
		c.pool = make(map[int64]map[int64]int64, c.honestCount)
	} else {
		// Recycle the pooled-share maps across batched trials.
		for _, holders := range c.pool {
			clear(holders)
		}
	}
	// Do NOT distribute yet: commitment is deferred until we know the
	// honest sum. (Our own-secret validation in finish() is skipped by
	// setting the secret after distribution.)
}

func (c *closerAdversary) Receive(ctx *sim.Context, from sim.ProcID, m int64) {
	kind, owner, value := unpack(m)
	switch kind {
	case msgRelay:
		c.record(owner, int64(from), value)
	case msgShare:
		if owner == int64(from) {
			c.record(owner, int64(c.id), value)
		}
		c.participant.Receive(ctx, from, m)
		return
	default:
		c.participant.Receive(ctx, from, m)
		return
	}
	c.tryCommit(ctx)
}

func (c *closerAdversary) record(owner, holder, value int64) {
	if owner <= int64(c.honestCount) { // honest owners occupy 1..honestCount
		if c.pool[owner] == nil {
			c.pool[owner] = make(map[int64]int64, c.t)
		}
		c.pool[owner][holder] = value
	}
}

// tryCommit reconstructs every honest secret once the pool is deep enough,
// then commits the steering secret.
func (c *closerAdversary) tryCommit(ctx *sim.Context) {
	if c.distributed {
		return
	}
	for o := 1; o <= c.honestCount; o++ {
		if len(c.pool[int64(o)]) < c.t {
			return // not enough visibility yet
		}
	}
	var honestSum int64
	for o := 1; o <= c.honestCount; o++ {
		shares := make([]shamir.Share, 0, c.t)
		for holder, value := range c.pool[int64(o)] {
			shares = append(shares, shamir.Share{X: holder, Value: value})
			if len(shares) == c.t {
				break
			}
		}
		secret, err := shamir.Reconstruct(shares)
		if err != nil {
			ctx.Abort()
			return
		}
		honestSum = ring.Mod(honestSum+secret, c.n)
	}
	c.distributed = true
	// Drones contributed 0 each; our secret closes the sum on the target.
	c.secret = ring.Mod(c.targetSum-honestSum, c.n)
	c.distribute(ctx, c.secret)
}
