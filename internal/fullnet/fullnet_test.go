package fullnet

import (
	"testing"

	"repro/internal/shamir"
	"repro/internal/sim"
)

func TestHonestElectionSucceedsAndAgrees(t *testing.T) {
	for _, n := range []int{3, 4, 7, 12} {
		e, err := New(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 4; seed++ {
			res, err := e.Run(seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed {
				t.Fatalf("n=%d seed=%d: honest election failed: %v", n, seed, res.Reason)
			}
			if res.Output < 1 || res.Output > int64(n) {
				t.Fatalf("n=%d: leader %d out of range", n, res.Output)
			}
		}
	}
}

func TestScheduleIndependence(t *testing.T) {
	// The complete graph has many incoming links per processor, so the
	// scheduler genuinely reorders deliveries; set-based gates make the
	// outcome schedule-independent anyway.
	e, err := New(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	var first int64
	for i, s := range []sim.Scheduler{sim.FIFOScheduler{}, sim.LIFOScheduler{}, sim.NewRandomScheduler(3), sim.NewRandomScheduler(99)} {
		res, err := e.Run(7, s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("failed under scheduler %d: %v", i, res.Reason)
		}
		if i == 0 {
			first = res.Output
		} else if res.Output != first {
			t.Fatalf("outcome differs across schedules: %d vs %d", res.Output, first)
		}
	}
}

func TestHonestUniformity(t *testing.T) {
	const (
		n      = 8
		trials = 1500
	)
	e, err := New(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n+1)
	for seed := int64(0); seed < trials; seed++ {
		res, err := e.Run(seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("seed=%d failed: %v", seed, res.Reason)
		}
		counts[res.Output]++
	}
	want := float64(trials) / n
	for j := 1; j <= n; j++ {
		if got := float64(counts[j]); got < want*0.6 || got > want*1.4 {
			t.Errorf("leader %d elected %v times, want ≈ %v", j, got, want)
		}
	}
}

func TestCoalitionAtThresholdControls(t *testing.T) {
	// k = ⌈n/2⌉ = t: the coalition pools t shares per honest secret,
	// reconstructs early, and forces any target — the impossibility
	// threshold, realized.
	for _, n := range []int{8, 9, 13} {
		e, err := New(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		k := e.Threshold()
		for seed := int64(0); seed < 5; seed++ {
			res, err := e.RunAttack(k, 2, seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed || res.Output != 2 {
				t.Fatalf("n=%d k=%d seed=%d: failed=%v output=%d",
					n, k, seed, res.Failed, res.Output)
			}
		}
	}
}

func TestCoalitionBelowThresholdRefused(t *testing.T) {
	// k = ⌈n/2⌉−1: the paper's optimal resilience bound. Early
	// reconstruction is information-theoretically impossible (Shamir
	// hiding), so planning the attack fails — the resilience certificate.
	e, err := New(12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAttack(e.Threshold()-1, 2, 0, nil); err == nil {
		t.Fatal("attack planned below the Shamir threshold")
	}
}

func TestTamperedShareAborts(t *testing.T) {
	// A participant distributing an inconsistent sharing is caught by the
	// receiver-side polynomial check.
	const n = 7
	e, err := New(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	strategies := make([]sim.Strategy, n)
	for i := 1; i <= n; i++ {
		strategies[i-1] = &participant{n: n, t: e.t, id: i}
	}
	strategies[3] = &tamperer{participant{n: n, t: e.t, id: 4}}
	res, err := e.execute(strategies, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("inconsistent sharing not detected")
	}
}

// tamperer distributes a corrupted sharing: one share is bumped off the
// polynomial, which the receiver-side Consistent check must catch.
type tamperer struct{ participant }

func (a *tamperer) Init(ctx *sim.Context) {
	a.myShares = make([]int64, a.n+1)
	a.haveShare = make([]bool, a.n+1)
	a.reveals = make([][]int64, a.n+1)
	for o := 1; o <= a.n; o++ {
		a.reveals[o] = make([]int64, a.n+1)
		for h := range a.reveals[o] {
			a.reveals[o][h] = -1
		}
	}
	a.secret = ctx.Rand().Int63n(int64(a.n))
	shares, err := shamir.Split(a.secret, a.t, a.n, ctx.Rand())
	if err != nil {
		t := ctx // unreachable in tests
		t.Abort()
		return
	}
	for _, s := range shares {
		v := s.Value
		if int(s.X) == a.n { // corrupt the last recipient's share
			v = (v + 1) % shamir.P
		}
		if int(s.X) == a.id {
			a.acceptShare(ctx, int64(a.id), v)
			continue
		}
		ctx.SendTo(sim.ProcID(s.X), pack(msgShare, int64(a.id), v))
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	for _, kind := range []int64{msgShare, msgReveal, msgRelay} {
		for _, owner := range []int64{1, 7, 4095} {
			for _, value := range []int64{0, 1, 1<<31 - 2} {
				k, o, v := unpack(pack(kind, owner, value))
				if k != kind || o != owner || v != value {
					t.Fatalf("round trip (%d,%d,%d) → (%d,%d,%d)", kind, owner, value, k, o, v)
				}
			}
		}
	}
}
