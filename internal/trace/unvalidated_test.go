package trace

import (
	"testing"

	"repro/internal/protocols/phaselead"
	"repro/internal/ring"
	"repro/internal/sim"
)

// guesser behaves like an honest phase processor except in round rstar: it
// emits a guessed validation value immediately after its data send — before
// the true circulating value reaches it — and swallows the real one. The
// round-rstar validator then receives a value computed independently of what
// it sent: Definition E.3's "unvalidated" case, which the validator
// punishes by aborting with probability 1−1/m.
type guesser struct {
	n     int
	pos   int
	rstar int

	buffer   int64
	round    int
	received int
}

var _ sim.Strategy = (*guesser)(nil)

func (g *guesser) Init(*sim.Context) { g.buffer = 0 }

func (g *guesser) Receive(ctx *sim.Context, _ sim.ProcID, value int64) {
	g.received++
	if g.received%2 == 1 { // data
		ctx.Send(g.buffer)
		g.round++
		g.buffer = value
		if g.round == g.rstar {
			ctx.Send(0) // the early guess for v_{rstar}
		}
		if g.round == g.pos {
			ctx.Send(0) // own validator round: junk, unchecked
		}
		return
	}
	// validation
	switch g.round {
	case g.rstar, g.pos:
		// Swallow: the guess (or our own junk) already went out.
	default:
		ctx.Send(value)
	}
}

func TestGuessedValidationIsUnvalidatedAndAborts(t *testing.T) {
	const (
		n     = 9
		adv   = sim.ProcID(7)
		rstar = sim.ProcID(3)
	)
	dev := &ring.Deviation{
		Coalition:  []sim.ProcID{adv},
		Strategies: map[sim.ProcID]sim.Strategy{adv: &guesser{n: n, pos: int(adv), rstar: int(rstar)}},
	}
	rec := NewRecorder(n)
	res, err := ring.Run(ring.Spec{N: n, Protocol: phaselead.NewDefault(), Deviation: dev, Seed: 6, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	// Runtime: the validator catches the guess (m = 2n², so a correct
	// guess at this seed would be a miracle).
	if !res.Failed || res.Reason != sim.FailAbort {
		t.Fatalf("got (%v,%v), want abort by the guessed validator", res.Failed, res.Reason)
	}
	if res.Statuses[rstar] != sim.StatusAborted {
		t.Fatalf("validator %d status %v, want aborted", rstar, res.Statuses[rstar])
	}

	// Structure: the calculation-dependency graph shows WHY — the value
	// that returned to the validator does not depend on what it sent.
	calc := rec.CalcGraph(dev.Coalition)
	if Validated(calc, rstar, n) {
		t.Errorf("round-%d validator classified as validated despite the guess", rstar)
	}
	// Earlier rounds completed honestly and stay validated.
	for _, h := range []sim.ProcID{1, 2} {
		if !Validated(calc, h, n) {
			t.Errorf("validator %d should be validated (its round preceded the guess)", h)
		}
	}
}
