package trace

import (
	"testing/quick"

	"testing"

	"repro/internal/attacks"
	"repro/internal/protocols/alead"
	"repro/internal/protocols/phaselead"
	"repro/internal/ring"
	"repro/internal/sim"
)

func recordRun(t *testing.T, spec ring.Spec) (*Recorder, sim.Result) {
	t.Helper()
	rec := NewRecorder(spec.N)
	spec.Tracer = rec
	res, err := ring.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func TestHappensBeforeAcyclic(t *testing.T) {
	rec, res := recordRun(t, ring.Spec{N: 12, Protocol: phaselead.NewDefault(), Seed: 3})
	if res.Failed {
		t.Fatalf("honest run failed: %v", res.Reason)
	}
	g := rec.HappensBefore()
	if !g.Acyclic() {
		t.Error("happens-before graph has a cycle (Remark 2 violated)")
	}
	if g.Len() == 0 {
		t.Error("empty graph")
	}
}

func TestCalcGraphAcyclicAndWeaker(t *testing.T) {
	// Remark 1: calculation dependence implies happens-before.
	const n = 10
	rec, res := recordRun(t, ring.Spec{N: n, Protocol: phaselead.NewDefault(), Seed: 5})
	if res.Failed {
		t.Fatalf("honest run failed: %v", res.Reason)
	}
	hb := rec.HappensBefore()
	calc := rec.CalcGraph(nil)
	if !calc.Acyclic() {
		t.Error("calculation graph has a cycle")
	}
	// Sample pairs: every calc edge endpoint pair must be HB-related.
	for _, h := range []sim.ProcID{2, 5, 9} {
		s, ret := ValidatorSend(h), ValidatorReturn(h, n)
		if calc.HappensBefore(s, ret) && !hb.HappensBefore(s, ret) {
			t.Errorf("s(%d) ⤳c r(%d) but not ⤳ in happens-before", h, h)
		}
	}
}

func TestLemmaE8Orderings(t *testing.T) {
	// Lemma E.8 on an honest PhaseAsyncLead execution: for consecutive
	// honest processors h, h+1:
	//   (1) r(h) ⤳ s(h+1), (2) r(h) ⤳ r(h+1), (3) s(h) ⤳ s(h+1).
	const n = 11
	rec, res := recordRun(t, ring.Spec{N: n, Protocol: phaselead.NewDefault(), Seed: 1})
	if res.Failed {
		t.Fatalf("honest run failed: %v", res.Reason)
	}
	g := rec.HappensBefore()
	for h := sim.ProcID(2); h < n; h++ {
		rh, rh1 := ValidatorReturn(h, n), ValidatorReturn(h+1, n)
		sh, sh1 := ValidatorSend(h), ValidatorSend(h+1)
		if !g.HappensBefore(rh, sh1) {
			t.Errorf("r(%d) does not precede s(%d)", h, h+1)
		}
		if !g.HappensBefore(rh, rh1) {
			t.Errorf("r(%d) does not precede r(%d)", h, h+1)
		}
		if !g.HappensBefore(sh, sh1) {
			t.Errorf("s(%d) does not precede s(%d)", h, h+1)
		}
	}
}

func TestAllValidatedInHonestRun(t *testing.T) {
	// In an honest execution every processor's validation value truly
	// depends on what it sent: s(h) ⤳c r(h) for all h (Definition E.3).
	const n = 9
	rec, res := recordRun(t, ring.Spec{N: n, Protocol: phaselead.NewDefault(), Seed: 2})
	if res.Failed {
		t.Fatalf("honest run failed: %v", res.Reason)
	}
	calc := rec.CalcGraph(nil)
	for h := sim.ProcID(1); h <= n; h++ {
		if !Validated(calc, h, n) {
			t.Errorf("processor %d unvalidated in an honest run", h)
		}
	}
}

func TestCausalityAlwaysHolds(t *testing.T) {
	// Lemma D.4 is a property of the FIFO network itself: it holds even
	// under attack.
	attack := attacks.Rushing{Place: attacks.PlaceStaggered}
	dev, err := attack.Plan(216, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(216)
	res, err := ring.Run(ring.Spec{N: 216, Protocol: alead.New(), Deviation: dev, Seed: 4, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("cubic attack failed: %v", res.Reason)
	}
	if !rec.CheckCausality() {
		t.Error("Recv_{i+1} exceeded Sent_i at some time point (Lemma D.4)")
	}
}

func TestSyncGapHonestALead(t *testing.T) {
	// Honest A-LEADuni is 1-synchronized: |Sent_i − Sent_j| ≤ 1 always.
	rec, res := recordRun(t, ring.Spec{N: 20, Protocol: alead.New(), Seed: 6})
	if res.Failed {
		t.Fatalf("honest run failed: %v", res.Reason)
	}
	prof := rec.Sync(nil)
	if prof.MaxGap > 1 {
		t.Errorf("honest A-LEADuni sync gap %d, want ≤ 1", prof.MaxGap)
	}
}

func TestSyncGapPhaseVsCubic(t *testing.T) {
	// The paper's Section 6 motivation, measured: the cubic attack on
	// A-LEADuni drives the coalition's send-count spread to Θ(k²), while
	// PhaseAsyncLead's validation keeps every deviation we can run at
	// O(k).
	const n = 216
	cubic := attacks.Rushing{Place: attacks.PlaceStaggered}
	dev, err := cubic.Plan(n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := len(dev.Coalition)
	rec := NewRecorder(n)
	res, err := ring.Run(ring.Spec{N: n, Protocol: alead.New(), Deviation: dev, Seed: 8, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("cubic attack failed: %v", res.Reason)
	}
	aleadGap := rec.Sync(dev.Coalition).MaxGap

	proto := phaselead.NewDefault()
	phase := attacks.PhaseRushing{Protocol: proto}
	pdev, err := phase.Plan(n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	prec := NewRecorder(n)
	pres, err := ring.Run(ring.Spec{N: n, Protocol: proto, Deviation: pdev, Seed: 8, Tracer: prec})
	if err != nil {
		t.Fatal(err)
	}
	if pres.Failed {
		t.Fatalf("phase rushing failed: %v", pres.Reason)
	}
	phaseGap := prec.Sync(pdev.Coalition).MaxGap

	if aleadGap < k*(k-1)/4 {
		t.Errorf("cubic attack gap %d; expected Ω(k²)≈%d", aleadGap, k*k)
	}
	kPhase := len(pdev.Coalition)
	if phaseGap > 4*kPhase {
		t.Errorf("phase-protocol gap %d with k=%d; expected O(k)", phaseGap, kPhase)
	}
}

func TestSentReceivedCounts(t *testing.T) {
	const n = 7
	rec, res := recordRun(t, ring.Spec{N: n, Protocol: alead.New(), Seed: 0})
	if res.Failed {
		t.Fatalf("honest run failed: %v", res.Reason)
	}
	for i := 1; i <= n; i++ {
		if got := rec.SentCounts()[i]; got != n {
			t.Errorf("Sent_%d = %d, want %d", i, got, n)
		}
		if got := rec.ReceivedCounts()[i]; got != n {
			t.Errorf("Recv_%d = %d, want %d", i, got, n)
		}
	}
}

func TestGraphPropertiesQuick(t *testing.T) {
	// Property check over random configurations: for every protocol,
	// ring size and seed, the happens-before graph is acyclic, causality
	// holds, and (for the phase protocol) every honest validator is
	// validated in the calculation graph.
	if err := quick.Check(func(nRaw, seedRaw uint8, phase bool) bool {
		n := int(nRaw%14) + 4
		seed := int64(seedRaw)
		var proto ring.Protocol = alead.New()
		if phase {
			proto = phaselead.NewDefault()
		}
		rec := NewRecorder(n)
		res, err := ring.Run(ring.Spec{N: n, Protocol: proto, Seed: seed, Tracer: rec})
		if err != nil || res.Failed {
			return false
		}
		if !rec.HappensBefore().Acyclic() || !rec.CheckCausality() {
			return false
		}
		if phase {
			calc := rec.CalcGraph(nil)
			if !calc.Acyclic() {
				return false
			}
			for h := sim.ProcID(1); h <= sim.ProcID(n); h++ {
				if !Validated(calc, h, n) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEventString(t *testing.T) {
	if got := Send(3, 7).String(); got != "send(3,7)" {
		t.Errorf("Send string = %q", got)
	}
	if got := Recv(2, 4).String(); got != "recv(2,4)" {
		t.Errorf("Recv string = %q", got)
	}
}
