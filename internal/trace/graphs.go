package trace

import "repro/internal/sim"

// HappensBefore builds the happens-before graph G_x of Appendix E.1 from a
// recorded execution. Its edges are exactly the paper's four families:
//
//   - arrival:             send(p,i)  → recv(q,i')   (the matching delivery)
//   - local linearity:     send(p,i)  → send(p,i+1),
//     recv(p,i)  → recv(p,i+1)
//   - triggering:          recv(p,i)  → send(p,j)    (j emitted handling i)
//   - receive-after-send:  send(p,j)  → recv(p,i)    (j triggered before i)
//
// The receive-after-send family is added compactly: from the last send a
// processor emitted before each receive; local linearity supplies the rest
// transitively.
func (r *Recorder) HappensBefore() *Graph {
	g := newGraph()
	// Per-ordered-pair FIFO matching of sends to deliveries.
	type pair struct{ from, to sim.ProcID }
	sent := make(map[pair][]int)   // send indices awaiting delivery
	lastSend := make([]int, r.N+1) // last send index per processor
	lastRecv := make([]int, r.N+1) // last receive index per processor
	for _, op := range r.Ops {
		switch op.Kind {
		case OpSend:
			e := Send(op.Proc, op.Index)
			g.node(e)
			if op.Index > 1 {
				g.addEdge(Send(op.Proc, op.Index-1), e)
			}
			if i := lastRecv[op.Proc]; i > 0 {
				g.addEdge(Recv(op.Proc, i), e) // triggering
			}
			lastSend[op.Proc] = op.Index
			key := pair{op.Proc, op.Peer}
			sent[key] = append(sent[key], op.Index)
		case OpDeliver:
			e := Recv(op.Proc, op.Index)
			g.node(e)
			if op.Index > 1 {
				g.addEdge(Recv(op.Proc, op.Index-1), e)
			}
			key := pair{op.Peer, op.Proc}
			if q := sent[key]; len(q) > 0 {
				g.addEdge(Send(op.Peer, q[0]), e) // arrival
				sent[key] = q[1:]
			}
			if j := lastSend[op.Proc]; j > 0 {
				g.addEdge(Send(op.Proc, j), e) // receive-after-send
			}
			lastRecv[op.Proc] = op.Index
		}
	}
	return g
}

// CalcGraph builds the calculation-dependency graph Gc_x of Appendix E.1
// for a phase-protocol execution (PhaseAsyncLead or SumPhaseLead), given the
// coalition (whose members get the general "every earlier receive feeds
// every send" edges). Odd per-processor message indices are data messages,
// even ones validation messages, matching the protocols' positional typing.
//
// Edge families:
//
//   - send-to-receive:      send(p,i) → recv(q,i')       (message identity)
//   - validation transfer:  recv(h,2i) → send(h,2i)      (honest h, i ≠ h)
//   - data delay:           recv(h,2i−1) → send(h,2i+1)  (honest h)
//   - adversarial:          recv(a,t) → send(a,j) for all t ≤ trigger(j)
func (r *Recorder) CalcGraph(coalition []sim.ProcID) *Graph {
	adv := make(map[sim.ProcID]bool, len(coalition))
	for _, c := range coalition {
		adv[c] = true
	}
	g := newGraph()
	type pair struct{ from, to sim.ProcID }
	sent := make(map[pair][]int)
	lastRecv := make([]int, r.N+1)
	for _, op := range r.Ops {
		switch op.Kind {
		case OpSend:
			e := Send(op.Proc, op.Index)
			g.node(e)
			if adv[op.Proc] {
				// General calculation: all receives so far feed it.
				for t := 1; t <= lastRecv[op.Proc]; t++ {
					g.addEdge(Recv(op.Proc, t), e)
				}
			} else {
				switch {
				case op.Index%2 == 0 && op.Index != 2*int(op.Proc):
					// Forwarded validation value: depends on the
					// receive of the same index. (The processor's own
					// validation send 2h depends on nothing.)
					g.addEdge(Recv(op.Proc, op.Index), e)
				case op.Index%2 == 1 && op.Index > 2:
					// Data send 2i+1 releases the value received as
					// data message 2i−1 (one-round buffer delay).
					g.addEdge(Recv(op.Proc, op.Index-2), e)
				}
			}
			key := pair{op.Proc, op.Peer}
			sent[key] = append(sent[key], op.Index)
		case OpDeliver:
			e := Recv(op.Proc, op.Index)
			g.node(e)
			key := pair{op.Peer, op.Proc}
			if q := sent[key]; len(q) > 0 {
				g.addEdge(Send(op.Peer, q[0]), e)
				sent[key] = q[1:]
			}
			lastRecv[op.Proc] = op.Index
		}
	}
	return g
}

// Validated reports Definition E.3 for honest processor h in a recorded
// phase-protocol execution: whether s(h) ⤳c r(h), i.e. the value h receives
// back as round-h validator actually depends on the value it sent.
func Validated(calc *Graph, h sim.ProcID, n int) bool {
	s, ret := ValidatorSend(h), ValidatorReturn(h, n)
	return calc.Has(s) && calc.Has(ret) && calc.HappensBefore(s, ret)
}
