package trace

import "repro/internal/sim"

// SyncProfile extracts the synchronization time series of Appendix D from a
// recorded execution: after every operation, the spread max_i Sent_i −
// min_j Sent_j over the watched processors. Watching the coalition exhibits
// Lemma D.3/D.5's 2k² bound (and the cubic attack's Θ(k²) gap); watching all
// processors exhibits PhaseAsyncLead's O(k) lockstep.
type SyncProfile struct {
	// MaxGap is the maximal spread observed at any point in time.
	MaxGap int
	// Series is the spread after each send operation by a watched
	// processor (one sample per such send).
	Series []int
}

// Sync computes the profile over the watched processors (all if empty).
func (r *Recorder) Sync(watch []sim.ProcID) SyncProfile {
	watched := make(map[sim.ProcID]bool, len(watch))
	if len(watch) == 0 {
		for i := 1; i <= r.N; i++ {
			watched[sim.ProcID(i)] = true
		}
	} else {
		for _, p := range watch {
			watched[p] = true
		}
	}
	sent := make(map[sim.ProcID]int, len(watched))
	for p := range watched {
		sent[p] = 0
	}
	var prof SyncProfile
	for _, op := range r.Ops {
		if op.Kind != OpSend || !watched[op.Proc] {
			continue
		}
		sent[op.Proc] = op.Index
		lo, hi := int(^uint(0)>>1), 0
		for _, s := range sent {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		gap := hi - lo
		prof.Series = append(prof.Series, gap)
		if gap > prof.MaxGap {
			prof.MaxGap = gap
		}
	}
	return prof
}

// CheckCausality verifies Lemma D.4 on the recorded execution: at every
// point in time, a processor cannot have received more messages from its
// ring predecessor than the predecessor has sent. It returns false only if
// the simulator itself violated FIFO causality (which would be a bug, not an
// attack).
func (r *Recorder) CheckCausality() bool {
	type pair struct{ from, to sim.ProcID }
	sent := make(map[pair]int)
	recv := make(map[pair]int)
	for _, op := range r.Ops {
		switch op.Kind {
		case OpSend:
			sent[pair{op.Proc, op.Peer}]++
		case OpDeliver:
			key := pair{op.Peer, op.Proc}
			recv[key]++
			if recv[key] > sent[key] {
				return false
			}
		}
	}
	return true
}

// SentCounts returns the final Sent_i counters.
func (r *Recorder) SentCounts() []int {
	out := make([]int, r.N+1)
	for _, op := range r.Ops {
		if op.Kind == OpSend {
			out[op.Proc] = op.Index
		}
	}
	return out
}

// ReceivedCounts returns the final Recv_i counters.
func (r *Recorder) ReceivedCounts() []int {
	out := make([]int, r.N+1)
	for _, op := range r.Ops {
		if op.Kind == OpDeliver {
			out[op.Proc] = op.Index
		}
	}
	return out
}
