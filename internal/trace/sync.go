package trace

import "repro/internal/sim"

// SyncProfile extracts the synchronization time series of Appendix D from a
// recorded execution: after every operation, the spread max_i Sent_i −
// min_j Sent_j over the watched processors. Watching the coalition exhibits
// Lemma D.3/D.5's 2k² bound (and the cubic attack's Θ(k²) gap); watching all
// processors exhibits PhaseAsyncLead's O(k) lockstep.
type SyncProfile struct {
	// MaxGap is the maximal spread observed at any point in time.
	MaxGap int
	// Series is the spread after each send operation by a watched
	// processor (one sample per such send).
	Series []int
}

// Sync computes the profile over the watched processors (all if empty).
//
// The spread is maintained incrementally: per-value occupancy counts make
// the running minimum and maximum O(1) amortized per operation (a send
// advances its processor's counter by one, so the minimum only ever moves
// forward), keeping the whole profile linear in the recorded execution
// rather than quadratic — the difference between milliseconds and seconds
// on the n=512 traces of the synchronization experiments.
func (r *Recorder) Sync(watch []sim.ProcID) SyncProfile {
	watched := make([]bool, r.N+1)
	nWatched := 0
	if len(watch) == 0 {
		for i := 1; i <= r.N; i++ {
			watched[i] = true
		}
		nWatched = r.N
	} else {
		for _, p := range watch {
			if p >= 1 && int(p) <= r.N && !watched[p] {
				watched[p] = true
				nWatched++
			}
		}
	}
	sent := make([]int, r.N+1)
	// occupancy[v] counts watched processors whose Sent counter is v; the
	// slice grows with the maximum send index seen.
	occupancy := make([]int, 1, 256)
	occupancy[0] = nWatched
	lo, hi := 0, 0

	samples := 0
	for _, op := range r.Ops {
		if op.Kind == OpSend && watched[op.Proc] {
			samples++
		}
	}
	prof := SyncProfile{Series: make([]int, 0, samples)}
	for _, op := range r.Ops {
		if op.Kind != OpSend || !watched[op.Proc] {
			continue
		}
		old := sent[op.Proc]
		now := op.Index
		sent[op.Proc] = now
		for now >= len(occupancy) {
			occupancy = append(occupancy, 0)
		}
		occupancy[old]--
		occupancy[now]++
		if now > hi {
			hi = now
		}
		if old == lo && occupancy[old] == 0 {
			for occupancy[lo] == 0 {
				lo++
			}
		}
		gap := hi - lo
		prof.Series = append(prof.Series, gap)
		if gap > prof.MaxGap {
			prof.MaxGap = gap
		}
	}
	return prof
}

// CheckCausality verifies Lemma D.4 on the recorded execution: at every
// point in time, a processor cannot have received more messages from its
// ring predecessor than the predecessor has sent. It returns false only if
// the simulator itself violated FIFO causality (which would be a bug, not an
// attack).
func (r *Recorder) CheckCausality() bool {
	type pair struct{ from, to sim.ProcID }
	sent := make(map[pair]int)
	recv := make(map[pair]int)
	for _, op := range r.Ops {
		switch op.Kind {
		case OpSend:
			sent[pair{op.Proc, op.Peer}]++
		case OpDeliver:
			key := pair{op.Peer, op.Proc}
			recv[key]++
			if recv[key] > sent[key] {
				return false
			}
		}
	}
	return true
}

// SentCounts returns the final Sent_i counters.
func (r *Recorder) SentCounts() []int {
	out := make([]int, r.N+1)
	for _, op := range r.Ops {
		if op.Kind == OpSend {
			out[op.Proc] = op.Index
		}
	}
	return out
}

// ReceivedCounts returns the final Recv_i counters.
func (r *Recorder) ReceivedCounts() []int {
	out := make([]int, r.N+1)
	for _, op := range r.Ops {
		if op.Kind == OpDeliver {
			out[op.Proc] = op.Index
		}
	}
	return out
}
