// Package trace records executions and reconstructs the formal objects the
// paper's resilience proofs reason about (Appendix E.1): the set of send/
// receive events, the happens-before graph G_x, the calculation-dependency
// graph Gc_x, synchronization profiles (the Sent_i^t counters of Appendix D),
// and the validated/unvalidated classification of phase-protocol processors
// (Definition E.3).
//
// The recorded structures let tests check the lemmas on real executions:
// Lemma D.4 (Recv_{i+1}^t ≤ Sent_i^t), Lemma D.5 (non-failing executions are
// 2k²-synchronized), the Lemma E.8 event orderings, and acyclicity of both
// graphs (Remark 2 of E.1).
package trace

import (
	"fmt"

	"repro/internal/sim"
)

// OpKind classifies a recorded operation.
type OpKind int

// Recorded operation kinds.
const (
	// OpSend is a message enqueue by a processor.
	OpSend OpKind = iota + 1
	// OpDeliver is a message being processed by a processor.
	OpDeliver
	// OpTerminate is a processor terminating (possibly with ⊥).
	OpTerminate
)

// Op is one recorded operation, in execution order.
type Op struct {
	Kind    OpKind
	Proc    sim.ProcID // acting processor
	Peer    sim.ProcID // destination (send) or source (deliver)
	Index   int        // 1-based per-processor send or receive index
	Value   int64
	Aborted bool // for OpTerminate
}

// Recorder is a sim.Tracer that captures the full execution sequence.
type Recorder struct {
	N   int
	Ops []Op
}

var _ sim.Tracer = (*Recorder)(nil)

// NewRecorder returns a Recorder for a network of n processors.
func NewRecorder(n int) *Recorder {
	return &Recorder{N: n}
}

// OnSend implements sim.Tracer.
func (r *Recorder) OnSend(from sim.ProcID, idx int, to sim.ProcID, value int64) {
	r.Ops = append(r.Ops, Op{Kind: OpSend, Proc: from, Peer: to, Index: idx, Value: value})
}

// OnDeliver implements sim.Tracer.
func (r *Recorder) OnDeliver(to sim.ProcID, idx int, from sim.ProcID, value int64) {
	r.Ops = append(r.Ops, Op{Kind: OpDeliver, Proc: to, Peer: from, Index: idx, Value: value})
}

// OnTerminate implements sim.Tracer.
func (r *Recorder) OnTerminate(p sim.ProcID, output int64, aborted bool) {
	r.Ops = append(r.Ops, Op{Kind: OpTerminate, Proc: p, Value: output, Aborted: aborted})
}

// EventKind distinguishes the two event families of Appendix E.1.
type EventKind int

// Event kinds: send(p,i) and recv(p,i).
const (
	EvSend EventKind = iota + 1
	EvRecv
)

// Event is send(p,i) or recv(p,i) in the paper's notation.
type Event struct {
	Kind  EventKind
	Proc  sim.ProcID
	Index int
}

// String renders the paper's notation.
func (e Event) String() string {
	if e.Kind == EvSend {
		return fmt.Sprintf("send(%d,%d)", e.Proc, e.Index)
	}
	return fmt.Sprintf("recv(%d,%d)", e.Proc, e.Index)
}

// Send returns the event send(p, i).
func Send(p sim.ProcID, i int) Event { return Event{Kind: EvSend, Proc: p, Index: i} }

// Recv returns the event recv(p, i).
func Recv(p sim.ProcID, i int) Event { return Event{Kind: EvRecv, Proc: p, Index: i} }

// ValidatorSend returns s(h) = send(h, 2h): processor h sending its
// validation value as round-h validator (phase protocols).
func ValidatorSend(h sim.ProcID) Event { return Send(h, 2*int(h)) }

// ValidatorReturn returns r(h) = send(h−1, 2h): h's ring predecessor sending
// the message h interprets as its returning validation value.
func ValidatorReturn(h sim.ProcID, n int) Event {
	pred := h - 1
	if pred < 1 {
		pred = sim.ProcID(n)
	}
	return Send(pred, 2*int(h))
}

// Graph is a directed graph over the execution's events.
type Graph struct {
	index map[Event]int
	nodes []Event
	adj   [][]int
}

func newGraph() *Graph {
	return &Graph{index: make(map[Event]int)}
}

func (g *Graph) node(e Event) int {
	if id, ok := g.index[e]; ok {
		return id
	}
	id := len(g.nodes)
	g.index[e] = id
	g.nodes = append(g.nodes, e)
	g.adj = append(g.adj, nil)
	return id
}

func (g *Graph) addEdge(from, to Event) {
	f, t := g.node(from), g.node(to)
	g.adj[f] = append(g.adj[f], t)
}

// Len returns the number of events in the graph.
func (g *Graph) Len() int { return len(g.nodes) }

// Has reports whether the event occurred in the execution.
func (g *Graph) Has(e Event) bool {
	_, ok := g.index[e]
	return ok
}

// Reaches reports whether there is a (possibly empty) path from a to b:
// the paper's α ⤳ β relation holds iff a != b and a path exists.
func (g *Graph) Reaches(a, b Event) bool {
	ai, ok := g.index[a]
	if !ok {
		return false
	}
	bi, ok := g.index[b]
	if !ok {
		return false
	}
	if ai == bi {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []int{ai}
	seen[ai] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range g.adj[cur] {
			if next == bi {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// HappensBefore reports the strict relation α ⤳ β (α != β and a path
// exists).
func (g *Graph) HappensBefore(a, b Event) bool {
	return a != b && g.Reaches(a, b)
}

// Acyclic reports whether the graph has no directed cycle (Remark 2).
func (g *Graph) Acyclic() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.nodes))
	var visit func(int) bool
	visit = func(u int) bool {
		color[u] = gray
		for _, v := range g.adj[u] {
			switch color[v] {
			case gray:
				return false
			case white:
				if !visit(v) {
					return false
				}
			}
		}
		color[u] = black
		return true
	}
	for u := range g.nodes {
		if color[u] == white && !visit(u) {
			return false
		}
	}
	return true
}
