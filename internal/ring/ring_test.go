package ring

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestModAndLeaderRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	err := quick.Check(func(v int64, nRaw uint8) bool {
		n := int(nRaw%63) + 2
		m := Mod(v, n)
		if m < 0 || m >= int64(n) {
			return false
		}
		leader := LeaderFromSum(v, n)
		if leader < 1 || leader > int64(n) {
			return false
		}
		return Mod(SumForLeader(leader, n), n) == m
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestDistancesSumToNMinusK(t *testing.T) {
	cases := []struct {
		n         int
		coalition []sim.ProcID
	}{
		{10, []sim.ProcID{2, 5, 9}},
		{10, []sim.ProcID{1, 2, 3}},
		{7, []sim.ProcID{4}},
		{12, []sim.ProcID{2, 3, 7, 11, 12}},
	}
	for _, tc := range cases {
		dists := Distances(tc.coalition, tc.n)
		total := 0
		for _, d := range dists {
			total += d
		}
		if want := tc.n - len(tc.coalition); total != want {
			t.Errorf("n=%d coalition=%v: distances %v sum to %d, want %d",
				tc.n, tc.coalition, dists, total, want)
		}
	}
}

func TestSegmentMembers(t *testing.T) {
	coalition := []sim.ProcID{2, 5, 9}
	seg := Segment(coalition, 0, 10) // between 2 and 5
	want := []sim.ProcID{3, 4}
	if len(seg) != len(want) {
		t.Fatalf("segment = %v, want %v", seg, want)
	}
	for i := range want {
		if seg[i] != want[i] {
			t.Fatalf("segment = %v, want %v", seg, want)
		}
	}
	wrap := Segment(coalition, 2, 10) // between 9 and 2, through origin
	wantWrap := []sim.ProcID{10, 1}
	for i := range wantWrap {
		if wrap[i] != wantWrap[i] {
			t.Fatalf("wrap segment = %v, want %v", wrap, wantWrap)
		}
	}
}

func TestEqualSpacedProperties(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{16, 4}, {100, 10}, {101, 7}, {50, 24}} {
		coalition, err := EqualSpaced(tc.n, tc.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if len(coalition) != tc.k {
			t.Fatalf("n=%d k=%d: got %d members", tc.n, tc.k, len(coalition))
		}
		for _, p := range coalition {
			if p == 1 {
				t.Errorf("n=%d k=%d: origin in coalition", tc.n, tc.k)
			}
		}
		dists := Distances(coalition, tc.n)
		minD, maxD := tc.n, 0
		for _, d := range dists {
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
		if maxD-minD > 2 {
			t.Errorf("n=%d k=%d: uneven spacing %v", tc.n, tc.k, dists)
		}
	}
	if _, err := EqualSpaced(10, 10); err == nil {
		t.Error("k=n accepted")
	}
	if _, err := EqualSpaced(10, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestFromDistancesRoundTrip(t *testing.T) {
	dists := []int{3, 2, 1}
	coalition, err := FromDistances(dists, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := Distances(coalition, 9)
	for i := range dists {
		if got[i] != dists[i] {
			t.Fatalf("distances %v round-tripped to %v", dists, got)
		}
	}
	if _, err := FromDistances([]int{5, 5}, 9, 2); err == nil {
		t.Error("wrong total accepted")
	}
	if _, err := FromDistances([]int{-1, 8}, 9, 2); err == nil {
		t.Error("negative distance accepted")
	}
}

func TestRandomCoalitionReproducible(t *testing.T) {
	a := RandomCoalition(100, 0.2, 5)
	b := RandomCoalition(100, 0.2, 5)
	c := RandomCoalition(100, 0.2, 6)
	if len(a) != len(b) {
		t.Fatal("same seed, different coalitions")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different coalitions")
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds, identical coalitions (suspicious)")
	}
	for _, p := range a {
		if p == 1 {
			t.Error("origin drawn into random coalition")
		}
	}
}

func TestDeviationValidate(t *testing.T) {
	good := &Deviation{
		Coalition:  []sim.ProcID{2, 5},
		Strategies: map[sim.ProcID]sim.Strategy{2: noop{}, 5: noop{}},
	}
	if err := good.Validate(8); err != nil {
		t.Errorf("valid deviation rejected: %v", err)
	}
	var nilDev *Deviation
	if err := nilDev.Validate(8); err != nil {
		t.Errorf("nil deviation rejected: %v", err)
	}
	bad := &Deviation{Coalition: []sim.ProcID{5, 2},
		Strategies: map[sim.ProcID]sim.Strategy{2: noop{}, 5: noop{}}}
	if err := bad.Validate(8); err == nil {
		t.Error("unsorted coalition accepted")
	}
	missing := &Deviation{Coalition: []sim.ProcID{2}}
	if err := missing.Validate(8); err == nil {
		t.Error("missing strategy accepted")
	}
}

type noop struct{}

func (noop) Init(*sim.Context)                       {}
func (noop) Receive(*sim.Context, sim.ProcID, int64) {}

func TestTrialsReproducible(t *testing.T) {
	spec := Spec{N: 8, Protocol: testProto{}, Seed: 99}
	d1, err := Trials(spec, 50)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Trials(spec, 50)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 8; j++ {
		if d1.Counts[j] != d2.Counts[j] {
			t.Fatalf("trials not reproducible: %v vs %v", d1.Counts, d2.Counts)
		}
	}
}

// testProto elects the processor indexed by the origin's first random draw.
type testProto struct{}

func (testProto) Name() string { return "test" }

func (testProto) Strategies(n int) ([]sim.Strategy, error) {
	ss := make([]sim.Strategy, n)
	for i := range ss {
		ss[i] = &testStrategy{n: n, isOrigin: i == 0}
	}
	return ss, nil
}

type testStrategy struct {
	n        int
	isOrigin bool
}

func (s *testStrategy) Init(ctx *sim.Context) {
	if s.isOrigin {
		leader := ctx.Rand().Int63n(int64(s.n)) + 1
		ctx.Send(leader)
		ctx.Terminate(leader)
	}
}

func (s *testStrategy) Receive(ctx *sim.Context, _ sim.ProcID, v int64) {
	ctx.Send(v)
	ctx.Terminate(v)
}
