package ring

import (
	"fmt"

	"repro/internal/sim"
)

// Distribution aggregates outcomes over many independent trials of one
// configuration. It is the raw material for every bias estimate in the
// experiment suite.
type Distribution struct {
	// N is the ring size.
	N int
	// Trials is the number of executions aggregated.
	Trials int
	// Counts[j] is the number of trials electing leader j (index 0 unused).
	Counts []int
	// FailCounts[r] is the number of trials failing with reason r.
	FailCounts [5]int
	// Messages is the total number of delivered messages over all trials.
	Messages int
}

// NewDistribution returns an empty distribution for ring size n.
func NewDistribution(n int) *Distribution {
	return &Distribution{N: n, Counts: make([]int, n+1)}
}

// Add records one execution result.
func (d *Distribution) Add(res sim.Result) {
	d.Trials++
	d.Messages += res.Delivered
	if res.Failed {
		d.FailCounts[res.Reason]++
		return
	}
	if res.Output >= 1 && res.Output <= int64(d.N) {
		d.Counts[res.Output]++
	} else {
		// A valid-but-out-of-range output counts as a mismatchy failure;
		// honest protocols never produce it.
		d.FailCounts[sim.FailMismatch]++
	}
}

// Failures returns the total number of failed trials.
func (d *Distribution) Failures() int {
	total := 0
	for _, c := range d.FailCounts {
		total += c
	}
	return total
}

// WinRate returns the fraction of trials electing the given leader.
func (d *Distribution) WinRate(leader int64) float64 {
	if d.Trials == 0 {
		return 0
	}
	return float64(d.Counts[leader]) / float64(d.Trials)
}

// FailureRate returns the fraction of trials with outcome FAIL.
func (d *Distribution) FailureRate() float64 {
	if d.Trials == 0 {
		return 0
	}
	return float64(d.Failures()) / float64(d.Trials)
}

// MaxWin returns the most frequently elected leader and its win rate.
func (d *Distribution) MaxWin() (leader int64, rate float64) {
	best, bestCount := int64(0), -1
	for j := 1; j <= d.N; j++ {
		if d.Counts[j] > bestCount {
			best, bestCount = int64(j), d.Counts[j]
		}
	}
	return best, d.WinRate(best)
}

// String summarizes the distribution.
func (d *Distribution) String() string {
	leader, rate := d.MaxWin()
	return fmt.Sprintf("n=%d trials=%d fail=%.3f maxwin=%d@%.3f",
		d.N, d.Trials, d.FailureRate(), leader, rate)
}

// Trials runs the given spec repeatedly with derived seeds and aggregates
// the outcomes. The spec's Seed field acts as the base seed; trial t runs
// with an independently mixed seed, so trials are decorrelated but the whole
// batch is reproducible.
func Trials(spec Spec, trials int) (*Distribution, error) {
	dist := NewDistribution(spec.N)
	for t := 0; t < trials; t++ {
		trialSpec := spec
		trialSpec.Seed = int64(sim.Mix64(uint64(spec.Seed), uint64(t)+0x1234))
		res, err := Run(trialSpec)
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", t, err)
		}
		dist.Add(res)
	}
	return dist, nil
}

// AttackTrials plans the attack once per trial (attacks may randomize
// placement from the trial seed) and aggregates outcomes.
func AttackTrials(n int, protocol Protocol, attack Attack, target int64, baseSeed int64, trials int) (*Distribution, error) {
	dist := NewDistribution(n)
	for t := 0; t < trials; t++ {
		seed := int64(sim.Mix64(uint64(baseSeed), uint64(t)+0x9e37))
		dev, err := attack.Plan(n, target, seed)
		if err != nil {
			return nil, fmt.Errorf("plan %s (n=%d): %w", attack.Name(), n, err)
		}
		res, err := Run(Spec{N: n, Protocol: protocol, Deviation: dev, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", t, err)
		}
		dist.Add(res)
	}
	return dist, nil
}
