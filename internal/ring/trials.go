package ring

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Distribution aggregates outcomes over many independent trials of one
// configuration. It is the raw material for every bias estimate in the
// experiment suite.
type Distribution struct {
	// N is the ring size.
	N int
	// Trials is the number of executions aggregated.
	Trials int
	// Counts[j] is the number of trials electing leader j (index 0 unused).
	Counts []int
	// FailCounts[r] is the number of trials failing with reason r.
	FailCounts [5]int
	// Messages is the total number of delivered messages over all trials.
	Messages int
}

// NewDistribution returns an empty distribution for ring size n.
func NewDistribution(n int) *Distribution {
	return &Distribution{N: n, Counts: make([]int, n+1)}
}

// Add records one execution result.
func (d *Distribution) Add(res sim.Result) {
	d.Trials++
	d.Messages += res.Delivered
	if res.Failed {
		d.FailCounts[res.Reason]++
		return
	}
	if res.Output >= 1 && res.Output <= int64(d.N) {
		d.Counts[res.Output]++
	} else {
		// A valid-but-out-of-range output counts as a mismatchy failure;
		// honest protocols never produce it.
		d.FailCounts[sim.FailMismatch]++
	}
}

// Merge folds another distribution over the same ring size into d. Merging
// is commutative and associative (every field is a counter sum), which is
// what lets the trial engine accumulate into per-worker shards and still
// produce results identical to a sequential run.
func (d *Distribution) Merge(o *Distribution) error {
	if o == nil {
		return nil
	}
	if d.N != o.N {
		return fmt.Errorf("ring: merging distributions of different ring sizes %d and %d", d.N, o.N)
	}
	d.Trials += o.Trials
	d.Messages += o.Messages
	for j := range d.Counts {
		d.Counts[j] += o.Counts[j]
	}
	for r := range d.FailCounts {
		d.FailCounts[r] += o.FailCounts[r]
	}
	return nil
}

// Failures returns the total number of failed trials.
func (d *Distribution) Failures() int {
	total := 0
	for _, c := range d.FailCounts {
		total += c
	}
	return total
}

// WinRate returns the fraction of trials electing the given leader.
func (d *Distribution) WinRate(leader int64) float64 {
	if d.Trials == 0 {
		return 0
	}
	return float64(d.Counts[leader]) / float64(d.Trials)
}

// FailureRate returns the fraction of trials with outcome FAIL.
func (d *Distribution) FailureRate() float64 {
	if d.Trials == 0 {
		return 0
	}
	return float64(d.Failures()) / float64(d.Trials)
}

// MaxWin returns the most frequently elected leader and its win rate.
func (d *Distribution) MaxWin() (leader int64, rate float64) {
	best, bestCount := int64(0), -1
	for j := 1; j <= d.N; j++ {
		if d.Counts[j] > bestCount {
			best, bestCount = int64(j), d.Counts[j]
		}
	}
	return best, d.WinRate(best)
}

// String summarizes the distribution.
func (d *Distribution) String() string {
	leader, rate := d.MaxWin()
	return fmt.Sprintf("n=%d trials=%d fail=%.3f maxwin=%d@%.3f",
		d.N, d.Trials, d.FailureRate(), leader, rate)
}

// TrialOptions tunes a batch of trials run on the parallel engine. The zero
// value uses every CPU, the engine's default chunk size, and no early
// stopping; any setting yields the same distribution for a fixed seed.
type TrialOptions struct {
	// Workers is the worker count; 0 picks runtime.NumCPU().
	Workers int
	// Chunk is the engine chunk size; 0 picks engine.DefaultChunk.
	Chunk int
	// Stop, if non-nil, halts the batch early once the rule returns true
	// on a deterministic prefix of the distribution (see engine.Options).
	Stop func(prefix *Distribution) bool
	// Progress, if non-nil, receives each deterministic chunk-ordered
	// prefix of the accumulating distribution as the batch runs (see
	// engine.Options.Observe). The callback must not retain prefix. The
	// field name matches scenario.Opts.Progress — every options struct on
	// the batch path spells this hook the same way.
	Progress func(prefix *Distribution, trials int)
	// Arenas, if non-nil, draws worker arenas from a shared pool so
	// simulation workspaces persist across batches (see engine.ArenaPool).
	Arenas *engine.ArenaPool
}

// engineOptions lowers TrialOptions onto the engine.
func (o TrialOptions) engineOptions() engine.Options[*Distribution] {
	opts := engine.Options[*Distribution]{
		Workers: o.Workers,
		Chunk:   o.Chunk,
		Observe: o.Progress,
		Arenas:  o.Arenas,
	}
	if o.Stop != nil {
		stop := o.Stop
		opts.Stop = func(prefix *Distribution, _ int) bool { return stop(prefix) }
	}
	return opts
}

// distSink is the engine sink accumulating into per-worker Distributions.
func distSink(n int) engine.Sink[*Distribution] {
	return engine.Sink[*Distribution]{
		New: func() *Distribution { return NewDistribution(n) },
		Add: func(d *Distribution, res sim.Result) { d.Add(res) },
		// Merge cannot fail: every shard is built for the same n.
		Merge: func(dst, src *Distribution) { _ = dst.Merge(src) },
	}
}

// StopWhenResolved returns a TrialOptions.Stop rule that halts a batch once
// the max-win rate — the empirical ε estimate of Definition 2.3 — is
// resolved: its Wilson score interval at the given z (1.96 for 95%) is
// narrower than halfWidth on both sides, after at least minTrials trials.
func StopWhenResolved(halfWidth float64, minTrials int, z float64) func(*Distribution) bool {
	return func(d *Distribution) bool {
		if d.Trials < minTrials {
			return false
		}
		leader, rate := d.MaxWin()
		lo, hi := stats.WilsonInterval(d.Counts[leader], d.Trials, z)
		return rate-lo < halfWidth && hi-rate < halfWidth
	}
}

// TrialSeed derives the seed of trial t of a batch from the base seed.
// Every honest trial batch — ring.Trials and the scenario registry alike —
// shares this derivation, which is what lets a registry run reproduce a
// TrialsOpts batch bit-for-bit.
func TrialSeed(base int64, t int) int64 {
	return int64(sim.Mix64(uint64(base), uint64(t)+0x1234))
}

// SchedulerFor supplies the scheduler for one trial of a batched run: t is
// the trial index, trialSeed its derived seed, and arena the calling
// worker's arena (per-trial random schedulers recycle through it, see
// sim.Arena.RandomScheduler). The scenario registry threads its scheduler
// kinds through this hook; a nil SchedulerFor reuses the spec's own
// Scheduler for every trial.
type SchedulerFor func(t int, trialSeed int64, arena *sim.Arena) (sim.Scheduler, error)

// HonestChunkJob returns the batched engine job running honest trials of the
// spec: trial t runs with seed TrialSeed(spec.Seed, t) and the scheduler
// chosen by schedFor (nil = spec.Scheduler throughout). When the protocol is
// Batchable and the spec carries no Deviation, the strategy vector is built
// and validated once per work-claim chunk and re-initialized in place for
// every trial — the per-trial construction cost of a Job-based batch
// disappears, with bit-identical outcomes. Other specs fall back to
// per-trial RunArena inside the chunk.
func HonestChunkJob(spec Spec, schedFor SchedulerFor) engine.ChunkJob {
	return engine.ChunkFunc(func(start, end int, arena *sim.Arena, add func(sim.Result)) (int, error) {
		if !Batchable(spec.Protocol) || spec.Deviation != nil {
			for t := start; t < end; t++ {
				trialSpec := spec
				trialSpec.Seed = TrialSeed(spec.Seed, t)
				if schedFor != nil {
					sched, err := schedFor(t, trialSpec.Seed, arena)
					if err != nil {
						return t, err
					}
					trialSpec.Scheduler = sched
				}
				res, err := RunArena(trialSpec, arena)
				if err != nil {
					return t, fmt.Errorf("trial %d: %w", t, err)
				}
				add(res)
			}
			return 0, nil
		}
		// Batched fast path: validate once, build the strategy vector once,
		// and let Init (total reset, the BatchSafe contract) refresh it for
		// each trial of the chunk.
		strategies, err := honestStrategies(spec)
		if err != nil {
			return start, fmt.Errorf("trial %d: %w", start, err)
		}
		for t := start; t < end; t++ {
			ts := TrialSeed(spec.Seed, t)
			sched := spec.Scheduler
			if schedFor != nil {
				if sched, err = schedFor(t, ts, arena); err != nil {
					return t, err
				}
			}
			res, err := arena.Run(sim.Config{
				Strategies: strategies,
				Edges:      arena.RingEdges(spec.N),
				Seed:       ts,
				Scheduler:  sched,
				Tracer:     spec.Tracer,
				StepLimit:  spec.StepLimit,
			})
			if err != nil {
				return t, fmt.Errorf("trial %d: %w", t, err)
			}
			add(res)
		}
		return 0, nil
	})
}

// honestStrategies validates the spec and builds its honest strategy vector,
// with exactly RunArena's checks and error texts.
func honestStrategies(spec Spec) ([]sim.Strategy, error) {
	if spec.N < 2 {
		return nil, fmt.Errorf("ring: need n ≥ 2, got %d", spec.N)
	}
	if spec.Protocol == nil {
		return nil, errors.New("ring: nil protocol")
	}
	strategies, err := spec.Protocol.Strategies(spec.N)
	if err != nil {
		return nil, fmt.Errorf("ring: %s strategies: %w", spec.Protocol.Name(), err)
	}
	if len(strategies) != spec.N {
		return nil, fmt.Errorf("ring: protocol %s returned %d strategies for n=%d",
			spec.Protocol.Name(), len(strategies), spec.N)
	}
	return strategies, nil
}

// Trials runs the given spec repeatedly with derived seeds and aggregates
// the outcomes. The spec's Seed field acts as the base seed; trial t runs
// with an independently mixed seed, so trials are decorrelated but the whole
// batch is reproducible. Trials run in parallel on every CPU; use
// TrialsOpts to tune workers, cancellation, or early stopping. A spec
// carrying a Scheduler or Tracer is pinned to one worker: those are
// typically stateful across executions and not safe to share.
func Trials(spec Spec, trials int) (*Distribution, error) {
	return TrialsOpts(context.Background(), spec, trials, TrialOptions{})
}

// TrialsOpts is Trials with a context and engine options. Specs with a
// Scheduler, Tracer, or Deviation run on a single worker regardless of
// opts.Workers: the interfaces make no concurrency promise, and a
// Deviation's strategy objects are shared across every trial of the batch
// (they must therefore fully re-establish their state in Init — prefer
// AttackTrials, which plans a fresh deviation per trial). Everything else
// in the batch is safe to shard because each trial runs on its worker's
// private arena, whose recycled network reproduces a fresh one
// bit-for-bit. The batch runs chunked (engine.RunBatch): Batchable
// protocols reuse one strategy vector per chunk.
func TrialsOpts(ctx context.Context, spec Spec, trials int, opts TrialOptions) (*Distribution, error) {
	if spec.Scheduler != nil || spec.Tracer != nil || spec.Deviation != nil {
		opts.Workers = 1
	}
	return engine.RunBatch(ctx, trials, HonestChunkJob(spec, nil), distSink(spec.N), opts.engineOptions())
}

// PlanError marks a per-trial attack planning failure inside a trial
// batch: the attack's Plan rejected the configuration for one trial seed.
// Callers that sweep attack configurations (the equilibrium certifier)
// unwrap it with errors.As to tell "this candidate is infeasible" apart
// from genuine execution failures, which must not be swallowed.
type PlanError struct {
	// Attack and N identify the rejected plan.
	Attack string
	N      int
	// Err is the planner's error.
	Err error
}

// Error implements error.
func (e *PlanError) Error() string { return fmt.Sprintf("plan %s (n=%d): %v", e.Attack, e.N, e.Err) }

// Unwrap exposes the planner's error.
func (e *PlanError) Unwrap() error { return e.Err }

// AttackSpec describes one attack-trial configuration: the batched
// counterpart of Spec, naming the pieces AttackTrials used to take
// positionally. The zero value is not runnable — N, Protocol and Attack are
// required; Target and Seed default to 0 like their Spec counterparts.
type AttackSpec struct {
	// N is the ring size.
	N int
	// Protocol provides the honest strategies the coalition deviates from.
	Protocol Protocol
	// Attack plans the per-trial deviation.
	Attack Attack
	// Target is the leader the coalition tries to force.
	Target int64
	// Seed is the batch's base seed; trial t plans and runs with an
	// independently mixed per-trial seed.
	Seed int64
}

// RunAttackTrials plans the attack once per trial (attacks may randomize
// placement from the trial seed) and aggregates outcomes over the batch.
// The batch runs chunked on the parallel engine (AttackChunkJob): when the
// protocol is Batchable, the honest strategy vector is built once per chunk
// and each trial's freshly planned deviation is overlaid on a per-worker
// copy, so only the coalition's own strategy objects are constructed per
// trial. The zero TrialOptions uses every CPU with no early stopping; any
// options yield the same distribution for a fixed spec.
func RunAttackTrials(ctx context.Context, spec AttackSpec, trials int, opts TrialOptions) (*Distribution, error) {
	job := AttackChunkJob(spec.N, spec.Protocol, spec.Attack, spec.Target, spec.Seed)
	return engine.RunBatch(ctx, trials, job, distSink(spec.N), opts.engineOptions())
}

// AttackTrials runs an attack batch with default options.
//
// Deprecated: use RunAttackTrials with an AttackSpec; this positional form
// is retained only so recorded experiment goldens keep their call sites. It
// is a thin wrapper with bit-identical results.
func AttackTrials(n int, protocol Protocol, attack Attack, target int64, baseSeed int64, trials int) (*Distribution, error) {
	return RunAttackTrials(context.Background(),
		AttackSpec{N: n, Protocol: protocol, Attack: attack, Target: target, Seed: baseSeed},
		trials, TrialOptions{})
}

// AttackTrialsOpts is AttackTrials with a context and engine options.
//
// Deprecated: use RunAttackTrials with an AttackSpec; this positional form
// is retained only so recorded experiment goldens keep their call sites. It
// is a thin wrapper with bit-identical results.
func AttackTrialsOpts(ctx context.Context, n int, protocol Protocol, attack Attack, target int64, baseSeed int64, trials int, opts TrialOptions) (*Distribution, error) {
	return RunAttackTrials(ctx,
		AttackSpec{N: n, Protocol: protocol, Attack: attack, Target: target, Seed: baseSeed},
		trials, opts)
}

// AttackChunkJob returns the batched engine job behind AttackTrialsOpts:
// trial t plans the attack with its derived seed and runs it against the
// protocol. Exposing the job lets remote claimants (the fleet's worker
// nodes) run arbitrary sub-ranges of an attack batch through
// engine.RunRange with bit-identical per-trial outcomes.
func AttackChunkJob(n int, protocol Protocol, attack Attack, target int64, baseSeed int64) engine.ChunkJob {
	return engine.ChunkFunc(func(start, end int, arena *sim.Arena, add func(sim.Result)) (int, error) {
		var honest []sim.Strategy
		if Batchable(protocol) {
			var err error
			if honest, err = honestStrategies(Spec{N: n, Protocol: protocol}); err != nil {
				return start, fmt.Errorf("trial %d: %w", start, err)
			}
		}
		for t := start; t < end; t++ {
			seed := int64(sim.Mix64(uint64(baseSeed), uint64(t)+0x9e37))
			dev, err := attack.Plan(n, target, seed)
			if err != nil {
				return t, &PlanError{Attack: attack.Name(), N: n, Err: err}
			}
			if honest == nil {
				res, err := RunArena(Spec{N: n, Protocol: protocol, Deviation: dev, Seed: seed}, arena)
				if err != nil {
					return t, fmt.Errorf("trial %d: %w", t, err)
				}
				add(res)
				continue
			}
			if err := dev.Validate(n); err != nil {
				return t, fmt.Errorf("trial %d: %w", t, err)
			}
			strategies := arena.Strategies(n)
			copy(strategies, honest)
			for p, s := range dev.Strategies {
				strategies[p-1] = s
			}
			res, err := arena.Run(sim.Config{
				Strategies: strategies,
				Edges:      arena.RingEdges(n),
				Seed:       seed,
			})
			if err != nil {
				return t, fmt.Errorf("trial %d: %w", t, err)
			}
			add(res)
		}
		return 0, nil
	})
}
