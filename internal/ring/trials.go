package ring

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Distribution aggregates outcomes over many independent trials of one
// configuration. It is the raw material for every bias estimate in the
// experiment suite.
type Distribution struct {
	// N is the ring size.
	N int
	// Trials is the number of executions aggregated.
	Trials int
	// Counts[j] is the number of trials electing leader j (index 0 unused).
	Counts []int
	// FailCounts[r] is the number of trials failing with reason r.
	FailCounts [5]int
	// Messages is the total number of delivered messages over all trials.
	Messages int
}

// NewDistribution returns an empty distribution for ring size n.
func NewDistribution(n int) *Distribution {
	return &Distribution{N: n, Counts: make([]int, n+1)}
}

// Add records one execution result.
func (d *Distribution) Add(res sim.Result) {
	d.Trials++
	d.Messages += res.Delivered
	if res.Failed {
		d.FailCounts[res.Reason]++
		return
	}
	if res.Output >= 1 && res.Output <= int64(d.N) {
		d.Counts[res.Output]++
	} else {
		// A valid-but-out-of-range output counts as a mismatchy failure;
		// honest protocols never produce it.
		d.FailCounts[sim.FailMismatch]++
	}
}

// Merge folds another distribution over the same ring size into d. Merging
// is commutative and associative (every field is a counter sum), which is
// what lets the trial engine accumulate into per-worker shards and still
// produce results identical to a sequential run.
func (d *Distribution) Merge(o *Distribution) error {
	if o == nil {
		return nil
	}
	if d.N != o.N {
		return fmt.Errorf("ring: merging distributions of different ring sizes %d and %d", d.N, o.N)
	}
	d.Trials += o.Trials
	d.Messages += o.Messages
	for j := range d.Counts {
		d.Counts[j] += o.Counts[j]
	}
	for r := range d.FailCounts {
		d.FailCounts[r] += o.FailCounts[r]
	}
	return nil
}

// Failures returns the total number of failed trials.
func (d *Distribution) Failures() int {
	total := 0
	for _, c := range d.FailCounts {
		total += c
	}
	return total
}

// WinRate returns the fraction of trials electing the given leader.
func (d *Distribution) WinRate(leader int64) float64 {
	if d.Trials == 0 {
		return 0
	}
	return float64(d.Counts[leader]) / float64(d.Trials)
}

// FailureRate returns the fraction of trials with outcome FAIL.
func (d *Distribution) FailureRate() float64 {
	if d.Trials == 0 {
		return 0
	}
	return float64(d.Failures()) / float64(d.Trials)
}

// MaxWin returns the most frequently elected leader and its win rate.
func (d *Distribution) MaxWin() (leader int64, rate float64) {
	best, bestCount := int64(0), -1
	for j := 1; j <= d.N; j++ {
		if d.Counts[j] > bestCount {
			best, bestCount = int64(j), d.Counts[j]
		}
	}
	return best, d.WinRate(best)
}

// String summarizes the distribution.
func (d *Distribution) String() string {
	leader, rate := d.MaxWin()
	return fmt.Sprintf("n=%d trials=%d fail=%.3f maxwin=%d@%.3f",
		d.N, d.Trials, d.FailureRate(), leader, rate)
}

// TrialOptions tunes a batch of trials run on the parallel engine. The zero
// value uses every CPU, the engine's default chunk size, and no early
// stopping; any setting yields the same distribution for a fixed seed.
type TrialOptions struct {
	// Workers is the worker count; 0 picks runtime.NumCPU().
	Workers int
	// Chunk is the engine chunk size; 0 picks engine.DefaultChunk.
	Chunk int
	// Stop, if non-nil, halts the batch early once the rule returns true
	// on a deterministic prefix of the distribution (see engine.Options).
	Stop func(prefix *Distribution) bool
	// Observe, if non-nil, receives each deterministic chunk-ordered
	// prefix of the accumulating distribution as the batch runs (see
	// engine.Options.Observe). The callback must not retain prefix.
	Observe func(prefix *Distribution, trials int)
	// Arenas, if non-nil, draws worker arenas from a shared pool so
	// simulation workspaces persist across batches (see engine.ArenaPool).
	Arenas *engine.ArenaPool
}

// engineOptions lowers TrialOptions onto the engine.
func (o TrialOptions) engineOptions() engine.Options[*Distribution] {
	opts := engine.Options[*Distribution]{
		Workers: o.Workers,
		Chunk:   o.Chunk,
		Observe: o.Observe,
		Arenas:  o.Arenas,
	}
	if o.Stop != nil {
		stop := o.Stop
		opts.Stop = func(prefix *Distribution, _ int) bool { return stop(prefix) }
	}
	return opts
}

// distSink is the engine sink accumulating into per-worker Distributions.
func distSink(n int) engine.Sink[*Distribution] {
	return engine.Sink[*Distribution]{
		New: func() *Distribution { return NewDistribution(n) },
		Add: func(d *Distribution, res sim.Result) { d.Add(res) },
		// Merge cannot fail: every shard is built for the same n.
		Merge: func(dst, src *Distribution) { _ = dst.Merge(src) },
	}
}

// StopWhenResolved returns a TrialOptions.Stop rule that halts a batch once
// the max-win rate — the empirical ε estimate of Definition 2.3 — is
// resolved: its Wilson score interval at the given z (1.96 for 95%) is
// narrower than halfWidth on both sides, after at least minTrials trials.
func StopWhenResolved(halfWidth float64, minTrials int, z float64) func(*Distribution) bool {
	return func(d *Distribution) bool {
		if d.Trials < minTrials {
			return false
		}
		leader, rate := d.MaxWin()
		lo, hi := stats.WilsonInterval(d.Counts[leader], d.Trials, z)
		return rate-lo < halfWidth && hi-rate < halfWidth
	}
}

// TrialSeed derives the seed of trial t of a batch from the base seed.
// Every honest trial batch — ring.Trials and the scenario registry alike —
// shares this derivation, which is what lets a registry run reproduce a
// TrialsOpts batch bit-for-bit.
func TrialSeed(base int64, t int) int64 {
	return int64(sim.Mix64(uint64(base), uint64(t)+0x1234))
}

// Trials runs the given spec repeatedly with derived seeds and aggregates
// the outcomes. The spec's Seed field acts as the base seed; trial t runs
// with an independently mixed seed, so trials are decorrelated but the whole
// batch is reproducible. Trials run in parallel on every CPU; use
// TrialsOpts to tune workers, cancellation, or early stopping. A spec
// carrying a Scheduler or Tracer is pinned to one worker: those are
// typically stateful across executions and not safe to share.
func Trials(spec Spec, trials int) (*Distribution, error) {
	return TrialsOpts(context.Background(), spec, trials, TrialOptions{})
}

// TrialsOpts is Trials with a context and engine options. Specs with a
// Scheduler, Tracer, or Deviation run on a single worker regardless of
// opts.Workers: the interfaces make no concurrency promise, and a
// Deviation's strategy objects are shared across every trial of the batch
// (they must therefore fully re-establish their state in Init — prefer
// AttackTrials, which plans a fresh deviation per trial). Everything else
// in the batch is safe to shard because each trial runs on its worker's
// private arena, whose recycled network reproduces a fresh one
// bit-for-bit.
func TrialsOpts(ctx context.Context, spec Spec, trials int, opts TrialOptions) (*Distribution, error) {
	if spec.Scheduler != nil || spec.Tracer != nil || spec.Deviation != nil {
		opts.Workers = 1
	}
	job := engine.JobFunc(func(t int, arena *sim.Arena) (sim.Result, error) {
		trialSpec := spec
		trialSpec.Seed = TrialSeed(spec.Seed, t)
		res, err := RunArena(trialSpec, arena)
		if err != nil {
			return sim.Result{}, fmt.Errorf("trial %d: %w", t, err)
		}
		return res, nil
	})
	return engine.Run(ctx, trials, job, distSink(spec.N), opts.engineOptions())
}

// PlanError marks a per-trial attack planning failure inside a trial
// batch: the attack's Plan rejected the configuration for one trial seed.
// Callers that sweep attack configurations (the equilibrium certifier)
// unwrap it with errors.As to tell "this candidate is infeasible" apart
// from genuine execution failures, which must not be swallowed.
type PlanError struct {
	// Attack and N identify the rejected plan.
	Attack string
	N      int
	// Err is the planner's error.
	Err error
}

// Error implements error.
func (e *PlanError) Error() string { return fmt.Sprintf("plan %s (n=%d): %v", e.Attack, e.N, e.Err) }

// Unwrap exposes the planner's error.
func (e *PlanError) Unwrap() error { return e.Err }

// AttackTrials plans the attack once per trial (attacks may randomize
// placement from the trial seed) and aggregates outcomes. Trials run in
// parallel on every CPU; use AttackTrialsOpts to tune workers,
// cancellation, or early stopping.
func AttackTrials(n int, protocol Protocol, attack Attack, target int64, baseSeed int64, trials int) (*Distribution, error) {
	return AttackTrialsOpts(context.Background(), n, protocol, attack, target, baseSeed, trials, TrialOptions{})
}

// AttackTrialsOpts is AttackTrials with a context and engine options.
func AttackTrialsOpts(ctx context.Context, n int, protocol Protocol, attack Attack, target int64, baseSeed int64, trials int, opts TrialOptions) (*Distribution, error) {
	job := engine.JobFunc(func(t int, arena *sim.Arena) (sim.Result, error) {
		seed := int64(sim.Mix64(uint64(baseSeed), uint64(t)+0x9e37))
		dev, err := attack.Plan(n, target, seed)
		if err != nil {
			return sim.Result{}, &PlanError{Attack: attack.Name(), N: n, Err: err}
		}
		res, err := RunArena(Spec{N: n, Protocol: protocol, Deviation: dev, Seed: seed}, arena)
		if err != nil {
			return sim.Result{}, fmt.Errorf("trial %d: %w", t, err)
		}
		return res, nil
	})
	return engine.Run(ctx, trials, job, distSink(n), opts.engineOptions())
}
