package ring

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// randomDistribution builds a distribution with arbitrary but reproducible
// contents.
func randomDistribution(n int, seed uint64, trials int) *Distribution {
	d := NewDistribution(n)
	for t := 0; t < trials; t++ {
		h := sim.Mix64(seed, uint64(t))
		res := sim.Result{Output: int64(h%uint64(n+2)) - 1, Delivered: int(h % 31)}
		if h%7 == 0 {
			res = sim.Result{Failed: true, Reason: sim.FailReason(1 + h%4), Delivered: res.Delivered}
		}
		d.Add(res)
	}
	return d
}

func TestMergeCommutative(t *testing.T) {
	a1, b1 := randomDistribution(6, 1, 40), randomDistribution(6, 2, 60)
	a2, b2 := randomDistribution(6, 1, 40), randomDistribution(6, 2, 60)
	if err := a1.Merge(b1); err != nil {
		t.Fatal(err)
	}
	if err := b2.Merge(a2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, b2) {
		t.Errorf("a⊕b != b⊕a:\n%+v\n%+v", a1, b2)
	}
}

func TestMergeAssociative(t *testing.T) {
	mk := func() (x, y, z *Distribution) {
		return randomDistribution(5, 3, 30), randomDistribution(5, 4, 50), randomDistribution(5, 5, 20)
	}
	// (x ⊕ y) ⊕ z
	x1, y1, z1 := mk()
	if err := x1.Merge(y1); err != nil {
		t.Fatal(err)
	}
	if err := x1.Merge(z1); err != nil {
		t.Fatal(err)
	}
	// x ⊕ (y ⊕ z)
	x2, y2, z2 := mk()
	if err := y2.Merge(z2); err != nil {
		t.Fatal(err)
	}
	if err := x2.Merge(y2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(x1, x2) {
		t.Errorf("(x⊕y)⊕z != x⊕(y⊕z):\n%+v\n%+v", x1, x2)
	}
}

func TestMergeIdentityAndErrors(t *testing.T) {
	d := randomDistribution(4, 9, 25)
	snapshot := *d
	if err := d.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Merge(NewDistribution(4)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*d, snapshot) {
		t.Error("merging nil and an empty distribution changed the receiver")
	}
	if err := d.Merge(NewDistribution(5)); err == nil {
		t.Error("merging different ring sizes succeeded")
	}
}

// sequentialTrials is the pre-engine ring.Trials loop, kept verbatim as the
// determinism ground truth: engine-backed runs must reproduce it bit for
// bit at every worker count.
func sequentialTrials(spec Spec, trials int) (*Distribution, error) {
	dist := NewDistribution(spec.N)
	for t := 0; t < trials; t++ {
		trialSpec := spec
		trialSpec.Seed = int64(sim.Mix64(uint64(spec.Seed), uint64(t)+0x1234))
		res, err := Run(trialSpec)
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", t, err)
		}
		dist.Add(res)
	}
	return dist, nil
}

// sequentialAttackTrials is the pre-engine ring.AttackTrials loop.
func sequentialAttackTrials(n int, protocol Protocol, attack Attack, target int64, baseSeed int64, trials int) (*Distribution, error) {
	dist := NewDistribution(n)
	for t := 0; t < trials; t++ {
		seed := int64(sim.Mix64(uint64(baseSeed), uint64(t)+0x9e37))
		dev, err := attack.Plan(n, target, seed)
		if err != nil {
			return nil, fmt.Errorf("plan %s (n=%d): %w", attack.Name(), n, err)
		}
		res, err := Run(Spec{N: n, Protocol: protocol, Deviation: dev, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", t, err)
		}
		dist.Add(res)
	}
	return dist, nil
}

func TestTrialsMatchSequentialBaselineAtAnyWorkerCount(t *testing.T) {
	spec := Spec{N: 8, Protocol: testProto{}, Seed: 424242}
	const trials = 600
	want, err := sequentialTrials(spec, trials)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		got, err := TrialsOpts(context.Background(), spec, trials, TrialOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: engine distribution differs from sequential baseline\ngot  %v\nwant %v",
				workers, got, want)
		}
	}
}

func TestAttackTrialsMatchSequentialBaselineAtAnyWorkerCount(t *testing.T) {
	const (
		n      = 8
		target = 3
		seed   = 77
		trials = 400
	)
	want, err := sequentialAttackTrials(n, testProto{}, fixedAttack{}, target, seed, trials)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		got, err := AttackTrialsOpts(context.Background(), n, testProto{}, fixedAttack{}, target, seed, trials,
			TrialOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: engine distribution differs from sequential baseline", workers)
		}
	}
}

func TestTrialsAdaptiveStopIsDeterministic(t *testing.T) {
	spec := Spec{N: 8, Protocol: testProto{}, Seed: 5}
	const trials = 2000
	stop := StopWhenResolved(0.05, 200, 1.96)
	var want *Distribution
	for _, workers := range []int{1, 4, 8} {
		got, err := TrialsOpts(context.Background(), spec, trials,
			TrialOptions{Workers: workers, Stop: stop})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
			if got.Trials >= trials {
				t.Logf("stop rule never fired (%d trials) — still checking determinism", got.Trials)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: adaptive distribution differs from workers=1 run", workers)
		}
	}
}

func TestTrialsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := TrialsOpts(ctx, Spec{N: 8, Protocol: testProto{}, Seed: 1}, 1000, TrialOptions{Workers: 2})
	if err == nil {
		t.Fatal("cancelled context did not abort the batch")
	}
}
