package ring

import "testing"

// FuzzRingArith checks the residue-alphabet invariants every ring protocol
// builds on: Mod lands in [0, n) for any input (including negatives and the
// int64 extremes), LeaderFromSum lands in [1..n], and SumForLeader is its
// exact inverse.
func FuzzRingArith(f *testing.F) {
	f.Add(int64(0), uint16(0))
	f.Add(int64(-1), uint16(1))
	f.Add(int64(1<<62), uint16(1023))
	f.Add(int64(-1)<<62, uint16(7))
	f.Add(int64(9223372036854775807), uint16(65535))
	f.Add(int64(-9223372036854775808), uint16(2))
	f.Fuzz(func(t *testing.T, v int64, rawN uint16) {
		n := int(rawN)%4096 + 2

		m := Mod(v, n)
		if m < 0 || m >= int64(n) {
			t.Fatalf("Mod(%d, %d) = %d outside [0, %d)", v, n, m, n)
		}
		if again := Mod(m, n); again != m {
			t.Fatalf("Mod is not idempotent: Mod(%d, %d) = %d", m, n, again)
		}
		// Reduction agrees with pre-reducing by the native remainder.
		if other := Mod(v%int64(n), n); other != m {
			t.Fatalf("Mod(%d, %d) = %d but Mod(%d %% n, n) = %d", v, n, m, v, other)
		}
		// Shifting by one modulus does not change the residue (stay away
		// from the int64 edges to avoid overflow in the test itself).
		if v < 1<<62-int64(n) && v > -(1<<62)+int64(n) {
			if shifted := Mod(v+int64(n), n); shifted != m {
				t.Fatalf("Mod(%d+n, %d) = %d, want %d", v, n, shifted, m)
			}
		}

		leader := LeaderFromSum(v, n)
		if leader < 1 || leader > int64(n) {
			t.Fatalf("LeaderFromSum(%d, %d) = %d outside [1, %d]", v, n, leader, n)
		}
		if LeaderFromSum(SumForLeader(leader, n), n) != leader {
			t.Fatalf("SumForLeader is not inverse at leader %d, n=%d", leader, n)
		}
		if SumForLeader(leader, n) != m {
			t.Fatalf("SumForLeader(LeaderFromSum(%d)) = %d, want the residue %d", v, SumForLeader(leader, n), m)
		}
	})
}
