package ring

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestDistributionAccounting(t *testing.T) {
	d := NewDistribution(4)
	d.Add(sim.Result{Output: 2, Delivered: 10})
	d.Add(sim.Result{Output: 2, Delivered: 10})
	d.Add(sim.Result{Output: 4, Delivered: 10})
	d.Add(sim.Result{Failed: true, Reason: sim.FailAbort, Delivered: 5})
	d.Add(sim.Result{Failed: true, Reason: sim.FailMismatch, Delivered: 5})
	d.Add(sim.Result{Output: 99}) // out of range: counted as mismatch

	if d.Trials != 6 {
		t.Errorf("trials = %d", d.Trials)
	}
	if d.Messages != 40 {
		t.Errorf("messages = %d", d.Messages)
	}
	if d.Failures() != 3 {
		t.Errorf("failures = %d, want 3 (abort + mismatch + out-of-range)", d.Failures())
	}
	if got := d.WinRate(2); got != 2.0/6 {
		t.Errorf("WinRate(2) = %v", got)
	}
	if got := d.FailureRate(); got != 0.5 {
		t.Errorf("FailureRate = %v", got)
	}
	leader, rate := d.MaxWin()
	if leader != 2 || rate != 2.0/6 {
		t.Errorf("MaxWin = (%d, %v)", leader, rate)
	}
	if s := d.String(); !strings.Contains(s, "n=4") || !strings.Contains(s, "maxwin=2") {
		t.Errorf("String() = %q", s)
	}
}

func TestEmptyDistributionIsSafe(t *testing.T) {
	d := NewDistribution(3)
	if d.WinRate(1) != 0 || d.FailureRate() != 0 {
		t.Error("empty distribution rates nonzero")
	}
	if _, rate := d.MaxWin(); rate != 0 {
		t.Error("empty distribution max win nonzero")
	}
}

func TestMaxDistance(t *testing.T) {
	if got := MaxDistance([]sim.ProcID{2, 5, 9}, 10); got != 3 {
		t.Errorf("MaxDistance = %d, want 3 (the wrap 9→2 spans 10,1)", got)
	}
	if got := MaxDistance([]sim.ProcID{6}, 10); got != 9 {
		t.Errorf("single member MaxDistance = %d, want 9", got)
	}
}

// errorProto always fails to build strategies.
type errorProto struct{}

func (errorProto) Name() string                           { return "error" }
func (errorProto) Strategies(int) ([]sim.Strategy, error) { return nil, errors.New("boom") }

// shortProto returns the wrong number of strategies.
type shortProto struct{}

func (shortProto) Name() string { return "short" }
func (shortProto) Strategies(n int) ([]sim.Strategy, error) {
	return make([]sim.Strategy, 1), nil
}

func TestRunErrorPaths(t *testing.T) {
	if _, err := Run(Spec{N: 1, Protocol: testProto{}}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Run(Spec{N: 4}); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := Run(Spec{N: 4, Protocol: errorProto{}}); err == nil {
		t.Error("strategy error not propagated")
	}
	if _, err := Run(Spec{N: 4, Protocol: shortProto{}}); err == nil {
		t.Error("wrong strategy count accepted")
	}
	bad := &Deviation{Coalition: []sim.ProcID{9}}
	if _, err := Run(Spec{N: 4, Protocol: testProto{}, Deviation: bad}); err == nil {
		t.Error("invalid deviation accepted")
	}
}

// fixedAttack plants a noop deviation at position 2.
type fixedAttack struct{ fail bool }

func (fixedAttack) Name() string { return "fixed" }

func (a fixedAttack) Plan(n int, target int64, seed int64) (*Deviation, error) {
	if a.fail {
		return nil, errors.New("infeasible")
	}
	return &Deviation{
		Coalition:  []sim.ProcID{2},
		Strategies: map[sim.ProcID]sim.Strategy{2: passthrough{}},
	}, nil
}

// passthrough forwards and terminates like the testProto honest strategy.
type passthrough struct{}

func (passthrough) Init(*sim.Context) {}
func (passthrough) Receive(ctx *sim.Context, _ sim.ProcID, v int64) {
	ctx.Send(v)
	ctx.Terminate(v)
}

func TestAttackTrials(t *testing.T) {
	dist, err := AttackTrials(8, testProto{}, fixedAttack{}, 3, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Trials != 30 {
		t.Errorf("trials = %d", dist.Trials)
	}
	if _, err := AttackTrials(8, testProto{}, fixedAttack{fail: true}, 3, 5, 5); err == nil {
		t.Error("plan failure not propagated")
	}
}
