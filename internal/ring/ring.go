// Package ring runs fair-leader-election protocols and adversarial
// deviations on the asynchronous unidirectional ring, the central topology of
// the paper. It provides the protocol and attack abstractions shared by all
// protocol packages, coalition-placement helpers, and a trial harness that
// estimates outcome distributions.
package ring

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Protocol is a symmetric ring protocol: it assigns a strategy to every
// position of a ring of size n. Position 1 is the origin, the only processor
// that wakes up spontaneously.
//
// Trial batches run protocols in parallel (see Trials), so Strategies must
// be safe for concurrent calls: return fresh strategy values each time and
// do not memoize into shared mutable state. Every protocol in this
// repository is a stateless value type.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Strategies returns the honest strategy vector for a ring of size n.
	Strategies(n int) ([]sim.Strategy, error)
}

// Deviation is an adversarial deviation (Definition 2.2): a coalition of
// processors and the arbitrary strategies they run instead of the protocol.
// All other processors execute the protocol honestly.
type Deviation struct {
	// Coalition lists the adversaries' positions, strictly increasing.
	Coalition []sim.ProcID
	// Strategies maps each coalition member to its deviating strategy.
	Strategies map[sim.ProcID]sim.Strategy
}

// Validate checks internal consistency against a ring of size n.
func (d *Deviation) Validate(n int) error {
	if d == nil {
		return nil
	}
	if len(d.Coalition) == 0 {
		return errors.New("ring: empty coalition")
	}
	prev := sim.ProcID(0)
	for _, p := range d.Coalition {
		if p < 1 || int(p) > n {
			return fmt.Errorf("ring: coalition member %d out of range [1,%d]", p, n)
		}
		if p <= prev {
			return errors.New("ring: coalition not strictly increasing")
		}
		prev = p
		if d.Strategies[p] == nil {
			return fmt.Errorf("ring: no strategy for coalition member %d", p)
		}
	}
	return nil
}

// Attack plans an adversarial deviation against a protocol on a ring of size
// n, trying to force the election of target.
//
// AttackTrials plans attacks in parallel, so Plan must be safe for
// concurrent calls: derive all randomness from the seed argument and build
// a fresh Deviation each time, without mutating receiver state. Every
// attack in this repository is a stateless value type.
type Attack interface {
	// Name identifies the attack in reports.
	Name() string
	// Plan returns the deviation for one trial, or an error when no
	// placement of the attack's coalition is feasible for this n (e.g.
	// the cubic attack's distance inequalities have no solution). seed
	// lets attacks with randomized placement (Appendix C) draw their
	// coalition reproducibly; deterministic attacks ignore it.
	Plan(n int, target int64, seed int64) (*Deviation, error)
}

// Batchable reports whether the protocol's strategy vector can serve every
// trial of an engine chunk. A protocol opts in by declaring a `BatchSafe()`
// marker method, promising that each strategy's Init fully re-establishes its
// state — a reused object then behaves exactly like a fresh one, and the
// batched trial loop (see HonestChunkJob) skips per-trial vector
// construction without changing any outcome.
func Batchable(p Protocol) bool {
	_, ok := p.(interface{ BatchSafe() })
	return ok
}

// Spec describes one execution.
type Spec struct {
	// N is the ring size.
	N int
	// Protocol provides the honest strategies.
	Protocol Protocol
	// Deviation, if non-nil, overrides coalition positions.
	Deviation *Deviation
	// Seed drives all processor randomness.
	Seed int64
	// Scheduler defaults to FIFO (equivalent to any other on a ring).
	Scheduler sim.Scheduler
	// Tracer, if non-nil, observes the execution.
	Tracer sim.Tracer
	// StepLimit overrides the simulator's default delivery budget.
	StepLimit int
}

// Run executes one ring election and returns its result.
func Run(spec Spec) (sim.Result, error) {
	return RunArena(spec, nil)
}

// RunArena is Run on a recycled per-worker simulation arena: the network,
// the ring edge set, the per-processor PRNGs and the result buffers are all
// reused across calls, so a trial batch allocates little beyond the
// protocol's own strategy objects. A nil arena falls back to fresh
// allocations with an identical result. The returned Result may alias arena
// memory; it is invalidated by the arena's next run (sim.Result.Clone copies
// it out).
func RunArena(spec Spec, arena *sim.Arena) (sim.Result, error) {
	if spec.N < 2 {
		return sim.Result{}, fmt.Errorf("ring: need n ≥ 2, got %d", spec.N)
	}
	if spec.Protocol == nil {
		return sim.Result{}, errors.New("ring: nil protocol")
	}
	strategies, err := spec.Protocol.Strategies(spec.N)
	if err != nil {
		return sim.Result{}, fmt.Errorf("ring: %s strategies: %w", spec.Protocol.Name(), err)
	}
	if len(strategies) != spec.N {
		return sim.Result{}, fmt.Errorf("ring: protocol %s returned %d strategies for n=%d",
			spec.Protocol.Name(), len(strategies), spec.N)
	}
	if err := spec.Deviation.Validate(spec.N); err != nil {
		return sim.Result{}, err
	}
	if spec.Deviation != nil {
		for p, s := range spec.Deviation.Strategies {
			strategies[p-1] = s
		}
	}
	return arena.Run(sim.Config{
		Strategies: strategies,
		Edges:      arena.RingEdges(spec.N),
		Seed:       spec.Seed,
		Scheduler:  spec.Scheduler,
		Tracer:     spec.Tracer,
		StepLimit:  spec.StepLimit,
	})
}
