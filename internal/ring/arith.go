package ring

// Mod reduces v into the canonical residue range [0, n) even for negative v.
// All secret values and message payloads of the ring protocols live in this
// residue alphabet (the paper's [n] = {1..n}, shifted to {0..n−1} for clean
// modular arithmetic; the bijection is fixed by LeaderFromSum).
func Mod(v int64, n int) int64 {
	// On the hot path (every message a ring processor handles) v is a sum
	// or difference of values already in [0, n), so [0, 2n) and [−n, 0)
	// cover nearly every call; both avoid the int64 division. Arbitrary
	// payloads (adversaries may send anything) take the general reduction.
	m := int64(n)
	switch {
	case v >= 0 && v < m:
		return v
	case v >= m && v < 2*m:
		return v - m
	case v < 0 && v >= -m:
		return v + m
	}
	r := v % m
	if r < 0 {
		r += m
	}
	return r
}

// LeaderFromSum maps a residue sum to the elected leader id in [1..n].
func LeaderFromSum(sum int64, n int) int64 {
	return Mod(sum, n) + 1
}

// SumForLeader is the inverse of LeaderFromSum: the residue an attacker must
// force the total sum to, so that the given leader is elected.
func SumForLeader(leader int64, n int) int64 {
	return Mod(leader-1, n)
}
