package ring

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Distances returns the honest-segment lengths (l_1..l_k) of a coalition on
// a ring of size n (Definition 3.1): Distances(i) is the number of
// consecutive honest processors between coalition member i and the next
// coalition member clockwise. The coalition must be strictly increasing.
func Distances(coalition []sim.ProcID, n int) []int {
	k := len(coalition)
	dists := make([]int, k)
	for i := 0; i < k; i++ {
		next := coalition[(i+1)%k]
		cur := coalition[i]
		gap := int(next) - int(cur)
		if gap <= 0 {
			gap += n
		}
		dists[i] = gap - 1
	}
	return dists
}

// Segment returns the honest segment I_i following coalition member i: the
// ring positions strictly between coalition[i] and the next coalition member.
func Segment(coalition []sim.ProcID, i, n int) []sim.ProcID {
	dists := Distances(coalition, n)
	seg := make([]sim.ProcID, 0, dists[i])
	for j := 1; j <= dists[i]; j++ {
		pos := (int(coalition[i])-1+j)%n + 1
		seg = append(seg, sim.ProcID(pos))
	}
	return seg
}

// EqualSpaced places k coalition members at (approximately) equal distances
// on a ring of size n, starting after the origin so that the origin stays
// honest (as the attacks in Section 4 assume). Segment lengths differ by at
// most one.
func EqualSpaced(n, k int) ([]sim.ProcID, error) {
	if k < 1 || k >= n {
		return nil, fmt.Errorf("ring: cannot place %d adversaries on a ring of %d", k, n)
	}
	coalition := make([]sim.ProcID, k)
	for i := 0; i < k; i++ {
		// Positions 2..n spread evenly; position 1 (origin) stays honest.
		pos := 2 + (i*(n-1))/k
		coalition[i] = sim.ProcID(pos)
	}
	for i := 1; i < k; i++ {
		if coalition[i] <= coalition[i-1] {
			return nil, fmt.Errorf("ring: %d adversaries collide on a ring of %d", k, n)
		}
	}
	return coalition, nil
}

// FromDistances places a coalition realizing the given honest-segment
// lengths (l_1..l_k), starting at the given first position. The sum of
// distances must equal n−k. The origin (position 1) must stay honest, so
// first must be ≥ 2 and the layout must not wrap onto position 1.
func FromDistances(dists []int, n int, first sim.ProcID) ([]sim.ProcID, error) {
	k := len(dists)
	total := 0
	for _, d := range dists {
		if d < 0 {
			return nil, fmt.Errorf("ring: negative distance %d", d)
		}
		total += d
	}
	if total != n-k {
		return nil, fmt.Errorf("ring: distances sum to %d, want n−k = %d", total, n-k)
	}
	coalition := make([]sim.ProcID, k)
	pos := int(first)
	for i := 0; i < k; i++ {
		coalition[i] = sim.ProcID((pos-1)%n + 1)
		pos += dists[i] + 1
	}
	sort.Slice(coalition, func(i, j int) bool { return coalition[i] < coalition[j] })
	for i := 1; i < k; i++ {
		if coalition[i] == coalition[i-1] {
			return nil, fmt.Errorf("ring: coalition positions collide")
		}
	}
	for _, p := range coalition {
		if p == 1 {
			return nil, fmt.Errorf("ring: layout covers the origin")
		}
	}
	return coalition, nil
}

// RandomCoalition selects each non-origin processor independently with
// probability p, the randomized model of Appendix C. It returns the sorted
// coalition (possibly empty).
func RandomCoalition(n int, p float64, seed int64) []sim.ProcID {
	rng := sim.DeriveRand(seed, sim.ProcID(n)+7)
	var coalition []sim.ProcID
	for i := 2; i <= n; i++ {
		if rng.Float64() < p {
			coalition = append(coalition, sim.ProcID(i))
		}
	}
	return coalition
}

// MaxDistance returns the longest honest segment induced by the coalition.
func MaxDistance(coalition []sim.ProcID, n int) int {
	maxD := 0
	for _, d := range Distances(coalition, n) {
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}
