// Package syncnet implements the synchronous message-passing model and the
// two synchronous scenarios the paper contrasts against (Section 1.1):
// fair leader election on a synchronous fully connected network and on a
// synchronous ring, both resilient to coalitions of size n−1.
//
// Execution proceeds in lock-step rounds: every message sent in round r is
// delivered at the start of round r+1, so no processor's round-r message can
// depend on another's round-r message. That single property kills the
// rushing attacks that dominate the asynchronous setting — an adversary must
// commit its secret in round 1 knowing nothing — which is exactly why the
// paper's hard case is the asynchronous ring.
package syncnet

import (
	"errors"
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
)

// Message is a round-scoped message.
type Message struct {
	From  sim.ProcID
	To    sim.ProcID
	Value int64
}

// Action is what a processor does in one round.
type Action struct {
	// Send lists the messages to deliver next round.
	Send []Message
	// Done terminates the processor with Output (or ⊥ when Abort).
	Done   bool
	Abort  bool
	Output int64
}

// Processor is a synchronous strategy: a function of the round number and
// the messages delivered this round. Round 1 has an empty inbox.
type Processor interface {
	Step(round int, inbox []Message) Action
}

// Run executes processors in lock-step until all terminate or maxRounds is
// exceeded (which yields a stall failure, the synchronous analogue of
// running forever).
func Run(procs []Processor, maxRounds int) (sim.Result, error) {
	n := len(procs)
	if n == 0 {
		return sim.Result{}, errors.New("syncnet: no processors")
	}
	res := sim.Result{
		Outputs:  make([]int64, n+1),
		Statuses: make([]sim.Status, n+1),
	}
	for i := 1; i <= n; i++ {
		res.Statuses[i] = sim.StatusRunning
	}
	inboxes := make([][]Message, n+1)
	running := n
	for round := 1; round <= maxRounds && running > 0; round++ {
		next := make([][]Message, n+1)
		for i := 1; i <= n; i++ {
			if res.Statuses[i] != sim.StatusRunning {
				continue
			}
			act := procs[i-1].Step(round, inboxes[i])
			res.Delivered += len(inboxes[i])
			for _, m := range act.Send {
				if m.To < 1 || int(m.To) > n || m.To == sim.ProcID(i) {
					continue // sends outside the network vanish
				}
				m.From = sim.ProcID(i)
				next[m.To] = append(next[m.To], m)
				res.Steps++
			}
			if act.Done {
				running--
				if act.Abort {
					res.Statuses[i] = sim.StatusAborted
				} else {
					res.Statuses[i] = sim.StatusTerminated
					res.Outputs[i] = act.Output
				}
			}
		}
		inboxes = next
	}
	first := true
	var common int64
	for i := 1; i <= n; i++ {
		switch res.Statuses[i] {
		case sim.StatusAborted:
			res.Failed, res.Reason = true, sim.FailAbort
		case sim.StatusRunning:
			if !res.Failed {
				res.Failed, res.Reason = true, sim.FailStall
			}
		case sim.StatusTerminated:
			if first {
				common, first = res.Outputs[i], false
			} else if res.Outputs[i] != common && !res.Failed {
				res.Failed, res.Reason = true, sim.FailMismatch
			}
		}
	}
	if !res.Failed {
		res.Output = common
	}
	return res, nil
}

// CompleteLead is the synchronous fully-connected election: broadcast your
// secret in round 1, sum everything in round 2. Simultaneity makes it
// resilient to any n−1 processors — there is nothing to rush.
type CompleteLead struct {
	N    int
	Self sim.ProcID
	// Secret overrides the random draw when ≥ 0 (adversaries commit
	// blind constants; it cannot help them).
	Secret int64
	rng    interface{ Int63n(int64) int64 }
}

// NewCompleteLead builds the honest processor; seed derives its secret.
func NewCompleteLead(n int, self sim.ProcID, seed int64) *CompleteLead {
	return &CompleteLead{N: n, Self: self, Secret: -1, rng: sim.DeriveRand(seed, self)}
}

// Step implements Processor.
func (p *CompleteLead) Step(round int, inbox []Message) Action {
	switch round {
	case 1:
		secret := p.Secret
		if secret < 0 {
			secret = p.rng.Int63n(int64(p.N))
		}
		p.Secret = secret
		var out []Message
		for j := 1; j <= p.N; j++ {
			if sim.ProcID(j) != p.Self {
				out = append(out, Message{To: sim.ProcID(j), Value: secret})
			}
		}
		return Action{Send: out}
	case 2:
		if len(inbox) != p.N-1 {
			return Action{Done: true, Abort: true} // someone went silent
		}
		sum := p.Secret
		for _, m := range inbox {
			if m.Value < 0 || m.Value >= int64(p.N) {
				return Action{Done: true, Abort: true}
			}
			sum = ring.Mod(sum+m.Value, p.N)
		}
		return Action{Done: true, Output: ring.LeaderFromSum(sum, p.N)}
	default:
		return Action{Done: true, Abort: true}
	}
}

// RingSyncLead is the synchronous unidirectional ring election: in round r
// forward the value learned in round r−1; after n rounds everyone has all
// secrets. Tampering with a forwarded value splits the ring into disagreeing
// halves (FAIL), and withholding stalls it, so only the blind round-1 choice
// is free: resilient to n−1.
type RingSyncLead struct {
	N    int
	Self sim.ProcID
	// Secret as in CompleteLead; −1 draws uniformly.
	Secret int64
	// Tamper, when non-zero, is added to every forwarded value: the
	// deviation whose only effect is outcome FAIL.
	Tamper int64

	rng  interface{ Int63n(int64) int64 }
	sum  int64
	last int64
}

// NewRingSyncLead builds the honest ring processor.
func NewRingSyncLead(n int, self sim.ProcID, seed int64) *RingSyncLead {
	return &RingSyncLead{N: n, Self: self, Secret: -1, rng: sim.DeriveRand(seed, self)}
}

func (p *RingSyncLead) succ() sim.ProcID { return sim.ProcID(int(p.Self)%p.N + 1) }

// Step implements Processor.
func (p *RingSyncLead) Step(round int, inbox []Message) Action {
	if round == 1 {
		secret := p.Secret
		if secret < 0 {
			secret = p.rng.Int63n(int64(p.N))
		}
		p.Secret = secret
		p.sum = secret
		p.last = secret
		return Action{Send: []Message{{To: p.succ(), Value: secret}}}
	}
	if len(inbox) != 1 || int(inbox[0].From) != (int(p.Self)+p.N-2)%p.N+1 {
		return Action{Done: true, Abort: true} // lost lock-step
	}
	v := inbox[0].Value
	if v < 0 || v >= int64(p.N) {
		return Action{Done: true, Abort: true}
	}
	p.sum = ring.Mod(p.sum+v, p.N)
	p.last = ring.Mod(v+p.Tamper, p.N)
	if round == p.N {
		return Action{Done: true, Output: ring.LeaderFromSum(p.sum, p.N)}
	}
	return Action{Send: []Message{{To: p.succ(), Value: p.last}}}
}

// NewCompleteElection builds the full processor vector for one synchronous
// fully-connected election; adversaries (if any) occupy the last k positions
// and commit the blind constant 0.
func NewCompleteElection(n, k int, seed int64) ([]Processor, error) {
	if n < 2 || k < 0 || k >= n {
		return nil, fmt.Errorf("syncnet: bad configuration n=%d k=%d", n, k)
	}
	procs := make([]Processor, n)
	for i := 1; i <= n; i++ {
		p := NewCompleteLead(n, sim.ProcID(i), seed)
		if i > n-k {
			p.Secret = 0 // adversary: the best it can do is a constant
		}
		procs[i-1] = p
	}
	return procs, nil
}
