package syncnet

import (
	"testing"

	"repro/internal/sim"
)

func runComplete(t *testing.T, n, k int, seed int64) sim.Result {
	t.Helper()
	procs, err := NewCompleteElection(n, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(procs, n+4)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCompleteHonestSucceeds(t *testing.T) {
	for _, n := range []int{2, 5, 16, 40} {
		for seed := int64(0); seed < 4; seed++ {
			res := runComplete(t, n, 0, seed)
			if res.Failed {
				t.Fatalf("n=%d seed=%d: failed: %v", n, seed, res.Reason)
			}
			if res.Output < 1 || res.Output > int64(n) {
				t.Fatalf("leader %d out of range", res.Output)
			}
		}
	}
}

func TestCompleteResilientToNMinusOne(t *testing.T) {
	// n−1 colluders committing blind constants: the single honest secret
	// still makes the outcome uniform — the synchronous model's whole
	// point, contrasting with Basic-LEAD's async collapse (E1).
	const (
		n      = 8
		trials = 3000
	)
	counts := make([]int, n+1)
	for seed := int64(0); seed < trials; seed++ {
		res := runComplete(t, n, n-1, seed)
		if res.Failed {
			t.Fatalf("seed=%d: failed: %v", seed, res.Reason)
		}
		counts[res.Output]++
	}
	want := float64(trials) / n
	for j := 1; j <= n; j++ {
		if got := float64(counts[j]); got < want*0.7 || got > want*1.3 {
			t.Errorf("leader %d elected %v times under n−1 colluders, want ≈ %v", j, got, want)
		}
	}
}

func TestCompleteSilentAdversaryAborts(t *testing.T) {
	const n = 6
	procs, err := NewCompleteElection(n, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	procs[2] = silent{}
	res, err := Run(procs, n+4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("withholding not punished")
	}
}

type silent struct{}

func (silent) Step(int, []Message) Action { return Action{Done: true, Output: 1} }

func TestRingHonestSucceedsAndAgrees(t *testing.T) {
	for _, n := range []int{3, 7, 20} {
		for seed := int64(0); seed < 4; seed++ {
			procs := make([]Processor, n)
			for i := 1; i <= n; i++ {
				procs[i-1] = NewRingSyncLead(n, sim.ProcID(i), seed)
			}
			res, err := Run(procs, n+2)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed {
				t.Fatalf("n=%d seed=%d: failed: %v", n, seed, res.Reason)
			}
		}
	}
}

func TestRingTamperingFailsInsteadOfBiasing(t *testing.T) {
	// Altering a forwarded value splits the ring into disagreeing
	// halves: the deviation can only destroy the election, never steer
	// it — the synchronous ring's n−1 resilience in action.
	const n = 9
	procs := make([]Processor, n)
	for i := 1; i <= n; i++ {
		p := NewRingSyncLead(n, sim.ProcID(i), 5)
		if i == 4 {
			p.Tamper = 1
		}
		procs[i-1] = p
	}
	res, err := Run(procs, n+2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.Reason != sim.FailMismatch {
		t.Fatalf("got (%v,%v), want mismatch failure", res.Failed, res.Reason)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, 4); err == nil {
		t.Error("empty processor set accepted")
	}
	if _, err := NewCompleteElection(1, 0, 0); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewCompleteElection(4, 4, 0); err == nil {
		t.Error("all-adversary configuration accepted")
	}
}

func TestStallDetection(t *testing.T) {
	// A processor that never terminates shows up as a stall.
	procs := []Processor{forever{}, forever{}}
	res, err := Run(procs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.Reason != sim.FailStall {
		t.Fatalf("got (%v,%v), want stall", res.Failed, res.Reason)
	}
}

type forever struct{}

func (forever) Step(int, []Message) Action { return Action{} }
