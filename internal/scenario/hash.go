package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// SimContract names the simulation determinism contract in force: the PRNG
// stream layout, seed derivations, and scheduler/queue semantics that make a
// (seed, trial) pair reproduce bit-identically across worker counts, batch
// sizes, and arena reuse. It is baked into every content address (job keys,
// certificate and deviation digests), so results computed under an older
// contract can never be replayed as current ones.
//
//   - sim-v1: math/rand lagged-Fibonacci per-processor generators, interface
//     schedulers, per-trial strategy construction.
//   - sim-v2: counter-based splittable SplitMix64 streams (sim.Stream),
//     eager dead-link message dropping, specialized FIFO/LIFO/random
//     scheduler queues, and chunk-batched strategy reuse.
const SimContract = "sim-v2"

// jobKeyFormat is the canonical encoding hashed by JobKey. Bump the leading
// schema tag if the encoding ever changes shape — and SimContract (the sim
// field) when simulation semantics change — so old and new keys can never
// collide.
const jobKeyFormat = "flejob-v2|sim=%s|version=%s|scenario=%s|n=%d|trials=%d|k=%d|target=%d|seed=%d"

// JobKey returns the stable content address of one scenario run: the
// SHA-256 of a canonical encoding of (code version, scenario name, resolved
// n/trials/k/target, seed). Two runs with the same key produce bit-identical
// distributions — trial seeds derive deterministically from (seed, t) and
// results are independent of worker count and scheduling — which is what
// lets a result cache keyed by JobKey return exact replays rather than
// approximations.
//
// version names the code revision the result was computed by; it is part of
// the address so results never survive a rebuild that may have changed the
// simulation. Opts.Workers, Opts.Progress, and Opts.Arenas are deliberately
// excluded: none of them affect the result. Opts.Stop is excluded too but
// DOES affect it (an early-stopped run holds fewer trials), so results of
// stopped runs must never be cached under a plain JobKey — callers that
// cache them fold the stopping rule's parameters into their own key, as
// the equilibrium certificates do (equilibrium.CertificateKey).
func (s Scenario) JobKey(version string, seed int64, o Opts) string {
	p := s.params(o)
	h := sha256.New()
	fmt.Fprintf(h, jobKeyFormat, SimContract, version, s.Name, p.N, p.Trials, p.K, p.Target, seed)
	return hex.EncodeToString(h.Sum(nil))
}
