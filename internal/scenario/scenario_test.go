package scenario

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/attacks"
	"repro/internal/protocols/alead"
	"repro/internal/ring"
)

// TestRegistryInvariants pins the catalog's breadth: the matrix must span
// at least 25 scenarios, 4 topologies, and every shipped attack.
func TestRegistryInvariants(t *testing.T) {
	all := All()
	if len(all) < 25 {
		t.Fatalf("registry holds %d scenarios, want ≥ 25", len(all))
	}
	topologies := map[string]bool{}
	attackSlugs := map[string]bool{}
	prev := ""
	for _, s := range all {
		if s.Name <= prev {
			t.Errorf("registry not sorted or duplicate: %q after %q", s.Name, prev)
		}
		prev = s.Name
		topologies[s.Topology] = true
		if s.Attack != "" {
			attackSlugs[s.Attack] = true
			if !strings.Contains(s.Name, "attack="+s.Attack) {
				t.Errorf("%s: name does not carry attack slug %q", s.Name, s.Attack)
			}
		}
		if s.MinN < 2 || s.N < s.MinN {
			t.Errorf("%s: inconsistent sizes N=%d MinN=%d", s.Name, s.N, s.MinN)
		}
		d := s.Describe()
		if d.Name != s.Name || d.Topology != s.Topology || d.Uniform != s.Uniform {
			t.Errorf("%s: Describe() disagrees with the scenario", s.Name)
		}
	}
	if len(topologies) < 4 {
		t.Errorf("registry spans %d topologies (%v), want ≥ 4", len(topologies), topologies)
	}
	// Every deviation shipped in internal/attacks must be represented.
	for _, want := range []string{
		"basic-single", "rushing-equal", "rushing-staggered",
		"randomized-c3", "randomized-c5", "half-ring",
		"phase-rushing", "phase-chase", "phase-nosteer",
		"sum-phase", "wakeup-rushing",
	} {
		if !attackSlugs[want] {
			t.Errorf("no registered scenario exercises attack %q", want)
		}
	}
}

func TestFindAndMatch(t *testing.T) {
	if _, ok := Find("ring/a-lead/fifo"); !ok {
		t.Fatal("ring/a-lead/fifo not registered")
	}
	if _, ok := Find("no/such/scenario"); ok {
		t.Fatal("Find invented a scenario")
	}
	got, err := Match("^ring/a-lead/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 4 {
		t.Errorf("Match(^ring/a-lead/) found %d scenarios, want ≥ 4 (3 schedulers + attacks)", len(got))
	}
	if _, err := Match("("); err == nil {
		t.Error("Match accepted a broken pattern")
	}
	everything, err := Match("")
	if err != nil || len(everything) != len(All()) {
		t.Errorf("empty pattern: got %d scenarios err=%v, want the full catalog", len(everything), err)
	}
}

// TestEveryScenarioRuns smoke-runs the whole catalog at its registered
// defaults with a small trial count: every entry must produce a populated,
// well-formed outcome.
func TestEveryScenarioRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog smoke run skipped in -short mode")
	}
	ctx := context.Background()
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			out, err := s.RunOpts(ctx, 20180516, Opts{Trials: 6, Workers: 2})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if out.Trials != 6 {
				t.Errorf("outcome has %d trials, want 6", out.Trials)
			}
			if out.N != s.N || out.Scenario != s.Name {
				t.Errorf("outcome mislabelled: %+v", out)
			}
			valid := 0
			for j := 1; j <= out.N; j++ {
				valid += out.Counts[j]
			}
			if valid+out.Failures != out.Trials {
				t.Errorf("counts (%d valid) + failures (%d) ≠ trials (%d)", valid, out.Failures, out.Trials)
			}
			if s.Attack == "" && out.FailRate > 0 {
				t.Errorf("honest scenario failed %d/%d trials", out.Failures, out.Trials)
			}
		})
	}
}

// TestWorkerCountInvariance: scenario outcomes are bit-identical at any
// engine worker count (the engine contract, surfaced at the registry level).
func TestWorkerCountInvariance(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"ring/a-lead/lifo", "complete/shamir/fifo", "sync-complete/complete-lead/honest"} {
		s := MustFind(name)
		a, err := s.RunOpts(ctx, 99, Opts{Trials: 40, Workers: 1})
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		b, err := s.RunOpts(ctx, 99, Opts{Trials: 40, Workers: 7})
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if !reflect.DeepEqual(a.Dist, b.Dist) {
			t.Errorf("%s: distribution differs across worker counts:\n  1 worker: %v\n  7 workers: %v",
				name, a.Dist, b.Dist)
		}
	}
}

// TestRegistryMatchesDirectTrialPath pins the byte-identical contract the
// harness refactor relies on: a registry run of a ring scenario reproduces
// the exact distribution of the direct ring.TrialsOpts / AttackTrialsOpts
// calls the experiments used to make.
func TestRegistryMatchesDirectTrialPath(t *testing.T) {
	ctx := context.Background()
	seed := int64(20180516)

	honest := MustFind("ring/a-lead/fifo")
	got, err := honest.RunOpts(ctx, seed, Opts{N: 32, Trials: 120})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ring.TrialsOpts(ctx, ring.Spec{N: 32, Protocol: alead.New(), Seed: seed}, 120, ring.TrialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Dist, want) {
		t.Errorf("honest registry path diverges from ring.TrialsOpts:\n  registry: %v\n  direct:   %v", got.Dist, want)
	}

	attacked := MustFind("ring/a-lead/attack=rushing-equal")
	gotA, err := attacked.RunOpts(ctx, seed, Opts{N: 64, Trials: 10, Target: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := ring.AttackTrialsOpts(ctx, 64, alead.New(),
		attacks.Rushing{Place: attacks.PlaceEqual}, 3, seed, 10, ring.TrialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA.Dist, wantA) {
		t.Errorf("attack registry path diverges from ring.AttackTrialsOpts:\n  registry: %v\n  direct:   %v", gotA.Dist, wantA)
	}
}

func TestOptsValidation(t *testing.T) {
	s := MustFind("ring/a-lead/attack=rushing-staggered")
	if _, err := s.RunOpts(context.Background(), 1, Opts{N: 8, Trials: 2}); err == nil {
		t.Error("run below MinN should fail")
	}
}
