package scenario

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestArenaResetBitIdenticalAcrossRingScenarios is the Network.Reset
// property test: for every ring-topology scenario and a spread of seeds, an
// execution on a single arena shared across the whole sweep — so its
// recycled network is reset from every protocol, deviation and size in the
// catalog, in sequence — must be bit-identical to an execution on a freshly
// constructed network. This is the contract that lets the trial engine hand
// one arena to a worker for an entire batch.
func TestArenaResetBitIdenticalAcrossRingScenarios(t *testing.T) {
	arena := sim.NewArena()
	ran := 0
	for _, s := range All() {
		if s.single == nil {
			continue
		}
		p := s.params(Opts{})
		for seed := int64(1); seed <= 5; seed++ {
			fresh, err := s.single(seed, nil, p, nil)
			if err != nil {
				t.Fatalf("%s seed=%d (fresh): %v", s.Name, seed, err)
			}
			reused, err := s.single(seed, nil, p, arena)
			if err != nil {
				t.Fatalf("%s seed=%d (arena): %v", s.Name, seed, err)
			}
			if !reflect.DeepEqual(reused.Clone(), fresh.Clone()) {
				t.Fatalf("%s seed=%d: arena execution differs from fresh execution\nfresh: %+v\narena: %+v",
					s.Name, seed, fresh, reused)
			}
			ran++
		}
	}
	if ran == 0 {
		t.Fatal("no ring scenarios exercised")
	}
	t.Logf("verified %d reset-vs-fresh execution pairs", ran)
}
