package scenario

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/ring"
)

func TestResolveDefaultsAndOverrides(t *testing.T) {
	s := MustFind("ring/basic-lead/fifo")
	if n, trials := s.Resolve(Opts{}); n != 16 || trials != 400 {
		t.Errorf("zero opts: got (%d, %d), want registered (16, 400)", n, trials)
	}
	if n, trials := s.Resolve(Opts{N: 9}); n != 9 || trials != 400 {
		t.Errorf("N override: got (%d, %d)", n, trials)
	}
	if n, trials := s.Resolve(Opts{Trials: 7}); n != 16 || trials != 7 {
		t.Errorf("Trials override: got (%d, %d)", n, trials)
	}
	if n, trials := s.Resolve(Opts{N: -3, Trials: -5}); n != 16 || trials != 400 {
		t.Errorf("non-positive overrides must keep defaults: got (%d, %d)", n, trials)
	}
}

func TestParamsOverrideRules(t *testing.T) {
	s := MustFind("ring/basic-lead/attack=basic-single")
	p := s.params(Opts{})
	if p.K != s.K || p.Target != s.Target || p.Workers != 0 {
		t.Errorf("zero opts resolved to %+v, want scenario defaults", p)
	}
	p = s.params(Opts{K: -1, Target: 5, Workers: 3})
	if p.K != -1 {
		t.Errorf("K=-1 is a real override (n-1 coalition), got %d", p.K)
	}
	if p.Target != 5 || p.Workers != 3 {
		t.Errorf("Target/Workers overrides lost: %+v", p)
	}
	p = s.params(Opts{K: 0, Target: 0})
	if p.K != s.K || p.Target != s.Target {
		t.Errorf("zero K/Target must keep scenario defaults, got %+v", p)
	}
}

// TestOutcomeFromDistMatchesRunOpts pins the coordinator path: merging a
// full partition of shards and summarizing through OutcomeFromDist must
// produce the same marshaled outcome bytes as a single RunOpts call —
// including the attack-only Target and TargetRate fields.
func TestOutcomeFromDistMatchesRunOpts(t *testing.T) {
	const seed = 41
	for _, name := range []string{"ring/basic-lead/fifo", "ring/basic-lead/attack=basic-single"} {
		s := MustFind(name)
		o := Opts{N: 8, Trials: 60, Workers: 2}
		direct, err := s.RunOpts(context.Background(), seed, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		merged := ring.NewDistribution(8)
		for _, cut := range [][2]int{{0, 13}, {13, 40}, {40, 60}} {
			shard, err := s.RunShard(context.Background(), seed, o, cut[0], cut[1])
			if err != nil {
				t.Fatalf("%s shard %v: %v", name, cut, err)
			}
			if err := merged.Merge(shard); err != nil {
				t.Fatalf("merge: %v", err)
			}
		}
		fromDist := s.OutcomeFromDist(merged, o)
		a, err := json.Marshal(direct)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(fromDist)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s: outcomes differ\ndirect:   %s\nfromDist: %s", name, a, b)
		}
		if s.Attack != "" && (fromDist.Target != 2 || fromDist.TargetRate != 1) {
			t.Errorf("%s: attack outcome lost target reporting: %+v", name, fromDist)
		}
	}
}

// TestOutcomeFromDistTargetOverride checks the target override threads into
// the summarized outcome without rerunning anything.
func TestOutcomeFromDistTargetOverride(t *testing.T) {
	s := MustFind("ring/basic-lead/attack=basic-single")
	d := ring.NewDistribution(8)
	out := s.OutcomeFromDist(d, Opts{Target: 5})
	if out.Target != 5 {
		t.Errorf("target override lost: %+v", out)
	}
	honest := MustFind("ring/basic-lead/fifo")
	if got := honest.OutcomeFromDist(d, Opts{Target: 5}); got.Target != 0 || got.TargetRate != 0 {
		t.Errorf("honest outcomes must not report a target: %+v", got)
	}
}

// TestOutcomeFromDistEmpty summarizes a zero-trial distribution: every rate
// must come out finite and zero-valued rather than NaN, since coordinators
// can observe empty prefixes.
func TestOutcomeFromDistEmpty(t *testing.T) {
	s := MustFind("ring/basic-lead/fifo")
	out := s.OutcomeFromDist(ring.NewDistribution(8), Opts{})
	if out.Trials != 0 || out.Failures != 0 {
		t.Errorf("empty distribution miscounted: %+v", out)
	}
	for name, v := range map[string]float64{
		"fail rate":   out.FailRate,
		"max win":     out.MaxWinRate,
		"target rate": out.TargetRate,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v != 0 {
			t.Errorf("%s on empty distribution = %v, want 0", name, v)
		}
	}
	if _, err := json.Marshal(out); err != nil {
		t.Errorf("empty outcome does not marshal: %v", err)
	}
}

func TestTryRegisterValidation(t *testing.T) {
	stub := func(context.Context, int64, params) (*ring.Distribution, error) { return nil, nil }
	cases := map[string]Scenario{
		"unnamed":         {Topology: "ring", Protocol: "p", Scheduler: SchedFIFO, N: 4, Trials: 1, run: stub},
		"missing fields":  {Name: "x/a", N: 4, Trials: 1, run: stub},
		"bad n":           {Name: "x/b", Topology: "ring", Protocol: "p", Scheduler: SchedFIFO, N: 1, Trials: 1, run: stub},
		"bad trials":      {Name: "x/c", Topology: "ring", Protocol: "p", Scheduler: SchedFIFO, N: 4, Trials: 0, run: stub},
		"no run function": {Name: "x/d", Topology: "ring", Protocol: "p", Scheduler: SchedFIFO, N: 4, Trials: 1},
		"duplicate":       {Name: "ring/basic-lead/fifo", Topology: "ring", Protocol: "p", Scheduler: SchedFIFO, N: 4, Trials: 1, run: stub},
	}
	for name, s := range cases {
		if err := tryRegister(s); err == nil {
			t.Errorf("%s: tryRegister unexpectedly succeeded", name)
		}
	}
	if _, ok := Find("x/b"); ok {
		t.Errorf("rejected scenario leaked into the registry")
	}
}

func TestTryRegisterFamilyValidation(t *testing.T) {
	plan := func(ring.Protocol, int, string) (ring.Attack, error) { return nil, nil }
	cases := map[string]DeviationFamily{
		"unnamed":           {Plan: plan},
		"no plan":           {Name: "x-fam"},
		"reserved identity": {Name: FamilyIdentity, Plan: plan},
		"reserved self":     {Name: FamilySelf, Plan: plan},
		"duplicate":         {Name: "basic-single", Plan: plan},
	}
	for name, f := range cases {
		if err := tryRegisterFamily(f); err == nil {
			t.Errorf("%s: tryRegisterFamily unexpectedly succeeded", name)
		}
	}
}

func TestRuntimeRegisterValidation(t *testing.T) {
	if err := RegisterRingScenario(Scenario{Name: "x/e"}, nil); err == nil {
		t.Errorf("nil protocol should be rejected")
	}
	if err := RegisterRingAttackScenario(Scenario{Name: "x/f"}, nil, "basic-single", ""); err == nil {
		t.Errorf("nil protocol should be rejected")
	}
	proto, ok := FindRingProtocol("basic-lead")
	if !ok {
		t.Fatalf("native basic-lead not resolvable")
	}
	if err := RegisterRingScenario(Scenario{
		Name: "x/g", Topology: "ring", Protocol: "p", Scheduler: "bogus", N: 4, Trials: 1,
	}, proto); err == nil {
		t.Errorf("unknown scheduler should be rejected")
	}
	if err := RegisterRingAttackScenario(Scenario{
		Name: "x/h", Topology: "ring", Protocol: "p", N: 4, Trials: 1,
	}, proto, "no-such-family", ""); err == nil {
		t.Errorf("unknown family should be rejected")
	}
	if _, ok := FindRingProtocol("no-such-protocol"); ok {
		t.Errorf("FindRingProtocol invented a protocol")
	}
}
