package scenario

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/ring"
	"repro/internal/stats"
)

// TestPopprotoWorkersByteIdentical pins the sim-v2 determinism contract
// for the population-protocol rows: the outcome table of a popproto batch
// is byte-identical across 1, 4 and 8 engine workers.
func TestPopprotoWorkersByteIdentical(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{
		"popproto/ss-ring-le/pairwise",
		"popproto/ss-ring-le/attack=coalition-bias",
	} {
		s, ok := Find(name)
		if !ok {
			t.Fatalf("scenario %s not registered", name)
		}
		var want []byte
		for _, workers := range []int{1, 4, 8} {
			out, err := s.RunOpts(ctx, 20180516, Opts{N: 12, Trials: 300, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			got, err := json.Marshal(out)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if string(got) != string(want) {
				t.Errorf("%s: outcome table moved between worker counts\n got: %s\nwant: %s", name, got, want)
			}
		}
	}
}

// TestPopprotoShardPartitionMatchesDirect re-proves the fleet-sharding
// contract specifically for popproto: uneven RunShard partitions, merged
// out of order, reproduce the direct single-node outcome bytes.
func TestPopprotoShardPartitionMatchesDirect(t *testing.T) {
	ctx := context.Background()
	s, ok := Find("popproto/ss-ring-le/pairwise")
	if !ok {
		t.Fatal("scenario not registered")
	}
	o := Opts{N: 10, Trials: 130, Workers: 3}
	want, err := s.RunOpts(ctx, 7, o)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	n, total := s.Resolve(o)
	merged := ring.NewDistribution(n)
	// Uneven cuts, merged back to front, so both partition arithmetic and
	// merge commutativity are on the hook.
	cuts := []int{0, 23, 24, 89, 130}
	var shards []*ring.Distribution
	for i := 0; i+1 < len(cuts); i++ {
		shard, err := s.RunShard(ctx, 7, o, cuts[i], cuts[i+1])
		if err != nil {
			t.Fatalf("RunShard(%d, %d): %v", cuts[i], cuts[i+1], err)
		}
		shards = append(shards, shard)
	}
	if total != 130 {
		t.Fatalf("Resolve trials = %d", total)
	}
	for i := len(shards) - 1; i >= 0; i-- {
		if err := merged.Merge(shards[i]); err != nil {
			t.Fatal(err)
		}
	}
	gotJSON, err := json.Marshal(s.OutcomeFromDist(merged, o))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("sharded popproto outcome differs from direct run\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
}

// TestPopprotoMatchesAnalyticUniform is the χ² homogeneity row against the
// analytic leader distribution: the honest election is uniform by rotation
// symmetry, so the engine counts must be indistinguishable from the exact
// trials/n-per-position table, with zero failed trials.
func TestPopprotoMatchesAnalyticUniform(t *testing.T) {
	ctx := context.Background()
	s, ok := Find("popproto/ss-ring-le/pairwise")
	if !ok {
		t.Fatal("scenario not registered")
	}
	const n, trials = 8, 2000
	out, err := s.RunOpts(ctx, 20180516, Opts{N: n, Trials: trials})
	if err != nil {
		t.Fatal(err)
	}
	if out.Failures != 0 {
		t.Fatalf("%d trials failed to stabilize", out.Failures)
	}
	analytic := make([]int, n)
	for i := range analytic {
		analytic[i] = trials / n
	}
	chi2, p, err := stats.ChiSquareHomogeneity(out.Counts[1:], analytic)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-6 {
		t.Errorf("popproto leader counts diverge from the analytic uniform: χ²=%.2f p=%g counts=%v",
			chi2, p, out.Counts)
	}
}
