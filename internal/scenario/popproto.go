package scenario

import (
	"repro/internal/engine"
	"repro/internal/popproto"
	"repro/internal/sim"
)

// popprotoChunks runs the population-protocol self-stabilizing ring
// election, honestly or under the coalition-bias deviation pinning the
// target's labeling frame. One popproto.Runner per work-claim chunk
// recycles the label buffer across trials; the engine worker's arena is
// unused (the population model has no messages to simulate).
func popprotoChunks(attack bool) chunksFunc {
	return func(seed int64, p params) (engine.ChunkJob, error) {
		cfg := popproto.Config{N: p.N}
		if attack {
			cfg.K = p.K
			if cfg.K <= 0 {
				cfg.K = 1 // the minimal stubborn coalition already forces its target
			}
			cfg.Target = int(p.Target)
		}
		if _, err := popproto.NewRunner(cfg); err != nil {
			return nil, err
		}
		return engine.ChunkFunc(
			func(start, end int, _ *sim.Arena, add func(sim.Result)) (int, error) {
				runner, err := popproto.NewRunner(cfg)
				if err != nil {
					return start, err
				}
				for t := start; t < end; t++ {
					add(runner.Run(trialSeed(seed, t)))
				}
				return 0, nil
			}), nil
	}
}

func init() {
	// --- Population-protocol computation model (ROADMAP item 4): uniform
	// random-pair interactions on a directed ring, no messages, eventual
	// stabilization instead of termination. The honest modular-labeling
	// election is uniform by rotation symmetry of the all-zero start, so it
	// joins the differential matrix; its price is Θ(n³) expected
	// interactions against Θ(n²) messages for the flat ring elections. The
	// coalition-bias deviation pins the target's labeling frame and wins
	// with probability 1 at any coalition size.
	registerChunked(Scenario{
		Name:      "popproto/ss-ring-le/pairwise",
		Topology:  "popring",
		Protocol:  "ss-ring-le",
		Scheduler: SchedPairwise,
		N:         16,
		MinN:      2,
		Trials:    800,
		Uniform:   true,
		Note:      "self-stabilizing modular-labeling election, exactly uniform, Θ(n³) interactions",
	}, popprotoChunks(false))
	registerChunked(Scenario{
		Name:      "popproto/ss-ring-le/attack=coalition-bias",
		Topology:  "popring",
		Protocol:  "ss-ring-le",
		Scheduler: SchedPairwise,
		Attack:    "coalition-bias",
		N:         16,
		MinN:      2,
		Trials:    120,
		K:         2,
		Target:    2,
		Note:      "k agents pin the target's frame and refuse updates: forced w.p. 1",
	}, popprotoChunks(true))
}
