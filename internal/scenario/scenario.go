package scenario

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Scheduler kinds. On a unidirectional ring all three yield bit-identical
// executions (Section 2: per-link FIFO pins every local computation); on
// trees and general graphs they genuinely interleave differently.
const (
	SchedFIFO     = "fifo"
	SchedLIFO     = "lifo"
	SchedRandom   = "random"
	SchedLockstep = "lockstep" // synchronous topologies: rounds, no scheduler
	SchedPairwise = "pairwise" // population topologies: random-pair interactions, no messages
)

// newScheduler builds the scheduler for one execution. FIFO is the
// simulator default (nil); the random scheduler is seeded per execution so
// trial batches stay deterministic and shard-safe, and recycled on the
// worker's arena so the reseeding does not allocate per trial.
func newScheduler(kind string, seed int64, arena *sim.Arena) (sim.Scheduler, error) {
	switch kind {
	case SchedFIFO, SchedLockstep, "":
		return nil, nil
	case SchedLIFO:
		return sim.LIFOScheduler{}, nil
	case SchedRandom:
		return arena.RandomScheduler(seed), nil
	default:
		return nil, fmt.Errorf("scenario: unknown scheduler %q", kind)
	}
}

// Opts overrides a scenario's defaults for one run. Zero fields keep the
// scenario's registered values.
type Opts struct {
	// N overrides the network size.
	N int
	// Trials overrides the trial count.
	Trials int
	// Workers is the engine worker count; 0 picks runtime.NumCPU().
	// Results are identical for any value.
	Workers int
	// K overrides the coalition size where the scenario's attack takes
	// one (0 keeps the scenario default; the attack's own default rules
	// apply when that is also 0).
	K int
	// Target overrides the leader the coalition tries to force.
	Target int64
	// Progress, if non-nil, receives deterministic snapshots of the
	// accumulating distribution as the batch runs: the engine delivers
	// chunk-ordered prefixes, so the snapshot sequence depends only on
	// (seed, trials, chunking), never on worker count or scheduling. The
	// final snapshot always covers the whole batch. The callback runs
	// under the engine's merge lock and must be cheap.
	Progress func(Snapshot)
	// Stop, if non-nil, enables adaptive early stopping: it sees the same
	// deterministic chunk-ordered prefixes Progress does and returns true
	// to end the batch after that prefix (see engine.Options.Stop). The
	// stopping point depends only on (seed, trials, chunking) — never on
	// worker count — so stopped runs stay reproducible. Unlike the other
	// overrides, Stop changes the result (fewer trials), so results of
	// stopped runs must not be cached under the plain JobKey; callers that
	// cache them (the equilibrium certifier) fold the stopping rule's
	// parameters into their own key.
	Stop func(prefix *ring.Distribution, trials int) bool
	// Arenas, if non-nil, draws engine worker arenas from a shared pool
	// so simulation workspaces persist across runs — the service
	// daemon's resident mode (see engine.ArenaPool). Results are
	// identical with or without it.
	Arenas *engine.ArenaPool
}

// params is a scenario's fully resolved run configuration.
type params struct {
	N       int
	Trials  int
	Workers int
	K       int
	Target  int64
	// observe, stop and arenas are carried to the engine by every run
	// builder.
	observe func(prefix *ring.Distribution, trials int)
	stop    func(prefix *ring.Distribution, trials int) bool
	arenas  *engine.ArenaPool
}

type (
	// runFunc runs the scenario's trial batch on the engine.
	runFunc func(ctx context.Context, seed int64, p params) (*ring.Distribution, error)
	// chunksFunc builds the scenario's canonical chunked engine job for one
	// (seed, params) configuration. The job must derive every per-trial
	// result from the trial index alone, so any sub-range run through
	// engine.RunRange contributes exactly its trials' shard to the batch —
	// the property remote chunk claiming (Scenario.RunShard) relies on.
	chunksFunc func(seed int64, p params) (engine.ChunkJob, error)
	// singleFunc runs one execution under an explicit scheduler and an
	// optional recycled arena; only ring-topology scenarios provide it
	// (the schedule-independence property is a ring claim).
	singleFunc func(seed int64, sched sim.Scheduler, p params, arena *sim.Arena) (sim.Result, error)
)

// chunkedRun derives a scenario's full-batch run function from its chunked
// job builder: every registered scenario runs through this one path, so the
// batch a coordinator decomposes into remote shards and the batch a single
// node runs locally are the same job by construction.
func chunkedRun(chunks chunksFunc) runFunc {
	return func(ctx context.Context, seed int64, p params) (*ring.Distribution, error) {
		job, err := chunks(seed, p)
		if err != nil {
			return nil, err
		}
		return engineBatch(ctx, p, job)
	}
}

// Scenario is one named, runnable configuration.
type Scenario struct {
	// Name identifies the scenario: <topology>/<protocol>/<scheduler>
	// or <topology>/<protocol>/attack=<attack>.
	Name string
	// Topology is the communication graph family: "ring", "wakeup",
	// "complete", "tree-path", "tree-star", "sync-complete", "sync-ring".
	Topology string
	// Protocol is the protocol slug (e.g. "a-lead", "phase-lead").
	Protocol string
	// Scheduler is the message schedule kind (SchedFIFO et al.).
	Scheduler string
	// Attack is the adversarial deviation slug; empty for honest runs.
	Attack string
	// N is the default network size.
	N int
	// MinN is the smallest size the configuration supports (attack
	// feasibility or protocol constraints).
	MinN int
	// Trials is the default trial count.
	Trials int
	// K is the default coalition size (0 = the attack's own default,
	// −1 = n−1).
	K int
	// Target is the default leader the coalition tries to force.
	Target int64
	// Uniform marks scenarios whose leader distribution is uniform over
	// [1..N] — the family the differential matrix tests pairwise.
	Uniform bool
	// Note is a one-line description for catalogs.
	Note string

	run    runFunc
	chunks chunksFunc
	single singleFunc

	// proto is the underlying ring protocol for ring-simulator topologies
	// ("ring", "wakeup"); deviation sweeps plan attacks against it. Nil
	// for topologies with their own runtimes (complete, trees,
	// synchronous models).
	proto ring.Protocol
	// family and mode name the registered DeviationFamily (and its
	// variant) behind an attack scenario's run; empty for honest
	// scenarios and for non-ring attacks, which sweep through their own
	// run function instead.
	family, mode string
}

// params resolves the run configuration from the scenario defaults and the
// caller's overrides.
func (s Scenario) params(o Opts) params {
	p := params{N: s.N, Trials: s.Trials, Workers: o.Workers, K: s.K, Target: s.Target,
		stop: o.Stop, arenas: o.Arenas}
	if o.N > 0 {
		p.N = o.N
	}
	if o.Trials > 0 {
		p.Trials = o.Trials
	}
	if o.K != 0 {
		p.K = o.K
	}
	if o.Target != 0 {
		p.Target = o.Target
	}
	if o.Progress != nil {
		progress, total := o.Progress, p.Trials
		p.observe = func(prefix *ring.Distribution, trials int) {
			progress(snapshot(prefix, trials, total))
		}
	}
	return p
}

// Outcome is the uniform result of one scenario run.
type Outcome struct {
	Scenario  string `json:"scenario"`
	Topology  string `json:"topology"`
	Protocol  string `json:"protocol"`
	Scheduler string `json:"scheduler"`
	Attack    string `json:"attack,omitempty"`
	N         int    `json:"n"`
	Trials    int    `json:"trials"`
	// Counts[j] is the number of trials electing leader j (index 0
	// unused).
	Counts []int `json:"counts"`
	// Failures is the number of FAIL outcomes.
	Failures int `json:"failures"`
	// Messages is the total number of delivered messages over all trials.
	Messages int `json:"messages"`
	// FailRate is Failures/Trials.
	FailRate float64 `json:"fail_rate"`
	// MaxWinLeader and MaxWinRate describe the most-elected leader.
	MaxWinLeader int64   `json:"max_win_leader"`
	MaxWinRate   float64 `json:"max_win_rate"`
	// Epsilon is the Definition 2.3 bias point estimate (max-win − 1/n).
	Epsilon float64 `json:"epsilon"`
	// Target and TargetRate report the attack's goal and its success
	// rate; Target is 0 for honest scenarios.
	Target     int64   `json:"target,omitempty"`
	TargetRate float64 `json:"target_rate,omitempty"`

	// Dist is the underlying distribution, for callers that need the
	// raw material (the harness tables, the differential tests).
	Dist *ring.Distribution `json:"-"`
}

// Run executes the scenario's trial batch at its registered defaults.
func (s Scenario) Run(ctx context.Context, seed int64) (*Outcome, error) {
	return s.RunOpts(ctx, seed, Opts{})
}

// RunOpts is Run with overrides. The batch routes through the parallel
// trial engine; for a fixed seed the outcome is identical at any
// opts.Workers.
func (s Scenario) RunOpts(ctx context.Context, seed int64, o Opts) (*Outcome, error) {
	if s.run == nil {
		return nil, fmt.Errorf("scenario: %q is not runnable", s.Name)
	}
	p := s.params(o)
	if p.N < s.MinN {
		return nil, fmt.Errorf("scenario: %s needs n ≥ %d, got %d", s.Name, s.MinN, p.N)
	}
	if p.Trials < 1 {
		return nil, fmt.Errorf("scenario: %s needs ≥ 1 trial, got %d", s.Name, p.Trials)
	}
	dist, err := s.run(ctx, seed, p)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", s.Name, err)
	}
	return s.outcome(dist, p), nil
}

// SingleRun executes one election of a ring-topology scenario under the
// given scheduler (nil = FIFO). ok is false for scenarios that are not
// single-execution ring configurations (trees, complete graphs, synchronous
// models).
func (s Scenario) SingleRun(seed int64, sched sim.Scheduler, o Opts) (res sim.Result, ok bool, err error) {
	if s.single == nil {
		return sim.Result{}, false, nil
	}
	p := s.params(o)
	if p.N < s.MinN {
		return sim.Result{}, true, fmt.Errorf("scenario: %s needs n ≥ %d, got %d", s.Name, s.MinN, p.N)
	}
	res, err = s.single(seed, sched, p, nil)
	return res, true, err
}

// Distributable reports whether the scenario exposes its trial batch as a
// chunked job, i.e. whether RunShard can run arbitrary sub-ranges of it.
// Every registered scenario is distributable; the accessor exists so fleet
// schedulers can gate rather than assume.
func (s Scenario) Distributable() bool { return s.chunks != nil }

// RunShard runs logical trials [start, end) of the batch RunOpts(seed, o)
// would run and returns their raw shard distribution. Per-trial seeds
// derive from the logical index, so merging the shards of any partition of
// [0, trials) — in any order, on any mix of machines — reproduces the full
// batch's distribution bit-for-bit (Distribution merges are counter sums).
// This is the unit of work a fleet worker claims from a coordinator.
// Progress and Stop overrides are ignored: shards are plain sub-batches.
func (s Scenario) RunShard(ctx context.Context, seed int64, o Opts, start, end int) (*ring.Distribution, error) {
	if s.chunks == nil {
		return nil, fmt.Errorf("scenario: %q has no chunked job", s.Name)
	}
	p := s.params(o)
	if p.N < s.MinN {
		return nil, fmt.Errorf("scenario: %s needs n ≥ %d, got %d", s.Name, s.MinN, p.N)
	}
	if start < 0 || end < start || end > p.Trials {
		return nil, fmt.Errorf("scenario: %s shard [%d, %d) outside batch of %d trials", s.Name, start, end, p.Trials)
	}
	job, err := s.chunks(seed, p)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", s.Name, err)
	}
	dist, err := engine.RunRange(ctx, start, end, job, distSink(p.N),
		engine.Options[*ring.Distribution]{Workers: p.Workers, Arenas: p.arenas})
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", s.Name, err)
	}
	return dist, nil
}

// OutcomeFromDist summarizes an externally merged distribution exactly as
// RunOpts would summarize its own: a coordinator that folds worker shards
// back together builds the final Outcome through this, so the marshaled
// result bytes of a distributed run equal a single-node run's.
func (s Scenario) OutcomeFromDist(dist *ring.Distribution, o Opts) *Outcome {
	return s.outcome(dist, s.params(o))
}

// Resolve returns the resolved (n, trials) the overrides pin, using exactly
// the defaulting RunOpts applies. Fleet coordinators use it to decompose a
// job into trial chunks without running anything.
func (s Scenario) Resolve(o Opts) (n, trials int) {
	p := s.params(o)
	return p.N, p.Trials
}

// outcome summarizes a distribution.
func (s Scenario) outcome(dist *ring.Distribution, p params) *Outcome {
	rep := core.Bias(dist)
	leader, rate := dist.MaxWin()
	out := &Outcome{
		Scenario:     s.Name,
		Topology:     s.Topology,
		Protocol:     s.Protocol,
		Scheduler:    s.Scheduler,
		Attack:       s.Attack,
		N:            dist.N,
		Trials:       dist.Trials,
		Counts:       dist.Counts,
		Failures:     dist.Failures(),
		Messages:     dist.Messages,
		FailRate:     dist.FailureRate(),
		MaxWinLeader: leader,
		MaxWinRate:   rate,
		Epsilon:      rep.Epsilon,
		Dist:         dist,
	}
	if s.Attack != "" && p.Target != 0 {
		out.Target = p.Target
		out.TargetRate = dist.WinRate(p.Target)
	}
	return out
}

// trialSeed is ring.TrialSeed: the shared derivation is what makes an
// engine batch built here reproduce a ring.TrialsOpts batch bit-for-bit.
func trialSeed(base int64, t int) int64 { return ring.TrialSeed(base, t) }

// distSink accumulates engine results into per-worker distributions.
func distSink(n int) engine.Sink[*ring.Distribution] {
	return engine.Sink[*ring.Distribution]{
		New: func() *ring.Distribution { return ring.NewDistribution(n) },
		Add: func(d *ring.Distribution, res sim.Result) { d.Add(res) },
		// Merge cannot fail: every shard is built for the same n.
		Merge: func(dst, src *ring.Distribution) { _ = dst.Merge(src) },
	}
}

// engineBatch runs a chunked job on the parallel engine, lowering the
// resolved params onto engine options; run builders whose trials can
// amortize per-chunk state (a reused strategy vector, a prebuilt node set)
// route through it.
func engineBatch(ctx context.Context, p params, job engine.ChunkJob) (*ring.Distribution, error) {
	return engine.RunBatch(ctx, p.Trials, job, distSink(p.N),
		engine.Options[*ring.Distribution]{Workers: p.Workers, Stop: p.stop, Observe: p.observe, Arenas: p.arenas})
}

// trialOptions lowers the resolved params onto ring.TrialOptions, for the
// run builders that route through ring.RunAttackTrials instead of
// engineTrials.
func (p params) trialOptions() ring.TrialOptions {
	opts := ring.TrialOptions{Workers: p.Workers, Progress: p.observe, Arenas: p.arenas}
	if p.stop != nil {
		stop := p.stop
		opts.Stop = func(prefix *ring.Distribution) bool { return stop(prefix, prefix.Trials) }
	}
	return opts
}

// Snapshot is one deterministic progress point of a running trial batch:
// how far the batch has advanced and what the accumulating distribution
// currently estimates. Snapshots are computed on chunk-ordered prefixes
// (see engine.Options.Observe), so for a fixed seed the whole sequence is
// reproducible at any worker count.
type Snapshot struct {
	// Done and Total count trials: completed so far vs the batch size.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Failures and Messages mirror the distribution's running counters.
	Failures int `json:"failures"`
	Messages int `json:"messages"`
	// MaxWinLeader is the currently most-elected leader; MaxWin is its
	// running rate estimate with a 95% Wilson interval — the same
	// machinery the adaptive stopping rules use.
	MaxWinLeader int64              `json:"max_win_leader"`
	MaxWin       stats.RateSnapshot `json:"max_win"`
	// Epsilon is the running Definition 2.3 bias point estimate
	// (max-win rate − 1/n).
	Epsilon float64 `json:"epsilon"`
}

// NewSnapshot summarizes a prefix of an accumulating distribution covering
// done of total trials — the exported form of the progress points Opts.
// Progress delivers, for coordinators that merge remote shards themselves
// and still want to stream the same snapshot shape.
func NewSnapshot(d *ring.Distribution, done, total int) Snapshot {
	return snapshot(d, done, total)
}

// snapshot summarizes a prefix of the accumulating distribution.
func snapshot(d *ring.Distribution, done, total int) Snapshot {
	leader, rate := d.MaxWin()
	return Snapshot{
		Done:         done,
		Total:        total,
		Failures:     d.Failures(),
		Messages:     d.Messages,
		MaxWinLeader: leader,
		MaxWin:       stats.NewRateSnapshot(d.Counts[leader], d.Trials, 1.96),
		Epsilon:      rate - 1/float64(d.N),
	}
}
