package scenario

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestScheduleIndependenceOnRings is the Section 2 claim as a property test:
// on a unidirectional ring every processor has a single incoming FIFO link,
// so every oblivious schedule produces the same local computations. For
// every registered ring-topology scenario — honest and attacked alike — one
// execution at a fixed seed must be bit-identical under FIFO, LIFO, and
// random schedules: same output, same failure classification, same number
// of delivered messages.
func TestScheduleIndependenceOnRings(t *testing.T) {
	seeds := []int64{1, 20180516, 77003}
	if testing.Short() {
		seeds = seeds[:1]
	}
	covered := 0
	for _, s := range All() {
		s := s
		if s.single == nil {
			continue // non-ring topology: the claim does not apply
		}
		// Scheduler variants of the same configuration would re-test the
		// identical execution triple; the FIFO registration covers them.
		if s.Scheduler != SchedFIFO {
			continue
		}
		covered++
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				fifo, ok, err := s.SingleRun(seed, nil, Opts{})
				if !ok {
					t.Fatal("ring scenario lost its single-run hook")
				}
				if err != nil {
					t.Fatalf("seed %d fifo: %v", seed, err)
				}
				lifo, _, err := s.SingleRun(seed, sim.LIFOScheduler{}, Opts{})
				if err != nil {
					t.Fatalf("seed %d lifo: %v", seed, err)
				}
				random, _, err := s.SingleRun(seed, sim.NewRandomScheduler(seed), Opts{})
				if err != nil {
					t.Fatalf("seed %d random: %v", seed, err)
				}
				for name, got := range map[string]sim.Result{"lifo": lifo, "random": random} {
					if got.Output != fifo.Output || got.Failed != fifo.Failed || got.Reason != fifo.Reason {
						t.Errorf("seed %d: %s outcome (out=%d failed=%v reason=%v) diverges from fifo (out=%d failed=%v reason=%v)",
							seed, name, got.Output, got.Failed, got.Reason, fifo.Output, fifo.Failed, fifo.Reason)
					}
					if got.Delivered != fifo.Delivered {
						t.Errorf("seed %d: %s delivered %d messages, fifo %d",
							seed, name, got.Delivered, fifo.Delivered)
					}
				}
			}
		})
	}
	if covered < 15 {
		t.Errorf("property covered only %d ring scenarios, want ≥ 15", covered)
	}
}

// TestNonRingScenariosHaveNoSingleRun documents the inverse: the property
// is claimed for rings only, and SingleRun says so.
func TestNonRingScenariosHaveNoSingleRun(t *testing.T) {
	for _, s := range All() {
		isRing := strings.HasPrefix(s.Topology, "ring") || s.Topology == "wakeup"
		_, ok, _ := s.SingleRun(1, nil, Opts{})
		if ok != isRing {
			t.Errorf("%s (topology %s): SingleRun ok=%v, want %v", s.Name, s.Topology, ok, isRing)
		}
	}
}
