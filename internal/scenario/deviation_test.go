package scenario

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/attacks"
	"repro/internal/protocols/alead"
	"repro/internal/ring"
)

// TestDeviationDifferentialMatchesScenarioRun is the refactor pin: for
// every attack scenario, the equilibrium sweep restricted to the scenario's
// own registered deviation must reproduce the scenario's run — and hence
// the original ring.AttackTrials batches — byte-identically: same seed ⇒
// same Distribution, counter for counter.
func TestDeviationDifferentialMatchesScenarioRun(t *testing.T) {
	const seed, trials = 20180516, 24
	ctx := context.Background()
	opts := Opts{Trials: trials}
	checked := 0
	for _, s := range All() {
		if s.Attack == "" {
			continue
		}
		s := s
		t.Run(s.Name, func(t *testing.T) {
			cand, ok := s.RegisteredDeviation(opts)
			if !ok {
				t.Fatalf("attack scenario %s has no registered deviation", s.Name)
			}
			want, err := s.RunOpts(ctx, seed, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.RunDeviation(ctx, seed, cand, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want.Dist) {
				t.Errorf("restricted sweep diverges from scenario run:\n got %+v\nwant %+v", got, want.Dist)
			}
		})
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d attack scenarios checked, want ≥ 10", checked)
	}
}

// TestDeviationMatchesDirectAttackTrials pins the family planner against a
// direct ring.AttackTrials batch built from the attacks package, bypassing
// the catalog entirely.
func TestDeviationMatchesDirectAttackTrials(t *testing.T) {
	const seed, trials, n = 99, 32, 32
	s := MustFind("ring/a-lead/attack=rushing-equal")
	cand := DeviationCandidate{Family: "rushing", Mode: "equal", K: 6, Target: 3}
	got, err := s.RunDeviation(context.Background(), seed, cand, Opts{N: n, Trials: trials})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ring.AttackTrials(n, alead.New(), attacks.Rushing{Place: attacks.PlaceEqual, K: 6}, 3, seed, trials)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("family-planned batch diverges from direct AttackTrials:\n got %+v\nwant %+v", got, want)
	}
}

// TestIdentityDeviationIsHonestBaseline checks the identity candidate of a
// ring attack scenario reproduces the underlying protocol's honest batch.
func TestIdentityDeviationIsHonestBaseline(t *testing.T) {
	const seed, trials, n = 5, 48, 32
	s := MustFind("ring/a-lead/attack=rushing-staggered")
	got, err := s.RunDeviation(context.Background(), seed, DeviationCandidate{Family: FamilyIdentity}, Opts{N: n, Trials: trials})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ring.Trials(ring.Spec{N: n, Protocol: alead.New(), Seed: seed}, trials)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("identity deviation diverges from honest Trials:\n got %+v\nwant %+v", got, want)
	}
}

// TestDeviationSpaceShape checks the space enumeration invariants: every
// sweep starts at the identity (where runnable), honest sweeps respect the
// resilience bound, and attack sweeps cover their own registered deviation.
func TestDeviationSpaceShape(t *testing.T) {
	for _, s := range All() {
		s := s
		space := s.DeviationSpace(Opts{}, 0, nil)
		if len(space) == 0 {
			t.Errorf("%s: empty deviation space", s.Name)
			continue
		}
		hasIdentity := space[0].Family == FamilyIdentity
		if (s.Attack == "" || s.Topology == "ring" || s.Topology == "wakeup") && !hasIdentity {
			t.Errorf("%s: space does not start with the identity", s.Name)
		}
		if s.Attack == "" {
			bound := s.ResilientK(s.N)
			for _, c := range space[1:] {
				if c.K > bound {
					t.Errorf("%s: honest sweep candidate %s exceeds resilience bound %d", s.Name, c, bound)
				}
				if c.Family == FamilyIdentity || c.Family == FamilySelf {
					t.Errorf("%s: unexpected pseudo-family candidate %s", s.Name, c)
				}
			}
			continue
		}
		// Attack scenarios: the registered family/mode/target must appear.
		reg, _ := s.RegisteredDeviation(Opts{})
		found := false
		for _, c := range space {
			// Scenarios without a registered target (the untargeted
			// self-family adversaries) match on family alone: the sweep
			// picks its own targets for them.
			if c.Family == reg.Family && c.Mode == reg.Mode && (reg.Target == 0 || c.Target == reg.Target) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: space misses the registered deviation %s", s.Name, reg)
		}
	}
}

// TestFamilyRegistry checks the family catalog's integrity: names sorted,
// plans buildable at representative sizes, and the resilience table exact
// at the paper's thresholds.
func TestFamilyRegistry(t *testing.T) {
	fams := Families()
	if len(fams) < 7 {
		t.Fatalf("only %d families registered", len(fams))
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1].Name >= fams[i].Name {
			t.Errorf("families out of order: %s before %s", fams[i-1].Name, fams[i].Name)
		}
	}
	if _, ok := FindFamily("rushing"); !ok {
		t.Error("rushing family missing")
	}
	if _, ok := FindFamily("no-such-family"); ok {
		t.Error("FindFamily invented a family")
	}
	// Resilience floors: a-lead n^{1/4}, phase-lead √n/10, in exact
	// integer arithmetic.
	alead := MustFind("ring/a-lead/fifo")
	for n, want := range map[int]int{15: 1, 16: 2, 80: 2, 81: 3, 256: 4} {
		if got := alead.ResilientK(n); got != want {
			t.Errorf("a-lead ResilientK(%d) = %d, want %d", n, got, want)
		}
	}
	phase := MustFind("ring/phase-lead/fifo")
	for n, want := range map[int]int{99: 0, 100: 1, 399: 1, 400: 2} {
		if got := phase.ResilientK(n); got != want {
			t.Errorf("phase-lead ResilientK(%d) = %d, want %d", n, got, want)
		}
	}
}
