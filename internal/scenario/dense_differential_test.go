package scenario

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
)

// denseDistribution reruns a ring-simulator scenario's exact trial batch on
// the dense reference interpreter (sim.DenseRun): same per-trial seed
// derivation, same per-trial attack planning, an independently written event
// loop. Schedule independence on the ring means the outcome distribution
// must match the production sparse kernel's.
func denseDistribution(t *testing.T, s Scenario, seed int64, n, trials int) *ring.Distribution {
	t.Helper()
	dist := ring.NewDistribution(n)
	var proto ring.Protocol = s.proto
	var atk ring.Attack
	if s.Attack != "" {
		fam, ok := FindFamily(s.family)
		if !ok {
			t.Fatalf("%s: no registered deviation family %q", s.Name, s.family)
		}
		if fam.Proto != nil {
			proto = fam.Proto(n, proto)
		}
		var err error
		if atk, err = fam.Plan(proto, s.K, s.mode); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
	for trial := 0; trial < trials; trial++ {
		ts := ring.TrialSeed(seed, trial)
		var dev *ring.Deviation
		if atk != nil {
			// Attack batches derive their per-trial seeds with the
			// AttackChunkJob mix, not TrialSeed.
			ts = int64(sim.Mix64(uint64(seed), uint64(trial)+0x9e37))
			var err error
			if dev, err = atk.Plan(n, s.Target, ts); err != nil {
				t.Fatalf("%s trial %d: %v", s.Name, trial, err)
			}
		}
		strategies, err := proto.Strategies(n)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if dev != nil {
			if err := dev.Validate(n); err != nil {
				t.Fatalf("%s trial %d: %v", s.Name, trial, err)
			}
			for p, strat := range dev.Strategies {
				strategies[p-1] = strat
			}
		}
		res, err := sim.DenseRun(sim.Config{
			Strategies: strategies,
			Edges:      sim.RingEdges(n),
			Seed:       ts,
		})
		if err != nil {
			t.Fatalf("%s trial %d: %v", s.Name, trial, err)
		}
		dist.Add(res)
	}
	return dist
}

// equalCells reports whether two contingency rows are identical.
func equalCells(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDenseDifferentialRingScenarios is the sparse-vs-dense differential: for
// every ring-simulator scenario (honest and attacked, ring and wake-up
// topologies) that fits the test sizes, the production kernel's distribution
// and the dense reference interpreter's must be statistically
// indistinguishable under a chi-squared homogeneity test on leader counts
// plus a FAIL cell. Fixed seeds make a flagged divergence a real kernel
// behaviour difference, not noise.
func TestDenseDifferentialRingScenarios(t *testing.T) {
	sizes := []int{8, 32}
	trials := 800
	if testing.Short() {
		sizes, trials = sizes[:1], 300
	}
	const seed = 20180516
	const alpha = 1e-6
	ctx := context.Background()
	for _, n := range sizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			tested := 0
			for _, s := range All() {
				if s.proto == nil || s.Scheduler != SchedFIFO || n < s.MinN {
					continue
				}
				out, err := s.RunOpts(ctx, seed, Opts{N: n, Trials: trials})
				if err != nil {
					t.Fatalf("%s: %v", s.Name, err)
				}
				dense := denseDistribution(t, s, seed, n, trials)
				cells := func(counts []int, failures int) []int {
					c := make([]int, n+1)
					copy(c, counts[1:])
					c[n] = failures
					return c
				}
				sparseCells := cells(out.Counts, out.Failures)
				denseCells := cells(dense.Counts, dense.Failures())
				// Fully forced attacks concentrate both columns on a single
				// cell, which a chi-squared test cannot occupy; exact
				// equality is the stronger agreement and settles those.
				if !equalCells(sparseCells, denseCells) {
					statistic, p, err := stats.ChiSquareHomogeneity(sparseCells, denseCells)
					if err != nil {
						t.Fatalf("%s: %v", s.Name, err)
					}
					if p < alpha {
						t.Errorf("%s at n=%d: sparse and dense kernels disagree: χ²=%.2f p=%.3g",
							s.Name, n, statistic, p)
					}
				}
				tested++
			}
			if tested < 8 {
				t.Fatalf("only %d ring scenarios fit n=%d, want ≥ 8", tested, n)
			}
			t.Logf("n=%d: %d scenarios agree over %d trials each", n, tested, trials)
		})
	}
}
