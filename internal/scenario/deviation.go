package scenario

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/attacks"
	"repro/internal/engine"
	"repro/internal/protocols/phaselead"
	"repro/internal/ring"
)

// The two pseudo-families every sweep understands besides the registered
// attack families.
const (
	// FamilyIdentity is the honest no-op deviation: coalition size zero.
	// Its measured gain is the scenario's own bias — the Definition 2.3 ε
	// of the honest run — and certifying it near zero is what "the
	// protocol is fair" means before any adversary shows up.
	FamilyIdentity = "identity"
	// FamilySelf is the fallback family of attack scenarios whose
	// adversary lives outside the ring simulator (the Shamir share pool,
	// the dictating tree root, the synchronous tamperer): the sweep
	// re-runs the scenario's own run function across coalition sizes and
	// targets instead of planning ring deviations.
	FamilySelf = "self"
)

// DeviationCandidate is one point of a scenario's deviation space: an attack
// family instantiated at a coalition size, steering mode, and target leader.
// Candidates are plain data — (Family, K, Mode, Target) fully determines the
// planned deviation — which is what makes a certificate's arg-max
// reproducible from its digest.
type DeviationCandidate struct {
	// Family is a registered DeviationFamily name, FamilyIdentity, or
	// FamilySelf.
	Family string `json:"family"`
	// K is the coalition size; 0 means the family's own default. For
	// randomized-placement families it is the expected size — planning
	// draws the actual coalition per trial.
	K int `json:"k,omitempty"`
	// Mode is the family-specific variant ("equal", "steer", "c3", …).
	Mode string `json:"mode,omitempty"`
	// Target is the leader the coalition tries to force; 0 for identity.
	Target int64 `json:"target,omitempty"`
}

// String renders the candidate compactly ("rushing/equal k=8 t=2").
func (c DeviationCandidate) String() string {
	if c.Family == FamilyIdentity || c.Family == "" {
		return FamilyIdentity
	}
	s := c.Family
	if c.Mode != "" {
		s += "/" + c.Mode
	}
	s += fmt.Sprintf(" k=%d t=%d", c.K, c.Target)
	return s
}

// DeviationFamily is one enumerable family of adversarial deviations: the
// planning rule of a ring.Attack lifted to a parameter space the equilibrium
// sweeps can walk. Families are registered at init time alongside the
// scenarios that use them, so "which deviations were considered" is part of
// the catalog rather than folklore in the experiment harness.
type DeviationFamily struct {
	// Name is the family slug ("rushing", "phase-rushing", …).
	Name string
	// Protocols lists the protocol slugs the family attacks; empty means
	// every protocol on its topologies (the abort family).
	Protocols []string
	// Topologies lists the topology slugs; empty means {"ring"}.
	Topologies []string
	// Modes lists the family's variants; empty means the single mode "".
	Modes []string
	// Note is a one-line description for catalogs.
	Note string

	// Sizes returns representative coalition sizes (ascending, concrete,
	// at most a handful) for ring size n and the given mode; nil or empty
	// means the single size 0 (family default).
	Sizes func(n int, mode string) []int
	// DefaultK resolves the size a zero K means; nil means 0 stays 0
	// (the family ignores K).
	DefaultK func(n int, mode string) int
	// Plan builds the family's attack against proto at (k, mode).
	Plan func(proto ring.Protocol, k int, mode string) (ring.Attack, error)
	// Proto, if non-nil, replaces the protocol under attack (the wake-up
	// lift pins ids to positions).
	Proto func(n int, base ring.Protocol) ring.Protocol
}

// modes returns the family's mode list, defaulting to the single "".
func (f DeviationFamily) modes() []string {
	if len(f.Modes) == 0 {
		return []string{""}
	}
	return f.Modes
}

// sizes returns the family's representative sizes for (n, mode), defaulting
// to the single size 0.
func (f DeviationFamily) sizes(n int, mode string) []int {
	if f.Sizes == nil {
		return []int{0}
	}
	s := f.Sizes(n, mode)
	if len(s) == 0 {
		return []int{0}
	}
	return s
}

// applies reports whether the family attacks the given topology/protocol.
func (f DeviationFamily) applies(topology, protocol string) bool {
	tops := f.Topologies
	if len(tops) == 0 {
		tops = []string{"ring"}
	}
	found := false
	for _, t := range tops {
		if t == topology {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	if len(f.Protocols) == 0 {
		return true
	}
	for _, p := range f.Protocols {
		if p == protocol {
			return true
		}
	}
	return false
}

// Family registry. The paper's families are registered at init time;
// runtime registration (compiled MAR adversaries, see
// RegisterDeviationFamily) can extend the catalog afterwards, so famMu
// guards both maps against concurrent reads.
var (
	famMu          sync.RWMutex
	familyRegistry = map[string]DeviationFamily{}
	familyNames    []string
)

// registerFamily adds a deviation family to the catalog, panicking on
// malformed or duplicate entries (init-time failure should be loud).
func registerFamily(f DeviationFamily) {
	if err := tryRegisterFamily(f); err != nil {
		panic(err.Error())
	}
}

// tryRegisterFamily validates and inserts one family, the error-returning
// core shared by init-time registration and the runtime hook.
func tryRegisterFamily(f DeviationFamily) error {
	switch {
	case f.Name == "":
		return fmt.Errorf("scenario: registering unnamed deviation family")
	case f.Plan == nil:
		return fmt.Errorf("scenario: family %s has no plan function", f.Name)
	case f.Name == FamilyIdentity || f.Name == FamilySelf:
		return fmt.Errorf("scenario: family name %s is reserved", f.Name)
	}
	famMu.Lock()
	defer famMu.Unlock()
	if _, dup := familyRegistry[f.Name]; dup {
		return fmt.Errorf("scenario: duplicate registration of family %s", f.Name)
	}
	familyRegistry[f.Name] = f
	familyNames = append(familyNames, f.Name)
	sort.Strings(familyNames)
	return nil
}

// Families returns every registered deviation family, sorted by name.
func Families() []DeviationFamily {
	famMu.RLock()
	defer famMu.RUnlock()
	out := make([]DeviationFamily, len(familyNames))
	for i, name := range familyNames {
		out[i] = familyRegistry[name]
	}
	return out
}

// FindFamily returns the named deviation family.
func FindFamily(name string) (DeviationFamily, bool) {
	famMu.RLock()
	defer famMu.RUnlock()
	f, ok := familyRegistry[name]
	return f, ok
}

// resilience maps protocol slugs to the coalition size the paper claims the
// protocol resists. Honest scenarios sweep deviations up to this bound by
// default: a certificate then machine-checks the paper's claim ("no
// coalition within the bound profits") while the above-threshold attack
// scenarios exhibit its tightness. Absent slugs claim nothing (bound 0).
var resilience = map[string]func(n int) int{
	// A-LEADuni resists coalitions of size O(n^{1/4}) (Theorem 5.1).
	"a-lead": floorRoot4,
	// PhaseAsyncLead resists √n/10 (Theorem 6.1).
	"phase-lead": floorSqrtTenth,
	// The sum-output control variant is broken by 4 colluders
	// (Appendix E.4); below that it behaves like the phase protocol.
	"sum-phase": func(int) int { return 3 },
	// Shamir sharing on the complete graph resists ⌈n/2⌉−1 (Section 1.1).
	"shamir": func(n int) int { return (n+1)/2 - 1 },
	// The synchronous models resist any coalition: round boundaries make
	// rushing impossible (Section 1.1).
	"complete-lead":  func(n int) int { return n - 1 },
	"ring-sync-lead": func(n int) int { return n - 1 },
}

// floorRoot4 returns ⌊n^{1/4}⌋ in exact integer arithmetic.
func floorRoot4(n int) int {
	k := 0
	for (k+1)*(k+1)*(k+1)*(k+1) <= n {
		k++
	}
	return k
}

// floorSqrtTenth returns ⌊√n/10⌋ in exact integer arithmetic.
func floorSqrtTenth(n int) int {
	k := 0
	for 100*(k+1)*(k+1) <= n {
		k++
	}
	return k
}

// ResilientK returns the coalition size the paper claims this scenario's
// protocol resists on a network of size n — the default sweep bound for
// honest scenarios. Protocols without a resilience claim return 0.
func (s Scenario) ResilientK(n int) int {
	f, ok := resilience[s.Protocol]
	if !ok {
		return 0
	}
	return f(n)
}

// DefaultSweepTargets returns the target leaders a sweep tries by default:
// the scenario's registered target (or position 2) first, then one far
// position, so target choice is a real sweep dimension without blowing up
// the space.
func DefaultSweepTargets(n int, registered int64) []int64 {
	primary := registered
	if primary == 0 {
		primary = 2
	}
	second := int64(2)
	if primary == 2 {
		second = int64(n/2 + 1)
	}
	if second == primary || second > int64(n) || second < 1 {
		return []int64{primary}
	}
	return []int64{primary, second}
}

// DeviationSpace enumerates the scenario's deviation candidates under the
// resolved overrides: the identity deviation plus, for honest ring-simulator
// scenarios, every applicable registered family at coalition sizes up to
// maxK (0 picks the protocol's resilience bound, so the default certificate
// checks exactly the paper's claim); for attack scenarios, their own family
// across all its modes and representative sizes (or the self family for
// non-ring adversaries). Infeasible candidates — sizes the planner rejects
// for this n — are excluded, so the returned space is exactly what a sweep
// will run, in a deterministic order.
func (s Scenario) DeviationSpace(o Opts, maxK int, targets []int64) []DeviationCandidate {
	p := s.params(o)
	n := p.N
	if len(targets) == 0 {
		targets = DefaultSweepTargets(n, p.Target)
	}
	var out []DeviationCandidate
	if s.Attack == "" || s.proto != nil {
		out = append(out, DeviationCandidate{Family: FamilyIdentity})
	}
	switch {
	case s.Attack != "" && s.family != "":
		// The scenario's own family, all modes, registered size first.
		fam, ok := FindFamily(s.family)
		if !ok {
			return out
		}
		for _, mode := range fam.modes() {
			kReg := 0
			if mode == s.mode {
				kReg = p.K
			}
			if kReg == 0 {
				if fam.DefaultK != nil {
					kReg = fam.DefaultK(n, mode)
				} else {
					kReg = fam.sizes(n, mode)[0]
				}
			}
			sizes := dedupSizes(append([]int{kReg}, subsample(fam.sizes(n, mode), 3)...))
			for _, k := range sizes {
				for _, t := range targets {
					cand := DeviationCandidate{Family: fam.Name, K: k, Mode: mode, Target: t}
					if s.feasibleDeviation(cand, n) {
						out = append(out, cand)
					}
				}
			}
		}
	case s.Attack != "":
		// Non-ring adversary: sweep the scenario's own run function. The
		// run may ignore the target, so out-of-range targets are filtered
		// here — the family branches get the same check from planning.
		for _, t := range targets {
			if t < 1 || t > int64(n) {
				continue
			}
			out = append(out, DeviationCandidate{Family: FamilySelf, K: p.K, Target: t})
		}
	case s.proto != nil:
		// Honest ring-simulator scenario: every applicable family within
		// the resilience bound.
		if maxK <= 0 {
			maxK = s.ResilientK(n)
		}
		for _, fam := range Families() {
			if !fam.applies(s.Topology, s.Protocol) {
				continue
			}
			for _, mode := range fam.modes() {
				for _, k := range subsample(fam.sizes(n, mode), 3) {
					if k < 1 || k > maxK {
						continue
					}
					for _, t := range targets {
						cand := DeviationCandidate{Family: fam.Name, K: k, Mode: mode, Target: t}
						if s.feasibleDeviation(cand, n) {
							out = append(out, cand)
						}
					}
				}
			}
		}
	}
	return out
}

// RegisteredDeviation returns the scenario's own point in its deviation
// space — the candidate that reproduces the registered attack run — and
// false for honest scenarios.
func (s Scenario) RegisteredDeviation(o Opts) (DeviationCandidate, bool) {
	if s.Attack == "" {
		return DeviationCandidate{}, false
	}
	p := s.params(o)
	if s.family == "" {
		return DeviationCandidate{Family: FamilySelf, K: p.K, Target: p.Target}, true
	}
	return DeviationCandidate{Family: s.family, K: p.K, Mode: s.mode, Target: p.Target}, true
}

// deviationAttack resolves a family candidate to the protocol under attack
// and the planned attack value.
func (s Scenario) deviationAttack(cand DeviationCandidate, n int) (ring.Protocol, ring.Attack, error) {
	fam, ok := FindFamily(cand.Family)
	if !ok {
		return nil, nil, fmt.Errorf("scenario: no registered deviation family %q", cand.Family)
	}
	if s.proto == nil {
		return nil, nil, fmt.Errorf("scenario: %s has no ring protocol to attack", s.Name)
	}
	proto := s.proto
	if fam.Proto != nil {
		proto = fam.Proto(n, proto)
	}
	atk, err := fam.Plan(proto, cand.K, cand.Mode)
	if err != nil {
		return nil, nil, err
	}
	return proto, atk, nil
}

// feasibleDeviation reports whether the candidate plans successfully on a
// ring of size n (probed with a fixed seed; randomized-placement families
// whose feasibility is essentially seed-independent probe representatively).
func (s Scenario) feasibleDeviation(cand DeviationCandidate, n int) bool {
	_, atk, err := s.deviationAttack(cand, n)
	if err != nil {
		return false
	}
	_, err = atk.Plan(n, cand.Target, 1)
	return err == nil
}

// RunDeviation runs one deviation candidate's trial batch against the
// scenario's configuration: the identity candidate reproduces the honest
// run (the scenario itself for honest entries, the underlying protocol for
// ring attack entries), a family candidate routes through
// ring.AttackTrialsOpts exactly as the registered attack scenarios do —
// same seed derivation, same engine — so a sweep restricted to a scenario's
// own candidate is byte-identical to the scenario's run, and a self
// candidate re-runs the scenario's own run function at the candidate's
// coalition size and target.
func (s Scenario) RunDeviation(ctx context.Context, seed int64, cand DeviationCandidate, o Opts) (*ring.Distribution, error) {
	p := s.params(o)
	if p.N < s.MinN {
		return nil, fmt.Errorf("scenario: %s needs n ≥ %d, got %d", s.Name, s.MinN, p.N)
	}
	if p.Trials < 1 {
		return nil, fmt.Errorf("scenario: %s needs ≥ 1 trial, got %d", s.Name, p.Trials)
	}
	switch cand.Family {
	case "", FamilyIdentity:
		if s.Attack == "" {
			return s.run(ctx, seed, p)
		}
		if s.proto == nil {
			return nil, fmt.Errorf("scenario: %s has no honest baseline run", s.Name)
		}
		return ring.TrialsOpts(ctx, ring.Spec{N: p.N, Protocol: s.proto, Seed: seed}, p.Trials, p.trialOptions())
	case FamilySelf:
		if s.Attack == "" {
			return nil, fmt.Errorf("scenario: %s is honest; the self family needs an attack run", s.Name)
		}
		p.K, p.Target = cand.K, cand.Target
		return s.run(ctx, seed, p)
	default:
		proto, atk, err := s.deviationAttack(cand, p.N)
		if err != nil {
			return nil, err
		}
		spec := ring.AttackSpec{N: p.N, Protocol: proto, Attack: atk, Target: cand.Target, Seed: seed}
		return ring.RunAttackTrials(ctx, spec, p.Trials, p.trialOptions())
	}
}

// subsample keeps at most budget sizes from the ascending list: the
// smallest, the largest, and evenly spread interior points — enough to probe
// a family's range without exploding the sweep.
func subsample(sizes []int, budget int) []int {
	if len(sizes) <= budget || budget < 1 {
		return sizes
	}
	if budget == 1 {
		return sizes[:1]
	}
	out := make([]int, 0, budget)
	for i := 0; i < budget; i++ {
		out = append(out, sizes[i*(len(sizes)-1)/(budget-1)])
	}
	return dedupSizes(out)
}

// dedupSizes removes duplicates preserving first-occurrence order.
func dedupSizes(sizes []int) []int {
	seen := make(map[int]bool, len(sizes))
	out := sizes[:0:0]
	for _, k := range sizes {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// feasibleRange collects the sizes in [lo, hi] accepted by ok, locating the
// smallest with the engine's deterministic first-hit scan (the same
// machinery behind the PhaseRushing steering search) and walking the rest.
func feasibleRange(lo, hi int, ok func(k int) bool) []int {
	if hi < lo {
		return nil
	}
	first, found := engine.Search(hi-lo+1, func(i int) bool { return ok(lo + i) }, 0)
	if !found {
		return nil
	}
	var out []int
	for k := lo + first; k <= hi; k++ {
		if ok(k) {
			out = append(out, k)
		}
	}
	return out
}

// The registered deviation families: every adversarial deviation of the
// paper, parameterized, plus the destructive abort control.
func init() {
	half := func(n int) int { return n / 2 }

	registerFamily(DeviationFamily{
		Name:       "abort",
		Topologies: []string{"ring", "wakeup"},
		Note:       "destructive control: k silent processors force FAIL, gain ≤ 0",
		Sizes: func(n int, _ string) []int {
			var out []int
			for k := 1; k <= 3 && k < n; k++ {
				out = append(out, k)
			}
			return out
		},
		DefaultK: func(int, string) int { return 1 },
		Plan: func(_ ring.Protocol, k int, _ string) (ring.Attack, error) {
			return attacks.Abort{K: k}, nil
		},
	})

	registerFamily(DeviationFamily{
		Name:      "basic-single",
		Protocols: []string{"basic-lead"},
		Note:      "Claim B.1: one value-biasing adversary cancels the Basic-LEAD sum",
		Sizes:     func(int, string) []int { return []int{1} },
		DefaultK:  func(int, string) int { return 1 },
		Plan: func(_ ring.Protocol, _ int, _ string) (ring.Attack, error) {
			return attacks.BasicSingle{}, nil
		},
	})

	registerFamily(DeviationFamily{
		Name:      "rushing",
		Protocols: []string{"a-lead"},
		Modes:     []string{"equal", "staggered"},
		Note:      "Section 4 rushing against A-LEADuni (Theorems 4.2 and 4.3)",
		Sizes: func(n int, mode string) []int {
			ok := func(k int) bool { _, err := attacks.EqualDistances(n, k); return err == nil }
			if mode == "staggered" {
				ok = func(k int) bool { _, err := attacks.StaggeredDistances(n, k); return err == nil }
			}
			return feasibleRange(2, half(n), ok)
		},
		DefaultK: func(n int, mode string) int {
			if mode == "staggered" {
				return attacks.MinCubicK(n)
			}
			return attacks.SqrtK(n)
		},
		Plan: func(_ ring.Protocol, k int, mode string) (ring.Attack, error) {
			switch mode {
			case "equal":
				return attacks.Rushing{Place: attacks.PlaceEqual, K: k}, nil
			case "staggered", "":
				return attacks.Rushing{Place: attacks.PlaceStaggered, K: k}, nil
			default:
				return nil, fmt.Errorf("scenario: unknown rushing mode %q", mode)
			}
		},
	})

	registerFamily(DeviationFamily{
		Name:      "randomized",
		Protocols: []string{"a-lead"},
		Modes:     []string{"c3", "c5"},
		Note:      "Theorem C.1: randomly located rushing coalitions (size is the expected draw)",
		Sizes: func(n int, _ string) []int {
			k := int(float64(n)*attacks.DefaultP(n) + 0.5)
			if k < 2 {
				k = 2
			}
			if k >= n {
				k = n - 1
			}
			return []int{k}
		},
		Plan: func(_ ring.Protocol, _ int, mode string) (ring.Attack, error) {
			switch mode {
			case "c3":
				return attacks.Randomized{C: 3}, nil
			case "c5":
				return attacks.Randomized{C: 5}, nil
			case "":
				return attacks.Randomized{}, nil
			default:
				return nil, fmt.Errorf("scenario: unknown randomized mode %q", mode)
			}
		},
	})

	registerFamily(DeviationFamily{
		Name:      "half-ring",
		Protocols: []string{"a-lead"},
		Note:      "Theorem 7.2 on the ring: a consecutive ⌈n/2⌉ block dictates",
		Sizes: func(n int, _ string) []int {
			lo := (n + 1) / 2
			if lo >= n {
				return nil
			}
			return dedupSizes([]int{lo, (lo + n - 1) / 2, n - 1})
		},
		DefaultK: func(n int, _ string) int { return (n + 1) / 2 },
		Plan: func(_ ring.Protocol, k int, _ string) (ring.Attack, error) {
			return attacks.HalfRing{K: k}, nil
		},
	})

	phaseModes := map[string]attacks.PhaseMode{
		"steer":      attacks.PhaseSteer,
		"besteffort": attacks.PhaseBestEffort,
		"nosteer":    attacks.PhaseNoSteer,
		"chase":      attacks.PhaseChase,
	}
	registerFamily(DeviationFamily{
		Name:      "phase-rushing",
		Protocols: []string{"phase-lead"},
		Modes:     []string{"steer", "besteffort", "nosteer", "chase"},
		Note:      "Section 6 tightness: rushing against PhaseAsyncLead across steering modes",
		Sizes: func(n int, _ string) []int {
			lo := floorSqrtTenth(n)
			if lo < 3 {
				lo = 3
			}
			return dedupSizes([]int{lo, attacks.SqrtK(n), attacks.SqrtK(n) + 3})
		},
		DefaultK: func(n int, _ string) int { return attacks.SqrtK(n) + 3 },
		Plan: func(proto ring.Protocol, k int, mode string) (ring.Attack, error) {
			pp, ok := proto.(phaselead.Protocol)
			if !ok {
				return nil, fmt.Errorf("scenario: phase-rushing needs a PhaseAsyncLead protocol, got %s", proto.Name())
			}
			m, ok := phaseModes[mode]
			if !ok && mode != "" {
				return nil, fmt.Errorf("scenario: unknown phase-rushing mode %q", mode)
			}
			return attacks.PhaseRushing{Protocol: pp, K: k, Mode: m}, nil
		},
	})

	registerFamily(DeviationFamily{
		Name:      "sum-phase",
		Protocols: []string{"sum-phase", "phase-lead"},
		Note:      "Appendix E.4: four colluders against the sum-output phase variant",
		Sizes:     func(int, string) []int { return []int{4} },
		DefaultK:  func(int, string) int { return 4 },
		Plan: func(_ ring.Protocol, _ int, _ string) (ring.Attack, error) {
			return attacks.SumPhase{}, nil
		},
	})

	registerFamily(DeviationFamily{
		Name:       "wakeup-rushing",
		Protocols:  []string{"a-lead"},
		Topologies: []string{"wakeup"},
		Note:       "Appendix H: the staggered rushing attack lifted over the wake-up exchange",
		Sizes: func(n int, _ string) []int {
			return subsample(feasibleRange(2, half(n), func(k int) bool {
				_, err := attacks.StaggeredDistances(n, k)
				return err == nil
			}), 3)
		},
		DefaultK: func(n int, _ string) int { return attacks.MinCubicK(n) },
		Plan: func(_ ring.Protocol, k int, _ string) (ring.Attack, error) {
			return attacks.WakeupRushing{Inner: attacks.Rushing{Place: attacks.PlaceStaggered, K: k}}, nil
		},
		Proto: func(n int, _ ring.Protocol) ring.Protocol {
			return attacks.WakeupRushing{}.Protocol(n)
		},
	})
}
