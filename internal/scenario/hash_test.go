package scenario

import (
	"context"
	"reflect"
	"testing"
)

func TestJobKeyStableAndSensitive(t *testing.T) {
	s := MustFind("ring/a-lead/fifo")
	base := s.JobKey("v1", 7, Opts{N: 16, Trials: 100})
	if len(base) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", base)
	}
	if again := s.JobKey("v1", 7, Opts{N: 16, Trials: 100}); again != base {
		t.Fatal("identical configuration hashed to different keys")
	}

	// Every identity-relevant dimension must move the key.
	distinct := map[string]string{
		"seed":     s.JobKey("v1", 8, Opts{N: 16, Trials: 100}),
		"n":        s.JobKey("v1", 7, Opts{N: 18, Trials: 100}),
		"trials":   s.JobKey("v1", 7, Opts{N: 16, Trials: 101}),
		"version":  s.JobKey("v2", 7, Opts{N: 16, Trials: 100}),
		"scenario": MustFind("ring/a-lead/lifo").JobKey("v1", 7, Opts{N: 16, Trials: 100}),
	}
	seen := map[string]string{base: "base"}
	for dim, key := range distinct {
		if prev, dup := seen[key]; dup {
			t.Fatalf("varying %s collided with %s", dim, prev)
		}
		seen[key] = dim
	}

	// Attack scenarios also key on K and Target.
	atk := MustFind("ring/a-lead/attack=rushing-equal")
	if atk.JobKey("v1", 7, Opts{K: 3}) == atk.JobKey("v1", 7, Opts{K: 4}) {
		t.Fatal("coalition size does not move the key")
	}
	if atk.JobKey("v1", 7, Opts{Target: 2}) == atk.JobKey("v1", 7, Opts{Target: 3}) {
		t.Fatal("target does not move the key")
	}

	// Execution-only knobs must NOT move the key: the result is identical
	// at any worker count, with or without a pool or progress hook.
	if s.JobKey("v1", 7, Opts{N: 16, Trials: 100, Workers: 8}) != base {
		t.Fatal("workers moved the key")
	}
	if s.JobKey("v1", 7, Opts{N: 16, Trials: 100, Progress: func(Snapshot) {}}) != base {
		t.Fatal("progress hook moved the key")
	}
}

func TestJobKeyResolvesDefaults(t *testing.T) {
	s := MustFind("ring/basic-lead/fifo")
	// Explicitly passing the registered defaults is the same job as
	// passing zero overrides.
	if s.JobKey("v", 1, Opts{}) != s.JobKey("v", 1, Opts{N: s.N, Trials: s.Trials}) {
		t.Fatal("defaulted and explicit-default configurations hashed differently")
	}
}

func TestRunOptsProgressSnapshots(t *testing.T) {
	s := MustFind("ring/basic-lead/fifo")
	const trials = 300

	capture := func(workers int) ([]Snapshot, *Outcome) {
		var snaps []Snapshot
		out, err := s.RunOpts(context.Background(), 42, Opts{
			N:        8,
			Trials:   trials,
			Workers:  workers,
			Progress: func(snap Snapshot) { snaps = append(snaps, snap) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return snaps, out
	}

	snaps, out := capture(1)
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots")
	}
	final := snaps[len(snaps)-1]
	if final.Done != trials || final.Total != trials {
		t.Fatalf("final snapshot %d/%d, want %d/%d", final.Done, final.Total, trials, trials)
	}
	if final.MaxWin.Trials != trials {
		t.Fatalf("final rate snapshot over %d trials, want %d", final.MaxWin.Trials, trials)
	}
	// The final snapshot must agree with the outcome.
	if final.MaxWinLeader != out.MaxWinLeader || final.MaxWin.Rate != out.MaxWinRate {
		t.Fatalf("final snapshot (%d@%f) disagrees with outcome (%d@%f)",
			final.MaxWinLeader, final.MaxWin.Rate, out.MaxWinLeader, out.MaxWinRate)
	}
	if final.Epsilon != out.Epsilon {
		t.Fatalf("final epsilon %f != outcome epsilon %f", final.Epsilon, out.Epsilon)
	}

	// The whole snapshot sequence is deterministic at any worker count.
	for _, workers := range []int{2, 5} {
		got, _ := capture(workers)
		if !reflect.DeepEqual(got, snaps) {
			t.Fatalf("snapshot sequence at %d workers differs from sequential", workers)
		}
	}

	// A run with a progress hook returns the same outcome as one without.
	plain, err := s.RunOpts(context.Background(), 42, Opts{N: 8, Trials: trials})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Counts, out.Counts) {
		t.Fatal("progress hook changed the outcome")
	}
}
