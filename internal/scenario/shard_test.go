package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/ring"
)

// TestRunShardPartitionMatchesRunOpts pins the fleet byte-identity
// contract at the scenario layer: for every registered scenario, splitting
// the batch into uneven shards via RunShard, merging the shard
// distributions, and summarizing through OutcomeFromDist must reproduce the
// exact bytes RunOpts produces on a single node. This is the invariant
// that lets a coordinator hand trial ranges to remote workers and still
// serve results indistinguishable from local execution.
func TestRunShardPartitionMatchesRunOpts(t *testing.T) {
	const trials = 50
	const step = 17 // deliberately does not divide trials
	ctx := context.Background()
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			if !s.Distributable() {
				t.Fatalf("%s is not distributable", s.Name)
			}
			o := Opts{Trials: trials, Workers: 2}
			want, err := s.RunOpts(ctx, 42, o)
			if err != nil {
				t.Fatalf("RunOpts: %v", err)
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}

			n, total := s.Resolve(o)
			if total != trials {
				t.Fatalf("Resolve trials = %d, want %d", total, trials)
			}
			merged := ring.NewDistribution(n)
			// Merge out of order (last shard first) to exercise
			// commutativity, not just partition correctness.
			var shards []*ring.Distribution
			for start := 0; start < total; start += step {
				end := start + step
				if end > total {
					end = total
				}
				shard, err := s.RunShard(ctx, 42, o, start, end)
				if err != nil {
					t.Fatalf("RunShard(%d, %d): %v", start, end, err)
				}
				shards = append(shards, shard)
			}
			for i := len(shards) - 1; i >= 0; i-- {
				if err := merged.Merge(shards[i]); err != nil {
					t.Fatalf("merge shard %d: %v", i, err)
				}
			}
			got := s.OutcomeFromDist(merged, o)
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotJSON) != string(wantJSON) {
				t.Fatalf("sharded outcome differs from single-node run\n got: %s\nwant: %s", gotJSON, wantJSON)
			}
		})
	}
}

// TestRunShardValidation pins the shard argument checks: ranges outside
// the resolved batch and undersized networks are rejected.
// TestRunMatchesRunOpts pins the convenience wrapper: Run is RunOpts at
// registered defaults.
func TestRunMatchesRunOpts(t *testing.T) {
	sc, ok := Find("ring/basic-lead/fifo")
	if !ok {
		t.Fatal("scenario missing")
	}
	ctx := context.Background()
	got, err := sc.Run(ctx, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.RunOpts(ctx, 9, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if !bytes.Equal(gb, wb) {
		t.Fatal("Run differs from RunOpts at defaults")
	}
}

func TestRunShardValidation(t *testing.T) {
	s, ok := Find("ring/basic-lead/fifo")
	if !ok {
		t.Fatal("scenario not registered")
	}
	ctx := context.Background()
	o := Opts{Trials: 10}
	for _, r := range [][2]int{{-1, 5}, {7, 3}, {0, 11}} {
		if _, err := s.RunShard(ctx, 1, o, r[0], r[1]); err == nil {
			t.Fatalf("shard [%d, %d) of 10 trials accepted", r[0], r[1])
		}
	}
	if _, err := s.RunShard(ctx, 1, Opts{N: 1, Trials: 10}, 0, 5); err == nil {
		t.Fatal("n below MinN accepted")
	}
	// A valid empty shard merges as a no-op.
	shard, err := s.RunShard(ctx, 1, o, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if shard.Trials != 0 {
		t.Fatalf("empty shard ran %d trials", shard.Trials)
	}
}
