package scenario

import (
	"fmt"
	"regexp"
	"sort"
)

// registry holds every registered scenario, keyed by name. Registration is
// init-time only; names is kept sorted by register, so every accessor is
// read-only afterwards and safe for concurrent use.
var (
	registry = map[string]Scenario{}
	names    []string
)

// register adds a scenario to the catalog. It panics on duplicate or
// malformed entries: registration happens at init time and a broken catalog
// should fail loudly.
func register(s Scenario) {
	switch {
	case s.Name == "":
		panic("scenario: registering unnamed scenario")
	case s.Topology == "" || s.Protocol == "" || s.Scheduler == "":
		panic(fmt.Sprintf("scenario: %s missing topology/protocol/scheduler", s.Name))
	case s.N < 2 || s.Trials < 1:
		panic(fmt.Sprintf("scenario: %s has bad defaults n=%d trials=%d", s.Name, s.N, s.Trials))
	case s.run == nil:
		panic(fmt.Sprintf("scenario: %s has no run function", s.Name))
	}
	if s.MinN == 0 {
		s.MinN = 2
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %s", s.Name))
	}
	registry[s.Name] = s
	names = append(names, s.Name)
	sort.Strings(names)
}

// All returns every registered scenario, sorted by name.
func All() []Scenario {
	out := make([]Scenario, len(names))
	for i, name := range names {
		out[i] = registry[name]
	}
	return out
}

// Find returns the named scenario.
func Find(name string) (Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// MustFind is Find for callers with a static name (the harness experiments);
// it panics on a missing entry.
func MustFind(name string) Scenario {
	s, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("scenario: no registered scenario %q", name))
	}
	return s
}

// Match returns the scenarios whose name matches the regular expression, in
// name order. An empty pattern matches everything.
func Match(pattern string) ([]Scenario, error) {
	if pattern == "" {
		return All(), nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("scenario: bad match pattern: %w", err)
	}
	var out []Scenario
	for _, s := range All() {
		if re.MatchString(s.Name) {
			out = append(out, s)
		}
	}
	return out, nil
}

// Descriptor is the exported, serializable description of a scenario.
type Descriptor struct {
	Name      string `json:"name"`
	Topology  string `json:"topology"`
	Protocol  string `json:"protocol"`
	Scheduler string `json:"scheduler"`
	Attack    string `json:"attack,omitempty"`
	N         int    `json:"n"`
	MinN      int    `json:"min_n"`
	Trials    int    `json:"trials"`
	K         int    `json:"k,omitempty"`
	Target    int64  `json:"target,omitempty"`
	Uniform   bool   `json:"uniform"`
	Note      string `json:"note,omitempty"`
}

// Describe returns the scenario's catalog entry.
func (s Scenario) Describe() Descriptor {
	return Descriptor{
		Name:      s.Name,
		Topology:  s.Topology,
		Protocol:  s.Protocol,
		Scheduler: s.Scheduler,
		Attack:    s.Attack,
		N:         s.N,
		MinN:      s.MinN,
		Trials:    s.Trials,
		K:         s.K,
		Target:    s.Target,
		Uniform:   s.Uniform,
		Note:      s.Note,
	}
}
