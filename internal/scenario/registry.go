package scenario

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
)

// registry holds every registered scenario, keyed by name. The catalog is
// built at init time, but runtime registration (compiled MAR specs, see
// RegisterRingScenario) can extend it afterwards; regMu guards both maps
// so late registrations stay safe against concurrent catalog reads.
var (
	regMu    sync.RWMutex
	registry = map[string]Scenario{}
	names    []string
)

// register adds a scenario to the catalog, panicking on duplicate or
// malformed entries: init-time registration of a broken catalog should
// fail loudly.
func register(s Scenario) {
	if err := tryRegister(s); err != nil {
		panic(err.Error())
	}
}

// tryRegister validates and inserts one scenario, the error-returning
// core shared by init-time registration and the runtime hooks.
func tryRegister(s Scenario) error {
	switch {
	case s.Name == "":
		return fmt.Errorf("scenario: registering unnamed scenario")
	case s.Topology == "" || s.Protocol == "" || s.Scheduler == "":
		return fmt.Errorf("scenario: %s missing topology/protocol/scheduler", s.Name)
	case s.N < 2 || s.Trials < 1:
		return fmt.Errorf("scenario: %s has bad defaults n=%d trials=%d", s.Name, s.N, s.Trials)
	case s.run == nil:
		return fmt.Errorf("scenario: %s has no run function", s.Name)
	}
	if s.MinN == 0 {
		s.MinN = 2
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("scenario: duplicate registration of %s", s.Name)
	}
	registry[s.Name] = s
	names = append(names, s.Name)
	sort.Strings(names)
	return nil
}

// All returns every registered scenario, sorted by name.
func All() []Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Scenario, len(names))
	for i, name := range names {
		out[i] = registry[name]
	}
	return out
}

// Find returns the named scenario.
func Find(name string) (Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// MustFind is Find for callers with a static name (the harness experiments);
// it panics on a missing entry.
func MustFind(name string) Scenario {
	s, ok := Find(name)
	if !ok {
		panic(fmt.Sprintf("scenario: no registered scenario %q", name))
	}
	return s
}

// Match returns the scenarios whose name matches the regular expression, in
// name order. An empty pattern matches everything.
func Match(pattern string) ([]Scenario, error) {
	if pattern == "" {
		return All(), nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("scenario: bad match pattern: %w", err)
	}
	var out []Scenario
	for _, s := range All() {
		if re.MatchString(s.Name) {
			out = append(out, s)
		}
	}
	return out, nil
}

// Descriptor is the exported, serializable description of a scenario.
type Descriptor struct {
	Name      string `json:"name"`
	Topology  string `json:"topology"`
	Protocol  string `json:"protocol"`
	Scheduler string `json:"scheduler"`
	Attack    string `json:"attack,omitempty"`
	N         int    `json:"n"`
	MinN      int    `json:"min_n"`
	Trials    int    `json:"trials"`
	K         int    `json:"k,omitempty"`
	Target    int64  `json:"target,omitempty"`
	Uniform   bool   `json:"uniform"`
	Note      string `json:"note,omitempty"`
}

// Describe returns the scenario's catalog entry.
func (s Scenario) Describe() Descriptor {
	return Descriptor{
		Name:      s.Name,
		Topology:  s.Topology,
		Protocol:  s.Protocol,
		Scheduler: s.Scheduler,
		Attack:    s.Attack,
		N:         s.N,
		MinN:      s.MinN,
		Trials:    s.Trials,
		K:         s.K,
		Target:    s.Target,
		Uniform:   s.Uniform,
		Note:      s.Note,
	}
}
