package scenario

import (
	"fmt"

	"repro/internal/ring"
)

// Runtime registration hooks. The catalog is built at init time, but
// compiled protocol specs (see internal/mardsl) arrive later — from
// embedded spec files, -mar flags, or generated text — and register
// through these entry points. A runtime-registered scenario is
// indistinguishable from an init-time one: same builders, same chunked
// jobs, same deviation plumbing, so fleserve, flecert, and cmd/scenarios
// serve it unchanged.

// RegisterRingScenario registers an honest ring-simulator scenario running
// proto under s.Scheduler. The run, chunked-job, and single-execution
// functions are derived exactly as for the init-time catalog, so the
// scenario shards over the fleet (RunShard) and answers deviation sweeps
// like any native entry.
func RegisterRingScenario(s Scenario, proto ring.Protocol) error {
	if proto == nil {
		return fmt.Errorf("scenario: %s: nil protocol", s.Name)
	}
	switch s.Scheduler {
	case SchedFIFO, SchedLIFO, SchedRandom:
	default:
		return fmt.Errorf("scenario: %s: unknown scheduler %q", s.Name, s.Scheduler)
	}
	chunks, single := ringHonest(proto, s.Scheduler)
	s.proto = proto
	s.chunks, s.run, s.single = chunks, chunkedRun(chunks), single
	return tryRegister(s)
}

// RegisterRingAttackScenario registers a ring attack scenario planning
// through the named registered deviation family (and mode) against proto,
// exactly as the init-time attack catalog does — equilibrium sweeps
// restricted to the scenario's own candidate stay byte-identical to its
// runs. The family must already be registered (see
// RegisterDeviationFamily).
func RegisterRingAttackScenario(s Scenario, proto ring.Protocol, family, mode string) error {
	if proto == nil {
		return fmt.Errorf("scenario: %s: nil protocol", s.Name)
	}
	if _, ok := FindFamily(family); !ok {
		return fmt.Errorf("scenario: %s: no registered deviation family %q", s.Name, family)
	}
	if s.Scheduler == "" {
		s.Scheduler = SchedFIFO
	}
	chunks, single := ringFamilyAttack(proto, family, mode)
	s.proto, s.family, s.mode = proto, family, mode
	s.chunks, s.run, s.single = chunks, chunkedRun(chunks), single
	return tryRegister(s)
}

// RegisterDeviationFamily adds a deviation family to the catalog at
// runtime; equilibrium sweeps over scenarios the family applies to pick it
// up immediately.
func RegisterDeviationFamily(f DeviationFamily) error {
	return tryRegisterFamily(f)
}

// FindRingProtocol returns the ring protocol behind a registered
// ring-topology scenario with the given protocol slug. It is how runtime
// registrations resolve the protocol an adversary spec deviates from —
// native protocols and previously registered compiled ones alike.
func FindRingProtocol(slug string) (ring.Protocol, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, name := range names {
		s := registry[name]
		if s.Topology == "ring" && s.Protocol == slug && s.proto != nil {
			return s.proto, true
		}
	}
	return nil, false
}
