package scenario

import (
	"sync"
	"testing"
)

func TestAllIsConcurrencySafe(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if len(All()) < 25 {
				t.Error("short catalog")
			}
			if _, err := Match("^ring/"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
