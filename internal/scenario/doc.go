// Package scenario is the catalog of runnable configurations: every point of
// the protocol × topology × scheduler × adversary space studied by the
// reproduction is a named, self-describing value with a uniform way to run
// it and a uniform outcome. The registry is the substrate of the
// cross-protocol differential tests (any two uniform-election scenarios must
// produce statistically indistinguishable leader distributions), of the
// schedule-independence property tests, and of the cmd/scenarios matrix
// runner; the harness experiments are thin lookups into it.
//
// # Naming and structure
//
// Scenarios are named <topology>/<protocol>/<scheduler> for honest runs and
// <topology>/<protocol>/attack=<attack> for adversarial ones, e.g.
// "ring/a-lead/fifo" or "complete/shamir/attack=pool". Registration happens
// at init time via the catalog in catalog.go; after init the registry is
// read-only and safe for concurrent use.
//
// # Invariants
//
//   - Every scenario's trial batch routes through the parallel Monte-Carlo
//     engine (internal/engine): for a fixed seed the outcome is bit-for-bit
//     identical at any worker count.
//   - Ring scenarios reuse the exact seed derivation of
//     ring.Trials/AttackTrials (ring.TrialSeed), so a registry run
//     reproduces the corresponding harness experiment byte-identically.
//   - Trial jobs run their executions on the engine's per-worker arenas
//     (ring.RunArena, fullnet/treeproto RunArena, arena-recycled random
//     schedulers), so batches stay near-allocation-free; the reset-vs-fresh
//     property test pins that an arena execution equals a fresh one bit for
//     bit on every ring scenario.
//   - Scenarios marked Uniform have leader distributions that are uniform
//     over [1..N] by construction; the differential test suite checks all
//     pairs of them against each other with chi-squared homogeneity.
package scenario
