package scenario

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/stats"
)

// differentialFamily returns the uniform-election scenarios the matrix
// cross-checks. Scheduler variants of one configuration are excluded: the
// schedule-independence property test already proves them bit-identical, so
// they would only duplicate columns of the matrix.
func differentialFamily() []Scenario {
	var family []Scenario
	for _, s := range All() {
		if s.Uniform && (s.Scheduler == SchedFIFO || s.Scheduler == SchedLockstep || s.Scheduler == SchedPairwise) {
			family = append(family, s)
		}
	}
	return family
}

// TestDifferentialUniformMatrix is the cross-protocol differential check:
// every pair of uniform-election scenarios — across protocols, topologies
// and network models — must produce statistically indistinguishable leader
// distributions at the same n over ≥ 2000 engine trials each. Failures are
// appended as an extra contingency cell so a protocol that trades wins for
// FAILs cannot slip through. The significance threshold is Bonferroni-safe
// for the matrix size; the run is fully deterministic (fixed seed), so a
// failure here is a real distributional divergence, not flakiness.
func TestDifferentialUniformMatrix(t *testing.T) {
	sizes := []int{8, 32}
	if testing.Short() {
		sizes = sizes[:1]
	}
	const trials = 2000
	const alpha = 1e-6
	family := differentialFamily()
	if len(family) < 10 {
		t.Fatalf("uniform family has %d scenarios, want ≥ 10", len(family))
	}
	ctx := context.Background()
	for _, n := range sizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			type column struct {
				name  string
				cells []int // leader counts 1..n, then a FAIL cell
			}
			var cols []column
			for _, s := range family {
				if n < s.MinN {
					continue
				}
				out, err := s.RunOpts(ctx, 20180516, Opts{N: n, Trials: trials})
				if err != nil {
					t.Fatalf("%s: %v", s.Name, err)
				}
				cells := make([]int, n+1)
				copy(cells, out.Counts[1:])
				cells[n] = out.Failures
				cols = append(cols, column{name: s.Name, cells: cells})
			}
			if len(cols) < 10 {
				t.Fatalf("only %d scenarios ran at n=%d, want ≥ 10", len(cols), n)
			}
			pairs := 0
			for i := 0; i < len(cols); i++ {
				for j := i + 1; j < len(cols); j++ {
					pairs++
					statistic, p, err := stats.ChiSquareHomogeneity(cols[i].cells, cols[j].cells)
					if err != nil {
						t.Fatalf("%s vs %s: %v", cols[i].name, cols[j].name, err)
					}
					if p < alpha {
						t.Errorf("%s and %s disagree at n=%d: χ²=%.2f p=%.3g (α=%g)",
							cols[i].name, cols[j].name, n, statistic, p, alpha)
					}
				}
			}
			t.Logf("n=%d: %d scenarios, %d pairwise agreements over %d trials each",
				n, len(cols), pairs, trials)
		})
	}
}

// TestDifferentialCatchesBias is the negative control for the matrix: an
// attacked distribution must be flagged against every honest column, or the
// agreement check above proves nothing.
func TestDifferentialCatchesBias(t *testing.T) {
	ctx := context.Background()
	const n, trials = 16, 2000
	honest, err := MustFind("ring/a-lead/fifo").RunOpts(ctx, 20180516, Opts{N: n, Trials: trials})
	if err != nil {
		t.Fatal(err)
	}
	forced, err := MustFind("ring/basic-lead/attack=basic-single").RunOpts(ctx, 20180516,
		Opts{N: n, Trials: trials, Target: 5})
	if err != nil {
		t.Fatal(err)
	}
	cells := func(o *Outcome) []int {
		c := make([]int, n+1)
		copy(c, o.Counts[1:])
		c[n] = o.Failures
		return c
	}
	_, p, err := stats.ChiSquareHomogeneity(cells(honest), cells(forced))
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-9 {
		t.Errorf("matrix failed to distinguish a fully forced distribution from uniform (p=%v)", p)
	}
}
