package scenario

import (
	"fmt"

	"repro/internal/classic"
	"repro/internal/committee"
	"repro/internal/engine"
	"repro/internal/fullnet"
	"repro/internal/protocols/alead"
	"repro/internal/protocols/basiclead"
	"repro/internal/protocols/phaselead"
	"repro/internal/protocols/sumphase"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/simgraph"
	"repro/internal/syncnet"
	"repro/internal/treeproto"
	"repro/internal/wakeup"
)

// Chunked-job builders. Each returns the scenario's canonical chunked
// engine job — the one unit both local runs (chunkedRun → engineBatch) and
// remote shard claims (RunShard → engine.RunRange) execute — and, for ring
// topologies, the single-execution hook used by the schedule-independence
// property tests.

// ringHonest runs an honest ring protocol, building a fresh scheduler per
// trial so non-FIFO batches stay shard-safe. With SchedFIFO the batch is
// bit-identical to ring.TrialsOpts (same seed derivation, same engine).
func ringHonest(proto ring.Protocol, sched string) (chunksFunc, singleFunc) {
	chunks := func(seed int64, p params) (engine.ChunkJob, error) {
		// Chunked batch: Batchable protocols reuse one strategy vector per
		// work-claim chunk; the per-trial hook rebuilds only the scheduler
		// (recycled on the worker's arena).
		return ring.HonestChunkJob(ring.Spec{N: p.N, Protocol: proto, Seed: seed},
			func(t int, ts int64, arena *sim.Arena) (sim.Scheduler, error) {
				return newScheduler(sched, ts, arena)
			}), nil
	}
	single := func(seed int64, sc sim.Scheduler, p params, arena *sim.Arena) (sim.Result, error) {
		return ring.RunArena(ring.Spec{N: p.N, Protocol: proto, Seed: seed, Scheduler: sc}, arena)
	}
	return chunks, single
}

// ringFamilyAttack runs a registered deviation family's attack against a
// ring protocol at the resolved parameters (coalition size K, steering
// mode). The batch is exactly ring.AttackTrialsOpts, so registry runs
// reproduce the harness experiments byte-identically — and equilibrium
// sweeps, which plan through the very same family, reproduce the registry
// runs.
func ringFamilyAttack(base ring.Protocol, family, mode string) (chunksFunc, singleFunc) {
	plan := func(p params) (ring.Protocol, ring.Attack, error) {
		fam, ok := FindFamily(family)
		if !ok {
			return nil, nil, fmt.Errorf("no registered deviation family %q", family)
		}
		proto := base
		if fam.Proto != nil {
			proto = fam.Proto(p.N, proto)
		}
		atk, err := fam.Plan(proto, p.K, mode)
		if err != nil {
			return nil, nil, err
		}
		return proto, atk, nil
	}
	chunks := func(seed int64, p params) (engine.ChunkJob, error) {
		proto, atk, err := plan(p)
		if err != nil {
			return nil, err
		}
		return ring.AttackChunkJob(p.N, proto, atk, p.Target, seed), nil
	}
	single := func(seed int64, sc sim.Scheduler, p params, arena *sim.Arena) (sim.Result, error) {
		proto, atk, err := plan(p)
		if err != nil {
			return sim.Result{}, err
		}
		dev, err := atk.Plan(p.N, p.Target, seed)
		if err != nil {
			return sim.Result{}, fmt.Errorf("plan %s (n=%d): %w", atk.Name(), p.N, err)
		}
		return ring.RunArena(ring.Spec{N: p.N, Protocol: proto, Deviation: dev, Seed: seed, Scheduler: sc}, arena)
	}
	return chunks, single
}

// completeChunks runs the asynchronous complete-graph election with Shamir
// sharing, honestly or under the share-pooling coalition (K ≤ 0 picks the
// threshold ⌈n/2⌉, the smallest controlling coalition).
func completeChunks(attack bool) chunksFunc {
	return func(seed int64, p params) (engine.ChunkJob, error) {
		e, err := fullnet.New(p.N, 0)
		if err != nil {
			return nil, err
		}
		k := p.K
		if attack && k <= 0 {
			k = e.Threshold()
		}
		// Chunked batch: one fullnet.Runner per chunk reuses the participant
		// vector and its O(n²) share/reveal buffers across trials.
		return engine.ChunkFunc(
			func(start, end int, arena *sim.Arena, add func(sim.Result)) (int, error) {
				var runner *fullnet.Runner
				if attack {
					var err error
					if runner, err = e.AttackRunner(k, p.Target); err != nil {
						return start, err
					}
				} else {
					runner = e.Runner()
				}
				for t := start; t < end; t++ {
					res, err := runner.Run(trialSeed(seed, t), nil, arena)
					if err != nil {
						return t, err
					}
					add(res)
				}
				return 0, nil
			}), nil
	}
}

// committeeChunks runs the hierarchical committee-sharded election with the
// given inner discipline, honestly or under the single delegate-rush
// coalition steering the target's group and the winning-group residue.
func committeeChunks(inner string, attack bool) chunksFunc {
	return func(seed int64, p params) (engine.ChunkJob, error) {
		e, err := committee.New(p.N, inner)
		if err != nil {
			return nil, err
		}
		// Chunked batch: one committee.Runner per chunk holds the private
		// per-group-size arenas and reuses the inner strategy vectors across
		// trials; the engine worker's own arena is unused (sub-networks are
		// √n-sized, the worker arena is sized for flat n-rings).
		return engine.ChunkFunc(
			func(start, end int, _ *sim.Arena, add func(sim.Result)) (int, error) {
				var runner *committee.Runner
				if attack {
					var err error
					if runner, err = e.AttackRunner(p.Target); err != nil {
						return start, err
					}
				} else {
					runner = e.Runner()
				}
				for t := start; t < end; t++ {
					res, err := runner.Run(trialSeed(seed, t))
					if err != nil {
						return t, err
					}
					add(res)
				}
				return 0, nil
			}), nil
	}
}

// treeChunks runs the convergecast/broadcast tree election on the given tree
// family, honestly or with the dictating adversarial root.
func treeChunks(build func(n int) (*simgraph.Graph, error), rootAt func(n int) int, sched string, adversary bool) chunksFunc {
	return func(seed int64, p params) (engine.ChunkJob, error) {
		tree, err := build(p.N)
		if err != nil {
			return nil, err
		}
		proto, err := treeproto.New(tree, rootAt(p.N))
		if err != nil {
			return nil, err
		}
		// Chunked batch: one treeproto.Runner per chunk reuses the node
		// vector across trials; only the scheduler is rebuilt per trial.
		return engine.ChunkFunc(
			func(start, end int, arena *sim.Arena, add func(sim.Result)) (int, error) {
				runner := proto.Runner(adversary, p.Target)
				for t := start; t < end; t++ {
					ts := trialSeed(seed, t)
					sc, err := newScheduler(sched, ts, arena)
					if err != nil {
						return t, err
					}
					res, err := runner.Run(ts, sc, arena)
					if err != nil {
						return t, err
					}
					add(res)
				}
				return 0, nil
			}), nil
	}
}

// syncCompleteChunks runs the synchronous fully-connected election with a
// blind coalition of size K in the last positions (K = −1 resolves to n−1,
// the maximal coalition; the outcome stays uniform — nothing to rush).
func syncCompleteChunks() chunksFunc {
	return func(seed int64, p params) (engine.ChunkJob, error) {
		k := p.K
		if k < 0 {
			k = p.N - 1
		}
		// The synchronous runtime is not sim.Network-based; it ignores
		// the worker arena.
		return engine.ChunkFunc(
			func(start, end int, _ *sim.Arena, add func(sim.Result)) (int, error) {
				for t := start; t < end; t++ {
					procs, err := syncnet.NewCompleteElection(p.N, k, trialSeed(seed, t))
					if err != nil {
						return t, err
					}
					res, err := syncnet.Run(procs, p.N+4)
					if err != nil {
						return t, err
					}
					add(res)
				}
				return 0, nil
			}), nil
	}
}

// syncRingChunks runs the synchronous ring election; with tamper, processor
// 2 perturbs every forwarded value — the deviation whose only power is FAIL.
func syncRingChunks(tamper bool) chunksFunc {
	return func(seed int64, p params) (engine.ChunkJob, error) {
		return engine.ChunkFunc(
			func(start, end int, _ *sim.Arena, add func(sim.Result)) (int, error) {
				for t := start; t < end; t++ {
					ts := trialSeed(seed, t)
					procs := make([]syncnet.Processor, p.N)
					for i := 1; i <= p.N; i++ {
						proc := syncnet.NewRingSyncLead(p.N, sim.ProcID(i), ts)
						if tamper && i == 2 {
							proc.Tamper = 1
						}
						procs[i-1] = proc
					}
					res, err := syncnet.Run(procs, p.N+2)
					if err != nil {
						return t, err
					}
					add(res)
				}
				return 0, nil
			}), nil
	}
}

// registerChunked registers one scenario from its chunked-job builder; the
// full-batch run function is derived from the same builder, so local runs
// and remote shards execute one job.
func registerChunked(s Scenario, chunks chunksFunc) {
	s.chunks, s.run = chunks, chunkedRun(chunks)
	register(s)
}

// registerRing registers one ring scenario from its builder pair.
func registerRing(s Scenario, chunks chunksFunc, single singleFunc) {
	s.chunks, s.run, s.single = chunks, chunkedRun(chunks), single
	register(s)
}

// pathRoot roots the path tree at its middle vertex.
func pathRoot(n int) int { return (n + 1) / 2 }

// starRoot roots the star at its center.
func starRoot(int) int { return 1 }

func init() {
	// --- Asynchronous ring: honest protocols under every scheduler kind.
	type honestRing struct {
		slug    string
		proto   ring.Protocol
		scheds  []string
		uniform bool
		note    string
	}
	allScheds := []string{SchedFIFO, SchedLIFO, SchedRandom}
	for _, h := range []honestRing{
		{"basic-lead", basiclead.New(), allScheds, true,
			"Appendix B naive protocol, honest run (uniform; broken by one adversary)"},
		{"a-lead", alead.New(), allScheds, true,
			"A-LEADuni (Section 3), honest run"},
		{"phase-lead", phaselead.NewDefault(), allScheds, true,
			"PhaseAsyncLead (Section 6), honest run"},
		{"sum-phase", sumphase.New(), []string{SchedFIFO}, true,
			"sum-output phase variant (Appendix E.4), honest run"},
		{"chang-roberts", classic.ChangRoberts{OutputPosition: true}, []string{SchedFIFO}, true,
			"classical baseline, random ids, position output (uniform winning position)"},
		{"peterson", classic.Peterson{OutputPosition: true}, []string{SchedFIFO}, true,
			"classical O(n log n) baseline, random ids, position output"},
	} {
		for _, sched := range h.scheds {
			run, single := ringHonest(h.proto, sched)
			registerRing(Scenario{
				Name:      "ring/" + h.slug + "/" + sched,
				Topology:  "ring",
				Protocol:  h.slug,
				Scheduler: sched,
				N:         16,
				Trials:    400,
				Uniform:   h.uniform,
				Note:      h.note,
				proto:     h.proto,
			}, run, single)
		}
	}

	// --- Asynchronous ring: every adversarial deviation of the paper,
	// planned through the registered deviation families so equilibrium
	// sweeps and registry runs share one planner.
	type ringAtk struct {
		protoSlug string
		proto     ring.Protocol
		attack    string
		family    string
		mode      string
		n, minN   int
		trials    int
		k         int
		target    int64
		note      string
	}
	phase := phaselead.NewDefault()
	for _, a := range []ringAtk{
		{"basic-lead", basiclead.New(), "basic-single", "basic-single", "",
			16, 4, 200, 0, 2, "Claim B.1: one adversary forces any target"},
		{"a-lead", alead.New(), "rushing-equal", "rushing", "equal",
			64, 25, 25, 0, 3, "Theorem 4.2: ⌈√n⌉ equally spaced rushers control A-LEADuni"},
		{"a-lead", alead.New(), "rushing-staggered", "rushing", "staggered",
			64, 27, 20, 0, 2, "Theorem 4.3: the cubic attack (staggered distances)"},
		{"a-lead", alead.New(), "randomized-c3", "randomized", "c3",
			256, 128, 60, 0, 7, "Theorem C.1: randomly located coalitions, C=3"},
		{"a-lead", alead.New(), "randomized-c5", "randomized", "c5",
			256, 128, 60, 0, 7, "Theorem C.1: randomly located coalitions, C=5"},
		{"a-lead", alead.New(), "half-ring", "half-ring", "",
			64, 8, 20, 0, 2, "Theorem 7.2 on the ring: ⌈n/2⌉ consecutive coalition dictates"},
		{"phase-lead", phase, "phase-rushing", "phase-rushing", "steer",
			100, 64, 15, 0, 9, "Section 6 tightness: k = √n+3 rushing controls PhaseAsyncLead"},
		{"phase-lead", phase, "phase-chase", "phase-rushing", "chase",
			100, 64, 100, 8, 5, "chase mode: validity saved, bias provably lost (Theorem 6.1 mechanism)"},
		{"phase-lead", phase, "phase-nosteer", "phase-rushing", "nosteer",
			100, 64, 100, 4, 5, "rushing without steering: validity collapses, no bias"},
		{"sum-phase", sumphase.New(), "sum-phase", "sum-phase", "",
			121, 16, 40, 0, 4, "Appendix E.4: four colluders control the sum-output variant"},
		{"phase-lead", phase, "sum-phase", "sum-phase", "",
			121, 16, 40, 0, 4, "control: the same four colluders are powerless against f"},
	} {
		run, single := ringFamilyAttack(a.proto, a.family, a.mode)
		registerRing(Scenario{
			Name:      "ring/" + a.protoSlug + "/attack=" + a.attack,
			Topology:  "ring",
			Protocol:  a.protoSlug,
			Scheduler: SchedFIFO,
			Attack:    a.attack,
			N:         a.n,
			MinN:      a.minN,
			Trials:    a.trials,
			K:         a.k,
			Target:    a.target,
			Note:      a.note,
			proto:     a.proto,
			family:    a.family,
			mode:      a.mode,
		}, run, single)
	}

	// --- Wake-up extension (Appendix H): id exchange, then A-LEADuni.
	for _, sched := range []string{SchedFIFO, SchedRandom} {
		wk := wakeup.New()
		run, single := ringHonest(wk, sched)
		registerRing(Scenario{
			Name:      "wakeup/a-lead/" + sched,
			Topology:  "wakeup",
			Protocol:  "a-lead",
			Scheduler: sched,
			N:         16,
			MinN:      4,
			Trials:    400,
			Uniform:   true,
			Note:      "wake-up id circulation then A-LEADuni re-indexed at the minimal id",
			proto:     wk,
		}, run, single)
	}
	{
		wk := wakeup.New()
		run, single := ringFamilyAttack(wk, "wakeup-rushing", "")
		registerRing(Scenario{
			Name:      "wakeup/a-lead/attack=wakeup-rushing",
			Topology:  "wakeup",
			Protocol:  "a-lead",
			Scheduler: SchedFIFO,
			Attack:    "wakeup-rushing",
			N:         64,
			MinN:      27,
			Trials:    20,
			Target:    2,
			Note:      "Section 4 attacks survive the wake-up extension (Appendix H remark)",
			proto:     wk,
			family:    "wakeup-rushing",
		}, run, single)
	}

	// --- Hierarchical committee composition: √n-sized groups running a
	// certified-fair inner protocol, composed through a delegate
	// circulation. Uniform by construction (the level-2 residue selects
	// group j with probability sizeⱼ/n), so the honest scenarios join the
	// differential matrix; the delegate-rush attack inherits Claim B.1
	// against Basic-LEAD groups and stalls against A-LEADuni groups.
	for _, inner := range []string{committee.InnerBasic, committee.InnerALead} {
		slug := "basic-lead"
		honestNote := "committee-sharded Basic-LEAD: ⌊√n⌋ groups + delegate circulation, uniform but rushable"
		attackNote := "the target group's delegate rushes both levels: Claim B.1 composes, forced w.p. 1"
		if inner == committee.InnerALead {
			slug = "a-lead"
			honestNote = "committee-sharded A-LEADuni: ⌊√n⌋ buffered groups + buffered delegate circulation"
			attackNote = "control: the same delegate-rush only stalls the buffered circulations (no bias)"
		}
		registerChunked(Scenario{
			Name:      "committee/" + slug + "/fifo",
			Topology:  "committee",
			Protocol:  slug,
			Scheduler: SchedFIFO,
			N:         256,
			MinN:      4,
			Trials:    400,
			Uniform:   true,
			Note:      honestNote,
		}, committeeChunks(inner, false))
		registerChunked(Scenario{
			Name:      "committee/" + slug + "/attack=delegate-rush",
			Topology:  "committee",
			Protocol:  slug,
			Scheduler: SchedFIFO,
			Attack:    "delegate-rush",
			N:         256,
			MinN:      4,
			Trials:    40,
			K:         1,
			Target:    2,
			Note:      attackNote,
		}, committeeChunks(inner, true))
	}

	// --- Asynchronous complete graph with Shamir sharing (Section 1.1).
	registerChunked(Scenario{
		Name:      "complete/shamir/fifo",
		Topology:  "complete",
		Protocol:  "shamir",
		Scheduler: SchedFIFO,
		N:         12,
		MinN:      3,
		Trials:    400,
		Uniform:   true,
		Note:      "commit-then-reveal secret sharing, resilient to ⌈n/2⌉−1",
	}, completeChunks(false))
	registerChunked(Scenario{
		Name:      "complete/shamir/attack=pool",
		Topology:  "complete",
		Protocol:  "shamir",
		Scheduler: SchedFIFO,
		Attack:    "pool",
		N:         12,
		MinN:      3,
		Trials:    40,
		Target:    2,
		Note:      "k = ⌈n/2⌉ pools phase-1 shares and reconstructs every secret early",
	}, completeChunks(true))

	// --- Tree topologies (Theorem 7.2: trees are 1-simulated trees).
	registerChunked(Scenario{
		Name:      "tree-path/convergecast/fifo",
		Topology:  "tree-path",
		Protocol:  "convergecast",
		Scheduler: SchedFIFO,
		N:         11,
		MinN:      2,
		Trials:    400,
		Uniform:   true,
		Note:      "convergecast/broadcast election on the path, rooted at the middle",
	}, treeChunks(simgraph.Path, pathRoot, SchedFIFO, false))
	registerChunked(Scenario{
		Name:      "tree-path/convergecast/random",
		Topology:  "tree-path",
		Protocol:  "convergecast",
		Scheduler: SchedRandom,
		N:         11,
		MinN:      2,
		Trials:    400,
		Uniform:   true,
		Note:      "same election under a random oblivious schedule (trees genuinely interleave)",
	}, treeChunks(simgraph.Path, pathRoot, SchedRandom, false))
	registerChunked(Scenario{
		Name:      "tree-star/convergecast/fifo",
		Topology:  "tree-star",
		Protocol:  "convergecast",
		Scheduler: SchedFIFO,
		N:         9,
		MinN:      2,
		Trials:    400,
		Uniform:   true,
		Note:      "convergecast election on the star, rooted at the center",
	}, treeChunks(simgraph.Star, starRoot, SchedFIFO, false))
	registerChunked(Scenario{
		Name:      "tree-path/convergecast/attack=dictator-root",
		Topology:  "tree-path",
		Protocol:  "convergecast",
		Scheduler: SchedFIFO,
		Attack:    "dictator-root",
		N:         11,
		MinN:      3,
		Trials:    40,
		K:         1,
		Target:    3,
		Note:      "a single rational root dictates: trees are 1-simulated trees",
	}, treeChunks(simgraph.Path, pathRoot, SchedFIFO, true))

	// --- Synchronous models (Section 1.1: nothing to rush).
	registerChunked(Scenario{
		Name:      "sync-complete/complete-lead/honest",
		Topology:  "sync-complete",
		Protocol:  "complete-lead",
		Scheduler: SchedLockstep,
		N:         12,
		MinN:      2,
		Trials:    400,
		Uniform:   true,
		Note:      "lock-step complete graph: commit secrets in round 1, sum in round 2",
	}, syncCompleteChunks())
	registerChunked(Scenario{
		Name:      "sync-complete/complete-lead/attack=blind-coalition",
		Topology:  "sync-complete",
		Protocol:  "complete-lead",
		Scheduler: SchedLockstep,
		Attack:    "blind-coalition",
		N:         12,
		MinN:      2,
		Trials:    400,
		K:         -1,
		Uniform:   true,
		Note:      "k = n−1 blind constants gain nothing: the outcome stays uniform",
	}, syncCompleteChunks())
	registerChunked(Scenario{
		Name:      "sync-ring/ring-sync-lead/honest",
		Topology:  "sync-ring",
		Protocol:  "ring-sync-lead",
		Scheduler: SchedLockstep,
		N:         12,
		MinN:      2,
		Trials:    400,
		Uniform:   true,
		Note:      "lock-step ring: forward the previous round's value; resilient to n−1",
	}, syncRingChunks(false))
	registerChunked(Scenario{
		Name:      "sync-ring/ring-sync-lead/attack=tamper",
		Topology:  "sync-ring",
		Protocol:  "ring-sync-lead",
		Scheduler: SchedLockstep,
		Attack:    "tamper",
		N:         12,
		MinN:      3,
		Trials:    40,
		K:         1,
		Note:      "a tampering forwarder destroys (FAIL) but never steers",
	}, syncRingChunks(true))
}
