package randfunc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestDeterminism(t *testing.T) {
	f1, err := New(7, 64)
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := New(7, 64)
	f3, _ := New(8, 64)
	data := []int64{1, 5, 3, 2}
	vals := []int64{9, 9}
	a, b, c := f1.Eval(data, vals), f2.Eval(data, vals), f3.Eval(data, vals)
	if a != b {
		t.Error("same seed, different outputs")
	}
	if a == c {
		// Not impossible, but rerun with more inputs to be sure.
		differ := false
		for x := int64(0); x < 32; x++ {
			if f1.Eval([]int64{x}, nil) != f3.Eval([]int64{x}, nil) {
				differ = true
				break
			}
		}
		if !differ {
			t.Error("different seeds define the same function")
		}
	}
}

func TestOutputRange(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100} {
		f, err := New(3, n)
		if err != nil {
			t.Fatal(err)
		}
		for x := int64(0); x < 50; x++ {
			out := f.Eval([]int64{x, x + 1}, []int64{x})
			if out < 1 || out > int64(n) {
				t.Fatalf("n=%d: output %d out of range", n, out)
			}
		}
	}
}

func TestUniformOverInputs(t *testing.T) {
	const n = 16
	f, err := New(11, n)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	data := make([]int64, 8)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 16000; i++ {
		for j := range data {
			data[j] = rng.Int63n(n)
		}
		counts[f.Eval(data, nil)-1]++
	}
	if _, p, _ := stats.ChiSquareUniform(counts); p < 1e-4 {
		t.Errorf("outputs over random inputs far from uniform: p=%v", p)
	}
}

func TestCoordinateSensitivity(t *testing.T) {
	// Changing any single coordinate should change the output with
	// probability ≈ 1−1/n: the property the resilience argument needs.
	const n = 64
	f, err := New(13, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	changed, total := 0, 0
	for trial := 0; trial < 500; trial++ {
		data := make([]int64, 10)
		vals := make([]int64, 4)
		for j := range data {
			data[j] = rng.Int63n(n)
		}
		for j := range vals {
			vals[j] = rng.Int63n(2 * n * n)
		}
		before := f.Eval(data, vals)
		pos := rng.Intn(len(data))
		old := data[pos]
		for data[pos] == old {
			data[pos] = rng.Int63n(n)
		}
		if f.Eval(data, vals) != before {
			changed++
		}
		total++
	}
	rate := float64(changed) / float64(total)
	if rate < 0.9 {
		t.Errorf("single-coordinate change altered output only %.2f of the time", rate)
	}
}

func TestIncrementalMatchesEval(t *testing.T) {
	// Accumulate + Finalize with coordinate XOR updates must agree with a
	// full Eval: the attack search relies on this.
	const n = 32
	f, err := New(21, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]int64, 6)
		vals := make([]int64, 3)
		for j := range data {
			data[j] = rng.Int63n(n)
		}
		for j := range vals {
			vals[j] = rng.Int63n(100)
		}
		full := f.Eval(data, vals)
		acc := f.Accumulate(data, vals)
		if f.Finalize(acc) != full {
			return false
		}
		// Swap one data coordinate incrementally.
		pos := rng.Intn(len(data))
		newVal := rng.Int63n(n)
		acc2 := acc ^ f.CoordData(pos+1, data[pos]) ^ f.CoordData(pos+1, newVal)
		data[pos] = newVal
		return f.Finalize(acc2) == f.Eval(data, vals)
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func TestStrictVariantBehaves(t *testing.T) {
	const n = 16
	f, err := NewStrict(11, n)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	rng := rand.New(rand.NewSource(6))
	data := make([]int64, 8)
	for i := 0; i < 16000; i++ {
		for j := range data {
			data[j] = rng.Int63n(n)
		}
		out := f.Eval(data, nil)
		if out < 1 || out > n {
			t.Fatalf("strict output %d out of range", out)
		}
		counts[out-1]++
	}
	if _, p, _ := stats.ChiSquareUniform(counts); p < 1e-4 {
		t.Errorf("strict outputs far from uniform: p=%v", p)
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := New(0, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewStrict(0, -1); err == nil {
		t.Error("n<0 accepted")
	}
}
