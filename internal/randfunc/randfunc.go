// Package randfunc provides the random function family f that
// PhaseAsyncLead applies to the shared data and validation values
// (Section 6). The paper uses a non-constructive uniformly random function
// f : [n]^n × [m]^{n−l} → [n], following Alon–Naor; a real implementation
// must substitute a concrete keyed function.
//
// Func is that substitute: every coordinate (position, value, domain) is
// mixed with a 64-bit key through a SplitMix64-style avalanche, the mixes are
// XOR-combined, and a finalizer maps the accumulator to [1..n]. Two
// properties matter for the reproduction:
//
//   - Black-box randomness: none of the paper's deviations exploits
//     algebraic structure in f — adversaries either rush all of f's inputs
//     or brute-force a few free coordinates, both of which treat f as an
//     oracle. Statistical tests in this package check uniformity and
//     coordinate sensitivity.
//   - O(1) incremental re-evaluation: changing one coordinate updates the
//     accumulator with two XORs, which makes the PhaseRushing attack's
//     coordinate search and large-n benchmarks feasible. A strictly
//     sequential variant (StrictFunc) without this shortcut is provided for
//     cross-checks.
package randfunc

import (
	"errors"

	"repro/internal/sim"
)

// Domain tags separate data coordinates from validation coordinates, so the
// pair (position, value) never collides across the two input blocks.
const (
	tagData uint64 = 0x64617461 // "data"
	tagVal  uint64 = 0x76616c73 // "vals"
)

// Func is a keyed member of the random function family. It is immutable and
// safe for concurrent use.
type Func struct {
	seed uint64
	n    int
}

// New returns the family member selected by seed, with outputs in [1..n].
func New(seed int64, n int) (*Func, error) {
	if n < 1 {
		return nil, errors.New("randfunc: need n ≥ 1")
	}
	return &Func{seed: sim.Mix64(uint64(seed), 0xf00d), n: n}, nil
}

// N returns the output range size.
func (f *Func) N() int { return f.n }

// CoordData mixes the data coordinate at 1-based position pos with value v.
func (f *Func) CoordData(pos int, v int64) uint64 {
	return sim.Mix64(f.seed^tagData, sim.Mix64(uint64(pos), uint64(v)))
}

// CoordVal mixes the validation coordinate at 1-based position pos.
func (f *Func) CoordVal(pos int, v int64) uint64 {
	return sim.Mix64(f.seed^tagVal, sim.Mix64(uint64(pos), uint64(v)))
}

// Finalize maps an XOR-accumulator of coordinate mixes to a leader in [1..n].
func (f *Func) Finalize(acc uint64) int64 {
	return int64(sim.Mix64(acc, f.seed)%uint64(f.n)) + 1
}

// Eval computes f(data, vals): data are the n shared data values (d̂_1..d̂_n)
// and vals the first n−l validation values (v̂_1..v̂_{n−l}), both 0-indexed
// slices holding 1-based coordinates.
func (f *Func) Eval(data, vals []int64) int64 {
	var acc uint64
	for i, v := range data {
		acc ^= f.CoordData(i+1, v)
	}
	for i, v := range vals {
		acc ^= f.CoordVal(i+1, v)
	}
	return f.Finalize(acc)
}

// Accumulate XORs the coordinate mixes of both blocks, for callers that need
// the raw accumulator to search over free coordinates incrementally.
func (f *Func) Accumulate(data, vals []int64) uint64 {
	var acc uint64
	for i, v := range data {
		acc ^= f.CoordData(i+1, v)
	}
	for i, v := range vals {
		acc ^= f.CoordVal(i+1, v)
	}
	return acc
}

// StrictFunc is the sequential-chaining variant: coordinates are folded into
// a running hash in order, with no incremental shortcut. It exists to
// cross-check that nothing in the experiments depends on Func's XOR
// combination.
type StrictFunc struct {
	seed uint64
	n    int
}

// NewStrict returns the strict family member selected by seed.
func NewStrict(seed int64, n int) (*StrictFunc, error) {
	if n < 1 {
		return nil, errors.New("randfunc: need n ≥ 1")
	}
	return &StrictFunc{seed: sim.Mix64(uint64(seed), 0xbeef), n: n}, nil
}

// N returns the output range size.
func (f *StrictFunc) N() int { return f.n }

// Eval computes the strict function of the same input shape as Func.Eval.
func (f *StrictFunc) Eval(data, vals []int64) int64 {
	acc := f.seed
	for i, v := range data {
		acc = sim.Mix64(acc, sim.Mix64(tagData^uint64(i+1), uint64(v)))
	}
	for i, v := range vals {
		acc = sim.Mix64(acc, sim.Mix64(tagVal^uint64(i+1), uint64(v)))
	}
	return int64(acc%uint64(f.n)) + 1
}

// Evaluator is the shape shared by Func and StrictFunc.
type Evaluator interface {
	N() int
	Eval(data, vals []int64) int64
}

var (
	_ Evaluator = (*Func)(nil)
	_ Evaluator = (*StrictFunc)(nil)
)
