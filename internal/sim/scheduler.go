package sim

// Scheduler selects the delivery order among pending messages. It is the
// oblivious message schedule of the model: Pick is told only how many
// messages are pending, never their contents, sources or destinations, so no
// scheduler can depend on the processors' inputs or randomization.
//
// On a unidirectional ring every processor has a single incoming FIFO link,
// so all schedules produce identical local computations (Section 2); the
// scheduler matters only on general graphs.
type Scheduler interface {
	// Pick returns the index, in arrival order, of the next message to
	// deliver among k ≥ 1 pending messages. Results outside [0,k) are
	// treated as 0.
	Pick(k int) int
}

// FIFOScheduler delivers messages in global send order. It is the default.
type FIFOScheduler struct{}

// Pick implements Scheduler.
func (FIFOScheduler) Pick(int) int { return 0 }

// LIFOScheduler delivers the most recently sent pending message first. It is
// an adversarially skewed but still oblivious schedule, useful for
// schedule-independence tests.
type LIFOScheduler struct{}

// Pick implements Scheduler.
func (LIFOScheduler) Pick(k int) int { return k - 1 }

// RandomScheduler delivers a uniformly random pending message, modelling an
// arbitrary asynchronous interleaving. The choice sequence is a deterministic
// function of the seed and of the pending counts only, hence oblivious.
type RandomScheduler struct {
	rng Stream
}

// schedSeed is the single copy of the scheduler-stream derivation recipe,
// shared by NewRandomScheduler and Reseed so the two can never drift apart.
func schedSeed(seed int64) uint64 {
	return Mix64(uint64(seed), 0x5c4ed)
}

// NewRandomScheduler returns a RandomScheduler with the given seed.
func NewRandomScheduler(seed int64) *RandomScheduler {
	return &RandomScheduler{rng: Stream{key: schedSeed(seed)}}
}

// Pick implements Scheduler.
func (s *RandomScheduler) Pick(k int) int { return s.rng.Intn(k) }

// Reseed rewinds the scheduler to the choice sequence a fresh
// NewRandomScheduler with the same seed would produce — a two-word store on
// the counter-based Stream. Trial arenas use it to run one scheduler object
// across a whole batch without per-trial work.
func (s *RandomScheduler) Reseed(seed int64) {
	s.rng = Stream{key: schedSeed(seed)}
}
